package masksim

import (
	"context"
	"testing"
)

func TestFacadeRoundTrip(t *testing.T) {
	cfg := SharedTLBConfig()
	cfg.Cores = 4
	cfg.WarpsPerCore = 8
	res, err := Run(context.Background(), cfg, []string{"NN", "LUD"}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC <= 0 || len(res.Apps) != 2 {
		t.Fatalf("facade run broken: %+v", res)
	}
}

func TestFacadeConfigNames(t *testing.T) {
	names := ConfigNames()
	if len(names) != 8 {
		t.Fatalf("%d standard configs, want 8 (Figure 11)", len(names))
	}
	for _, n := range names {
		if _, err := ConfigByName(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

// TestHeadlineShape is the repo's end-to-end oracle: on a contended 2-HMR
// pair, Ideal must beat MASK, and MASK must beat the SharedTLB baseline —
// the paper's central result (Figure 11), at reduced scale.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine run")
	}
	const cycles = 20_000
	run := func(mk func() Config) float64 {
		res, err := Run(context.Background(), mk(), []string{"3DS", "CONS"}, cycles)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalIPC
	}
	base := run(SharedTLBConfig)
	mask := run(MASKConfig)
	ideal := run(IdealConfig)
	if !(ideal > mask && mask > base) {
		t.Fatalf("headline ordering violated: ideal=%.2f mask=%.2f sharedTLB=%.2f",
			ideal, mask, base)
	}
}
