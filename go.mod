module masksim

go 1.22
