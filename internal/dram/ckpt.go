package dram

import (
	"fmt"

	"masksim/internal/memreq"
)

// QueuedState is the serializable image of one Queued wrapper (queued or in
// flight).
type QueuedState struct {
	Req     int32
	Arrival int64
	Bank    int
	Row     int64
	Finish  int64
}

// SchedState is the serializable image of any built-in scheduler's queues.
// FR-FCFS and FCFS use only Normal; MASKSched uses all three plus the silver
// turn. Queue slices preserve arrival order.
type SchedState struct {
	Golden []QueuedState
	Silver []QueuedState
	Normal []QueuedState

	SilverApp   int
	SilverQuota int
}

// ChannelState is one channel's checkpoint image.
type ChannelState struct {
	Banks      []Bank
	BusReadyAt int64
	Inflight   []QueuedState
	Sched      SchedState
}

// DRAMState is the memory subsystem's checkpoint image.
type DRAMState struct {
	Channels   []ChannelState
	Class      [2]ClassCounters
	PerAppBus  []uint64
	StartCycle int64
	LastCycle  int64
	QFree      int
}

// SnapshotState implements engine.Snapshotter; ctx is the *memreq.Table.
func (d *DRAM) SnapshotState(ctx any) (any, error) {
	tab, ok := ctx.(*memreq.Table)
	if !ok {
		return nil, fmt.Errorf("dram: snapshot context is %T, want *memreq.Table", ctx)
	}
	enc := func(q *Queued) QueuedState {
		return QueuedState{Req: tab.Req(q.Req), Arrival: q.Arrival, Bank: q.Bank, Row: q.Row, Finish: q.finish}
	}
	st := DRAMState{
		Class:      d.Class,
		PerAppBus:  append([]uint64(nil), d.perAppBus...),
		StartCycle: d.startCycle,
		LastCycle:  d.lastCycle,
		QFree:      len(d.qFree),
	}
	st.Channels = make([]ChannelState, len(d.channels))
	for i := range d.channels {
		ch := &d.channels[i]
		cs := &st.Channels[i]
		cs.Banks = append([]Bank(nil), ch.banks...)
		cs.BusReadyAt = ch.busReadyAt
		for _, q := range ch.inflight {
			cs.Inflight = append(cs.Inflight, enc(q))
		}
		cs.Sched = ch.sched.SnapshotQueue(enc)
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter; ctx is the *memreq.RestoreTable.
func (d *DRAM) RestoreState(ctx any, state any) error {
	rt, ok := ctx.(*memreq.RestoreTable)
	if !ok {
		return fmt.Errorf("dram: restore context is %T, want *memreq.RestoreTable", ctx)
	}
	st, ok := state.(DRAMState)
	if !ok {
		return fmt.Errorf("dram: restore state is %T, want DRAMState", state)
	}
	if len(st.Channels) != len(d.channels) {
		return fmt.Errorf("dram: checkpoint has %d channels, model has %d", len(st.Channels), len(d.channels))
	}
	dec := func(qs QueuedState) *Queued {
		q := d.getQueued()
		q.Req, q.Arrival, q.Bank, q.Row, q.finish = rt.Req(qs.Req), qs.Arrival, qs.Bank, qs.Row, qs.Finish
		return q
	}
	d.Class = st.Class
	d.perAppBus = append(d.perAppBus[:0], st.PerAppBus...)
	d.startCycle = st.StartCycle
	d.lastCycle = st.LastCycle
	for i := range d.channels {
		ch := &d.channels[i]
		cs := &st.Channels[i]
		if len(cs.Banks) != len(ch.banks) {
			return fmt.Errorf("dram: channel %d checkpoint has %d banks, model has %d", i, len(cs.Banks), len(ch.banks))
		}
		copy(ch.banks, cs.Banks)
		ch.busReadyAt = cs.BusReadyAt
		ch.inflight = ch.inflight[:0]
		for _, qs := range cs.Inflight {
			ch.inflight = append(ch.inflight, dec(qs))
		}
		if err := ch.sched.RestoreQueue(cs.Sched, dec); err != nil {
			return fmt.Errorf("dram: channel %d: %w", i, err)
		}
	}
	for len(d.qFree) < st.QFree {
		d.qFree = append(d.qFree, &Queued{})
	}
	d.qFree = d.qFree[:st.QFree]
	return nil
}

// SnapshotQueue implements Scheduler.
func (s *FRFCFS) SnapshotQueue(enc func(*Queued) QueuedState) SchedState {
	return SchedState{Normal: encQueue(s.queue, enc)}
}

// RestoreQueue implements Scheduler.
func (s *FRFCFS) RestoreQueue(st SchedState, dec func(QueuedState) *Queued) error {
	if len(st.Golden) > 0 || len(st.Silver) > 0 {
		return fmt.Errorf("dram: FR-FCFS checkpoint carries class-queue state")
	}
	s.queue = decQueue(s.queue, st.Normal, dec)
	return nil
}

// SnapshotQueue implements Scheduler.
func (s *FCFS) SnapshotQueue(enc func(*Queued) QueuedState) SchedState {
	return SchedState{Normal: encQueue(s.queue, enc)}
}

// RestoreQueue implements Scheduler.
func (s *FCFS) RestoreQueue(st SchedState, dec func(QueuedState) *Queued) error {
	if len(st.Golden) > 0 || len(st.Silver) > 0 {
		return fmt.Errorf("dram: FCFS checkpoint carries class-queue state")
	}
	s.queue = decQueue(s.queue, st.Normal, dec)
	return nil
}

// SnapshotQueue implements Scheduler.
func (s *MASKSched) SnapshotQueue(enc func(*Queued) QueuedState) SchedState {
	return SchedState{
		Golden:      encQueue(s.golden, enc),
		Silver:      encQueue(s.silver, enc),
		Normal:      encQueue(s.normal, enc),
		SilverApp:   s.silverApp,
		SilverQuota: s.silverQuota,
	}
}

// RestoreQueue implements Scheduler.
func (s *MASKSched) RestoreQueue(st SchedState, dec func(QueuedState) *Queued) error {
	if st.SilverApp >= s.numApps {
		return fmt.Errorf("dram: silver turn app %d out of range (%d apps)", st.SilverApp, s.numApps)
	}
	s.golden = decQueue(s.golden, st.Golden, dec)
	s.silver = decQueue(s.silver, st.Silver, dec)
	s.normal = decQueue(s.normal, st.Normal, dec)
	s.silverApp = st.SilverApp
	s.silverQuota = st.SilverQuota
	return nil
}

func encQueue(queue []*Queued, enc func(*Queued) QueuedState) []QueuedState {
	var out []QueuedState
	for _, q := range queue {
		out = append(out, enc(q))
	}
	return out
}

func decQueue(dst []*Queued, src []QueuedState, dec func(QueuedState) *Queued) []*Queued {
	dst = dst[:0]
	for _, qs := range src {
		dst = append(dst, dec(qs))
	}
	return dst
}
