package dram

import (
	"testing"

	"masksim/internal/memreq"
)

func TestQueueSnapshotBreakdown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 2
	d := New(cfg, func(int) Scheduler { return NewMASKSched(2, 0, nil) })

	// Addresses on channel 0: frame numbers divisible by cfg.Channels.
	addr := func(frame uint64) uint64 { return frame << frameShift }
	for i := uint64(0); i < 5; i++ {
		if !d.Submit(0, &memreq.Request{Kind: memreq.Read, Class: memreq.Data, AppID: 1, Addr: addr(2 * i)}) {
			t.Fatal("data submit refused")
		}
	}
	for i := uint64(0); i < 3; i++ {
		if !d.Submit(0, &memreq.Request{Kind: memreq.Read, Class: memreq.Translation, AppID: 0, Addr: addr(2 * i)}) {
			t.Fatal("translation submit refused")
		}
	}

	snap := d.QueueSnapshot(nil)
	if len(snap) != 2 {
		t.Fatalf("%d channel snapshots, want 2", len(snap))
	}
	c0 := snap[0]
	if c0.Golden != 3 || c0.Silver != 0 || c0.Normal != 5 {
		t.Fatalf("channel 0 breakdown = %d/%d/%d, want 3 golden, 0 silver, 5 normal",
			c0.Golden, c0.Silver, c0.Normal)
	}
	if c0.Total() != d.QueueLen() {
		t.Fatalf("snapshot total %d != QueueLen %d", c0.Total(), d.QueueLen())
	}
	perBankSum := 0
	for _, n := range c0.PerBank {
		perBankSum += n
	}
	if perBankSum != c0.Total() {
		t.Fatalf("per-bank counts sum to %d, want %d", perBankSum, c0.Total())
	}
	if snap[1].Total() != 0 {
		t.Fatalf("channel 1 reports %d queued requests, want 0", snap[1].Total())
	}

	// Reuse: a second snapshot into the same backing slices must not grow.
	snap2 := d.QueueSnapshot(snap)
	if &snap2[0] != &snap[0] {
		t.Fatal("snapshot reallocated despite sufficient capacity")
	}
}

func TestQueueSnapshotPlainSchedulers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	d := New(cfg, func(int) Scheduler { return NewFRFCFS(0) })
	d.Submit(0, &memreq.Request{Kind: memreq.Read, Class: memreq.Translation, Addr: 0})
	d.Submit(0, &memreq.Request{Kind: memreq.Read, Class: memreq.Data, Addr: 64})
	snap := d.QueueSnapshot(nil)
	if snap[0].Golden != 0 || snap[0].Normal != 2 {
		t.Fatalf("FR-FCFS breakdown = %+v, want everything in Normal", snap[0])
	}
}
