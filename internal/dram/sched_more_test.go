package dram

import (
	"testing"

	"masksim/internal/memreq"
)

func transQ(arrival int64) *Queued {
	return &Queued{Req: &memreq.Request{Class: memreq.Translation}, Arrival: arrival}
}

func dataQ(app int, arrival int64) *Queued {
	return &Queued{Req: &memreq.Request{Class: memreq.Data, AppID: app}, Arrival: arrival}
}

func TestMASKTranslationSpillsWhenGoldenFull(t *testing.T) {
	s := NewMASKSched(2, 0, nil) // silver disabled
	for i := 0; i < 16; i++ {
		if !s.Enqueue(int64(i), transQ(int64(i))) {
			t.Fatalf("golden enqueue %d failed", i)
		}
	}
	g, sv, n := s.QueueLens()
	if g != 16 || sv != 0 || n != 0 {
		t.Fatalf("lens %d/%d/%d before spill", g, sv, n)
	}
	// The 17th translation spills into silver.
	if !s.Enqueue(16, transQ(16)) {
		t.Fatal("spill enqueue failed")
	}
	g, sv, _ = s.QueueLens()
	if g != 16 || sv != 1 {
		t.Fatalf("lens %d/%d after spill, want 16/1", g, sv)
	}
}

func TestMASKRejectsWhenAllQueuesFull(t *testing.T) {
	s := NewMASKSched(1, 0, nil)
	// Fill normal (192 cap).
	for i := 0; i < 192; i++ {
		if !s.Enqueue(0, dataQ(0, 0)) {
			t.Fatalf("normal enqueue %d failed", i)
		}
	}
	if s.Enqueue(0, dataQ(0, 0)) {
		t.Fatal("data accepted beyond normal capacity with silver disabled")
	}
}

func TestMASKSilverBeatsNormalAtEqualLocality(t *testing.T) {
	s := NewMASKSched(2, 500, nil)
	banks := []Bank{{OpenRow: -1, ReadyAt: 0}}
	older := dataQ(1, 0) // app 1 -> normal (app 0 holds the first turn)
	older.Bank, older.Row = 0, 5
	s.Enqueue(0, older)
	silver := dataQ(0, 10) // app 0 -> silver
	silver.Bank, silver.Row = 0, 6
	s.Enqueue(10, silver)
	if got := s.Pick(20, banks); got != silver {
		t.Fatal("silver request did not beat older normal request")
	}
}

func TestMASKRowHitBeatsSilverMiss(t *testing.T) {
	s := NewMASKSched(2, 500, nil)
	banks := []Bank{{OpenRow: 7, ReadyAt: 0}}
	hit := dataQ(1, 0) // normal queue, but an open-row hit
	hit.Bank, hit.Row = 0, 7
	s.Enqueue(0, hit)
	silver := dataQ(0, 10) // silver, row miss
	silver.Bank, silver.Row = 0, 3
	s.Enqueue(10, silver)
	if got := s.Pick(20, banks); got != hit {
		t.Fatal("row-locality preservation across queues broken")
	}
}

func TestMASKLenCountsAllQueues(t *testing.T) {
	s := NewMASKSched(2, 500, nil)
	s.Enqueue(0, transQ(0))
	s.Enqueue(0, dataQ(0, 0))
	s.Enqueue(0, dataQ(1, 0))
	if s.Len() != 3 {
		t.Fatalf("Len=%d, want 3", s.Len())
	}
}

func TestMASKPicksNothingWhenBanksBusy(t *testing.T) {
	s := NewMASKSched(1, 500, nil)
	banks := []Bank{{OpenRow: -1, ReadyAt: 100}}
	q := dataQ(0, 0)
	q.Bank = 0
	s.Enqueue(0, q)
	if s.Pick(10, banks) != nil {
		t.Fatal("picked a request for a busy bank")
	}
	if got := s.Pick(100, banks); got != q {
		t.Fatal("request not served once the bank freed")
	}
}

func TestFRFCFSEmptyPick(t *testing.T) {
	s := NewFRFCFS(4)
	if s.Pick(0, []Bank{{OpenRow: -1}}) != nil {
		t.Fatal("picked from an empty queue")
	}
}
