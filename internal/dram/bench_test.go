package dram

import (
	"testing"

	"masksim/internal/memreq"
)

func BenchmarkFRFCFSPickDeepQueue(b *testing.B) {
	s := NewFRFCFS(0)
	banks := make([]Bank, 16)
	for i := range banks {
		banks[i].OpenRow = -1
	}
	for i := 0; i < 64; i++ {
		s.Enqueue(int64(i), &Queued{
			Req: &memreq.Request{}, Arrival: int64(i),
			Bank: i % 16, Row: int64(i),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := s.Pick(int64(1000+i), banks)
		if q != nil {
			s.Enqueue(int64(1000+i), q) // keep the queue full
		}
	}
}

func BenchmarkDRAMTick(b *testing.B) {
	d := newFRFCFSDRAM()
	for i := 0; i < 32; i++ {
		d.Submit(0, &memreq.Request{Kind: memreq.Read, Addr: uint64(i) << 12})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick(int64(i))
	}
}
