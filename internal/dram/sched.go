package dram

import (
	"masksim/internal/engine"
	"masksim/internal/memreq"
)

// nextReadySched returns the earliest cycle >= now at which some request in
// queue could have a ready bank: now if any already does, the minimum bank
// ReadyAt otherwise, engine.NoEvent for an empty queue. This is deliberately
// conservative (early): a policy may decline to pick even with a ready bank
// (MASKSched's golden-age deferral), but every such deferral resolves through
// either a row-hit service or pure aging, both of which require ticking —
// and a ready bank forces "now" here, so those cycles are never skipped.
func nextReadySched(queue []*Queued, now int64, banks []Bank) int64 {
	h := engine.NoEvent
	for _, q := range queue {
		if r := banks[q.Bank].ReadyAt; r <= now {
			return now
		} else if r < h {
			h = r
		}
	}
	return h
}

// FRFCFS is the baseline First-Ready, First-Come-First-Served scheduler
// (Rixner et al. / Zuravleff & Robinson): among requests whose bank is ready,
// prefer a row-buffer hit; otherwise take the oldest. GPGPU data streams have
// high row locality, which is exactly why FR-FCFS de-prioritises the
// low-locality translation requests (§4.3, Figure 9).
type FRFCFS struct {
	cap   int
	queue []*Queued
}

// NewFRFCFS returns an FR-FCFS scheduler with the given queue capacity
// (0 = unbounded).
func NewFRFCFS(capacity int) *FRFCFS {
	return &FRFCFS{cap: capacity}
}

// Enqueue implements Scheduler.
func (s *FRFCFS) Enqueue(now int64, q *Queued) bool {
	if s.cap > 0 && len(s.queue) >= s.cap {
		return false
	}
	s.queue = append(s.queue, q)
	return true
}

// Len implements Scheduler.
func (s *FRFCFS) Len() int { return len(s.queue) }

// Pick implements Scheduler.
func (s *FRFCFS) Pick(now int64, banks []Bank) *Queued {
	idx := pickFRFCFS(s.queue, now, banks)
	if idx < 0 {
		return nil
	}
	return s.remove(idx)
}

func (s *FRFCFS) remove(idx int) *Queued {
	q := s.queue[idx]
	copy(s.queue[idx:], s.queue[idx+1:])
	s.queue = s.queue[:len(s.queue)-1]
	return q
}

// NextReady implements Scheduler.
func (s *FRFCFS) NextReady(now int64, banks []Bank) int64 {
	return nextReadySched(s.queue, now, banks)
}

// pickFRFCFS returns the index of the FR-FCFS choice in queue, or -1.
// Queues are kept in arrival order, so the first row-hit found is the oldest
// row-hit, and the first ready request found is the oldest ready request.
func pickFRFCFS(queue []*Queued, now int64, banks []Bank) int {
	oldestReady := -1
	for i, q := range queue {
		b := &banks[q.Bank]
		if b.ReadyAt > now {
			continue
		}
		if b.OpenRow == q.Row {
			return i // oldest row hit
		}
		if oldestReady < 0 {
			oldestReady = i
		}
	}
	return oldestReady
}

// PressureFunc reports, for an application, the two per-app metrics the
// Address-Space-Aware scheduler's Silver-Queue quota uses (§5.4 Eq. 1):
// the number of concurrent page walks and the number of warps stalled per
// active TLB miss. The TLB subsystem provides the implementation.
type PressureFunc func(app int) (concurrentPTW, warpsStalled float64)

// MASKSched is the Address-Space-Aware DRAM scheduler (§5.4). It splits the
// request buffer into three queues:
//
//   - Golden: a small FIFO holding address translation requests; always
//     serviced first. Translation requests have low row locality, so FIFO
//     order costs nothing (paper footnote 7).
//   - Silver: data demand requests of the one application currently holding
//     the silver turn; protects stall-prone applications from
//     bandwidth hogs.
//   - Normal: everything else, FR-FCFS.
//
// Applications take turns in the Silver Queue; each turn admits thresh_i
// requests computed from Equation 1.
// goldenAgeCap bounds how long a golden request defers to row-hit runs.
const goldenAgeCap = 400

type MASKSched struct {
	goldenCap, silverCap, normalCap int
	threshMax                       int
	numApps                         int
	pressure                        PressureFunc

	golden []*Queued
	silver []*Queued
	normal []*Queued

	silverApp   int
	silverQuota int
}

// NewMASKSched builds the scheduler. pressure may be nil (quotas then split
// evenly). Queue capacities follow §7.4: 16-entry Golden, 64-entry Silver,
// 192-entry Normal.
func NewMASKSched(numApps, threshMax int, pressure PressureFunc) *MASKSched {
	if numApps < 1 {
		numApps = 1
	}
	s := &MASKSched{
		goldenCap: 16, silverCap: 64, normalCap: 192,
		threshMax: threshMax,
		numApps:   numApps,
		pressure:  pressure,
	}
	s.silverApp = 0
	s.silverQuota = s.quotaFor(0)
	return s
}

// quotaFor evaluates Equation 1 for app i. A non-positive threshMax disables
// the Silver Queue entirely (ablation knob: Golden Queue only).
func (s *MASKSched) quotaFor(app int) int {
	if s.threshMax <= 0 {
		return 0
	}
	if s.pressure == nil || s.numApps == 1 {
		return s.threshMax / s.numApps
	}
	var sum, mine float64
	for j := 0; j < s.numApps; j++ {
		c, w := s.pressure(j)
		p := c * w
		sum += p
		if j == app {
			mine = p
		}
	}
	if sum <= 0 {
		return s.threshMax / s.numApps
	}
	q := int(float64(s.threshMax) * mine / sum)
	if q < 1 {
		q = 1
	}
	return q
}

// Enqueue implements Scheduler. Translation requests enter the Golden Queue
// (falling back to Silver, then Normal, if full). Data requests from the
// silver-turn application enter the Silver Queue while its quota lasts.
func (s *MASKSched) Enqueue(now int64, q *Queued) bool {
	if q.Req.Class == memreq.Translation {
		switch {
		case len(s.golden) < s.goldenCap:
			s.golden = append(s.golden, q)
		case len(s.silver) < s.silverCap:
			s.silver = append(s.silver, q)
		case len(s.normal) < s.normalCap:
			s.normal = append(s.normal, q)
		default:
			return false
		}
		return true
	}
	if q.Req.AppID == s.silverApp && s.silverQuota > 0 && len(s.silver) < s.silverCap {
		s.silver = append(s.silver, q)
		s.silverQuota--
		if s.silverQuota == 0 {
			s.advanceSilver()
		}
		return true
	}
	if len(s.normal) < s.normalCap {
		s.normal = append(s.normal, q)
		return true
	}
	return false
}

func (s *MASKSched) advanceSilver() {
	s.silverApp = (s.silverApp + 1) % s.numApps
	s.silverQuota = s.quotaFor(s.silverApp)
}

// Epoch forces a silver-turn rotation. The paper resets the scheduler's
// counters every epoch (§5.4); rotating here also guarantees an application
// whose quota never drains (because it is too stalled to send data requests)
// cannot hold the silver turn indefinitely.
func (s *MASKSched) Epoch() {
	s.advanceSilver()
}

// SilverApp returns the application currently holding the silver turn
// (test/introspection helper).
func (s *MASKSched) SilverApp() int { return s.silverApp }

// Len implements Scheduler.
func (s *MASKSched) Len() int {
	return len(s.golden) + len(s.silver) + len(s.normal)
}

// Pick implements Scheduler: the Golden Queue has strict priority
// (translations are latency-critical, stall many warps, and have low row
// locality — footnote 7); between Silver and Normal, open-row hits are
// served before row misses of either queue so that prioritization does not
// shred row-buffer batches, with Silver winning at equal locality. The
// paper specifies FR-FCFS within each data queue; serving cross-queue row
// hits first is the row-locality-preserving reading of that priority order
// (see DESIGN.md §5).
func (s *MASKSched) Pick(now int64, banks []Bank) *Queued {
	// A golden request normally waits for the pending row-hit run on its
	// bank to drain (hits pipeline at the column-command gap, so the wait
	// is tens of cycles) rather than closing a hot row; a request older
	// than goldenAgeCap is served unconditionally so translations cannot
	// starve behind a continuous hit stream — which is precisely the
	// FR-FCFS pathology MASK exists to fix (§4.3).
	var hitBanks uint64
	if len(s.golden) > 0 {
		for _, q := range s.silver {
			if banks[q.Bank].OpenRow == q.Row {
				hitBanks |= 1 << uint(q.Bank&63)
			}
		}
		for _, q := range s.normal {
			if banks[q.Bank].OpenRow == q.Row {
				hitBanks |= 1 << uint(q.Bank&63)
			}
		}
	}
	for i, q := range s.golden {
		if banks[q.Bank].ReadyAt > now {
			continue
		}
		if hitBanks&(1<<uint(q.Bank&63)) != 0 && now-q.Arrival < goldenAgeCap {
			continue
		}
		copy(s.golden[i:], s.golden[i+1:])
		s.golden = s.golden[:len(s.golden)-1]
		return q
	}
	silverHit, silverOldest := pickFRFCFSSplit(s.silver, now, banks)
	if silverHit >= 0 {
		return s.removeSilver(silverHit)
	}
	normalHit, normalOldest := pickFRFCFSSplit(s.normal, now, banks)
	if normalHit >= 0 {
		return s.removeNormal(normalHit)
	}
	if silverOldest >= 0 {
		return s.removeSilver(silverOldest)
	}
	if normalOldest >= 0 {
		return s.removeNormal(normalOldest)
	}
	return nil
}

// NextReady implements Scheduler: the minimum over the three queues. The
// helper's conservatism covers golden-age deferral: a deferred golden request
// implies its bank is ready, which already pins the horizon to now.
func (s *MASKSched) NextReady(now int64, banks []Bank) int64 {
	h := nextReadySched(s.golden, now, banks)
	if h == now {
		return now
	}
	if g := nextReadySched(s.silver, now, banks); g < h {
		h = g
	}
	if h == now {
		return now
	}
	if g := nextReadySched(s.normal, now, banks); g < h {
		h = g
	}
	return h
}

func (s *MASKSched) removeSilver(idx int) *Queued {
	q := s.silver[idx]
	copy(s.silver[idx:], s.silver[idx+1:])
	s.silver = s.silver[:len(s.silver)-1]
	return q
}

func (s *MASKSched) removeNormal(idx int) *Queued {
	q := s.normal[idx]
	copy(s.normal[idx:], s.normal[idx+1:])
	s.normal = s.normal[:len(s.normal)-1]
	return q
}

// pickFRFCFSSplit returns the oldest row-hit index and the oldest
// bank-ready index (either may be -1).
func pickFRFCFSSplit(queue []*Queued, now int64, banks []Bank) (hit, oldest int) {
	hit, oldest = -1, -1
	for i, q := range queue {
		b := &banks[q.Bank]
		if b.ReadyAt > now {
			continue
		}
		if b.OpenRow == q.Row {
			return i, oldest
		}
		if oldest < 0 {
			oldest = i
		}
	}
	return hit, oldest
}

// QueueLens returns the occupancy of (golden, silver, normal); test helper.
func (s *MASKSched) QueueLens() (int, int, int) {
	return len(s.golden), len(s.silver), len(s.normal)
}

// FCFS is a plain first-come-first-served scheduler with no row-buffer
// awareness, used by the §7.3 memory-scheduler sensitivity study as the
// alternative policy.
type FCFS struct {
	cap   int
	queue []*Queued
}

// NewFCFS returns an FCFS scheduler with the given capacity (0 = unbounded).
func NewFCFS(capacity int) *FCFS {
	return &FCFS{cap: capacity}
}

// Enqueue implements Scheduler.
func (s *FCFS) Enqueue(now int64, q *Queued) bool {
	if s.cap > 0 && len(s.queue) >= s.cap {
		return false
	}
	s.queue = append(s.queue, q)
	return true
}

// Len implements Scheduler.
func (s *FCFS) Len() int { return len(s.queue) }

// NextReady implements Scheduler.
func (s *FCFS) NextReady(now int64, banks []Bank) int64 {
	return nextReadySched(s.queue, now, banks)
}

// Pick implements Scheduler: the oldest request whose bank is ready.
func (s *FCFS) Pick(now int64, banks []Bank) *Queued {
	for i, q := range s.queue {
		if banks[q.Bank].ReadyAt <= now {
			copy(s.queue[i:], s.queue[i+1:])
			s.queue = s.queue[:len(s.queue)-1]
			return q
		}
	}
	return nil
}
