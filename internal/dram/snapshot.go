package dram

// QueueClass labels which scheduler queue a queued request sits in. Plain
// FR-FCFS/FCFS schedulers have a single queue, reported as QNormal; the MASK
// Address-Space-Aware scheduler splits into all three (§5.4).
type QueueClass uint8

const (
	QGolden QueueClass = iota
	QSilver
	QNormal
)

// QueueInspector is an optional Scheduler extension used by telemetry: Each
// visits every queued (not yet issued) request together with the class queue
// holding it. Order is unspecified.
type QueueInspector interface {
	InspectQueues(fn func(q *Queued, class QueueClass))
}

// InspectQueues implements QueueInspector.
func (s *FRFCFS) InspectQueues(fn func(q *Queued, class QueueClass)) {
	for _, q := range s.queue {
		fn(q, QNormal)
	}
}

// InspectQueues implements QueueInspector.
func (s *FCFS) InspectQueues(fn func(q *Queued, class QueueClass)) {
	for _, q := range s.queue {
		fn(q, QNormal)
	}
}

// InspectQueues implements QueueInspector.
func (s *MASKSched) InspectQueues(fn func(q *Queued, class QueueClass)) {
	for _, q := range s.golden {
		fn(q, QGolden)
	}
	for _, q := range s.silver {
		fn(q, QSilver)
	}
	for _, q := range s.normal {
		fn(q, QNormal)
	}
}

// ChannelSnapshot is one channel's queue occupancy at a sample point.
type ChannelSnapshot struct {
	// Golden/Silver/Normal is the class breakdown of queued requests.
	// Schedulers without class queues report everything as Normal.
	Golden, Silver, Normal int
	// PerBank counts queued requests per bank (zero-length if the channel's
	// scheduler does not support inspection).
	PerBank []int
	// Inflight counts issued-but-incomplete transfers.
	Inflight int
}

// Total returns the channel's queued request count.
func (c ChannelSnapshot) Total() int { return c.Golden + c.Silver + c.Normal }

// QueueSnapshot fills dst with per-channel queue occupancy (per-bank counts
// and golden/silver/normal breakdown) and returns it. dst is reused when its
// capacity allows, so an epoch sampler can call this allocation-free after
// the first sample.
func (d *DRAM) QueueSnapshot(dst []ChannelSnapshot) []ChannelSnapshot {
	if cap(dst) < len(d.channels) {
		dst = make([]ChannelSnapshot, len(d.channels))
	}
	dst = dst[:len(d.channels)]
	for i := range d.channels {
		ch := &d.channels[i]
		cs := &dst[i]
		cs.Golden, cs.Silver, cs.Normal = 0, 0, 0
		cs.Inflight = len(ch.inflight)
		if cap(cs.PerBank) < len(ch.banks) {
			cs.PerBank = make([]int, len(ch.banks))
		}
		cs.PerBank = cs.PerBank[:len(ch.banks)]
		for b := range cs.PerBank {
			cs.PerBank[b] = 0
		}
		insp, ok := ch.sched.(QueueInspector)
		if !ok {
			cs.Normal = ch.sched.Len()
			cs.PerBank = cs.PerBank[:0]
			continue
		}
		insp.InspectQueues(func(q *Queued, class QueueClass) {
			switch class {
			case QGolden:
				cs.Golden++
			case QSilver:
				cs.Silver++
			default:
				cs.Normal++
			}
			if q.Bank >= 0 && q.Bank < len(cs.PerBank) {
				cs.PerBank[q.Bank]++
			}
		})
	}
	return dst
}
