package dram

import (
	"testing"
	"testing/quick"

	"masksim/internal/memreq"
)

func testConfig() Config {
	c := DefaultConfig()
	c.Channels = 2
	c.BanksPerChannel = 4
	return c
}

func newFRFCFSDRAM() *DRAM {
	cfg := testConfig()
	return New(cfg, func(int) Scheduler { return NewFRFCFS(cfg.QueueCap) })
}

func drive(d *DRAM, from, to int64) {
	for now := from; now <= to; now++ {
		d.Tick(now)
	}
}

func TestMapDeterministicAndInRange(t *testing.T) {
	d := newFRFCFSDRAM()
	cfg := d.Config()
	f := func(addr uint64) bool {
		c1, b1, r1 := d.Map(addr)
		c2, b2, r2 := d.Map(addr)
		if c1 != c2 || b1 != b2 || r1 != r2 {
			return false
		}
		return c1 >= 0 && c1 < cfg.Channels && b1 >= 0 && b1 < cfg.BanksPerChannel && r1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameGranularChannelMapping(t *testing.T) {
	d := newFRFCFSDRAM()
	// All lines of one 4KB frame share a channel.
	frame := uint64(123)
	base := frame << 12
	c0, _, _ := d.Map(base)
	for off := uint64(64); off < 4096; off += 64 {
		c, _, _ := d.Map(base + off)
		if c != c0 {
			t.Fatalf("line at offset %d on channel %d, frame base on %d", off, c, c0)
		}
	}
	if c0 != d.ChannelOfFrame(frame) {
		t.Fatal("ChannelOfFrame disagrees with Map")
	}
}

func TestSameFrameSameRow(t *testing.T) {
	d := newFRFCFSDRAM() // RowBytes = 4096 = frame size
	_, b1, r1 := d.Map(0x5000)
	_, b2, r2 := d.Map(0x5FC0)
	if b1 != b2 || r1 != r2 {
		t.Fatal("lines of one frame landed on different rows")
	}
}

func TestReadCompletes(t *testing.T) {
	d := newFRFCFSDRAM()
	done := false
	r := &memreq.Request{Kind: memreq.Read, Addr: 0x1000, Issue: 0,
		Done: func(int64, *memreq.Request) { done = true }}
	if !d.Submit(0, r) {
		t.Fatal("submit rejected")
	}
	drive(d, 0, 200)
	if !done {
		t.Fatal("read never completed")
	}
	if r.Served != memreq.ServedDRAM {
		t.Fatalf("Served=%v", r.Served)
	}
	if d.Class[memreq.Data].Requests != 1 {
		t.Fatal("class counter not updated")
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	latency := func(a1, a2 uint64) int64 {
		d := newFRFCFSDRAM()
		var t1, t2 int64
		d.Submit(0, &memreq.Request{Kind: memreq.Read, Addr: a1,
			Done: func(now int64, _ *memreq.Request) { t1 = now }})
		drive(d, 0, 300)
		d.Submit(301, &memreq.Request{Kind: memreq.Read, Addr: a2,
			Done: func(now int64, _ *memreq.Request) { t2 = now }})
		drive(d, 301, 700)
		_ = t1
		return t2 - 301
	}
	// Same frame (row hit) vs same bank different row (conflict):
	// bank stride = channels*frameSize... frames on one (channel,bank)
	// repeat every channels*banks frames.
	hit := latency(0x0000, 0x0040)
	conflictAddr := uint64(2*4) << 12 // frame 8 → same channel 0, same bank 0
	conflict := latency(0x0000, conflictAddr)
	if hit >= conflict {
		t.Fatalf("row hit latency %d not faster than conflict %d", hit, conflict)
	}
}

func TestClosedRowPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.ClosedRowPolicy = true
	d := New(cfg, func(int) Scheduler { return NewFRFCFS(cfg.QueueCap) })
	var t1, t2 int64
	d.Submit(0, &memreq.Request{Kind: memreq.Read, Addr: 0x0000,
		Done: func(now int64, _ *memreq.Request) { t1 = now }})
	drive(d, 0, 300)
	d.Submit(301, &memreq.Request{Kind: memreq.Read, Addr: 0x0040,
		Done: func(now int64, _ *memreq.Request) { t2 = now }})
	drive(d, 301, 700)
	_ = t1
	// Under the closed-row policy the second access cannot be a row hit.
	if got := t2 - 301; got < cfg.RowClosedLatency {
		t.Fatalf("closed-row access took %d (< closed latency %d)", got, cfg.RowClosedLatency)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	s := NewFRFCFS(0)
	banks := []Bank{{OpenRow: 7, ReadyAt: 0}, {OpenRow: -1, ReadyAt: 0}}
	older := &Queued{Req: &memreq.Request{}, Arrival: 0, Bank: 1, Row: 3}
	hit := &Queued{Req: &memreq.Request{}, Arrival: 5, Bank: 0, Row: 7}
	s.Enqueue(0, older)
	s.Enqueue(5, hit)
	if got := s.Pick(10, banks); got != hit {
		t.Fatal("FR-FCFS did not prefer the row hit over the older request")
	}
	if got := s.Pick(10, banks); got != older {
		t.Fatal("remaining request not served")
	}
}

func TestFRFCFSSkipsBusyBanks(t *testing.T) {
	s := NewFRFCFS(0)
	banks := []Bank{{OpenRow: -1, ReadyAt: 100}, {OpenRow: -1, ReadyAt: 0}}
	blocked := &Queued{Req: &memreq.Request{}, Arrival: 0, Bank: 0, Row: 1}
	ready := &Queued{Req: &memreq.Request{}, Arrival: 5, Bank: 1, Row: 2}
	s.Enqueue(0, blocked)
	s.Enqueue(5, ready)
	if got := s.Pick(10, banks); got != ready {
		t.Fatal("scheduler picked a busy bank")
	}
}

func TestFCFSOrder(t *testing.T) {
	s := NewFCFS(0)
	banks := []Bank{{OpenRow: 7, ReadyAt: 0}}
	first := &Queued{Req: &memreq.Request{}, Arrival: 0, Bank: 0, Row: 3}
	hit := &Queued{Req: &memreq.Request{}, Arrival: 5, Bank: 0, Row: 7}
	s.Enqueue(0, first)
	s.Enqueue(5, hit)
	if got := s.Pick(10, banks); got != first {
		t.Fatal("FCFS reordered requests")
	}
}

func TestQueueCapacity(t *testing.T) {
	s := NewFRFCFS(2)
	q := func() *Queued { return &Queued{Req: &memreq.Request{}} }
	if !s.Enqueue(0, q()) || !s.Enqueue(0, q()) {
		t.Fatal("enqueue under capacity failed")
	}
	if s.Enqueue(0, q()) {
		t.Fatal("enqueue over capacity succeeded")
	}
}

func TestMASKGoldenPriority(t *testing.T) {
	s := NewMASKSched(2, 500, nil)
	banks := []Bank{{OpenRow: -1, ReadyAt: 0}}
	data := &Queued{Req: &memreq.Request{Class: memreq.Data, AppID: 1}, Arrival: 0, Bank: 0, Row: 1}
	trans := &Queued{Req: &memreq.Request{Class: memreq.Translation}, Arrival: 5, Bank: 0, Row: 2}
	s.Enqueue(0, data)
	s.Enqueue(5, trans)
	if got := s.Pick(10, banks); got != trans {
		t.Fatal("golden queue did not outrank data")
	}
}

func TestMASKGoldenDefersToRowHitRun(t *testing.T) {
	s := NewMASKSched(2, 500, nil)
	banks := []Bank{{OpenRow: 7, ReadyAt: 0}}
	hit := &Queued{Req: &memreq.Request{Class: memreq.Data, AppID: 1}, Arrival: 0, Bank: 0, Row: 7}
	trans := &Queued{Req: &memreq.Request{Class: memreq.Translation}, Arrival: 5, Bank: 0, Row: 2}
	s.Enqueue(0, hit)
	s.Enqueue(5, trans)
	if got := s.Pick(10, banks); got != hit {
		t.Fatal("golden request interrupted a pending row-hit")
	}
	// Once the run drains, the translation goes next.
	if got := s.Pick(11, banks); got != trans {
		t.Fatal("translation not served after the run drained")
	}
}

func TestMASKGoldenAgeCapBeatsStarvation(t *testing.T) {
	s := NewMASKSched(2, 500, nil)
	banks := []Bank{{OpenRow: 7, ReadyAt: 0}}
	trans := &Queued{Req: &memreq.Request{Class: memreq.Translation}, Arrival: 0, Bank: 0, Row: 2}
	s.Enqueue(0, trans)
	hit := &Queued{Req: &memreq.Request{Class: memreq.Data, AppID: 1}, Arrival: 1, Bank: 0, Row: 7}
	s.Enqueue(1, hit)
	// Beyond the age cap the translation is served despite the pending hit.
	if got := s.Pick(goldenAgeCap+1, banks); got != trans {
		t.Fatal("aged golden request still deferred")
	}
}

func TestMASKSilverQuotaRotation(t *testing.T) {
	s := NewMASKSched(2, 4, nil) // quota = 4/2 = 2 per app
	if s.SilverApp() != 0 {
		t.Fatal("initial silver app not 0")
	}
	mk := func(app int) *Queued {
		return &Queued{Req: &memreq.Request{Class: memreq.Data, AppID: app}}
	}
	s.Enqueue(0, mk(0))
	s.Enqueue(0, mk(0)) // exhausts app 0's quota
	if s.SilverApp() != 1 {
		t.Fatalf("silver turn did not rotate; still %d", s.SilverApp())
	}
	g, sv, n := s.QueueLens()
	if g != 0 || sv != 2 || n != 0 {
		t.Fatalf("queue lens %d/%d/%d", g, sv, n)
	}
	// App 0 (no longer silver) lands in normal.
	s.Enqueue(1, mk(0))
	_, _, n = s.QueueLens()
	if n != 1 {
		t.Fatal("non-silver app's request not in normal queue")
	}
}

func TestMASKThreshZeroDisablesSilver(t *testing.T) {
	s := NewMASKSched(2, 0, nil)
	q := &Queued{Req: &memreq.Request{Class: memreq.Data, AppID: 0}}
	s.Enqueue(0, q)
	_, sv, n := s.QueueLens()
	if sv != 0 || n != 1 {
		t.Fatalf("silver disabled but lens silver=%d normal=%d", sv, n)
	}
}

func TestMASKEpochRotatesSilver(t *testing.T) {
	s := NewMASKSched(3, 300, nil)
	was := s.SilverApp()
	s.Epoch()
	if s.SilverApp() == was {
		t.Fatal("epoch did not rotate the silver turn")
	}
}

func TestMASKQuotaFollowsPressure(t *testing.T) {
	pressure := func(app int) (float64, float64) {
		if app == 0 {
			return 10, 10 // 100
		}
		return 1, 1 // 1
	}
	s := NewMASKSched(2, 500, pressure)
	q0 := s.quotaFor(0)
	q1 := s.quotaFor(1)
	if q0 <= q1 {
		t.Fatalf("quota does not follow pressure: %d vs %d", q0, q1)
	}
}

func TestBandwidthCounters(t *testing.T) {
	d := newFRFCFSDRAM()
	for i := 0; i < 10; i++ {
		cls := memreq.Data
		if i%2 == 0 {
			cls = memreq.Translation
		}
		d.Submit(int64(i), &memreq.Request{Kind: memreq.Read, Class: cls,
			Addr: uint64(i) << 12, AppID: i % 2})
	}
	drive(d, 0, 500)
	if d.Class[memreq.Data].BusCycles == 0 || d.Class[memreq.Translation].BusCycles == 0 {
		t.Fatal("bus cycle counters not updated")
	}
	if d.BandwidthUtil(memreq.Data) <= 0 {
		t.Fatal("bandwidth utilization is zero")
	}
	if d.AppBusCycles(0) == 0 || d.AppBusCycles(1) == 0 {
		t.Fatal("per-app bus counters not updated")
	}
}

// Property: every submitted read completes exactly once within a bounded
// number of cycles, regardless of addresses.
func TestAllReadsCompleteProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		if len(addrs) > 64 {
			addrs = addrs[:64]
		}
		d := newFRFCFSDRAM()
		completed := 0
		for i, a := range addrs {
			ok := d.Submit(int64(i), &memreq.Request{
				Kind: memreq.Read, Addr: uint64(a) << 8,
				Done: func(int64, *memreq.Request) { completed++ },
			})
			if !ok {
				return false
			}
		}
		drive(d, 0, int64(200*len(addrs)+500))
		return completed == len(addrs) && d.Inflight() == 0 && d.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
