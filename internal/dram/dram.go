// Package dram models the GPU's GDDR5 main memory: channels, banks, row
// buffers, and pluggable request schedulers.
//
// The model captures the behaviours §4.3 and §5.4 of the paper depend on:
// row-buffer locality (row hits are much cheaper than row conflicts), a
// shared data bus per channel, and a scheduler that decides which queued
// request to service next. The baseline scheduler is FR-FCFS; MASK replaces
// it with the Address-Space-Aware scheduler (Golden/Silver/Normal queues)
// implemented in sched.go.
package dram

import (
	"masksim/internal/engine"
	"masksim/internal/memreq"
)

// Config describes the DRAM subsystem (paper Table 1: GDDR5, 8 channels,
// 8 banks, FR-FCFS, burst length 8).
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int
	LineSize        int

	// Latencies are in GPU core cycles.
	RowHitLatency    int64 // CAS only
	RowClosedLatency int64 // activate + CAS
	RowConflictLat   int64 // precharge + activate + CAS
	BusCycles        int64 // data-bus occupancy per transfer (burst)
	// SameRowGap is the column-to-column command gap (tCCD): consecutive
	// accesses to an open row pipeline at this rate, even though each one's
	// data latency is RowHitLatency. This is what makes coalesced streaming
	// cheap and makes row-missing (translation) requests comparatively
	// expensive — the asymmetry behind the paper's Figure 9.
	SameRowGap int64

	// ClosedRowPolicy precharges after every access (§7.3 sensitivity).
	ClosedRowPolicy bool

	// QueueCap bounds each channel's request buffer.
	QueueCap int
}

// DefaultConfig mirrors the paper's Table 1 memory configuration with timing
// expressed in 1020MHz core cycles.
func DefaultConfig() Config {
	return Config{
		Channels:         8,
		BanksPerChannel:  16,
		RowBytes:         4096,
		LineSize:         64,
		RowHitLatency:    20,
		RowClosedLatency: 45,
		RowConflictLat:   65,
		BusCycles:        2,
		SameRowGap:       4,
		QueueCap:         256,
	}
}

// Scheduler selects the next request to service on a channel. Enqueue may
// refuse (queue full). Pick must return a request whose bank is ready at
// now, or nil. NextReady reports the earliest cycle >= now at which Pick
// could possibly return non-nil (engine.NoEvent when the queue is empty); it
// may be conservatively early but never late, so the engine can fast-forward
// over spans in which the channel provably stays idle.
type Scheduler interface {
	Enqueue(now int64, q *Queued) bool
	Pick(now int64, banks []Bank) *Queued
	NextReady(now int64, banks []Bank) int64
	Len() int
	// SnapshotQueue and RestoreQueue serialize the scheduler's queued
	// requests (and any policy state) for checkpointing; enc/dec convert
	// between live Queued wrappers and their serializable form (ckpt.go).
	SnapshotQueue(enc func(*Queued) QueuedState) SchedState
	RestoreQueue(st SchedState, dec func(QueuedState) *Queued) error
}

// Queued is a request waiting in (or in flight from) a channel.
type Queued struct {
	Req     *memreq.Request
	Arrival int64
	Bank    int
	Row     int64
	finish  int64
}

// Bank is the visible state of one DRAM bank, consulted by schedulers.
type Bank struct {
	OpenRow int64 // -1 when closed
	ReadyAt int64
}

// ClassCounters aggregates per-traffic-class DRAM statistics.
type ClassCounters struct {
	Requests  uint64
	BusCycles uint64
	LatSum    uint64 // cycles from channel arrival to data completion

	RowHits      uint64
	RowClosed    uint64
	RowConflicts uint64
}

// RowHitRate returns the fraction of issued requests that hit an open row.
func (c ClassCounters) RowHitRate() float64 {
	total := c.RowHits + c.RowClosed + c.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(total)
}

// AvgLatency returns the mean queueing+service latency.
func (c ClassCounters) AvgLatency() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.LatSum) / float64(c.Requests)
}

type channel struct {
	banks      []Bank
	sched      Scheduler
	busReadyAt int64
	inflight   []*Queued
}

// DRAM is the full memory subsystem. It implements cache.Backend.
type DRAM struct {
	cfg       Config
	lineShift uint
	channels  []channel

	// Class is indexed by memreq.Class.
	Class [2]ClassCounters
	// PerApp bus cycles, sized lazily.
	perAppBus []uint64

	startCycle int64
	lastCycle  int64

	// drop is a fault-injection hook: when it returns true for a completing
	// transfer, the response is discarded (the requester's Done callback never
	// runs). Used to prove the watchdog catches hung memory dependents.
	drop func(now int64) bool

	// qFree recycles Queued wrappers: Submit takes one, and it returns when
	// the scheduler refuses it or its transfer completes. Schedulers never
	// retain a Queued after Pick, so recycling at completion is safe.
	qFree []*Queued
}

func (d *DRAM) getQueued() *Queued {
	if n := len(d.qFree); n > 0 {
		q := d.qFree[n-1]
		d.qFree[n-1] = nil
		d.qFree = d.qFree[:n-1]
		return q
	}
	return &Queued{}
}

func (d *DRAM) putQueued(q *Queued) {
	*q = Queued{}
	d.qFree = append(d.qFree, q)
}

// New builds the DRAM model. mkSched constructs one scheduler per channel.
func New(cfg Config, mkSched func(chanIdx int) Scheduler) *DRAM {
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	d := &DRAM{
		cfg:       cfg,
		lineShift: shift,
		channels:  make([]channel, cfg.Channels),
	}
	for i := range d.channels {
		ch := &d.channels[i]
		ch.banks = make([]Bank, cfg.BanksPerChannel)
		for b := range ch.banks {
			ch.banks[b].OpenRow = -1
		}
		ch.sched = mkSched(i)
	}
	return d
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() Config { return d.cfg }

// frameShift is log2 of the 4KB physical frame used for channel
// interleaving; it matches pagetable.FrameSize.
const frameShift = 12

// Map decomposes a physical address into (channel, bank, row).
//
// Interleaving is frame-granular: a whole 4KB frame lives on one channel, so
// (1) sequential lines within a frame share a row buffer (streaming patterns
// enjoy row hits) and (2) the Static baseline can partition channels between
// applications by constraining frame allocation (ChannelOfFrame).
// Consecutive frames rotate across channels, spreading bandwidth.
func (d *DRAM) Map(addr uint64) (chanIdx, bank int, row int64) {
	frame := addr >> frameShift
	chanIdx = int(frame % uint64(d.cfg.Channels))
	fc := frame / uint64(d.cfg.Channels)
	bank = int(fc % uint64(d.cfg.BanksPerChannel))
	rowsPerFrame := int64((1 << frameShift) / d.cfg.RowBytes)
	if rowsPerFrame < 1 {
		rowsPerFrame = 1
	}
	rowInFrame := int64(addr&((1<<frameShift)-1)) / int64(d.cfg.RowBytes)
	if rowInFrame >= rowsPerFrame {
		rowInFrame = rowsPerFrame - 1
	}
	row = int64(fc/uint64(d.cfg.BanksPerChannel))*rowsPerFrame + rowInFrame
	return
}

// ChannelOfFrame returns the DRAM channel that physical frame number frame
// maps to; the Static baseline's allocator constraint uses it to confine an
// application's footprint (data and page tables) to its channel partition.
func (d *DRAM) ChannelOfFrame(frame uint64) int {
	return int(frame % uint64(d.cfg.Channels))
}

// Submit implements cache.Backend: route the request to its channel queue.
func (d *DRAM) Submit(now int64, r *memreq.Request) bool {
	chanIdx, bank, row := d.Map(r.Addr)
	q := d.getQueued()
	q.Req, q.Arrival, q.Bank, q.Row = r, now, bank, row
	if !d.channels[chanIdx].sched.Enqueue(now, q) {
		d.putQueued(q)
		return false
	}
	return true
}

// Tick advances every channel: completes finished transfers and issues new
// ones chosen by the scheduler.
func (d *DRAM) Tick(now int64) {
	d.lastCycle = now
	for i := range d.channels {
		ch := &d.channels[i]

		// Complete transfers whose data has arrived.
		nkeep := 0
		for _, q := range ch.inflight {
			if q.finish <= now {
				d.complete(now, q)
			} else {
				ch.inflight[nkeep] = q
				nkeep++
			}
		}
		ch.inflight = ch.inflight[:nkeep]

		// Issue one request per cycle if the scheduler has a ready candidate.
		q := ch.sched.Pick(now, ch.banks)
		if q == nil {
			continue
		}
		bank := &ch.banks[q.Bank]
		cls := q.Req.Class
		var svc int64
		switch {
		case bank.OpenRow == q.Row:
			svc = d.cfg.RowHitLatency
			d.Class[cls].RowHits++
		case bank.OpenRow < 0:
			svc = d.cfg.RowClosedLatency
			d.Class[cls].RowClosed++
		default:
			svc = d.cfg.RowConflictLat
			d.Class[cls].RowConflicts++
		}
		finish := now + svc
		if t := ch.busReadyAt + d.cfg.BusCycles; t > finish {
			finish = t
		}
		ch.busReadyAt = finish
		// Banks are pipelined two ways: the data transfer overlaps on the
		// shared bus while the bank works, and row hits accept the next
		// column command after only SameRowGap cycles, so a coalesced burst
		// streams out of an open row far faster than its per-request
		// latency.
		if bank.OpenRow == q.Row && !d.cfg.ClosedRowPolicy {
			gap := d.cfg.SameRowGap
			if gap <= 0 {
				gap = svc
			}
			bank.ReadyAt = now + gap
		} else {
			bank.ReadyAt = now + svc
		}
		if d.cfg.ClosedRowPolicy {
			bank.OpenRow = -1
		} else {
			bank.OpenRow = q.Row
		}
		q.finish = finish
		ch.inflight = append(ch.inflight, q)

		d.Class[cls].BusCycles += uint64(d.cfg.BusCycles)
		app := q.Req.AppID
		if app >= 0 {
			for len(d.perAppBus) <= app {
				d.perAppBus = append(d.perAppBus, 0)
			}
			d.perAppBus[app] += uint64(d.cfg.BusCycles)
		}
	}
}

// NextEvent implements engine.EventSource: the minimum over channels of the
// earliest in-flight completion and the scheduler's earliest possible issue.
// Fault-injection drop hooks need no special case — they are consulted at
// completion cycles, which are exactly the cycles this horizon wakes.
func (d *DRAM) NextEvent(now int64) int64 {
	h := engine.NoEvent
	for i := range d.channels {
		ch := &d.channels[i]
		for _, q := range ch.inflight {
			if q.finish < h {
				h = q.finish
			}
		}
		if g := ch.sched.NextReady(now, ch.banks); g < h {
			h = g
		}
		if h <= now {
			return now
		}
	}
	return h
}

// SkipTo implements engine.Skipper: Tick stamps lastCycle on every cycle (it
// feeds BandwidthUtil's elapsed-time denominator), so a skipped span must
// leave the same stamp the tick at to-1 would have.
func (d *DRAM) SkipTo(from, to int64) {
	d.lastCycle = to - 1
}

// SetDropHook installs a fault-injection hook consulted when a transfer
// completes; returning true silently discards the response. Pass nil to
// clear.
func (d *DRAM) SetDropHook(fn func(now int64) bool) {
	d.drop = fn
}

func (d *DRAM) complete(now int64, q *Queued) {
	req := q.Req
	cls := req.Class
	d.Class[cls].Requests++
	d.Class[cls].LatSum += uint64(now - q.Arrival)
	d.putQueued(q)
	if d.drop != nil && d.drop(now) {
		return // the Request is stranded by design (fault injection)
	}
	req.Complete(now, memreq.ServedDRAM)
}

// BandwidthUtil returns the fraction of total channel-cycles the data buses
// were busy for the given class, over the window since ResetWindow (or the
// whole run). This feeds the paper's Figure 8 reproduction.
func (d *DRAM) BandwidthUtil(class memreq.Class) float64 {
	elapsed := d.lastCycle - d.startCycle
	if elapsed <= 0 {
		return 0
	}
	total := float64(elapsed) * float64(d.cfg.Channels)
	return float64(d.Class[class].BusCycles) / total
}

// AppBusCycles returns the data-bus cycles consumed by app.
func (d *DRAM) AppBusCycles(app int) uint64 {
	if app < 0 || app >= len(d.perAppBus) {
		return 0
	}
	return d.perAppBus[app]
}

// QueueLen returns the number of queued (not yet issued) requests.
func (d *DRAM) QueueLen() int {
	n := 0
	for i := range d.channels {
		n += d.channels[i].sched.Len()
	}
	return n
}

// Inflight returns the number of issued-but-incomplete transfers.
func (d *DRAM) Inflight() int {
	n := 0
	for i := range d.channels {
		n += len(d.channels[i].inflight)
	}
	return n
}
