package experiments

import (
	"masksim/internal/workload"
	"masksim/sim"
)

// Fig5 reproduces Figure 5: the average number of concurrent page table
// walks per application (run alone on the SharedTLB baseline). The paper
// samples every 10K cycles and observes values from a handful up to the
// 64-walk limit.
func Fig5(h *Harness, full bool) (*Table, error) {
	return perAppWalkTable(h, full, "fig5",
		"average concurrent page table walks (app alone, SharedTLB)",
		"paper: >20 outstanding walks for many applications; walker admits 64",
		func(r *sim.Results) (float64, float64) {
			return r.Walker.AvgConcurrent(), float64(r.Walker.ActiveMax)
		},
		[]string{"benchmark", "avgConcurrentWalks", "maxSampled"})
}

// Fig6 reproduces Figure 6: the average number of warps stalled per TLB
// miss (per active L1 TLB miss entry).
func Fig6(h *Harness, full bool) (*Table, error) {
	return perAppWalkTable(h, full, "fig6",
		"average warps stalled per TLB miss (app alone, SharedTLB)",
		"paper: up to >30 of 64 warps; our streams merge more at the L1, so values are lower but ordering holds",
		func(r *sim.Results) (float64, float64) {
			return r.Apps[0].L1TLB.AvgStalledWarps(), r.Apps[0].L1TLB.MissRate() * 100
		},
		[]string{"benchmark", "warpsStalledPerMiss", "L1missRate%"})
}

func perAppWalkTable(h *Harness, full bool, id, title, note string,
	metric func(*sim.Results) (float64, float64), cols []string) (*Table, error) {
	apps := appSet(full)
	t := &Table{ID: id, Title: title, Note: note, Cols: cols}
	jobs := make([]BatchJob, len(apps))
	for i, a := range apps {
		jobs[i] = BatchJob{Cfg: sim.SharedTLBConfig(), Alone: a, Cores: 30}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	for i, a := range apps {
		v1, v2 := metric(results[i])
		t.AddRowf(1, a, v1, v2)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: the shared L2 TLB miss rate of each application
// in four representative pairs, alone versus shared.
func Fig7(h *Harness, full bool) (*Table, error) {
	pairs := pairSetFig7(full)
	t := &Table{
		ID:    "fig7",
		Title: "L2 TLB miss rate: alone vs shared (inter-address-space interference)",
		Note:  "paper: sharing raises the miss rate significantly for most applications",
		Cols:  []string{"pair", "app", "aloneMiss%", "sharedMiss%"},
	}
	// Three jobs per pair: the shared run, then each app alone on half the
	// GPU. The batch saturates the pool; identical alone runs across pairs
	// collapse in the result cache.
	var jobs []BatchJob
	for _, p := range pairs {
		jobs = append(jobs, BatchJob{Cfg: sim.SharedTLBConfig(), Names: []string{p.A, p.B}})
		for _, name := range []string{p.A, p.B} {
			jobs = append(jobs, BatchJob{Cfg: sim.SharedTLBConfig(), Alone: name, Cores: 15})
		}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range pairs {
		shared := results[3*i]
		for k, name := range []string{p.A, p.B} {
			aloneRes := results[3*i+1+k]
			t.AddRowf(1, p.Name(), name,
				100*aloneRes.Apps[0].L2TLB.MissRate(),
				100*shared.Apps[k].L2TLB.MissRate())
		}
	}
	return t, nil
}

func pairSetFig7(full bool) []workload.Pair {
	_ = full // Figure 7 always uses its four representative pairs
	return workload.Fig7Pairs
}

func init() {
	register("fig5", "average concurrent page walks per app (Figure 5)", one(Fig5))
	register("fig6", "average warps stalled per TLB miss (Figure 6)", one(Fig6))
	register("fig7", "shared L2 TLB miss rate: alone vs shared (Figure 7)", one(Fig7))
}
