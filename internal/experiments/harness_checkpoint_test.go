package experiments

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"masksim/sim"
)

// countCheckpoints returns the number of *.ckpt files in dir.
func countCheckpoints(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			n++
		}
	}
	return n
}

// TestHarnessCheckpointResume proves the kill-safe campaign path end to end:
// a worker that wrote periodic checkpoints and then died leaves its files
// behind; a fresh harness pointed at the same checkpoint directory resumes
// the cell mid-run, produces Results bit-identical to an uninterrupted
// simulation, counts the resume in the campaign stats, and deletes the
// now-useless checkpoints once the cell completes.
func TestHarnessCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cfg := sim.SharedTLBConfig()
	names := []string{"MM", "RED"}
	const cycles = 4000

	ref, err := sim.Run(context.Background(), cfg, names, cycles)
	if err != nil {
		t.Fatal(err)
	}

	// The "interrupted" worker: same cell with checkpointing on. Its periodic
	// checkpoints (cycles 1700 and 3400) survive it; nobody cleans them up.
	icfg := cfg
	icfg.CheckpointDir = dir
	icfg.CheckpointEvery = 1700
	s, err := sim.Prepare(icfg, names)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), cycles); err != nil {
		t.Fatal(err)
	}
	if n := countCheckpoints(t, dir); n != 2 {
		t.Fatalf("seed run left %d checkpoints, want 2", n)
	}

	h := NewHarness(cycles)
	h.CheckpointDir = dir
	h.CheckpointEvery = 1700
	res, err := h.Run(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("resumed harness run diverged from uninterrupted reference")
	}
	st := h.Stats()
	if st.CheckpointsRestored != 1 || st.CheckpointsRejected != 0 {
		t.Fatalf("stats = restored=%d rejected=%d, want restored=1 rejected=0",
			st.CheckpointsRestored, st.CheckpointsRejected)
	}
	if n := countCheckpoints(t, dir); n != 0 {
		t.Fatalf("completed cell left %d checkpoints behind, want 0", n)
	}
}

// TestHarnessCheckpointCleanStart checks the no-prior-state path: with a
// checkpoint directory configured but empty, runs start clean (nothing to
// restore, nothing rejected) and still take their periodic checkpoints, which
// are removed on completion.
func TestHarnessCheckpointCleanStart(t *testing.T) {
	dir := t.TempDir()
	h := NewHarness(4000)
	h.CheckpointDir = dir
	h.CheckpointEvery = 1700
	ref, err := sim.Run(context.Background(), sim.SharedTLBConfig(), []string{"MM"}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(sim.SharedTLBConfig(), []string{"MM"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("checkpointed harness run diverged from plain reference")
	}
	st := h.Stats()
	if st.CheckpointsTaken != 2 || st.CheckpointsRestored != 0 || st.CheckpointsRejected != 0 {
		t.Fatalf("stats = taken=%d restored=%d rejected=%d, want taken=2 restored=0 rejected=0",
			st.CheckpointsTaken, st.CheckpointsRestored, st.CheckpointsRejected)
	}
	if n := countCheckpoints(t, dir); n != 0 {
		t.Fatalf("completed run left %d checkpoints behind, want 0", n)
	}
}
