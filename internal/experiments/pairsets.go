package experiments

import "masksim/internal/workload"

// RepresentativePairs is the default (fast) pair set for the figure-11-class
// experiments: three pairs per n-HMR category, spanning the behaviours of
// the full 35-pair list. The -full flag switches to workload.Pairs35.
var RepresentativePairs = []workload.Pair{
	// 0-HMR
	{A: "HISTO", B: "GUP"}, {A: "NW", B: "HS"}, {A: "RAY", B: "GUP"},
	// 1-HMR
	{A: "3DS", B: "HISTO"}, {A: "RED", B: "BP"}, {A: "TRD", B: "LPS"},
	// 2-HMR
	{A: "MM", B: "CONS"}, {A: "SCAN", B: "SRAD"}, {A: "TRD", B: "RED"},
}

// pairSet selects the pair list for an experiment run.
func pairSet(full bool) []workload.Pair {
	if full {
		return workload.Pairs35
	}
	return RepresentativePairs
}

// appSet returns the benchmark list used by the per-application figures
// (Figures 5 and 6 evaluate 30 applications).
func appSet(full bool) []string {
	if full {
		return workload.Names()
	}
	return []string{"3DS", "BFS2", "BP", "CONS", "GUP", "HISTO", "LPS", "LUD", "MM", "MUM", "NN", "RED", "SCAN"}
}

// categorize splits pairs by HMR count.
func categorize(pairs []workload.Pair) (zero, one, two []workload.Pair) {
	for _, p := range pairs {
		switch p.HMRCount() {
		case 0:
			zero = append(zero, p)
		case 1:
			one = append(one, p)
		default:
			two = append(two, p)
		}
	}
	return
}

// figConfigs returns the eight configurations of Figures 11-15 in order.
func figConfigs() []string {
	return []string{"Static", "PWCache", "SharedTLB", "MASK-TLB", "MASK-Cache", "MASK-DRAM", "MASK", "Ideal"}
}
