package experiments

import (
	"fmt"

	"masksim/internal/metrics"
	"masksim/internal/workload"
	"masksim/sim"
)

// Tab3 reproduces Table 3: performance of SharedTLB and MASK normalized to
// Ideal as the number of concurrently-executing applications grows from one
// to five. The paper's values fall with app count while MASK's advantage
// grows.
func Tab3(h *Harness, full bool) (*Table, error) {
	appPool := []string{"3DS", "HISTO", "CONS", "GUP", "RED"}
	t := &Table{
		ID:    "tab3",
		Title: "scalability: performance normalized to Ideal vs app count",
		Note:  "paper: SharedTLB 47.1%..33.1%, MASK 68.5%..52.9% for 1..5 apps",
		Cols:  []string{"apps", "SharedTLB/Ideal%", "MASK/Ideal%"},
	}
	cfgNames := []string{"Ideal", "SharedTLB", "MASK"}
	var jobs []BatchJob
	for n := 1; n <= 5; n++ {
		for _, cfgName := range cfgNames {
			cfg, _ := sim.ConfigByName(cfgName)
			jobs = append(jobs, BatchJob{Cfg: cfg, Names: appPool[:n]})
		}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	for n := 1; n <= 5; n++ {
		// Total IPC is the cross-config comparable quantity here; the paper
		// normalizes each design's throughput to Ideal's.
		base := (n - 1) * len(cfgNames)
		ideal := results[base].TotalIPC
		shared := results[base+1].TotalIPC
		mask := results[base+2].TotalIPC
		t.AddRowf(1, fmt.Sprintf("%d", n), 100*shared/ideal, 100*mask/ideal)
	}
	return t, nil
}

// Tab4 reproduces Table 4: generality across GPU architectures — the
// Fermi-like and integrated-GPU-like platforms, with PWCache, SharedTLB and
// MASK normalized to each platform's Ideal.
func Tab4(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(false)
	if full {
		pairs = pairSet(true)
	}
	t := &Table{
		ID:    "tab4",
		Title: "generality: average performance normalized to Ideal per platform",
		Note:  "paper (Fermi): PWCache 53.1%, SharedTLB 60.4%, MASK 78.0%; (integrated): 52.1%, 38.2%, 64.5%",
		Cols:  []string{"platform", "PWCache%", "SharedTLB%", "MASK%"},
	}
	for _, plat := range []string{"Fermi", "Integrated"} {
		base, _ := sim.ConfigByName(plat)
		variant := func(mut func(*sim.Config)) sim.Config {
			c := base
			mut(&c)
			return c
		}
		cfgs := []sim.Config{
			variant(func(c *sim.Config) { c.Name = plat + "-PWCache"; c.Design = sim.DesignPWCache }),
			variant(func(c *sim.Config) { c.Name = plat + "-SharedTLB" }),
			variant(func(c *sim.Config) {
				c.Name = plat + "-MASK"
				c.Mask = sim.Mechanisms{Tokens: true, L2Bypass: true, DRAMSched: true}
			}),
			variant(func(c *sim.Config) { c.Name = plat + "-Ideal"; c.Ideal = true }),
		}
		m, err := h.RunMatrix(variant(func(c *sim.Config) { c.Name = plat + "-SharedTLB" }), cfgs, pairs)
		if err != nil {
			return nil, err
		}
		var pw, sh, mk []float64
		for _, p := range pairs {
			// Normalizing needs every design's cell for the pair; skip pairs
			// with any failed cell so means cover the survivors.
			if !m.OK(p) {
				continue
			}
			ideal := m.Cell(p, plat+"-Ideal").Metrics.WeightedSpeedup
			if ideal <= 0 {
				continue
			}
			pw = append(pw, m.Cell(p, plat+"-PWCache").Metrics.WeightedSpeedup/ideal)
			sh = append(sh, m.Cell(p, plat+"-SharedTLB").Metrics.WeightedSpeedup/ideal)
			mk = append(mk, m.Cell(p, plat+"-MASK").Metrics.WeightedSpeedup/ideal)
		}
		t.AddRowf(1, plat, 100*metrics.Mean(pw), 100*metrics.Mean(sh), 100*metrics.Mean(mk))
	}
	return t, nil
}

var _ = workload.Pairs35

func init() {
	register("tab3", "scalability 1-5 concurrent apps (Table 3)", one(Tab3))
	register("tab4", "generality across architectures (Table 4)", one(Tab4))
}
