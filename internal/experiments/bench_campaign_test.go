package experiments

import "testing"

// BenchmarkCampaignAll regenerates every registered experiment as one shared
// campaign at reduced scale, the shape of `maskexp all`. Beyond time/op it
// reports the scheduling efficiency this layer exists for: simulations
// actually executed per op (sims-exec) versus simulations requested
// (sims-req) — the gap is the work the campaign cache deduplicated.
// BENCH_campaign.json records the trajectory.
func BenchmarkCampaignAll(b *testing.B) {
	const benchCycles = 600
	b.ReportAllocs()
	var executed, requested uint64
	for i := 0; i < b.N; i++ {
		camp := RunCampaign(IDs(), Options{Cycles: benchCycles})
		for _, rep := range camp.Reports {
			if rep.Err != nil {
				b.Fatalf("%s: %v", rep.ID, rep.Err)
			}
		}
		executed += camp.Stats.Attempted
		requested += camp.Stats.CacheRequests
	}
	b.ReportMetric(float64(executed)/float64(b.N), "sims-exec/op")
	b.ReportMetric(float64(requested)/float64(b.N), "sims-req/op")
}

// BenchmarkCampaignAllUncached is the before picture: the same campaign with
// per-experiment harnesses and no memoization, i.e. the pre-cache `maskexp
// all` execution model where every experiment re-derives its own grid.
func BenchmarkCampaignAllUncached(b *testing.B) {
	const benchCycles = 600
	b.ReportAllocs()
	var executed uint64
	for i := 0; i < b.N; i++ {
		for _, id := range IDs() {
			h := NewHarness(benchCycles)
			h.Cache = nil
			if _, err := registry[id].run(h, false); err != nil {
				b.Fatalf("%s: %v", id, err)
			}
			executed += h.Stats().Attempted
		}
	}
	b.ReportMetric(float64(executed)/float64(b.N), "sims-exec/op")
}
