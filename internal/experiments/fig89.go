package experiments

import (
	"masksim/internal/memreq"
	"masksim/internal/metrics"
	"masksim/internal/workload"
	"masksim/sim"
)

// Fig8and9 reproduces Figures 8 and 9: for every two-application workload on
// the SharedTLB baseline, the DRAM bandwidth utilization and the average
// DRAM latency of address translation requests versus data demand requests.
//
// The paper's headline: translation consumes only a small share of the
// utilized bandwidth (13.8% of utilized, 2.4% of peak) yet suffers DRAM
// latencies comparable to or above data's because FR-FCFS favours
// row-buffer-friendly data streams.
func Fig8and9(h *Harness, full bool) ([]*Table, error) {
	pairs := pairSet(full)
	t8 := &Table{
		ID:    "fig8",
		Title: "DRAM bandwidth utilization by class (SharedTLB baseline)",
		Note:  "fraction of peak bandwidth; paper: translation averages 2.4% of peak, 13.8% of utilized",
		Cols:  []string{"pair", "translationBW%", "dataBW%", "transShareOfUtil%"},
	}
	t9 := &Table{
		ID:    "fig9",
		Title: "average DRAM latency by class (SharedTLB baseline)",
		Note:  "cycles from channel arrival to completion",
		Cols:  []string{"pair", "translationLat", "dataLat"},
	}
	jobs := make([]BatchJob, len(pairs))
	for i, p := range pairs {
		jobs[i] = BatchJob{Cfg: sim.SharedTLBConfig(), Names: []string{p.A, p.B}}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	var tshare, tlat, dlat []float64
	for i, p := range pairs {
		r := results[i]
		tb := r.DRAMBandwidthUtil[memreq.Translation]
		db := r.DRAMBandwidthUtil[memreq.Data]
		share := 0.0
		if tb+db > 0 {
			share = tb / (tb + db)
		}
		tshare = append(tshare, share)
		tl := r.DRAMClass[memreq.Translation].AvgLatency()
		dl := r.DRAMClass[memreq.Data].AvgLatency()
		tlat = append(tlat, tl)
		dlat = append(dlat, dl)
		t8.AddRowf(2, p.Name(), 100*tb, 100*db, 100*share)
		t9.AddRowf(0, p.Name(), tl, dl)
	}
	t8.AddRowf(2, "MEAN", 0.0, 0.0, 100*metrics.Mean(tshare))
	t9.AddRowf(0, "MEAN", metrics.Mean(tlat), metrics.Mean(dlat))
	return []*Table{t8, t9}, nil
}

var _ = workload.Pairs35 // keep import for pairSet's sibling usage

func init() {
	register("fig8", "DRAM bandwidth: translation vs data (Figure 8)",
		func(h *Harness, full bool) ([]*Table, error) {
			ts, err := Fig8and9(h, full)
			if err != nil {
				return nil, err
			}
			return ts[:1], nil
		})
	register("fig9", "DRAM latency: translation vs data (Figure 9)",
		func(h *Harness, full bool) ([]*Table, error) {
			ts, err := Fig8and9(h, full)
			if err != nil {
				return nil, err
			}
			return ts[1:], nil
		})
}
