package experiments

import (
	"sync"

	"masksim/internal/workload"
	"masksim/sim"
)

// fig11Cache memoizes the expensive (pairs × eight configurations) grid so
// that regenerating Figures 11-15 in one process assembles it only once.
// Entries are single-flight: when fig12..fig15 run concurrently in a
// campaign, the late arrivals wait for the one in-progress matrix instead of
// rebuilding it (the underlying simulations would be cache hits, but the
// alone-IPC bookkeeping and grid assembly need not repeat either).
var fig11Cache = struct {
	sync.Mutex
	m map[fig11Key]*fig11Entry
}{m: map[fig11Key]*fig11Entry{}}

type fig11Key struct {
	cycles int64
	full   bool
}

type fig11Entry struct {
	done chan struct{}
	m    *Matrix
	err  error
}

// fig11Matrix runs (or returns the memoized) grid shared by Figures 11-15.
// Only fully successful matrices stay memoized, so a transient failure in
// one figure does not poison later requests.
func fig11Matrix(h *Harness, full bool) (*Matrix, error) {
	key := fig11Key{h.Cycles, full}
	fig11Cache.Lock()
	if e, ok := fig11Cache.m[key]; ok {
		fig11Cache.Unlock()
		<-e.done
		return e.m, e.err
	}
	e := &fig11Entry{done: make(chan struct{})}
	fig11Cache.m[key] = e
	fig11Cache.Unlock()
	defer close(e.done)

	pairs := pairSet(full)
	var cfgs []sim.Config
	for _, n := range figConfigs() {
		c, _ := sim.ConfigByName(n)
		cfgs = append(cfgs, c)
	}
	e.m, e.err = h.RunMatrix(sim.SharedTLBConfig(), cfgs, pairs)

	if e.err != nil || len(e.m.Failed()) > 0 {
		fig11Cache.Lock()
		delete(fig11Cache.m, key)
		fig11Cache.Unlock()
	}
	return e.m, e.err
}

// Fig11 reproduces Figure 11: average weighted speedup per workload
// category for all eight configurations.
func Fig11(h *Harness, full bool) ([]*Table, error) {
	m, err := fig11Matrix(h, full)
	if err != nil {
		return nil, err
	}
	zero, one, two := categorize(m.Pairs)

	t := &Table{
		ID:    "fig11",
		Title: "multiprogrammed performance (weighted speedup) by category",
		Note:  "paper: MASK +57.8% over SharedTLB on average, within 23.2% of Ideal",
		Cols:  append([]string{"category"}, figConfigs()...),
	}
	for _, row := range []struct {
		name  string
		pairs []workload.Pair
	}{{"0-HMR", zero}, {"1-HMR", one}, {"2-HMR", two}, {"Average", nil}} {
		cells := []interface{}{row.name}
		for _, c := range figConfigs() {
			cells = append(cells, m.MeanWS(c, row.pairs))
		}
		t.AddRowf(3, cells...)
	}
	base := m.MeanWS("SharedTLB", nil)
	mask := m.MeanWS("MASK", nil)
	ideal := m.MeanWS("Ideal", nil)
	t.AddRow("")
	t.AddRowf(1, "MASK vs SharedTLB (%)", 100*(mask/base-1))
	t.AddRowf(1, "MASK vs Ideal (%)", 100*(mask/ideal-1))

	t2 := &Table{
		ID:    "fig11-ipc",
		Title: "IPC throughput by category (paper §7.1: MASK +43.4%)",
		Cols:  append([]string{"category"}, figConfigs()...),
	}
	for _, row := range []struct {
		name  string
		pairs []workload.Pair
	}{{"0-HMR", zero}, {"1-HMR", one}, {"2-HMR", two}, {"Average", nil}} {
		cells := []interface{}{row.name}
		for _, c := range figConfigs() {
			cells = append(cells, m.MeanIPCThroughput(c, row.pairs))
		}
		t2.AddRowf(2, cells...)
	}
	return []*Table{t, t2}, nil
}

// perPairTable renders one category's per-workload weighted speedups
// (Figures 12, 13, 14).
func perPairTable(m *Matrix, id, title string, pairs []workload.Pair) *Table {
	t := &Table{ID: id, Title: title, Cols: append([]string{"pair"}, figConfigs()...)}
	for _, p := range pairs {
		cells := []interface{}{p.Name()}
		for _, c := range figConfigs() {
			if cell := m.Cell(p, c); cell.OK() {
				cells = append(cells, cell.Metrics.WeightedSpeedup)
			} else {
				cells = append(cells, "FAILED")
			}
		}
		t.AddRowf(3, cells...)
	}
	return t
}

// Fig15 reproduces Figure 15: unfairness (maximum slowdown) by category for
// Static, PWCache, SharedTLB and MASK.
func Fig15(m *Matrix) *Table {
	zero, one, two := categorize(m.Pairs)
	cfgs := []string{"Static", "PWCache", "SharedTLB", "MASK"}
	t := &Table{
		ID:    "fig15",
		Title: "unfairness (maximum slowdown, lower is better) by category",
		Note:  "paper: MASK reduces unfairness by 22.4% vs SharedTLB",
		Cols:  append([]string{"category"}, cfgs...),
	}
	for _, row := range []struct {
		name  string
		pairs []workload.Pair
	}{{"0-HMR", zero}, {"1-HMR", one}, {"2-HMR", two}, {"Average", nil}} {
		cells := []interface{}{row.name}
		for _, c := range cfgs {
			cells = append(cells, m.MeanUnfairness(c, row.pairs))
		}
		t.AddRowf(3, cells...)
	}
	return t
}

func init() {
	register("fig11", "weighted speedup by category, all configs (Figure 11)", Fig11)
	register("fig12", "per-workload weighted speedup, 0-HMR (Figure 12)",
		func(h *Harness, full bool) ([]*Table, error) {
			m, err := fig11Matrix(h, full)
			if err != nil {
				return nil, err
			}
			zero, _, _ := categorize(m.Pairs)
			return []*Table{perPairTable(m, "fig12", "0-HMR per-workload weighted speedup", zero)}, nil
		})
	register("fig13", "per-workload weighted speedup, 1-HMR (Figure 13)",
		func(h *Harness, full bool) ([]*Table, error) {
			m, err := fig11Matrix(h, full)
			if err != nil {
				return nil, err
			}
			_, one, _ := categorize(m.Pairs)
			return []*Table{perPairTable(m, "fig13", "1-HMR per-workload weighted speedup", one)}, nil
		})
	register("fig14", "per-workload weighted speedup, 2-HMR (Figure 14)",
		func(h *Harness, full bool) ([]*Table, error) {
			m, err := fig11Matrix(h, full)
			if err != nil {
				return nil, err
			}
			_, _, two := categorize(m.Pairs)
			return []*Table{perPairTable(m, "fig14", "2-HMR per-workload weighted speedup", two)}, nil
		})
	register("fig15", "unfairness (max slowdown) by category (Figure 15)",
		func(h *Harness, full bool) ([]*Table, error) {
			m, err := fig11Matrix(h, full)
			if err != nil {
				return nil, err
			}
			return []*Table{Fig15(m)}, nil
		})
}
