package experiments

import (
	"fmt"

	"masksim/internal/memreq"
	"masksim/internal/workload"
	"masksim/sim"
)

// CalibPairs is a small representative pair set (one per category plus
// stress cases) used by the calibration experiment and quick benchmarks.
var CalibPairs = []workload.Pair{
	{A: "HISTO", B: "GUP"}, // 0-HMR: streaming + TLB-thrash-sensitive
	{A: "NW", B: "HS"},     // 0-HMR: gentle pair
	{A: "3DS", B: "HISTO"}, // 1-HMR
	{A: "RED", B: "BP"},    // 1-HMR
	{A: "3DS", B: "CONS"},  // 2-HMR (not in Pairs35; stress case)
	{A: "MM", B: "CONS"},   // 2-HMR
}

// Calib runs the standard configurations over CalibPairs and reports the
// indicators used to validate the substrate against the paper's expected
// shapes: weighted speedup per config, plus baseline-vs-Ideal diagnostics.
func Calib(h *Harness) (*Table, error) {
	var cfgs []sim.Config
	for _, name := range sim.ConfigNames() {
		c, _ := sim.ConfigByName(name)
		cfgs = append(cfgs, c)
	}
	m, err := h.RunMatrix(sim.SharedTLBConfig(), cfgs, CalibPairs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "calib",
		Title: "calibration matrix: weighted speedup per (pair, config)",
		Cols:  append([]string{"pair"}, m.Configs...),
	}
	for _, p := range CalibPairs {
		row := []interface{}{p.Name()}
		for _, c := range m.Configs {
			if cell := m.Cell(p, c); cell.OK() {
				row = append(row, cell.Metrics.WeightedSpeedup)
			} else {
				row = append(row, "FAILED")
			}
		}
		t.AddRowf(3, row...)
	}
	avg := []interface{}{"MEAN"}
	for _, c := range m.Configs {
		avg = append(avg, m.MeanWS(c, nil))
	}
	t.AddRowf(3, avg...)
	if failed := m.Failed(); len(failed) > 0 {
		t.Note = fmt.Sprintf("%d of %d cells failed; means cover survivors", len(failed), len(m.Pairs)*len(m.Configs))
	}

	// Diagnostics rows for the SharedTLB baseline and MASK.
	for _, cfgName := range []string{"SharedTLB", "MASK"} {
		for _, p := range CalibPairs {
			cell := m.Cell(p, cfgName)
			if !cell.OK() {
				t.AddRow("")
				t.AddRow("diag "+cfgName+" "+p.Name(), "FAILED: "+cell.Err.Error())
				continue
			}
			r := cell.Results
			t.AddRow("")
			t.AddRow("diag "+cfgName+" "+p.Name(),
				fm("idle=%.0f%%", 100*r.IdleFraction),
				fm("L1m=%.0f/%.0f%%", 100*r.Apps[0].L1TLB.MissRate(), 100*r.Apps[1].L1TLB.MissRate()),
				fm("L2m=%.0f/%.0f%%", 100*r.Apps[0].L2TLB.MissRate(), 100*r.Apps[1].L2TLB.MissRate()),
				fm("walks=%.0f", r.Walker.AvgConcurrent()),
				fm("wlat=%.0f", r.Walker.AvgLatency()),
				fm("stall=%.0f", r.Apps[0].L1TLB.AvgStalledWarps()),
				fm("tLat=%.0f dLat=%.0f", r.DRAMClass[memreq.Translation].AvgLatency(), r.DRAMClass[memreq.Data].AvgLatency()),
			)
		}
	}
	return t, nil
}

func fm(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
