package experiments

import (
	"fmt"

	"masksim/sim"
)

// Fig1 reproduces Figure 1: the execution-time overhead of time multiplexing
// N concurrently-launched processes versus running them back-to-back.
//
// The paper measures real NVIDIA K40 and GTX 1080 GPUs; we have no GPU, so
// (per DESIGN.md §1) we model the mechanism instead: when N processes
// time-share, every scheduling quantum begins with part of the GPU's TLB and
// cache state evicted by the other N-1 processes. The eviction fraction
// grows with N until the state is fully cold. Back-to-back execution has no
// such loss, so the overhead is the IPC ratio. The paper's kernel
// "interleaves basic arithmetic operations with loads and stores"; we use
// the MM profile, which has the same flavour.
func Fig1(h *Harness) (*Table, error) {
	t := &Table{
		ID:    "fig1",
		Title: "time-multiplexing overhead vs number of concurrent processes",
		Note:  "paper: 12% at 2 processes rising to 91% at 10 (GTX 1080); we reproduce the mechanism (state loss per quantum)",
		Cols:  []string{"processes", "evicted/quantum", "IPC", "overhead"},
	}
	// quantum is the scheduling slice; drainPerProc models the driver-side
	// context-switch cost (pipeline drain + kernel relaunch), which grows
	// with the number of runnable contexts.
	const (
		quantum      = 2_000
		drainPerProc = 100
	)
	evictFor := func(n int) float64 {
		// With n processes sharing, the intervening n-1 quanta evict a
		// growing share of this process's state.
		evict := float64(n-1) * 0.12
		if evict > 1 {
			evict = 1
		}
		return evict
	}
	jobs := []BatchJob{{Cfg: sim.SharedTLBConfig(), Names: []string{"MM"}}}
	for n := 2; n <= 10; n++ {
		cfg := sim.SharedTLBConfig()
		cfg.TimeMuxQuantum = quantum
		cfg.TimeMuxEvict = evictFor(n)
		jobs = append(jobs, BatchJob{Cfg: cfg, Names: []string{"MM"}})
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	base := results[0]
	for n := 2; n <= 10; n++ {
		res := results[n-1]
		drainFrac := float64(drainPerProc*n) / quantum
		overhead := base.TotalIPC/res.TotalIPC*(1+drainFrac) - 1
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.0f%%", 100*evictFor(n)),
			fmt.Sprintf("%.2f", res.TotalIPC), fmt.Sprintf("%.1f%%", 100*overhead))
	}
	return t, nil
}

func init() {
	register("fig1", "time-multiplexing overhead vs process count (Figure 1)",
		one(func(h *Harness, full bool) (*Table, error) { return Fig1(h) }))
}
