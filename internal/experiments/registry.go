package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"masksim/internal/metrics"
)

// registration maps experiment IDs to their implementations. Each experiment
// receives a pre-sized Harness and the -full flag, and returns its tables or
// an error (campaign-level failures; individual bad cells are recorded in
// the harness stats instead).
type experiment struct {
	id   string
	desc string
	run  func(h *Harness, full bool) ([]*Table, error)
}

var registry = map[string]experiment{}

func register(id, desc string, run func(h *Harness, full bool) ([]*Table, error)) {
	registry[id] = experiment{id: id, desc: desc, run: run}
}

// one adapts a single-table experiment to the registry signature.
func one(f func(h *Harness, full bool) (*Table, error)) func(*Harness, bool) ([]*Table, error) {
	return func(h *Harness, full bool) ([]*Table, error) {
		t, err := f(h, full)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// IDs lists registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description for id.
func Describe(id string) string {
	return registry[id].desc
}

// Options configures one supervised experiment invocation.
type Options struct {
	Cycles  int64
	Full    bool
	Workers int
	// Ctx cancels the campaign (nil means Background).
	Ctx context.Context
	// RunTimeout bounds each individual simulation's wall-clock time.
	RunTimeout time.Duration
}

// Report is the outcome of one experiment: its tables plus the campaign's
// run accounting and recorded failures.
type Report struct {
	ID       string
	Tables   []*Table
	Stats    metrics.RunStats
	Failures []*RunError
}

// RunReport executes one experiment by ID under the given options. The
// Report is returned even when err is non-nil, carrying whatever stats and
// failures accumulated before the error.
func RunReport(id string, opt Options) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	h := NewHarness(opt.Cycles)
	h.Workers = opt.Workers
	h.Ctx = opt.Ctx
	h.RunTimeout = opt.RunTimeout
	tables, err := e.run(h, opt.Full)
	return &Report{ID: id, Tables: tables, Stats: h.Stats(), Failures: h.Failures()}, err
}

// Run executes one experiment by ID with default supervision (no timeout,
// no cancellation).
func Run(id string, cycles int64, full bool) ([]*Table, error) {
	rep, err := RunReport(id, Options{Cycles: cycles, Full: full})
	if err != nil {
		return nil, err
	}
	return rep.Tables, nil
}

func init() {
	register("calib", "calibration matrix over representative pairs",
		one(func(h *Harness, full bool) (*Table, error) { return Calib(h) }))
}
