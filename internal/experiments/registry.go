package experiments

import (
	"fmt"
	"sort"
)

// registration maps experiment IDs to their implementations. Each experiment
// receives a pre-sized Harness and the -full flag.
type experiment struct {
	id   string
	desc string
	run  func(h *Harness, full bool) []*Table
}

var registry = map[string]experiment{}

func register(id, desc string, run func(h *Harness, full bool) []*Table) {
	registry[id] = experiment{id: id, desc: desc, run: run}
}

// IDs lists registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description for id.
func Describe(id string) string {
	return registry[id].desc
}

// Run executes one experiment by ID.
func Run(id string, cycles int64, full bool) ([]*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	h := NewHarness(cycles)
	return e.run(h, full), nil
}

func init() {
	register("calib", "calibration matrix over representative pairs", func(h *Harness, full bool) []*Table {
		return []*Table{Calib(h)}
	})
}
