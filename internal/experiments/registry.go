package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"masksim/internal/metrics"
	"masksim/internal/simcache"
)

// registration maps experiment IDs to their implementations. Each experiment
// receives a pre-sized Harness and the -full flag, and returns its tables or
// an error (campaign-level failures; individual bad cells are recorded in
// the harness stats instead).
type experiment struct {
	id   string
	desc string
	run  func(h *Harness, full bool) ([]*Table, error)
}

var registry = map[string]experiment{}

func register(id, desc string, run func(h *Harness, full bool) ([]*Table, error)) {
	registry[id] = experiment{id: id, desc: desc, run: run}
}

// one adapts a single-table experiment to the registry signature.
func one(f func(h *Harness, full bool) (*Table, error)) func(*Harness, bool) ([]*Table, error) {
	return func(h *Harness, full bool) ([]*Table, error) {
		t, err := f(h, full)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// IDs lists registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description for id.
func Describe(id string) string {
	return registry[id].desc
}

// Options configures one supervised experiment invocation.
type Options struct {
	Cycles  int64
	Full    bool
	Workers int
	// Shards, when > 1, runs every simulation with that many intra-simulation
	// worker goroutines (sim.Config.Shards). Bit-identical to sequential, so
	// cached results are shared across shard counts.
	Shards int
	// Ctx cancels the campaign (nil means Background).
	Ctx context.Context
	// RunTimeout bounds each individual simulation's wall-clock time.
	RunTimeout time.Duration
	// CacheDir, when non-empty, persists completed simulation results there
	// (fingerprint-named JSON entries) and consults them before simulating,
	// so an interrupted campaign resumes without redoing finished cells.
	CacheDir string
	// CheckpointDir, when non-empty, writes periodic mid-run checkpoints
	// there and resumes interrupted cells from them, so a killed campaign
	// loses at most CheckpointEvery cycles of any in-flight simulation.
	// Composes with CacheDir: finished cells come from the result cache,
	// in-flight ones from their checkpoints.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in simulated cycles.
	CheckpointEvery int64
	// Remote, when non-nil, layers a shared content-addressed store behind
	// the result cache: misses consult it before simulating and completed
	// entries are published back (maskexp -remote against a maskd server).
	Remote simcache.RemoteStore
	// Cache, when non-nil, replaces the harness's own result cache with a
	// shared one, so several campaigns — maskd builds one harness per job —
	// dedupe machine-wide. Overrides CacheDir and Remote, which the owner of
	// the shared cache configures once.
	Cache *simcache.Cache
	// Slots, when non-nil, replaces the harness's Workers semaphore with an
	// external execution-slot source (maskd's fair per-tenant limiter).
	Slots Acquirer
}

// newHarness builds the supervised, cache-backed harness for opt.
func newHarness(opt Options) *Harness {
	h := NewHarness(opt.Cycles)
	h.Workers = opt.Workers
	h.Shards = opt.Shards
	h.Ctx = opt.Ctx
	h.RunTimeout = opt.RunTimeout
	switch {
	case opt.Cache != nil:
		h.Cache = opt.Cache
	case opt.CacheDir != "" || opt.Remote != nil:
		h.Cache = simcache.New(opt.CacheDir)
		if opt.Remote != nil {
			h.Cache.SetRemote(opt.Remote)
		}
	}
	h.CheckpointDir = opt.CheckpointDir
	h.CheckpointEvery = opt.CheckpointEvery
	h.Slots = opt.Slots
	return h
}

// Report is the outcome of one experiment: its tables plus — when produced
// by RunReport's per-experiment harness — the run accounting and recorded
// failures. Campaign reports leave Stats/Failures zero: the shared harness
// accounts at the campaign level (CampaignReport.Stats).
type Report struct {
	ID       string
	Tables   []*Table
	Stats    metrics.RunStats
	Failures []*RunError
	// Err is the experiment-level failure, if any (campaign use).
	Err error
}

// RunReport executes one experiment by ID over its own harness and cache.
// The Report is returned even when err is non-nil, carrying whatever stats
// and failures accumulated before the error.
func RunReport(id string, opt Options) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	h := newHarness(opt)
	tables, err := e.run(h, opt.Full)
	return &Report{ID: id, Tables: tables, Stats: h.Stats(), Failures: h.Failures(), Err: err}, err
}

// CampaignReport is the outcome of a multi-experiment campaign over one
// shared harness and result cache.
type CampaignReport struct {
	// Reports holds one report per requested ID, in request order — the
	// deterministic printing order — regardless of completion order.
	Reports []*Report
	// Stats is the campaign-wide run accounting, including cache counters.
	Stats metrics.RunStats
	// Failures lists every failed simulation, in occurrence order.
	Failures []*RunError
}

// RunCampaign executes the given experiment IDs concurrently over ONE shared
// Harness and result cache, under one global Workers budget. Experiments
// that request the same (config, apps, cycles) simulation — identical
// alone-IPC runs, the shared (pair, config) grids — share a single
// execution, so `maskexp all` scales with the number of distinct
// simulations, not the number of experiments. Per-experiment errors land in
// the matching Report.Err; the campaign itself always returns.
func RunCampaign(ids []string, opt Options) *CampaignReport {
	h := newHarness(opt)
	reports := make([]*Report, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		rep := &Report{ID: id}
		reports[i] = rep
		e, ok := registry[id]
		if !ok {
			rep.Err = fmt.Errorf("experiments: unknown experiment %q", id)
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					rep.Err = fmt.Errorf("experiments: %s panicked: %v", id, r)
				}
			}()
			rep.Tables, rep.Err = e.run(h, opt.Full)
		}(id)
	}
	wg.Wait()
	return &CampaignReport{Reports: reports, Stats: h.Stats(), Failures: h.Failures()}
}

// Run executes one experiment by ID with default supervision (no timeout,
// no cancellation).
func Run(id string, cycles int64, full bool) ([]*Table, error) {
	rep, err := RunReport(id, Options{Cycles: cycles, Full: full})
	if err != nil {
		return nil, err
	}
	return rep.Tables, nil
}

func init() {
	register("calib", "calibration matrix over representative pairs",
		one(func(h *Harness, full bool) (*Table, error) { return Calib(h) }))
}
