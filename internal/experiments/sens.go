package experiments

import (
	"fmt"

	"masksim/internal/metrics"
	"masksim/internal/pagetable"
	"masksim/internal/workload"
	"masksim/sim"
)

// sensPairs are the contended pairs the sensitivity studies sweep.
var sensPairs = []workload.Pair{{A: "3DS", B: "CONS"}, {A: "MM", B: "CONS"}, {A: "RED", B: "BP"}}

// sensJobs appends one shared-run job per contended pair under cfg.
func sensJobs(jobs []BatchJob, cfg sim.Config) []BatchJob {
	for _, p := range sensPairs {
		jobs = append(jobs, BatchJob{Cfg: cfg, Names: []string{p.A, p.B}})
	}
	return jobs
}

// sensMean consumes the next len(sensPairs) results from the batch cursor
// and returns their mean total IPC.
func sensMean(results []*sim.Results, i *int) float64 {
	var xs []float64
	for range sensPairs {
		xs = append(xs, results[*i].TotalIPC)
		*i++
	}
	return metrics.Mean(xs)
}

// SensTLBSize reproduces the §7.3 shared-L2-TLB size sweep: SharedTLB vs
// MASK from 64 to 8192 entries. The paper finds MASK ahead at every size
// until the working set fits (8192), where the two converge.
func SensTLBSize(h *Harness, full bool) (*Table, error) {
	t := &Table{
		ID:    "sens-tlbsize",
		Title: "L2 TLB size sweep: mean weighted-speedup-proxy (total IPC) over contended pairs",
		Note:  "paper: MASK outperforms SharedTLB at every size below working-set fit (8192 entries)",
		Cols:  []string{"entries", "SharedTLB", "MASK", "MASKgain%"},
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if !full {
		sizes = []int{64, 256, 512, 2048, 8192}
	}
	sized := func(base sim.Config, size int) sim.Config {
		base.L2TLBEntries = size
		if size < base.L2TLBWays {
			base.L2TLBWays = size
		}
		return base
	}
	var jobs []BatchJob
	for _, size := range sizes {
		jobs = sensJobs(jobs, sized(sim.SharedTLBConfig(), size))
		jobs = sensJobs(jobs, sized(sim.MASKConfig(), size))
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, size := range sizes {
		shared := sensMean(results, &i)
		mask := sensMean(results, &i)
		t.AddRowf(2, fmt.Sprintf("%d", size), shared, mask, 100*(mask/shared-1))
	}
	return t, nil
}

// SensPageSize reproduces the §7.3 large-page study: with 2MB pages the
// paper finds SharedTLB still 44.5% short of Ideal while MASK comes within
// 1.8% of it.
func SensPageSize(h *Harness, full bool) (*Table, error) {
	t := &Table{
		ID:    "sens-pagesize",
		Title: "2MB large pages: performance normalized to Ideal",
		Note:  "paper: SharedTLB 55.5% of Ideal, MASK 98.2% of Ideal with 2MB pages",
		Cols:  []string{"pageSize", "SharedTLB/Ideal%", "MASK/Ideal%"},
	}
	pageSizes := []int{pagetable.PageSize4K, pagetable.PageSize2M}
	paged := func(base sim.Config, ps int) sim.Config {
		base.PageSize = ps
		return base
	}
	var jobs []BatchJob
	for _, ps := range pageSizes {
		jobs = sensJobs(jobs, paged(sim.IdealConfig(), ps))
		jobs = sensJobs(jobs, paged(sim.SharedTLBConfig(), ps))
		jobs = sensJobs(jobs, paged(sim.MASKConfig(), ps))
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, ps := range pageSizes {
		ideal := sensMean(results, &i)
		shared := sensMean(results, &i)
		mask := sensMean(results, &i)
		t.AddRowf(1, fmt.Sprintf("%dKB", ps>>10), 100*shared/ideal, 100*mask/ideal)
	}
	return t, nil
}

// SensMemPolicy reproduces the §7.3 memory-policy studies: open- vs
// closed-row policy, and an alternative (FCFS) memory scheduler. The paper
// finds open/closed within 0.8% of each other, and MASK's gains robust
// across schedulers.
func SensMemPolicy(h *Harness, full bool) (*Table, error) {
	t := &Table{
		ID:    "sens-memsched",
		Title: "memory-policy sensitivity: mean total IPC over contended pairs",
		Cols:  []string{"policy", "SharedTLB", "MASK", "MASKgain%"},
	}
	variants := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"FR-FCFS/open-row", func(c *sim.Config) {}},
		{"FR-FCFS/closed-row", func(c *sim.Config) { c.DRAM.ClosedRowPolicy = true }},
		{"FCFS/open-row", func(c *sim.Config) { c.FCFSSched = true }},
	}
	varied := func(base sim.Config, mut func(*sim.Config)) sim.Config {
		mut(&base)
		return base
	}
	var jobs []BatchJob
	for _, v := range variants {
		jobs = sensJobs(jobs, varied(sim.SharedTLBConfig(), v.mut))
		jobs = sensJobs(jobs, varied(sim.MASKConfig(), v.mut))
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, v := range variants {
		shared := sensMean(results, &i)
		mask := sensMean(results, &i)
		t.AddRowf(2, v.name, shared, mask, 100*(mask/shared-1))
	}
	return t, nil
}

func init() {
	register("sens-tlbsize", "L2 TLB size sweep 64-8192 entries (§7.3)", one(SensTLBSize))
	register("sens-pagesize", "2MB large-page sensitivity (§7.3)", one(SensPageSize))
	register("sens-memsched", "memory scheduler & row policy sensitivity (§7.3)", one(SensMemPolicy))
}
