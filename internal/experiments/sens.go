package experiments

import (
	"fmt"

	"masksim/internal/metrics"
	"masksim/internal/pagetable"
	"masksim/internal/workload"
	"masksim/sim"
)

// sensPairs are the contended pairs the sensitivity studies sweep.
var sensPairs = []workload.Pair{{A: "3DS", B: "CONS"}, {A: "MM", B: "CONS"}, {A: "RED", B: "BP"}}

// SensTLBSize reproduces the §7.3 shared-L2-TLB size sweep: SharedTLB vs
// MASK from 64 to 8192 entries. The paper finds MASK ahead at every size
// until the working set fits (8192), where the two converge.
func SensTLBSize(h *Harness, full bool) (*Table, error) {
	t := &Table{
		ID:    "sens-tlbsize",
		Title: "L2 TLB size sweep: mean weighted-speedup-proxy (total IPC) over contended pairs",
		Note:  "paper: MASK outperforms SharedTLB at every size below working-set fit (8192 entries)",
		Cols:  []string{"entries", "SharedTLB", "MASK", "MASKgain%"},
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if !full {
		sizes = []int{64, 256, 512, 2048, 8192}
	}
	for _, size := range sizes {
		run := func(base sim.Config) (float64, error) {
			base.L2TLBEntries = size
			if size < base.L2TLBWays {
				base.L2TLBWays = size
			}
			var xs []float64
			for _, p := range sensPairs {
				res, err := h.Run(base, []string{p.A, p.B})
				if err != nil {
					return 0, err
				}
				xs = append(xs, res.TotalIPC)
			}
			return metrics.Mean(xs), nil
		}
		shared, err := run(sim.SharedTLBConfig())
		if err != nil {
			return nil, err
		}
		mask, err := run(sim.MASKConfig())
		if err != nil {
			return nil, err
		}
		t.AddRowf(2, fmt.Sprintf("%d", size), shared, mask, 100*(mask/shared-1))
	}
	return t, nil
}

// SensPageSize reproduces the §7.3 large-page study: with 2MB pages the
// paper finds SharedTLB still 44.5% short of Ideal while MASK comes within
// 1.8% of it.
func SensPageSize(h *Harness, full bool) (*Table, error) {
	t := &Table{
		ID:    "sens-pagesize",
		Title: "2MB large pages: performance normalized to Ideal",
		Note:  "paper: SharedTLB 55.5% of Ideal, MASK 98.2% of Ideal with 2MB pages",
		Cols:  []string{"pageSize", "SharedTLB/Ideal%", "MASK/Ideal%"},
	}
	for _, ps := range []int{pagetable.PageSize4K, pagetable.PageSize2M} {
		run := func(base sim.Config) (float64, error) {
			base.PageSize = ps
			var xs []float64
			for _, p := range sensPairs {
				res, err := h.Run(base, []string{p.A, p.B})
				if err != nil {
					return 0, err
				}
				xs = append(xs, res.TotalIPC)
			}
			return metrics.Mean(xs), nil
		}
		ideal, err := run(sim.IdealConfig())
		if err != nil {
			return nil, err
		}
		shared, err := run(sim.SharedTLBConfig())
		if err != nil {
			return nil, err
		}
		mask, err := run(sim.MASKConfig())
		if err != nil {
			return nil, err
		}
		t.AddRowf(1, fmt.Sprintf("%dKB", ps>>10), 100*shared/ideal, 100*mask/ideal)
	}
	return t, nil
}

// SensMemPolicy reproduces the §7.3 memory-policy studies: open- vs
// closed-row policy, and an alternative (FCFS) memory scheduler. The paper
// finds open/closed within 0.8% of each other, and MASK's gains robust
// across schedulers.
func SensMemPolicy(h *Harness, full bool) (*Table, error) {
	t := &Table{
		ID:    "sens-memsched",
		Title: "memory-policy sensitivity: mean total IPC over contended pairs",
		Cols:  []string{"policy", "SharedTLB", "MASK", "MASKgain%"},
	}
	variants := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"FR-FCFS/open-row", func(c *sim.Config) {}},
		{"FR-FCFS/closed-row", func(c *sim.Config) { c.DRAM.ClosedRowPolicy = true }},
		{"FCFS/open-row", func(c *sim.Config) { c.FCFSSched = true }},
	}
	for _, v := range variants {
		run := func(base sim.Config) (float64, error) {
			v.mut(&base)
			var xs []float64
			for _, p := range sensPairs {
				res, err := h.Run(base, []string{p.A, p.B})
				if err != nil {
					return 0, err
				}
				xs = append(xs, res.TotalIPC)
			}
			return metrics.Mean(xs), nil
		}
		shared, err := run(sim.SharedTLBConfig())
		if err != nil {
			return nil, err
		}
		mask, err := run(sim.MASKConfig())
		if err != nil {
			return nil, err
		}
		t.AddRowf(2, v.name, shared, mask, 100*(mask/shared-1))
	}
	return t, nil
}

func init() {
	register("sens-tlbsize", "L2 TLB size sweep 64-8192 entries (§7.3)", one(SensTLBSize))
	register("sens-pagesize", "2MB large-page sensitivity (§7.3)", one(SensPageSize))
	register("sens-memsched", "memory scheduler & row policy sensitivity (§7.3)", one(SensMemPolicy))
}
