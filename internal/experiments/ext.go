package experiments

import (
	"fmt"

	"masksim/internal/metrics"
	"masksim/sim"
)

// ExtPaging evaluates the demand-paging extension the paper defers to
// future work (§5.5): cold-start cost of major faults and how MASK behaves
// once faults and translation contention combine. The fault latency sweep
// brackets PCIe-attached (slow) and NVLink-attached (faster) host memory.
func ExtPaging(h *Harness, full bool) (*Table, error) {
	pair := []string{"3DS", "CONS"}
	t := &Table{
		ID:    "ext-paging",
		Title: "demand paging extension (§5.5): cold-start IPC vs pre-populated pages",
		Note:  "faults are first-touch major faults; pre-populated runs are the paper's configuration",
		Cols:  []string{"config", "faultLat", "totalIPC", "faults", "avgFaultLat"},
	}
	for _, cfgName := range []string{"SharedTLB", "MASK"} {
		base, _ := sim.ConfigByName(cfgName)
		res, err := h.Run(base, pair)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfgName, "prepopulated", fmt.Sprintf("%.2f", res.TotalIPC), "0", "-")
		for _, lat := range []int64{5_000, 20_000} {
			cfg := base
			cfg.DemandPaging = true
			cfg.FaultLatency = lat
			res, err := h.Run(cfg, pair)
			if err != nil {
				return nil, err
			}
			t.AddRow(cfgName, fmt.Sprintf("%dcy", lat),
				fmt.Sprintf("%.2f", res.TotalIPC),
				fmt.Sprintf("%d", res.Faults.Faults),
				fmt.Sprintf("%.0f", res.Faults.AvgLatency()))
		}
	}
	return t, nil
}

// SensWarpSched compares the GTO baseline against round-robin warp
// scheduling for SharedTLB and MASK (warp scheduling is orthogonal to MASK,
// §8.2 — the gains must survive a scheduler change).
func SensWarpSched(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(false)
	t := &Table{
		ID:    "sens-warpsched",
		Title: "warp-scheduler sensitivity: mean total IPC over the pair set",
		Cols:  []string{"scheduler", "SharedTLB", "MASK", "MASKgain%"},
	}
	for _, rr := range []bool{false, true} {
		name := "GTO"
		if rr {
			name = "round-robin"
		}
		run := func(base sim.Config) (float64, error) {
			base.RoundRobinSched = rr
			var xs []float64
			for _, p := range pairs {
				res, err := h.Run(base, []string{p.A, p.B})
				if err != nil {
					return 0, err
				}
				xs = append(xs, res.TotalIPC)
			}
			return metrics.Mean(xs), nil
		}
		shared, err := run(sim.SharedTLBConfig())
		if err != nil {
			return nil, err
		}
		mask, err := run(sim.MASKConfig())
		if err != nil {
			return nil, err
		}
		t.AddRowf(2, name, shared, mask, 100*(mask/shared-1))
	}
	return t, nil
}

func init() {
	register("ext-paging", "demand-paging extension study (§5.5 future work)", one(ExtPaging))
	register("sens-warpsched", "GTO vs round-robin warp scheduling", one(SensWarpSched))
	register("sens-tokens", "InitialTokens sweep (§6 design-parameter study)", one(SensTokens))
	register("ext-prefetch", "stride TLB prefetcher vs MASK (§8.2 claim test)", one(ExtPrefetch))
}

// SensTokens sweeps InitialTokens (the paper reports <1% performance
// variance across the range because the epoch adaptation converges to the
// same steady state, §6).
func SensTokens(h *Harness, full bool) (*Table, error) {
	pair := []string{"MM", "CONS"}
	t := &Table{
		ID:    "sens-tokens",
		Title: "InitialTokens sweep under MASK (paper: <1% variance)",
		Cols:  []string{"initialTokens", "totalIPC"},
	}
	for _, frac := range []float64{0.25, 0.50, 0.80, 1.00} {
		cfg := sim.MASKConfig()
		cfg.TokenInitFraction = frac
		res, err := h.Run(cfg, pair)
		if err != nil {
			return nil, err
		}
		t.AddRowf(2, fmt.Sprintf("%.0f%%", 100*frac), res.TotalIPC)
	}
	return t, nil
}

// ExtPrefetch tests the paper's related-work claim (§8.2) that CPU-style
// TLB prefetchers are "likely to be less effective" than MASK under
// multi-address-space concurrency, by running a stride prefetcher on the
// same substrate.
func ExtPrefetch(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(false)
	t := &Table{
		ID:    "ext-prefetch",
		Title: "stride TLB prefetcher vs MASK (related-work comparison, §8.2)",
		Cols:  []string{"pair", "SharedTLB", "+prefetch", "MASK", "pf-accuracy%"},
	}
	for _, p := range pairs {
		base, err := h.Run(sim.SharedTLBConfig(), []string{p.A, p.B})
		if err != nil {
			return nil, err
		}
		pfCfg := sim.SharedTLBConfig()
		pfCfg.TLBPrefetch = true
		pf, err := h.Run(pfCfg, []string{p.A, p.B})
		if err != nil {
			return nil, err
		}
		mask, err := h.Run(sim.MASKConfig(), []string{p.A, p.B})
		if err != nil {
			return nil, err
		}
		t.AddRowf(2, p.Name(), base.TotalIPC, pf.TotalIPC, mask.TotalIPC,
			100*pf.Prefetch.Accuracy())
	}
	return t, nil
}
