package experiments

import (
	"fmt"

	"masksim/internal/metrics"
	"masksim/sim"
)

// ExtPaging evaluates the demand-paging extension the paper defers to
// future work (§5.5): cold-start cost of major faults and how MASK behaves
// once faults and translation contention combine. The fault latency sweep
// brackets PCIe-attached (slow) and NVLink-attached (faster) host memory.
func ExtPaging(h *Harness, full bool) (*Table, error) {
	pair := []string{"3DS", "CONS"}
	t := &Table{
		ID:    "ext-paging",
		Title: "demand paging extension (§5.5): cold-start IPC vs pre-populated pages",
		Note:  "faults are first-touch major faults; pre-populated runs are the paper's configuration",
		Cols:  []string{"config", "faultLat", "totalIPC", "faults", "avgFaultLat"},
	}
	cfgNames := []string{"SharedTLB", "MASK"}
	lats := []int64{5_000, 20_000}
	var jobs []BatchJob
	for _, cfgName := range cfgNames {
		base, _ := sim.ConfigByName(cfgName)
		jobs = append(jobs, BatchJob{Cfg: base, Names: pair})
		for _, lat := range lats {
			cfg := base
			cfg.DemandPaging = true
			cfg.FaultLatency = lat
			jobs = append(jobs, BatchJob{Cfg: cfg, Names: pair})
		}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, cfgName := range cfgNames {
		t.AddRow(cfgName, "prepopulated", fmt.Sprintf("%.2f", results[i].TotalIPC), "0", "-")
		i++
		for _, lat := range lats {
			res := results[i]
			i++
			t.AddRow(cfgName, fmt.Sprintf("%dcy", lat),
				fmt.Sprintf("%.2f", res.TotalIPC),
				fmt.Sprintf("%d", res.Faults.Faults),
				fmt.Sprintf("%.0f", res.Faults.AvgLatency()))
		}
	}
	return t, nil
}

// SensWarpSched compares the GTO baseline against round-robin warp
// scheduling for SharedTLB and MASK (warp scheduling is orthogonal to MASK,
// §8.2 — the gains must survive a scheduler change).
func SensWarpSched(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(false)
	t := &Table{
		ID:    "sens-warpsched",
		Title: "warp-scheduler sensitivity: mean total IPC over the pair set",
		Cols:  []string{"scheduler", "SharedTLB", "MASK", "MASKgain%"},
	}
	schedCfg := func(base sim.Config, rr bool) sim.Config {
		base.RoundRobinSched = rr
		return base
	}
	var jobs []BatchJob
	for _, rr := range []bool{false, true} {
		for _, base := range []sim.Config{sim.SharedTLBConfig(), sim.MASKConfig()} {
			for _, p := range pairs {
				jobs = append(jobs, BatchJob{Cfg: schedCfg(base, rr), Names: []string{p.A, p.B}})
			}
		}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	mean := func() float64 {
		var xs []float64
		for range pairs {
			xs = append(xs, results[i].TotalIPC)
			i++
		}
		return metrics.Mean(xs)
	}
	for _, rr := range []bool{false, true} {
		name := "GTO"
		if rr {
			name = "round-robin"
		}
		shared := mean()
		mask := mean()
		t.AddRowf(2, name, shared, mask, 100*(mask/shared-1))
	}
	return t, nil
}

func init() {
	register("ext-paging", "demand-paging extension study (§5.5 future work)", one(ExtPaging))
	register("sens-warpsched", "GTO vs round-robin warp scheduling", one(SensWarpSched))
	register("sens-tokens", "InitialTokens sweep (§6 design-parameter study)", one(SensTokens))
	register("ext-prefetch", "stride TLB prefetcher vs MASK (§8.2 claim test)", one(ExtPrefetch))
}

// SensTokens sweeps InitialTokens (the paper reports <1% performance
// variance across the range because the epoch adaptation converges to the
// same steady state, §6).
func SensTokens(h *Harness, full bool) (*Table, error) {
	pair := []string{"MM", "CONS"}
	t := &Table{
		ID:    "sens-tokens",
		Title: "InitialTokens sweep under MASK (paper: <1% variance)",
		Cols:  []string{"initialTokens", "totalIPC"},
	}
	fracs := []float64{0.25, 0.50, 0.80, 1.00}
	var jobs []BatchJob
	for _, frac := range fracs {
		cfg := sim.MASKConfig()
		cfg.TokenInitFraction = frac
		jobs = append(jobs, BatchJob{Cfg: cfg, Names: pair})
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	for i, frac := range fracs {
		t.AddRowf(2, fmt.Sprintf("%.0f%%", 100*frac), results[i].TotalIPC)
	}
	return t, nil
}

// ExtPrefetch tests the paper's related-work claim (§8.2) that CPU-style
// TLB prefetchers are "likely to be less effective" than MASK under
// multi-address-space concurrency, by running a stride prefetcher on the
// same substrate.
func ExtPrefetch(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(false)
	t := &Table{
		ID:    "ext-prefetch",
		Title: "stride TLB prefetcher vs MASK (related-work comparison, §8.2)",
		Cols:  []string{"pair", "SharedTLB", "+prefetch", "MASK", "pf-accuracy%"},
	}
	pfCfg := sim.SharedTLBConfig()
	pfCfg.TLBPrefetch = true
	var jobs []BatchJob
	for _, p := range pairs {
		names := []string{p.A, p.B}
		jobs = append(jobs,
			BatchJob{Cfg: sim.SharedTLBConfig(), Names: names},
			BatchJob{Cfg: pfCfg, Names: names},
			BatchJob{Cfg: sim.MASKConfig(), Names: names})
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range pairs {
		base, pf, mask := results[3*i], results[3*i+1], results[3*i+2]
		t.AddRowf(2, p.Name(), base.TotalIPC, pf.TotalIPC, mask.TotalIPC,
			100*pf.Prefetch.Accuracy())
	}
	return t, nil
}
