package experiments

import (
	"masksim/sim"
)

// Anatomy quantifies the paper's Figure 4: how much of a warp's memory-stall
// time is spent waiting for address translation (before the data request can
// even issue) versus waiting for data. Under Ideal the translation share is
// zero by construction; MASK's job is to shrink it.
func Anatomy(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(false)
	t := &Table{
		ID:    "anatomy",
		Title: "warp stall anatomy (Figure 4): translation vs data share of memory-stall time",
		Cols:  []string{"pair", "config", "transStall%", "dataStall%", "coreIdle%"},
	}
	cfgNames := []string{"SharedTLB", "MASK", "Ideal"}
	var jobs []BatchJob
	for _, p := range pairs {
		for _, cfgName := range cfgNames {
			cfg, _ := sim.ConfigByName(cfgName)
			jobs = append(jobs, BatchJob{Cfg: cfg, Names: []string{p.A, p.B}})
		}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range pairs {
		for k, cfgName := range cfgNames {
			res := results[i*len(cfgNames)+k]
			total := res.TransStallCycles + res.DataStallCycles
			var transFrac float64
			if total > 0 {
				transFrac = float64(res.TransStallCycles) / float64(total)
			}
			t.AddRowf(1, p.Name(), cfgName,
				100*transFrac, 100*(1-transFrac), 100*res.IdleFraction)
		}
	}
	return t, nil
}

func init() {
	register("anatomy", "warp stall anatomy: translation vs data (Figure 4)", one(Anatomy))
}
