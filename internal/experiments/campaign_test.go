package experiments

import (
	"fmt"
	"strings"
	"testing"

	"masksim/sim"
)

// TestHarnessMemoizesRuns checks the core memoization contract: a second
// request for the same (config, apps, cycles) returns the first run's Results
// without simulating again.
func TestHarnessMemoizesRuns(t *testing.T) {
	h := NewHarness(400)
	first, err := h.Run(sim.SharedTLBConfig(), []string{"MM", "RED"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := h.Run(sim.SharedTLBConfig(), []string{"MM", "RED"})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("second Run returned a different Results; want the shared cached one")
	}
	s := h.Stats()
	if s.Attempted != 1 || s.CacheRequests != 2 || s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want Attempted=1 CacheRequests=2 CacheHits=1 CacheMisses=1", s)
	}
}

// TestHarnessMemoizesAcrossNames checks that presentation names do not split
// the cache: two configs differing only in Name share one simulation.
func TestHarnessMemoizesAcrossNames(t *testing.T) {
	h := NewHarness(400)
	a := sim.SharedTLBConfig()
	b := sim.SharedTLBConfig()
	b.Name = "baseline-under-another-name"
	ra, err := h.Run(a, []string{"MM"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := h.Run(b, []string{"MM"})
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatal("renamed config re-simulated; Name is presentation-only")
	}
	if s := h.Stats(); s.Attempted != 1 {
		t.Fatalf("Attempted = %d, want 1", s.Attempted)
	}
}

// TestWarmAloneCoversBothSplits checks that warming covers both halves of an
// asymmetric core split: after WarmAlone on an odd-core platform, the
// AloneIPC calls the matrix pass makes (at split[0] AND split[1] cores) are
// all cache hits.
func TestWarmAloneCoversBothSplits(t *testing.T) {
	cfg := sim.SharedTLBConfig()
	cfg.Cores = 5 // EvenSplit(5,2) = [3,2]: asymmetric
	split := sim.EvenSplit(cfg.Cores, 2)
	if split[0] == split[1] {
		t.Fatalf("want asymmetric split, got %v", split)
	}
	h := NewHarness(400)
	if err := h.WarmAlone(cfg, pairSet(false)); err != nil {
		t.Fatal(err)
	}
	warmed := h.Stats().Attempted
	for _, p := range pairSet(false) {
		for k, app := range []string{p.A, p.B} {
			if _, err := h.AloneIPC(cfg, app, split[k]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if after := h.Stats().Attempted; after != warmed {
		t.Fatalf("AloneIPC after warm simulated %d extra runs; warm missed a split", after-warmed)
	}
}

// TestCampaignDedupAndDeterminism runs an overlapping experiment set two
// ways — as a concurrent campaign over one shared harness, and sequentially
// with memoization disabled — and checks that (a) each distinct simulation
// executed exactly once in the campaign, with real sharing across
// experiments, and (b) the rendered tables are byte-identical.
func TestCampaignDedupAndDeterminism(t *testing.T) {
	// fig8 and fig9 request identical SharedTLB pair runs; comp-dram requests
	// the same SharedTLB runs again as its baseline side.
	ids := []string{"fig8", "fig9", "comp-dram"}
	const cycles = 600

	camp := RunCampaign(ids, Options{Cycles: cycles, Workers: 4})
	var campaign strings.Builder
	for _, rep := range camp.Reports {
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.ID, rep.Err)
		}
		for _, tab := range rep.Tables {
			fmt.Fprintln(&campaign, tab)
		}
	}
	s := camp.Stats
	if s.Attempted != s.CacheMisses {
		t.Fatalf("Attempted=%d != CacheMisses=%d: some simulation ran outside the cache or twice",
			s.Attempted, s.CacheMisses)
	}
	if s.CacheHits+s.CacheInflightWaits == 0 {
		t.Fatal("no cache sharing across fig8/fig9/comp-dram; expected overlapping runs to dedup")
	}
	if s.CacheRequests != s.Attempted+s.CacheHits+s.CacheInflightWaits {
		t.Fatalf("cache accounting inconsistent: %+v", s)
	}

	// Reference: one experiment at a time, no memoization, one worker.
	var sequential strings.Builder
	for _, id := range ids {
		h := NewHarness(cycles)
		h.Workers = 1
		h.Cache = nil
		tables, err := registry[id].run(h, false)
		if err != nil {
			t.Fatalf("%s (sequential): %v", id, err)
		}
		for _, tab := range tables {
			fmt.Fprintln(&sequential, tab)
		}
	}
	if campaign.String() != sequential.String() {
		t.Fatalf("campaign output differs from sequential reference:\n--- campaign ---\n%s\n--- sequential ---\n%s",
			campaign.String(), sequential.String())
	}
}

// TestCampaignUnknownID checks that unknown IDs land in their Report.Err
// without disturbing the rest of the campaign.
func TestCampaignUnknownID(t *testing.T) {
	camp := RunCampaign([]string{"no-such-experiment", "fig8"}, Options{Cycles: 400, Workers: 2})
	if camp.Reports[0].Err == nil {
		t.Fatal("unknown ID produced no error")
	}
	if camp.Reports[1].Err != nil {
		t.Fatalf("fig8 failed: %v", camp.Reports[1].Err)
	}
	if len(camp.Reports[1].Tables) == 0 {
		t.Fatal("fig8 produced no tables")
	}
}

// TestCampaignDiskResume runs a small campaign twice over the same cache
// directory: the second invocation must simulate nothing.
func TestCampaignDiskResume(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Cycles: 400, Workers: 2, CacheDir: dir}

	first := RunCampaign([]string{"fig8"}, opt)
	if err := first.Reports[0].Err; err != nil {
		t.Fatal(err)
	}
	if first.Stats.Attempted == 0 || first.Stats.DiskHits != 0 {
		t.Fatalf("first run stats = %+v, want fresh simulations", first.Stats)
	}

	second := RunCampaign([]string{"fig8"}, opt)
	if err := second.Reports[0].Err; err != nil {
		t.Fatal(err)
	}
	if second.Stats.Attempted != 0 {
		t.Fatalf("resume simulated %d runs, want 0 (all from disk)", second.Stats.Attempted)
	}
	if second.Stats.DiskHits == 0 {
		t.Fatal("resume recorded no disk hits")
	}

	var a, b strings.Builder
	for _, tab := range first.Reports[0].Tables {
		fmt.Fprintln(&a, tab)
	}
	for _, tab := range second.Reports[0].Tables {
		fmt.Fprintln(&b, tab)
	}
	if a.String() != b.String() {
		t.Fatalf("disk-resumed tables differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}
