package experiments

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: a title, column headers, and rows.
// Every experiment renders to this shape so cmd/maskexp and the benchmarks
// share one output path.
type Table struct {
	ID    string
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row, formatting float64 cells with prec decimals and
// passing strings through.
func (t *Table) AddRowf(prec int, cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.*f", prec, v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV streams the table as RFC-4180-ish CSV (quoting only cells that
// need it) row by row: no whole-table string is ever materialized.
// cmd/maskexp's -csv flag streams one file per table for plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeCSVRow(bw, t.Cols)
	for _, row := range t.Rows {
		writeCSVRow(bw, row)
	}
	return bw.Flush()
}

// CSV renders the table as a CSV string; a convenience wrapper over WriteCSV
// for callers that embed the bytes (tests, golden files).
func (t *Table) CSV() string {
	var b strings.Builder
	t.WriteCSV(&b)
	return b.String()
}

func writeCSVRow(b *bufio.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
