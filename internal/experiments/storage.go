package experiments

import (
	"fmt"

	"masksim/sim"
)

// Storage reproduces §7.4's hardware storage-cost accounting for MASK,
// computed from the simulated configuration exactly as the paper itemises
// it.
func Storage(h *Harness, full bool) *Table {
	cfg := sim.MASKConfig()
	t := &Table{
		ID:    "storage",
		Title: "MASK hardware storage cost (§7.4 accounting)",
		Cols:  []string{"structure", "bits", "bytes"},
	}
	add := func(name string, bits int) {
		t.AddRow(name, fmt.Sprintf("%d", bits), fmt.Sprintf("%.1f", float64(bits)/8))
	}

	// ASID tags: 9 bits per shared L2 TLB entry.
	asidBits := 9 * cfg.L2TLBEntries
	add("L2 TLB ASID tags (9b x entries)", asidBits)

	// Per-core TLB-Fill Token state: two 16-bit hit/miss counters, a
	// 256-bit active-warp vector, an 8-bit unique-warp counter.
	perCore := 2*16 + 256 + 8
	add(fmt.Sprintf("token state per core (x%d cores)", cfg.Cores), perCore*cfg.Cores)

	// Shared: 32-entry bypass cache (tag+frame ~ 64b each), 30 15-bit token
	// counters, 30 1-bit direction registers.
	add("TLB bypass cache (32 x ~64b)", cfg.BypassCacheEntries*64)
	add("token counters (30 x 15b + 30 x 1b)", 30*15+30)

	// L2 bypass: ten 8-byte counters per... the paper: ten 8-byte counters
	// total for level hit/access tracking.
	add("L2 bypass hit-rate counters (10 x 8B)", 10*64)

	// DRAM scheduler queues per channel: 16-entry golden (FIFO pointers),
	// 64-entry silver, 192-entry normal vs the baseline 256-entry buffer:
	// extra storage ~6% of the request queue per the paper.
	add(fmt.Sprintf("golden queue entries (16/channel x %d channels, ~64b)", cfg.DRAM.Channels),
		16*64*cfg.DRAM.Channels)

	total := asidBits + perCore*cfg.Cores + cfg.BypassCacheEntries*64 + 30*15 + 30 + 10*64 + 16*64*cfg.DRAM.Channels
	t.AddRow("TOTAL", fmt.Sprintf("%d", total), fmt.Sprintf("%.0f", float64(total)/8))
	t.Note = "paper total: 706B of core+TLB state (1.6% of L1 TLB, 3.8% of L2 TLB, +7% ASID bits), <0.1% area, <0.01% power"
	return t
}

func init() {
	register("storage", "MASK storage cost accounting (§7.4)",
		one(func(h *Harness, full bool) (*Table, error) { return Storage(h, full), nil }))
}
