package experiments

import (
	"testing"
)

// TestAllExperimentsSmoke runs every registered experiment at a tiny scale,
// verifying each produces non-empty, well-formed tables. This is the
// integration test for the whole reproduction pipeline.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, 600, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if tab.ID == "" || tab.Title == "" {
					t.Fatalf("table missing metadata: %+v", tab)
				}
				if len(tab.Cols) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("table %s empty", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) > len(tab.Cols) {
						t.Fatalf("table %s row wider than header: %v", tab.ID, row)
					}
				}
				if tab.String() == "" {
					t.Fatalf("table %s renders empty", tab.ID)
				}
			}
		})
	}
}
