// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the masksim substrate. Each experiment is a function
// returning printable Tables; cmd/maskexp dispatches on experiment IDs and
// bench_test.go wraps each one in a benchmark.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"masksim/internal/engine"
	"masksim/internal/metrics"
	"masksim/internal/simcache"
	"masksim/internal/workload"
	"masksim/sim"
)

// Harness runs batches of simulations over a content-addressed result cache
// and a supervised worker pool (independent Simulator instances share no
// state). Every Run/RunAlone is memoized by its (config, apps, cycles)
// fingerprint, so a campaign — or several experiments sharing one Harness —
// executes each distinct simulation exactly once and shares the completed
// Results read-only. Workers recover panics, transient failures are retried
// once, and every outcome is counted in Stats; a single bad cell degrades
// the campaign instead of crashing it.
type Harness struct {
	// Cycles is the simulated length of shared runs; AloneCycles of alone
	// runs (defaults to Cycles).
	Cycles      int64
	AloneCycles int64
	// Workers bounds concurrently executing simulations across the whole
	// harness (all experiments sharing it), enforced by a global semaphore;
	// 0 means GOMAXPROCS. Negative is rejected by parallel.
	Workers int
	// Shards, when > 1, runs every simulation with that many intra-simulation
	// worker goroutines (sim.Config.Shards). Bit-identical by contract and
	// canonicalized out of fingerprints, so shard counts share cache entries.
	Shards int

	// Ctx supervises every run the harness starts (nil means Background):
	// cancel it to stop a campaign early.
	Ctx context.Context
	// RunTimeout, when positive, bounds each individual run's wall-clock
	// time via context.WithTimeout (queueing for a worker slot excluded).
	RunTimeout time.Duration

	// Cache memoizes simulation results by fingerprint. NewHarness installs
	// an in-memory cache; point it at simcache.New(dir) for on-disk
	// persistence, or set nil to disable memoization entirely (every request
	// then simulates afresh).
	Cache *simcache.Cache

	// CheckpointDir, when non-empty, makes every supervised run write
	// periodic mid-run checkpoints there and resume from the newest valid one
	// before simulating. A worker killed or panicked mid-cell retries from
	// its last checkpoint instead of cycle zero, and a whole campaign
	// restarted after a kill picks its in-flight cells back up mid-run
	// (checkpoint files are fingerprint-keyed, so cells never collide).
	// Results are bit-identical either way, so resumed cells share cache
	// entries with clean ones.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in simulated cycles (only
	// meaningful with CheckpointDir; 0 disables periodic checkpoints but
	// still resumes from — and crash-dumps to — CheckpointDir).
	CheckpointEvery int64

	// Slots, when non-nil, replaces the harness's own Workers semaphore with
	// an external execution-slot source, so several harnesses — maskd builds
	// one per job — draw from a single machine-wide execution budget (with
	// whatever fairness the Acquirer implements). Workers then only bounds
	// batch submission parallelism.
	Slots Acquirer

	semOnce sync.Once
	sem     chan struct{}

	mu       sync.Mutex
	stats    metrics.RunStats
	failures []*RunError
}

// NewHarness returns a Harness with the given shared-run length and a fresh
// in-memory result cache.
func NewHarness(cycles int64) *Harness {
	return &Harness{Cycles: cycles, AloneCycles: cycles, Cache: simcache.New("")}
}

func (h *Harness) workers() int {
	if h.Workers > 0 {
		return h.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (h *Harness) ctx() context.Context {
	if h.Ctx != nil {
		return h.Ctx
	}
	return context.Background()
}

// RunError wraps a failed supervised run with its label (what was being
// simulated) and how many attempts were made.
type RunError struct {
	Label    string
	Attempts int
	Err      error
}

// Error summarizes the failure.
func (e *RunError) Error() string {
	return fmt.Sprintf("%s failed after %d attempt(s): %v", e.Label, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// panicError marks a recovered worker panic; panics are treated as
// transient (retried once) since they may stem from a fault-injected or
// otherwise unlucky cell.
type panicError struct {
	value any
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.value) }

// isTransient reports whether a failed attempt is worth retrying: panics
// are; deterministic aborts (watchdog deadlock, context expiry, validation
// errors) are not.
func isTransient(err error) bool {
	var pe *panicError
	return errors.As(err, &pe)
}

// Acquirer grants execution slots to supervised runs. Acquire blocks until a
// slot is granted or ctx is done; every successful Acquire must be paired
// with exactly one Release. maskd's fair limiter implements this to spread
// one machine-wide slot pool across tenants.
type Acquirer interface {
	Acquire(ctx context.Context) error
	Release()
}

// acquire takes one global execution slot, so the total number of
// simulations running at once stays within Workers (or the shared Slots
// budget) no matter how many experiments and batches submit work
// concurrently.
func (h *Harness) acquire(ctx context.Context) error {
	if h.Slots != nil {
		return h.Slots.Acquire(ctx)
	}
	h.semOnce.Do(func() { h.sem = make(chan struct{}, h.workers()) })
	select {
	case h.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (h *Harness) release() {
	if h.Slots != nil {
		h.Slots.Release()
		return
	}
	<-h.sem
}

// attempt runs f once under the harness context, a global execution slot and
// the per-run timeout, converting panics into errors. The timeout clock
// starts after slot acquisition so it measures the run, not the queue.
func (h *Harness) attempt(f func(ctx context.Context) (*sim.Results, error)) (res *sim.Results, err error) {
	ctx := h.ctx()
	if err := h.acquire(ctx); err != nil {
		return nil, err
	}
	defer h.release()
	if h.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.RunTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &panicError{value: r}
		}
	}()
	return f(ctx)
}

// supervised runs f with panic isolation and a single retry of transient
// failures, recording the outcome in the campaign stats. On failure it
// returns the partial Results (when the run produced any) and a *RunError.
func (h *Harness) supervised(label string, f func(ctx context.Context) (*sim.Results, error)) (*sim.Results, error) {
	h.mu.Lock()
	h.stats.Attempted++
	h.mu.Unlock()

	attempts := 1
	res, err := h.attempt(f)
	if err != nil && isTransient(err) && h.ctx().Err() == nil {
		h.mu.Lock()
		h.stats.Retried++
		h.mu.Unlock()
		attempts++
		res, err = h.attempt(f)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		h.stats.Completed++
		if res != nil {
			h.stats.CyclesSimulated += uint64(res.Cycles)
			h.stats.CyclesTicked += uint64(res.CyclesTicked)
		}
		return res, nil
	}
	h.stats.Failed++
	var de *engine.DeadlockError
	if errors.As(err, &de) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		h.stats.Aborted++
	}
	re := &RunError{Label: label, Attempts: attempts, Err: err}
	h.failures = append(h.failures, re)
	return res, re
}

// runConfig overlays the harness execution policy onto one run's config:
// the checkpoint policy and the intra-simulation shard count. With no
// CheckpointDir and Shards <= 1 it is the identity; otherwise the run
// checkpoints periodically and resumes from existing state, which makes both
// retry paths (same-process retry after a panic, fresh-process retry after a
// kill) continue mid-run, and/or ticks on Shards worker goroutines. Both
// knobs are canonicalized out of cache and checkpoint fingerprints — results
// are bit-identical regardless — so the overlay never changes a run's
// identity.
func (h *Harness) runConfig(cfg sim.Config) sim.Config {
	if h.Shards > 1 {
		cfg.Shards = h.Shards
	}
	if h.CheckpointDir == "" {
		return cfg
	}
	cfg.CheckpointDir = h.CheckpointDir
	if h.CheckpointEvery > 0 {
		cfg.CheckpointEvery = h.CheckpointEvery
	}
	cfg.Resume = true
	return cfg
}

// runPrepared executes one prepared simulator and folds its checkpoint
// accounting into the campaign stats — even for aborted runs, whose
// checkpoints (and rejected resume candidates) are part of the campaign
// story. A completed run's periodic checkpoints are deleted: they exist only
// to make the run survivable, and the result cache now owns its outcome.
func (h *Harness) runPrepared(ctx context.Context, s *sim.Simulator, cycles int64) (*sim.Results, error) {
	res, err := s.Run(ctx, cycles)
	cs := s.CheckpointStats()
	h.mu.Lock()
	h.stats.CheckpointsTaken += uint64(cs.Taken)
	h.stats.CheckpointsRestored += uint64(cs.Restored)
	h.stats.CheckpointsRejected += uint64(cs.Rejected)
	h.mu.Unlock()
	if err == nil {
		s.RemoveCheckpoints()
	}
	return res, err
}

// RunInfo reports how a memoized request was satisfied.
type RunInfo struct {
	// Executed is true when this request became the executing leader — a
	// cache miss that actually simulated. False means the result came from a
	// completed entry, an in-flight execution it joined, or the disk/remote
	// layers.
	Executed bool
}

// Run simulates the named benchmarks under cfg for h.Cycles, supervised and
// memoized: a second request for the same (config, apps, cycles) fingerprint
// — from any experiment sharing this Harness — returns the first run's
// Results without simulating. The returned Results are shared; treat them as
// read-only.
func (h *Harness) Run(cfg sim.Config, names []string) (*sim.Results, error) {
	res, _, err := h.RunEx(cfg, names)
	return res, err
}

// RunEx is Run plus a RunInfo telling whether this request executed (maskd
// uses it to report per-cell cache attribution).
func (h *Harness) RunEx(cfg sim.Config, names []string) (*sim.Results, RunInfo, error) {
	label := fmt.Sprintf("run(%s, %v)", cfg.Name, names)
	exec := func() (*sim.Results, error) {
		return h.supervised(label, func(ctx context.Context) (*sim.Results, error) {
			s, err := sim.Prepare(h.runConfig(cfg), names)
			if err != nil {
				return nil, err
			}
			return h.runPrepared(ctx, s, h.Cycles)
		})
	}
	if h.Cache == nil || !simcache.Cacheable(cfg) {
		res, err := exec()
		return res, RunInfo{Executed: true}, err
	}
	h.countCacheRequest()
	res, executed, err := h.Cache.DoInfo(simcache.RunKey(cfg, names, h.Cycles), exec)
	return res, RunInfo{Executed: executed}, err
}

// RunAlone measures one app with uncontended resources for h.AloneCycles,
// supervised and memoized like Run.
func (h *Harness) RunAlone(cfg sim.Config, app string, cores int) (*sim.Results, error) {
	res, _, err := h.RunAloneEx(cfg, app, cores)
	return res, err
}

// RunAloneEx is RunAlone plus a RunInfo (see RunEx).
func (h *Harness) RunAloneEx(cfg sim.Config, app string, cores int) (*sim.Results, RunInfo, error) {
	label := fmt.Sprintf("alone(%s, %s, %d cores)", cfg.Name, app, cores)
	exec := func() (*sim.Results, error) {
		return h.supervised(label, func(ctx context.Context) (*sim.Results, error) {
			s, err := sim.PrepareAlone(h.runConfig(cfg), app, cores)
			if err != nil {
				return nil, err
			}
			return h.runPrepared(ctx, s, h.AloneCycles)
		})
	}
	if h.Cache == nil || !simcache.Cacheable(cfg) {
		res, err := exec()
		return res, RunInfo{Executed: true}, err
	}
	h.countCacheRequest()
	res, executed, err := h.Cache.DoInfo(simcache.AloneKey(cfg, app, cores, h.AloneCycles), exec)
	return res, RunInfo{Executed: executed}, err
}

// countCacheRequest counts one memoized lookup in the harness-local stats.
// The cache's own Stats counts lookups too, but a Cache may be shared across
// harnesses (maskd), so the per-campaign number must be kept here.
func (h *Harness) countCacheRequest() {
	h.mu.Lock()
	h.stats.CacheRequests++
	h.mu.Unlock()
}

// Stats returns a snapshot of the campaign's run accounting, including the
// result-cache counters.
func (h *Harness) Stats() metrics.RunStats {
	h.mu.Lock()
	s := h.stats
	h.mu.Unlock()
	if h.Cache != nil {
		cs := h.Cache.Stats()
		s.CacheHits = cs.Hits
		s.CacheInflightWaits = cs.InflightWaits
		s.CacheMisses = cs.Misses
		s.DiskHits = cs.DiskHits
		s.RemoteHits = cs.RemoteHits
		s.RemotePuts = cs.RemotePuts
		s.RemoteErrors = cs.RemoteErrors
	}
	return s
}

// Failures returns the recorded per-run failures, in occurrence order.
func (h *Harness) Failures() []*RunError {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*RunError, len(h.failures))
	copy(out, h.failures)
	return out
}

// parallel runs fn(i) for i in [0,n) on the worker pool. Worker panics are
// recovered into errors; the first error by index is returned after all
// items finish, so partial progress is never thrown away mid-batch.
func (h *Harness) parallel(n int, fn func(i int) error) error {
	if h.Workers < 0 {
		return fmt.Errorf("experiments: Workers must be >= 0, got %d", h.Workers)
	}
	errs := make([]error, n)
	safe := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &panicError{value: r}
			}
		}()
		errs[i] = fn(i)
	}
	w := h.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			safe(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					safe(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AloneIPC returns the paper's IPC_alone for app on cores cores of the
// aloneCfg platform. The underlying run is memoized in the result cache —
// including failures, so a broken alone run is not retried for every
// dependent cell. Alone runs use the SharedTLB design of the same platform
// with full (unpartitioned) resources.
func (h *Harness) AloneIPC(aloneCfg sim.Config, app string, cores int) (float64, error) {
	cfg := aloneCfg
	cfg.Static = false
	cfg.Ideal = false
	cfg.Mask = sim.Mechanisms{}
	cfg.Design = sim.DesignSharedTLB
	res, err := h.RunAlone(cfg, app, cores)
	if err != nil {
		return 0, err
	}
	return res.Apps[0].IPC, nil
}

// WarmAlone precomputes alone IPCs for every app of the given pairs in
// parallel, at both core counts of the pair split — EvenSplit is asymmetric
// on odd core counts, so app B's alone run at split[1] cores is a distinct
// simulation that would otherwise execute serially inside the matrix pass.
// Individual failures are cached and surface later through the cells that
// need them; only campaign cancellation is returned.
func (h *Harness) WarmAlone(aloneCfg sim.Config, pairs []workload.Pair) error {
	seen := map[string]bool{}
	var apps []string
	for _, p := range pairs {
		for _, a := range []string{p.A, p.B} {
			if !seen[a] {
				seen[a] = true
				apps = append(apps, a)
			}
		}
	}
	sort.Strings(apps)
	split := sim.EvenSplit(aloneCfg.Cores, 2)
	coreCounts := []int{split[0]}
	if split[1] != split[0] {
		coreCounts = append(coreCounts, split[1])
	}
	if err := h.parallel(len(apps)*len(coreCounts), func(i int) error {
		h.AloneIPC(aloneCfg, apps[i/len(coreCounts)], coreCounts[i%len(coreCounts)])
		return nil
	}); err != nil {
		return err
	}
	return h.ctx().Err()
}

// BatchJob describes one simulation for RunBatch: a shared run of Names
// under Cfg, or — when Alone is non-empty — an uncontended run of app Alone
// on Cores cores.
type BatchJob struct {
	Cfg   sim.Config
	Names []string
	Alone string
	Cores int
}

// RunBatch executes the jobs on the worker pool and returns their Results in
// job order, so experiments submit whole sweeps at once instead of looping
// over h.Run sequentially. All jobs run to completion; the returned error is
// the first failed job's (by index), matching what a sequential loop would
// have returned.
func (h *Harness) RunBatch(jobs []BatchJob) ([]*sim.Results, error) {
	results := make([]*sim.Results, len(jobs))
	err := h.parallel(len(jobs), func(i int) error {
		var e error
		if jobs[i].Alone != "" {
			results[i], e = h.RunAlone(jobs[i].Cfg, jobs[i].Alone, jobs[i].Cores)
		} else {
			results[i], e = h.Run(jobs[i].Cfg, jobs[i].Names)
		}
		return e
	})
	return results, err
}

// Cell is one (pair, config) measurement. When Err is non-nil the cell
// failed: Metrics is zero and Results (if non-nil) holds only the partial
// statistics collected before the abort.
type Cell struct {
	Pair    workload.Pair
	Config  string
	Results *sim.Results
	Metrics sim.PairMetrics
	// Err records why the cell failed (nil for healthy cells).
	Err error
	// Attempts is the number of times the cell's run was tried.
	Attempts int
}

// OK reports whether the cell holds a usable measurement.
func (c *Cell) OK() bool { return c != nil && c.Err == nil }

// Matrix is the (pair × config) result grid underlying Figures 11–15.
// Failed cells stay in the grid with Err set; the Mean* aggregates skip
// them, so campaign means cover the surviving cells.
type Matrix struct {
	Pairs   []workload.Pair
	Configs []string
	Cells   map[string]map[string]*Cell // pair name -> config name -> cell
}

// Cell returns the cell for (pair, config).
func (m *Matrix) Cell(pair workload.Pair, config string) *Cell {
	return m.Cells[pair.Name()][config]
}

// OK reports whether every listed config has a usable cell for pair (all
// matrix configs when none are listed).
func (m *Matrix) OK(pair workload.Pair, configs ...string) bool {
	if len(configs) == 0 {
		configs = m.Configs
	}
	for _, c := range configs {
		if !m.Cell(pair, c).OK() {
			return false
		}
	}
	return true
}

// Failed returns the failed cells in deterministic (pair, config) order.
func (m *Matrix) Failed() []*Cell {
	var out []*Cell
	for _, p := range m.Pairs {
		for _, c := range m.Configs {
			if cell := m.Cell(p, c); cell != nil && cell.Err != nil {
				out = append(out, cell)
			}
		}
	}
	return out
}

// FailureFrac returns the fraction of matrix cells that failed.
func (m *Matrix) FailureFrac() float64 {
	total := len(m.Pairs) * len(m.Configs)
	if total == 0 {
		return 0
	}
	return float64(len(m.Failed())) / float64(total)
}

// MeanWS returns the arithmetic-mean weighted speedup for config over the
// surviving pairs (all pairs when subset is nil).
func (m *Matrix) MeanWS(config string, subset []workload.Pair) float64 {
	if subset == nil {
		subset = m.Pairs
	}
	var xs []float64
	for _, p := range subset {
		if c := m.Cell(p, config); c.OK() {
			xs = append(xs, c.Metrics.WeightedSpeedup)
		}
	}
	return metrics.Mean(xs)
}

// MeanUnfairness is MeanWS for the maximum-slowdown metric.
func (m *Matrix) MeanUnfairness(config string, subset []workload.Pair) float64 {
	if subset == nil {
		subset = m.Pairs
	}
	var xs []float64
	for _, p := range subset {
		if c := m.Cell(p, config); c.OK() {
			xs = append(xs, c.Metrics.Unfairness)
		}
	}
	return metrics.Mean(xs)
}

// MeanIPCThroughput averages the summed shared IPC for config over pairs.
func (m *Matrix) MeanIPCThroughput(config string, subset []workload.Pair) float64 {
	if subset == nil {
		subset = m.Pairs
	}
	var xs []float64
	for _, p := range subset {
		if c := m.Cell(p, config); c.OK() {
			xs = append(xs, c.Metrics.IPCThroughput)
		}
	}
	return metrics.Mean(xs)
}

// RunMatrix simulates every (pair, config) combination, fail-soft: a cell
// whose run panics, deadlocks or times out is recorded with Cell.Err and the
// rest of the campaign proceeds. Alone IPCs come from the SharedTLB variant
// of aloneCfg. The returned error is non-nil only when the whole campaign
// was canceled through h.Ctx.
func (h *Harness) RunMatrix(aloneCfg sim.Config, configs []sim.Config, pairs []workload.Pair) (*Matrix, error) {
	if err := h.WarmAlone(aloneCfg, pairs); err != nil {
		return nil, err
	}

	m := &Matrix{Pairs: pairs, Cells: make(map[string]map[string]*Cell)}
	for _, c := range configs {
		m.Configs = append(m.Configs, c.Name)
	}
	for _, p := range pairs {
		m.Cells[p.Name()] = make(map[string]*Cell)
	}

	type job struct {
		pair workload.Pair
		cfg  sim.Config
	}
	var jobs []job
	for _, p := range pairs {
		for _, c := range configs {
			jobs = append(jobs, job{p, c})
		}
	}
	var mu sync.Mutex
	if err := h.parallel(len(jobs), func(i int) error {
		j := jobs[i]
		cell := &Cell{Pair: j.pair, Config: j.cfg.Name, Attempts: 1}
		res, err := h.Run(j.cfg, []string{j.pair.A, j.pair.B})
		cell.Results = res
		var re *RunError
		if errors.As(err, &re) {
			cell.Attempts = re.Attempts
		}
		if err == nil {
			split := sim.EvenSplit(j.cfg.Cores, 2)
			var alone [2]float64
			var aerr error
			for k, app := range []string{j.pair.A, j.pair.B} {
				alone[k], aerr = h.AloneIPC(aloneCfg, app, split[k])
				if aerr != nil {
					err = fmt.Errorf("alone IPC for %s unavailable: %w", app, aerr)
					break
				}
			}
			if err == nil {
				cell.Metrics = res.Metrics(alone[:])
			}
		}
		cell.Err = err
		mu.Lock()
		m.Cells[j.pair.Name()][j.cfg.Name] = cell
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	return m, h.ctx().Err()
}
