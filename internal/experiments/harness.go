// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the masksim substrate. Each experiment is a function
// returning a printable Table; cmd/maskexp dispatches on experiment IDs and
// bench_test.go wraps each one in a benchmark.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"masksim/internal/metrics"
	"masksim/internal/workload"
	"masksim/sim"
)

// Harness runs batches of simulations with caching of alone-run IPCs and a
// worker pool (independent Simulator instances share no state).
type Harness struct {
	// Cycles is the simulated length of shared runs; AloneCycles of alone
	// runs (defaults to Cycles).
	Cycles      int64
	AloneCycles int64
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int

	mu    sync.Mutex
	alone map[aloneKey]float64
}

type aloneKey struct {
	arch  string
	app   string
	cores int
}

// NewHarness returns a Harness with the given shared-run length.
func NewHarness(cycles int64) *Harness {
	return &Harness{Cycles: cycles, AloneCycles: cycles, alone: make(map[aloneKey]float64)}
}

func (h *Harness) workers() int {
	if h.Workers > 0 {
		return h.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallel runs fn(i) for i in [0,n) on the worker pool.
func (h *Harness) parallel(n int, fn func(i int)) {
	w := h.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// archKey identifies the platform (not the TLB design) so alone-run IPCs are
// shared between configurations of the same machine.
func archKey(cfg sim.Config) string {
	return fmt.Sprintf("c%d-w%d-l2tlb%d-pg%d-ch%d-l2%d",
		cfg.Cores, cfg.WarpsPerCore, cfg.L2TLBEntries, cfg.PageSize,
		cfg.DRAM.Channels, cfg.L2Cache.SizeBytes)
}

// AloneIPC returns the paper's IPC_alone for app on cores cores of the
// aloneCfg platform, caching results. Alone runs use the SharedTLB design of
// the same platform with full (unpartitioned) resources.
func (h *Harness) AloneIPC(aloneCfg sim.Config, app string, cores int) float64 {
	key := aloneKey{archKey(aloneCfg), app, cores}
	h.mu.Lock()
	v, ok := h.alone[key]
	h.mu.Unlock()
	if ok {
		return v
	}
	cfg := aloneCfg
	cfg.Static = false
	cfg.Ideal = false
	cfg.Mask = sim.Mechanisms{}
	cfg.Design = sim.DesignSharedTLB
	res, err := sim.RunAlone(cfg, app, cores, h.AloneCycles)
	if err != nil {
		panic(err)
	}
	v = res.Apps[0].IPC
	h.mu.Lock()
	h.alone[key] = v
	h.mu.Unlock()
	return v
}

// WarmAlone precomputes alone IPCs for every app of the given pairs in
// parallel.
func (h *Harness) WarmAlone(aloneCfg sim.Config, pairs []workload.Pair) {
	seen := map[string]bool{}
	var apps []string
	for _, p := range pairs {
		for _, a := range []string{p.A, p.B} {
			if !seen[a] {
				seen[a] = true
				apps = append(apps, a)
			}
		}
	}
	sort.Strings(apps)
	split := sim.EvenSplit(aloneCfg.Cores, 2)
	h.parallel(len(apps), func(i int) {
		h.AloneIPC(aloneCfg, apps[i], split[0])
	})
}

// Cell is one (pair, config) measurement.
type Cell struct {
	Pair    workload.Pair
	Config  string
	Results *sim.Results
	Metrics sim.PairMetrics
}

// Matrix is the (pair × config) result grid underlying Figures 11–15.
type Matrix struct {
	Pairs   []workload.Pair
	Configs []string
	Cells   map[string]map[string]*Cell // pair name -> config name -> cell
}

// Cell returns the cell for (pair, config).
func (m *Matrix) Cell(pair workload.Pair, config string) *Cell {
	return m.Cells[pair.Name()][config]
}

// MeanWS returns the arithmetic-mean weighted speedup for config over pairs
// (all pairs when subset is nil).
func (m *Matrix) MeanWS(config string, subset []workload.Pair) float64 {
	if subset == nil {
		subset = m.Pairs
	}
	var xs []float64
	for _, p := range subset {
		if c := m.Cell(p, config); c != nil {
			xs = append(xs, c.Metrics.WeightedSpeedup)
		}
	}
	return metrics.Mean(xs)
}

// MeanUnfairness is MeanWS for the maximum-slowdown metric.
func (m *Matrix) MeanUnfairness(config string, subset []workload.Pair) float64 {
	if subset == nil {
		subset = m.Pairs
	}
	var xs []float64
	for _, p := range subset {
		if c := m.Cell(p, config); c != nil {
			xs = append(xs, c.Metrics.Unfairness)
		}
	}
	return metrics.Mean(xs)
}

// MeanIPCThroughput averages the summed shared IPC for config over pairs.
func (m *Matrix) MeanIPCThroughput(config string, subset []workload.Pair) float64 {
	if subset == nil {
		subset = m.Pairs
	}
	var xs []float64
	for _, p := range subset {
		if c := m.Cell(p, config); c != nil {
			xs = append(xs, c.Metrics.IPCThroughput)
		}
	}
	return metrics.Mean(xs)
}

// RunMatrix simulates every (pair, config) combination. Alone IPCs come from
// the SharedTLB variant of aloneCfg.
func (h *Harness) RunMatrix(aloneCfg sim.Config, configs []sim.Config, pairs []workload.Pair) *Matrix {
	h.WarmAlone(aloneCfg, pairs)

	m := &Matrix{Pairs: pairs, Cells: make(map[string]map[string]*Cell)}
	for _, c := range configs {
		m.Configs = append(m.Configs, c.Name)
	}
	for _, p := range pairs {
		m.Cells[p.Name()] = make(map[string]*Cell)
	}

	type job struct {
		pair workload.Pair
		cfg  sim.Config
	}
	var jobs []job
	for _, p := range pairs {
		for _, c := range configs {
			jobs = append(jobs, job{p, c})
		}
	}
	var mu sync.Mutex
	h.parallel(len(jobs), func(i int) {
		j := jobs[i]
		res, err := sim.Run(j.cfg, []string{j.pair.A, j.pair.B}, h.Cycles)
		if err != nil {
			panic(err)
		}
		split := sim.EvenSplit(j.cfg.Cores, 2)
		alone := []float64{
			h.AloneIPC(aloneCfg, j.pair.A, split[0]),
			h.AloneIPC(aloneCfg, j.pair.B, split[1]),
		}
		cell := &Cell{Pair: j.pair, Config: j.cfg.Name, Results: res, Metrics: res.Metrics(alone)}
		mu.Lock()
		m.Cells[j.pair.Name()][j.cfg.Name] = cell
		mu.Unlock()
	})
	return m
}
