package experiments

import (
	"masksim/internal/memreq"
	"masksim/internal/metrics"
	"masksim/sim"
)

// pairCompare batch-runs every pair under the baseline and variant configs,
// returning (baseline, variant) result pairs in pair order — the shape all
// three §7.2 component analyses share.
func pairCompare(h *Harness, full bool, variant sim.Config) (pairs []ResultPair, err error) {
	ps := pairSet(full)
	var jobs []BatchJob
	for _, p := range ps {
		names := []string{p.A, p.B}
		jobs = append(jobs,
			BatchJob{Cfg: sim.SharedTLBConfig(), Names: names},
			BatchJob{Cfg: variant, Names: names})
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	for i := range ps {
		pairs = append(pairs, ResultPair{Base: results[2*i], Variant: results[2*i+1]})
	}
	return pairs, nil
}

// ResultPair is one pair's (baseline, variant) measurement.
type ResultPair struct {
	Base    *sim.Results
	Variant *sim.Results
}

// CompTLB reproduces the §7.2 TLB-Fill Tokens analysis: shared L2 TLB hit
// rate under SharedTLB vs MASK-TLB, plus the TLB bypass cache hit rate.
// The paper reports a 49.9% average hit-rate improvement and a 66.5% bypass
// cache hit rate.
func CompTLB(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(full)
	t := &Table{
		ID:    "comp-tlb",
		Title: "TLB-Fill Tokens: shared L2 TLB hit rates and bypass cache",
		Cols:  []string{"pair", "baseHit%", "tokensHit%", "bypass$Hit%", "WSdelta%"},
	}
	rps, err := pairCompare(h, full, sim.MASKTLBConfig())
	if err != nil {
		return nil, err
	}
	var rel []float64
	for i, p := range pairs {
		base, tok := rps[i].Base, rps[i].Variant
		bh := 1 - base.L2TLBTotal.MissRate()
		th := 1 - tok.L2TLBTotal.MissRate()
		if bh > 0 {
			rel = append(rel, th/bh-1)
		}
		t.AddRowf(1, p.Name(), 100*bh, 100*th, 100*tok.BypassCacheHitRate,
			100*(tok.TotalIPC/base.TotalIPC-1))
	}
	t.AddRowf(1, "MEAN rel. hit-rate change %", 100*metrics.Mean(rel))
	return t, nil
}

// CompCache reproduces the §7.2 Address-Translation-Aware L2 Bypass
// analysis: per-level L2 data cache hit rates for translation requests and
// the fraction of translation requests bypassed, under MASK-Cache.
// The paper reports >99% hit rate for the translation requests that are
// still cached, and a 43.6% performance gain.
func CompCache(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(full)
	t := &Table{
		ID:    "comp-cache",
		Title: "L2 bypass: per-walk-level cache behaviour under MASK-Cache",
		Cols:  []string{"pair", "lvl1Hit%", "lvl2Hit%", "lvl3Hit%", "lvl4Hit%", "bypassed", "WSdelta%"},
	}
	rps, err := pairCompare(h, full, sim.MASKCacheConfig())
	if err != nil {
		return nil, err
	}
	for i, p := range pairs {
		base, mc := rps[i].Base, rps[i].Variant
		var bypassed uint64
		cells := []interface{}{p.Name()}
		for lvl := 1; lvl <= memreq.MaxWalkLevel; lvl++ {
			s := mc.L2CacheLevel[lvl]
			cells = append(cells, 100*s.HitRate())
			bypassed += s.Bypasses
		}
		cells = append(cells, int(bypassed), 100*(mc.TotalIPC/base.TotalIPC-1))
		t.AddRowf(1, cells...)
	}
	return t, nil
}

// CompDRAM reproduces the §7.2 Address-Space-Aware DRAM scheduler analysis:
// DRAM latency of translation and data requests under SharedTLB vs
// MASK-DRAM. The paper reports translation-latency reductions up to 10.6%
// and Silver-Queue case studies (SCAN_SRAD, SCAN_CONS).
func CompDRAM(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(full)
	t := &Table{
		ID:    "comp-dram",
		Title: "DRAM scheduler: per-class DRAM latency, SharedTLB vs MASK-DRAM",
		Cols:  []string{"pair", "baseTLat", "maskTLat", "baseDLat", "maskDLat", "WSdelta%"},
	}
	rps, err := pairCompare(h, full, sim.MASKDRAMConfig())
	if err != nil {
		return nil, err
	}
	for i, p := range pairs {
		base, md := rps[i].Base, rps[i].Variant
		t.AddRowf(0, p.Name(),
			base.DRAMClass[memreq.Translation].AvgLatency(),
			md.DRAMClass[memreq.Translation].AvgLatency(),
			base.DRAMClass[memreq.Data].AvgLatency(),
			md.DRAMClass[memreq.Data].AvgLatency(),
			100*(md.TotalIPC/base.TotalIPC-1))
	}
	return t, nil
}

func init() {
	register("comp-tlb", "TLB-Fill Tokens component analysis (§7.2)", one(CompTLB))
	register("comp-cache", "L2 bypass component analysis (§7.2)", one(CompCache))
	register("comp-dram", "DRAM scheduler component analysis (§7.2)", one(CompDRAM))
}
