package experiments

import (
	"masksim/internal/metrics"
	"masksim/sim"
)

// Fig3 reproduces Figure 3: the performance of the two baseline designs
// (PWCache and SharedTLB) normalized to the Ideal (always-hit) TLB, for
// two-application workloads. The paper reports averages of 0.55 and 0.59.
func Fig3(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(full)
	var cfgs []sim.Config
	for _, n := range []string{"PWCache", "SharedTLB", "Ideal"} {
		c, _ := sim.ConfigByName(n)
		cfgs = append(cfgs, c)
	}
	m, err := h.RunMatrix(sim.SharedTLBConfig(), cfgs, pairs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "fig3",
		Title: "baseline designs normalized to Ideal (weighted speedup ratio)",
		Note:  "paper: both baselines average ~0.55-0.60 of Ideal",
		Cols:  []string{"pair", "PWCache", "SharedTLB"},
	}
	var pw, sh []float64
	for _, p := range pairs {
		if !m.OK(p) {
			t.AddRow(p.Name(), "FAILED", "FAILED")
			continue
		}
		ideal := m.Cell(p, "Ideal").Metrics.WeightedSpeedup
		if ideal <= 0 {
			continue
		}
		a := m.Cell(p, "PWCache").Metrics.WeightedSpeedup / ideal
		b := m.Cell(p, "SharedTLB").Metrics.WeightedSpeedup / ideal
		pw = append(pw, a)
		sh = append(sh, b)
		t.AddRowf(3, p.Name(), a, b)
	}
	t.AddRowf(3, "MEAN", metrics.Mean(pw), metrics.Mean(sh))
	return t, nil
}

func init() {
	register("fig3", "PWCache & SharedTLB baselines vs Ideal (Figure 3)", one(Fig3))
}
