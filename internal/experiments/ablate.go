package experiments

import (
	"masksim/internal/metrics"
	"masksim/sim"
)

// Ablate runs every combination of MASK's three mechanisms over the
// contended pair set, showing how the components compose — the ablation
// study DESIGN.md calls out. The paper evaluates the three singletons
// (Figure 11); the pairwise and triple combinations quantify interaction
// effects on this substrate.
func Ablate(h *Harness, full bool) (*Table, error) {
	pairs := pairSet(full)
	combos := []struct {
		name string
		mask sim.Mechanisms
	}{
		{"baseline", sim.Mechanisms{}},
		{"T (tokens)", sim.Mechanisms{Tokens: true}},
		{"C (L2 bypass)", sim.Mechanisms{L2Bypass: true}},
		{"D (DRAM sched)", sim.Mechanisms{DRAMSched: true}},
		{"T+C", sim.Mechanisms{Tokens: true, L2Bypass: true}},
		{"T+D", sim.Mechanisms{Tokens: true, DRAMSched: true}},
		{"C+D", sim.Mechanisms{L2Bypass: true, DRAMSched: true}},
		{"T+C+D (MASK)", sim.Mechanisms{Tokens: true, L2Bypass: true, DRAMSched: true}},
	}
	t := &Table{
		ID:    "ablate",
		Title: "mechanism ablation: mean total IPC over the pair set, relative to baseline",
		Cols:  []string{"combination", "meanIPC", "vsBaseline%"},
	}
	var jobs []BatchJob
	for _, combo := range combos {
		cfg := sim.SharedTLBConfig()
		cfg.Name = combo.name
		cfg.Mask = combo.mask
		for _, p := range pairs {
			jobs = append(jobs, BatchJob{Cfg: cfg, Names: []string{p.A, p.B}})
		}
	}
	results, err := h.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	var base float64
	for i, combo := range combos {
		var xs []float64
		for k := range pairs {
			xs = append(xs, results[i*len(pairs)+k].TotalIPC)
		}
		mean := metrics.Mean(xs)
		if i == 0 {
			base = mean
		}
		t.AddRowf(2, combo.name, mean, 100*(mean/base-1))
	}
	return t, nil
}

func init() {
	register("ablate", "MASK mechanism-combination ablation (DESIGN.md)", one(Ablate))
}
