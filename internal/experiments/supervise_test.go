package experiments

import (
	"strings"
	"testing"

	"masksim/internal/faultinject"
	"masksim/internal/workload"
	"masksim/sim"
)

func tinyCfg(name string) sim.Config {
	c := sim.SharedTLBConfig()
	c.Name = name
	c.Cores = 4
	c.WarpsPerCore = 8
	return c
}

// TestMatrixSurvivesPanickingCell injects a panic into one configuration and
// checks that the worker pool isolates it: the campaign completes, the bad
// cells are marked failed after one retry, and means cover the survivors.
func TestMatrixSurvivesPanickingCell(t *testing.T) {
	good := tinyCfg("good")
	bad := tinyCfg("bad")
	bad.FaultPlan = &faultinject.Plan{PanicAtCycle: 300}

	h := NewHarness(1200)
	pairs := []workload.Pair{{A: "NN", B: "LUD"}}
	m, err := h.RunMatrix(tinyCfg("alone"), []sim.Config{good, bad}, pairs)
	if err != nil {
		t.Fatalf("campaign died instead of isolating the panic: %v", err)
	}

	c := m.Cell(pairs[0], "bad")
	if c.OK() {
		t.Fatal("panicking cell not marked failed")
	}
	if !strings.Contains(c.Err.Error(), "injected panic") {
		t.Fatalf("cell error does not carry the panic: %v", c.Err)
	}
	if c.Attempts != 2 {
		t.Fatalf("panic retried %d time(s), want 1 retry (2 attempts)", c.Attempts-1)
	}
	if !m.Cell(pairs[0], "good").OK() {
		t.Fatal("healthy cell infected by neighbouring panic")
	}
	if ws := m.MeanWS("good", nil); ws <= 0 {
		t.Fatalf("mean WS over surviving cells = %v, want > 0", ws)
	}

	st := h.Stats()
	if st.Failed == 0 || st.Retried == 0 {
		t.Fatalf("stats do not record the failure/retry: %+v", st)
	}
	if st.Completed == 0 {
		t.Fatalf("stats record no completed runs: %+v", st)
	}
	if len(h.Failures()) == 0 {
		t.Fatal("failure list is empty")
	}
}

// TestMatrixSurvivesWedgedCell is the issue's acceptance test: one
// configuration wedges a page-table walk, the watchdog detects the stall and
// aborts that run with diagnostics, and the enclosing RunMatrix campaign
// still completes and reports means over the surviving cells.
func TestMatrixSurvivesWedgedCell(t *testing.T) {
	good := tinyCfg("good")
	wedged := tinyCfg("wedged")
	wedged.WatchdogCheckEvery = 500
	wedged.WatchdogStallChecks = 2
	wedged.FaultPlan = &faultinject.Plan{WedgePTWAfter: 100}

	h := NewHarness(2_000_000)
	h.AloneCycles = 1200
	pairs := []workload.Pair{{A: "3DS", B: "CONS"}}
	m, err := h.RunMatrix(tinyCfg("alone"), []sim.Config{good, wedged}, pairs)
	if err != nil {
		t.Fatalf("campaign died instead of isolating the wedged run: %v", err)
	}

	c := m.Cell(pairs[0], "wedged")
	if c.OK() {
		t.Fatal("wedged cell not marked failed")
	}
	if !strings.Contains(c.Err.Error(), "no progress") {
		t.Fatalf("cell error is not the watchdog diagnostic: %v", c.Err)
	}
	if c.Results == nil || !c.Results.Aborted {
		t.Fatal("wedged cell carries no aborted partial results")
	}
	if !m.Cell(pairs[0], "good").OK() {
		t.Fatal("healthy cell failed alongside the wedged one")
	}
	if ws := m.MeanWS("good", nil); ws <= 0 {
		t.Fatalf("mean WS over surviving cells = %v, want > 0", ws)
	}
	if m.FailureFrac() <= 0 {
		t.Fatal("matrix reports no failures")
	}

	st := h.Stats()
	if st.Aborted == 0 {
		t.Fatalf("stats do not count the watchdog abort: %+v", st)
	}
}

// TestParallelRejectsNegativeWorkers pins the Workers validation satellite.
func TestParallelRejectsNegativeWorkers(t *testing.T) {
	h := NewHarness(100)
	h.Workers = -3
	if err := h.parallel(1, func(int) error { return nil }); err == nil {
		t.Fatal("negative Workers accepted")
	}
}
