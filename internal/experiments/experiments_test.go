package experiments

import (
	"strings"
	"testing"

	"masksim/internal/workload"
	"masksim/sim"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Cols: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRowf(2, "v", 3.14159, 7)
	s := tab.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "3.14", "7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryCoversDesignDoc(t *testing.T) {
	// Every experiment promised in DESIGN.md's per-experiment index must be
	// registered.
	want := []string{
		"fig1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig11", "fig12", "fig13", "fig14", "fig15",
		"tab3", "tab4", "comp-tlb", "comp-cache", "comp-dram",
		"sens-tlbsize", "sens-pagesize", "sens-memsched", "sens-warpsched", "sens-tokens",
		"storage", "calib", "ablate", "anatomy", "ext-paging", "ext-prefetch",
	}
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %s not registered", id)
		}
		if Describe(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", 100, false); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestStorageExperimentIsPure(t *testing.T) {
	tables, err := Run("storage", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) < 5 {
		t.Fatal("storage accounting incomplete")
	}
}

func TestRepresentativePairsValid(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range RepresentativePairs {
		workload.MustByName(p.A)
		workload.MustByName(p.B)
		if seen[p.Name()] {
			t.Fatalf("duplicate pair %s", p.Name())
		}
		seen[p.Name()] = true
	}
	zero, one, two := categorize(RepresentativePairs)
	if len(zero) == 0 || len(one) == 0 || len(two) == 0 {
		t.Fatal("representative pairs do not cover all categories")
	}
}

func TestHarnessAloneCaching(t *testing.T) {
	h := NewHarness(1200)
	cfg := sim.SharedTLBConfig()
	cfg.Cores = 4
	cfg.WarpsPerCore = 8
	a, err := h.AloneIPC(cfg, "NN", 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AloneIPC(cfg, "NN", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("alone IPC cache returned different values")
	}
	if a <= 0 {
		t.Fatal("alone IPC not positive")
	}
}

func TestRunMatrixSmall(t *testing.T) {
	h := NewHarness(1200)
	small := func(name string, ideal bool) sim.Config {
		c := sim.SharedTLBConfig()
		c.Name = name
		c.Cores = 4
		c.WarpsPerCore = 8
		c.Ideal = ideal
		return c
	}
	pairs := []workload.Pair{{A: "NN", B: "LUD"}}
	m, err := h.RunMatrix(small("base", false), []sim.Config{small("base", false), small("ideal", true)}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cell(pairs[0], "base")
	if c == nil || c.Results == nil {
		t.Fatal("matrix cell missing")
	}
	if !c.OK() {
		t.Fatalf("cell failed: %v", c.Err)
	}
	if m.MeanWS("base", nil) <= 0 {
		t.Fatal("mean WS not positive")
	}
	if m.MeanIPCThroughput("ideal", nil) <= 0 {
		t.Fatal("mean throughput not positive")
	}
	if m.MeanUnfairness("base", nil) <= 0 {
		t.Fatal("mean unfairness not positive")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Cols: []string{"a", "b"}}
	tab.AddRow("1", "he,llo")
	got := tab.CSV()
	want := "a,b\n1,\"he,llo\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
