// Package snapshot implements the on-disk envelope for simulator
// checkpoints: a magic-tagged, version-stamped, fingerprint-keyed container
// whose payload is guarded by a SHA-256 checksum. The envelope is
// deliberately dumb — it carries opaque payload bytes and enough metadata to
// reject the three ways a checkpoint can be unusable (wrong format, wrong
// simulation, corrupted bytes) with a structured error each, so callers can
// fall back to a clean start instead of panicking on garbage.
//
// The package also owns WriteFileAtomic, the crash-durable tmp+rename+fsync
// helper shared by checkpoint writes and the simcache on-disk layer.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// magic identifies a masksim checkpoint file.
var magic = [4]byte{'M', 'S', 'K', 'P'}

// Version is the current envelope+payload format version. Bump it whenever
// any component's serialized state changes shape or meaning (see
// docs/MODEL.md §9); old files are then rejected with a *VersionError
// instead of being misdecoded.
//
// Version history:
//
//	1 — initial format
//	2 — per-core request pools: the checkpoint payload carries pool and
//	    ID-generator state as slices (sharded execution support)
const Version uint32 = 2

// maxMetaLen bounds the fingerprint length so a corrupt header cannot make
// Read attempt a huge allocation.
const maxMetaLen = 1 << 16

// Header is the envelope metadata stored alongside the payload.
type Header struct {
	// Fingerprint identifies the simulation this checkpoint belongs to
	// (config + apps + cycle budget, sim.Simulator.Fingerprint).
	Fingerprint string
	// Cycle is the simulated cycle the state was captured at.
	Cycle int64
	// TotalCycles is the cycle budget of the interrupted run; a restored run
	// must be resumed with the same budget to stay bit-identical.
	TotalCycles int64
}

// Structured rejection errors. Every defect a checkpoint file can have maps
// to exactly one of these (wrapped with context), so restore paths can
// distinguish "not a checkpoint" from "stale format" from "bit rot".
var (
	// ErrBadMagic: the file does not start with the checkpoint magic.
	ErrBadMagic = errors.New("snapshot: bad magic (not a checkpoint file)")
	// ErrChecksum: the trailing SHA-256 does not match the content.
	ErrChecksum = errors.New("snapshot: checksum mismatch (corrupt checkpoint)")
	// ErrTruncated: the file ends before the declared content does.
	ErrTruncated = errors.New("snapshot: truncated checkpoint")
)

// VersionError reports a version-stamped envelope from a different format
// generation.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: version %d not supported (want %d)", e.Got, e.Want)
}

// Write serializes header and payload to w:
//
//	magic[4] | version u32 | fpLen u32 | fingerprint | cycle i64 |
//	totalCycles i64 | payloadLen u64 | payload | sha256[32]
//
// all little-endian, with the checksum covering every preceding byte.
func Write(w io.Writer, h Header, payload []byte) error {
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	var u32 [4]byte
	var u64 [8]byte
	le.PutUint32(u32[:], Version)
	buf.Write(u32[:])
	le.PutUint32(u32[:], uint32(len(h.Fingerprint)))
	buf.Write(u32[:])
	buf.WriteString(h.Fingerprint)
	le.PutUint64(u64[:], uint64(h.Cycle))
	buf.Write(u64[:])
	le.PutUint64(u64[:], uint64(h.TotalCycles))
	buf.Write(u64[:])
	le.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	_, err := w.Write(buf.Bytes())
	return err
}

// Seal computes the trailing checksum Write appends over body. Exposed so
// tests can craft envelopes whose only defect is the field under test.
func Seal(body []byte) []byte {
	sum := sha256.Sum256(body)
	return sum[:]
}

// Read parses an envelope written by Write directly from r, verifying
// magic, version and checksum. Unlike Decode it streams: the header and
// payload are consumed through a running SHA-256, so the only payload-sized
// allocation is the returned payload itself — a restore holds one copy of
// the state bytes, not the whole raw file plus the decoded copy.
//
// The error taxonomy matches Decode with one streaming-imposed nuance:
// Decode verifies the checksum before parsing anything, while Read must
// parse as it goes, so a length field corrupted into an unservable value
// (an oversized fingerprint, a payload running past end of file) surfaces
// as ErrTruncated rather than ErrChecksum. The version verdict is still
// deferred until the checksum has been verified, so a corrupt version field
// reports corruption, not a format mismatch.
func Read(r io.Reader) (Header, []byte, error) {
	var h Header
	hash := sha256.New()
	tee := io.TeeReader(r, hash)

	var head [12]byte // magic, version u32, fpLen u32
	if err := readFull(tee, head[:]); err != nil {
		return h, nil, err
	}
	if !bytes.Equal(head[:4], magic[:]) {
		return h, nil, ErrBadMagic
	}
	le := binary.LittleEndian
	version := le.Uint32(head[4:])
	fpLen := le.Uint32(head[8:])
	if fpLen > maxMetaLen {
		return h, nil, ErrTruncated
	}
	meta := make([]byte, int(fpLen)+24)
	if err := readFull(tee, meta); err != nil {
		return h, nil, err
	}
	h.Fingerprint = string(meta[:fpLen])
	h.Cycle = int64(le.Uint64(meta[fpLen:]))
	h.TotalCycles = int64(le.Uint64(meta[fpLen+8:]))
	payloadLen := le.Uint64(meta[fpLen+16:])

	payload, err := readPayload(tee, payloadLen)
	if err != nil {
		return Header{}, nil, err
	}
	want := hash.Sum(nil)
	// The trailing checksum is read from r, not the tee: it does not cover
	// itself.
	var sum [sha256.Size]byte
	if err := readFull(r, sum[:]); err != nil {
		return Header{}, nil, err
	}
	if !bytes.Equal(want, sum[:]) {
		return Header{}, nil, ErrChecksum
	}
	if version != Version {
		return Header{}, nil, &VersionError{Got: version, Want: Version}
	}
	return h, payload, nil
}

// readFull fills buf from r, mapping a short read to ErrTruncated.
func readFull(r io.Reader, buf []byte) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return fmt.Errorf("snapshot: read: %w", err)
	}
	return nil
}

// Payload reads are chunked and the initial allocation capped so a corrupt
// length field cannot demand an arbitrary up-front allocation: a declared
// length the file cannot back stops at ErrTruncated after at most one extra
// chunk.
const (
	payloadChunk        = 64 << 20
	payloadInitialAlloc = 1 << 30
)

// readPayload reads exactly n payload bytes from r.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	capHint := n
	if capHint > payloadInitialAlloc {
		capHint = payloadInitialAlloc
	}
	buf := make([]byte, 0, capHint)
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > payloadChunk {
			step = payloadChunk
		}
		off := uint64(len(buf))
		if uint64(cap(buf)) >= off+step {
			buf = buf[:off+step]
		} else {
			newCap := uint64(cap(buf)) * 2
			if newCap < off+step {
				newCap = off + step
			}
			grown := make([]byte, off+step, newCap)
			copy(grown, buf)
			buf = grown
		}
		if err := readFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Info is a lenient description of an envelope for post-mortem tooling
// (masksim -inspect-checkpoint). Unlike Decode, Inspect keeps going past
// defects so a corrupt or stale file can still be described: Err carries the
// structured rejection Decode would have returned, while the fields hold
// whatever could be recovered.
type Info struct {
	// Header holds the recovered metadata (best-effort when Err != nil).
	Header Header
	// Version is the envelope's stamped format version (0 if unreadable).
	Version uint32
	// PayloadLen is the length of the recovered payload in bytes.
	PayloadLen int
	// ChecksumOK reports whether the trailing SHA-256 matched the content.
	ChecksumOK bool
	// Payload is the raw payload (only trustworthy when Err == nil).
	Payload []byte
	// Err classifies the defect, if any: ErrBadMagic, ErrChecksum,
	// ErrTruncated or *VersionError — the same taxonomy as Decode.
	Err error
}

// Inspect parses raw as leniently as possible. The header fields of a
// checksum-corrupt or version-mismatched file are still decoded (they may
// themselves be damaged — that is what Err warns about); only a bad magic or
// a header too short to parse leaves them zero.
func Inspect(raw []byte) Info {
	info := Info{}
	if len(raw) < len(magic) || !bytes.Equal(raw[:len(magic)], magic[:]) {
		info.Err = ErrBadMagic
		if len(raw) < len(magic) {
			info.Err = ErrTruncated
		}
		return info
	}
	if len(raw) >= len(magic)+sha256.Size {
		body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
		got := sha256.Sum256(body)
		info.ChecksumOK = bytes.Equal(got[:], sum)
		if info.ChecksumOK {
			raw = body // exclude the checksum from header/payload parsing
		}
	}
	p := raw[len(magic):]
	if len(p) < 8 {
		info.Err = ErrTruncated
		return info
	}
	le := binary.LittleEndian
	info.Version = le.Uint32(p)
	fpLen := le.Uint32(p[4:])
	p = p[8:]
	if fpLen > maxMetaLen || uint64(len(p)) < uint64(fpLen)+24 {
		info.Err = ErrTruncated
		return info
	}
	info.Header.Fingerprint = string(p[:fpLen])
	p = p[fpLen:]
	info.Header.Cycle = int64(le.Uint64(p))
	info.Header.TotalCycles = int64(le.Uint64(p[8:]))
	payloadLen := le.Uint64(p[16:])
	p = p[24:]
	switch {
	case !info.ChecksumOK:
		info.Err = ErrChecksum
		// The declared payload may overrun what is present; clamp.
		if uint64(len(p)) < payloadLen {
			payloadLen = uint64(len(p))
		}
	case info.Version != Version:
		info.Err = &VersionError{Got: info.Version, Want: Version}
	case uint64(len(p)) != payloadLen:
		info.Err = ErrTruncated
		if uint64(len(p)) < payloadLen {
			payloadLen = uint64(len(p))
		}
	}
	info.Payload = p[:payloadLen]
	info.PayloadLen = len(info.Payload)
	return info
}

// Decode parses an in-memory envelope (see Read).
func Decode(raw []byte) (Header, []byte, error) {
	var h Header
	if len(raw) < len(magic) {
		return h, nil, ErrTruncated
	}
	if !bytes.Equal(raw[:len(magic)], magic[:]) {
		return h, nil, ErrBadMagic
	}
	// Checksum first: any flipped byte — header or payload — is reported as
	// corruption rather than decoded into nonsense.
	if len(raw) < len(magic)+sha256.Size {
		return h, nil, ErrTruncated
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return h, nil, ErrChecksum
	}
	le := binary.LittleEndian
	p := body[len(magic):]
	if len(p) < 8 {
		return h, nil, ErrTruncated
	}
	if v := le.Uint32(p); v != Version {
		return h, nil, &VersionError{Got: v, Want: Version}
	}
	fpLen := le.Uint32(p[4:])
	p = p[8:]
	if fpLen > maxMetaLen || uint64(len(p)) < uint64(fpLen)+24 {
		return h, nil, ErrTruncated
	}
	h.Fingerprint = string(p[:fpLen])
	p = p[fpLen:]
	h.Cycle = int64(le.Uint64(p))
	h.TotalCycles = int64(le.Uint64(p[8:]))
	payloadLen := le.Uint64(p[16:])
	p = p[24:]
	if uint64(len(p)) != payloadLen {
		return h, nil, ErrTruncated
	}
	return h, p, nil
}
