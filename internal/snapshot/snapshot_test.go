package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/iotest"
)

// seal replaces raw's trailing checksum so a deliberately altered envelope
// reaches the check under test instead of dying at the checksum gate.
func reseal(raw []byte) {
	copy(raw[len(raw)-sha256.Size:], Seal(raw[:len(raw)-sha256.Size]))
}

func encode(t *testing.T, h Header, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, h, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	in := Header{Fingerprint: "abc123", Cycle: 42, TotalCycles: 1000}
	payload := []byte("simulator state bytes")
	raw := encode(t, in, payload)

	h, p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h != in {
		t.Fatalf("header = %+v, want %+v", h, in)
	}
	if !bytes.Equal(p, payload) {
		t.Fatalf("payload = %q, want %q", p, payload)
	}

	// Read (the io.Reader path) agrees with Decode.
	h2, p2, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h2 != in || !bytes.Equal(p2, payload) {
		t.Fatal("Read disagrees with Decode")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	raw := encode(t, Header{}, nil)
	h, p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h != (Header{}) || len(p) != 0 {
		t.Fatalf("got header %+v payload %d bytes, want zero values", h, len(p))
	}
}

func TestBadMagic(t *testing.T) {
	raw := encode(t, Header{Fingerprint: "fp"}, []byte("x"))
	raw[0] = 'X'
	if _, _, err := Decode(raw); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestChecksumCatchesEveryByte(t *testing.T) {
	raw := encode(t, Header{Fingerprint: "fp", Cycle: 7, TotalCycles: 9}, []byte("payload"))
	// Flip each byte after the magic in turn (magic flips are ErrBadMagic;
	// checksum-region flips also surface as ErrChecksum).
	for i := 4; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xFF
		if _, _, err := Decode(mut); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", i, err)
		}
	}
}

func TestTruncated(t *testing.T) {
	raw := encode(t, Header{Fingerprint: "fp"}, []byte("payload"))
	for _, n := range []int{0, 2, 4, len(raw) / 2, len(raw) - 1} {
		if _, _, err := Decode(raw[:n]); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncate to %d: err = %v, want ErrTruncated or ErrChecksum", n, err)
		}
	}
	// An empty file is truncated, not corrupt.
	if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: err = %v, want ErrTruncated", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	raw := encode(t, Header{Fingerprint: "fp"}, []byte("payload"))
	binary.LittleEndian.PutUint32(raw[4:], Version+1)
	reseal(raw)
	var ve *VersionError
	_, _, err := Decode(raw)
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *VersionError", err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
}

func TestOversizedFingerprintRejected(t *testing.T) {
	// A corrupt-but-resealed header declaring a huge fingerprint must be
	// rejected without attempting the allocation.
	raw := encode(t, Header{Fingerprint: "fp"}, nil)
	binary.LittleEndian.PutUint32(raw[8:], maxMetaLen+1)
	reseal(raw)
	if _, _, err := Decode(raw); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestPayloadLengthMismatch(t *testing.T) {
	raw := encode(t, Header{Fingerprint: "fp"}, []byte("payload"))
	// Declare one payload byte fewer than present, reseal.
	off := 4 + 4 + 4 + 2 + 8 + 8 // magic, version, fpLen, "fp", cycle, total
	binary.LittleEndian.PutUint64(raw[off:], uint64(len("payload"))-1)
	reseal(raw)
	if _, _, err := Decode(raw); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestReadStreaming exercises the io.Reader path's own parsing (TestRoundTrip
// covers agreement with Decode on a healthy file): every defect class maps to
// the same structured error, with the two documented streaming nuances —
// corrupt length fields surface as ErrTruncated, and the version verdict is
// deferred until the checksum has been verified.
func TestReadStreaming(t *testing.T) {
	payload := bytes.Repeat([]byte("state"), 1000)
	h := Header{Fingerprint: "fp", Cycle: 3, TotalCycles: 9}
	healthy := encode(t, h, payload)

	// A one-byte-at-a-time reader forces every short-read path in readFull
	// and readPayload.
	gotH, gotP, err := Read(iotest.OneByteReader(bytes.NewReader(healthy)))
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h || !bytes.Equal(gotP, payload) {
		t.Fatal("dribbled read mangled the envelope")
	}

	// Truncation anywhere — inside the head, the meta, the payload, or the
	// trailing checksum — is ErrTruncated.
	for _, n := range []int{0, 7, 14, len(healthy) / 2, len(healthy) - sha256.Size - 1, len(healthy) - 1} {
		if _, _, err := Read(bytes.NewReader(healthy[:n])); !errors.Is(err, ErrTruncated) {
			t.Errorf("truncate to %d: err = %v, want ErrTruncated", n, err)
		}
	}

	// Bad magic fails before anything is allocated.
	mut := append([]byte(nil), healthy...)
	mut[0] = 'X'
	if _, _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}

	// An oversized fingerprint length is rejected without the allocation.
	// Streaming nuance: this is ErrTruncated even resealed (Decode's
	// checksum-first ordering would say ErrChecksum for the unresealed case).
	mut = append([]byte(nil), healthy...)
	binary.LittleEndian.PutUint32(mut[8:], maxMetaLen+1)
	reseal(mut)
	if _, _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrTruncated) {
		t.Errorf("oversized fpLen: err = %v, want ErrTruncated", err)
	}

	// A declared payload length the stream cannot back stops at ErrTruncated.
	mut = append([]byte(nil), healthy...)
	off := 4 + 4 + 4 + 2 + 8 + 8 // magic, version, fpLen, "fp", cycle, total
	binary.LittleEndian.PutUint64(mut[off:], uint64(len(payload))+payloadChunk)
	reseal(mut)
	if _, _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrTruncated) {
		t.Errorf("overdeclared payload: err = %v, want ErrTruncated", err)
	}

	// A flipped payload byte is corruption.
	mut = append([]byte(nil), healthy...)
	mut[len(mut)-sha256.Size-3] ^= 0xFF
	if _, _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupt payload: err = %v, want ErrChecksum", err)
	}

	// A stale version on an otherwise intact envelope is a *VersionError...
	mut = append([]byte(nil), healthy...)
	binary.LittleEndian.PutUint32(mut[4:], Version+1)
	reseal(mut)
	var ve *VersionError
	if _, _, err := Read(bytes.NewReader(mut)); !errors.As(err, &ve) || ve.Got != Version+1 {
		t.Errorf("stale version: err = %v, want *VersionError{Got: %d}", err, Version+1)
	}
	// ...but a corrupt (unresealed) version field is corruption, not a format
	// mismatch: the version verdict waits for the checksum.
	mut = append([]byte(nil), healthy...)
	binary.LittleEndian.PutUint32(mut[4:], Version+1)
	if _, _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupt version: err = %v, want ErrChecksum", err)
	}

	// A reader that fails mid-stream surfaces its own error, wrapped.
	bang := errors.New("bang")
	if _, _, err := Read(io.MultiReader(bytes.NewReader(healthy[:20]), iotest.ErrReader(bang))); !errors.Is(err, bang) {
		t.Errorf("reader failure: err = %v, want wrapped bang", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.bin")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("content = %q, want v1", b)
	}
	// Overwrite is atomic too: the old content is fully replaced.
	if err := WriteFileAtomic(path, []byte("v2 longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v2 longer" {
		t.Fatalf("content = %q, want v2 longer", b)
	}
	// No temp files are left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "entry.bin" {
		t.Fatalf("dir contents = %v, want just entry.bin", entries)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("perm = %o, want 644", perm)
	}
}

func TestEnsureDir(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "a", "b", "c")
	if err := EnsureDir(dir); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		t.Fatalf("EnsureDir did not create %s: %v", dir, err)
	}
	// Idempotent on an existing directory.
	if err := EnsureDir(dir); err != nil {
		t.Fatal(err)
	}
	// A path blocked by a regular file fails with a real error, not silence.
	file := filepath.Join(root, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := EnsureDir(filepath.Join(file, "sub")); err == nil {
		t.Fatal("EnsureDir under a regular file succeeded")
	}
}

func TestInspectHealthy(t *testing.T) {
	in := Header{Fingerprint: "deadbeef", Cycle: 123, TotalCycles: 456}
	payload := []byte("component states")
	raw := encode(t, in, payload)
	info := Inspect(raw)
	if info.Err != nil {
		t.Fatalf("Err = %v, want nil", info.Err)
	}
	if !info.ChecksumOK || info.Version != Version {
		t.Fatalf("info = %+v, want checksum ok at current version", info)
	}
	if info.Header != in || info.PayloadLen != len(payload) || !bytes.Equal(info.Payload, payload) {
		t.Fatalf("info = %+v, want header %+v and %d payload bytes", info, in, len(payload))
	}
}

func TestInspectCorrupt(t *testing.T) {
	in := Header{Fingerprint: "deadbeef", Cycle: 123, TotalCycles: 456}
	raw := encode(t, in, []byte("component states"))
	// Flip one payload byte: Decode refuses outright, Inspect still recovers
	// the header while flagging the corruption.
	raw[len(raw)-sha256.Size-3] ^= 0xFF
	if _, _, err := Decode(raw); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Decode err = %v, want ErrChecksum", err)
	}
	info := Inspect(raw)
	if !errors.Is(info.Err, ErrChecksum) || info.ChecksumOK {
		t.Fatalf("info = %+v, want checksum failure reported", info)
	}
	if info.Header.Fingerprint != in.Fingerprint || info.Header.Cycle != in.Cycle {
		t.Fatalf("header not recovered from corrupt envelope: %+v", info.Header)
	}
}

func TestInspectForeignAndTruncated(t *testing.T) {
	if info := Inspect([]byte("not a checkpoint at all")); !errors.Is(info.Err, ErrBadMagic) {
		t.Fatalf("foreign file: Err = %v, want ErrBadMagic", info.Err)
	}
	if info := Inspect(nil); !errors.Is(info.Err, ErrTruncated) {
		t.Fatalf("empty file: Err = %v, want ErrTruncated", info.Err)
	}
	raw := encode(t, Header{Fingerprint: "fp"}, []byte("payload"))
	if info := Inspect(raw[:len(raw)/2]); info.Err == nil {
		t.Fatal("truncated file inspected clean")
	}
	// Stale version: reported as *VersionError with the header intact.
	binary.LittleEndian.PutUint32(raw[4:], Version+7)
	reseal(raw)
	info := Inspect(raw)
	var ve *VersionError
	if !errors.As(info.Err, &ve) || ve.Got != Version+7 {
		t.Fatalf("Err = %v, want *VersionError{Got: %d}", info.Err, Version+7)
	}
	if info.Header.Fingerprint != "fp" || !info.ChecksumOK {
		t.Fatalf("info = %+v, want recovered header with good checksum", info)
	}
}
