package snapshot

import (
	"os"
	"path/filepath"
)

// EnsureDir creates dir (and any missing parents) and makes the creation
// durable by fsyncing both the directory and its parent. Every caller that
// writes entries with WriteFileAtomic must create the directory through this
// helper: WriteFileAtomic fsyncs the parent of the *file*, but if the
// directory itself was freshly created and the machine crashes, an unsynced
// mkdir can vanish and take the "atomically committed" entry with it.
func EnsureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	parent := filepath.Dir(dir)
	if parent == dir {
		return nil
	}
	return syncDir(parent)
}

// syncDir fsyncs a directory so entry creations/renames inside it persist.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteFileAtomic commits data to path so that a reader can never observe a
// partial or empty file, even across a machine crash: the bytes are written
// to a temporary sibling, fsynced, renamed over path, and the parent
// directory is fsynced so the rename itself is durable. Without the two
// fsyncs an OS crash shortly after rename can leave a zero-length file at
// path — a "committed" entry with no content, which is exactly the poison a
// resuming campaign must never trust.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Persist the rename: fsync the directory. Failure here is reported (the
	// entry exists but may not survive a crash), not rolled back.
	return syncDir(dir)
}
