package gpu

import (
	"testing"

	"masksim/internal/cache"
	"masksim/internal/memreq"
	"masksim/internal/workload"
)

// sink is a backend that completes everything after a fixed delay, driven
// by tick().
type sink struct {
	delay   int64
	pending []pendingReq
}

type pendingReq struct {
	at int64
	r  *memreq.Request
}

func (s *sink) Submit(now int64, r *memreq.Request) bool {
	s.pending = append(s.pending, pendingReq{at: now + s.delay, r: r})
	return true
}

func (s *sink) tick(now int64) {
	nkeep := 0
	for _, p := range s.pending {
		if p.at <= now {
			p.r.Complete(now, memreq.ServedDRAM)
		} else {
			s.pending[nkeep] = p
			nkeep++
		}
	}
	s.pending = s.pending[:nkeep]
}

func testProfile() workload.Profile {
	return workload.Profile{
		Name: "T", HotBytes: 64 << 10, PrivateBytes: 256 << 10,
		HotProb: 0.5, PageStayProb: 0.8, SeqProb: 0.9,
		ComputePerMem: 4, Divergence: 1, LinesPerInst: 2, WriteFrac: 0.2,
	}
}

func newTestCore(warps int, translate TranslateFn) (*Core, *sink, *cache.Cache) {
	be := &sink{delay: 5}
	l1d := cache.New(cache.Config{
		Name: "l1", SizeBytes: 4096, Ways: 4, LineSize: 64,
		Banks: 1, PortsPerBank: 4, Latency: 1, QueueCap: 64,
	}, be)
	streams := make([]*workload.Stream, warps)
	p := testProfile()
	for w := 0; w < warps; w++ {
		streams[w] = p.NewStream(workload.StreamConfig{
			Base: 1 << 32, PageSize: 4096, LineSize: 64,
			WarpIndex: w, NumWarps: warps, Seed: 5,
		})
	}
	var idgen memreq.IDGen
	core := New(0, 0, Config{
		WarpsPerCore: warps, PageShift: 12, FrameSize: 4096, LineSize: 64,
	}, streams, translate, l1d, &idgen)
	return core, be, l1d
}

// identity translation: frame number = vpn (keeps data addresses valid).
func instantTranslate(now int64, vpn uint64, warpID int, done func(int64, uint64)) {
	done(now, vpn)
}

func run(core *Core, be *sink, l1d *cache.Cache, cycles int64) {
	for now := int64(0); now < cycles; now++ {
		core.Tick(now)
		l1d.Tick(now)
		be.tick(now)
	}
}

func TestCoreMakesProgress(t *testing.T) {
	core, be, l1d := newTestCore(4, instantTranslate)
	run(core, be, l1d, 2000)
	if core.Stats.Instructions == 0 {
		t.Fatal("no instructions issued")
	}
	if core.Stats.MemInsts == 0 || core.Stats.ComputeInsts == 0 {
		t.Fatalf("instruction mix broken: %+v", core.Stats)
	}
	if core.Stats.IPC() <= 0 || core.Stats.IPC() > 1 {
		t.Fatalf("IPC=%v out of (0,1]", core.Stats.IPC())
	}
}

func TestCoreIssuesAtMostOnePerCycle(t *testing.T) {
	core, be, l1d := newTestCore(8, instantTranslate)
	run(core, be, l1d, 500)
	if core.Stats.Instructions+core.Stats.IdleCycles != core.Stats.Cycles {
		t.Fatalf("instructions(%d) + idle(%d) != cycles(%d)",
			core.Stats.Instructions, core.Stats.IdleCycles, core.Stats.Cycles)
	}
}

func TestCoreIdlesWhenTranslationStalls(t *testing.T) {
	// A translation that never completes must idle the core once every warp
	// has issued its first memory instruction.
	neverTranslate := func(now int64, vpn uint64, warpID int, done func(int64, uint64)) {}
	core, be, l1d := newTestCore(2, neverTranslate)
	run(core, be, l1d, 500)
	if core.ReadyWarps() != 0 {
		t.Fatalf("%d warps ready despite blocked translations", core.ReadyWarps())
	}
	if core.Stats.IdleCycles == 0 {
		t.Fatal("core never idled")
	}
	// Every idle cycle here is a translation stall: both warps are wedged
	// inside the (never-completing) TLB.
	if core.Stats.IdleTransCycles != core.Stats.IdleCycles {
		t.Fatalf("trans-stall cycles %d != idle cycles %d under a wedged TLB",
			core.Stats.IdleTransCycles, core.Stats.IdleCycles)
	}
}

func TestIdleAttributionSumsToIdleCycles(t *testing.T) {
	// Delay translations by stashing them and completing 7 cycles later, so
	// the run exercises both translation-bound and data-bound idle cycles.
	type pendingTr struct {
		at   int64
		vpn  uint64
		done func(int64, uint64)
	}
	var trq []pendingTr
	translate := func(now int64, vpn uint64, warpID int, done func(int64, uint64)) {
		trq = append(trq, pendingTr{at: now + 7, vpn: vpn, done: done})
	}
	core, be, l1d := newTestCore(4, translate)
	for now := int64(0); now < 3000; now++ {
		core.Tick(now)
		l1d.Tick(now)
		be.tick(now)
		nkeep := 0
		for _, p := range trq {
			if p.at <= now {
				p.done(now, p.vpn)
			} else {
				trq[nkeep] = p
				nkeep++
			}
		}
		trq = trq[:nkeep]
	}
	s := core.Stats
	if s.IdleTransCycles == 0 || s.IdleDataCycles == 0 {
		t.Fatalf("expected both stall classes to occur: %+v", s)
	}
	if sum := s.IdleTransCycles + s.IdleDataCycles + s.IdleOtherCycles; sum != s.IdleCycles {
		t.Fatalf("idle attribution %d+%d+%d = %d != idle cycles %d",
			s.IdleTransCycles, s.IdleDataCycles, s.IdleOtherCycles, sum, s.IdleCycles)
	}
	if s.Instructions+s.IdleCycles != s.Cycles {
		t.Fatalf("instructions(%d) + idle(%d) != cycles(%d)", s.Instructions, s.IdleCycles, s.Cycles)
	}
}

func TestDelayedTranslationUnblocksWarp(t *testing.T) {
	var pending []func(int64, uint64)
	var vpns []uint64
	stash := func(now int64, vpn uint64, warpID int, done func(int64, uint64)) {
		pending = append(pending, done)
		vpns = append(vpns, vpn)
	}
	core, be, l1d := newTestCore(1, stash)
	run(core, be, l1d, 50)
	if len(pending) == 0 {
		t.Fatal("no translation requested")
	}
	issuedBefore := core.Stats.Instructions
	// Complete the translation; the warp should resume.
	for i, done := range pending {
		done(50, vpns[i])
	}
	pending = nil
	run2 := func(from, to int64) {
		for now := from; now < to; now++ {
			core.Tick(now)
			l1d.Tick(now)
			be.tick(now)
			for i, done := range pending {
				done(now, vpns[len(vpns)-len(pending)+i])
			}
			pending = nil
		}
	}
	run2(51, 300)
	if core.Stats.Instructions <= issuedBefore {
		t.Fatal("warp did not resume after translation completed")
	}
}

func TestGTOPrefersCurrentWarp(t *testing.T) {
	core, be, l1d := newTestCore(4, instantTranslate)
	// After the first issue, the same warp should keep issuing its compute
	// instructions until it blocks on memory.
	core.Tick(0)
	first := core.current
	for now := int64(1); now < 5; now++ {
		core.Tick(now)
		if core.warps[first].state == warpReady && core.current != first {
			t.Fatal("GTO switched away from a ready current warp")
		}
		l1d.Tick(now)
		be.tick(now)
	}
}

func TestWritesDoNotBlockWarp(t *testing.T) {
	// With WriteFrac 1, every memory instruction is a store; the warp must
	// keep issuing (stores retire via the write buffer).
	p := testProfile()
	p.WriteFrac = 1
	be := &sink{delay: 1000} // writes would block forever if they counted
	l1d := cache.New(cache.Config{
		Name: "l1", SizeBytes: 4096, Ways: 4, LineSize: 64,
		Banks: 1, PortsPerBank: 4, Latency: 1, QueueCap: 256,
	}, be)
	s := p.NewStream(workload.StreamConfig{
		Base: 1 << 32, PageSize: 4096, LineSize: 64, WarpIndex: 0, NumWarps: 1, Seed: 3,
	})
	var idgen memreq.IDGen
	core := New(0, 0, Config{WarpsPerCore: 1, PageShift: 12, FrameSize: 4096, LineSize: 64},
		[]*workload.Stream{s}, instantTranslate, l1d, &idgen)
	for now := int64(0); now < 300; now++ {
		core.Tick(now)
		l1d.Tick(now)
	}
	if core.Stats.MemInsts < 10 {
		t.Fatalf("store-only warp issued just %d memory instructions", core.Stats.MemInsts)
	}
}

func TestSyncStalledWarpSkipped(t *testing.T) {
	p := testProfile()
	p.WarpsPerGroup = 2
	f := workload.NewStreamFactory(p, 1<<32, 4096, 64, 2, 9)
	streams := []*workload.Stream{f.New(0), f.New(1)}
	// Block warp 1 forever by never translating for it; warp 0 advances
	// until the group-sync window stops it.
	var idgen memreq.IDGen
	be := &sink{delay: 2}
	l1d := cache.New(cache.Config{
		Name: "l1", SizeBytes: 4096, Ways: 4, LineSize: 64,
		Banks: 1, PortsPerBank: 4, Latency: 1, QueueCap: 64,
	}, be)
	translate := func(now int64, vpn uint64, warpID int, done func(int64, uint64)) {
		if warpID == 1 {
			return // never completes
		}
		done(now, vpn)
	}
	core := New(0, 0, Config{WarpsPerCore: 2, PageShift: 12, FrameSize: 4096, LineSize: 64},
		streams, translate, l1d, &idgen)
	for now := int64(0); now < 3000; now++ {
		core.Tick(now)
		l1d.Tick(now)
		be.tick(now)
	}
	if !streams[0].SyncStalled() {
		t.Fatal("leader warp ran unboundedly ahead of its blocked group member")
	}
}
