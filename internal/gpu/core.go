// Package gpu models the SIMT shader cores: warps, the GTO (greedy-then-
// oldest) warp scheduler, memory-instruction issue, and the fine-grained
// multithreading whose breakdown under TLB misses is the paper's central
// observation (§4.1, Figure 4).
//
// Each core issues at most one instruction per cycle from one warp. Compute
// instructions retire immediately; a memory instruction blocks its warp until
// every translated read access completes, so the core's ability to hide
// memory latency depends entirely on other warps remaining schedulable —
// exactly the property a single shared TLB miss destroys when it stalls many
// warps at once.
package gpu

import (
	"masksim/internal/cache"
	"masksim/internal/engine"
	"masksim/internal/memreq"
	"masksim/internal/workload"
)

// TranslateFn resolves a virtual page for a warp; done receives the physical
// frame. Implementations wrap the L1 TLB, or the instantaneous page-table
// lookup in the Ideal configuration.
type TranslateFn func(now int64, vpn uint64, warpID int, done func(now int64, frame uint64))

// Config holds the per-core parameters.
type Config struct {
	WarpsPerCore int
	PageShift    uint
	FrameSize    uint64
	LineSize     uint64
	// RoundRobin selects round-robin warp scheduling instead of the default
	// GTO (greedy-then-oldest, Rogers et al.; the paper's baseline).
	RoundRobin bool
}

// Stats aggregates one core's activity.
type Stats struct {
	Instructions uint64
	MemInsts     uint64
	ComputeInsts uint64
	// IdleCycles counts cycles with no schedulable warp — the visible
	// symptom of translation-induced stalls (Figure 4b).
	IdleCycles uint64
	Cycles     uint64

	// Stall anatomy (the paper's Figure 4): per completed memory
	// instruction, warp-cycles spent waiting for address translation vs
	// waiting for data after translation.
	TransStallCycles uint64
	DataStallCycles  uint64

	// Idle-cycle attribution: each IdleCycle is charged to exactly one
	// cause, so IdleTransCycles + IdleDataCycles + IdleOtherCycles ==
	// IdleCycles and Instructions + IdleCycles == Cycles. A cycle counts as
	// translation-bound if any blocked warp is still waiting on a TLB fill,
	// memory-bound if warps wait only on data, and "other" when the stall
	// is outside the memory system (group-sync barriers).
	IdleTransCycles uint64
	IdleDataCycles  uint64
	IdleOtherCycles uint64
}

// IPC returns instructions per cycle for this core.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

type warpState uint8

const (
	warpReady warpState = iota
	warpWaitMem
)

type warp struct {
	id          int
	state       warpState
	computeLeft int

	pendingTrans    int
	outstandingData int

	// issuedAt and transDoneAt delimit the translation phase of the current
	// memory instruction for stall-anatomy accounting.
	issuedAt    int64
	transDoneAt int64

	stream *workload.Stream

	// dataDone is the completion handler shared by every read this warp
	// issues, bound once at core construction (the warps slice never
	// reallocates, so the captured pointer stays valid).
	dataDone func(now int64, r *memreq.Request)
}

// transCtx carries one page-translation callback's context. Contexts are
// recycled through the core's free list: the bound done closure is allocated
// once, and the per-page fields are reassigned on reuse. A context is checked
// back in the moment its callback fires; a translation that never completes
// (fault-injection wedge) strands its context harmlessly.
type transCtx struct {
	w       *warp
	lines   []uint64
	isWrite bool
	done    func(now int64, frame uint64)

	// prev/next thread the core's live-context list (liveHead/liveTail):
	// every context currently waiting on a translation callback, in creation
	// order. Checkpoint restore replays this list to rebuild the L1 TLB MSHR
	// waiting lists in their original order.
	prev, next *transCtx
}

// Core is one shader core running a single application's warps.
type Core struct {
	id    int
	appID int
	cfg   Config

	warps   []warp
	current int

	translate TranslateFn
	l1d       *cache.Cache
	idgen     *memreq.IDGen

	// pool recycles data-access requests; New creates a private pool, the
	// simulator injects its shared one.
	pool    *memreq.Pool
	ctxFree []*transCtx

	// liveHead/liveTail anchor the in-flight translation contexts in creation
	// order (see transCtx.prev/next). attachWaiter, installed by the
	// simulator, re-registers a restored context's callback with the L1 TLB
	// during checkpoint restore.
	liveHead, liveTail *transCtx
	attachWaiter       func(vpn uint64, done func(now int64, frame uint64))

	retry []*memreq.Request

	readyCount int
	// waitTrans / waitData count blocked warps by phase (translation still
	// pending vs data only), maintained at warp state transitions so idle
	// cycles are attributed without scanning the warp array.
	waitTrans int
	waitData  int

	Stats Stats
}

// New builds a core whose warps draw from the given streams (one per warp).
func New(id, appID int, cfg Config, streams []*workload.Stream, translate TranslateFn, l1d *cache.Cache, idgen *memreq.IDGen) *Core {
	if len(streams) != cfg.WarpsPerCore {
		panic("gpu: stream count must equal warps per core")
	}
	c := &Core{
		id:        id,
		appID:     appID,
		cfg:       cfg,
		warps:     make([]warp, cfg.WarpsPerCore),
		translate: translate,
		l1d:       l1d,
		idgen:     idgen,
		pool:      &memreq.Pool{},
	}
	for i := range c.warps {
		c.warps[i] = warp{id: i, stream: streams[i]}
		w := &c.warps[i]
		w.dataDone = func(dnow int64, _ *memreq.Request) {
			w.outstandingData--
			c.maybeUnblock(dnow, w)
		}
	}
	c.readyCount = len(c.warps)
	return c
}

// SetRequestPool replaces the core's private request pool with a shared
// per-simulator one. Must be called before simulation starts.
func (c *Core) SetRequestPool(p *memreq.Pool) { c.pool = p }

// getCtx takes a recycled translation context or builds one with its done
// handler bound.
func (c *Core) getCtx() *transCtx {
	var ctx *transCtx
	if n := len(c.ctxFree); n > 0 {
		ctx = c.ctxFree[n-1]
		c.ctxFree[n-1] = nil
		c.ctxFree = c.ctxFree[:n-1]
	} else {
		ctx = c.newCtx()
	}
	c.linkCtx(ctx)
	return ctx
}

// newCtx allocates a context with its done handler bound.
func (c *Core) newCtx() *transCtx {
	ctx := &transCtx{}
	ctx.done = func(tnow int64, frame uint64) {
		// Copy out and recycle first: onTranslated never re-enters getCtx,
		// and releasing here keeps the context live for exactly one callback.
		w, lines, isWrite := ctx.w, ctx.lines, ctx.isWrite
		ctx.w, ctx.lines = nil, nil
		c.unlinkCtx(ctx)
		c.ctxFree = append(c.ctxFree, ctx)
		c.onTranslated(tnow, w, lines, frame, isWrite)
	}
	return ctx
}

// linkCtx appends ctx to the live list.
func (c *Core) linkCtx(ctx *transCtx) {
	ctx.prev = c.liveTail
	ctx.next = nil
	if c.liveTail != nil {
		c.liveTail.next = ctx
	} else {
		c.liveHead = ctx
	}
	c.liveTail = ctx
}

// unlinkCtx removes ctx from the live list.
func (c *Core) unlinkCtx(ctx *transCtx) {
	if ctx.prev != nil {
		ctx.prev.next = ctx.next
	} else {
		c.liveHead = ctx.next
	}
	if ctx.next != nil {
		ctx.next.prev = ctx.prev
	} else {
		c.liveTail = ctx.prev
	}
	ctx.prev, ctx.next = nil, nil
}

// ID returns the core's global index.
func (c *Core) ID() int { return c.id }

// AppID returns the application the core is assigned to.
func (c *Core) AppID() int { return c.appID }

// ReadyWarps returns the number of schedulable warps (metrics helper).
func (c *Core) ReadyWarps() int { return c.readyCount }

// Tick retries rejected cache submissions, then issues one instruction from
// the GTO-selected warp.
func (c *Core) Tick(now int64) {
	c.Stats.Cycles++

	if len(c.retry) > 0 {
		nkeep := 0
		for _, r := range c.retry {
			if !c.l1d.Submit(now, r) {
				c.retry[nkeep] = r
				nkeep++
			}
		}
		c.retry = c.retry[:nkeep]
	}

	w := c.pickWarp()
	if w == nil {
		c.Stats.IdleCycles++
		switch {
		case c.waitTrans > 0:
			c.Stats.IdleTransCycles++
		case c.waitData > 0:
			c.Stats.IdleDataCycles++
		default:
			c.Stats.IdleOtherCycles++
		}
		return
	}
	c.issue(now, w)
}

// NextEvent implements engine.EventSource. The core is quiescent exactly when
// an immediate Tick would take the idle path: nothing queued for retry and no
// warp both ready and issuable. A blocked core cannot wake itself — warps
// unblock through translation/data callbacks fired by other components'
// ticks, and group-sync barriers (workload.GroupSync) only advance when some
// core issues, which cannot happen during a span in which every core is
// quiescent — so the horizon is NoEvent rather than a future cycle.
func (c *Core) NextEvent(now int64) int64 {
	if len(c.retry) > 0 || c.canIssue() {
		return now
	}
	return engine.NoEvent
}

// canIssue is pickWarp's selection predicate without the c.current mutation:
// it must leave scheduler state untouched so probing quiescence cannot
// perturb the GTO/round-robin pick order.
func (c *Core) canIssue() bool {
	if c.readyCount == 0 {
		return false
	}
	for i := range c.warps {
		w := &c.warps[i]
		if w.state == warpReady && issuable(w) {
			return true
		}
	}
	return false
}

// SkipTo implements engine.Skipper: every skipped cycle is an idle cycle
// (the engine only skips while NextEvent reports quiescence), charged to the
// same attribution bucket Tick would have picked. waitTrans/waitData are
// frozen across the span — they only change in callbacks, which only fire
// from other components' ticks — so one bucket covers the whole span.
func (c *Core) SkipTo(from, to int64) {
	d := uint64(to - from)
	c.Stats.Cycles += d
	c.Stats.IdleCycles += d
	switch {
	case c.waitTrans > 0:
		c.Stats.IdleTransCycles += d
	case c.waitData > 0:
		c.Stats.IdleDataCycles += d
	default:
		c.Stats.IdleOtherCycles += d
	}
}

// pickWarp selects the next warp. Under GTO (default) it keeps issuing from
// the current warp while it is ready, falling back to the oldest (lowest-ID)
// ready warp; under round-robin it rotates past the current warp each pick.
// A warp whose next instruction is a memory access blocked on its group
// barrier (workload.GroupSync) is skipped: it occupies no issue slot until
// its group catches up.
func (c *Core) pickWarp() *warp {
	if c.readyCount == 0 {
		return nil
	}
	if c.cfg.RoundRobin {
		n := len(c.warps)
		for off := 1; off <= n; off++ {
			i := (c.current + off) % n
			w := &c.warps[i]
			if w.state == warpReady && issuable(w) {
				c.current = i
				return w
			}
		}
		return nil
	}
	if w := &c.warps[c.current]; w.state == warpReady && issuable(w) {
		return w
	}
	for i := range c.warps {
		w := &c.warps[i]
		if w.state == warpReady && issuable(w) {
			c.current = i
			return w
		}
	}
	return nil
}

func issuable(w *warp) bool {
	return w.computeLeft > 0 || !w.stream.SyncStalled()
}

func (c *Core) issue(now int64, w *warp) {
	c.Stats.Instructions++
	if w.computeLeft > 0 {
		w.computeLeft--
		c.Stats.ComputeInsts++
		return
	}
	c.Stats.MemInsts++
	c.issueMem(now, w)
}

// issueMem launches one coalesced memory instruction: every distinct page is
// translated once, and each translated page yields its line accesses. The
// warp blocks until all reads complete; stores retire through the write
// buffer and do not block beyond their translation.
func (c *Core) issueMem(now int64, w *warp) {
	inst := w.stream.NextMem()
	w.state = warpWaitMem
	c.readyCount--
	c.waitTrans++ // before translate: the callback may fire synchronously
	w.pendingTrans = len(inst.Pages)
	w.outstandingData = 0
	w.issuedAt = now
	w.transDoneAt = now
	isWrite := inst.Write

	for _, pg := range inst.Pages {
		lines := pg.Lines
		vpn := lines[0] >> c.cfg.PageShift
		ctx := c.getCtx()
		ctx.w, ctx.lines, ctx.isWrite = w, lines, isWrite
		c.translate(now, vpn, w.id, ctx.done)
	}
}

func (c *Core) onTranslated(now int64, w *warp, lines []uint64, frame uint64, isWrite bool) {
	w.pendingTrans--
	if w.pendingTrans == 0 {
		w.transDoneAt = now
		c.waitTrans--
		c.waitData++
	}
	pageMask := (uint64(1) << c.cfg.PageShift) - 1
	for _, va := range lines {
		pa := frame*c.cfg.FrameSize + (va & pageMask)
		req := c.pool.Get()
		req.ID, req.AppID, req.CoreID, req.WarpID = c.idgen.Next(), c.appID, c.id, w.id
		req.Class, req.Addr, req.Issue = memreq.Data, pa, now
		if isWrite {
			req.Kind = memreq.Write
			// Fire-and-forget through the write buffer.
		} else {
			req.Kind = memreq.Read
			w.outstandingData++
			req.Done = w.dataDone
			req.Site = memreq.SiteCoreData
		}
		if !c.l1d.Submit(now, req) {
			c.retry = append(c.retry, req)
		}
	}
	c.maybeUnblock(now, w)
}

func (c *Core) maybeUnblock(now int64, w *warp) {
	if w.state == warpWaitMem && w.pendingTrans == 0 && w.outstandingData == 0 {
		c.Stats.TransStallCycles += uint64(w.transDoneAt - w.issuedAt)
		c.Stats.DataStallCycles += uint64(now - w.transDoneAt)
		c.waitData--
		w.state = warpReady
		w.computeLeft = w.stream.NextComputeGap()
		c.readyCount++
	}
}
