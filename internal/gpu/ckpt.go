package gpu

import (
	"fmt"

	"masksim/internal/memreq"
	"masksim/internal/workload"
)

// WarpState is the serializable image of one warp.
type WarpState struct {
	State           uint8
	ComputeLeft     int
	PendingTrans    int
	OutstandingData int
	IssuedAt        int64
	TransDoneAt     int64
	Stream          workload.StreamState
}

// CtxState is the serializable image of one in-flight translation context: a
// warp waiting on the L1 TLB for the page holding Lines[0]. Contexts are
// stored in creation order so restore rebuilds each MSHR's waiting list in
// the order the callbacks were registered.
type CtxState struct {
	WarpID  int
	Lines   []uint64
	IsWrite bool
}

// CoreState is the core's checkpoint image.
type CoreState struct {
	Current    int
	ReadyCount int
	WaitTrans  int
	WaitData   int
	Stats      Stats
	Warps      []WarpState
	Ctxs       []CtxState
	CtxFree    int
	Retry      []int32
}

// SnapshotState implements engine.Snapshotter; ctx is the *memreq.Table
// registry.
func (c *Core) SnapshotState(ctx any) (any, error) {
	tab, ok := ctx.(*memreq.Table)
	if !ok {
		return nil, fmt.Errorf("gpu: snapshot context is %T, want *memreq.Table", ctx)
	}
	st := CoreState{
		Current:    c.current,
		ReadyCount: c.readyCount,
		WaitTrans:  c.waitTrans,
		WaitData:   c.waitData,
		Stats:      c.Stats,
		CtxFree:    len(c.ctxFree),
	}
	st.Warps = make([]WarpState, len(c.warps))
	for i := range c.warps {
		w := &c.warps[i]
		st.Warps[i] = WarpState{
			State:           uint8(w.state),
			ComputeLeft:     w.computeLeft,
			PendingTrans:    w.pendingTrans,
			OutstandingData: w.outstandingData,
			IssuedAt:        w.issuedAt,
			TransDoneAt:     w.transDoneAt,
			Stream:          w.stream.State(),
		}
	}
	for ctx := c.liveHead; ctx != nil; ctx = ctx.next {
		st.Ctxs = append(st.Ctxs, CtxState{
			WarpID:  ctx.w.id,
			Lines:   append([]uint64(nil), ctx.lines...),
			IsWrite: ctx.isWrite,
		})
	}
	for _, r := range c.retry {
		st.Retry = append(st.Retry, tab.Req(r))
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter; ctx is the *memreq.RestoreTable.
// Live translation contexts are rebuilt here but re-registered with the L1
// TLB only in ReattachWaiters, which the simulator calls after every
// component has restored (the TLB rebuilds its MSHR table after the cores
// run).
func (c *Core) RestoreState(ctx any, state any) error {
	rt, ok := ctx.(*memreq.RestoreTable)
	if !ok {
		return fmt.Errorf("gpu: restore context is %T, want *memreq.RestoreTable", ctx)
	}
	st, ok := state.(CoreState)
	if !ok {
		return fmt.Errorf("gpu: restore state is %T, want CoreState", state)
	}
	if len(st.Warps) != len(c.warps) {
		return fmt.Errorf("gpu: checkpoint has %d warps, core %d has %d", len(st.Warps), c.id, len(c.warps))
	}
	c.current = st.Current
	c.readyCount = st.ReadyCount
	c.waitTrans = st.WaitTrans
	c.waitData = st.WaitData
	c.Stats = st.Stats
	for i := range c.warps {
		w := &c.warps[i]
		ws := st.Warps[i]
		w.state = warpState(ws.State)
		w.computeLeft = ws.ComputeLeft
		w.pendingTrans = ws.PendingTrans
		w.outstandingData = ws.OutstandingData
		w.issuedAt = ws.IssuedAt
		w.transDoneAt = ws.TransDoneAt
		w.stream.SetState(ws.Stream)
	}
	for _, cs := range st.Ctxs {
		if cs.WarpID < 0 || cs.WarpID >= len(c.warps) {
			return fmt.Errorf("gpu: checkpoint context names warp %d of %d", cs.WarpID, len(c.warps))
		}
		tc := c.getCtx() // links into the live list in creation order
		tc.w = &c.warps[cs.WarpID]
		tc.lines = append([]uint64(nil), cs.Lines...)
		tc.isWrite = cs.IsWrite
	}
	for len(c.ctxFree) < st.CtxFree {
		c.ctxFree = append(c.ctxFree, c.newCtx())
	}
	c.retry = c.retry[:0]
	for _, ref := range st.Retry {
		c.retry = append(c.retry, rt.Req(ref))
	}
	return nil
}

// SetWaiterAttach installs the callback ReattachWaiters uses to re-register a
// live translation context with the L1 TLB MSHR covering vpn. The simulator
// wires it to tlb.L1TLB.AddWaiter (no-op under the Ideal design, which never
// has live contexts at a cycle boundary).
func (c *Core) SetWaiterAttach(fn func(vpn uint64, done func(now int64, frame uint64))) {
	c.attachWaiter = fn
}

// ReattachWaiters re-registers every restored live translation context with
// the L1 TLB, in creation order (which per-MSHR equals the original waiting
// order). Called by the simulator after all components have restored.
func (c *Core) ReattachWaiters() error {
	for ctx := c.liveHead; ctx != nil; ctx = ctx.next {
		if c.attachWaiter == nil {
			return fmt.Errorf("gpu: core %d has live translation contexts but no waiter attach hook", c.id)
		}
		c.attachWaiter(ctx.lines[0]>>c.cfg.PageShift, ctx.done)
	}
	return nil
}

// DataDone exposes a warp's data-return callback for the simulator's
// checkpoint link pass (rebinding memreq.SiteCoreData requests).
func (c *Core) DataDone(warpID int) func(now int64, r *memreq.Request) {
	return c.warps[warpID].dataDone
}

// Stream exposes a warp's stream so the simulator can enumerate shared
// group-sync objects during checkpointing.
func (c *Core) Stream(warpID int) *workload.Stream {
	return c.warps[warpID].stream
}
