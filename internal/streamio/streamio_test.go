package streamio

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewReaderPassesPlainBytes(t *testing.T) {
	for _, in := range []string{"", "x", "hello\nworld\n", "\x1f"} {
		r, err := NewReader(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if string(out) != in {
			t.Fatalf("round trip of %q gave %q", in, out)
		}
	}
}

func TestNewReaderDecompressesGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("warp 0\nr 0x1000\n"))
	zw.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "warp 0\nr 0x1000\n" {
		t.Fatalf("decompressed to %q", out)
	}
}

func TestNewReaderRejectsCorruptGzipHeader(t *testing.T) {
	// Correct magic, garbage afterwards: detection commits to gzip and the
	// broken header surfaces as an error rather than silent plain-text reads.
	if _, err := NewReader(strings.NewReader("\x1f\x8b\xff\xff broken")); err == nil {
		t.Fatal("corrupt gzip header accepted")
	}
}

func TestOpenAndCreateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := strings.Repeat("the quick brown fox\n", 1000)
	for _, name := range []string{"plain.txt", "packed.txt.gz"} {
		path := filepath.Join(dir, name)
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(w, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		if string(out) != payload {
			t.Fatalf("%s: round trip mismatch (%d bytes, want %d)", name, len(out), len(payload))
		}
	}
	// The .gz file is actually compressed on disk.
	st, err := os.Stat(filepath.Join(dir, "packed.txt.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(payload)) {
		t.Fatalf("gz file is %d bytes, input %d: not compressed", st.Size(), len(payload))
	}
}

func TestTruncateTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	io.WriteString(f, "prefix|tail that must go")
	ok, err := TruncateTo(f, int64(len("prefix|")))
	if err != nil || !ok {
		t.Fatalf("TruncateTo = %v, %v", ok, err)
	}
	io.WriteString(f, "resumed")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "prefix|resumed" {
		t.Fatalf("file = %q", data)
	}
	// A non-truncatable writer reports ok=false, no error.
	if ok, err := TruncateTo(&bytes.Buffer{}, 0); ok || err != nil {
		t.Fatalf("buffer TruncateTo = %v, %v", ok, err)
	}
}

func TestCountingWriter(t *testing.T) {
	var buf bytes.Buffer
	cw := &CountingWriter{W: &buf}
	io.WriteString(cw, "abc")
	io.WriteString(cw, "defg")
	if cw.N != 7 || buf.String() != "abcdefg" {
		t.Fatalf("N=%d buf=%q", cw.N, buf.String())
	}
}
