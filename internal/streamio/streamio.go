// Package streamio is the simulator's streaming I/O layer: buffered readers
// that transparently decompress gzip input (detected by magic bytes, not file
// extension), writers that compress ".gz" outputs, and small counting /
// fail-fast adapters the streaming exporters build on (docs/FORMATS.md).
//
// Every file open in the CLIs routes through Open, so any trace or telemetry
// artifact can be gzip-compressed at rest without the rest of the code
// knowing.
package streamio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// readerBufSize is the buffer in front of every input stream; large enough
// that varint-record and token-level parsers almost never hit the underlying
// reader.
const readerBufSize = 256 << 10

// gzip streams start with the two-byte magic 0x1f 0x8b (RFC 1952).
var gzipMagic = [2]byte{0x1f, 0x8b}

// NewReader wraps r in a buffered reader that transparently decompresses
// gzip streams. Detection sniffs the first two bytes, so a plain-text stream
// that merely has a ".gz" name (or a gzip stream without one) is handled by
// content, not label. The returned reader is always buffered.
func NewReader(r io.Reader) (*bufio.Reader, error) {
	br := bufio.NewReaderSize(r, readerBufSize)
	magic, err := br.Peek(2)
	if err != nil {
		// Too short to be gzip (including empty input): serve the bytes as-is
		// and let the caller's parser report the real problem.
		return br, nil
	}
	if magic[0] != gzipMagic[0] || magic[1] != gzipMagic[1] {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("streamio: gzip header: %w", err)
	}
	return bufio.NewReaderSize(zr, readerBufSize), nil
}

// readCloser pairs a sniffed reader with the file it came from.
type readCloser struct {
	*bufio.Reader
	c io.Closer
}

func (r *readCloser) Close() error { return r.c.Close() }

// Open opens path for reading through NewReader: callers see decompressed
// bytes whether or not the file is gzip-compressed.
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &readCloser{Reader: br, c: f}, nil
}

// gzWriteCloser closes the gzip layer before the file.
type gzWriteCloser struct {
	*gzip.Writer
	f *os.File
}

func (w *gzWriteCloser) Close() error {
	zerr := w.Writer.Close()
	ferr := w.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// Create creates path for writing, compressing when the name ends in ".gz".
// The plain-file result is the *os.File itself, so streaming sinks that need
// byte-exact checkpoint resume can truncate it; gzip outputs cannot be
// resumed mid-stream (the compressor state is not recoverable), which
// StreamSink handles by re-emitting its prelude on restore.
func Create(path string) (io.WriteCloser, error) {
	return create(path, true)
}

// CreateResumable opens path for streaming output without discarding existing
// content, so a checkpoint-restored sink can truncate back to its recorded
// offset and continue byte-identically. Gzip outputs are always recreated
// from scratch (see Create).
func CreateResumable(path string) (io.WriteCloser, error) {
	return create(path, false)
}

func create(path string, trunc bool) (io.WriteCloser, error) {
	if strings.HasSuffix(path, ".gz") {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return &gzWriteCloser{Writer: gzip.NewWriter(f), f: f}, nil
	}
	flags := os.O_RDWR | os.O_CREATE
	if trunc {
		flags |= os.O_TRUNC
	}
	return os.OpenFile(path, flags, 0o644)
}

// Truncater is the capability a writer must offer for byte-exact streaming
// resume: cut back to a recorded offset and continue appending from there.
// *os.File implements it; pipes, sockets and gzip streams do not, and sinks
// fall back to a fresh-prelude resume for those.
type Truncater interface {
	Truncate(size int64) error
	io.Seeker
}

// TruncateTo cuts w back to off when it supports it and reports whether it
// did.
func TruncateTo(w io.Writer, off int64) (bool, error) {
	t, ok := w.(Truncater)
	if !ok {
		return false, nil
	}
	if err := t.Truncate(off); err != nil {
		return false, err
	}
	if _, err := t.Seek(off, io.SeekStart); err != nil {
		return false, err
	}
	return true, nil
}

// CountingWriter counts bytes accepted by the underlying writer. Streaming
// sinks use the count as the resume offset recorded in checkpoints.
type CountingWriter struct {
	W io.Writer
	N int64
}

func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}
