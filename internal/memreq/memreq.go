// Package memreq defines the request types that flow through the simulated
// memory hierarchy.
//
// Two request families exist, mirroring the paper's taxonomy (§4.3):
//
//   - Request: a physical-address memory access serviced by the data caches
//     and DRAM. Data demand requests and the page-table-walker's dependent
//     accesses are both Requests; they are distinguished by Class and, for
//     translation requests, by WalkLevel (1 = page-table root .. 4 = leaf).
//   - TransReq: a virtual-page translation request serviced by the TLB
//     hierarchy (L1 TLB -> shared L2 TLB / page walk cache -> walker).
//
// MASK's mechanisms key off these distinctions: the L2 bypass decision uses
// Class and WalkLevel, and the DRAM scheduler routes Class Translation into
// the Golden Queue.
package memreq

// Kind is the access direction of a memory request.
type Kind uint8

// Access kinds.
const (
	Read Kind = iota
	Write
)

// String returns a short human-readable name.
func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Class partitions requests into the two traffic classes the paper's
// mechanisms differentiate.
type Class uint8

// Request classes.
const (
	// Data is a demand request issued on behalf of application loads/stores.
	Data Class = iota
	// Translation is a page-table-walk access issued by the walker.
	Translation
)

// String returns a short human-readable name.
func (c Class) String() string {
	if c == Translation {
		return "translation"
	}
	return "data"
}

// MaxWalkLevel is the deepest page-table level (4-level x86-64-style tables).
const MaxWalkLevel = 4

// Service identifies the hierarchy level that ultimately supplied a request.
type Service uint8

// Service points.
const (
	ServedNone Service = iota
	ServedL1
	ServedL2
	ServedDRAM
)

// lifeState tracks where a request is in its single-owner lifecycle so that
// misuse (double completion, completing a recycled object) panics loudly
// instead of silently corrupting another in-flight request.
type lifeState uint8

const (
	// lifeLive is the zero value: the request is owned by exactly one
	// component and may be completed once. Plain &Request{} literals (tests,
	// callers outside a pooled simulator) are born live.
	lifeLive lifeState = iota
	// lifeDone marks a non-pooled request whose Complete already ran.
	lifeDone
	// lifeFree marks a pooled request sitting in its pool's free list.
	lifeFree
)

// Request is a physical-address access to the cache/DRAM hierarchy.
//
// Done, if non-nil, is invoked exactly once by the component that completes
// the request (a cache on a hit or fill, or DRAM). Writes may carry a nil
// Done (fire-and-forget, e.g. write-through traffic and dirty evictions).
//
// Ownership: a Request has a single owner at every moment — the component
// currently responsible for advancing it (a bank queue, an MSHR waiting
// list, a retry list, a DRAM channel). Complete transfers ownership to the
// Done callback for its duration and then ends the lifecycle; no component
// may retain a pointer to a request after its Complete returns. That
// contract is what makes pooled recycling (Pool) sound.
type Request struct {
	ID     uint64
	AppID  int
	ASID   uint8
	CoreID int
	WarpID int

	Kind  Kind
	Class Class
	// WalkLevel is 0 for data requests and 1..4 for translation requests,
	// where 1 is the page-table root. The paper tags each memory request
	// with its page-walk depth (§5.3) so the L2 can bypass per level.
	WalkLevel uint8

	// Addr is the physical byte address.
	Addr uint64
	// Issue is the cycle the request entered the memory system (used for
	// latency accounting).
	Issue int64
	// Served records which level supplied the data; set by the hierarchy.
	Served Service

	Done func(now int64, r *Request)

	// Site and SiteRef are the checkpoint continuation descriptor: because
	// Done is a closure, it cannot be serialized — instead every bind site
	// stamps Site (which kind of component owns the callback) and SiteRef
	// (which instance) when it assigns Done, and a checkpoint restore rebinds
	// an equivalent callback from those coordinates (docs/MODEL.md §9).
	// Requests with a nil Done carry SiteNone.
	Site    Site
	SiteRef uint64

	// pool, when non-nil, is the free list this request returns to after
	// Complete; set only by Pool.Get.
	pool *Pool
	// life guards the single-Complete lifecycle.
	life lifeState
}

// Complete marks the request served at svc, fires the Done callback, and —
// for pool-owned requests — recycles the object into its pool. The caller
// must not touch r after Complete returns. Completing a request twice, or
// completing one that has already been recycled, panics.
func (r *Request) Complete(now int64, svc Service) {
	switch r.life {
	case lifeDone:
		panic("memreq: Request completed twice")
	case lifeFree:
		panic("memreq: Complete on a recycled Request (use-after-done)")
	}
	r.life = lifeDone
	if r.Served == ServedNone {
		r.Served = svc
	}
	if r.Done != nil {
		r.Done(now, r)
	}
	if r.pool != nil {
		r.pool.put(r)
	}
}

// TransReq is a virtual-page translation request flowing through the TLB
// hierarchy. Done receives the translated physical frame number.
type TransReq struct {
	AppID  int
	ASID   uint8
	CoreID int
	WarpID int

	// VPN is the virtual page number being translated.
	VPN uint64
	// HasToken records whether the requesting warp held a TLB-Fill Token at
	// issue time (§5.2); it controls whether the walker's result may fill the
	// shared L2 TLB or only the bypass cache.
	HasToken bool
	// Issue is the cycle the request left the L1 TLB.
	Issue int64
	// StalledWarps counts the warps blocked on this translation; maintained
	// by the L1 TLB MSHR and consumed by the Address-Space-Aware DRAM
	// scheduler's WarpsStalled metric (§5.4).
	StalledWarps int

	Done func(now int64, frame uint64)

	pool *TransPool
	life lifeState
}

// Complete delivers the translated frame to Done and, for pool-owned
// requests, recycles the object. Mirrors Request.Complete: the caller must
// not touch tr afterwards, and double completion panics.
func (tr *TransReq) Complete(now int64, frame uint64) {
	switch tr.life {
	case lifeDone:
		panic("memreq: TransReq completed twice")
	case lifeFree:
		panic("memreq: Complete on a recycled TransReq (use-after-done)")
	}
	tr.life = lifeDone
	if tr.Done != nil {
		tr.Done(now, frame)
	}
	if tr.pool != nil {
		tr.pool.put(tr)
	}
}

// IDGen hands out unique request IDs. A plain counter is sufficient because
// the simulator is single-threaded per run.
type IDGen struct {
	next uint64
}

// Next returns a fresh unique ID.
func (g *IDGen) Next() uint64 {
	g.next++
	return g.next
}
