package memreq

// Pool is a deterministic free list of Requests owned by one simulator.
//
// The simulation hot loop creates a Request per memory access and per MSHR
// fill; without recycling those dominate the allocation profile (~550k
// objects per 6k-cycle run). A Pool turns that into a handful of warm-up
// allocations: Get hands out a zeroed request, and Complete returns it to
// the free list once the Done callback has run.
//
// Pools are intentionally NOT sync.Pool: the cycle loop is single-threaded
// per simulator, and a plain slice keeps recycling fully deterministic (the
// GC never steals entries, so object identity sequences — and therefore any
// accidental dependence on them — are identical run to run). Each simulator
// instance owns its pools; two simulators running concurrently never share
// request memory, which keeps runs race-free (see the sim package's
// concurrency test).
//
// The zero Pool is ready to use.
type Pool struct {
	free []*Request

	// Allocs counts objects created because the free list was empty; Gets
	// counts all handouts. Gets - Allocs is the number of recycles. Exposed
	// for tests and telemetry.
	Allocs, Gets uint64

	// ID names this pool inside a checkpoint: every request snapshotted by a
	// Table records its owning pool's ID, and RestoreTable materializes it
	// from the pool with the same ID. The simulator stamps IDs over its
	// canonical pool list; the zero value maps to the shared pool.
	ID int
}

// Get returns a live, zeroed Request owned by the caller. The request comes
// back to the pool automatically when its Complete runs.
func (p *Pool) Get() *Request {
	p.Gets++
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*r = Request{pool: p}
		return r
	}
	p.Allocs++
	return &Request{pool: p}
}

// put returns a completed request to the free list. Only Request.Complete
// calls it; the lifecycle state machine there guarantees a request is put at
// most once per Get.
func (p *Pool) put(r *Request) {
	r.life = lifeFree
	r.Done = nil
	p.free = append(p.free, r)
}

// FreeLen reports the current free-list length (test helper).
func (p *Pool) FreeLen() int { return len(p.free) }

// TransPool is the Pool analogue for TransReqs, recycled by
// TransReq.Complete. The zero TransPool is ready to use.
type TransPool struct {
	free []*TransReq

	Allocs, Gets uint64

	// ID names this pool inside a checkpoint (see Pool.ID).
	ID int
}

// Get returns a live, zeroed TransReq owned by the caller.
func (p *TransPool) Get() *TransReq {
	p.Gets++
	if n := len(p.free); n > 0 {
		tr := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*tr = TransReq{pool: p}
		return tr
	}
	p.Allocs++
	return &TransReq{pool: p}
}

func (p *TransPool) put(tr *TransReq) {
	tr.life = lifeFree
	tr.Done = nil
	p.free = append(p.free, tr)
}

// FreeLen reports the current free-list length (test helper).
func (p *TransPool) FreeLen() int { return len(p.free) }
