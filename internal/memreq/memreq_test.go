package memreq

import "testing"

func TestCompleteInvokesDoneOnce(t *testing.T) {
	calls := 0
	r := &Request{Done: func(now int64, req *Request) { calls++ }}
	r.Complete(5, ServedL2)
	if calls != 1 {
		t.Fatalf("Done called %d times", calls)
	}
	if r.Served != ServedL2 {
		t.Fatalf("Served=%v, want ServedL2", r.Served)
	}
}

func TestCompleteKeepsFirstServiceLevel(t *testing.T) {
	// MSHR completion paths pre-assign Served before calling Complete (the
	// fill's service level, not the waiting request's); Complete must keep
	// the pre-assigned level.
	r := &Request{Served: ServedDRAM}
	r.Complete(2, ServedL1)
	if r.Served != ServedDRAM {
		t.Fatalf("Served=%v, want the pre-assigned level (ServedDRAM)", r.Served)
	}
}

func TestCompleteNilDone(t *testing.T) {
	r := &Request{Kind: Write}
	r.Complete(1, ServedL1) // must not panic
}

func TestIDGenUnique(t *testing.T) {
	var g IDGen
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestClassString(t *testing.T) {
	if Data.String() != "data" || Translation.String() != "translation" {
		t.Fatal("Class.String mismatch")
	}
}

func TestTransReqCarriesTokenState(t *testing.T) {
	tr := &TransReq{VPN: 0x1234, HasToken: true, StalledWarps: 1}
	tr.StalledWarps++
	if tr.StalledWarps != 2 || !tr.HasToken {
		t.Fatal("TransReq bookkeeping broken")
	}
}
