package memreq

import "testing"

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want %q", want)
		}
		if s, ok := r.(string); !ok || s != want {
			t.Fatalf("panic %v, want %q", r, want)
		}
	}()
	fn()
}

func TestPoolRecyclesOnComplete(t *testing.T) {
	var p Pool
	r := p.Get()
	r.Addr = 0x1000
	r.Complete(1, ServedL1)
	if p.FreeLen() != 1 {
		t.Fatalf("free list has %d entries after Complete, want 1", p.FreeLen())
	}
	r2 := p.Get()
	if r2 != r {
		t.Fatal("Get did not reuse the recycled request")
	}
	if r2.Addr != 0 || r2.Served != ServedNone || r2.Done != nil {
		t.Fatalf("recycled request not zeroed: %+v", r2)
	}
	if p.Gets != 2 || p.Allocs != 1 {
		t.Fatalf("stats Gets=%d Allocs=%d, want 2/1", p.Gets, p.Allocs)
	}
}

func TestPooledDoneRunsBeforeRecycle(t *testing.T) {
	var p Pool
	r := p.Get()
	ran := false
	r.Done = func(now int64, req *Request) {
		ran = true
		if p.FreeLen() != 0 {
			t.Error("request recycled before Done returned")
		}
		if req != r {
			t.Error("Done received a different request")
		}
	}
	r.Complete(3, ServedDRAM)
	if !ran {
		t.Fatal("Done not invoked")
	}
}

func TestDoubleCompletePanics(t *testing.T) {
	r := &Request{}
	r.Complete(1, ServedL1)
	mustPanic(t, "memreq: Request completed twice", func() {
		r.Complete(2, ServedL2)
	})
}

func TestCompleteAfterRecyclePanics(t *testing.T) {
	var p Pool
	r := p.Get()
	r.Complete(1, ServedL1) // recycled into p
	mustPanic(t, "memreq: Complete on a recycled Request (use-after-done)", func() {
		r.Complete(2, ServedL2)
	})
}

func TestTransPoolLifecycle(t *testing.T) {
	var p TransPool
	tr := p.Get()
	tr.VPN = 42
	var gotFrame uint64
	tr.Done = func(now int64, frame uint64) { gotFrame = frame }
	tr.Complete(1, 7)
	if gotFrame != 7 {
		t.Fatalf("Done got frame %d, want 7", gotFrame)
	}
	if p.FreeLen() != 1 {
		t.Fatal("TransReq not recycled on Complete")
	}
	mustPanic(t, "memreq: Complete on a recycled TransReq (use-after-done)", func() {
		tr.Complete(2, 8)
	})
	tr2 := p.Get()
	if tr2 != tr || tr2.VPN != 0 || tr2.Done != nil {
		t.Fatalf("recycled TransReq not zeroed or not reused: %+v", tr2)
	}
}

func TestTransReqDoubleCompletePanics(t *testing.T) {
	tr := &TransReq{}
	tr.Complete(1, 1)
	mustPanic(t, "memreq: TransReq completed twice", func() {
		tr.Complete(2, 2)
	})
}
