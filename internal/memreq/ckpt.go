package memreq

import "fmt"

// Checkpoint support: serializable forms of the request types and the
// two-phase registry that lets many components reference the same in-flight
// request by index instead of by pointer.
//
// A live Request is owned by exactly one container (bank queue, MSHR waiting
// list, retry list, DRAM queue), but a live TransReq is referenced from
// several places at once (its L1 MSHR tracker plus wherever it currently
// queues). Both are therefore snapshotted through a registry: during
// Snapshot every component converts its pointers to table indices; during
// Restore the table materializes every object first (from the simulator's
// pools) and components then resolve indices back to the one shared object.
// Done callbacks are rebound afterwards from the Site/SiteRef descriptor in
// a final link pass driven by the simulator.

// Site identifies the kind of component a Request's Done callback belongs
// to. Stamped at Done-bind time, used only by checkpoint restore.
type Site uint8

const (
	// SiteNone: the request has no Done callback (fire-and-forget writes,
	// writebacks, write-allocate fills, write-through forwards).
	SiteNone Site = iota
	// SiteCoreData: Done is a core warp's data-return callback; CoreID and
	// WarpID on the request identify it.
	SiteCoreData
	// SiteCacheFill: Done is a cache MSHR's fill callback; SiteRef is the
	// cache's snapshot ID and Addr names the line.
	SiteCacheFill
	// SiteCacheBypassFill: like SiteCacheFill but for the cache's bypass
	// MSHR set.
	SiteCacheBypassFill
	// SiteWalk: Done is a page-table walk's step callback; SiteRef is the
	// walk's serial number.
	SiteWalk
)

// RequestDTO is the serializable image of one live Request.
type RequestDTO struct {
	ID        uint64
	AppID     int
	ASID      uint8
	CoreID    int
	WarpID    int
	Kind      Kind
	Class     Class
	WalkLevel uint8
	Addr      uint64
	Issue     int64
	Served    Service
	Site      Site
	SiteRef   uint64
	// PoolID names the free list the live request came from (Pool.ID), so
	// restore materializes it from the matching pool. With per-core pools
	// (sharded execution) the recycling partitions must survive a checkpoint
	// unchanged for the resumed run to stay bit-identical.
	PoolID int
}

// TransReqDTO is the serializable image of one live TransReq. TransReqs
// need no Site: every live one's Done is its owning L1 TLB MSHR's fill,
// identified by (CoreID, VPN).
type TransReqDTO struct {
	AppID        int
	ASID         uint8
	CoreID       int
	WarpID       int
	VPN          uint64
	HasToken     bool
	Issue        int64
	StalledWarps int
	// PoolID names the owning TransPool (see RequestDTO.PoolID).
	PoolID int
}

// NilRef is the table index encoding a nil pointer.
const NilRef int32 = -1

// Table assigns stable indices to the live requests encountered while
// snapshotting. Components call Req/Trans for every pointer they serialize;
// the first call for a pointer registers it.
type Table struct {
	reqIdx   map[*Request]int32
	reqs     []RequestDTO
	transIdx map[*TransReq]int32
	trans    []TransReqDTO
}

// NewTable returns an empty registry.
func NewTable() *Table {
	return &Table{
		reqIdx:   make(map[*Request]int32),
		transIdx: make(map[*TransReq]int32),
	}
}

// Req registers r (idempotently) and returns its index; NilRef for nil.
func (t *Table) Req(r *Request) int32 {
	if r == nil {
		return NilRef
	}
	if i, ok := t.reqIdx[r]; ok {
		return i
	}
	i := int32(len(t.reqs))
	t.reqIdx[r] = i
	poolID := 0
	if r.pool != nil {
		poolID = r.pool.ID
	}
	t.reqs = append(t.reqs, RequestDTO{
		ID: r.ID, AppID: r.AppID, ASID: r.ASID, CoreID: r.CoreID, WarpID: r.WarpID,
		Kind: r.Kind, Class: r.Class, WalkLevel: r.WalkLevel,
		Addr: r.Addr, Issue: r.Issue, Served: r.Served,
		Site: r.Site, SiteRef: r.SiteRef, PoolID: poolID,
	})
	return i
}

// Trans registers tr (idempotently) and returns its index; NilRef for nil.
func (t *Table) Trans(tr *TransReq) int32 {
	if tr == nil {
		return NilRef
	}
	if i, ok := t.transIdx[tr]; ok {
		return i
	}
	i := int32(len(t.trans))
	t.transIdx[tr] = i
	poolID := 0
	if tr.pool != nil {
		poolID = tr.pool.ID
	}
	t.trans = append(t.trans, TransReqDTO{
		AppID: tr.AppID, ASID: tr.ASID, CoreID: tr.CoreID, WarpID: tr.WarpID,
		VPN: tr.VPN, HasToken: tr.HasToken, Issue: tr.Issue,
		StalledWarps: tr.StalledWarps, PoolID: poolID,
	})
	return i
}

// Requests returns the registered Request DTOs in index order.
func (t *Table) Requests() []RequestDTO { return t.reqs }

// TransReqs returns the registered TransReq DTOs in index order.
func (t *Table) TransReqs() []TransReqDTO { return t.trans }

// RestoreTable materializes every registered request from the given pools at
// construction; components then resolve their serialized indices through it.
// Done callbacks are NOT set here — the simulator's link pass binds them
// from the Site descriptors once every component's trackers exist.
type RestoreTable struct {
	reqs  []*Request
	trans []*TransReq
}

// NewRestoreTable allocates one live object per DTO from the pool carrying
// its recorded PoolID and copies the serialized fields in. pools and tpools
// are indexed by Pool.ID/TransPool.ID; a DTO naming a pool outside either
// list is an error (corrupt or incompatible checkpoint).
func NewRestoreTable(reqs []RequestDTO, trans []TransReqDTO, pools []*Pool, tpools []*TransPool) (*RestoreTable, error) {
	t := &RestoreTable{
		reqs:  make([]*Request, len(reqs)),
		trans: make([]*TransReq, len(trans)),
	}
	for i, d := range reqs {
		if d.PoolID < 0 || d.PoolID >= len(pools) {
			return nil, fmt.Errorf("memreq: request %d names pool %d of %d", i, d.PoolID, len(pools))
		}
		r := pools[d.PoolID].Get()
		r.ID, r.AppID, r.ASID, r.CoreID, r.WarpID = d.ID, d.AppID, d.ASID, d.CoreID, d.WarpID
		r.Kind, r.Class, r.WalkLevel = d.Kind, d.Class, d.WalkLevel
		r.Addr, r.Issue, r.Served = d.Addr, d.Issue, d.Served
		r.Site, r.SiteRef = d.Site, d.SiteRef
		t.reqs[i] = r
	}
	for i, d := range trans {
		if d.PoolID < 0 || d.PoolID >= len(tpools) {
			return nil, fmt.Errorf("memreq: transreq %d names pool %d of %d", i, d.PoolID, len(tpools))
		}
		tr := tpools[d.PoolID].Get()
		tr.AppID, tr.ASID, tr.CoreID, tr.WarpID = d.AppID, d.ASID, d.CoreID, d.WarpID
		tr.VPN, tr.HasToken, tr.Issue, tr.StalledWarps = d.VPN, d.HasToken, d.Issue, d.StalledWarps
		t.trans[i] = tr
	}
	return t, nil
}

// Req resolves a serialized index to its materialized Request (nil for
// NilRef).
func (t *RestoreTable) Req(i int32) *Request {
	if i == NilRef {
		return nil
	}
	return t.reqs[i]
}

// Trans resolves a serialized index to its materialized TransReq.
func (t *RestoreTable) Trans(i int32) *TransReq {
	if i == NilRef {
		return nil
	}
	return t.trans[i]
}

// Len returns the materialized request counts (requests, transreqs).
func (t *RestoreTable) Len() (int, int) { return len(t.reqs), len(t.trans) }

// State returns the generator's counter for checkpointing.
func (g *IDGen) State() uint64 { return g.next }

// SetState restores the generator's counter.
func (g *IDGen) SetState(next uint64) { g.next = next }

// PoolState is the serializable image of a request pool: only the free-list
// length and the cumulative counters matter — free objects are
// interchangeable zeroed memory, so restore refills the list with fresh
// allocations.
type PoolState struct {
	Free   int
	Allocs uint64
	Gets   uint64
}

// State captures the pool's checkpoint image.
func (p *Pool) State() PoolState {
	return PoolState{Free: len(p.free), Allocs: p.Allocs, Gets: p.Gets}
}

// SetState restores the pool image: the free list is topped up (or trimmed)
// to the recorded length and the counters are overwritten, called after any
// RestoreTable materialization so the counters reflect the checkpointed run.
func (p *Pool) SetState(st PoolState) {
	for len(p.free) < st.Free {
		p.free = append(p.free, &Request{pool: p, life: lifeFree})
	}
	p.free = p.free[:st.Free]
	p.Allocs, p.Gets = st.Allocs, st.Gets
}

// State captures the pool's checkpoint image.
func (p *TransPool) State() PoolState {
	return PoolState{Free: len(p.free), Allocs: p.Allocs, Gets: p.Gets}
}

// SetState restores the pool image (see Pool.SetState).
func (p *TransPool) SetState(st PoolState) {
	for len(p.free) < st.Free {
		p.free = append(p.free, &TransReq{pool: p, life: lifeFree})
	}
	p.free = p.free[:st.Free]
	p.Allocs, p.Gets = st.Allocs, st.Gets
}
