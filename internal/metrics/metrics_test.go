package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWeightedSpeedup(t *testing.T) {
	// Two apps at exactly their alone IPC: WS = 2.
	if ws := WeightedSpeedup([]float64{2, 3}, []float64{2, 3}); !close(ws, 2) {
		t.Fatalf("WS=%v, want 2", ws)
	}
	// Halved performance: WS = 1.
	if ws := WeightedSpeedup([]float64{1, 1.5}, []float64{2, 3}); !close(ws, 1) {
		t.Fatalf("WS=%v, want 1", ws)
	}
}

func TestSpeedupMetricsUndefinedInputs(t *testing.T) {
	type fn struct {
		name string
		f    func(shared, alone []float64) float64
	}
	fns := []fn{
		{"WeightedSpeedup", WeightedSpeedup},
		{"MaxSlowdown", MaxSlowdown},
		{"HarmonicSpeedup", HarmonicSpeedup},
	}
	cases := []struct {
		name          string
		shared, alone []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []float64{1, 2}, []float64{1}},
		{"zero alone IPC", []float64{1, 1}, []float64{0, 2}},
		{"negative alone IPC", []float64{1, 1}, []float64{-1, 2}},
	}
	for _, fn := range fns {
		for _, c := range cases {
			if v := fn.f(c.shared, c.alone); !math.IsNaN(v) {
				t.Errorf("%s(%s) = %v, want NaN", fn.name, c.name, v)
			}
		}
	}
}

func TestSpeedupMetricsZeroSharedIPC(t *testing.T) {
	shared, alone := []float64{0, 1}, []float64{2, 2}
	// A fully starved app contributes zero speedup but is not skipped.
	if ws := WeightedSpeedup(shared, alone); !close(ws, 0.5) {
		t.Errorf("WS=%v, want 0.5", ws)
	}
	// Its slowdown is unbounded: unfairness is +Inf, not the other app's 2x.
	if u := MaxSlowdown(shared, alone); !math.IsInf(u, 1) {
		t.Errorf("unfairness=%v, want +Inf", u)
	}
	// And the harmonic mean collapses to its limit of 0.
	if h := HarmonicSpeedup(shared, alone); h != 0 {
		t.Errorf("harmonic=%v, want 0", h)
	}
}

func TestIPCThroughput(t *testing.T) {
	if v := IPCThroughput([]float64{1, 2, 3}); !close(v, 6) {
		t.Fatalf("throughput=%v", v)
	}
}

func TestMaxSlowdown(t *testing.T) {
	// App 2 slowed 3x, app 1 slowed 2x: unfairness = 3.
	if u := MaxSlowdown([]float64{1, 1}, []float64{2, 3}); !close(u, 3) {
		t.Fatalf("unfairness=%v, want 3", u)
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	// Equal 2x slowdowns: harmonic speedup = n / sum(slowdowns) = 2/4.
	if h := HarmonicSpeedup([]float64{1, 1}, []float64{2, 2}); !close(h, 0.5) {
		t.Fatalf("harmonic=%v, want 0.5", h)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !close(g, 2) {
		t.Fatalf("geomean=%v, want 2", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("geomean(nil)=%v", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{0, 9}); !close(g, 9) {
		t.Fatalf("geomean with zero=%v", g)
	}
}

func TestMeanAndMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if m := Mean(xs); !close(m, 2) {
		t.Fatalf("mean=%v", m)
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 3 {
		t.Fatalf("minmax=%v,%v", lo, hi)
	}
	if Mean(nil) != 0 {
		t.Fatal("mean(nil) != 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 8, 5} {
		s.Add(v)
	}
	if !close(s.Avg(), 5) || s.Min != 2 || s.Max != 8 || s.Count != 3 {
		t.Fatalf("series %+v", s)
	}
	var empty Series
	if empty.Avg() != 0 {
		t.Fatal("empty series avg != 0")
	}
}

// Property: for well-formed inputs (equal non-zero lengths, positive alone
// IPCs), weighted speedup is non-negative and never NaN.
func TestWeightedSpeedupBounds(t *testing.T) {
	f := func(shared, alone []float64) bool {
		n := len(shared)
		if len(alone) < n {
			n = len(alone)
		}
		if n == 0 {
			return math.IsNaN(WeightedSpeedup(shared[:0], alone[:0]))
		}
		for i := 0; i < n; i++ {
			shared[i] = math.Abs(shared[i])
			alone[i] = math.Abs(alone[i]) + 1e-6
		}
		ws := WeightedSpeedup(shared[:n], alone[:n])
		return ws >= 0 && !math.IsNaN(ws)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
