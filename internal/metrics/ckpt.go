package metrics

// HistogramState is a histogram's checkpoint image.
type HistogramState struct {
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
}

// State captures the histogram for checkpointing.
func (h *Histogram) State() HistogramState {
	return HistogramState{
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// SetState restores a state captured by State.
func (h *Histogram) SetState(st HistogramState) {
	copy(h.counts, st.Counts)
	h.count, h.sum, h.min, h.max = st.Count, st.Sum, st.Min, st.Max
}
