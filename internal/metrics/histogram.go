package metrics

import (
	"math"
	"math/bits"
)

// histSubBits is log2 of the number of sub-buckets per power-of-two octave.
// Eight sub-buckets bound the relative quantile error at 1/8 = 12.5%.
const histSubBits = 3

const histSubCount = 1 << histSubBits

// histBuckets covers every uint64 value: histSubCount exact buckets for
// values < histSubCount, then histSubCount buckets per octave up to 2^64.
const histBuckets = histSubCount + (64-histSubBits)*histSubCount

// Histogram is a log-bucketed histogram for non-negative samples (latencies,
// queue depths, ...). Values are bucketed by their power-of-two octave with
// histSubCount sub-buckets per octave, so Observe is two shifts and an add —
// no allocation, no map — and quantiles resolve within 12.5% relative error.
// Count, Sum, Min and Max are tracked exactly. The zero value is NOT ready to
// use; build with NewHistogram.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets)}
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the highest set bit, >= histSubBits
	sub := int(v>>(uint(exp)-histSubBits)) - histSubCount
	return histSubCount + (exp-histSubBits)*histSubCount + sub
}

// bucketBounds returns the inclusive lower and exclusive upper value bound of
// bucket idx.
func bucketBounds(idx int) (lo, hi float64) {
	if idx < histSubCount {
		return float64(idx), float64(idx + 1)
	}
	exp := (idx - histSubCount) / histSubCount
	sub := (idx - histSubCount) % histSubCount
	base := uint64(histSubCount+sub) << uint(exp)
	width := uint64(1) << uint(exp)
	return float64(base), float64(base + width)
}

// Observe records one sample. Negative values clamp to zero; non-integral
// values are truncated for bucketing but accumulate exactly into Sum.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketOf(uint64(v))]++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of observed samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observed sample (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest observed sample (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile returns the approximate q-quantile (q in [0,1]) by locating the
// bucket holding the rank-q sample and interpolating linearly inside it. The
// result is clamped to the exact [Min, Max] envelope, so Quantile(0) and
// Quantile(1) are exact. Returns NaN when the histogram is empty or q is out
// of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(h.count-1)
	var seen float64
	for idx, n := range h.counts {
		if n == 0 {
			continue
		}
		if rank < seen+float64(n) {
			lo, hi := bucketBounds(idx)
			// Position of the target rank within this bucket, in [0,1).
			frac := (rank - seen) / float64(n)
			v := lo + frac*(hi-lo)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		seen += float64(n)
	}
	return h.max
}

// Reset clears the histogram for reuse.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}
