// Package metrics implements the multiprogramming metrics the paper reports:
// weighted speedup (system throughput), IPC throughput, and maximum-slowdown
// unfairness, plus small helpers for aggregating time series.
package metrics

import "math"

// WeightedSpeedup is the paper's primary throughput metric (Eyerman &
// Eeckhout): sum over apps of IPC_shared / IPC_alone.
//
// Contract: shared and alone must be non-empty and the same length, and every
// alone IPC must be positive — IPC_alone is the normalization baseline, so
// the metric is undefined otherwise and NaN is returned (it used to be
// silently computed over the valid subset, which misreported partial inputs
// as healthy results). A zero shared IPC is well-defined: that app simply
// contributes zero speedup.
func WeightedSpeedup(shared, alone []float64) float64 {
	if len(shared) == 0 || len(shared) != len(alone) {
		return math.NaN()
	}
	ws := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			return math.NaN()
		}
		ws += shared[i] / alone[i]
	}
	return ws
}

// IPCThroughput is the plain sum of shared IPCs (the paper's "IPC
// throughput", §7.1).
func IPCThroughput(shared []float64) float64 {
	t := 0.0
	for _, v := range shared {
		t += v
	}
	return t
}

// MaxSlowdown is the paper's unfairness metric: max over apps of
// IPC_alone / IPC_shared. Lower is better; 1.0 is perfectly fair sharing
// with no slowdown.
//
// Contract: shared and alone must be non-empty and the same length, and every
// alone IPC must be positive; otherwise the metric is undefined and NaN is
// returned. An app with zero shared IPC was slowed down without bound, so its
// slowdown — and therefore the maximum — is +Inf, not a silently skipped
// entry.
func MaxSlowdown(shared, alone []float64) float64 {
	if len(shared) == 0 || len(shared) != len(alone) {
		return math.NaN()
	}
	worst := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			return math.NaN()
		}
		if shared[i] <= 0 {
			return math.Inf(1)
		}
		if s := alone[i] / shared[i]; s > worst {
			worst = s
		}
	}
	return worst
}

// HarmonicSpeedup is the harmonic mean of per-app speedups, a
// balance-sensitive alternative throughput metric.
//
// Contract: shared and alone must be non-empty and the same length, and every
// alone IPC must be positive; otherwise the metric is undefined and NaN is
// returned. An app with zero shared IPC has an infinite slowdown, which
// drives the harmonic mean to its natural limit of 0.
func HarmonicSpeedup(shared, alone []float64) float64 {
	if len(shared) == 0 || len(shared) != len(alone) {
		return math.NaN()
	}
	sum := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			return math.NaN()
		}
		if shared[i] <= 0 {
			return 0 // one infinite slowdown collapses the harmonic mean
		}
		sum += alone[i] / shared[i]
	}
	return float64(len(shared)) / sum
}

// GeoMean returns the geometric mean of xs (ignoring non-positive entries),
// used to average normalized results across workloads.
func GeoMean(xs []float64) float64 {
	n := 0
	logSum := 0.0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}

// Series accumulates periodic samples (e.g. concurrent page walks).
type Series struct {
	Sum   float64
	Count int
	Min   float64
	Max   float64
}

// Add records one sample.
func (s *Series) Add(v float64) {
	if s.Count == 0 || v < s.Min {
		s.Min = v
	}
	if s.Count == 0 || v > s.Max {
		s.Max = v
	}
	s.Sum += v
	s.Count++
}

// Avg returns the running mean.
func (s *Series) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
