package metrics

import (
	"math"
	"testing"
)

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below histSubCount land in exact unit buckets, so every
	// quantile of {0..7} is exact.
	h := NewHistogram()
	for v := 0; v < 8; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 8 {
		t.Fatalf("count=%d, want 8", h.Count())
	}
	if h.Min() != 0 || h.Max() != 7 {
		t.Fatalf("min/max = %v/%v, want 0/7", h.Min(), h.Max())
	}
	if m := h.Mean(); !close(m, 3.5) {
		t.Fatalf("mean=%v, want 3.5", m)
	}
	for v := 0; v < 8; v++ {
		q := float64(v) / 7
		got := h.Quantile(q)
		if math.Abs(got-float64(v)) > 1 {
			t.Fatalf("quantile(%v)=%v, want ~%d", q, got, v)
		}
	}
}

func TestHistogramUniformQuantiles(t *testing.T) {
	// Uniform 1..10000: quantiles must land within the 12.5% relative
	// bucket error of the true value.
	h := NewHistogram()
	for v := 1; v <= 10000; v++ {
		h.Observe(float64(v))
	}
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		want := q * 10000
		got := h.Quantile(q)
		if relerr := math.Abs(got-want) / want; relerr > 0.125 {
			t.Errorf("quantile(%v)=%v, want %v±12.5%% (err %.1f%%)", q, got, want, 100*relerr)
		}
	}
	// The envelope quantiles are exact.
	if h.Quantile(0) != 1 {
		t.Errorf("p0=%v, want 1", h.Quantile(0))
	}
	if h.Quantile(1) != 10000 {
		t.Errorf("p100=%v, want 10000", h.Quantile(1))
	}
}

func TestHistogramBimodal(t *testing.T) {
	// 90% fast (≈20 cycles), 10% slow (≈5000 cycles) — the PTW-latency
	// shape under contention. The p50 must sit in the fast mode and the
	// p99 in the slow mode.
	h := NewHistogram()
	for i := 0; i < 900; i++ {
		h.Observe(20)
	}
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	if p50 := h.Quantile(0.5); p50 < 15 || p50 > 25 {
		t.Errorf("p50=%v, want ~20", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 4096 || p99 > 5000 {
		t.Errorf("p99=%v, want in the slow mode (4096..5000)", p99)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(137)
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 137 {
			t.Fatalf("quantile(%v)=%v, want 137 (min/max clamp)", q, v)
		}
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	h := NewHistogram()
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) || !math.IsNaN(h.Min()) || !math.IsNaN(h.Max()) {
		t.Fatal("empty histogram must report NaN")
	}
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("reset histogram not empty: count=%d", h.Count())
	}
	// Out-of-range and NaN q.
	h.Observe(1)
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) || !math.IsNaN(h.Quantile(math.NaN())) {
		t.Fatal("out-of-range quantile must be NaN")
	}
	// Negative and NaN observations clamp to zero rather than corrupting
	// buckets.
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.Min() != 0 {
		t.Fatalf("min=%v, want 0 after clamped observations", h.Min())
	}
}

func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	// Every value must fall inside the bounds of its own bucket.
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		if float64(v) < lo || float64(v) >= hi {
			t.Errorf("value %d bucketed to [%v,%v)", v, lo, hi)
		}
	}
}
