package metrics

import "fmt"

// RunStats counts the outcomes of a supervised simulation campaign: how many
// runs were attempted, how many finished, and how the rest died. The
// experiments harness accumulates one RunStats per campaign and cmd/maskexp
// merges them into the exit-status decision (-max-fail-frac).
type RunStats struct {
	// Attempted counts runs started (retries do not re-count).
	Attempted uint64
	// Completed counts runs that finished their full cycle budget.
	Completed uint64
	// Failed counts runs that returned no usable result (after any retry).
	Failed uint64
	// Aborted counts runs cut short by the watchdog or a context deadline /
	// cancellation; every aborted run is also a failed run.
	Aborted uint64
	// Retried counts transient failures that were retried once.
	Retried uint64

	// CacheRequests counts simulation requests that consulted the campaign
	// result cache (internal/simcache). Attempted only counts the requests
	// that actually executed, so CacheRequests - Attempted is the number of
	// simulations memoization saved.
	CacheRequests uint64
	// CacheHits counts requests served from an already-completed cache entry.
	CacheHits uint64
	// CacheInflightWaits counts requests that joined an in-flight computation
	// of the same fingerprint (single-flight dedup).
	CacheInflightWaits uint64
	// CacheMisses counts requests that had to produce their cache entry.
	CacheMisses uint64
	// DiskHits counts misses resolved from the on-disk cache (-cache-dir)
	// without simulating.
	DiskHits uint64
	// RemoteHits counts misses resolved from the shared remote store
	// (maskexp -remote / the maskd content-addressed store) without
	// simulating — the cross-machine dedup evidence.
	RemoteHits uint64
	// RemotePuts counts entries published to the remote store.
	RemotePuts uint64
	// RemoteErrors counts remote entries rejected as corrupt or mismatched.
	RemoteErrors uint64

	// CheckpointsTaken counts mid-run checkpoints written (-checkpoint-dir).
	CheckpointsTaken uint64
	// CheckpointsRestored counts runs that resumed from a checkpoint instead
	// of simulating from cycle zero — the kill-safe campaign-resume evidence.
	CheckpointsRestored uint64
	// CheckpointsRejected counts checkpoint files skipped during resume
	// because they were corrupt, truncated, version-mismatched or belonged to
	// a different simulation; each rejection fell back to an older checkpoint
	// or a clean start.
	CheckpointsRejected uint64

	// CyclesSimulated sums Results.Cycles over completed runs; CyclesTicked
	// sums the cycles the engine actually single-stepped. The gap is what
	// event-horizon fast-forward skipped — the campaign-wide speedup evidence.
	CyclesSimulated uint64
	CyclesTicked    uint64
}

// Merge accumulates o into s.
func (s *RunStats) Merge(o RunStats) {
	s.Attempted += o.Attempted
	s.Completed += o.Completed
	s.Failed += o.Failed
	s.Aborted += o.Aborted
	s.Retried += o.Retried
	s.CacheRequests += o.CacheRequests
	s.CacheHits += o.CacheHits
	s.CacheInflightWaits += o.CacheInflightWaits
	s.CacheMisses += o.CacheMisses
	s.DiskHits += o.DiskHits
	s.RemoteHits += o.RemoteHits
	s.RemotePuts += o.RemotePuts
	s.RemoteErrors += o.RemoteErrors
	s.CheckpointsTaken += o.CheckpointsTaken
	s.CheckpointsRestored += o.CheckpointsRestored
	s.CheckpointsRejected += o.CheckpointsRejected
	s.CyclesSimulated += o.CyclesSimulated
	s.CyclesTicked += o.CyclesTicked
}

// FailureFrac returns Failed/Attempted, or 0 when nothing was attempted.
func (s RunStats) FailureFrac() float64 {
	if s.Attempted == 0 {
		return 0
	}
	return float64(s.Failed) / float64(s.Attempted)
}

// String renders a one-line campaign summary. The cache section appears only
// when the campaign consulted a result cache.
func (s RunStats) String() string {
	out := fmt.Sprintf("runs: attempted=%d completed=%d failed=%d aborted=%d retried=%d",
		s.Attempted, s.Completed, s.Failed, s.Aborted, s.Retried)
	if s.CacheRequests > 0 {
		out += fmt.Sprintf(" cache: requests=%d hits=%d inflight=%d misses=%d disk=%d",
			s.CacheRequests, s.CacheHits, s.CacheInflightWaits, s.CacheMisses, s.DiskHits)
	}
	if s.RemoteHits > 0 || s.RemotePuts > 0 || s.RemoteErrors > 0 {
		out += fmt.Sprintf(" remote: hits=%d puts=%d errors=%d",
			s.RemoteHits, s.RemotePuts, s.RemoteErrors)
	}
	if s.CheckpointsTaken > 0 || s.CheckpointsRestored > 0 || s.CheckpointsRejected > 0 {
		out += fmt.Sprintf(" checkpoints: taken=%d restored=%d rejected=%d",
			s.CheckpointsTaken, s.CheckpointsRestored, s.CheckpointsRejected)
	}
	if s.CyclesSimulated > 0 {
		out += fmt.Sprintf(" cycles: simulated=%d ticked=%d skipped=%.1f%%",
			s.CyclesSimulated, s.CyclesTicked,
			100*float64(s.CyclesSimulated-s.CyclesTicked)/float64(s.CyclesSimulated))
	}
	return out
}
