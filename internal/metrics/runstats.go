package metrics

import "fmt"

// RunStats counts the outcomes of a supervised simulation campaign: how many
// runs were attempted, how many finished, and how the rest died. The
// experiments harness accumulates one RunStats per campaign and cmd/maskexp
// merges them into the exit-status decision (-max-fail-frac).
type RunStats struct {
	// Attempted counts runs started (retries do not re-count).
	Attempted uint64
	// Completed counts runs that finished their full cycle budget.
	Completed uint64
	// Failed counts runs that returned no usable result (after any retry).
	Failed uint64
	// Aborted counts runs cut short by the watchdog or a context deadline /
	// cancellation; every aborted run is also a failed run.
	Aborted uint64
	// Retried counts transient failures that were retried once.
	Retried uint64
}

// Merge accumulates o into s.
func (s *RunStats) Merge(o RunStats) {
	s.Attempted += o.Attempted
	s.Completed += o.Completed
	s.Failed += o.Failed
	s.Aborted += o.Aborted
	s.Retried += o.Retried
}

// FailureFrac returns Failed/Attempted, or 0 when nothing was attempted.
func (s RunStats) FailureFrac() float64 {
	if s.Attempted == 0 {
		return 0
	}
	return float64(s.Failed) / float64(s.Attempted)
}

// String renders a one-line campaign summary.
func (s RunStats) String() string {
	return fmt.Sprintf("runs: attempted=%d completed=%d failed=%d aborted=%d retried=%d",
		s.Attempted, s.Completed, s.Failed, s.Aborted, s.Retried)
}
