package workload

// GroupSync keeps the warps of one group loosely in phase, modelling the
// barrier-synchronised thread blocks of real GPGPU kernels. Without it the
// members of a group drift apart over time until their "shared" pages are
// never live simultaneously — with it, a page fetched for one member is hot
// when its peers need it, which is what makes a single TLB miss stall many
// warps (§4.1) and gives the shared TLB its reuse.
type GroupSync struct {
	steps []int64
	min   int64
	// window is the maximum number of memory instructions a member may run
	// ahead of the slowest member.
	window int64
}

// NewGroupSync creates sync state for n members with the given window.
func NewGroupSync(n int, window int64) *GroupSync {
	if window < 1 {
		window = 1
	}
	return &GroupSync{steps: make([]int64, n), window: window}
}

// Stalled reports whether member m must wait for slower members.
func (g *GroupSync) Stalled(m int) bool {
	return g.steps[m]-g.min >= g.window
}

// Advance records one memory instruction by member m.
func (g *GroupSync) Advance(m int) {
	g.steps[m]++
	if g.steps[m]-1 == g.min {
		// m may have been (one of) the slowest; recompute the floor.
		min := g.steps[0]
		for _, s := range g.steps[1:] {
			if s < min {
				min = s
			}
		}
		g.min = min
	}
}

// Lag returns how far member m is ahead of the slowest member.
func (g *GroupSync) Lag(m int) int64 {
	return g.steps[m] - g.min
}

// StreamFactory builds all of one application's warp streams, wiring group
// members to shared GroupSync state.
type StreamFactory struct {
	p        Profile
	base     uint64
	pageSize int
	lineSize int
	numWarps int
	seed     uint64
	syncs    map[int]*GroupSync
}

// defaultSyncWindow bounds intra-group drift in memory instructions. Roughly
// two pages' worth of instructions for typical LinesPerInst values: close
// enough that peers reuse each other's translations, loose enough that the
// group is not lock-stepped.
const defaultSyncWindow = 24

// NewStreamFactory prepares stream construction for an app with numWarps
// warps.
func NewStreamFactory(p Profile, base uint64, pageSize, lineSize, numWarps int, seed uint64) *StreamFactory {
	return &StreamFactory{
		p: p, base: base, pageSize: pageSize, lineSize: lineSize,
		numWarps: numWarps, seed: seed,
		syncs: make(map[int]*GroupSync),
	}
}

// New builds the stream for one warp, sharing GroupSync among group members.
func (f *StreamFactory) New(warpIndex int) *Stream {
	s := f.p.NewStream(StreamConfig{
		Base:      f.base,
		PageSize:  f.pageSize,
		LineSize:  f.lineSize,
		WarpIndex: warpIndex,
		NumWarps:  f.numWarps,
		Seed:      f.seed,
	})
	g := f.p.WarpsPerGroup
	if g <= 1 {
		return s // ungrouped profiles need no sync
	}
	group := warpIndex / g
	sync, ok := f.syncs[group]
	if !ok {
		members := g
		if rem := f.numWarps - group*g; rem < members {
			members = rem
		}
		sync = NewGroupSync(members, defaultSyncWindow)
		f.syncs[group] = sync
	}
	s.sync = sync
	s.syncMember = warpIndex % g
	return s
}
