package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxTraceLine bounds a single trace line (16MB); bufio.Scanner's 64KB
// default truncates real generated traces.
const maxTraceLine = 16 << 20

// TraceEntry is one warp-level memory instruction in an external trace.
type TraceEntry struct {
	// Addrs holds one or more virtual byte addresses (distinct pages become
	// distinct translations, like MemInst).
	Addrs []uint64
	Write bool
	// ComputeGap is the number of compute instructions issued after this
	// access before the next one.
	ComputeGap int
}

// TraceSet is a parsed external workload: per-warp instruction traces that
// can drive the simulator in place of a synthetic Profile. Warps replay
// their traces cyclically, matching the paper's methodology of relaunching
// an application that finishes early to keep contention alive (§6).
type TraceSet struct {
	// Name labels the workload in results.
	Name string
	// Warps holds one trace per warp; warp w uses Warps[w % len(Warps)].
	Warps [][]TraceEntry
}

// ParseTrace reads the textual trace format:
//
//	# comment
//	warp <n>                 — start of warp n's trace (required before entries)
//	r <hexaddr> [hexaddr...] — read touching the given addresses
//	w <hexaddr> [hexaddr...] — write
//	c <n>                    — compute gap after the previous access
//
// Addresses are hexadecimal with or without 0x. Warp headers must number
// their traces sequentially from 0 in file order; a mismatch means the trace
// was truncated, reordered, or concatenated wrongly, and is rejected rather
// than silently renumbered. The format is deliberately trivial so traces can
// be produced by any profiler or generator.
func ParseTrace(name string, r io.Reader) (*TraceSet, error) {
	ts := &TraceSet{Name: name}
	var cur []TraceEntry
	flush := func() {
		if cur != nil {
			ts.Warps = append(ts.Warps, cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	// Generated traces routinely exceed bufio's 64KB default line limit (a
	// single divergent access can list hundreds of addresses).
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "warp":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace %s:%d: 'warp' takes exactly one index, got %q", name, lineNo, line)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("trace %s:%d: bad warp index %q", name, lineNo, fields[1])
			}
			flush()
			if idx != len(ts.Warps) {
				return nil, fmt.Errorf("trace %s:%d: warp index %d out of order (expected %d)", name, lineNo, idx, len(ts.Warps))
			}
			cur = []TraceEntry{}
		case "r", "w":
			if cur == nil {
				return nil, fmt.Errorf("trace %s:%d: access before any 'warp' header", name, lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("trace %s:%d: access with no address", name, lineNo)
			}
			e := TraceEntry{Write: fields[0] == "w"}
			for _, f := range fields[1:] {
				addr, err := strconv.ParseUint(strings.TrimPrefix(f, "0x"), 16, 64)
				if err != nil {
					return nil, fmt.Errorf("trace %s:%d: bad address %q: %v", name, lineNo, f, err)
				}
				e.Addrs = append(e.Addrs, addr)
			}
			cur = append(cur, e)
		case "c":
			if cur == nil || len(cur) == 0 {
				return nil, fmt.Errorf("trace %s:%d: compute gap before any access", name, lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace %s:%d: malformed compute gap", name, lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("trace %s:%d: bad compute gap %q", name, lineNo, fields[1])
			}
			cur[len(cur)-1].ComputeGap = n
		default:
			return nil, fmt.Errorf("trace %s:%d: unknown directive %q", name, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s:%d: %w", name, lineNo+1, err)
	}
	flush()
	if len(ts.Warps) == 0 {
		return nil, fmt.Errorf("trace %s: no warps", name)
	}
	for i, w := range ts.Warps {
		if len(w) == 0 {
			return nil, fmt.Errorf("trace %s: warp %d has no accesses", name, i)
		}
	}
	return ts, nil
}

// Pages enumerates every distinct page address touched by the trace, for
// page-table pre-population.
func (ts *TraceSet) Pages(pageSize int) []uint64 {
	shift := pageShiftFor(pageSize)
	seen := map[uint64]bool{}
	var out []uint64
	for _, warp := range ts.Warps {
		for _, e := range warp {
			for _, a := range e.Addrs {
				page := (a >> shift) << shift
				if !seen[page] {
					seen[page] = true
					out = append(out, page)
				}
			}
		}
	}
	return out
}

// NewStream builds a replaying Stream for one warp of the trace. The
// returned Stream satisfies the same contract as Profile.NewStream; group
// sync does not apply to traces (the trace itself encodes inter-warp
// timing).
func (ts *TraceSet) NewStream(warpIndex, pageSize, lineSize int) *Stream {
	shift := pageShiftFor(pageSize)
	return &Stream{
		pageShift: shift,
		lineSize:  uint64(lineSize),
		replay:    ts.Warps[warpIndex%len(ts.Warps)],
	}
}
