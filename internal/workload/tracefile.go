package workload

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"masksim/internal/streamio"
)

// TraceEntry is one warp-level memory instruction in an external trace.
type TraceEntry struct {
	// Addrs holds one or more virtual byte addresses (distinct pages become
	// distinct translations, like MemInst).
	Addrs []uint64
	Write bool
	// ComputeGap is the number of compute instructions issued after this
	// access before the next one.
	ComputeGap int
}

// TraceSet is a parsed external workload: per-warp instruction traces that
// can drive the simulator in place of a synthetic Profile. Warps replay
// their traces cyclically, matching the paper's methodology of relaunching
// an application that finishes early to keep contention alive (§6).
type TraceSet struct {
	// Name labels the workload in results.
	Name string
	// Warps holds one trace per warp; warp w uses Warps[w % len(Warps)].
	Warps [][]TraceEntry
}

// ParseTrace reads the textual trace format (docs/FORMATS.md):
//
//	# comment
//	warp <n>                 — start of warp n's trace (required before entries)
//	r <hexaddr> [hexaddr...] — read touching the given addresses
//	w <hexaddr> [hexaddr...] — write
//	c <n>                    — compute gap after the previous access
//
// Addresses are hexadecimal with or without 0x. Warp headers must number
// their traces sequentially from 0 in file order; a mismatch means the trace
// was truncated, reordered, or concatenated wrongly, and is rejected rather
// than silently renumbered. The format is deliberately trivial so traces can
// be produced by any profiler or generator.
//
// The parser is a token-level streaming pipeline: input is consumed through
// a buffered, transparently gzip-decoding reader, one whitespace-separated
// token at a time, so a pathological multi-megabyte access line costs one
// token buffer, never a line buffer, and there is no line-length limit.
func ParseTrace(name string, r io.Reader) (*TraceSet, error) {
	br, err := streamio.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", name, err)
	}
	p := &traceParser{name: name, src: br, line: 1}
	ts := &TraceSet{Name: name}
	var cur []TraceEntry
	flush := func() {
		if cur != nil {
			ts.Warps = append(ts.Warps, cur)
			cur = nil
		}
	}
	for {
		tok, ok, err := p.word()
		if err != nil {
			return nil, p.errf(p.line, "%v", err)
		}
		if !ok {
			break
		}
		ln := p.line
		switch {
		case bytes.Equal(tok, wordWarp):
			idxTok, ok, err := p.lineWord()
			if err != nil {
				return nil, p.errf(ln, "%v", err)
			}
			if !ok {
				return nil, p.errf(ln, "'warp' takes exactly one index")
			}
			idx, perr := parseDec(idxTok)
			if perr != nil || idx < 0 {
				return nil, p.errf(ln, "bad warp index %q", idxTok)
			}
			if extra, ok, err := p.lineWord(); err != nil {
				return nil, p.errf(ln, "%v", err)
			} else if ok {
				return nil, p.errf(ln, "'warp' takes exactly one index, got extra field %q", extra)
			}
			flush()
			if idx != len(ts.Warps) {
				return nil, p.errf(ln, "warp index %d out of order (expected %d)", idx, len(ts.Warps))
			}
			cur = []TraceEntry{}
		case len(tok) == 1 && (tok[0] == 'r' || tok[0] == 'w'):
			if cur == nil {
				return nil, p.errf(ln, "access before any 'warp' header")
			}
			e := TraceEntry{Write: tok[0] == 'w'}
			for {
				a, ok, err := p.lineWord()
				if err != nil {
					return nil, p.errf(ln, "%v", err)
				}
				if !ok {
					break
				}
				addr, perr := parseHex(a)
				if perr != nil {
					return nil, p.errf(ln, "bad address %q: %v", a, perr)
				}
				e.Addrs = append(e.Addrs, addr)
			}
			if len(e.Addrs) == 0 {
				return nil, p.errf(ln, "access with no address")
			}
			cur = append(cur, e)
		case len(tok) == 1 && tok[0] == 'c':
			if len(cur) == 0 {
				return nil, p.errf(ln, "compute gap before any access")
			}
			gapTok, ok, err := p.lineWord()
			if err != nil {
				return nil, p.errf(ln, "%v", err)
			}
			if !ok {
				return nil, p.errf(ln, "malformed compute gap")
			}
			n, perr := parseDec(gapTok)
			if perr != nil || n < 0 {
				return nil, p.errf(ln, "bad compute gap %q", gapTok)
			}
			if extra, ok, err := p.lineWord(); err != nil {
				return nil, p.errf(ln, "%v", err)
			} else if ok {
				return nil, p.errf(ln, "malformed compute gap: extra field %q", extra)
			}
			cur[len(cur)-1].ComputeGap = n
		default:
			return nil, p.errf(ln, "unknown directive %q", tok)
		}
	}
	flush()
	if len(ts.Warps) == 0 {
		return nil, fmt.Errorf("trace %s: no warps", name)
	}
	for i, w := range ts.Warps {
		if len(w) == 0 {
			return nil, fmt.Errorf("trace %s: warp %d has no accesses", name, i)
		}
	}
	return ts, nil
}

var wordWarp = []byte("warp")

// traceParser tokenizes the text format without materializing lines: tokens
// are sliced straight out of a refill buffer (copied into one reusable
// scratch only when they straddle a refill boundary), comments are skipped
// with an indexed newline scan, and the line counter advances as newlines
// are consumed. Returned token slices are valid until the next token read.
type traceParser struct {
	name  string
	src   io.Reader
	buf   []byte
	pos   int // next unread byte in buf
	end   int // valid bytes in buf
	line  int
	tok   []byte // scratch for boundary-straddling tokens
	onLin bool   // a word has been read on the current line (disables comments)
}

const traceParserBuf = 128 << 10

// errf prefixes a parse error with the trace name and line.
func (p *traceParser) errf(ln int, format string, args ...any) error {
	return fmt.Errorf("trace %s:%d: "+format, append([]any{p.name, ln}, args...)...)
}

// fill refreshes the buffer; io.EOF means no bytes remain.
func (p *traceParser) fill() error {
	if p.buf == nil {
		p.buf = make([]byte, traceParserBuf)
	}
	p.pos, p.end = 0, 0
	for {
		n, err := p.src.Read(p.buf)
		if n > 0 {
			p.end = n
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// word returns the next token, skipping blank lines and comments; ok is
// false at end of input.
func (p *traceParser) word() ([]byte, bool, error) {
	for {
		tok, ok, err := p.lineWord()
		if err != nil || ok {
			return tok, ok, err
		}
		// lineWord consumed a newline, or the input is exhausted.
		if p.pos == p.end {
			if err := p.fill(); err != nil {
				if err == io.EOF {
					return nil, false, nil
				}
				return nil, false, err
			}
		}
	}
}

// lineWord returns the next token on the current line; ok is false when the
// line ended (the newline is consumed) or input ended. A '#' opening a line
// starts a comment through end of line.
func (p *traceParser) lineWord() ([]byte, bool, error) {
	// Skip horizontal whitespace; handle newline and comment openers.
	for {
		if p.pos == p.end {
			if err := p.fill(); err != nil {
				if err == io.EOF {
					return nil, false, nil
				}
				return nil, false, err
			}
		}
		c := p.buf[p.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			p.pos++
			continue
		}
		if c == '\n' {
			p.pos++
			p.line++
			p.onLin = false
			return nil, false, nil
		}
		if c == '#' && !p.onLin {
			// Comment: discard through end of line.
			for {
				if i := bytes.IndexByte(p.buf[p.pos:p.end], '\n'); i >= 0 {
					p.pos += i + 1
					p.line++
					return nil, false, nil
				}
				p.pos = p.end
				if err := p.fill(); err != nil {
					if err == io.EOF {
						return nil, false, nil
					}
					return nil, false, err
				}
			}
		}
		break
	}
	// Scan the token; the common case is one contiguous slice of buf.
	p.tok = p.tok[:0]
	start := p.pos
	for {
		i := start
		for i < p.end {
			c := p.buf[i]
			if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				break
			}
			i++
		}
		if i < p.end {
			p.pos = i
			p.onLin = true
			if len(p.tok) == 0 {
				return p.buf[start:i], true, nil
			}
			p.tok = append(p.tok, p.buf[start:i]...)
			return p.tok, true, nil
		}
		// The token continues past the buffer: save and refill.
		p.tok = append(p.tok, p.buf[start:p.end]...)
		p.pos = p.end
		if err := p.fill(); err != nil {
			if err == io.EOF {
				p.onLin = true
				return p.tok, true, nil
			}
			return nil, false, err
		}
		start = 0
	}
}

// parseHex parses a hexadecimal address with an optional 0x prefix straight
// from token bytes (no string conversion, no allocation).
func parseHex(b []byte) (uint64, error) {
	if len(b) >= 2 && b[0] == '0' && b[1] == 'x' {
		b = b[2:]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("empty hex number")
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid hex digit %q", c)
		}
		if v > math.MaxUint64>>4 {
			return 0, fmt.Errorf("value overflows 64 bits")
		}
		v = v<<4 | d
	}
	return v, nil
}

// parseDec parses a decimal integer (optional sign) from token bytes.
func parseDec(b []byte) (int, error) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid digit %q", c)
		}
		v = v*10 + int64(c-'0')
		if v > math.MaxInt32 {
			return 0, fmt.Errorf("value out of range")
		}
	}
	if neg {
		v = -v
	}
	return int(v), nil
}

// WriteText writes the trace in the canonical text format: one "warp" header
// per warp, one access per line with 0x-prefixed lowercase-hex addresses, a
// "c" line after each entry with a positive compute gap. ParseTrace of the
// output reproduces the TraceSet exactly (masktrace convert round-trips
// through this).
func (ts *TraceSet) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, warp := range ts.Warps {
		fmt.Fprintf(bw, "warp %d\n", i)
		for _, e := range warp {
			op := byte('r')
			if e.Write {
				op = 'w'
			}
			bw.WriteByte(op)
			for _, a := range e.Addrs {
				fmt.Fprintf(bw, " 0x%x", a)
			}
			bw.WriteByte('\n')
			if e.ComputeGap > 0 {
				fmt.Fprintf(bw, "c %d\n", e.ComputeGap)
			}
		}
	}
	return bw.Flush()
}

// LoadTrace reads a trace in either supported format — textual (optionally
// gzip-compressed) or binary .mtb (ditto) — sniffing the format from the
// stream's leading bytes.
func LoadTrace(name string, r io.Reader) (*TraceSet, error) {
	br, err := streamio.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", name, err)
	}
	magic, _ := br.Peek(len(mtbMagic))
	if bytes.Equal(magic, mtbMagic) {
		return DecodeMTB(name, br)
	}
	return ParseTrace(name, br)
}

// LoadTraceFile loads path via LoadTrace, naming the workload TraceName(path)
// so results are identical however the same trace is stored (text, .mtb,
// either gzipped).
func LoadTraceFile(path string) (*TraceSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTrace(TraceName(path), f)
}

// TraceName derives a workload label from a trace file path: the base name
// with the compression suffix and one trace-format suffix stripped, so
// "traces/mum.trace", "mum.trace.gz" and "mum.mtb" all label the workload
// "mum".
func TraceName(path string) string {
	name := filepath.Base(strings.TrimSpace(path))
	name = strings.TrimSuffix(name, ".gz")
	for _, ext := range []string{".mtb", ".trace", ".txt"} {
		if strings.HasSuffix(name, ext) {
			name = strings.TrimSuffix(name, ext)
			break
		}
	}
	return name
}

// Pages enumerates every distinct page address touched by the trace, for
// page-table pre-population.
func (ts *TraceSet) Pages(pageSize int) []uint64 {
	shift := pageShiftFor(pageSize)
	seen := map[uint64]bool{}
	var out []uint64
	for _, warp := range ts.Warps {
		for _, e := range warp {
			for _, a := range e.Addrs {
				page := (a >> shift) << shift
				if !seen[page] {
					seen[page] = true
					out = append(out, page)
				}
			}
		}
	}
	return out
}

// NewStream builds a replaying Stream for one warp of the trace. The
// returned Stream satisfies the same contract as Profile.NewStream; group
// sync does not apply to traces (the trace itself encodes inter-warp
// timing).
func (ts *TraceSet) NewStream(warpIndex, pageSize, lineSize int) *Stream {
	shift := pageShiftFor(pageSize)
	return &Stream{
		pageShift: shift,
		lineSize:  uint64(lineSize),
		replay:    ts.Warps[warpIndex%len(ts.Warps)],
	}
}
