package workload

import (
	"testing"
	"testing/quick"
)

func TestAllThirtyBenchmarksExist(t *testing.T) {
	names := Names()
	if len(names) != 30 {
		t.Fatalf("%d benchmarks defined, want 30 (Figures 5/6)", len(names))
	}
	for _, n := range names {
		p := MustByName(n)
		if p.Name != n {
			t.Fatalf("profile %q has Name %q", n, p.Name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestTable2Quadrants(t *testing.T) {
	// The paper's Table 2 classification must be encoded faithfully.
	table2 := map[string][2]MissClass{
		"LUD": {Low, Low}, "NN": {Low, Low},
		"BFS2": {Low, High}, "FFT": {Low, High}, "HISTO": {Low, High},
		"NW": {Low, High}, "QTC": {Low, High}, "RAY": {Low, High},
		"SAD": {Low, High}, "SCP": {Low, High},
		"BP": {High, Low}, "GUP": {High, Low}, "HS": {High, Low}, "LPS": {High, Low},
		"3DS": {High, High}, "BLK": {High, High}, "CFD": {High, High},
		"CONS": {High, High}, "FWT": {High, High}, "LUH": {High, High},
		"MM": {High, High}, "MUM": {High, High}, "RED": {High, High},
		"SC": {High, High}, "SCAN": {High, High}, "SRAD": {High, High},
		"TRD": {High, High},
	}
	for name, want := range table2 {
		p := MustByName(name)
		if p.L1Class != want[0] || p.L2Class != want[1] {
			t.Errorf("%s classified %v/%v, Table 2 says %v/%v",
				name, p.L1Class, p.L2Class, want[0], want[1])
		}
	}
}

func TestPairs35(t *testing.T) {
	if len(Pairs35) != 35 {
		t.Fatalf("%d pairs, want 35", len(Pairs35))
	}
	for _, p := range Pairs35 {
		MustByName(p.A)
		MustByName(p.B)
	}
	zero, one, two := PairsByCategory()
	if len(zero)+len(one)+len(two) != 35 {
		t.Fatal("category split lost pairs")
	}
	if len(zero) != 8 {
		t.Fatalf("0-HMR has %d pairs, want 8 (Figure 12)", len(zero))
	}
}

func TestParsePair(t *testing.T) {
	p, err := ParsePair("3DS_HISTO")
	if err != nil || p.A != "3DS" || p.B != "HISTO" {
		t.Fatalf("ParsePair: %+v, %v", p, err)
	}
	if _, err := ParsePair("NOPE_HISTO"); err == nil {
		t.Fatal("bad pair accepted")
	}
	if _, err := ParsePair("NOUNDERSCORE"); err == nil {
		t.Fatal("malformed pair accepted")
	}
}

func TestHMRCount(t *testing.T) {
	if (Pair{A: "3DS", B: "CONS"}).HMRCount() != 2 {
		t.Fatal("3DS_CONS should be 2-HMR")
	}
	if (Pair{A: "HISTO", B: "GUP"}).HMRCount() != 0 {
		t.Fatal("HISTO_GUP should be 0-HMR")
	}
}

func streamCfg(warp, numWarps int) StreamConfig {
	return StreamConfig{
		Base: 1 << 32, PageSize: 4096, LineSize: 64,
		WarpIndex: warp, NumWarps: numWarps, Seed: 42,
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := MustByName("3DS")
	s1 := p.NewStream(streamCfg(0, 64))
	s2 := p.NewStream(streamCfg(0, 64))
	for i := 0; i < 500; i++ {
		a := s1.NextMem()
		b := s2.NextMem()
		if a.Write != b.Write || len(a.Pages) != len(b.Pages) {
			t.Fatalf("streams diverged at inst %d", i)
		}
		for j := range a.Pages {
			if a.Pages[j].Lines[0] != b.Pages[j].Lines[0] {
				t.Fatalf("streams diverged at inst %d page %d", i, j)
			}
		}
		if s1.NextComputeGap() != s2.NextComputeGap() {
			t.Fatalf("compute gaps diverged at inst %d", i)
		}
	}
}

// Property: every address a stream generates lies on a page enumerated by
// PagesToMap — the simulator's pre-mapping covers all traffic.
func TestStreamAddressesWithinMappedSet(t *testing.T) {
	for _, name := range []string{"3DS", "HISTO", "GUP", "NN", "MUM"} {
		p := MustByName(name)
		const numWarps = 128
		mapped := map[uint64]bool{}
		shift := uint(12)
		for _, va := range p.PagesToMap(1<<32, 4096, numWarps) {
			mapped[va>>shift] = true
		}
		for warp := 0; warp < numWarps; warp += 17 {
			s := p.NewStream(streamCfg(warp, numWarps))
			for i := 0; i < 2000; i++ {
				inst := s.NextMem()
				for _, pg := range inst.Pages {
					for _, va := range pg.Lines {
						if !mapped[va>>shift] {
							t.Fatalf("%s warp %d generated unmapped page %#x",
								name, warp, va>>shift)
						}
					}
				}
			}
		}
	}
}

func TestMemInstShape(t *testing.T) {
	p := MustByName("MM") // LinesPerInst 16, Divergence 2
	s := p.NewStream(streamCfg(0, 64))
	sawDiverged := false
	for i := 0; i < 2000; i++ {
		inst := s.NextMem()
		if len(inst.Pages) < 1 {
			t.Fatal("instruction with no pages")
		}
		if len(inst.Pages[0].Lines) != p.LinesPerInst {
			t.Fatalf("primary page has %d lines, want %d", len(inst.Pages[0].Lines), p.LinesPerInst)
		}
		// All lines of one PageAccess must share a page.
		for _, pg := range inst.Pages {
			vpn := pg.Lines[0] >> 12
			for _, va := range pg.Lines {
				if va>>12 != vpn {
					t.Fatal("PageAccess spans pages")
				}
			}
		}
		if len(inst.Pages) > 1 {
			sawDiverged = true
		}
	}
	if !sawDiverged {
		t.Fatal("divergent profile never diverged")
	}
}

func TestWarpGroupsShareStreams(t *testing.T) {
	p := MustByName("3DS") // WarpsPerGroup 32
	a := p.NewStream(streamCfg(0, 64))
	b := p.NewStream(streamCfg(1, 64))  // same group
	c := p.NewStream(streamCfg(32, 64)) // next group
	aInst := a.NextMem().Pages[0].Lines[0]
	bInst := b.NextMem().Pages[0].Lines[0]
	cInst := c.NextMem().Pages[0].Lines[0]
	if aInst != bInst {
		t.Fatal("group members generated different streams")
	}
	if aInst == cInst {
		t.Fatal("distinct groups generated identical first accesses")
	}
}

func TestVAStrideSpreadsPages(t *testing.T) {
	p := MustByName("3DS")
	if p.VAStridePages < 2 {
		t.Skip("profile not strided")
	}
	vas := p.PagesToMap(0, 4096, 64)
	if len(vas) < 2 {
		t.Fatal("too few pages")
	}
	gap := vas[1] - vas[0]
	if gap != uint64(p.VAStridePages)*4096 {
		t.Fatalf("page gap %d, want stride %d pages", gap, p.VAStridePages)
	}
}

func TestGroupSync(t *testing.T) {
	g := NewGroupSync(3, 4)
	for i := 0; i < 4; i++ {
		g.Advance(0)
	}
	if !g.Stalled(0) {
		t.Fatal("member 4 ahead of window 4 not stalled")
	}
	if g.Stalled(1) {
		t.Fatal("slow member stalled")
	}
	// Others catch up; member 0 unblocks.
	for i := 0; i < 2; i++ {
		g.Advance(1)
		g.Advance(2)
	}
	if g.Stalled(0) {
		t.Fatal("member 0 still stalled after others caught up")
	}
	if g.Lag(0) != 2 {
		t.Fatalf("lag=%d, want 2", g.Lag(0))
	}
}

func TestStreamFactorySharesSync(t *testing.T) {
	p := MustByName("3DS")
	f := NewStreamFactory(p, 1<<32, 4096, 64, 64, 7)
	a := f.New(0)
	b := f.New(1)
	if a.sync == nil || a.sync != b.sync {
		t.Fatal("group members do not share sync state")
	}
	c := f.New(32)
	if c.sync == a.sync {
		t.Fatal("different groups share sync state")
	}
}

func TestLayoutMonotonic(t *testing.T) {
	f := func(hotKB, privKB uint16, warps uint8) bool {
		p := Profile{HotBytes: int(hotKB) << 10, PrivateBytes: int(privKB) << 10,
			WarpsPerGroup: 8}
		n := int(warps)%256 + 8
		hot, priv := p.Layout(4096, n)
		return hot >= 1 && priv >= uint64(p.groups(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewAppSeedsDiffer(t *testing.T) {
	a := NewApp(0, "3DS")
	b := NewApp(1, "3DS")
	if a.Seed == b.Seed {
		t.Fatal("same benchmark in different slots got identical seeds")
	}
	if a.Profile.Name != "3DS" {
		t.Fatal("NewApp lost the profile")
	}
}
