package workload

import "testing"

func BenchmarkNextMem(b *testing.B) {
	p := MustByName("3DS")
	s := p.NewStream(StreamConfig{
		Base: 1 << 32, PageSize: 4096, LineSize: 64,
		WarpIndex: 0, NumWarps: 64, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NextMem()
	}
}
