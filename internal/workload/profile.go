// Package workload synthesises the memory behaviour of the paper's GPGPU
// benchmarks.
//
// The paper characterises applications by their position in a two-axis miss
// space (Table 2: L1 TLB miss rate low/high × L2 TLB miss rate low/high) plus
// memory intensity, divergence, and locality. Each named benchmark is
// reproduced as a Profile: a parameterised stochastic address-stream
// generator whose parameters are calibrated to land in the same quadrant and
// to exercise the same mechanisms (per-warp streaming, page sharing across
// warps, random scatter, write intensity, row-buffer locality).
//
// Streams are deterministic: all draws come from per-warp xorshift64*
// sources seeded from the app seed, so a simulation is exactly repeatable.
package workload

import (
	"fmt"

	"masksim/internal/rng"
)

// pageShiftFor returns log2(pageSize). Page sizes must be positive powers of
// two; anything else would silently misalign every page mask downstream, so
// the helper panics with the offending value instead. Every page-size shift
// computation in this package goes through here.
func pageShiftFor(pageSize int) uint {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("workload: page size %d is not a positive power of two", pageSize))
	}
	shift := uint(0)
	for 1<<shift < pageSize {
		shift++
	}
	return shift
}

// MissClass labels a benchmark's TLB miss-rate class per Table 2.
type MissClass uint8

// Miss-rate classes.
const (
	Low MissClass = iota
	High
)

// String returns "low" or "high".
func (c MissClass) String() string {
	if c == High {
		return "high"
	}
	return "low"
}

// Profile is the tunable model of one benchmark's memory behaviour.
type Profile struct {
	Name string

	// HotBytes is the size of the region shared by all warps (drives the
	// cross-warp translation sharing that makes one TLB miss stall many
	// warps, §4.1). PrivateBytes is divided into per-warp chunks.
	HotBytes     int
	PrivateBytes int

	// HotProb is the probability a new-page selection targets the hot
	// region rather than the warp's private chunk.
	HotProb float64
	// PageStayProb is the probability an access stays within the warp's
	// current page (within-page spatial locality).
	PageStayProb float64
	// SeqProb is the probability a private new-page selection advances
	// sequentially (streaming) rather than jumping at random.
	SeqProb float64

	// ComputePerMem is the mean number of compute instructions between
	// memory instructions (memory intensity knob).
	ComputePerMem int
	// Divergence is the number of distinct pages a single memory
	// instruction touches after coalescing (1 = fully coalesced).
	Divergence int
	// DivergeProb is the probability a memory instruction actually diverges
	// (touches Divergence pages instead of one). Divergent accesses pick
	// per-warp pages, so every such access needs its own translation.
	// Defaults to 1 when Divergence > 1.
	DivergeProb float64
	// ScatterHotFrac is the fraction of divergent-lane pages drawn from the
	// hot region (reusable translations) versus the whole footprint (cold
	// translations with uncached page-table leaves). See Stream.scatterPage.
	ScatterHotFrac float64
	// LinesPerInst is the number of cache lines a warp's coalesced access
	// touches on its primary page (a 64-thread warp touching consecutive
	// 4-byte elements covers several 64B lines). Divergent extra pages get
	// one line each.
	LinesPerInst int
	// WriteFrac is the fraction of memory instructions that are stores.
	WriteFrac float64
	// RandomLines scatters accesses within a page instead of walking it
	// sequentially; it destroys DRAM row-buffer locality.
	RandomLines bool

	// VAStridePages spaces consecutive logical pages this many page slots
	// apart in the virtual address space, modelling the sparse, multi-GB
	// allocations of real GPGPU workloads. Sparse layouts populate many
	// page-table leaf (and next-level) nodes, which is what produces the
	// paper's per-level walk hit-rate gradient (99.8/98.8/68.7/1.0%, §4.3):
	// with a dense layout the whole radix table fits in a few cache lines
	// and every walk level would hit. 0 or 1 means dense.
	VAStridePages int

	// WarpsPerGroup makes groups of adjacent warps execute identical
	// streams over a shared private chunk, modelling thread blocks working
	// on adjacent data. Grouping is what makes a single TLB miss stall many
	// warps at once (§4.1/Figure 6): every warp in the group needs the same
	// translation at nearly the same time. 0 or 1 disables grouping.
	WarpsPerGroup int

	// L1Class and L2Class record the Table 2 quadrant this profile is
	// calibrated for (documentation + test oracle).
	L1Class, L2Class MissClass
}

// HighHigh reports whether the profile is in the high/high quadrant; the
// paper calls these "HMR" applications and groups workloads by how many
// members have both miss rates high (n-HMR, §6).
func (p Profile) HighHigh() bool {
	return p.L1Class == High && p.L2Class == High
}

// PageAccess is the coalesced portion of a memory instruction falling on one
// virtual page: one translation covers all its lines.
type PageAccess struct {
	// Lines holds line-aligned virtual byte addresses, all on one page.
	Lines []uint64
}

// MemInst is one warp-level memory instruction after coalescing: accesses
// grouped by distinct page, plus the store flag.
type MemInst struct {
	Pages []PageAccess
	Write bool
}

// Stream generates one warp's instruction stream.
type Stream struct {
	p   Profile
	rnd *rng.Source
	// scatterRnd drives divergent-lane page selection. It is seeded per
	// warp (not per group): divergent accesses touch different pages in
	// different warps, so they do not coalesce across the group — each one
	// demands its own translation, a major source of page-walk pressure.
	scatterRnd *rng.Source
	pageShift  uint
	lineSize   uint64

	base      uint64 // VA base of the app's heap
	hotPages  uint64
	privStart uint64 // first page index of this warp's private chunk
	privLen   uint64
	totPages  uint64 // hot + all private (for divergent scatter)

	curPage uint64 // current page index (app-relative)
	curLine uint64

	sync       *GroupSync
	syncMember int

	// replay, when non-nil, makes the stream replay an external trace
	// (TraceSet) instead of generating synthetic accesses.
	replay    []TraceEntry
	replayPos int
	replayGap int

	lineStore []uint64
	pageBuf   []PageAccess
}

// SyncStalled reports whether the warp must wait for its group's slower
// members before issuing another memory instruction (thread-block barrier
// model; see GroupSync).
func (s *Stream) SyncStalled() bool {
	return s.sync != nil && s.sync.Stalled(s.syncMember)
}

// StreamConfig carries the placement parameters the simulator knows at
// wiring time.
type StreamConfig struct {
	// Base is the app's heap base virtual address.
	Base uint64
	// PageSize is the data page size in bytes (4KB or 2MB).
	PageSize int
	// LineSize is the cache line size in bytes.
	LineSize int
	// WarpIndex is this warp's global index within the app; NumWarps is the
	// app's total warp count across its cores.
	WarpIndex, NumWarps int
	// Seed decorrelates apps and runs.
	Seed uint64
}

// groups returns the number of warp groups for numWarps warps.
func (p Profile) groups(numWarps int) int {
	g := p.WarpsPerGroup
	if g < 1 {
		g = 1
	}
	n := (numWarps + g - 1) / g
	if n < 1 {
		n = 1
	}
	return n
}

// Layout computes the page-region geometry shared by NewStream and
// PagesToMap, guaranteeing they agree.
func (p Profile) Layout(pageSize, numWarps int) (hotPages, privTotal uint64) {
	ps := uint64(pageSize)
	hotPages = uint64(p.HotBytes) / ps
	if hotPages < 1 {
		hotPages = 1
	}
	privTotal = uint64(p.PrivateBytes) / ps
	if g := uint64(p.groups(numWarps)); privTotal < g {
		privTotal = g // at least one private page per warp group
	}
	return
}

// TotalPages returns the number of distinct pages the app can touch.
func (p Profile) TotalPages(pageSize, numWarps int) uint64 {
	hot, priv := p.Layout(pageSize, numWarps)
	return hot + priv
}

// NewStream builds the generator for one warp.
func (p Profile) NewStream(cfg StreamConfig) *Stream {
	shift := pageShiftFor(cfg.PageSize)
	hot, priv := p.Layout(cfg.PageSize, cfg.NumWarps)
	numGroups := p.groups(cfg.NumWarps)
	g := p.WarpsPerGroup
	if g < 1 {
		g = 1
	}
	group := cfg.WarpIndex / g
	if group >= numGroups {
		group = numGroups - 1
	}
	chunk := priv / uint64(numGroups)
	if chunk < 1 {
		chunk = 1
	}
	start := hot + uint64(group)*chunk
	// Warps in one group share a seed so they generate identical streams:
	// they need the same translations at nearly the same time, which is how
	// a single TLB miss comes to stall a whole group (§4.1).
	s := &Stream{
		p:          p,
		rnd:        rng.New(cfg.Seed ^ (uint64(group)+1)*0x9E3779B97F4A7C15),
		scatterRnd: rng.New(cfg.Seed ^ (uint64(cfg.WarpIndex)+1)*0xD1B54A32D192ED03),
		pageShift:  shift,
		lineSize:   uint64(cfg.LineSize),
		base:       cfg.Base,
		hotPages:   hot,
		privStart:  start,
		privLen:    chunk,
		totPages:   hot + priv,
		curPage:    start,
	}
	if s.p.Divergence < 1 {
		s.p.Divergence = 1
	}
	if s.p.LinesPerInst < 1 {
		s.p.LinesPerInst = 1
	}
	s.lineStore = make([]uint64, 0, s.p.LinesPerInst+s.p.Divergence)
	s.pageBuf = make([]PageAccess, 0, s.p.Divergence)
	return s
}

// linesPerPage returns how many cache lines fit in a page.
func (s *Stream) linesPerPage() uint64 {
	return (uint64(1) << s.pageShift) / s.lineSize
}

// newPage picks the next page for the warp and makes it current.
func (s *Stream) newPage() {
	if s.rnd.Bool(s.p.HotProb) && s.hotPages > 0 {
		// Hot region: mildly sequential so hot pages also enjoy row hits.
		if s.rnd.Bool(0.5) {
			s.curPage = (s.curPage + 1) % s.hotPages
		} else {
			s.curPage = uint64(s.rnd.Intn(int(s.hotPages)))
		}
		return
	}
	if s.rnd.Bool(s.p.SeqProb) {
		// Stream through the private chunk.
		next := s.curPage + 1
		if next < s.privStart || next >= s.privStart+s.privLen {
			next = s.privStart
		}
		s.curPage = next
		return
	}
	s.curPage = s.privStart + uint64(s.rnd.Intn(int(s.privLen)))
}

// scatterPage picks a page for a divergent lane. Scatter pages are per-warp
// (uncoalesced), so each one demands its own translation. With probability
// ScatterHotFrac the lane indexes a shared structure in the hot region
// (reuse distance the shared L2 TLB — and MASK's TLB-Fill Tokens — can
// capture); otherwise it lands anywhere in the footprint (a cold page whose
// walk reads uncached leaf PTEs, the expensive walks MASK's L2 bypass and
// DRAM scheduler attack).
func (s *Stream) scatterPage() uint64 {
	hotFrac := s.p.ScatterHotFrac
	if s.hotPages < 64 {
		hotFrac = 0
	}
	if hotFrac > 0 && s.rnd.Bool(hotFrac) {
		// Real divergent references are heavily skewed (popular graph
		// vertices, hash-table heads): most land on a small "head" of the
		// hot region, the rest anywhere in it. The head's reuse distance is
		// what a well-managed shared TLB can capture — and what fill
		// thrashing from the tail destroys, giving TLB-Fill Tokens their
		// opportunity (§5.2).
		if s.rnd.Bool(0.7) {
			head := s.hotPages / 8
			if head < 16 {
				head = 16
			}
			return uint64(s.rnd.Intn(int(head)))
		}
		return uint64(s.rnd.Intn(int(s.hotPages)))
	}
	return uint64(s.scatterRnd.Intn(int(s.totPages)))
}

// stride returns the VA spacing multiplier between logical pages.
func (s *Stream) stride() uint64 {
	if s.p.VAStridePages > 1 {
		return uint64(s.p.VAStridePages)
	}
	return 1
}

// addrFor returns a line-aligned VA within page for the current line cursor.
func (s *Stream) addrFor(page uint64) uint64 {
	lpp := s.linesPerPage()
	var line uint64
	if s.p.RandomLines {
		line = uint64(s.rnd.Intn(int(lpp)))
	} else {
		s.curLine = (s.curLine + 1) % lpp
		line = s.curLine
	}
	return s.base + (page*s.stride())<<s.pageShift + line*s.lineSize
}

// NextMem generates the warp's next memory instruction. The returned
// structure reuses buffers owned by the stream; it stays valid until the
// next NextMem call (the core consumes one instruction per warp at a time,
// and a stream belongs to one warp).
func (s *Stream) NextMem() MemInst {
	if s.replay != nil {
		return s.nextReplay()
	}
	if s.sync != nil {
		s.sync.Advance(s.syncMember)
	}
	if !s.rnd.Bool(s.p.PageStayProb) {
		s.newPage()
	}
	// Build all line addresses into one backing store, then slice per page;
	// the store's capacity is fixed after warm-up, so no per-call
	// allocation occurs in steady state.
	s.lineStore = s.lineStore[:0]
	for i := 0; i < s.p.LinesPerInst; i++ {
		s.lineStore = append(s.lineStore, s.addrFor(s.curPage))
	}
	extras := 0
	if s.p.Divergence > 1 {
		dp := s.p.DivergeProb
		if dp == 0 {
			dp = 1
		}
		// Draw from the group RNG so all warps of a group diverge on the
		// same instructions (they execute the same code path); the pages
		// they diverge TO are per-warp.
		if s.rnd.Bool(dp) {
			extras = s.p.Divergence - 1
		}
	}
	for i := 0; i < extras; i++ {
		s.lineStore = append(s.lineStore, s.addrFor(s.scatterPage()))
	}
	s.pageBuf = s.pageBuf[:0]
	s.pageBuf = append(s.pageBuf, PageAccess{Lines: s.lineStore[:s.p.LinesPerInst]})
	for i := 0; i < extras; i++ {
		off := s.p.LinesPerInst + i
		s.pageBuf = append(s.pageBuf, PageAccess{Lines: s.lineStore[off : off+1]})
	}
	return MemInst{Pages: s.pageBuf, Write: s.rnd.Bool(s.p.WriteFrac)}
}

// nextReplay serves the next trace entry, grouping its addresses by page.
func (s *Stream) nextReplay() MemInst {
	e := s.replay[s.replayPos]
	s.replayPos = (s.replayPos + 1) % len(s.replay)
	s.replayGap = e.ComputeGap

	s.lineStore = append(s.lineStore[:0], e.Addrs...)
	s.pageBuf = s.pageBuf[:0]
	// Group consecutive addresses on the same page into one PageAccess.
	start := 0
	for i := 1; i <= len(s.lineStore); i++ {
		if i == len(s.lineStore) || s.lineStore[i]>>s.pageShift != s.lineStore[start]>>s.pageShift {
			s.pageBuf = append(s.pageBuf, PageAccess{Lines: s.lineStore[start:i]})
			start = i
		}
	}
	return MemInst{Pages: s.pageBuf, Write: e.Write}
}

// NextComputeGap returns the number of compute instructions to issue before
// the next memory instruction.
func (s *Stream) NextComputeGap() int {
	if s.replay != nil {
		return s.replayGap
	}
	c := s.p.ComputePerMem
	if c <= 0 {
		return 0
	}
	jitter := c/2 + 1
	g := c + s.rnd.Intn(jitter) - jitter/2
	if g < 0 {
		g = 0
	}
	return g
}

// PagesToMap enumerates every virtual address (one per page) the app's warps
// can touch, so the simulator can pre-populate the page table. The paper
// scopes out demand paging (§5.5); pages are mapped at load time.
func (p Profile) PagesToMap(base uint64, pageSize, numWarps int) []uint64 {
	hot, priv := p.Layout(pageSize, numWarps)
	total := hot + priv
	vas := make([]uint64, 0, total)
	shift := pageShiftFor(pageSize)
	stride := uint64(1)
	if p.VAStridePages > 1 {
		stride = uint64(p.VAStridePages)
	}
	for pg := uint64(0); pg < total; pg++ {
		vas = append(vas, base+(pg*stride)<<shift)
	}
	return vas
}
