package workload

// Checkpoint support: serializable images of the mutable stream state.
//
// A Stream's behavior is a pure function of its construction parameters
// (Profile, base, sizes, seed — all derivable from the simulator config) plus
// the mutable fields captured here, so restore rebuilds streams through the
// normal factories and then overwrites just this state.

// StreamState is the serializable image of one warp stream's mutable state.
// Synthetic streams use the RNG states and page/line cursors; trace-replay
// streams use the replay cursor and pending compute gap. Shared GroupSync
// state is captured separately (see GroupSyncState) because several streams
// reference one sync object.
type StreamState struct {
	Rnd        uint64
	ScatterRnd uint64
	CurPage    uint64
	CurLine    uint64
	ReplayPos  int
	ReplayGap  int
}

// State captures the stream's mutable state.
func (s *Stream) State() StreamState {
	st := StreamState{
		CurPage:   s.curPage,
		CurLine:   s.curLine,
		ReplayPos: s.replayPos,
		ReplayGap: s.replayGap,
	}
	if s.rnd != nil {
		st.Rnd = s.rnd.State()
	}
	if s.scatterRnd != nil {
		st.ScatterRnd = s.scatterRnd.State()
	}
	return st
}

// SetState restores a state captured by State onto a stream built with the
// identical construction parameters.
func (s *Stream) SetState(st StreamState) {
	s.curPage, s.curLine = st.CurPage, st.CurLine
	s.replayPos, s.replayGap = st.ReplayPos, st.ReplayGap
	if s.rnd != nil {
		s.rnd.SetState(st.Rnd)
	}
	if s.scatterRnd != nil {
		s.scatterRnd.SetState(st.ScatterRnd)
	}
}

// Sync returns the stream's shared group-sync object (nil for ungrouped
// profiles and trace replays). Checkpointing deduplicates syncs by pointer in
// stream-construction order, which is deterministic, so snapshot and restore
// enumerate the same sync sequence.
func (s *Stream) Sync() *GroupSync { return s.sync }

// GroupSyncState is the serializable image of one warp group's barrier state.
// The window is construction-time configuration and is not captured.
type GroupSyncState struct {
	Steps []int64
	Min   int64
}

// State captures the group's barrier state.
func (g *GroupSync) State() GroupSyncState {
	return GroupSyncState{Steps: append([]int64(nil), g.steps...), Min: g.min}
}

// SetState restores barrier state captured from a group with the same member
// count.
func (g *GroupSync) SetState(st GroupSyncState) {
	copy(g.steps, st.Steps)
	g.min = st.Min
}
