package workload

import (
	"fmt"
	"sort"
)

// The 30 benchmarks of the paper's Figures 5/6 (drawn from the CUDA SDK,
// Rodinia, Parboil, LULESH and SHOC suites), reproduced as synthetic
// profiles. Each profile's L1Class/L2Class matches the paper's Table 2
// categorisation; the three benchmarks absent from Table 2 (JPEG, LIB, SPMV)
// are classified from their Figure 5/6 behaviour.
//
// Calibration logic (see DESIGN.md):
//   - low L1 / low L2: small shared hot set, high within-page locality;
//   - low L1 / high L2: per-warp streaming over a large footprint — each
//     page is reused many times by its warp (L1 hits) but the aggregate
//     active set across 30 cores × 64 warps far exceeds 512 L2 TLB entries;
//   - high L1 / low L2: random jumps over a shared footprint that exceeds a
//     64-entry L1 TLB but fits the 512-entry L2 TLB when run alone — the
//     profiles that thrash once a co-runner appears (Figure 7);
//   - high L1 / high L2: random jumps over a large footprint.
var profiles = map[string]Profile{
	// ---- low L1 / low L2: small shared hot sets, strong locality ---------
	"LUD": {Name: "LUD", HotBytes: 448 << 10, PrivateBytes: 1 << 20, HotProb: 0.95,
		PageStayProb: 0.90, SeqProb: 0.8, ComputePerMem: 24, Divergence: 1, LinesPerInst: 8, WriteFrac: 0.20,
		WarpsPerGroup: 4, L1Class: Low, L2Class: Low},
	"NN": {Name: "NN", HotBytes: 384 << 10, PrivateBytes: 1 << 20, HotProb: 0.95,
		PageStayProb: 0.92, SeqProb: 0.9, ComputePerMem: 30, Divergence: 1, LinesPerInst: 4, WriteFrac: 0.10,
		WarpsPerGroup: 4, L1Class: Low, L2Class: Low},

	// ---- low L1 / high L2: grouped streaming over large footprints -------
	"BFS2": {Name: "BFS2", HotBytes: 64 << 10, PrivateBytes: 48 << 20, HotProb: 0.08,
		PageStayProb: 0.93, SeqProb: 0.55, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 2, WriteFrac: 0.15,
		RandomLines: true, VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"FFT": {Name: "FFT", HotBytes: 64 << 10, PrivateBytes: 64 << 20, HotProb: 0.05,
		PageStayProb: 0.93, SeqProb: 0.85, ComputePerMem: 8, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 16, WriteFrac: 0.40,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"HISTO": {Name: "HISTO", HotBytes: 96 << 10, PrivateBytes: 48 << 20, HotProb: 0.10,
		PageStayProb: 0.93, SeqProb: 0.9, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.30,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"NW": {Name: "NW", HotBytes: 64 << 10, PrivateBytes: 56 << 20, HotProb: 0.05,
		PageStayProb: 0.93, SeqProb: 0.95, ComputePerMem: 10, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 16, WriteFrac: 0.25,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"QTC": {Name: "QTC", HotBytes: 96 << 10, PrivateBytes: 40 << 20, HotProb: 0.08,
		PageStayProb: 0.93, SeqProb: 0.7, ComputePerMem: 12, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 8, WriteFrac: 0.10,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"RAY": {Name: "RAY", HotBytes: 128 << 10, PrivateBytes: 64 << 20, HotProb: 0.10,
		PageStayProb: 0.93, SeqProb: 0.6, ComputePerMem: 12, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 2, WriteFrac: 0.05,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"SAD": {Name: "SAD", HotBytes: 64 << 10, PrivateBytes: 48 << 20, HotProb: 0.05,
		PageStayProb: 0.93, SeqProb: 0.9, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.20,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"SCP": {Name: "SCP", HotBytes: 64 << 10, PrivateBytes: 56 << 20, HotProb: 0.05,
		PageStayProb: 0.93, SeqProb: 0.95, ComputePerMem: 8, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 16, WriteFrac: 0.30,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},
	"LIB": {Name: "LIB", HotBytes: 96 << 10, PrivateBytes: 40 << 20, HotProb: 0.08,
		PageStayProb: 0.93, SeqProb: 0.8, ComputePerMem: 10, Divergence: 2, DivergeProb: 0.08, ScatterHotFrac: 0.70, LinesPerInst: 8, WriteFrac: 0.15,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: Low, L2Class: High},

	// ---- high L1 / low L2: random jumps over shared medium footprints ----
	// Footprints exceed the 64-entry L1 TLB but fit the 512-entry shared L2
	// TLB when run alone; two co-runners overflow it (the Figure 7 story).
	"BP": {Name: "BP", HotBytes: 1280 << 10, PrivateBytes: 1 << 20, HotProb: 0.93,
		PageStayProb: 0.35, SeqProb: 0.5, ComputePerMem: 8, Divergence: 1, LinesPerInst: 4, WriteFrac: 0.25,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: High, L2Class: Low},
	"GUP": {Name: "GUP", HotBytes: 1408 << 10, PrivateBytes: 1 << 20, HotProb: 0.96,
		PageStayProb: 0.15, SeqProb: 0.2, ComputePerMem: 2, Divergence: 2, DivergeProb: 0.50, ScatterHotFrac: 0.70, LinesPerInst: 1, WriteFrac: 0.50,
		RandomLines: true, VAStridePages: 64, WarpsPerGroup: 8, L1Class: High, L2Class: Low},
	"HS": {Name: "HS", HotBytes: 1024 << 10, PrivateBytes: 1 << 20, HotProb: 0.92,
		PageStayProb: 0.40, SeqProb: 0.6, ComputePerMem: 16, Divergence: 1, LinesPerInst: 8, WriteFrac: 0.20,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: High, L2Class: Low},
	"LPS": {Name: "LPS", HotBytes: 1152 << 10, PrivateBytes: 1 << 20, HotProb: 0.93,
		PageStayProb: 0.35, SeqProb: 0.7, ComputePerMem: 10, Divergence: 1, LinesPerInst: 8, WriteFrac: 0.25,
		VAStridePages: 64, WarpsPerGroup: 8, L1Class: High, L2Class: Low},

	// ---- high L1 / high L2: frequent jumps between a hot region of a few
	// hundred pages (L2-TLB-scale reuse, the thrashing that TLB-Fill Tokens
	// attack) and a large streamed private region (compulsory misses whose
	// leaf PTEs cache poorly, the opportunity for the L2 bypass). ----------
	"3DS": {Name: "3DS", HotBytes: 4 << 20, PrivateBytes: 48 << 20, HotProb: 0.60,
		PageStayProb: 0.40, SeqProb: 0.4, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.20,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"BLK": {Name: "BLK", HotBytes: 3 << 20, PrivateBytes: 32 << 20, HotProb: 0.55,
		PageStayProb: 0.45, SeqProb: 0.5, ComputePerMem: 10, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 8, WriteFrac: 0.30,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"CFD": {Name: "CFD", HotBytes: 4 << 20, PrivateBytes: 48 << 20, HotProb: 0.55,
		PageStayProb: 0.40, SeqProb: 0.3, ComputePerMem: 8, Divergence: 3, DivergeProb: 0.35, ScatterHotFrac: 0.70, LinesPerInst: 8, WriteFrac: 0.25,
		RandomLines: true, VAStridePages: 64, WarpsPerGroup: 16, L1Class: High, L2Class: High},
	"CONS": {Name: "CONS", HotBytes: 3 << 20, PrivateBytes: 40 << 20, HotProb: 0.55,
		PageStayProb: 0.35, SeqProb: 0.5, ComputePerMem: 4, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.35,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"FWT": {Name: "FWT", HotBytes: 3 << 20, PrivateBytes: 32 << 20, HotProb: 0.55,
		PageStayProb: 0.45, SeqProb: 0.6, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.40,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"LUH": {Name: "LUH", HotBytes: 4 << 20, PrivateBytes: 48 << 20, HotProb: 0.60,
		PageStayProb: 0.40, SeqProb: 0.4, ComputePerMem: 12, Divergence: 3, DivergeProb: 0.35, ScatterHotFrac: 0.70, LinesPerInst: 8, WriteFrac: 0.30,
		VAStridePages: 64, WarpsPerGroup: 16, L1Class: High, L2Class: High},
	"MM": {Name: "MM", HotBytes: 4 << 20, PrivateBytes: 40 << 20, HotProb: 0.60,
		PageStayProb: 0.50, SeqProb: 0.7, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 16, WriteFrac: 0.15,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"MUM": {Name: "MUM", HotBytes: 4 << 20, PrivateBytes: 48 << 20, HotProb: 0.50,
		PageStayProb: 0.30, SeqProb: 0.2, ComputePerMem: 4, Divergence: 4, DivergeProb: 0.40, ScatterHotFrac: 0.70, LinesPerInst: 1, WriteFrac: 0.10,
		RandomLines: true, VAStridePages: 64, WarpsPerGroup: 16, L1Class: High, L2Class: High},
	"RED": {Name: "RED", HotBytes: 3 << 20, PrivateBytes: 40 << 20, HotProb: 0.55,
		PageStayProb: 0.40, SeqProb: 0.8, ComputePerMem: 2, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 16, WriteFrac: 0.45,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"SC": {Name: "SC", HotBytes: 3 << 20, PrivateBytes: 32 << 20, HotProb: 0.55,
		PageStayProb: 0.40, SeqProb: 0.5, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.35,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"SCAN": {Name: "SCAN", HotBytes: 3 << 20, PrivateBytes: 40 << 20, HotProb: 0.55,
		PageStayProb: 0.35, SeqProb: 0.85, ComputePerMem: 2, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 16, WriteFrac: 0.45,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"SRAD": {Name: "SRAD", HotBytes: 3 << 20, PrivateBytes: 32 << 20, HotProb: 0.55,
		PageStayProb: 0.45, SeqProb: 0.6, ComputePerMem: 6, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.30,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"TRD": {Name: "TRD", HotBytes: 4 << 20, PrivateBytes: 40 << 20, HotProb: 0.60,
		PageStayProb: 0.40, SeqProb: 0.5, ComputePerMem: 8, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 8, WriteFrac: 0.25,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"JPEG": {Name: "JPEG", HotBytes: 3 << 20, PrivateBytes: 32 << 20, HotProb: 0.55,
		PageStayProb: 0.45, SeqProb: 0.75, ComputePerMem: 8, Divergence: 2, DivergeProb: 0.25, ScatterHotFrac: 0.70, LinesPerInst: 12, WriteFrac: 0.30,
		VAStridePages: 64, WarpsPerGroup: 32, L1Class: High, L2Class: High},
	"SPMV": {Name: "SPMV", HotBytes: 3 << 20, PrivateBytes: 40 << 20, HotProb: 0.50,
		PageStayProb: 0.30, SeqProb: 0.3, ComputePerMem: 4, Divergence: 4, DivergeProb: 0.40, ScatterHotFrac: 0.70, LinesPerInst: 2, WriteFrac: 0.15,
		RandomLines: true, VAStridePages: 64, WarpsPerGroup: 16, L1Class: High, L2Class: High},
}

// ByName returns the named benchmark profile.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName for static names; it panics on unknown names.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// App is one application instance in a multi-programmed workload. Exactly
// one of Profile (synthetic) or Trace (external replay) drives its warps;
// Trace wins when both are set.
type App struct {
	ID      int
	Profile Profile
	Seed    uint64
	// Trace, when non-nil, replays an external address trace.
	Trace *TraceSet
}

// NewApp builds an app with a seed derived from its name and slot.
func NewApp(id int, name string) App {
	p := MustByName(name)
	var seed uint64 = 0xA5A5A5A5
	for _, c := range name {
		seed = seed*131 + uint64(c)
	}
	seed ^= uint64(id+1) * 0x9E3779B97F4A7C15
	return App{ID: id, Profile: p, Seed: seed}
}
