package workload

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
)

// benchTrace is the shared corpus: one mid-size trace rendered to every
// format once. Throughput numbers are normalized to the text representation
// size, so text/gzip/.mtb MB/s are directly comparable ("logical trace bytes
// parsed per second").
type benchCorpus struct {
	ts      *TraceSet
	text    []byte
	textGz  []byte
	mtb     []byte
	entries int
}

var corpus *benchCorpus

func getCorpus(tb testing.TB) *benchCorpus {
	if corpus != nil {
		return corpus
	}
	ts := genTrace(tb, 100, 500)
	var text bytes.Buffer
	if err := ts.WriteText(&text); err != nil {
		tb.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(text.Bytes())
	zw.Close()
	var mtb bytes.Buffer
	if err := ts.EncodeMTB(&mtb); err != nil {
		tb.Fatal(err)
	}
	entries := 0
	for _, w := range ts.Warps {
		entries += len(w)
	}
	corpus = &benchCorpus{ts: ts, text: text.Bytes(), textGz: gz.Bytes(), mtb: mtb.Bytes(), entries: entries}
	return corpus
}

func BenchmarkParseTraceText(b *testing.B) {
	c := getCorpus(b)
	b.SetBytes(int64(len(c.text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTrace("bench", bytes.NewReader(c.text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTraceTextLegacy(b *testing.B) {
	c := getCorpus(b)
	b.SetBytes(int64(len(c.text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parseTraceLegacy("bench", bytes.NewReader(c.text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTraceGzip(b *testing.B) {
	c := getCorpus(b)
	b.SetBytes(int64(len(c.text))) // logical bytes, see benchCorpus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTrace("bench", bytes.NewReader(c.textGz)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeMTB(b *testing.B) {
	c := getCorpus(b)
	b.SetBytes(int64(len(c.text))) // logical bytes, see benchCorpus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMTB("bench", bytes.NewReader(c.mtb)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeMTB(b *testing.B) {
	c := getCorpus(b)
	b.SetBytes(int64(len(c.text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.ts.EncodeMTB(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParseStreamAllocBudget is the streaming-parse peak-alloc gate (CI runs
// it by name): parsing must allocate O(output) — the TraceEntry and address
// slices the caller keeps — plus a constant, never per-line or per-token
// scratch. The legacy line parser spent ~9 allocations per entry on line
// splitting alone; the budget fails if per-token garbage creeps back in.
func TestParseStreamAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget needs steady allocation accounting")
	}
	c := getCorpus(t)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ParseTrace("bench", bytes.NewReader(c.text)); err != nil {
			t.Fatal(err)
		}
	})
	perEntry := allocs / float64(c.entries)
	// ~2.5 allocs/entry of pure output (entry-slice growth + one Addrs slice
	// per entry); 4 leaves headroom without hiding a per-token regression.
	if perEntry > 4 {
		t.Fatalf("streaming parse spends %.1f allocs per entry (%.0f total for %d entries), budget 4",
			perEntry, allocs, c.entries)
	}
	t.Logf("streaming parse: %.2f allocs/entry (%.0f total, %d entries)", perEntry, allocs, c.entries)

	// The binary decoder sits under the same budget.
	allocs = testing.AllocsPerRun(5, func() {
		if _, err := DecodeMTB("bench", bytes.NewReader(c.mtb)); err != nil {
			t.Fatal(err)
		}
	})
	perEntry = allocs / float64(c.entries)
	if perEntry > 4 {
		t.Fatalf("mtb decode spends %.1f allocs per entry, budget 4", perEntry)
	}
	t.Logf("mtb decode: %.2f allocs/entry", perEntry)
}

// parseTraceLegacy is the pre-streaming line-at-a-time parser (bufio.Scanner
// + strings.Fields), kept verbatim as the benchmark baseline the streaming
// parser's speedup is measured against.
func parseTraceLegacy(name string, r io.Reader) (*TraceSet, error) {
	const maxTraceLine = 16 << 20
	ts := &TraceSet{Name: name}
	var cur []TraceEntry
	flush := func() {
		if cur != nil {
			ts.Warps = append(ts.Warps, cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "warp":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace %s:%d: 'warp' takes exactly one index, got %q", name, lineNo, line)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("trace %s:%d: bad warp index %q", name, lineNo, fields[1])
			}
			flush()
			if idx != len(ts.Warps) {
				return nil, fmt.Errorf("trace %s:%d: warp index %d out of order (expected %d)", name, lineNo, idx, len(ts.Warps))
			}
			cur = []TraceEntry{}
		case "r", "w":
			if cur == nil {
				return nil, fmt.Errorf("trace %s:%d: access before any 'warp' header", name, lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("trace %s:%d: access with no address", name, lineNo)
			}
			e := TraceEntry{Write: fields[0] == "w"}
			for _, f := range fields[1:] {
				addr, err := strconv.ParseUint(strings.TrimPrefix(f, "0x"), 16, 64)
				if err != nil {
					return nil, fmt.Errorf("trace %s:%d: bad address %q: %v", name, lineNo, f, err)
				}
				e.Addrs = append(e.Addrs, addr)
			}
			cur = append(cur, e)
		case "c":
			if len(cur) == 0 {
				return nil, fmt.Errorf("trace %s:%d: compute gap before any access", name, lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace %s:%d: malformed compute gap", name, lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("trace %s:%d: bad compute gap %q", name, lineNo, fields[1])
			}
			cur[len(cur)-1].ComputeGap = n
		default:
			return nil, fmt.Errorf("trace %s:%d: unknown directive %q", name, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s:%d: %w", name, lineNo+1, err)
	}
	flush()
	if len(ts.Warps) == 0 {
		return nil, fmt.Errorf("trace %s: no warps", name)
	}
	return ts, nil
}

// TestLegacyParserAgrees pins the streaming parser to the legacy one on the
// benchmark corpus: same trace, entry for entry.
func TestLegacyParserAgrees(t *testing.T) {
	c := getCorpus(t)
	legacy, err := parseTraceLegacy("bench", bytes.NewReader(c.text))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ParseTrace("bench", bytes.NewReader(c.text))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Warps) != len(stream.Warps) {
		t.Fatalf("warp counts differ: %d vs %d", len(legacy.Warps), len(stream.Warps))
	}
	for i := range legacy.Warps {
		lw, sw := legacy.Warps[i], stream.Warps[i]
		if len(lw) != len(sw) {
			t.Fatalf("warp %d entry counts differ: %d vs %d", i, len(lw), len(sw))
		}
		for j := range lw {
			if lw[j].Write != sw[j].Write || lw[j].ComputeGap != sw[j].ComputeGap || len(lw[j].Addrs) != len(sw[j].Addrs) {
				t.Fatalf("warp %d entry %d differs: %+v vs %+v", i, j, lw[j], sw[j])
			}
			for k := range lw[j].Addrs {
				if lw[j].Addrs[k] != sw[j].Addrs[k] {
					t.Fatalf("warp %d entry %d addr %d differs", i, j, k)
				}
			}
		}
	}
}
