package workload

import "strings"

// Pair is a two-application workload, named the paper's way:
// "3DS_HISTO" runs 3DS and HISTO concurrently.
type Pair struct {
	A, B string
}

// Name returns the paper-style pair name.
func (p Pair) Name() string { return p.A + "_" + p.B }

// HMRCount returns how many members have both L1 and L2 TLB miss rates high
// (the paper's n-HMR workload categorisation, §6).
func (p Pair) HMRCount() int {
	n := 0
	if MustByName(p.A).HighHigh() {
		n++
	}
	if MustByName(p.B).HighHigh() {
		n++
	}
	return n
}

// ParsePair converts "A_B" into a Pair, validating both names.
func ParsePair(name string) (Pair, error) {
	i := strings.Index(name, "_")
	// Benchmark names contain no underscores, so the first underscore is the
	// separator... except names like "3DS" are clean; split on first "_".
	if i < 0 {
		return Pair{}, errBadPair(name)
	}
	a, b := name[:i], name[i+1:]
	if _, err := ByName(a); err != nil {
		return Pair{}, err
	}
	if _, err := ByName(b); err != nil {
		return Pair{}, err
	}
	return Pair{A: a, B: b}, nil
}

type errBadPair string

func (e errBadPair) Error() string { return "workload: malformed pair name " + string(e) }

// Pairs35 is the paper's 35 two-application workload list (Figures 8/9).
var Pairs35 = []Pair{
	{"3DS", "BP"}, {"3DS", "HISTO"}, {"BLK", "LPS"}, {"CFD", "MM"},
	{"CONS", "LPS"}, {"CONS", "LUH"}, {"FWT", "BP"}, {"HISTO", "GUP"},
	{"HISTO", "LPS"}, {"LUH", "BFS2"}, {"LUH", "GUP"}, {"MM", "CONS"},
	{"MUM", "HISTO"}, {"NW", "HS"}, {"NW", "LPS"}, {"RAY", "GUP"},
	{"RAY", "HS"}, {"RED", "BP"}, {"RED", "GUP"}, {"RED", "MM"},
	{"RED", "RAY"}, {"RED", "SC"}, {"SCAN", "CONS"}, {"SCAN", "HISTO"},
	{"SCAN", "SAD"}, {"SCAN", "SRAD"}, {"SCP", "GUP"}, {"SCP", "HS"},
	{"SC", "FWT"}, {"SRAD", "3DS"}, {"TRD", "HS"}, {"TRD", "LPS"},
	{"TRD", "MUM"}, {"TRD", "RAY"}, {"TRD", "RED"},
}

// PairsByCategory splits Pairs35 into the paper's 0-HMR, 1-HMR and 2-HMR
// groups (Figures 12, 13, 14 respectively).
func PairsByCategory() (zero, one, two []Pair) {
	for _, p := range Pairs35 {
		switch p.HMRCount() {
		case 0:
			zero = append(zero, p)
		case 1:
			one = append(one, p)
		default:
			two = append(two, p)
		}
	}
	return
}

// Fig7Pairs are the four representative pairs of the paper's Figure 7
// (shared-vs-alone L2 TLB miss rate).
var Fig7Pairs = []Pair{
	{"3DS", "HISTO"}, {"CONS", "LPS"}, {"MUM", "HISTO"}, {"RED", "RAY"},
}
