package workload

// The compact binary trace format (.mtb, docs/FORMATS.md): varint-encoded
// records with a per-warp section index in a footer, so tools can decode one
// warp by random access without reading the rest of the file. The sequential
// decoder works on any io.Reader (including a gzip stream); the indexed
// reader needs an io.ReaderAt and therefore an uncompressed file.
//
// Layout:
//
//	"MTB1"                            — 4-byte file magic
//	section*                          — one per warp, in warp order
//	  tag      uvarint == 0
//	  count    uvarint               — entries in this warp (>= 1)
//	  entry*
//	    head   uvarint == nAddrs<<1 | writeBit
//	    addr0  uvarint               — first address, absolute
//	    delta* svarint (zigzag)      — each further address as delta
//	    gap    uvarint               — compute gap after the access
//	footer
//	  tag      uvarint == 1
//	  warps    uvarint               — section count
//	  len*     uvarint               — per-section byte length, tag included
//	trailer
//	  flen     uint32 LE             — footer length, tag through last len
//	  "MTBI"                         — 4-byte trailer magic
//
// The trailer is fixed-size and at a known position from the end, so an
// indexed reader seeks size-8, reads flen, seeks back flen+8 bytes to the
// footer, and sums section lengths into offsets. The sequential decoder
// instead verifies the footer against what it just decoded: section count
// and every section length must match, so a truncated or spliced file is
// rejected even without random access.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

var (
	mtbMagic        = []byte("MTB1")
	mtbTrailerMagic = []byte("MTBI")
)

const (
	mtbTagSection = 0
	mtbTagFooter  = 1

	// mtbMaxAddrs caps one entry's address count and mtbMaxEntries one
	// warp's entry count: far above anything a real trace produces, low
	// enough that a corrupt varint is rejected as implausible instead of
	// looping over garbage.
	mtbMaxAddrs   = 1 << 24
	mtbMaxEntries = 1 << 32

	// mtbPreallocCap bounds slice preallocation from decoded counts, so an
	// oversized count in a corrupt file never allocates ahead of the actual
	// data that backs it.
	mtbPreallocCap = 1 << 12
)

// EncodeMTB writes the trace in the binary .mtb format. Sections are staged
// through one reusable buffer (the footer needs their byte lengths), so peak
// memory is one warp's encoding, not the file's.
func (ts *TraceSet) EncodeMTB(w io.Writer) error {
	if len(ts.Warps) == 0 {
		return fmt.Errorf("mtb %s: no warps", ts.Name)
	}
	bw := bufio.NewWriter(w)
	bw.Write(mtbMagic)
	var (
		scratch bytes.Buffer
		varint  [binary.MaxVarintLen64]byte
		lengths = make([]uint64, 0, len(ts.Warps))
	)
	putUvarint := func(dst *bytes.Buffer, v uint64) {
		dst.Write(varint[:binary.PutUvarint(varint[:], v)])
	}
	for i, warp := range ts.Warps {
		if len(warp) == 0 {
			return fmt.Errorf("mtb %s: warp %d has no accesses", ts.Name, i)
		}
		scratch.Reset()
		putUvarint(&scratch, mtbTagSection)
		putUvarint(&scratch, uint64(len(warp)))
		for _, e := range warp {
			if len(e.Addrs) == 0 {
				return fmt.Errorf("mtb %s: warp %d has an access with no address", ts.Name, i)
			}
			head := uint64(len(e.Addrs)) << 1
			if e.Write {
				head |= 1
			}
			putUvarint(&scratch, head)
			putUvarint(&scratch, e.Addrs[0])
			prev := e.Addrs[0]
			for _, a := range e.Addrs[1:] {
				scratch.Write(varint[:binary.PutVarint(varint[:], int64(a-prev))])
				prev = a
			}
			putUvarint(&scratch, uint64(e.ComputeGap))
		}
		lengths = append(lengths, uint64(scratch.Len()))
		if _, err := bw.Write(scratch.Bytes()); err != nil {
			return fmt.Errorf("mtb %s: %w", ts.Name, err)
		}
	}
	scratch.Reset()
	putUvarint(&scratch, mtbTagFooter)
	putUvarint(&scratch, uint64(len(ts.Warps)))
	for _, l := range lengths {
		putUvarint(&scratch, l)
	}
	flen := uint32(scratch.Len())
	bw.Write(scratch.Bytes())
	binary.Write(bw, binary.LittleEndian, flen)
	bw.Write(mtbTrailerMagic)
	return bw.Flush()
}

// mtbReader counts consumed bytes so the sequential decoder can verify the
// footer's section lengths.
type mtbReader struct {
	r *bufio.Reader
	n int64
}

func (m *mtbReader) ReadByte() (byte, error) {
	b, err := m.r.ReadByte()
	if err == nil {
		m.n++
	}
	return b, err
}

func (m *mtbReader) readFull(p []byte) error {
	n, err := io.ReadFull(m.r, p)
	m.n += int64(n)
	return err
}

func (m *mtbReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(m)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return v, err
}

func (m *mtbReader) varint() (int64, error) {
	v, err := binary.ReadVarint(m)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return v, err
}

// DecodeMTB decodes a binary trace from r sequentially. Corrupt input —
// truncated sections, implausible counts, a footer disagreeing with the
// decoded sections, trailing garbage — is rejected with a structured error;
// allocation is always bounded by the bytes actually present.
func DecodeMTB(name string, r io.Reader) (*TraceSet, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	m := &mtbReader{r: br}
	fail := func(format string, args ...any) (*TraceSet, error) {
		return nil, fmt.Errorf("mtb %s: "+format, append([]any{name}, args...)...)
	}
	magic := make([]byte, len(mtbMagic))
	if err := m.readFull(magic); err != nil || !bytes.Equal(magic, mtbMagic) {
		return fail("bad magic (not an .mtb file)")
	}
	ts := &TraceSet{Name: name}
	var lengths []uint64
	for {
		start := m.n
		tag, err := m.uvarint()
		if err != nil {
			return fail("section tag: %v", err)
		}
		if tag == mtbTagFooter {
			warps, err := m.uvarint()
			if err != nil {
				return fail("footer warp count: %v", err)
			}
			if warps != uint64(len(ts.Warps)) {
				return fail("footer says %d warps, file has %d sections", warps, len(ts.Warps))
			}
			for i := range ts.Warps {
				l, err := m.uvarint()
				if err != nil {
					return fail("footer length %d: %v", i, err)
				}
				if l != lengths[i] {
					return fail("footer says section %d is %d bytes, decoded %d", i, l, lengths[i])
				}
			}
			var trailer [8]byte
			if err := m.readFull(trailer[:]); err != nil {
				return fail("trailer: %v", err)
			}
			flen := binary.LittleEndian.Uint32(trailer[:4])
			if int64(flen) != m.n-8-start {
				return fail("trailer says footer is %d bytes, decoded %d", flen, m.n-8-start)
			}
			if !bytes.Equal(trailer[4:], mtbTrailerMagic) {
				return fail("bad trailer magic %q", trailer[4:])
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return fail("trailing garbage after trailer")
			}
			break
		}
		if tag != mtbTagSection {
			return fail("unknown section tag %d", tag)
		}
		warp, err := decodeMTBSection(m)
		if err != nil {
			return fail("warp %d: %v", len(ts.Warps), err)
		}
		ts.Warps = append(ts.Warps, warp)
		lengths = append(lengths, uint64(m.n-start))
	}
	if len(ts.Warps) == 0 {
		return fail("no warps")
	}
	return ts, nil
}

// decodeMTBSection decodes one warp section body (the tag is already
// consumed).
func decodeMTBSection(m *mtbReader) ([]TraceEntry, error) {
	count, err := m.uvarint()
	if err != nil {
		return nil, fmt.Errorf("entry count: %v", err)
	}
	if count == 0 {
		return nil, fmt.Errorf("warp has no accesses")
	}
	if count > mtbMaxEntries {
		return nil, fmt.Errorf("implausible entry count %d", count)
	}
	warp := make([]TraceEntry, 0, min64(count, mtbPreallocCap))
	for i := uint64(0); i < count; i++ {
		head, err := m.uvarint()
		if err != nil {
			return nil, fmt.Errorf("entry %d head: %v", i, err)
		}
		nAddrs := head >> 1
		if nAddrs == 0 {
			return nil, fmt.Errorf("entry %d has no address", i)
		}
		if nAddrs > mtbMaxAddrs {
			return nil, fmt.Errorf("entry %d: implausible address count %d", i, nAddrs)
		}
		e := TraceEntry{Write: head&1 != 0}
		e.Addrs = make([]uint64, 0, min64(nAddrs, mtbPreallocCap))
		addr, err := m.uvarint()
		if err != nil {
			return nil, fmt.Errorf("entry %d addr: %v", i, err)
		}
		e.Addrs = append(e.Addrs, addr)
		for a := uint64(1); a < nAddrs; a++ {
			d, err := m.varint()
			if err != nil {
				return nil, fmt.Errorf("entry %d addr %d: %v", i, a, err)
			}
			addr += uint64(d)
			e.Addrs = append(e.Addrs, addr)
		}
		gap, err := m.uvarint()
		if err != nil {
			return nil, fmt.Errorf("entry %d gap: %v", i, err)
		}
		if gap > 1<<31 {
			return nil, fmt.Errorf("entry %d: implausible compute gap %d", i, gap)
		}
		e.ComputeGap = int(gap)
		warp = append(warp, e)
	}
	return warp, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// MTBIndex is the footer's per-warp section table, resolved to absolute file
// offsets for random access.
type MTBIndex struct {
	// Offsets[i] is warp i's section start (its tag byte); Lengths[i] its
	// byte length.
	Offsets []int64
	Lengths []int64
}

// Warps returns the number of indexed warp sections.
func (ix *MTBIndex) Warps() int { return len(ix.Offsets) }

// ReadMTBIndex reads the footer index of an .mtb file of the given size
// without touching the warp sections — O(footer), not O(file).
func ReadMTBIndex(ra io.ReaderAt, size int64) (*MTBIndex, error) {
	var trailer [8]byte
	if size < int64(len(mtbMagic))+8 {
		return nil, fmt.Errorf("mtb index: file too short (%d bytes)", size)
	}
	if _, err := ra.ReadAt(trailer[:], size-8); err != nil {
		return nil, fmt.Errorf("mtb index: trailer: %v", err)
	}
	if !bytes.Equal(trailer[4:], mtbTrailerMagic) {
		return nil, fmt.Errorf("mtb index: bad trailer magic %q", trailer[4:])
	}
	flen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	footStart := size - 8 - flen
	if flen <= 0 || footStart < int64(len(mtbMagic)) {
		return nil, fmt.Errorf("mtb index: implausible footer length %d", flen)
	}
	foot := make([]byte, flen)
	if _, err := ra.ReadAt(foot, footStart); err != nil {
		return nil, fmt.Errorf("mtb index: footer: %v", err)
	}
	fr := bytes.NewReader(foot)
	tag, err := binary.ReadUvarint(fr)
	if err != nil || tag != mtbTagFooter {
		return nil, fmt.Errorf("mtb index: bad footer tag")
	}
	warps, err := binary.ReadUvarint(fr)
	if err != nil {
		return nil, fmt.Errorf("mtb index: warp count: %v", err)
	}
	if warps == 0 || warps > uint64(flen) {
		// Each section length costs at least one footer byte, so a plausible
		// count never exceeds the footer size.
		return nil, fmt.Errorf("mtb index: implausible warp count %d", warps)
	}
	ix := &MTBIndex{
		Offsets: make([]int64, 0, warps),
		Lengths: make([]int64, 0, warps),
	}
	off := int64(len(mtbMagic))
	for i := uint64(0); i < warps; i++ {
		l, err := binary.ReadUvarint(fr)
		if err != nil {
			return nil, fmt.Errorf("mtb index: length %d: %v", i, err)
		}
		if l == 0 || int64(l) > footStart-off {
			return nil, fmt.Errorf("mtb index: section %d length %d exceeds file", i, l)
		}
		ix.Offsets = append(ix.Offsets, off)
		ix.Lengths = append(ix.Lengths, int64(l))
		off += int64(l)
	}
	if off != footStart {
		return nil, fmt.Errorf("mtb index: sections end at %d, footer starts at %d", off, footStart)
	}
	return ix, nil
}

// DecodeWarp random-accesses and decodes warp i's section alone.
func (ix *MTBIndex) DecodeWarp(ra io.ReaderAt, i int) ([]TraceEntry, error) {
	if i < 0 || i >= len(ix.Offsets) {
		return nil, fmt.Errorf("mtb: warp %d out of range (file has %d)", i, len(ix.Offsets))
	}
	sec := make([]byte, ix.Lengths[i])
	if _, err := ra.ReadAt(sec, ix.Offsets[i]); err != nil {
		return nil, fmt.Errorf("mtb: warp %d section: %v", i, err)
	}
	m := &mtbReader{r: bufio.NewReader(bytes.NewReader(sec))}
	tag, err := m.uvarint()
	if err != nil || tag != mtbTagSection {
		return nil, fmt.Errorf("mtb: warp %d: bad section tag", i)
	}
	warp, err := decodeMTBSection(m)
	if err != nil {
		return nil, fmt.Errorf("mtb: warp %d: %v", i, err)
	}
	if m.n != int64(len(sec)) {
		return nil, fmt.Errorf("mtb: warp %d: section has %d trailing bytes", i, int64(len(sec))-m.n)
	}
	return warp, nil
}
