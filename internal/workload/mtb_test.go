package workload

import (
	"bytes"
	"compress/gzip"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// genTrace builds a deterministic pseudo-random trace for round-trip tests.
func genTrace(t testing.TB, warps, entries int) *TraceSet {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	ts := &TraceSet{Name: "gen"}
	for w := 0; w < warps; w++ {
		var warp []TraceEntry
		for e := 0; e < entries; e++ {
			n := 1 + rng.Intn(8)
			entry := TraceEntry{Write: rng.Intn(4) == 0}
			base := uint64(rng.Intn(1 << 30))
			for a := 0; a < n; a++ {
				// Mix of ascending and jumping addresses exercises both signs
				// of the delta encoding.
				base += uint64(rng.Intn(256)) - 64
				entry.Addrs = append(entry.Addrs, base)
			}
			if rng.Intn(3) == 0 {
				entry.ComputeGap = rng.Intn(1000)
			}
			warp = append(warp, entry)
		}
		ts.Warps = append(ts.Warps, warp)
	}
	return ts
}

func TestMTBRoundTrip(t *testing.T) {
	ts := genTrace(t, 7, 200)
	var bin bytes.Buffer
	if err := ts.EncodeMTB(&bin); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMTB("gen", bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ts.Warps, back.Warps) {
		t.Fatal("binary round trip altered the trace")
	}
}

func TestTextBinaryTextRoundTrip(t *testing.T) {
	// text -> TraceSet -> .mtb -> TraceSet -> text must reproduce the
	// canonical text exactly.
	ts := genTrace(t, 4, 100)
	var text1 bytes.Buffer
	if err := ts.WriteText(&text1); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace("gen", strings.NewReader(text1.String()))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := parsed.EncodeMTB(&bin); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeMTB("gen", bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var text2 bytes.Buffer
	if err := decoded.WriteText(&text2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
		t.Fatal("text -> binary -> text round trip altered the canonical text")
	}
	if !reflect.DeepEqual(parsed.Warps, decoded.Warps) {
		t.Fatal("parsed and decoded traces differ")
	}
}

func TestLoadTraceSniffsAllFormats(t *testing.T) {
	ts := genTrace(t, 3, 50)
	dir := t.TempDir()

	var text bytes.Buffer
	if err := ts.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := ts.EncodeMTB(&bin); err != nil {
		t.Fatal(err)
	}
	gz := func(raw []byte) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(raw)
		zw.Close()
		return buf.Bytes()
	}
	files := map[string][]byte{
		"gen.trace":    text.Bytes(),
		"gen.trace.gz": gz(text.Bytes()),
		"gen.mtb":      bin.Bytes(),
		"gen.mtb.gz":   gz(bin.Bytes()),
	}
	for name, data := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != "gen" {
			t.Fatalf("%s: loaded name %q, want gen", name, got.Name)
		}
		if !reflect.DeepEqual(got.Warps, ts.Warps) {
			t.Fatalf("%s: loaded trace differs", name)
		}
	}
}

func TestMTBIndexRandomAccess(t *testing.T) {
	ts := genTrace(t, 9, 64)
	var bin bytes.Buffer
	if err := ts.EncodeMTB(&bin); err != nil {
		t.Fatal(err)
	}
	ra := bytes.NewReader(bin.Bytes())
	ix, err := ReadMTBIndex(ra, int64(bin.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Warps() != len(ts.Warps) {
		t.Fatalf("index has %d warps, want %d", ix.Warps(), len(ts.Warps))
	}
	// Decode out of order: the index alone locates each section.
	for _, i := range []int{8, 0, 4, 1} {
		warp, err := ix.DecodeWarp(ra, i)
		if err != nil {
			t.Fatalf("warp %d: %v", i, err)
		}
		if !reflect.DeepEqual(warp, ts.Warps[i]) {
			t.Fatalf("warp %d decoded differently via index", i)
		}
	}
	if _, err := ix.DecodeWarp(ra, 9); err == nil {
		t.Fatal("out-of-range warp accepted")
	}
}

func TestDecodeMTBRejectsCorruption(t *testing.T) {
	ts := genTrace(t, 3, 20)
	var bin bytes.Buffer
	if err := ts.EncodeMTB(&bin); err != nil {
		t.Fatal(err)
	}
	good := bin.Bytes()

	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       []byte("NOPE"),
		"magic only":      []byte("MTB1"),
		"truncated half":  good[:len(good)/2],
		"truncated tail":  good[:len(good)-3],
		"trailing bytes":  append(append([]byte{}, good...), 0),
		"flipped trailer": append(append([]byte{}, good[:len(good)-1]...), 'X'),
	}
	// Oversized entry count: magic + section tag + huge varint.
	huge := []byte("MTB1")
	huge = append(huge, 0x00)                                                 // section tag
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // ~2^62 entries
	cases["oversized count"] = huge
	for name, data := range cases {
		if _, err := DecodeMTB("bad", bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
	// Index reads reject the same classes of damage.
	for name, data := range cases {
		if _, err := ReadMTBIndex(bytes.NewReader(data), int64(len(data))); err == nil {
			t.Errorf("index %s: corrupt input accepted", name)
		}
	}
}

func TestTraceName(t *testing.T) {
	cases := map[string]string{
		"mum.trace":          "mum",
		"traces/mum.trace":   "mum",
		"/a/b/mum.trace.gz":  "mum",
		"mum.mtb":            "mum",
		"mum.mtb.gz":         "mum",
		"mum.txt":            "mum",
		"mum":                "mum",
		" spaced.trace ":     "spaced",
		"odd.name.trace":     "odd.name",
		"double.trace.trace": "double.trace",
	}
	for in, want := range cases {
		if got := TraceName(in); got != want {
			t.Errorf("TraceName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseTraceGzipTransparent(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(sampleTrace))
	zw.Close()
	ts, err := ParseTrace("demo", &buf)
	if err != nil {
		t.Fatalf("gzip input rejected: %v", err)
	}
	if len(ts.Warps) != 2 {
		t.Fatalf("%d warps, want 2", len(ts.Warps))
	}
}
