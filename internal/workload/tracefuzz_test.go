package workload

import (
	"bytes"
	"testing"
)

// FuzzParseTrace asserts the text parser never panics and, when it accepts
// an input, produces a trace that survives the canonical round trip.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte(sampleTrace))
	f.Add([]byte("warp 0\nr 0x10 0x20\nc 3\n"))
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte("warp 0\nr " + string(bytes.Repeat([]byte("f"), 20)) + "\n"))
	f.Add([]byte("warp 0\nr 1\nwarp 1\nw 2 3 4\nc 9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ParseTrace("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		var text bytes.Buffer
		if err := ts.WriteText(&text); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		back, err := ParseTrace("fuzz", bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatalf("canonical text of accepted trace rejected: %v", err)
		}
		if len(back.Warps) != len(ts.Warps) {
			t.Fatalf("round trip changed warp count %d -> %d", len(ts.Warps), len(back.Warps))
		}
	})
}

// FuzzDecodeMTB asserts the binary decoder never panics or over-allocates on
// corrupt varints, truncated footers, or mangled trailers, and that accepted
// inputs round-trip bit-exactly through the encoder.
func FuzzDecodeMTB(f *testing.F) {
	seed := genTrace(f, 3, 20)
	var bin bytes.Buffer
	if err := seed.EncodeMTB(&bin); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add([]byte("MTB1"))
	f.Add([]byte("MTB1\x00\x01"))
	f.Add(bin.Bytes()[:bin.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeMTB("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted trace must survive re-encoding and decode back to the
		// same warps. (Byte equality is too strong: ReadUvarint accepts
		// non-minimal varint spellings the encoder never produces.)
		var again bytes.Buffer
		if err := ts.EncodeMTB(&again); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := DecodeMTB("fuzz", bytes.NewReader(again.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if len(back.Warps) != len(ts.Warps) {
			t.Fatalf("round trip changed warp count %d -> %d", len(ts.Warps), len(back.Warps))
		}
	})
}

// FuzzReadMTBIndex asserts the footer-index reader never panics and that an
// index it accepts only names sections the sequential decoder also accepts.
func FuzzReadMTBIndex(f *testing.F) {
	seed := genTrace(f, 3, 20)
	var bin bytes.Buffer
	if err := seed.EncodeMTB(&bin); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(bin.Bytes()[:bin.Len()-4])
	f.Fuzz(func(t *testing.T, data []byte) {
		ra := bytes.NewReader(data)
		ix, err := ReadMTBIndex(ra, int64(len(data)))
		if err != nil {
			return
		}
		for i := 0; i < ix.Warps(); i++ {
			// DecodeWarp may reject (the index only proves geometry), but it
			// must never panic.
			ix.DecodeWarp(ra, i)
		}
	})
}
