package workload

import (
	"strings"
	"testing"
)

const sampleTrace = `
# two-warp demo trace
warp 0
r 0x10000 0x10040
c 4
w 0x20000
r 0x10080
warp 1
r 0x30000
c 2
`

func TestParseTrace(t *testing.T) {
	ts, err := ParseTrace("demo", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Warps) != 2 {
		t.Fatalf("%d warps, want 2", len(ts.Warps))
	}
	w0 := ts.Warps[0]
	if len(w0) != 3 {
		t.Fatalf("warp 0 has %d entries, want 3", len(w0))
	}
	if w0[0].ComputeGap != 4 || w0[0].Write {
		t.Fatalf("entry 0 parsed wrong: %+v", w0[0])
	}
	if !w0[1].Write {
		t.Fatal("write entry not marked")
	}
	if len(w0[0].Addrs) != 2 {
		t.Fatal("multi-address access not parsed")
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"r 0x1000",          // access before warp header
		"warp 0\nr zz",      // bad address
		"warp 0\nc 4",       // gap before access
		"warp 0\nx 1",       // unknown directive
		"",                  // empty
		"warp 0",            // warp with no accesses
		"warp 0\nr",         // access with no address
		"warp 0\nr 1\nc -2", // negative gap
	}
	for i, c := range cases {
		if _, err := ParseTrace("bad", strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestTracePages(t *testing.T) {
	ts, err := ParseTrace("demo", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	pages := ts.Pages(4096)
	if len(pages) != 3 { // 0x10000, 0x20000, 0x30000
		t.Fatalf("%d distinct pages, want 3: %#x", len(pages), pages)
	}
}

func TestTraceStreamReplaysCyclically(t *testing.T) {
	ts, err := ParseTrace("demo", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	s := ts.NewStream(0, 4096, 64)
	first := s.NextMem()
	if len(first.Pages) != 1 || len(first.Pages[0].Lines) != 2 {
		t.Fatalf("first inst shape wrong: %+v", first)
	}
	if s.NextComputeGap() != 4 {
		t.Fatal("compute gap not replayed")
	}
	s.NextMem() // write
	s.NextMem() // third
	again := s.NextMem()
	if again.Pages[0].Lines[0] != first.Pages[0].Lines[0] {
		t.Fatal("trace did not wrap around")
	}
	// Warp index beyond the trace's warps wraps.
	s2 := ts.NewStream(5, 4096, 64)
	if s2.NextMem().Pages[0].Lines[0] != ts.Warps[1][0].Addrs[0] {
		t.Fatal("warp-index wrapping broken")
	}
}

func TestTraceStreamGroupsPages(t *testing.T) {
	ts, err := ParseTrace("multi", strings.NewReader("warp 0\nr 0x1000 0x1040 0x5000\n"))
	if err != nil {
		t.Fatal(err)
	}
	inst := ts.NewStream(0, 4096, 64).NextMem()
	if len(inst.Pages) != 2 {
		t.Fatalf("%d page groups, want 2", len(inst.Pages))
	}
	if len(inst.Pages[0].Lines) != 2 || len(inst.Pages[1].Lines) != 1 {
		t.Fatalf("page grouping wrong: %+v", inst.Pages)
	}
}
