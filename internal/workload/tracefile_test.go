package workload

import (
	"fmt"
	"strings"
	"testing"
)

const sampleTrace = `
# two-warp demo trace
warp 0
r 0x10000 0x10040
c 4
w 0x20000
r 0x10080
warp 1
r 0x30000
c 2
`

func TestParseTrace(t *testing.T) {
	ts, err := ParseTrace("demo", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Warps) != 2 {
		t.Fatalf("%d warps, want 2", len(ts.Warps))
	}
	w0 := ts.Warps[0]
	if len(w0) != 3 {
		t.Fatalf("warp 0 has %d entries, want 3", len(w0))
	}
	if w0[0].ComputeGap != 4 || w0[0].Write {
		t.Fatalf("entry 0 parsed wrong: %+v", w0[0])
	}
	if !w0[1].Write {
		t.Fatal("write entry not marked")
	}
	if len(w0[0].Addrs) != 2 {
		t.Fatal("multi-address access not parsed")
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"r 0x1000",                 // access before warp header
		"warp 0\nr zz",             // bad address
		"warp 0\nc 4",              // gap before access
		"warp 0\nx 1",              // unknown directive
		"",                         // empty
		"warp 0",                   // warp with no accesses
		"warp 0\nr",                // access with no address
		"warp 0\nr 1\nc -2",        // negative gap
		"warp\nr 1",                // warp with no index
		"warp 0 extra\nr 1",        // trailing field on warp header
		"warp zero\nr 1",           // non-numeric warp index
		"warp -1\nr 1",             // negative warp index
		"warp 1\nr 1",              // first warp not numbered 0
		"warp 0\nr 1\nwarp 2\nr 2", // warp index skips ahead
		"warp 0\nr 1\nwarp 0\nr 2", // warp index repeats
		"warp 0\nr 1\nc 2 3",       // trailing field on compute gap
	}
	for i, c := range cases {
		if _, err := ParseTrace("bad", strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestParseTraceErrorsCarryLineNumbers(t *testing.T) {
	_, err := ParseTrace("lined", strings.NewReader("warp 0\nr 0x1000\nwarp 7\n"))
	if err == nil {
		t.Fatal("out-of-order warp accepted")
	}
	if !strings.Contains(err.Error(), "lined:3") {
		t.Fatalf("error %q does not name trace and line", err)
	}
}

func TestParseTraceLongLines(t *testing.T) {
	// A single access listing enough addresses to blow bufio.Scanner's 64KB
	// default line limit must still parse.
	var b strings.Builder
	b.WriteString("warp 0\nr")
	for i := 0; i < 12000; i++ {
		fmt.Fprintf(&b, " 0x%x", 0x10000+i*64)
	}
	b.WriteString("\n")
	ts, err := ParseTrace("long", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("long line rejected: %v", err)
	}
	if got := len(ts.Warps[0][0].Addrs); got != 12000 {
		t.Fatalf("parsed %d addresses, want 12000", got)
	}
}

func TestPageShiftForRejectsNonPowerOfTwo(t *testing.T) {
	for _, bad := range []int{0, -4096, 3, 4095, 6144} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pageShiftFor(%d) did not panic", bad)
				}
			}()
			pageShiftFor(bad)
		}()
	}
	if got := pageShiftFor(4096); got != 12 {
		t.Fatalf("pageShiftFor(4096)=%d, want 12", got)
	}
	if got := pageShiftFor(2 << 20); got != 21 {
		t.Fatalf("pageShiftFor(2MB)=%d, want 21", got)
	}
}

func TestTracePages(t *testing.T) {
	ts, err := ParseTrace("demo", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	pages := ts.Pages(4096)
	if len(pages) != 3 { // 0x10000, 0x20000, 0x30000
		t.Fatalf("%d distinct pages, want 3: %#x", len(pages), pages)
	}
}

func TestTraceStreamReplaysCyclically(t *testing.T) {
	ts, err := ParseTrace("demo", strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	s := ts.NewStream(0, 4096, 64)
	first := s.NextMem()
	if len(first.Pages) != 1 || len(first.Pages[0].Lines) != 2 {
		t.Fatalf("first inst shape wrong: %+v", first)
	}
	if s.NextComputeGap() != 4 {
		t.Fatal("compute gap not replayed")
	}
	s.NextMem() // write
	s.NextMem() // third
	again := s.NextMem()
	if again.Pages[0].Lines[0] != first.Pages[0].Lines[0] {
		t.Fatal("trace did not wrap around")
	}
	// Warp index beyond the trace's warps wraps.
	s2 := ts.NewStream(5, 4096, 64)
	if s2.NextMem().Pages[0].Lines[0] != ts.Warps[1][0].Addrs[0] {
		t.Fatal("warp-index wrapping broken")
	}
}

func TestTraceStreamGroupsPages(t *testing.T) {
	ts, err := ParseTrace("multi", strings.NewReader("warp 0\nr 0x1000 0x1040 0x5000\n"))
	if err != nil {
		t.Fatal(err)
	}
	inst := ts.NewStream(0, 4096, 64).NextMem()
	if len(inst.Pages) != 2 {
		t.Fatalf("%d page groups, want 2", len(inst.Pages))
	}
	if len(inst.Pages[0].Lines) != 2 || len(inst.Pages[1].Lines) != 1 {
		t.Fatalf("page grouping wrong: %+v", inst.Pages)
	}
}
