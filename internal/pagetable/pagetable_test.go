package pagetable

import (
	"testing"
	"testing/quick"
)

func TestTranslateUnmapped(t *testing.T) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	if _, ok := s.Translate(0x12345678); ok {
		t.Fatal("unmapped address translated")
	}
}

func TestEnsureMappedRoundTrip(t *testing.T) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	va := uint64(0x1234_5678_9000)
	frame := s.EnsureMapped(va)
	pa, ok := s.Translate(va | 0x123) // arbitrary page offset
	if !ok {
		t.Fatal("mapped address did not translate")
	}
	if pa != frame*FrameSize+0x123 {
		t.Fatalf("pa=%#x, want frame %#x + offset 0x123", pa, frame)
	}
}

func TestEnsureMappedIdempotent(t *testing.T) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	va := uint64(0xABC000)
	f1 := s.EnsureMapped(va)
	f2 := s.EnsureMapped(va + 64) // same page
	if f1 != f2 {
		t.Fatalf("remapping same page gave different frames %d vs %d", f1, f2)
	}
	if s.MappedPages() != 1 {
		t.Fatalf("MappedPages=%d, want 1", s.MappedPages())
	}
}

// Property: arbitrary VA sets translate back to distinct frames, and
// distinct pages never share a frame.
func TestTranslationCorrectnessProperty(t *testing.T) {
	f := func(vas []uint32) bool {
		alloc := NewAllocator()
		s := NewSpace(1, PageSize4K, alloc)
		frames := map[uint64]uint64{} // vpn -> frame
		for _, v := range vas {
			va := uint64(v) << 8 // spread over a few GB
			frame := s.EnsureMapped(va)
			vpn := s.VPN(va)
			if prev, ok := frames[vpn]; ok && prev != frame {
				return false
			}
			frames[vpn] = frame
		}
		// All mappings still resolve, and frames are unique per page.
		seen := map[uint64]uint64{}
		for vpn, frame := range frames {
			got, ok := s.TranslateVPN(vpn)
			if !ok || got != frame {
				return false
			}
			if other, dup := seen[frame]; dup && other != vpn {
				return false
			}
			seen[frame] = vpn
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkAddrsShape(t *testing.T) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	va := uint64(0x7654_3210_0000)
	s.EnsureMapped(va)
	addrs := s.WalkAddrs(s.VPN(va))
	if len(addrs) != 4 {
		t.Fatalf("4KB walk has %d levels, want 4", len(addrs))
	}
	// The root PTE address must live in the root frame.
	if addrs[0]/FrameSize == 0 {
		t.Fatal("root walk address in null frame")
	}
	// PTE addresses must be 8-byte aligned within distinct frames.
	for i, a := range addrs {
		if a%8 != 0 {
			t.Fatalf("level %d PTE address %#x not 8-byte aligned", i+1, a)
		}
	}
}

func TestWalkAddrsSharedPrefix(t *testing.T) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	va1 := uint64(0x4000_0000)
	va2 := va1 + PageSize4K // adjacent page
	s.EnsureMapped(va1)
	s.EnsureMapped(va2)
	a1 := s.WalkAddrs(s.VPN(va1))
	a2 := s.WalkAddrs(s.VPN(va2))
	// Adjacent pages share levels 1..3 node frames (same upper indices).
	for lvl := 0; lvl < 3; lvl++ {
		if a1[lvl]/FrameSize != a2[lvl]/FrameSize {
			t.Fatalf("level %d node frames differ for adjacent pages", lvl+1)
		}
	}
	if a1[3] == a2[3] {
		t.Fatal("adjacent pages share identical leaf PTE address")
	}
}

func TestWalkAddrsIntoMatches(t *testing.T) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	va := uint64(0x9999_0000)
	s.EnsureMapped(va)
	vpn := s.VPN(va)
	a := s.WalkAddrs(vpn)
	var buf [4]uint64
	b := s.WalkAddrsInto(vpn, buf[:0])
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("WalkAddrsInto[%d]=%#x, WalkAddrs=%#x", i, b[i], a[i])
		}
	}
}

func Test2MBPages(t *testing.T) {
	s := NewSpace(2, PageSize2M, NewAllocator())
	if s.Levels() != 3 {
		t.Fatalf("2MB pages use %d levels, want 3", s.Levels())
	}
	va := uint64(0x8000_0000)
	frame := s.EnsureMapped(va)
	// Offsets across the whole 2MB page resolve within the page's frames.
	pa, ok := s.Translate(va + 1<<20)
	if !ok {
		t.Fatal("2MB page did not translate")
	}
	if pa != frame*FrameSize+1<<20 {
		t.Fatalf("2MB offset translation wrong: %#x", pa)
	}
	addrs := s.WalkAddrs(s.VPN(va))
	if len(addrs) != 3 {
		t.Fatalf("2MB walk has %d levels, want 3", len(addrs))
	}
}

func TestAllocatorConstraint(t *testing.T) {
	a := NewAllocator()
	a.SetConstraint(func(frame uint64) bool { return frame%4 == 2 })
	for i := 0; i < 100; i++ {
		if f := a.Alloc(); f%4 != 2 {
			t.Fatalf("constrained allocator returned frame %d", f)
		}
	}
	a.SetConstraint(nil)
	_ = a.Alloc() // must not loop forever
}

func TestAllocatorNeverReturnsZero(t *testing.T) {
	a := NewAllocator()
	for i := 0; i < 1000; i++ {
		if a.Alloc() == 0 {
			t.Fatal("allocator returned the null frame")
		}
	}
}

func TestSeparateSpacesAreIsolated(t *testing.T) {
	alloc := NewAllocator()
	s1 := NewSpace(1, PageSize4K, alloc)
	s2 := NewSpace(2, PageSize4K, alloc)
	va := uint64(0x5000_0000)
	f1 := s1.EnsureMapped(va)
	f2 := s2.EnsureMapped(va)
	if f1 == f2 {
		t.Fatal("two address spaces mapped the same VA to one frame")
	}
	if _, ok := s1.Translate(va); !ok {
		t.Fatal("s1 lost its mapping")
	}
}

func TestMappedPagesCount(t *testing.T) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	for i := uint64(0); i < 100; i++ {
		s.EnsureMapped(i * PageSize4K)
	}
	if s.MappedPages() != 100 {
		t.Fatalf("MappedPages=%d, want 100", s.MappedPages())
	}
}
