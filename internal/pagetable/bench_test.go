package pagetable

import "testing"

func BenchmarkTranslate(b *testing.B) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	va := uint64(0x4_0000_0000)
	s.EnsureMapped(va)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Translate(va); !ok {
			b.Fatal("lost mapping")
		}
	}
}

func BenchmarkWalkAddrsInto(b *testing.B) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	va := uint64(0x4_0000_0000)
	s.EnsureMapped(va)
	vpn := s.VPN(va)
	var buf [4]uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WalkAddrsInto(vpn, buf[:0])
	}
}

func BenchmarkEnsureMapped(b *testing.B) {
	s := NewSpace(1, PageSize4K, NewAllocator())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EnsureMapped(uint64(i) << 12)
	}
}
