// Package pagetable materialises per-address-space multi-level radix page
// tables in the simulated physical memory.
//
// Each application (address space, identified by an ASID per §5.1) owns a
// Space backed by an x86-64-style radix table: four levels for 4KB pages or
// three levels for 2MB large pages (§7.3's page-size sensitivity study). The
// table nodes themselves occupy physical frames obtained from the same frame
// Allocator as data pages, so the page-table walker's dependent accesses
// (package ptw) touch realistic physical addresses and contend for the same
// caches and DRAM banks as data — the interference at the heart of §4.3.
package pagetable

import "fmt"

// PageSize4K and PageSize2M are the supported page sizes.
const (
	PageSize4K = 4 << 10
	PageSize2M = 2 << 20
)

const (
	// FrameSize is the physical frame granularity; page-table nodes always
	// occupy one 4KB frame regardless of data page size.
	FrameSize = 4 << 10
	// entriesPerNode is the radix fan-out (512 8-byte PTEs per 4KB node).
	entriesPerNode = 512
	indexBits      = 9
	pteSize        = 8
)

// Allocator hands out physical frame numbers. Frames are FrameSize bytes.
// A constraint predicate restricts which frames an allocation may use; the
// Static baseline uses it to confine each app's footprint to its DRAM
// channel partition.
type Allocator struct {
	next       uint64
	constraint func(frame uint64) bool
	// limit guards against a constraint that rejects everything.
	limit uint64
}

// NewAllocator returns an allocator starting at frame 1 (frame 0 is reserved
// as a null sentinel).
func NewAllocator() *Allocator {
	return &Allocator{next: 1, limit: 1 << 40}
}

// SetConstraint restricts subsequent allocations to frames satisfying f.
// Pass nil to remove the restriction.
func (a *Allocator) SetConstraint(f func(frame uint64) bool) {
	a.constraint = f
}

// Alloc returns the next acceptable physical frame number.
func (a *Allocator) Alloc() uint64 {
	for {
		f := a.next
		a.next++
		if a.next > a.limit {
			panic("pagetable: physical frame space exhausted")
		}
		if a.constraint == nil || a.constraint(f) {
			return f
		}
	}
}

// Allocated returns how many frame numbers have been consumed (including
// frames skipped by constraints); a cheap proxy for footprint in tests.
func (a *Allocator) Allocated() uint64 { return a.next - 1 }

type node struct {
	frame    uint64
	children []*node // interior nodes
	// frames maps leaf slot -> data frame. Sparse VA layouts (large page
	// strides) create many leaf nodes holding only a few mappings each, so
	// leaves use a small map instead of a 512-slot array.
	frames map[int]uint64
}

func newInterior(frame uint64) *node {
	return &node{frame: frame, children: make([]*node, entriesPerNode)}
}

func newLeaf(frame uint64) *node {
	return &node{frame: frame, frames: make(map[int]uint64, 8)}
}

// Space is one application's address space: an ASID plus its radix table.
type Space struct {
	asid      uint8
	pageShift uint
	levels    int
	alloc     *Allocator
	root      *node

	mappedPages uint64
}

// NewSpace creates an empty address space using pageSize (PageSize4K or
// PageSize2M) with tables allocated from alloc.
func NewSpace(asid uint8, pageSize int, alloc *Allocator) *Space {
	var shift uint
	var levels int
	switch pageSize {
	case PageSize4K:
		shift, levels = 12, 4
	case PageSize2M:
		shift, levels = 21, 3
	default:
		panic(fmt.Sprintf("pagetable: unsupported page size %d", pageSize))
	}
	s := &Space{asid: asid, pageShift: shift, levels: levels, alloc: alloc}
	s.root = newInterior(alloc.Alloc())
	return s
}

// ASID returns the address space identifier.
func (s *Space) ASID() uint8 { return s.asid }

// PageShift returns log2(page size).
func (s *Space) PageShift() uint { return s.pageShift }

// PageSize returns the data page size in bytes.
func (s *Space) PageSize() int { return 1 << s.pageShift }

// Levels returns the number of page-table levels (4 for 4KB, 3 for 2MB).
func (s *Space) Levels() int { return s.levels }

// MappedPages returns the number of data pages currently mapped.
func (s *Space) MappedPages() uint64 { return s.mappedPages }

// VPN returns the virtual page number of va.
func (s *Space) VPN(va uint64) uint64 { return va >> s.pageShift }

// indexAt extracts the radix index used at the given 1-based level.
// Level 1 is the root; level s.levels is the leaf.
func (s *Space) indexAt(vpn uint64, level int) int {
	shift := uint(indexBits * (s.levels - level))
	return int((vpn >> shift) & (entriesPerNode - 1))
}

// EnsureMapped maps the page containing va (allocating intermediate nodes
// and the data frame as needed) and returns the data frame number.
// The simulator pre-populates working sets at app load, matching the paper's
// scope (page faults are future work, §5.5).
func (s *Space) EnsureMapped(va uint64) uint64 {
	vpn := s.VPN(va)
	n := s.root
	for level := 1; level < s.levels; level++ {
		idx := s.indexAt(vpn, level)
		if level == s.levels-1 {
			// Next level is the leaf.
			if n.children[idx] == nil {
				n.children[idx] = newLeaf(s.alloc.Alloc())
			}
		} else if n.children[idx] == nil {
			n.children[idx] = newInterior(s.alloc.Alloc())
		}
		n = n.children[idx]
	}
	idx := s.indexAt(vpn, s.levels)
	if f, ok := n.frames[idx]; ok {
		return f
	}
	// Data pages may span multiple frames (2MB pages); the frame number
	// returned is the page's base frame and the page occupies
	// pageSize/FrameSize consecutive frame numbers.
	framesPerPage := uint64(s.PageSize() / FrameSize)
	base := s.alloc.Alloc()
	for i := uint64(1); i < framesPerPage; i++ {
		s.alloc.Alloc()
	}
	n.frames[idx] = base
	s.mappedPages++
	return base
}

// Translate performs an instantaneous software walk: it returns the physical
// address for va and whether the page is mapped. Used by the Ideal-TLB
// configuration and by correctness tests.
func (s *Space) Translate(va uint64) (uint64, bool) {
	vpn := s.VPN(va)
	n := s.root
	for level := 1; level < s.levels; level++ {
		idx := s.indexAt(vpn, level)
		if n.children[idx] == nil {
			return 0, false
		}
		n = n.children[idx]
	}
	idx := s.indexAt(vpn, s.levels)
	frame, ok := n.frames[idx]
	if !ok {
		return 0, false
	}
	offsetMask := uint64(s.PageSize() - 1)
	return frame*FrameSize + (va & offsetMask), true
}

// TranslateVPN is Translate for a whole page: it returns the data frame
// number for vpn.
func (s *Space) TranslateVPN(vpn uint64) (uint64, bool) {
	pa, ok := s.Translate(vpn << s.pageShift)
	if !ok {
		return 0, false
	}
	return pa / FrameSize, true
}

// WalkAddrs returns the physical byte addresses of the page-table entries a
// hardware walker must read to translate vpn, ordered from root (level 1) to
// leaf. The page must be mapped.
func (s *Space) WalkAddrs(vpn uint64) []uint64 {
	addrs := make([]uint64, 0, s.levels)
	n := s.root
	for level := 1; level <= s.levels; level++ {
		idx := s.indexAt(vpn, level)
		addrs = append(addrs, n.frame*FrameSize+uint64(idx)*pteSize)
		if level < s.levels {
			if n.children[idx] == nil {
				panic(fmt.Sprintf("pagetable: WalkAddrs on unmapped vpn %#x (level %d)", vpn, level))
			}
			n = n.children[idx]
		}
	}
	return addrs
}

// WalkAddrsInto is WalkAddrs without allocation; dst must have capacity for
// s.Levels() entries. It returns the filled prefix of dst.
func (s *Space) WalkAddrsInto(vpn uint64, dst []uint64) []uint64 {
	dst = dst[:0]
	n := s.root
	for level := 1; level <= s.levels; level++ {
		idx := s.indexAt(vpn, level)
		dst = append(dst, n.frame*FrameSize+uint64(idx)*pteSize)
		if level < s.levels {
			if n.children[idx] == nil {
				panic(fmt.Sprintf("pagetable: WalkAddrsInto on unmapped vpn %#x (level %d)", vpn, level))
			}
			n = n.children[idx]
		}
	}
	return dst
}
