package faultinject

import (
	"strings"
	"testing"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	var p Plan
	if p.Active() {
		t.Fatal("zero plan reports active")
	}
	for now := int64(0); now < 1000; now++ {
		if p.WedgeWalk(now) || p.DropResponse(now) {
			t.Fatalf("zero plan fired at cycle %d", now)
		}
		p.TickPanic(now) // must not panic
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan reports active")
	}
}

func TestWedgeWalkThreshold(t *testing.T) {
	p := &Plan{WedgePTWAfter: 100}
	if !p.Active() {
		t.Fatal("wedge plan not active")
	}
	if p.WedgeWalk(99) {
		t.Fatal("wedged before threshold")
	}
	if !p.WedgeWalk(100) || !p.WedgeWalk(5000) {
		t.Fatal("did not wedge at/after threshold")
	}
	if p.WedgedWalks != 2 {
		t.Fatalf("WedgedWalks=%d, want 2", p.WedgedWalks)
	}
}

func TestDropResponseOneIn(t *testing.T) {
	p := &Plan{DropDRAMOneIn: 3, DropDRAMAfter: 10}
	if p.DropResponse(5) {
		t.Fatal("dropped before DropDRAMAfter")
	}
	dropped := 0
	for i := 0; i < 9; i++ {
		if p.DropResponse(20) {
			dropped++
		}
	}
	if dropped != 3 {
		t.Fatalf("dropped %d of 9 responses, want every 3rd (3)", dropped)
	}
	if p.DroppedResponses != 3 {
		t.Fatalf("DroppedResponses=%d, want 3", p.DroppedResponses)
	}
}

// TestTickKillDisarmed checks the safety interlock: without AllowKill,
// reaching KillAtCycle only counts the activation — the process survives.
// (The armed path is os.Exit(137) and is exercised by the CI kill-and-resume
// smoke job, not by in-process tests.)
func TestTickKillDisarmed(t *testing.T) {
	p := &Plan{KillAtCycle: 42}
	if !p.Active() {
		t.Fatal("kill plan not active")
	}
	p.TickKill(41)
	p.TickKill(43)
	if p.KillsArmed != 0 {
		t.Fatalf("KillsArmed=%d before KillAtCycle, want 0", p.KillsArmed)
	}
	p.TickKill(42) // must return: AllowKill is false
	if p.KillsArmed != 1 {
		t.Fatalf("KillsArmed=%d, want 1", p.KillsArmed)
	}
}

// TestPlanStateRoundTrip checks the checkpoint image: counters and the drop
// phase survive State/SetState, so a restored run keeps dropping on the same
// one-in-N schedule as the uninterrupted one.
func TestPlanStateRoundTrip(t *testing.T) {
	p := &Plan{WedgePTWAfter: 1, DropDRAMOneIn: 3, KillAtCycle: 9}
	p.WedgeWalk(5)
	p.DropResponse(5) // dropSeen=1
	p.TickKill(9)
	st := p.State()

	q := &Plan{WedgePTWAfter: 1, DropDRAMOneIn: 3, KillAtCycle: 9}
	q.SetState(st)
	if q.State() != st {
		t.Fatalf("restored state %+v != captured %+v", q.State(), st)
	}
	// dropSeen=1 restored: the next two responses complete the one-in-three.
	if q.DropResponse(6) {
		t.Fatal("dropped at phase 2 of 3")
	}
	if !q.DropResponse(7) {
		t.Fatal("did not drop at phase 3 of 3")
	}
}

func TestTickPanicFiresAtCycle(t *testing.T) {
	p := &Plan{PanicAtCycle: 42}
	p.TickPanic(41)
	p.TickPanic(43)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic at PanicAtCycle")
		}
		if !strings.Contains(r.(string), "cycle 42") {
			t.Fatalf("panic value %q missing cycle", r)
		}
	}()
	p.TickPanic(42)
}
