package faultinject

import (
	"strings"
	"testing"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	var p Plan
	if p.Active() {
		t.Fatal("zero plan reports active")
	}
	for now := int64(0); now < 1000; now++ {
		if p.WedgeWalk(now) || p.DropResponse(now) {
			t.Fatalf("zero plan fired at cycle %d", now)
		}
		p.TickPanic(now) // must not panic
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan reports active")
	}
}

func TestWedgeWalkThreshold(t *testing.T) {
	p := &Plan{WedgePTWAfter: 100}
	if !p.Active() {
		t.Fatal("wedge plan not active")
	}
	if p.WedgeWalk(99) {
		t.Fatal("wedged before threshold")
	}
	if !p.WedgeWalk(100) || !p.WedgeWalk(5000) {
		t.Fatal("did not wedge at/after threshold")
	}
	if p.WedgedWalks != 2 {
		t.Fatalf("WedgedWalks=%d, want 2", p.WedgedWalks)
	}
}

func TestDropResponseOneIn(t *testing.T) {
	p := &Plan{DropDRAMOneIn: 3, DropDRAMAfter: 10}
	if p.DropResponse(5) {
		t.Fatal("dropped before DropDRAMAfter")
	}
	dropped := 0
	for i := 0; i < 9; i++ {
		if p.DropResponse(20) {
			dropped++
		}
	}
	if dropped != 3 {
		t.Fatalf("dropped %d of 9 responses, want every 3rd (3)", dropped)
	}
	if p.DroppedResponses != 3 {
		t.Fatalf("DroppedResponses=%d, want 3", p.DroppedResponses)
	}
}

func TestTickPanicFiresAtCycle(t *testing.T) {
	p := &Plan{PanicAtCycle: 42}
	p.TickPanic(41)
	p.TickPanic(43)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic at PanicAtCycle")
		}
		if !strings.Contains(r.(string), "cycle 42") {
			t.Fatalf("panic value %q missing cycle", r)
		}
	}()
	p.TickPanic(42)
}
