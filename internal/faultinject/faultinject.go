// Package faultinject provides deterministic fault injection for the
// simulator's supervision layer. A Plan wedges page-table walks, drops DRAM
// responses, or panics from inside a simulation tick at a chosen cycle;
// tests use these faults to prove that the engine watchdog, the harness
// panic recovery, and the error-propagation paths actually fire.
//
// Faults are wired by the simulator: set sim.Config.FaultPlan and the
// builder installs the hooks on the walker, the DRAM model, and the engine
// tick list. The injection points are ordinary single-goroutine simulation
// code, so a Plan needs no locking; read its counters after the run returns.
package faultinject

import "fmt"

// Plan describes the faults to inject into one simulation run. The zero
// value injects nothing. A Plan accumulates hit counters across a run (and
// across a supervised retry of the same run), so build a fresh Plan per
// experiment cell when counters must be attributed precisely.
type Plan struct {
	// WedgePTWAfter, when > 0, wedges every page-table walk that tries to
	// issue a memory access at cycle >= WedgePTWAfter: the walk occupies its
	// walker slot forever and its translation never completes. Downstream,
	// warps waiting on those translations stall and the run eventually stops
	// retiring instructions — the livelock the watchdog must catch.
	WedgePTWAfter int64

	// DropDRAMOneIn, when > 0, drops every DropDRAMOneIn-th DRAM response
	// (the request is serviced but its completion callback never runs) once
	// the run reaches DropDRAMAfter. The waiting MSHR is never filled, so
	// the dependent warp hangs.
	DropDRAMOneIn int64
	// DropDRAMAfter delays response dropping until the given cycle, letting
	// a run warm up before the fault fires.
	DropDRAMAfter int64

	// PanicAtCycle, when > 0, panics from inside the engine tick at that
	// cycle — a stand-in for an internal invariant violation, used to prove
	// the experiment harness recovers worker panics instead of crashing the
	// campaign.
	PanicAtCycle int64

	// Counters recording what actually fired, for test assertions.
	WedgedWalks      int64
	DroppedResponses int64

	dropSeen int64

	sink EventSink
}

// EventSink receives one instant event per injected fault; telemetry.Collector
// implements it. Nil (the default) costs a single branch per fault.
type EventSink interface {
	Emit(now int64, name, component string, args map[string]string)
}

// SetEventSink wires an instant-event sink so injected faults show up in
// exported traces. Pass nil to clear.
func (p *Plan) SetEventSink(s EventSink) {
	p.sink = s
}

// Active reports whether the plan injects anything.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.WedgePTWAfter > 0 || p.DropDRAMOneIn > 0 || p.PanicAtCycle > 0
}

// WedgeWalk implements the page-table-walker wedge hook.
func (p *Plan) WedgeWalk(now int64) bool {
	if p.WedgePTWAfter <= 0 || now < p.WedgePTWAfter {
		return false
	}
	p.WedgedWalks++
	if p.sink != nil {
		p.sink.Emit(now, "fault.wedge_walk", "faults", map[string]string{
			"wedged_walks": fmt.Sprintf("%d", p.WedgedWalks),
		})
	}
	return true
}

// DropResponse implements the DRAM response-drop hook.
func (p *Plan) DropResponse(now int64) bool {
	if p.DropDRAMOneIn <= 0 || now < p.DropDRAMAfter {
		return false
	}
	p.dropSeen++
	if p.dropSeen%p.DropDRAMOneIn != 0 {
		return false
	}
	p.DroppedResponses++
	if p.sink != nil {
		p.sink.Emit(now, "fault.drop_response", "faults", map[string]string{
			"dropped_responses": fmt.Sprintf("%d", p.DroppedResponses),
		})
	}
	return true
}

// TickPanic is registered as an engine ticker; it panics at PanicAtCycle.
func (p *Plan) TickPanic(now int64) {
	if p.PanicAtCycle > 0 && now == p.PanicAtCycle {
		if p.sink != nil {
			p.sink.Emit(now, "fault.panic", "faults", map[string]string{
				"cycle": fmt.Sprintf("%d", now),
			})
		}
		panic(fmt.Sprintf("faultinject: injected panic at cycle %d", now))
	}
}
