// Package faultinject provides deterministic fault injection for the
// simulator's supervision layer. A Plan wedges page-table walks, drops DRAM
// responses, or panics from inside a simulation tick at a chosen cycle;
// tests use these faults to prove that the engine watchdog, the harness
// panic recovery, and the error-propagation paths actually fire.
//
// Faults are wired by the simulator: set sim.Config.FaultPlan and the
// builder installs the hooks on the walker, the DRAM model, and the engine
// tick list. The injection points are ordinary single-goroutine simulation
// code, so a Plan needs no locking; read its counters after the run returns.
package faultinject

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Plan describes the faults to inject into one simulation run. The zero
// value injects nothing. A Plan accumulates hit counters across a run (and
// across a supervised retry of the same run), so build a fresh Plan per
// experiment cell when counters must be attributed precisely.
type Plan struct {
	// WedgePTWAfter, when > 0, wedges every page-table walk that tries to
	// issue a memory access at cycle >= WedgePTWAfter: the walk occupies its
	// walker slot forever and its translation never completes. Downstream,
	// warps waiting on those translations stall and the run eventually stops
	// retiring instructions — the livelock the watchdog must catch.
	WedgePTWAfter int64

	// DropDRAMOneIn, when > 0, drops every DropDRAMOneIn-th DRAM response
	// (the request is serviced but its completion callback never runs) once
	// the run reaches DropDRAMAfter. The waiting MSHR is never filled, so
	// the dependent warp hangs.
	DropDRAMOneIn int64
	// DropDRAMAfter delays response dropping until the given cycle, letting
	// a run warm up before the fault fires.
	DropDRAMAfter int64

	// PanicAtCycle, when > 0, panics from inside the engine tick at that
	// cycle — a stand-in for an internal invariant violation, used to prove
	// the experiment harness recovers worker panics instead of crashing the
	// campaign.
	PanicAtCycle int64

	// KillAtCycle, when > 0, hard-kills the process (os.Exit, no deferred
	// functions, no checkpoint flush) from inside the engine tick at that
	// cycle — a stand-in for SIGKILL / OOM-kill / power loss, used to prove
	// that campaign resume survives a worker that never got to say goodbye.
	// It only fires when AllowKill is also set, so a stray Plan value can
	// never take down a real campaign.
	KillAtCycle int64
	// AllowKill arms KillAtCycle. Test-only: the simulator never sets it.
	AllowKill bool

	// Counters recording what actually fired, for test assertions.
	WedgedWalks      int64
	DroppedResponses int64
	// KillsArmed counts KillAtCycle activations observed before the exit;
	// readable only if the kill was disarmed (AllowKill false).
	KillsArmed int64

	dropSeen int64

	sink EventSink
}

// PlanState is the plan's checkpoint image: the hit counters and the drop
// phase, so a run restored mid-fault-injection counts and drops exactly like
// the uninterrupted one.
type PlanState struct {
	WedgedWalks      int64
	DroppedResponses int64
	KillsArmed       int64
	DropSeen         int64
}

// State captures the plan's mutable counters for checkpointing.
func (p *Plan) State() PlanState {
	return PlanState{
		WedgedWalks:      p.WedgedWalks,
		DroppedResponses: p.DroppedResponses,
		KillsArmed:       p.KillsArmed,
		DropSeen:         p.dropSeen,
	}
}

// SetState restores counters captured by State.
func (p *Plan) SetState(st PlanState) {
	p.WedgedWalks = st.WedgedWalks
	p.DroppedResponses = st.DroppedResponses
	p.KillsArmed = st.KillsArmed
	p.dropSeen = st.DropSeen
}

// EventSink receives one instant event per injected fault; telemetry.Collector
// implements it. Nil (the default) costs a single branch per fault.
type EventSink interface {
	Emit(now int64, name, component string, args map[string]string)
}

// SetEventSink wires an instant-event sink so injected faults show up in
// exported traces. Pass nil to clear.
func (p *Plan) SetEventSink(s EventSink) {
	p.sink = s
}

// Active reports whether the plan injects anything.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.WedgePTWAfter > 0 || p.DropDRAMOneIn > 0 || p.PanicAtCycle > 0 ||
		p.KillAtCycle > 0
}

// WedgeWalk implements the page-table-walker wedge hook.
func (p *Plan) WedgeWalk(now int64) bool {
	if p.WedgePTWAfter <= 0 || now < p.WedgePTWAfter {
		return false
	}
	p.WedgedWalks++
	if p.sink != nil {
		p.sink.Emit(now, "fault.wedge_walk", "faults", map[string]string{
			"wedged_walks": fmt.Sprintf("%d", p.WedgedWalks),
		})
	}
	return true
}

// DropResponse implements the DRAM response-drop hook.
func (p *Plan) DropResponse(now int64) bool {
	if p.DropDRAMOneIn <= 0 || now < p.DropDRAMAfter {
		return false
	}
	p.dropSeen++
	if p.dropSeen%p.DropDRAMOneIn != 0 {
		return false
	}
	p.DroppedResponses++
	if p.sink != nil {
		p.sink.Emit(now, "fault.drop_response", "faults", map[string]string{
			"dropped_responses": fmt.Sprintf("%d", p.DroppedResponses),
		})
	}
	return true
}

// TickPanic is registered as an engine ticker; it panics at PanicAtCycle.
func (p *Plan) TickPanic(now int64) {
	if p.PanicAtCycle > 0 && now == p.PanicAtCycle {
		if p.sink != nil {
			p.sink.Emit(now, "fault.panic", "faults", map[string]string{
				"cycle": fmt.Sprintf("%d", now),
			})
		}
		panic(fmt.Sprintf("faultinject: injected panic at cycle %d", now))
	}
}

// TickKill hard-exits the process at KillAtCycle when armed (see AllowKill).
// os.Exit bypasses deferred functions and signal handlers — exactly the
// "pulled the plug" failure campaign resume must survive. Exit code 137
// matches a SIGKILLed process so CI scripts treat both paths identically.
func (p *Plan) TickKill(now int64) {
	if p.KillAtCycle <= 0 || now != p.KillAtCycle {
		return
	}
	p.KillsArmed++
	if p.sink != nil {
		p.sink.Emit(now, "fault.kill", "faults", map[string]string{
			"cycle": fmt.Sprintf("%d", now),
			"armed": fmt.Sprintf("%t", p.AllowKill),
		})
	}
	if p.AllowKill {
		os.Exit(137)
	}
}

// CorruptCheckpointByte flips one byte (at offset, wrapped to the file size)
// of the most recently modified *.ckpt file under dir, simulating bit rot or
// a torn write. Returns the corrupted file's path. Restore paths must reject
// such a file with snapshot.ErrChecksum and fall back to a clean start.
func CorruptCheckpointByte(dir string, offset int64) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("faultinject: corrupt checkpoint: %w", err)
	}
	var newest string
	var newestMod time.Time
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if newest == "" || info.ModTime().After(newestMod) {
			newest = filepath.Join(dir, e.Name())
			newestMod = info.ModTime()
		}
	}
	if newest == "" {
		return "", fmt.Errorf("faultinject: no checkpoint files in %s", dir)
	}
	data, err := os.ReadFile(newest)
	if err != nil {
		return "", fmt.Errorf("faultinject: corrupt checkpoint: %w", err)
	}
	if len(data) == 0 {
		return "", fmt.Errorf("faultinject: checkpoint %s is empty", newest)
	}
	if offset < 0 {
		offset = -offset
	}
	data[offset%int64(len(data))] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		return "", fmt.Errorf("faultinject: corrupt checkpoint: %w", err)
	}
	return newest, nil
}
