package cache

import (
	"fmt"

	"masksim/internal/memreq"
)

// LineState is one cache line's checkpoint image, index-aligned with the
// cache's set-major line array.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Stamp int64
}

// BankItemState is one queued bank-queue entry (FIFO order preserved).
type BankItemState struct {
	ReadyAt int64
	Req     int32
}

// MSHRState is one outstanding line fetch with its merged waiters in arrival
// order.
type MSHRState struct {
	LineAddr uint64
	Waiting  []int32
}

// CacheState is a cache's checkpoint image.
type CacheState struct {
	SnapID        uint64
	Lines         []LineState
	Stamp         int64
	Queues        [][]BankItemState
	Mshrs         []MSHRState
	BypassMshrs   []MSHRState
	MshrFree      int
	Retry         []int32
	CombineCur    []uint64
	CombinePrev   []uint64
	CombineSwapAt int64
	LevelStats    [memreq.MaxWalkLevel + 1]Stats
	EpochStats    [memreq.MaxWalkLevel + 1]Stats
	LastRates     [memreq.MaxWalkLevel + 1]float64
	LastValid     [memreq.MaxWalkLevel + 1]bool
	LatSum        [2]uint64
	LatCount      [2]uint64
}

// SetSnapKey assigns the cache's checkpoint identity; the simulator numbers
// its caches in build order. Must be set before the first Submit so fill
// requests carry the right SiteRef.
func (c *Cache) SetSnapKey(id uint64) { c.snapID = id }

// SnapshotState implements engine.Snapshotter; ctx is the *memreq.Table.
func (c *Cache) SnapshotState(ctx any) (any, error) {
	tab, ok := ctx.(*memreq.Table)
	if !ok {
		return nil, fmt.Errorf("cache %s: snapshot context is %T, want *memreq.Table", c.cfg.Name, ctx)
	}
	st := CacheState{
		SnapID:        c.snapID,
		Stamp:         c.stamp,
		MshrFree:      len(c.mshrFree),
		CombineSwapAt: c.combineSwapAt,
		LevelStats:    c.levelStats,
		EpochStats:    c.epochStats,
		LastRates:     c.lastRates,
		LastValid:     c.lastValid,
		LatSum:        c.latSum,
		LatCount:      c.latCount,
	}
	st.Lines = make([]LineState, len(c.lines))
	for i := range c.lines {
		ln := &c.lines[i]
		st.Lines[i] = LineState{Tag: ln.tag, Valid: ln.valid, Dirty: ln.dirty, Stamp: ln.stamp}
	}
	st.Queues = make([][]BankItemState, len(c.queues))
	for b := range c.queues {
		q := &c.queues[b]
		for i := 0; i < q.n; i++ {
			it := &q.items[(q.head+i)%len(q.items)]
			st.Queues[b] = append(st.Queues[b], BankItemState{ReadyAt: it.readyAt, Req: tab.Req(it.req)})
		}
	}
	snapMSHR := func(m *mshr) MSHRState {
		ms := MSHRState{LineAddr: m.lineAddr}
		for _, w := range m.waiting {
			ms.Waiting = append(ms.Waiting, tab.Req(w))
		}
		return ms
	}
	for _, m := range c.mshrs {
		st.Mshrs = append(st.Mshrs, snapMSHR(m))
	}
	for _, m := range c.bypassMSHRs {
		st.BypassMshrs = append(st.BypassMshrs, snapMSHR(m))
	}
	for _, r := range c.retry {
		st.Retry = append(st.Retry, tab.Req(r))
	}
	for la := range c.combineCur {
		st.CombineCur = append(st.CombineCur, la)
	}
	for la := range c.combinePrev {
		st.CombinePrev = append(st.CombinePrev, la)
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter; ctx is the *memreq.RestoreTable.
func (c *Cache) RestoreState(ctx any, state any) error {
	rt, ok := ctx.(*memreq.RestoreTable)
	if !ok {
		return fmt.Errorf("cache %s: restore context is %T, want *memreq.RestoreTable", c.cfg.Name, ctx)
	}
	st, ok := state.(CacheState)
	if !ok {
		return fmt.Errorf("cache %s: restore state is %T, want CacheState", c.cfg.Name, state)
	}
	if len(st.Lines) != len(c.lines) {
		return fmt.Errorf("cache %s: checkpoint has %d lines, cache has %d", c.cfg.Name, len(st.Lines), len(c.lines))
	}
	if len(st.Queues) != len(c.queues) {
		return fmt.Errorf("cache %s: checkpoint has %d banks, cache has %d", c.cfg.Name, len(st.Queues), len(c.queues))
	}
	c.stamp = st.Stamp
	c.combineSwapAt = st.CombineSwapAt
	c.levelStats = st.LevelStats
	c.epochStats = st.EpochStats
	c.lastRates = st.LastRates
	c.lastValid = st.LastValid
	c.latSum = st.LatSum
	c.latCount = st.LatCount
	for i, ls := range st.Lines {
		c.lines[i] = line{tag: ls.Tag, valid: ls.Valid, dirty: ls.Dirty, stamp: ls.Stamp}
	}
	for b := range c.queues {
		q := &c.queues[b]
		q.items = make([]bankItem, max(8, len(st.Queues[b])))
		q.head, q.n = 0, len(st.Queues[b])
		for i, is := range st.Queues[b] {
			q.items[i] = bankItem{readyAt: is.ReadyAt, req: rt.Req(is.Req)}
		}
	}
	buildMSHR := func(ms MSHRState, bypass bool) *mshr {
		m := c.getMSHR(ms.LineAddr, bypass)
		for _, ref := range ms.Waiting {
			m.waiting = append(m.waiting, rt.Req(ref))
		}
		return m
	}
	c.mshrs = make(map[uint64]*mshr, len(st.Mshrs))
	for _, ms := range st.Mshrs {
		c.mshrs[ms.LineAddr] = buildMSHR(ms, false)
	}
	c.bypassMSHRs = make(map[uint64]*mshr, len(st.BypassMshrs))
	for _, ms := range st.BypassMshrs {
		c.bypassMSHRs[ms.LineAddr] = buildMSHR(ms, true)
	}
	for len(c.mshrFree) < st.MshrFree {
		c.mshrFree = append(c.mshrFree, c.newMSHR())
	}
	c.mshrFree = c.mshrFree[:st.MshrFree]
	c.retry = c.retry[:0]
	for _, ref := range st.Retry {
		c.retry = append(c.retry, rt.Req(ref))
	}
	if (len(st.CombineCur) > 0 || len(st.CombinePrev) > 0) && c.cfg.WriteCombineWindow <= 0 {
		return fmt.Errorf("cache %s: checkpoint carries write-combine state but combining is disabled", c.cfg.Name)
	}
	if c.cfg.WriteCombineWindow > 0 {
		c.combineCur = make(map[uint64]struct{}, len(st.CombineCur))
		for _, la := range st.CombineCur {
			c.combineCur[la] = struct{}{}
		}
		c.combinePrev = make(map[uint64]struct{}, len(st.CombinePrev))
		for _, la := range st.CombinePrev {
			c.combinePrev[la] = struct{}{}
		}
	}
	return nil
}

// LineAddr returns the line index addr falls in (checkpoint link-pass
// helper: fill requests store the full line-aligned address).
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// FillDone resolves the completion handler for a restored fill or bypass
// fetch targeting lineAddr; the simulator's link pass rebinds
// memreq.SiteCacheFill / SiteCacheBypassFill requests through it. Valid only
// after RestoreState has rebuilt the MSHR maps.
func (c *Cache) FillDone(lineAddr uint64, bypass bool) (func(now int64, fr *memreq.Request), bool) {
	var m *mshr
	var ok bool
	if bypass {
		m, ok = c.bypassMSHRs[lineAddr]
	} else {
		m, ok = c.mshrs[lineAddr]
	}
	if !ok {
		return nil, false
	}
	return m.fillDone, true
}

// ATAState is the bypass policy's checkpoint image.
type ATAState struct {
	Counters    [memreq.MaxWalkLevel + 1]uint64
	BypassLevel [memreq.MaxWalkLevel + 1]bool
}

// State captures the bypass policy for checkpointing.
func (p *ATABypass) State() ATAState {
	return ATAState{Counters: p.counters, BypassLevel: p.bypassLevel}
}

// SetState restores a state captured by State.
func (p *ATABypass) SetState(st ATAState) {
	p.counters = st.Counters
	p.bypassLevel = st.BypassLevel
}
