package cache

import (
	"testing"

	"masksim/internal/memreq"
)

// fakeBackend records submitted requests and completes reads on demand.
type fakeBackend struct {
	reqs   []*memreq.Request
	reject bool
}

func (f *fakeBackend) Submit(now int64, r *memreq.Request) bool {
	if f.reject {
		return false
	}
	f.reqs = append(f.reqs, r)
	return true
}

// completeAll finishes every outstanding read at the given cycle.
func (f *fakeBackend) completeAll(now int64) {
	reqs := f.reqs
	f.reqs = nil
	for _, r := range reqs {
		if r.Kind == memreq.Read {
			r.Complete(now, memreq.ServedDRAM)
		}
	}
}

func (f *fakeBackend) countKind(k memreq.Kind) int {
	n := 0
	for _, r := range f.reqs {
		if r.Kind == k {
			n++
		}
	}
	return n
}

func smallCache(backend Backend, writeBack bool) *Cache {
	return New(Config{
		Name: "test", SizeBytes: 1024, Ways: 2, LineSize: 64,
		Banks: 1, PortsPerBank: 4, Latency: 1, WriteBack: writeBack,
	}, backend)
}

// read submits a read and returns a pointer to its completion flag.
func read(c *Cache, now int64, addr uint64) *bool {
	done := new(bool)
	r := &memreq.Request{
		Kind: memreq.Read, Addr: addr, Issue: now,
		Done: func(int64, *memreq.Request) { *done = true },
	}
	if !c.Submit(now, r) {
		panic("submit rejected")
	}
	return done
}

func drive(c *Cache, from, to int64) {
	for now := from; now <= to; now++ {
		c.Tick(now)
	}
}

func TestReadMissFetchesAndFills(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	done := read(c, 0, 0x1000)
	drive(c, 0, 2)
	if *done {
		t.Fatal("read completed without backend response")
	}
	if len(be.reqs) != 1 {
		t.Fatalf("backend saw %d requests, want 1 fill", len(be.reqs))
	}
	be.completeAll(10)
	if !*done {
		t.Fatal("read not completed after fill")
	}
	if !c.Contains(0x1000) {
		t.Fatal("line not installed after fill")
	}
}

func TestReadHitAfterFill(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	read(c, 0, 0x2000)
	drive(c, 0, 2)
	be.completeAll(5)

	done := read(c, 6, 0x2000)
	drive(c, 6, 8)
	if !*done {
		t.Fatal("hit did not complete")
	}
	if len(be.reqs) != 0 {
		t.Fatal("hit went to backend")
	}
	st := c.LevelStats(0)
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestMSHRMergesSameLine(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	d1 := read(c, 0, 0x3000)
	d2 := read(c, 0, 0x3008) // same 64B line
	drive(c, 0, 2)
	if len(be.reqs) != 1 {
		t.Fatalf("backend saw %d fills, want 1 (merged)", len(be.reqs))
	}
	be.completeAll(5)
	if !*d1 || !*d2 {
		t.Fatal("merged requests not both completed")
	}
	if c.OutstandingMisses() != 0 {
		t.Fatal("MSHR not released")
	}
}

func TestLRUReplacement(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false) // 1024B/64B = 16 lines, 2-way, 8 sets
	// Three lines mapping to the same set (stride = sets*lineSize = 512B).
	addrs := []uint64{0x0000, 0x0200, 0x0400}
	for i, a := range addrs[:2] {
		read(c, int64(i*10), a)
		drive(c, int64(i*10), int64(i*10+2))
		be.completeAll(int64(i*10 + 3))
	}
	// Touch addr[0] so addr[1] becomes LRU.
	read(c, 30, addrs[0])
	drive(c, 30, 32)
	// Fill addr[2]; victim must be addrs[1].
	read(c, 40, addrs[2])
	drive(c, 40, 42)
	be.completeAll(45)
	if !c.Contains(addrs[0]) || !c.Contains(addrs[2]) {
		t.Fatal("expected lines missing")
	}
	if c.Contains(addrs[1]) {
		t.Fatal("LRU victim still present")
	}
}

func TestWriteThroughForwards(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	w := &memreq.Request{Kind: memreq.Write, Addr: 0x5000}
	c.Submit(0, w)
	drive(c, 0, 2)
	if be.countKind(memreq.Write) != 1 {
		t.Fatal("write-through did not forward the store")
	}
	if c.Contains(0x5000) {
		t.Fatal("write-through no-allocate installed a line")
	}
}

func TestWriteCombining(t *testing.T) {
	be := &fakeBackend{}
	c := New(Config{
		Name: "wc", SizeBytes: 1024, Ways: 2, LineSize: 64,
		Banks: 1, PortsPerBank: 8, Latency: 1, WriteCombineWindow: 100,
	}, be)
	for i := 0; i < 10; i++ {
		c.Submit(int64(i), &memreq.Request{Kind: memreq.Write, Addr: 0x5000})
	}
	drive(c, 0, 12)
	if got := be.countKind(memreq.Write); got != 1 {
		t.Fatalf("combining forwarded %d writes, want 1", got)
	}
	// After the window expires the next store forwards again.
	c.Submit(300, &memreq.Request{Kind: memreq.Write, Addr: 0x5000})
	drive(c, 300, 302)
	if got := be.countKind(memreq.Write); got != 2 {
		t.Fatalf("expired window forwarded %d writes total, want 2", got)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, true)
	// Write misses allocate and dirty the line.
	c.Submit(0, &memreq.Request{Kind: memreq.Write, Addr: 0x0000})
	drive(c, 0, 2)
	be.reqs = nil // drop the allocate fetch
	// Evict it by filling two more lines in the same set.
	for i, a := range []uint64{0x0200, 0x0400} {
		read(c, int64(10+i*10), a)
		drive(c, int64(10+i*10), int64(12+i*10))
		be.completeAll(int64(13 + i*10))
	}
	drive(c, 40, 41)
	if be.countKind(memreq.Write) != 1 {
		t.Fatalf("dirty eviction produced %d writebacks, want 1", be.countKind(memreq.Write))
	}
}

func TestBackendRejectionRetries(t *testing.T) {
	be := &fakeBackend{reject: true}
	c := smallCache(be, false)
	done := read(c, 0, 0x7000)
	drive(c, 0, 5)
	if len(be.reqs) != 0 {
		t.Fatal("rejected submit recorded")
	}
	be.reject = false
	drive(c, 6, 8)
	if len(be.reqs) != 1 {
		t.Fatalf("retry did not reach backend (%d reqs)", len(be.reqs))
	}
	be.completeAll(9)
	if !*done {
		t.Fatal("request never completed after retry")
	}
}

func TestQueueCapacityBackpressure(t *testing.T) {
	be := &fakeBackend{}
	c := New(Config{
		Name: "q", SizeBytes: 1024, Ways: 2, LineSize: 64,
		Banks: 1, PortsPerBank: 1, Latency: 1, QueueCap: 2,
	}, be)
	a := c.Submit(0, &memreq.Request{Kind: memreq.Read, Addr: 0})
	b := c.Submit(0, &memreq.Request{Kind: memreq.Read, Addr: 64})
	full := c.Submit(0, &memreq.Request{Kind: memreq.Read, Addr: 128})
	if !a || !b || full {
		t.Fatalf("capacity behaviour wrong: %v %v %v", a, b, full)
	}
}

func TestBypassSkipsProbeAndFill(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	c.SetBypass(func(r *memreq.Request) bool { return r.Class == memreq.Translation })
	done := new(bool)
	r := &memreq.Request{
		Kind: memreq.Read, Class: memreq.Translation, WalkLevel: 4, Addr: 0x8000,
		Done: func(int64, *memreq.Request) { *done = true },
	}
	c.Submit(0, r)
	if len(be.reqs) != 1 {
		t.Fatal("bypass did not forward immediately")
	}
	be.completeAll(3)
	if !*done {
		t.Fatal("bypassed request not completed")
	}
	if c.Contains(0x8000) {
		t.Fatal("bypassed line was filled")
	}
	if c.LevelStats(4).Bypasses != 1 {
		t.Fatal("bypass not counted")
	}
}

func TestBypassMSHRCoalesces(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	c.SetBypass(func(r *memreq.Request) bool { return true })
	var done1, done2 bool
	mk := func(flag *bool) *memreq.Request {
		return &memreq.Request{
			Kind: memreq.Read, Class: memreq.Translation, WalkLevel: 4, Addr: 0x9000,
			Done: func(int64, *memreq.Request) { *flag = true },
		}
	}
	c.Submit(0, mk(&done1))
	c.Submit(0, mk(&done2))
	if len(be.reqs) != 1 {
		t.Fatalf("bypassed same-line reads not coalesced: %d fetches", len(be.reqs))
	}
	be.completeAll(5)
	if !done1 || !done2 {
		t.Fatal("coalesced bypass requests not both completed")
	}
}

func TestWayPartitioning(t *testing.T) {
	be := &fakeBackend{}
	c := New(Config{
		Name: "part", SizeBytes: 1024, Ways: 4, LineSize: 64,
		Banks: 1, PortsPerBank: 4, Latency: 1,
	}, be)
	c.SetWayPartition([]uint64{0b0011, 0b1100}) // app0 ways 0-1, app1 ways 2-3
	// App 0 fills three same-set lines; only two ways available, so one
	// evicts — but app 1's line in the same set must survive.
	// 1024/64/4 ways = 4 sets; same-set stride = 4*64 = 256.
	fill := func(app int, addr uint64, at int64) {
		r := &memreq.Request{Kind: memreq.Read, Addr: addr, AppID: app}
		c.Submit(at, r)
		drive(c, at, at+2)
		be.completeAll(at + 3)
	}
	fill(1, 0x0000, 0)
	fill(0, 0x0100, 10)
	fill(0, 0x0200, 20)
	fill(0, 0x0300, 30) // evicts one of app0's lines
	if !c.Contains(0x0000) {
		t.Fatal("partitioning failed: app1's line evicted by app0")
	}
}

func TestEpochRollTracksRates(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	// One miss then one hit at data level.
	read(c, 0, 0xA000)
	drive(c, 0, 2)
	be.completeAll(3)
	read(c, 5, 0xA000)
	drive(c, 5, 7)
	c.EpochRoll()
	rate, ok := c.LastEpochHitRate(0)
	if !ok || rate != 0.5 {
		t.Fatalf("epoch hit rate = %v,%v; want 0.5,true", rate, ok)
	}
}

func TestFlushFraction(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	addrs := []uint64{0x0000, 0x0040, 0x0080, 0x00C0}
	for i, a := range addrs {
		read(c, int64(i*10), a)
		drive(c, int64(i*10), int64(i*10+2))
		be.completeAll(int64(i*10 + 3))
	}
	c.FlushFraction(100, 1.0)
	for _, a := range addrs {
		if c.Contains(a) {
			t.Fatalf("line %#x survived full flush", a)
		}
	}
}

func TestATABypassPolicy(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	p := NewATABypass(c)

	// Seed epoch stats: data hits a lot, level 4 never.
	for i := 0; i < 100; i++ {
		c.recordHit(&memreq.Request{})
	}
	for i := 0; i < 100; i++ {
		c.recordMiss(&memreq.Request{WalkLevel: 4})
	}
	for i := 0; i < 100; i++ {
		c.recordHit(&memreq.Request{WalkLevel: 2})
	}
	p.Roll()
	if !p.BypassedLevels()[4] {
		t.Fatal("level 4 (0% hit) not bypassed when data hits 100%")
	}
	if p.BypassedLevels()[2] {
		t.Fatal("level 2 (100% hit) bypassed")
	}
	if p.ShouldBypass(&memreq.Request{Class: memreq.Data}) {
		t.Fatal("data request bypassed")
	}
	if !p.ShouldBypass(&memreq.Request{Class: memreq.Translation, WalkLevel: 4, Kind: memreq.Read}) {
		t.Fatal("level-4 translation not bypassed")
	}
}

func TestATABypassSampling(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	p := NewATABypass(c)
	for i := 0; i < 10; i++ {
		c.recordHit(&memreq.Request{})
		c.recordMiss(&memreq.Request{WalkLevel: 4})
	}
	p.Roll()
	bypassed := 0
	const n = 320
	for i := 0; i < n; i++ {
		if p.ShouldBypass(&memreq.Request{Class: memreq.Translation, WalkLevel: 4}) {
			bypassed++
		}
	}
	if bypassed == n {
		t.Fatal("dueling sample never probed the cached path")
	}
	if bypassed < n*9/10-n/32-2 {
		t.Fatalf("too few bypasses: %d of %d", bypassed, n)
	}
}
