// Package cache implements the set-associative cache model used for the
// private L1 data caches, the shared L2 data cache, and the page walk cache.
//
// The model captures the effects the paper depends on:
//
//   - bounded bandwidth: each cache has banks with a fixed number of ports;
//     requests queue per bank, so bursts of page-walk traffic create the
//     queueing delays analysed in §4.3 and attacked by MASK's L2 bypass;
//   - fixed access latency per level (Table 1);
//   - MSHR-based miss merging, so many warps touching one line generate a
//     single fill;
//   - per-traffic-class and per-page-walk-level hit counters, the inputs to
//     the Address-Translation-Aware L2 Bypass decision (§5.3);
//   - an optional bypass hook that routes selected requests straight to the
//     backing store, skipping both probe and fill;
//   - optional way partitioning, used by the Static baseline to model
//     statically provisioned L2 capacity (NVIDIA GRID / AMD FirePro style).
package cache

import (
	"fmt"

	"masksim/internal/engine"
	"masksim/internal/memreq"
)

// Backend is the next level below a cache (another cache, or DRAM).
// Submit returns false when the component cannot accept the request this
// cycle (queue full); the caller must retry.
type Backend interface {
	Submit(now int64, r *memreq.Request) bool
}

// Config describes a cache instance.
type Config struct {
	Name         string
	SizeBytes    int
	Ways         int
	LineSize     int
	Banks        int
	PortsPerBank int
	// Latency is the access (tag+data) latency in cycles.
	Latency int64
	// QueueCap bounds each bank's input queue; 0 means unbounded.
	QueueCap int
	// WriteBack selects write-back with dirty evictions (the shared L2).
	// When false the cache is write-through no-allocate (the L1s).
	WriteBack bool
	// MSHRs bounds the number of outstanding distinct line misses; 0 means
	// unbounded.
	MSHRs int
	// WriteCombineWindow, for write-through caches, absorbs repeated stores
	// to one line within the window (cycles) into a single forwarded write,
	// modelling the GPU's write-combining/store buffers: warps of a thread
	// block storing to the same lines must not multiply downstream
	// bandwidth. 0 disables combining.
	WriteCombineWindow int64
	// Arena, when non-nil, supplies the backing storage for the line array
	// from a shared batch allocation (see LineArena). Nil allocates privately.
	Arena *LineArena
}

// LineArena batch-allocates cache line arrays: the simulator sizes one arena
// for every cache it will build (ArenaLines sums the geometry), and each
// cache's New carves its line slice out of it with a full-capacity reslice,
// so neighbouring caches cannot append into each other's storage. One
// construction-time allocation replaces one per cache, which matters for
// short runs and large campaign sweeps. An exhausted (or nil) arena falls
// back to private allocation.
type LineArena struct {
	lines []line
}

// NewLineArena returns an arena with capacity for totalLines cache lines.
func NewLineArena(totalLines int) *LineArena {
	return &LineArena{lines: make([]line, totalLines)}
}

// take carves n lines off the arena, or allocates privately when the arena is
// nil or short.
func (a *LineArena) take(n int) []line {
	if a == nil || len(a.lines) < n {
		return make([]line, n)
	}
	out := a.lines[:n:n]
	a.lines = a.lines[n:]
	return out
}

// ArenaLines returns the number of lines New will allocate for a cache with
// the given geometry, mirroring New's sets*ways rounding, so callers can size
// a shared LineArena exactly.
func ArenaLines(sizeBytes, lineSize, ways int) int {
	numLines := sizeBytes / lineSize
	return (numLines / ways) * ways
}

// Stats aggregates hit/miss counters for one traffic class. Translation
// traffic is additionally broken down by page-walk level.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	Bypasses uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 when there were no probes.
func (s Stats) HitRate() float64 {
	probes := s.Hits + s.Misses
	if probes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(probes)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// stamp implements LRU: the victim is the valid line with the smallest
	// stamp; ways are few enough that a linear scan is cheap.
	stamp int64
}

// mshr tracks one outstanding line fetch (regular miss or bypass). MSHR
// objects are recycled through the cache's free list; fillDone is bound once
// at first allocation so steady-state misses allocate neither the MSHR nor
// its completion closure.
type mshr struct {
	lineAddr uint64
	bypass   bool
	waiting  []*memreq.Request
	fillDone func(now int64, fr *memreq.Request)
}

// Cache is a banked, set-associative, LRU cache.
type Cache struct {
	cfg       Config
	lineShift uint
	sets      int
	lines     []line // sets*ways, set-major
	backend   Backend

	queues []bankQueue

	mshrs map[uint64]*mshr
	// bypassMSHRs coalesces concurrent bypassed reads of one line: bypassing
	// skips the probe and the fill (§5.3), but miss-status registers still
	// exist, so identical in-flight line fetches must not be duplicated.
	bypassMSHRs map[uint64]*mshr
	// mshrFree recycles mshr objects (and their waiting-list capacity and
	// bound completion closures) across misses.
	mshrFree []*mshr
	// retry holds fill and write requests the backend rejected.
	retry []*memreq.Request

	// pool recycles the requests this cache originates (fills, bypass
	// fetches, forwarded writes, writebacks). New creates a private pool;
	// the simulator replaces it with the per-simulator pool.
	pool *memreq.Pool

	// bypass, when non-nil, routes matching requests directly to the backend
	// with no probe, no fill, and no bank-queue occupancy. Used for MASK's
	// Address-Translation-Aware L2 Bypass.
	bypass func(r *memreq.Request) bool

	// wayMask, when non-empty, restricts the replacement victim for each app
	// to its allowed ways (Static partitioning). Indexed by AppID.
	wayMask []uint64

	// snapID identifies this cache instance inside a checkpoint: requests
	// whose Done is one of this cache's MSHR fills carry it as their SiteRef
	// so restore can find the owning cache again (docs/MODEL.md §9).
	snapID uint64

	stamp int64

	// Write-combining state: two generation sets swapped every window, so a
	// line is absorbed for between one and two windows after its first
	// forwarded store.
	combineCur, combinePrev map[uint64]struct{}
	combineSwapAt           int64

	// Per-level stats: index 0 is data, 1..4 are page-walk levels.
	levelStats [memreq.MaxWalkLevel + 1]Stats
	// epochStats are rolled by EpochRoll into lastRates.
	epochStats [memreq.MaxWalkLevel + 1]Stats
	lastRates  [memreq.MaxWalkLevel + 1]float64
	lastValid  [memreq.MaxWalkLevel + 1]bool

	// latency accounting per class
	latSum   [2]uint64
	latCount [2]uint64
}

// bankQueue is a ring buffer: pops are O(1), which matters because every
// data access flows through a bank queue.
type bankQueue struct {
	items []bankItem
	head  int
	n     int
}

type bankItem struct {
	readyAt int64
	req     *memreq.Request
}

func (q *bankQueue) push(it bankItem) {
	if q.n == len(q.items) {
		q.grow()
	}
	q.items[(q.head+q.n)%len(q.items)] = it
	q.n++
}

func (q *bankQueue) grow() {
	next := make([]bankItem, max(8, len(q.items)*2))
	for i := 0; i < q.n; i++ {
		next[i] = q.items[(q.head+i)%len(q.items)]
	}
	q.items = next
	q.head = 0
}

func (q *bankQueue) front() *bankItem {
	return &q.items[q.head]
}

func (q *bankQueue) pop() bankItem {
	it := q.items[q.head]
	q.items[q.head].req = nil
	q.head = (q.head + 1) % len(q.items)
	q.n--
	return it
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// New creates a cache. backend may be nil only for caches that are guaranteed
// never to miss or write through (not used in practice; the simulator always
// wires a backend).
func New(cfg Config, backend Backend) *Cache {
	if cfg.LineSize <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry %+v", cfg.Name, cfg))
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.PortsPerBank <= 0 {
		cfg.PortsPerBank = 1
	}
	numLines := cfg.SizeBytes / cfg.LineSize
	sets := numLines / cfg.Ways
	if sets == 0 {
		panic(fmt.Sprintf("cache %s: fewer lines than ways", cfg.Name))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	if 1<<shift != cfg.LineSize {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	c := &Cache{
		cfg:         cfg,
		lineShift:   shift,
		sets:        sets,
		lines:       cfg.Arena.take(sets * cfg.Ways),
		backend:     backend,
		queues:      make([]bankQueue, cfg.Banks),
		mshrs:       make(map[uint64]*mshr),
		bypassMSHRs: make(map[uint64]*mshr),
		pool:        &memreq.Pool{},
	}
	if cfg.WriteCombineWindow > 0 {
		c.combineCur = make(map[uint64]struct{})
		c.combinePrev = make(map[uint64]struct{})
	}
	return c
}

// SetRequestPool replaces the cache's private request pool, so one simulator
// can share a single free list across its components. Must be called before
// the first Submit.
func (c *Cache) SetRequestPool(p *memreq.Pool) { c.pool = p }

// getMSHR takes a recycled mshr (or builds one with its completion closure
// bound) for the given line.
func (c *Cache) getMSHR(lineAddr uint64, bypass bool) *mshr {
	var m *mshr
	if n := len(c.mshrFree); n > 0 {
		m = c.mshrFree[n-1]
		c.mshrFree[n-1] = nil
		c.mshrFree = c.mshrFree[:n-1]
	} else {
		m = c.newMSHR()
	}
	m.lineAddr = lineAddr
	m.bypass = bypass
	return m
}

// newMSHR builds a fresh mshr with its completion closure bound.
func (c *Cache) newMSHR() *mshr {
	m := &mshr{}
	m.fillDone = func(now int64, fr *memreq.Request) { c.fillArrived(now, m, fr) }
	return m
}

func (c *Cache) putMSHR(m *mshr) {
	for i := range m.waiting {
		m.waiting[i] = nil
	}
	m.waiting = m.waiting[:0]
	c.mshrFree = append(c.mshrFree, m)
}

// SetBypass installs the bypass predicate (nil disables bypassing).
func (c *Cache) SetBypass(f func(r *memreq.Request) bool) {
	c.bypass = f
}

// SetWayPartition restricts each app to a subset of ways. masks[app] is a
// bitmask over way indices. An empty slice disables partitioning.
func (c *Cache) SetWayPartition(masks []uint64) {
	c.wayMask = masks
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

// LevelStats returns cumulative stats for walk level lvl (0 = data).
func (c *Cache) LevelStats(lvl int) Stats { return c.levelStats[lvl] }

// LastEpochHitRate returns the hit rate measured during the previous epoch
// for walk level lvl, and whether any probes were observed.
func (c *Cache) LastEpochHitRate(lvl int) (float64, bool) {
	return c.lastRates[lvl], c.lastValid[lvl]
}

// EpochRoll snapshots the current epoch's per-level hit rates and starts a
// new epoch. The MASK L2 bypass policy calls this on epoch boundaries (§5.2).
func (c *Cache) EpochRoll() {
	for lvl := range c.epochStats {
		probes := c.epochStats[lvl].Hits + c.epochStats[lvl].Misses
		if probes > 0 {
			c.lastRates[lvl] = float64(c.epochStats[lvl].Hits) / float64(probes)
			c.lastValid[lvl] = true
		}
		c.epochStats[lvl] = Stats{}
	}
}

// AvgLatency returns the average completion latency in cycles observed for
// the given class of read requests completed by this cache or below it.
func (c *Cache) AvgLatency(class memreq.Class) float64 {
	if c.latCount[class] == 0 {
		return 0
	}
	return float64(c.latSum[class]) / float64(c.latCount[class])
}

func (c *Cache) bankOf(lineAddr uint64) int {
	return int(lineAddr % uint64(c.cfg.Banks))
}

func (c *Cache) setOf(lineAddr uint64) int {
	return int(lineAddr % uint64(c.sets))
}

// Submit implements Backend: it accepts a request into the cache's bank
// queue. It returns false when the bank queue is full.
func (c *Cache) Submit(now int64, r *memreq.Request) bool {
	lineAddr := r.Addr >> c.lineShift
	if c.bypass != nil && r.Kind == memreq.Read && c.bypass(r) {
		// Bypassed requests skip the queue, the probe, and the fill. They
		// still consume backend bandwidth and still coalesce in MSHRs; if
		// the backend is full the line fetch waits in the retry list rather
		// than the bank queue, so it does not contend with cached traffic
		// (§5.3).
		c.levelStats[r.WalkLevel].Accesses++
		c.levelStats[r.WalkLevel].Bypasses++
		if m, ok := c.bypassMSHRs[lineAddr]; ok {
			m.waiting = append(m.waiting, r)
			return true
		}
		m := c.getMSHR(lineAddr, true)
		m.waiting = append(m.waiting, r)
		c.bypassMSHRs[lineAddr] = m
		fetch := c.pool.Get()
		fetch.ID, fetch.AppID, fetch.ASID = r.ID, r.AppID, r.ASID
		fetch.CoreID, fetch.WarpID = r.CoreID, r.WarpID
		fetch.Kind, fetch.Class, fetch.WalkLevel = memreq.Read, r.Class, r.WalkLevel
		fetch.Addr, fetch.Issue = lineAddr<<c.lineShift, r.Issue
		fetch.Done = m.fillDone
		fetch.Site, fetch.SiteRef = memreq.SiteCacheBypassFill, c.snapID
		if !c.backend.Submit(now, fetch) {
			c.retry = append(c.retry, fetch)
		}
		return true
	}
	b := c.bankOf(lineAddr)
	q := &c.queues[b]
	if c.cfg.QueueCap > 0 && q.n >= c.cfg.QueueCap {
		return false
	}
	q.push(bankItem{readyAt: now + c.cfg.Latency, req: r})
	return true
}

// PushRetry appends a refused backend submission to the retry list, in
// submission order. The simulator's sharded drain uses it: during the
// parallel L1D phase the cache's backend defers every Submit into an
// exchange buffer, and the barrier replays them — failures land here exactly
// as the sequential path's inline append would have.
func (c *Cache) PushRetry(r *memreq.Request) {
	c.retry = append(c.retry, r)
}

// QueueOccupancy returns the total number of queued requests across banks,
// used by tests and congestion metrics.
func (c *Cache) QueueOccupancy() int {
	n := 0
	for i := range c.queues {
		n += c.queues[i].n
	}
	return n
}

// Tick services each bank's ready requests (up to the port limit) and retries
// rejected backend submissions.
func (c *Cache) Tick(now int64) {
	if w := c.cfg.WriteCombineWindow; w > 0 && now >= c.combineSwapAt {
		if now-c.combineSwapAt >= w {
			// More than a whole window elapsed since the swap was due
			// (idle gap): both generations are stale.
			clear(c.combinePrev)
		} else {
			c.combineCur, c.combinePrev = c.combinePrev, c.combineCur
		}
		clear(c.combineCur)
		c.combineSwapAt = now + w
	}
	// Retry backend submissions first so freed backend slots are used by the
	// oldest blocked traffic.
	nkeep := 0
	for _, r := range c.retry {
		if !c.backend.Submit(now, r) {
			c.retry[nkeep] = r
			nkeep++
		}
	}
	c.retry = c.retry[:nkeep]

	for b := range c.queues {
		q := &c.queues[b]
		served := 0
		for served < c.cfg.PortsPerBank && q.n > 0 && q.front().readyAt <= now {
			item := q.pop()
			c.service(now, item.req)
			served++
		}
	}
}

// NextEvent implements engine.EventSource: the cache must be ticked when it
// has rejected submissions to retry, and otherwise no earlier than the head
// of its earliest-ready bank queue. Bank queues are strict FIFOs serviced
// only from the front, so nothing behind the head can be served sooner than
// the head's ready cycle even if its own readyAt is smaller (the MSHR-full
// re-enqueue path produces such items). MSHR fills are completion callbacks
// driven by the backend's ticks, and write-combine window swaps are replayed
// exactly by SkipTo, so neither forces a wakeup.
func (c *Cache) NextEvent(now int64) int64 {
	if len(c.retry) > 0 {
		return now
	}
	h := engine.NoEvent
	for b := range c.queues {
		q := &c.queues[b]
		if q.n > 0 {
			if r := q.front().readyAt; r < h {
				h = r
			}
		}
	}
	return h
}

// SkipTo implements engine.Skipper: replay the write-combine generation swaps
// Tick would have performed at each window boundary inside [from, to). No
// stores arrive during a skipped span (the whole system is quiescent), so
// each boundary's effect is mechanical: swap the generation sets and clear
// the new current one. Two or more boundaries leave both sets empty; the
// parity swap keeps even map identity equal to the single-stepped run.
//
// combineSwapAt >= from holds on entry: the tick at from-1 either performed a
// swap (setting combineSwapAt = from-1+window > from-1) or found
// combineSwapAt > from-1 already.
func (c *Cache) SkipTo(from, to int64) {
	w := c.cfg.WriteCombineWindow
	if w <= 0 || c.combineSwapAt >= to {
		return
	}
	n := (to-1-c.combineSwapAt)/w + 1 // boundaries combineSwapAt + k*w < to
	if n == 1 {
		c.combineCur, c.combinePrev = c.combinePrev, c.combineCur
		clear(c.combineCur)
	} else {
		clear(c.combineCur)
		clear(c.combinePrev)
		if n%2 == 1 {
			c.combineCur, c.combinePrev = c.combinePrev, c.combineCur
		}
	}
	c.combineSwapAt += n * w
}

func (c *Cache) service(now int64, r *memreq.Request) {
	lineAddr := r.Addr >> c.lineShift
	c.levelStats[r.WalkLevel].Accesses++

	set := c.setOf(lineAddr)
	base := set * c.cfg.Ways
	hitWay := -1
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == lineAddr {
			hitWay = w
			break
		}
	}

	if r.Kind == memreq.Write {
		c.serviceWrite(now, r, base, hitWay)
		return
	}

	if hitWay >= 0 {
		c.recordHit(r)
		c.stamp++
		c.lines[base+hitWay].stamp = c.stamp
		c.recordLatency(now, r)
		r.Complete(now, c.serviceLevel())
		return
	}

	c.recordMiss(r)

	// Merge into an existing MSHR if one covers this line.
	if m, ok := c.mshrs[lineAddr]; ok {
		m.waiting = append(m.waiting, r)
		return
	}
	if c.cfg.MSHRs > 0 && len(c.mshrs) >= c.cfg.MSHRs {
		// MSHRs exhausted: the request must retry through the bank queue.
		// Re-enqueue at the back with no additional latency charge beyond
		// the natural queueing delay.
		c.queues[c.bankOf(lineAddr)].push(bankItem{readyAt: now + 1, req: r})
		return
	}
	m := c.getMSHR(lineAddr, false)
	m.waiting = append(m.waiting, r)
	c.mshrs[lineAddr] = m
	fill := c.pool.Get()
	fill.ID, fill.AppID, fill.ASID = r.ID, r.AppID, r.ASID
	fill.CoreID, fill.WarpID = r.CoreID, r.WarpID
	fill.Kind, fill.Class, fill.WalkLevel = memreq.Read, r.Class, r.WalkLevel
	fill.Addr, fill.Issue = lineAddr<<c.lineShift, r.Issue
	fill.Done = m.fillDone
	fill.Site, fill.SiteRef = memreq.SiteCacheFill, c.snapID
	if !c.backend.Submit(now, fill) {
		c.retry = append(c.retry, fill)
	}
}

func (c *Cache) serviceWrite(now int64, r *memreq.Request, base, hitWay int) {
	if c.cfg.WriteBack {
		if hitWay >= 0 {
			c.recordHit(r)
			ln := &c.lines[base+hitWay]
			c.stamp++
			ln.stamp = c.stamp
			ln.dirty = true
			r.Complete(now, c.serviceLevel())
			return
		}
		c.recordMiss(r)
		// Write-allocate: install the line (fetch-on-write is approximated
		// by an immediate install plus a fill read charged to the backend),
		// then mark dirty. The store itself retires immediately via the
		// write buffer.
		lineAddr := r.Addr >> c.lineShift
		c.install(now, lineAddr, true, r.AppID)
		fill := c.pool.Get()
		fill.ID, fill.AppID, fill.ASID, fill.CoreID = r.ID, r.AppID, r.ASID, r.CoreID
		fill.Kind, fill.Class, fill.WalkLevel = memreq.Read, r.Class, r.WalkLevel
		fill.Addr, fill.Issue = lineAddr<<c.lineShift, now
		if !c.backend.Submit(now, fill) {
			c.retry = append(c.retry, fill)
		}
		r.Complete(now, c.serviceLevel())
		return
	}
	// Write-through no-allocate: update on hit, always forward, retire now.
	if hitWay >= 0 {
		c.recordHit(r)
		c.stamp++
		c.lines[base+hitWay].stamp = c.stamp
	} else {
		c.recordMiss(r)
	}
	if c.cfg.WriteCombineWindow > 0 {
		lineAddr := r.Addr >> c.lineShift
		if _, ok := c.combineCur[lineAddr]; ok {
			r.Complete(now, c.serviceLevel())
			return
		}
		if _, ok := c.combinePrev[lineAddr]; ok {
			r.Complete(now, c.serviceLevel())
			return
		}
		if c.combineCur == nil {
			c.combineCur = make(map[uint64]struct{})
			c.combinePrev = make(map[uint64]struct{})
		}
		c.combineCur[lineAddr] = struct{}{}
	}
	fwd := c.pool.Get()
	fwd.ID, fwd.AppID, fwd.ASID, fwd.CoreID = r.ID, r.AppID, r.ASID, r.CoreID
	fwd.Kind, fwd.Class, fwd.WalkLevel = memreq.Write, r.Class, r.WalkLevel
	fwd.Addr, fwd.Issue = r.Addr, now
	if !c.backend.Submit(now, fwd) {
		c.retry = append(c.retry, fwd)
	}
	r.Complete(now, c.serviceLevel())
}

// fillArrived is the bound completion handler for both regular fills and
// bypass fetches; it wakes the merged waiters and recycles the mshr.
func (c *Cache) fillArrived(now int64, m *mshr, fr *memreq.Request) {
	if m.bypass {
		delete(c.bypassMSHRs, m.lineAddr)
		for _, w := range m.waiting {
			w.Served = fr.Served
			w.Complete(now, fr.Served)
		}
		c.putMSHR(m)
		return
	}
	delete(c.mshrs, m.lineAddr)
	c.install(now, m.lineAddr, false, fr.AppID)
	for _, w := range m.waiting {
		w.Served = fr.Served
		c.recordLatency(now, w)
		w.Complete(now, fr.Served)
	}
	c.putMSHR(m)
}

// install places lineAddr into its set, evicting the LRU victim (restricted
// to the app's ways under partitioning) and emitting a writeback if dirty.
func (c *Cache) install(now int64, lineAddr uint64, dirty bool, appID int) {
	set := c.setOf(lineAddr)
	base := set * c.cfg.Ways
	victim := -1
	var victimStamp int64 = 1<<63 - 1
	var mask uint64 = ^uint64(0)
	if len(c.wayMask) > 0 && appID >= 0 && appID < len(c.wayMask) {
		mask = c.wayMask[appID]
	}
	for w := 0; w < c.cfg.Ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = w
			break
		}
		if ln.stamp < victimStamp {
			victimStamp = ln.stamp
			victim = w
		}
	}
	if victim < 0 {
		// The app's way mask is empty (misconfiguration); fall back to way 0
		// so the simulation stays live.
		victim = 0
	}
	ln := &c.lines[base+victim]
	if ln.valid && ln.dirty && c.cfg.WriteBack {
		wb := c.pool.Get()
		wb.Kind, wb.Class = memreq.Write, memreq.Data
		wb.Addr, wb.Issue, wb.AppID = ln.tag<<c.lineShift, now, appID
		if !c.backend.Submit(now, wb) {
			c.retry = append(c.retry, wb)
		}
	}
	c.stamp++
	*ln = line{tag: lineAddr, valid: true, dirty: dirty, stamp: c.stamp}
}

func (c *Cache) recordHit(r *memreq.Request) {
	c.levelStats[r.WalkLevel].Hits++
	c.epochStats[r.WalkLevel].Hits++
}

func (c *Cache) recordMiss(r *memreq.Request) {
	c.levelStats[r.WalkLevel].Misses++
	c.epochStats[r.WalkLevel].Misses++
}

func (c *Cache) recordLatency(now int64, r *memreq.Request) {
	c.latSum[r.Class] += uint64(now - r.Issue)
	c.latCount[r.Class]++
}

func (c *Cache) serviceLevel() memreq.Service {
	// The cache reports itself as L1 or L2 based on write policy; precise
	// labelling only feeds stats, and in this simulator the only write-back
	// cache is the shared L2.
	if c.cfg.WriteBack {
		return memreq.ServedL2
	}
	return memreq.ServedL1
}

// FlushFraction invalidates roughly the given fraction of lines (every k-th
// line, deterministically), modelling partial state loss across a context
// switch. Dirty victims are written back. fraction >= 1 empties the cache.
func (c *Cache) FlushFraction(now int64, fraction float64) {
	if fraction <= 0 {
		return
	}
	stride := 1
	if fraction < 1 {
		stride = int(1 / fraction)
		if stride < 1 {
			stride = 1
		}
	}
	for i := range c.lines {
		if i%stride != 0 {
			continue
		}
		ln := &c.lines[i]
		if ln.valid && ln.dirty && c.cfg.WriteBack {
			wb := c.pool.Get()
			wb.Kind, wb.Class = memreq.Write, memreq.Data
			wb.Addr, wb.Issue = ln.tag<<c.lineShift, now
			if !c.backend.Submit(now, wb) {
				c.retry = append(c.retry, wb)
			}
		}
		ln.valid = false
		ln.dirty = false
	}
}

// Contains reports whether the line holding addr is present (test helper).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	base := c.setOf(lineAddr) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == lineAddr {
			return true
		}
	}
	return false
}

// OutstandingMisses returns the number of active MSHRs (test/metrics helper).
func (c *Cache) OutstandingMisses() int { return len(c.mshrs) }
