package cache

import (
	"testing"
	"testing/quick"

	"masksim/internal/memreq"
)

func TestMSHRCapRequeues(t *testing.T) {
	be := &fakeBackend{}
	c := New(Config{
		Name: "m", SizeBytes: 1024, Ways: 2, LineSize: 64,
		Banks: 1, PortsPerBank: 8, Latency: 1, MSHRs: 1,
	}, be)
	d1 := read(c, 0, 0x1000)
	d2 := read(c, 0, 0x2000) // distinct line: exceeds the single MSHR
	drive(c, 0, 3)
	if len(be.reqs) != 1 {
		t.Fatalf("MSHR cap violated: %d fills in flight", len(be.reqs))
	}
	be.completeAll(5)
	drive(c, 6, 10)
	be.completeAll(11)
	if !*d1 || !*d2 {
		t.Fatal("capped request lost")
	}
}

func TestMultiBankParallelService(t *testing.T) {
	be := &fakeBackend{}
	c := New(Config{
		Name: "b", SizeBytes: 4096, Ways: 2, LineSize: 64,
		Banks: 4, PortsPerBank: 1, Latency: 1,
	}, be)
	// Four reads on four different banks are all serviced in one tick.
	for i := uint64(0); i < 4; i++ {
		read(c, 0, i*64)
	}
	drive(c, 0, 1)
	if len(be.reqs) != 4 {
		t.Fatalf("%d fills after one service tick, want 4 (bank parallelism)", len(be.reqs))
	}
}

func TestPortLimitSerializes(t *testing.T) {
	be := &fakeBackend{}
	c := New(Config{
		Name: "p", SizeBytes: 4096, Ways: 2, LineSize: 64,
		Banks: 1, PortsPerBank: 1, Latency: 1,
	}, be)
	read(c, 0, 0)
	read(c, 0, 4096/2) // same bank (1 bank), distinct set
	drive(c, 0, 1)
	if len(be.reqs) != 1 {
		t.Fatalf("single-port bank served %d requests in one tick", len(be.reqs))
	}
	drive(c, 2, 2)
	if len(be.reqs) != 2 {
		t.Fatal("second request never served")
	}
}

func TestLatencyRespected(t *testing.T) {
	be := &fakeBackend{}
	c := New(Config{
		Name: "lat", SizeBytes: 1024, Ways: 2, LineSize: 64,
		Banks: 1, PortsPerBank: 1, Latency: 10,
	}, be)
	read(c, 0, 0x100)
	drive(c, 0, 9)
	if len(be.reqs) != 0 {
		t.Fatal("request serviced before its access latency elapsed")
	}
	drive(c, 10, 10)
	if len(be.reqs) != 1 {
		t.Fatal("request not serviced at latency boundary")
	}
}

// Property: under an arbitrary mix of reads, every submitted read completes
// exactly once after backend responses, and hit/miss counters reconcile
// with accesses.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(addrSeeds []uint16) bool {
		if len(addrSeeds) > 128 {
			addrSeeds = addrSeeds[:128]
		}
		be := &fakeBackend{}
		c := New(Config{
			Name: "prop", SizeBytes: 2048, Ways: 4, LineSize: 64,
			Banks: 2, PortsPerBank: 2, Latency: 1,
		}, be)
		completed := 0
		now := int64(0)
		for _, seed := range addrSeeds {
			addr := uint64(seed%512) << 6
			r := &memreq.Request{
				Kind: memreq.Read, Addr: addr, Issue: now,
				Done: func(int64, *memreq.Request) { completed++ },
			}
			if !c.Submit(now, r) {
				return false
			}
			c.Tick(now)
			now++
			if now%7 == 0 {
				be.completeAll(now)
			}
		}
		for i := 0; i < 50; i++ {
			c.Tick(now)
			be.completeAll(now)
			now++
		}
		st := c.LevelStats(0)
		if st.Hits+st.Misses != st.Accesses {
			return false
		}
		return completed == len(addrSeeds) && c.OutstandingMisses() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "a", SizeBytes: 0, Ways: 2, LineSize: 64},
		{Name: "b", SizeBytes: 1024, Ways: 0, LineSize: 64},
		{Name: "c", SizeBytes: 1024, Ways: 2, LineSize: 60}, // not power of two
		{Name: "d", SizeBytes: 64, Ways: 2, LineSize: 64},   // fewer lines than ways
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", cfg.Name)
				}
			}()
			New(cfg, &fakeBackend{})
		}()
	}
}

func TestAvgLatencyTracksClasses(t *testing.T) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	r := &memreq.Request{Kind: memreq.Read, Class: memreq.Translation, WalkLevel: 2,
		Addr: 0x100, Issue: 0, Done: func(int64, *memreq.Request) {}}
	c.Submit(0, r)
	drive(c, 0, 2)
	be.completeAll(40)
	if c.AvgLatency(memreq.Translation) <= 0 {
		t.Fatal("translation latency not tracked")
	}
	if c.AvgLatency(memreq.Data) != 0 {
		t.Fatal("data latency counted without data traffic")
	}
}
