package cache

import (
	"testing"

	"masksim/internal/memreq"
)

func BenchmarkCacheHit(b *testing.B) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	read(c, 0, 0x1000)
	drive(c, 0, 2)
	be.completeAll(3)
	r := &memreq.Request{Kind: memreq.Read, Addr: 0x1000,
		Done: func(int64, *memreq.Request) {}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(10 + i*2)
		c.Submit(now, r)
		c.Tick(now + 1)
	}
}

func BenchmarkCacheMissAndFill(b *testing.B) {
	be := &fakeBackend{}
	c := smallCache(be, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i * 3)
		read(c, now, uint64(i)<<6)
		c.Tick(now + 1)
		be.completeAll(now + 2)
	}
}
