package cache

import "masksim/internal/memreq"

// ATABypass implements MASK's Address-Translation-Aware L2 Bypass (§5.3).
//
// The policy compares, per page-table level, the L2 cache hit rate of
// translation requests against the hit rate of data demand requests, both
// measured over the previous epoch. A translation request from level L
// bypasses the L2 cache when level L's hit rate fell below the data hit rate.
//
// Because fully bypassed levels would stop producing hit-rate samples (their
// requests never probe), every sampleEvery-th otherwise-bypassed request
// still takes the normal cached path. This keeps the per-level estimate fresh
// so the policy can revert when a level's locality improves — the paper
// observes (§5.3) that level hit rates change over time, which is exactly why
// a static bypass scheme is ineffective.
type ATABypass struct {
	cache *Cache
	// sampleEvery controls the dueling-sample rate; 0 disables sampling.
	sampleEvery uint64
	counters    [memreq.MaxWalkLevel + 1]uint64

	// Decisions cached per epoch; refreshed by Roll.
	bypassLevel [memreq.MaxWalkLevel + 1]bool
}

// NewATABypass builds the policy over c and installs itself as c's bypass
// predicate.
func NewATABypass(c *Cache) *ATABypass {
	p := &ATABypass{cache: c, sampleEvery: 32}
	c.SetBypass(p.ShouldBypass)
	return p
}

// Roll recomputes the per-level bypass decisions from the epoch that just
// ended and starts a new measurement epoch. Call on epoch boundaries.
func (p *ATABypass) Roll() {
	p.cache.EpochRoll()
	dataRate, dataOK := p.cache.LastEpochHitRate(0)
	for lvl := 1; lvl <= memreq.MaxWalkLevel; lvl++ {
		rate, ok := p.cache.LastEpochHitRate(lvl)
		// Bypass only when both rates have been observed and the level's
		// translation hit rate is below the data demand hit rate.
		p.bypassLevel[lvl] = dataOK && ok && rate < dataRate
	}
}

// ShouldBypass reports whether r should skip the L2 cache.
func (p *ATABypass) ShouldBypass(r *memreq.Request) bool {
	if r.Class != memreq.Translation || r.WalkLevel == 0 {
		return false
	}
	lvl := int(r.WalkLevel)
	if lvl > memreq.MaxWalkLevel {
		lvl = memreq.MaxWalkLevel
	}
	if !p.bypassLevel[lvl] {
		return false
	}
	if p.sampleEvery > 0 {
		p.counters[lvl]++
		if p.counters[lvl]%p.sampleEvery == 0 {
			return false // dueling sample keeps the estimate fresh
		}
	}
	return true
}

// BypassedLevels returns the current decision vector (levels 1..4); useful
// for tests and introspection.
func (p *ATABypass) BypassedLevels() [memreq.MaxWalkLevel + 1]bool {
	return p.bypassLevel
}
