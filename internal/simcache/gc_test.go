package simcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// mk writes a file of n bytes and stamps its mtime age before now.
func mk(t *testing.T, dir, name string, n int, now time.Time, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, make([]byte, n), 0o644); err != nil {
		t.Fatal(err)
	}
	stamp := now.Add(-age)
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	return path
}

func names(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	return out
}

func TestGCAgeExpiryKeepsNewestPerKey(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	// Three checkpoints of one fingerprint, all past MaxAge: KeepPerKey=1
	// shields only the newest.
	mk(t, dir, "aaaa-000000001000.ckpt", 10, now, 10*time.Hour)
	mk(t, dir, "aaaa-000000002000.ckpt", 10, now, 9*time.Hour)
	mk(t, dir, "aaaa-000000003000.ckpt", 10, now, 8*time.Hour)
	// A fresh entry of another fingerprint survives on age alone.
	mk(t, dir, "bbbb.json", 10, now, time.Minute)

	res := GC([]string{dir}, GCPolicy{MaxAge: time.Hour, KeepPerKey: 1}, now)
	if res.Removed != 2 {
		t.Fatalf("Removed = %d, want 2: %+v", res.Removed, res)
	}
	got := names(t, dir)
	if len(got) != 2 || got[0] != "aaaa-000000003000.ckpt" || got[1] != "bbbb.json" {
		t.Fatalf("survivors = %v, want newest aaaa checkpoint + bbbb.json", got)
	}
}

func TestGCSizeCapRemovesOldestFirst(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	mk(t, dir, strings.Repeat("a", 64)+".json", 100, now, 3*time.Hour)
	mk(t, dir, strings.Repeat("b", 64)+".json", 100, now, 2*time.Hour)
	mk(t, dir, strings.Repeat("c", 64)+".json", 100, now, 1*time.Hour)

	res := GC([]string{dir}, GCPolicy{MaxBytes: 250}, now)
	if res.Removed != 1 || res.BytesFreed != 100 {
		t.Fatalf("res = %+v, want exactly the oldest entry removed", res)
	}
	if _, err := os.Stat(filepath.Join(dir, strings.Repeat("a", 64)+".json")); !os.IsNotExist(err) {
		t.Fatal("oldest entry survived a size squeeze")
	}
}

func TestGCKeepPerKeyShieldsFromSizeCap(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	// One fingerprint's checkpoint chain plus another group's entry. The
	// squeeze must sacrifice the older checkpoint (unshielded) and leave the
	// newest of each group alone once the total fits.
	mk(t, dir, "aaaa-000000001000.ckpt", 100, now, 3*time.Hour)
	mk(t, dir, "aaaa-000000002000.ckpt", 100, now, 2*time.Hour)
	mk(t, dir, strings.Repeat("b", 64)+".json", 100, now, 1*time.Hour)

	res := GC([]string{dir}, GCPolicy{MaxBytes: 250, KeepPerKey: 1}, now)
	if res.Removed != 1 {
		t.Fatalf("res = %+v, want exactly the older checkpoint removed", res)
	}
	if _, err := os.Stat(filepath.Join(dir, "aaaa-000000001000.ckpt")); !os.IsNotExist(err) {
		t.Fatal("older checkpoint survived; the shield protected the wrong file")
	}

	// The cap is hard: squeezed far enough, shielded files go too, oldest
	// first, and the total honors the budget.
	res = GC([]string{dir}, GCPolicy{MaxBytes: 150, KeepPerKey: 1}, now)
	if res.Removed != 1 {
		t.Fatalf("res = %+v, want one shielded file sacrificed to the hard cap", res)
	}
	if got := names(t, dir); len(got) != 1 || got[0] != strings.Repeat("b", 64)+".json" {
		t.Fatalf("survivors = %v, want only the newest file", got)
	}
}

func TestGCForeignFilesUntouched(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	mk(t, dir, "README.txt", 10, now, 100*time.Hour)
	mk(t, dir, "results.csv", 10, now, 100*time.Hour)
	res := GC([]string{dir}, GCPolicy{MaxAge: time.Minute, MaxBytes: 1}, now)
	if res.Removed != 0 || res.Scanned != 0 {
		t.Fatalf("res = %+v, want foreign files ignored", res)
	}
	if got := names(t, dir); len(got) != 2 {
		t.Fatalf("survivors = %v, want both foreign files", got)
	}
}

func TestGCReclaimsStaleTempFiles(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	mk(t, dir, "entry.json.tmp123", 10, now, 2*time.Hour) // abandoned
	mk(t, dir, "entry.json.tmp456", 10, now, time.Minute) // in-flight
	res := GC([]string{dir}, GCPolicy{}, now)
	if res.Removed != 1 {
		t.Fatalf("res = %+v, want exactly the stale temp removed", res)
	}
	if got := names(t, dir); len(got) != 1 || got[0] != "entry.json.tmp456" {
		t.Fatalf("survivors = %v, want only the fresh temp", got)
	}
}

func TestGCMissingDirAndMultipleDirs(t *testing.T) {
	now := time.Now()
	cacheDir := t.TempDir()
	ckptDir := t.TempDir()
	mk(t, cacheDir, strings.Repeat("a", 64)+".json", 100, now, 5*time.Hour)
	mk(t, ckptDir, "ffff-000000001000.ckpt", 100, now, 5*time.Hour)
	mk(t, ckptDir, "ffff-000000002000.ckpt", 100, now, 4*time.Hour)

	dirs := []string{cacheDir, ckptDir, filepath.Join(cacheDir, "does-not-exist")}
	res := GC(dirs, GCPolicy{MaxAge: time.Hour, KeepPerKey: 1}, now)
	// The cache entry and the newest checkpoint are shielded; the older
	// checkpoint expires.
	if res.Removed != 1 || res.Scanned != 3 {
		t.Fatalf("res = %+v, want Scanned=3 Removed=1", res)
	}
	if got := names(t, ckptDir); len(got) != 1 || got[0] != "ffff-000000002000.ckpt" {
		t.Fatalf("checkpoint survivors = %v", got)
	}
}
