package simcache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"masksim/internal/faultinject"
	"masksim/sim"
)

// TestSingleFlight launches many concurrent requests for one key and checks
// that exactly one executes while every caller receives the shared result.
func TestSingleFlight(t *testing.T) {
	c := New("")
	const goroutines = 16
	var executions atomic.Int64
	release := make(chan struct{})
	want := &sim.Results{TotalIPC: 1.25}

	var wg sync.WaitGroup
	results := make([]*sim.Results, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Do("k", func() (*sim.Results, error) {
				executions.Add(1)
				<-release // hold the leader so the others must join in-flight
				return want, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = res
		}(i)
	}
	// Let every goroutine reach Do before the leader finishes. InflightWaits
	// vs Hits depends on timing; the invariants below don't.
	for c.Stats().Requests < goroutines {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1", n)
	}
	for i, res := range results {
		if res != want {
			t.Fatalf("goroutine %d got %p, want shared %p", i, res, want)
		}
	}
	s := c.Stats()
	if s.Requests != goroutines || s.Misses != 1 || s.Hits+s.InflightWaits != goroutines-1 {
		t.Fatalf("stats = %+v, want Requests=%d Misses=1 Hits+InflightWaits=%d",
			s, goroutines, goroutines-1)
	}
}

// TestFailureMemoized checks that a failed run is cached: the second request
// returns the same error without re-executing.
func TestFailureMemoized(t *testing.T) {
	c := New("")
	wantErr := errors.New("boom")
	var executions int
	run := func() (*sim.Results, error) {
		executions++
		return nil, wantErr
	}
	if _, err := c.Do("k", run); !errors.Is(err, wantErr) {
		t.Fatalf("first Do err = %v, want %v", err, wantErr)
	}
	if _, err := c.Do("k", run); !errors.Is(err, wantErr) {
		t.Fatalf("second Do err = %v, want %v", err, wantErr)
	}
	if executions != 1 {
		t.Fatalf("executed %d times, want 1", executions)
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v, want Hits=1", s)
	}
}

// TestPanicDoesNotWedgeWaiters checks that a panicking run func is converted
// to an error instead of leaving waiters blocked forever.
func TestPanicDoesNotWedgeWaiters(t *testing.T) {
	c := New("")
	if _, err := c.Do("k", func() (*sim.Results, error) { panic("kaboom") }); err == nil {
		t.Fatal("want error from panicking run")
	}
	// The entry is complete; a second request must not block or re-execute.
	if _, err := c.Do("k", func() (*sim.Results, error) {
		t.Fatal("re-executed after panic")
		return nil, nil
	}); err == nil {
		t.Fatal("want memoized panic error")
	}
}

// TestDiskRoundTrip persists a result, then reads it back through a fresh
// Cache on the same directory without executing.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := &sim.Results{Config: "SharedTLB", Cycles: 600, TotalIPC: 2.5}

	c1 := New(dir)
	if _, err := c1.Do("k", func() (*sim.Results, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if s := c1.Stats(); s.DiskWrites != 1 || s.DiskErrors != 0 {
		t.Fatalf("stats after write = %+v, want DiskWrites=1 DiskErrors=0", s)
	}

	c2 := New(dir)
	got, err := c2.Do("k", func() (*sim.Results, error) {
		t.Fatal("executed despite disk entry")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalIPC != want.TotalIPC || got.Cycles != want.Cycles || got.Config != want.Config {
		t.Fatalf("round-trip got %+v, want %+v", got, want)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Misses != 1 {
		t.Fatalf("stats after read = %+v, want DiskHits=1 Misses=1", s)
	}
}

// TestDiskRejectsCorruptEntry checks that garbage, version-mismatched and
// key-mismatched entries are rejected (counted in DiskErrors) and recomputed,
// with the bad file replaced by a valid one.
func TestDiskRejectsCorruptEntry(t *testing.T) {
	cases := map[string]string{
		"garbage":          "not json{",
		"version mismatch": `{"Version":99,"Key":"k","Results":{"TotalIPC":1}}`,
		"key mismatch":     `{"Version":1,"Key":"other","Results":{"TotalIPC":1}}`,
		"nil results":      `{"Version":1,"Key":"k"}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "k.json"), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			c := New(dir)
			var executed bool
			res, err := c.Do("k", func() (*sim.Results, error) {
				executed = true
				return &sim.Results{TotalIPC: 3}, nil
			})
			if err != nil || !executed || res.TotalIPC != 3 {
				t.Fatalf("res=%v err=%v executed=%v, want recompute", res, err, executed)
			}
			s := c.Stats()
			if s.DiskErrors == 0 || s.DiskHits != 0 || s.DiskWrites != 1 {
				t.Fatalf("stats = %+v, want DiskErrors>0 DiskHits=0 DiskWrites=1", s)
			}
			// The rewritten entry must now load cleanly.
			c2 := New(dir)
			got, err := c2.Do("k", func() (*sim.Results, error) {
				t.Fatal("executed despite rewritten entry")
				return nil, nil
			})
			if err != nil || got.TotalIPC != 3 {
				t.Fatalf("reload got %v err=%v", got, err)
			}
		})
	}
}

// TestAbortedNotPersisted checks that partial (aborted) results never reach
// the disk layer.
func TestAbortedNotPersisted(t *testing.T) {
	dir := t.TempDir()
	c := New(dir)
	if _, err := c.Do("k", func() (*sim.Results, error) {
		return &sim.Results{Aborted: true, AbortReason: "watchdog"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.DiskWrites != 0 {
		t.Fatalf("stats = %+v, want DiskWrites=0 for aborted result", s)
	}
	if _, err := os.Stat(filepath.Join(dir, "k.json")); !os.IsNotExist(err) {
		t.Fatalf("disk entry exists for aborted result (stat err=%v)", err)
	}
}

// fakeRemote is an in-memory RemoteStore.
type fakeRemote struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newFakeRemote() *fakeRemote { return &fakeRemote{m: map[string][]byte{}} }

func (r *fakeRemote) Get(key string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gets++
	b, ok := r.m[key]
	return b, ok
}

func (r *fakeRemote) Put(key string, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.puts++
	r.m[key] = append([]byte(nil), data...)
}

// TestRemoteHitSkipsExecution checks that an entry already present in the
// shared store resolves a miss without simulating and is written through to
// the local disk layer.
func TestRemoteHitSkipsExecution(t *testing.T) {
	remote := newFakeRemote()
	want := &sim.Results{Config: "MASK", TotalIPC: 4.5}
	b, err := EncodeEntry("k", want)
	if err != nil {
		t.Fatal(err)
	}
	remote.m["k"] = b

	dir := t.TempDir()
	c := New(dir)
	c.SetRemote(remote)
	got, err := c.Do("k", func() (*sim.Results, error) {
		t.Fatal("executed despite remote entry")
		return nil, nil
	})
	if err != nil || got.TotalIPC != want.TotalIPC {
		t.Fatalf("got %+v err=%v", got, err)
	}
	s := c.Stats()
	if s.RemoteHits != 1 || s.DiskWrites != 1 {
		t.Fatalf("stats = %+v, want RemoteHits=1 and a disk write-through", s)
	}
	// The written-through entry now serves a fresh cache with no remote.
	c2 := New(dir)
	if _, err := c2.Do("k", func() (*sim.Results, error) {
		t.Fatal("executed despite written-through entry")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRemotePublishAndRejection checks that a computed result is published to
// the store, and that a corrupt remote entry is rejected and recomputed.
func TestRemotePublishAndRejection(t *testing.T) {
	remote := newFakeRemote()
	c := New("")
	c.SetRemote(remote)
	if _, err := c.Do("k", func() (*sim.Results, error) {
		return &sim.Results{TotalIPC: 2}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.RemotePuts != 1 {
		t.Fatalf("stats = %+v, want RemotePuts=1", s)
	}
	if _, ok := remote.m["k"]; !ok {
		t.Fatal("computed entry not published to the remote store")
	}

	// A fresh cache facing a corrupt remote entry recomputes.
	remote.m["bad"] = []byte("garbage{")
	c2 := New("")
	c2.SetRemote(remote)
	var executed bool
	if _, err := c2.Do("bad", func() (*sim.Results, error) {
		executed = true
		return &sim.Results{TotalIPC: 3}, nil
	}); err != nil || !executed {
		t.Fatalf("err=%v executed=%v, want recompute past corrupt remote entry", err, executed)
	}
	if s := c2.Stats(); s.RemoteErrors != 1 {
		t.Fatalf("stats = %+v, want RemoteErrors=1", s)
	}
}

// TestCanceledNotMemoized checks that a cancellation outcome does not poison
// the key: the next request re-executes, unlike ordinary failures.
func TestCanceledNotMemoized(t *testing.T) {
	c := New("")
	wantErr := fmt.Errorf("run aborted: %w", context.Canceled)
	if _, err := c.Do("k", func() (*sim.Results, error) { return nil, wantErr }); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Do err = %v", err)
	}
	want := &sim.Results{TotalIPC: 9}
	got, err := c.Do("k", func() (*sim.Results, error) { return want, nil })
	if err != nil || got != want {
		t.Fatalf("after cancellation: got %v err=%v, want a fresh execution", got, err)
	}
	// Deadline expiry behaves the same way.
	if _, err := c.Do("d", func() (*sim.Results, error) { return nil, context.DeadlineExceeded }); err == nil {
		t.Fatal("want deadline error")
	}
	if _, err := c.Do("d", func() (*sim.Results, error) { return want, nil }); err != nil {
		t.Fatalf("deadline outcome memoized: %v", err)
	}
}

// TestDoInfoReportsExecution pins the Executed flag: true only for the
// leader that actually ran the function.
func TestDoInfoReportsExecution(t *testing.T) {
	c := New("")
	_, executed, err := c.DoInfo("k", func() (*sim.Results, error) { return &sim.Results{}, nil })
	if err != nil || !executed {
		t.Fatalf("leader: executed=%v err=%v, want executed=true", executed, err)
	}
	_, executed, err = c.DoInfo("k", func() (*sim.Results, error) { return &sim.Results{}, nil })
	if err != nil || executed {
		t.Fatalf("hit: executed=%v err=%v, want executed=false", executed, err)
	}
}

// TestValidKey pins the store key shape.
func TestValidKey(t *testing.T) {
	good := RunKey(sim.SharedTLBConfig(), []string{"MM"}, 600)
	if !ValidKey(good) {
		t.Fatalf("real fingerprint %q rejected", good)
	}
	for _, bad := range []string{"", "k", "../../etc/passwd", strings.Repeat("g", 64), strings.Repeat("A", 64)} {
		if ValidKey(bad) {
			t.Fatalf("bad key %q accepted", bad)
		}
	}
}

// TestKeys pins the fingerprint semantics: presentation names don't matter,
// everything else does.
func TestKeys(t *testing.T) {
	base := sim.SharedTLBConfig()
	apps := []string{"MM", "RED"}

	t.Run("deterministic", func(t *testing.T) {
		if RunKey(base, apps, 600) != RunKey(base, apps, 600) {
			t.Fatal("same inputs produced different keys")
		}
	})
	t.Run("name excluded", func(t *testing.T) {
		renamed := base
		renamed.Name = "something-else"
		if RunKey(base, apps, 600) != RunKey(renamed, apps, 600) {
			t.Fatal("Name changed the key; it is presentation-only")
		}
	})
	t.Run("cycles included", func(t *testing.T) {
		if RunKey(base, apps, 600) == RunKey(base, apps, 601) {
			t.Fatal("cycles did not change the key")
		}
	})
	t.Run("apps included", func(t *testing.T) {
		if RunKey(base, apps, 600) == RunKey(base, []string{"MM", "GUP"}, 600) {
			t.Fatal("app list did not change the key")
		}
	})
	t.Run("config included", func(t *testing.T) {
		bigger := base
		bigger.L2TLBEntries *= 2
		if RunKey(base, apps, 600) == RunKey(bigger, apps, 600) {
			t.Fatal("config field did not change the key")
		}
	})
	t.Run("kind separates run and alone", func(t *testing.T) {
		if RunKey(base, []string{"MM"}, 600) == AloneKey(base, "MM", base.Cores, 600) {
			t.Fatal("run and alone keys collided")
		}
	})
	t.Run("alone normalizes static", func(t *testing.T) {
		static := base
		static.Static = true
		if AloneKey(base, "MM", 15, 600) != AloneKey(static, "MM", 15, 600) {
			t.Fatal("Static changed the alone key; sim.RunAlone ignores it")
		}
	})
	t.Run("fault plans uncacheable", func(t *testing.T) {
		if !Cacheable(base) {
			t.Fatal("plain config must be cacheable")
		}
		faulty := base
		faulty.FaultPlan = &faultinject.Plan{}
		if Cacheable(faulty) {
			t.Fatal("fault-injected config must not be cacheable")
		}
	})
}
