package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"masksim/sim"
)

// keyVersion is folded into every fingerprint so that a change to the
// canonical encoding (or to the meaning of a Config field) invalidates old
// on-disk entries instead of silently resurrecting stale results.
const keyVersion = "v1"

// Cacheable reports whether a run under cfg may be memoized. Fault-injected
// runs are excluded: a Plan carries mutable counters and exists precisely to
// exercise the supervision path, which serving a cached result would mask.
// A run with a streaming telemetry sink must actually execute — a cache hit
// would skip the simulation and starve the stream — and its buffered Results
// carry no telemetry samples, so a cached copy would shortchange later
// consumers too.
func Cacheable(cfg sim.Config) bool { return cfg.FaultPlan == nil && cfg.TelemetrySink == nil }

// configString renders cfg in a canonical, content-only form, delegating the
// canonicalization to sim.CanonicalConfig (the same normalization checkpoint
// fingerprints use): the display name, fault injection, the fast-forward
// speed knob, and the checkpoint/resume orchestration are all stripped, so
// behaviorally equal runs — including a cell resumed from a checkpoint and a
// cell run clean — share one cache entry.
func configString(cfg sim.Config) string {
	return fmt.Sprintf("%+v", sim.CanonicalConfig(cfg))
}

// RunKey fingerprints a shared multi-application run: sim.Run of names under
// cfg for cycles.
func RunKey(cfg sim.Config, names []string, cycles int64) string {
	return fingerprint("run", cfg, strings.Join(names, ","), cycles)
}

// AloneKey fingerprints an uncontended single-application run: sim.RunAlone
// of app on cores cores under cfg for cycles.
func AloneKey(cfg sim.Config, app string, cores int, cycles int64) string {
	// sim.RunAlone never partitions resources; normalize so direct RunAlone
	// callers and AloneIPC agree on the key.
	cfg.Static = false
	return fingerprint("alone", cfg, fmt.Sprintf("%s/%d", app, cores), cycles)
}

// fingerprint hashes the canonical description of one simulation into a
// stable hex key (also used as the on-disk entry name).
func fingerprint(kind string, cfg sim.Config, apps string, cycles int64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|apps=%s|cycles=%d|cfg=%s",
		keyVersion, kind, apps, cycles, configString(cfg))))
	return hex.EncodeToString(sum[:])
}
