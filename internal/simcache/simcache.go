// Package simcache is the campaign-wide, content-addressed simulation result
// cache behind the experiments harness. A run is identified by a
// deterministic fingerprint of its full sim.Config (minus presentation
// metadata), application list and cycle budget; requesting the same
// fingerprint twice — from the same experiment or from two different
// experiments sharing one Cache — executes the simulation once and shares the
// completed *sim.Results read-only.
//
// Memoization is single-flight: concurrent requests for one key block on the
// single execution instead of racing to duplicate it. Failures are memoized
// too, so a broken run surfaces once instead of being retried by every
// dependent cell.
//
// An optional on-disk layer (New with a non-empty dir) persists successful
// results as fingerprint-named JSON entries, written atomically, letting an
// interrupted campaign resume without redoing completed cells. Corrupt or
// version-mismatched entries are rejected and recomputed.
package simcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"masksim/internal/snapshot"
	"masksim/sim"
)

// Stats counts cache traffic. Requests = Hits + InflightWaits + Misses;
// simulations actually executed = Misses - DiskHits.
type Stats struct {
	// Requests counts lookups.
	Requests uint64
	// Hits counts requests served from an already-completed entry.
	Hits uint64
	// InflightWaits counts requests that joined a computation already running
	// for the same key (single-flight dedup).
	InflightWaits uint64
	// Misses counts requests that became the executing leader for their key.
	Misses uint64
	// DiskHits counts misses resolved from the on-disk cache without
	// simulating.
	DiskHits uint64
	// DiskWrites counts entries persisted to the on-disk cache.
	DiskWrites uint64
	// DiskErrors counts unreadable, corrupt or unwritable disk entries; they
	// are non-fatal (the run is recomputed or simply not persisted).
	DiskErrors uint64
}

// Cache memoizes simulation results by fingerprint. The zero value is not
// usable; construct with New.
type Cache struct {
	dir string

	mu      sync.Mutex
	entries map[string]*entry
	stats   Stats
}

// entry is one key's slot: done closes when res/err are final.
type entry struct {
	done chan struct{}
	res  *sim.Results
	err  error
}

// New returns an empty cache. A non-empty dir enables the persistent layer:
// successful results are written there and consulted before simulating.
func New(dir string) *Cache {
	return &Cache{dir: dir, entries: make(map[string]*entry)}
}

// Dir returns the on-disk cache directory ("" when persistence is disabled).
func (c *Cache) Dir() string { return c.dir }

// Do returns the memoized outcome for key, computing it with run on first
// request. Concurrent callers of the same key block on the one execution;
// every caller gets the same *sim.Results (shared read-only) and the same
// error. Failures are memoized for the lifetime of the Cache.
func (c *Cache) Do(key string, run func() (*sim.Results, error)) (*sim.Results, error) {
	c.mu.Lock()
	c.stats.Requests++
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.stats.Hits++
			c.mu.Unlock()
		default:
			c.stats.InflightWaits++
			c.mu.Unlock()
			<-e.done
		}
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	defer close(e.done)
	if res, ok := c.loadDisk(key); ok {
		e.res = res
		return e.res, nil
	}
	e.res, e.err = func() (res *sim.Results, err error) {
		// The harness recovers panics itself; this guard only keeps a
		// panicking run func from wedging every waiter on e.done.
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("simcache: run panicked: %v", r)
			}
		}()
		return run()
	}()
	if e.err == nil && e.res != nil && !e.res.Aborted {
		c.storeDisk(key, e.res)
	}
	return e.res, e.err
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// diskEntry is the persisted form of one completed run.
type diskEntry struct {
	Version int
	Key     string
	Results *sim.Results
}

// diskVersion invalidates persisted entries when their encoding changes.
const diskVersion = 1

// path names the on-disk entry for key.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// loadDisk tries to resolve key from the persistent layer. Any defect —
// unreadable file, bad JSON, version or key mismatch — rejects the entry and
// falls back to simulating (which then overwrites it).
func (c *Cache) loadDisk(key string) (*sim.Results, bool) {
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.countDiskError()
		}
		return nil, false
	}
	var de diskEntry
	if err := json.Unmarshal(b, &de); err != nil ||
		de.Version != diskVersion || de.Key != key || de.Results == nil {
		c.countDiskError()
		return nil, false
	}
	c.mu.Lock()
	c.stats.DiskHits++
	c.mu.Unlock()
	return de.Results, true
}

// storeDisk persists a successful result durably: snapshot.WriteFileAtomic
// writes a temp file, fsyncs it, renames it into place and fsyncs the
// directory, so neither an interrupted write nor a post-rename power loss can
// leave a half-entry (or no entry) where a completed one was reported.
func (c *Cache) storeDisk(key string, res *sim.Results) {
	if c.dir == "" {
		return
	}
	b, err := json.Marshal(diskEntry{Version: diskVersion, Key: key, Results: res})
	if err != nil {
		c.countDiskError()
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.countDiskError()
		return
	}
	if err := snapshot.WriteFileAtomic(c.path(key), b, 0o644); err != nil {
		c.countDiskError()
		return
	}
	c.mu.Lock()
	c.stats.DiskWrites++
	c.mu.Unlock()
}

func (c *Cache) countDiskError() {
	c.mu.Lock()
	c.stats.DiskErrors++
	c.mu.Unlock()
}
