// Package simcache is the campaign-wide, content-addressed simulation result
// cache behind the experiments harness. A run is identified by a
// deterministic fingerprint of its full sim.Config (minus presentation
// metadata), application list and cycle budget; requesting the same
// fingerprint twice — from the same experiment or from two different
// experiments sharing one Cache — executes the simulation once and shares the
// completed *sim.Results read-only.
//
// Memoization is single-flight: concurrent requests for one key block on the
// single execution instead of racing to duplicate it. Failures are memoized
// too, so a broken run surfaces once instead of being retried by every
// dependent cell — except cancellations and deadline expiries, which reflect
// the caller's context rather than the simulation, and are forgotten so a
// later request (a new job on a long-running server, say) can try again.
//
// An optional on-disk layer (New with a non-empty dir) persists successful
// results as fingerprint-named JSON entries, written atomically, letting an
// interrupted campaign resume without redoing completed cells. Corrupt or
// version-mismatched entries are rejected and recomputed.
//
// An optional remote layer (SetRemote) consults a shared content-addressed
// store — a maskd server's /v1/cache — after the local layers miss and
// publishes freshly computed entries back, so CI fleets and interactive
// clients dedupe work across machines. The fingerprint keys are
// machine-independent, making entries portable by construction.
package simcache

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"masksim/internal/snapshot"
	"masksim/sim"
)

// Stats counts cache traffic. Requests = Hits + InflightWaits + Misses;
// simulations actually executed = Misses - DiskHits - RemoteHits.
type Stats struct {
	// Requests counts lookups.
	Requests uint64
	// Hits counts requests served from an already-completed entry.
	Hits uint64
	// InflightWaits counts requests that joined a computation already running
	// for the same key (single-flight dedup).
	InflightWaits uint64
	// Misses counts requests that became the executing leader for their key.
	Misses uint64
	// DiskHits counts misses resolved from the on-disk cache without
	// simulating.
	DiskHits uint64
	// DiskWrites counts entries persisted to the on-disk cache.
	DiskWrites uint64
	// DiskErrors counts unreadable, corrupt or unwritable disk entries; they
	// are non-fatal (the run is recomputed or simply not persisted).
	DiskErrors uint64
	// RemoteHits counts misses resolved from the shared remote store without
	// simulating.
	RemoteHits uint64
	// RemotePuts counts entries published to the remote store.
	RemotePuts uint64
	// RemoteErrors counts remote entries rejected as corrupt or mismatched;
	// like disk errors they are non-fatal.
	RemoteErrors uint64
}

// RemoteStore is a shared content-addressed entry store, keyed by the same
// machine-independent fingerprints as the disk layer and carrying the same
// serialized entry bytes (EncodeEntry/DecodeEntry). Implementations are
// expected to be best-effort: Get reports ok=false on miss or transport
// failure, Put may drop the entry silently. maskd.StoreClient is the HTTP
// implementation.
type RemoteStore interface {
	Get(key string) (data []byte, ok bool)
	Put(key string, data []byte)
}

// Cache memoizes simulation results by fingerprint. The zero value is not
// usable; construct with New.
type Cache struct {
	dir    string
	remote RemoteStore

	mu      sync.Mutex
	entries map[string]*entry
	stats   Stats
}

// entry is one key's slot: done closes when res/err are final.
type entry struct {
	done chan struct{}
	res  *sim.Results
	err  error
}

// New returns an empty cache. A non-empty dir enables the persistent layer:
// successful results are written there and consulted before simulating.
func New(dir string) *Cache {
	return &Cache{dir: dir, entries: make(map[string]*entry)}
}

// Dir returns the on-disk cache directory ("" when persistence is disabled).
func (c *Cache) Dir() string { return c.dir }

// SetRemote attaches a shared remote store, consulted after the in-memory and
// disk layers miss and published to after each successful execution. Call
// before the cache is in use; a nil store disables the layer.
func (c *Cache) SetRemote(r RemoteStore) { c.remote = r }

// Do returns the memoized outcome for key, computing it with run on first
// request. Concurrent callers of the same key block on the one execution;
// every caller gets the same *sim.Results (shared read-only) and the same
// error. Failures are memoized for the lifetime of the Cache, except
// cancellation/deadline failures, which are forgotten so a later request
// re-executes.
func (c *Cache) Do(key string, run func() (*sim.Results, error)) (*sim.Results, error) {
	res, _, err := c.DoInfo(key, run)
	return res, err
}

// DoInfo is Do plus a report of whether this request became the executing
// leader (executed=true only for the caller whose run function was invoked
// and did not resolve from the disk or remote layer).
func (c *Cache) DoInfo(key string, run func() (*sim.Results, error)) (res *sim.Results, executed bool, err error) {
	c.mu.Lock()
	c.stats.Requests++
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			c.stats.Hits++
			c.mu.Unlock()
		default:
			c.stats.InflightWaits++
			c.mu.Unlock()
			<-e.done
		}
		return e.res, false, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	// Forget canceled/expired outcomes before waking waiters: they describe
	// the requesting context, not the simulation, and memoizing them would
	// poison the key for every future caller of a long-lived cache.
	defer func() {
		if e.err != nil && isContextErr(e.err) {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		close(e.done)
	}()
	if res, ok := c.loadDisk(key); ok {
		e.res = res
		return e.res, false, nil
	}
	if res, ok := c.loadRemote(key); ok {
		e.res = res
		return e.res, false, nil
	}
	e.res, e.err = func() (res *sim.Results, err error) {
		// The harness recovers panics itself; this guard only keeps a
		// panicking run func from wedging every waiter on e.done.
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("simcache: run panicked: %v", r)
			}
		}()
		return run()
	}()
	if e.err == nil && e.res != nil && !e.res.Aborted {
		c.storeDisk(key, e.res)
		c.storeRemote(key, e.res)
	}
	return e.res, true, e.err
}

// isContextErr reports whether err stems from cancellation or a deadline
// anywhere in its chain.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ---------------------------------------------------------------------------
// Entry serialization — shared by the disk layer, the remote layer, and the
// maskd content-addressed store endpoints.

// diskEntry is the persisted form of one completed run.
type diskEntry struct {
	Version int
	Key     string
	Results *sim.Results
}

// diskVersion invalidates persisted entries when their encoding changes.
const diskVersion = 1

// keyPattern is the shape of every cache fingerprint: lowercase hex SHA-256.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidKey reports whether key has the shape of a cache fingerprint. The
// maskd store uses it to reject path-traversal and garbage keys before
// touching the filesystem.
func ValidKey(key string) bool { return keyPattern.MatchString(key) }

// EncodeEntry serializes a completed result as the canonical entry bytes for
// key — the exact bytes the disk layer persists and the remote store carries.
func EncodeEntry(key string, res *sim.Results) ([]byte, error) {
	return json.Marshal(diskEntry{Version: diskVersion, Key: key, Results: res})
}

// DecodeEntry parses and validates entry bytes for key, rejecting garbage,
// stale versions and entries whose embedded key disagrees with the requested
// one (a swapped or tampered entry must never masquerade as another
// simulation's result).
func DecodeEntry(key string, b []byte) (*sim.Results, error) {
	var de diskEntry
	if err := json.Unmarshal(b, &de); err != nil {
		return nil, fmt.Errorf("simcache: entry for %s: %w", key, err)
	}
	if de.Version != diskVersion {
		return nil, fmt.Errorf("simcache: entry for %s has version %d, want %d", key, de.Version, diskVersion)
	}
	if de.Key != key {
		return nil, fmt.Errorf("simcache: entry claims key %s, requested %s", de.Key, key)
	}
	if de.Results == nil {
		return nil, fmt.Errorf("simcache: entry for %s carries no results", key)
	}
	return de.Results, nil
}

// path names the on-disk entry for key.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// RawEntry returns the serialized on-disk entry bytes for key, validated
// before they are served (a corrupt entry is an error, not a payload). This
// is the read side of the maskd content-addressed store.
func (c *Cache) RawEntry(key string) ([]byte, error) {
	if c.dir == "" {
		return nil, os.ErrNotExist
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, err
	}
	if _, err := DecodeEntry(key, b); err != nil {
		c.countDiskError()
		return nil, err
	}
	return b, nil
}

// PutRawEntry validates and persists serialized entry bytes for key — the
// write side of the maskd content-addressed store. The entry must decode
// cleanly and match key; writes are atomic and durable (WriteFileAtomic into
// an EnsureDir'd directory).
func (c *Cache) PutRawEntry(key string, b []byte) error {
	if c.dir == "" {
		return fmt.Errorf("simcache: no disk layer configured")
	}
	if _, err := DecodeEntry(key, b); err != nil {
		return err
	}
	if err := snapshot.EnsureDir(c.dir); err != nil {
		c.countDiskError()
		return err
	}
	if err := snapshot.WriteFileAtomic(c.path(key), b, 0o644); err != nil {
		c.countDiskError()
		return err
	}
	c.mu.Lock()
	c.stats.DiskWrites++
	c.mu.Unlock()
	return nil
}

// loadDisk tries to resolve key from the persistent layer. Any defect —
// unreadable file, bad JSON, version or key mismatch — rejects the entry and
// falls back to simulating (which then overwrites it).
func (c *Cache) loadDisk(key string) (*sim.Results, bool) {
	if c.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.countDiskError()
		}
		return nil, false
	}
	res, err := DecodeEntry(key, b)
	if err != nil {
		c.countDiskError()
		return nil, false
	}
	c.mu.Lock()
	c.stats.DiskHits++
	c.mu.Unlock()
	return res, true
}

// loadRemote tries to resolve key from the shared remote store. A fetched
// entry is validated like a disk entry and, when a disk layer exists, written
// through so later local campaigns skip the network.
func (c *Cache) loadRemote(key string) (*sim.Results, bool) {
	if c.remote == nil {
		return nil, false
	}
	b, ok := c.remote.Get(key)
	if !ok {
		return nil, false
	}
	res, err := DecodeEntry(key, b)
	if err != nil {
		c.mu.Lock()
		c.stats.RemoteErrors++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.stats.RemoteHits++
	c.mu.Unlock()
	c.storeDiskRaw(key, b)
	return res, true
}

// storeDisk persists a successful result durably: snapshot.WriteFileAtomic
// writes a temp file, fsyncs it, renames it into place and fsyncs the
// directory — and the directory itself is created via snapshot.EnsureDir — so
// neither an interrupted write nor a post-rename power loss can leave a
// half-entry (or no entry) where a completed one was reported.
func (c *Cache) storeDisk(key string, res *sim.Results) {
	if c.dir == "" {
		return
	}
	b, err := EncodeEntry(key, res)
	if err != nil {
		c.countDiskError()
		return
	}
	c.storeDiskRaw(key, b)
}

// storeDiskRaw writes already-serialized entry bytes to the disk layer.
func (c *Cache) storeDiskRaw(key string, b []byte) {
	if c.dir == "" {
		return
	}
	if err := snapshot.EnsureDir(c.dir); err != nil {
		c.countDiskError()
		return
	}
	if err := snapshot.WriteFileAtomic(c.path(key), b, 0o644); err != nil {
		c.countDiskError()
		return
	}
	c.mu.Lock()
	c.stats.DiskWrites++
	c.mu.Unlock()
}

// storeRemote publishes a successful result to the shared remote store,
// best-effort.
func (c *Cache) storeRemote(key string, res *sim.Results) {
	if c.remote == nil {
		return
	}
	b, err := EncodeEntry(key, res)
	if err != nil {
		c.mu.Lock()
		c.stats.RemoteErrors++
		c.mu.Unlock()
		return
	}
	c.remote.Put(key, b)
	c.mu.Lock()
	c.stats.RemotePuts++
	c.mu.Unlock()
}

func (c *Cache) countDiskError() {
	c.mu.Lock()
	c.stats.DiskErrors++
	c.mu.Unlock()
}
