package simcache

// Cache/checkpoint lifecycle: a shared garbage collector for the two kinds of
// fingerprint-keyed artifact directories the system accumulates — simcache
// result entries (<key>.json) and sim checkpoint files
// (<fingerprint>-<cycle>.ckpt, <fingerprint>-crash.ckpt). Both name their
// files by machine-independent fingerprints, so one retention policy covers
// the local -cache-dir, the maskd shared store, and fleet checkpoint
// directories alike.

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCPolicy bounds an artifact directory. Zero values disable the
// corresponding limit; the zero policy removes nothing but stale temp files.
type GCPolicy struct {
	// MaxBytes caps the total size across the swept directories; the oldest
	// removable files go first until the total fits. 0 = unbounded.
	MaxBytes int64
	// MaxAge removes files not modified within the window. 0 = no age limit.
	MaxAge time.Duration
	// KeepPerKey protects the newest N files of each fingerprint group from
	// age expiry, and from the size cap for as long as unshielded files
	// remain — MaxBytes is a hard bound, so once every sacrificial file is
	// gone the shielded ones go too, oldest first. Values < 1 default to 1.
	KeepPerKey int
}

// GCResult accounts one sweep.
type GCResult struct {
	// Scanned counts eligible files seen; BytesScanned their total size.
	Scanned      int
	BytesScanned int64
	// Removed counts files deleted; BytesFreed their total size.
	Removed    int
	BytesFreed int64
	// Errors counts files that could not be statted or removed.
	Errors int
}

// gcFile is one removable artifact.
type gcFile struct {
	path    string
	group   string // fingerprint group for KeepPerKey
	size    int64
	modTime time.Time
	rank    int // newest-first position within its group (0 = newest)
}

// tempMaxAge is how long an orphaned WriteFileAtomic temp file may linger
// before a sweep reclaims it (a crashed writer never removes its temp).
const tempMaxAge = time.Hour

// GC sweeps dirs under pol at the given instant. Only files the system wrote
// — *.json entries, *.ckpt checkpoints and their .tmp* orphans — are
// considered; anything else is left untouched. Missing directories are
// skipped silently, so one policy can name cache and checkpoint dirs that may
// not both exist yet.
func GC(dirs []string, pol GCPolicy, now time.Time) GCResult {
	keep := pol.KeepPerKey
	if keep < 1 {
		keep = 1
	}
	var res GCResult
	var files []gcFile
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			path := filepath.Join(dir, name)
			info, err := e.Info()
			if err != nil {
				res.Errors++
				continue
			}
			if strings.Contains(name, ".tmp") {
				// Orphaned atomic-write temp: reclaim once clearly abandoned.
				if now.Sub(info.ModTime()) > tempMaxAge {
					if os.Remove(path) == nil {
						res.Removed++
						res.BytesFreed += info.Size()
					} else {
						res.Errors++
					}
				}
				continue
			}
			group, ok := fingerprintGroup(name)
			if !ok {
				continue
			}
			res.Scanned++
			res.BytesScanned += info.Size()
			files = append(files, gcFile{path: path, group: group, size: info.Size(), modTime: info.ModTime()})
		}
	}

	// Rank each group newest-first so KeepPerKey can shield the head.
	byGroup := map[string][]int{}
	for i, f := range files {
		byGroup[f.group] = append(byGroup[f.group], i)
	}
	for _, idxs := range byGroup {
		sort.Slice(idxs, func(a, b int) bool {
			fa, fb := files[idxs[a]], files[idxs[b]]
			if !fa.modTime.Equal(fb.modTime) {
				return fa.modTime.After(fb.modTime)
			}
			return fa.path > fb.path // checkpoint names order by cycle
		})
		for rank, i := range idxs {
			files[i].rank = rank
		}
	}

	remove := func(f gcFile) {
		if os.Remove(f.path) == nil {
			res.Removed++
			res.BytesFreed += f.size
		} else {
			res.Errors++
		}
	}

	// Age pass: expire everything old enough that is not shielded.
	var live []gcFile
	for _, f := range files {
		if pol.MaxAge > 0 && f.rank >= keep && now.Sub(f.modTime) > pol.MaxAge {
			remove(f)
			continue
		}
		live = append(live, f)
	}

	// Size pass: oldest unshielded files go first; if the directory still
	// exceeds the hard cap, shielded files follow, oldest first.
	if pol.MaxBytes > 0 {
		var total int64
		for _, f := range live {
			total += f.size
		}
		sort.Slice(live, func(a, b int) bool { return live[a].modTime.Before(live[b].modTime) })
		for _, shieldedPass := range []bool{false, true} {
			for _, f := range live {
				if total <= pol.MaxBytes {
					return res
				}
				if (f.rank >= keep) == shieldedPass {
					continue
				}
				remove(f)
				total -= f.size
			}
		}
	}
	return res
}

// fingerprintGroup extracts the retention group from an artifact file name:
// the cache key of a <key>.json entry, or the simulation fingerprint of a
// <fingerprint>-<cycle>.ckpt / <fingerprint>-crash.ckpt checkpoint. ok=false
// marks a foreign file the collector must not touch.
func fingerprintGroup(name string) (string, bool) {
	switch {
	case strings.HasSuffix(name, ".json"):
		return strings.TrimSuffix(name, ".json"), true
	case strings.HasSuffix(name, ".ckpt"):
		base := strings.TrimSuffix(name, ".ckpt")
		if i := strings.IndexByte(base, '-'); i > 0 {
			return base[:i], true
		}
		return base, true
	}
	return "", false
}
