// Package ptw implements the shared, highly-threaded page table walker.
//
// All cores share one walker that admits up to MaxConcurrent simultaneous
// walks (64 in the paper, after Pichai et al. and Power et al.). Each walk
// issues a chain of dependent physical memory reads, one per page-table
// level; the reads are tagged Class=Translation with their WalkLevel so that
// the L2 cache's bypass policy (§5.3) and the DRAM scheduler's Golden Queue
// (§5.4) can distinguish them from data demand traffic.
//
// Under the PWCache baseline the walker's memory backend is the shared page
// walk cache (an 8KB cache in front of the L2); under SharedTLB and MASK the
// walker accesses the L2 data cache directly (Figure 2 of the paper).
package ptw

import (
	"masksim/internal/cache"
	"masksim/internal/engine"
	"masksim/internal/memreq"
	"masksim/internal/metrics"
	"masksim/internal/pagetable"
)

// Stats aggregates walker activity.
type Stats struct {
	Started   uint64
	Completed uint64
	LatSum    uint64

	// Concurrency sampling for the Figure 5 metric.
	Samples    uint64
	ActiveSum  uint64
	ActiveMax  int
	ActivePeak int // including queued walks
}

// AvgLatency returns the mean walk latency in cycles.
func (s Stats) AvgLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.LatSum) / float64(s.Completed)
}

// AvgConcurrent returns the average number of in-flight walks per sample.
func (s Stats) AvgConcurrent() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.ActiveSum) / float64(s.Samples)
}

// walk is the per-walk state. Walk objects are recycled through the
// walker's free list once finished; reqDone is bound once at first
// allocation so steady-state walks allocate neither the walk nor the
// completion closure of its per-level memory reads.
type walk struct {
	asid  uint8
	appID int
	vpn   uint64
	// Exactly one of done / tr is set: done for walks started via StartWalk
	// (shared-TLB fills, prefetches), tr for L1 misses routed straight to
	// the walker under the PWCache design (completed via tr.Complete so the
	// TransReq recycles into its pool).
	done func(now int64, frame uint64)
	tr   *memreq.TransReq

	addrs    []uint64
	level    int // next 1-based level to issue
	waiting  bool
	finished bool
	start    int64
	buf      [4]uint64

	// origin records which kind of continuation done/tr is, and serial is a
	// per-walker monotonic walk number; together they let checkpoint restore
	// rebind the walk's callbacks (docs/MODEL.md §9).
	origin WalkOrigin
	serial uint64

	reqDone func(now int64, r *memreq.Request)
}

// WalkOrigin identifies where a walk's completion continuation lives, so a
// restored walk can be relinked to it.
type WalkOrigin uint8

const (
	// OriginExternal: a caller outside the simulator's wiring (tests); the
	// continuation cannot be rebuilt across a checkpoint.
	OriginExternal WalkOrigin = iota
	// OriginL2Miss: done is a shared-TLB MSHR fill (tlb.L2TLB.MissDone).
	OriginL2Miss
	// OriginPrefetch: done installs a prefetched translation
	// (tlb.L2TLB.PrefetchDone).
	OriginPrefetch
	// OriginTrans: tr is set; completion is tr.Complete (PWCache design).
	OriginTrans
)

// Walker is the shared page table walker.
type Walker struct {
	max     int
	backend cache.Backend
	spaces  map[uint8]*pagetable.Space
	idgen   *memreq.IDGen

	active  []*walk
	pending []*walk
	// walkFree recycles finished walk objects.
	walkFree []*walk
	// pool recycles the walker's per-level memory read requests; New creates
	// a private pool, the simulator injects its shared one.
	pool *memreq.Pool

	perAppActive []int

	// serialSeq numbers walks for checkpoint relinking (walk.serial).
	serialSeq uint64
	// resolveDone, installed by the simulator, rebuilds a restored walk's
	// completion callback from its origin coordinates.
	resolveDone func(origin WalkOrigin, asid uint8, appID int, vpn uint64) (func(now int64, frame uint64), error)
	// bySerial indexes restored walks for the request link pass; populated
	// only by RestoreState.
	bySerial map[uint64]*walk

	// sampleEvery controls concurrency sampling (cycles); 0 disables.
	sampleEvery int64

	// faults, when non-nil, enables the demand-paging extension (§5.5).
	faults *FaultUnit

	// wedge is a fault-injection hook: when it returns true for a walk about
	// to issue a memory access, the walk is parked forever (it keeps its
	// walker slot and never completes). Used to prove the engine watchdog
	// detects translation deadlocks.
	wedge func(now int64) bool

	// latHist, when non-nil, records every completed walk's latency for
	// telemetry quantile probes. Nil (the default) costs one predictable
	// branch per completion.
	latHist *metrics.Histogram

	Stats Stats
}

// New builds a walker admitting maxConcurrent walks, reading page tables
// through backend.
func New(maxConcurrent int, backend cache.Backend, numApps int) *Walker {
	if maxConcurrent <= 0 {
		maxConcurrent = 64
	}
	return &Walker{
		max:          maxConcurrent,
		backend:      backend,
		spaces:       make(map[uint8]*pagetable.Space),
		idgen:        &memreq.IDGen{},
		pool:         &memreq.Pool{},
		perAppActive: make([]int, numApps),
		sampleEvery:  128,
	}
}

// SetRequestPool replaces the walker's private request pool with a shared
// per-simulator one. Must be called before simulation starts.
func (w *Walker) SetRequestPool(p *memreq.Pool) { w.pool = p }

// getWalk takes a recycled walk object or builds one with its request
// completion handler bound.
func (w *Walker) getWalk() *walk {
	if n := len(w.walkFree); n > 0 {
		wk := w.walkFree[n-1]
		w.walkFree[n-1] = nil
		w.walkFree = w.walkFree[:n-1]
		return wk
	}
	return w.newWalk()
}

// newWalk allocates a walk with its request completion handler bound.
func (w *Walker) newWalk() *walk {
	wk := &walk{}
	wk.reqDone = func(now int64, _ *memreq.Request) { w.advance(now, wk) }
	return wk
}

func (w *Walker) putWalk(wk *walk) {
	wk.done, wk.tr, wk.addrs = nil, nil, nil
	wk.waiting, wk.finished = false, false
	w.walkFree = append(w.walkFree, wk)
}

// AddSpace registers an address space so the walker can resolve its radix
// table. Must be called for every ASID before simulation starts.
func (w *Walker) AddSpace(s *pagetable.Space) {
	w.spaces[s.ASID()] = s
}

// StartWalk implements tlb.WalkStarter: queue a walk for (asid, vpn). The
// walk is tagged as a shared-TLB miss fill; callers outside the simulator's
// wiring (tests) get the same behavior but their walks cannot be relinked
// across a checkpoint.
func (w *Walker) StartWalk(now int64, asid uint8, appID int, vpn uint64, done func(now int64, frame uint64)) {
	w.start(now, asid, appID, vpn, done, nil, OriginL2Miss)
}

// StartPrefetchWalk implements tlb.WalkStarter for prediction-driven walks.
func (w *Walker) StartPrefetchWalk(now int64, asid uint8, appID int, vpn uint64, done func(now int64, frame uint64)) {
	w.start(now, asid, appID, vpn, done, nil, OriginPrefetch)
}

func (w *Walker) start(now int64, asid uint8, appID int, vpn uint64, done func(now int64, frame uint64), tr *memreq.TransReq, origin WalkOrigin) {
	sp, ok := w.spaces[asid]
	if !ok {
		panic("ptw: walk for unregistered ASID")
	}
	wk := w.getWalk()
	wk.asid, wk.appID, wk.vpn = asid, appID, vpn
	wk.done, wk.tr = done, tr
	wk.origin, wk.serial = origin, w.serialSeq
	w.serialSeq++
	wk.level, wk.start = 1, now
	wk.addrs = sp.WalkAddrsInto(vpn, wk.buf[:0])
	w.Stats.Started++
	if len(w.active) < w.max {
		w.admit(wk)
	} else {
		w.pending = append(w.pending, wk)
	}
	if total := len(w.active) + len(w.pending); total > w.Stats.ActivePeak {
		w.Stats.ActivePeak = total
	}
}

// SubmitTrans implements tlb.TransBackend so the PWCache design can route L1
// TLB misses straight to the walker. The pending queue is FIFO and
// unbounded: under heavy miss traffic it grows long and walks become very
// slow, which is precisely the PWCache design's weakness relative to a
// shared L2 TLB (Figure 3). FIFO order keeps walker admission fair across
// applications regardless of core tick order.
func (w *Walker) SubmitTrans(now int64, tr *memreq.TransReq) bool {
	w.start(now, tr.ASID, tr.AppID, tr.VPN, nil, tr, OriginTrans)
	return true
}

func (w *Walker) admit(wk *walk) {
	w.active = append(w.active, wk)
	if wk.appID >= 0 && wk.appID < len(w.perAppActive) {
		w.perAppActive[wk.appID]++
	}
}

// Tick issues the next dependent access for every walk that is not blocked
// on memory, admits queued walks into freed slots, and samples concurrency.
func (w *Walker) Tick(now int64) {
	// Compact finished walks (recycling their state) and admit pending ones.
	nkeep := 0
	for _, wk := range w.active {
		if !wk.finished {
			w.active[nkeep] = wk
			nkeep++
		} else {
			w.putWalk(wk)
		}
	}
	for i := nkeep; i < len(w.active); i++ {
		w.active[i] = nil
	}
	w.active = w.active[:nkeep]
	for len(w.active) < w.max && len(w.pending) > 0 {
		wk := w.pending[0]
		copy(w.pending, w.pending[1:])
		w.pending = w.pending[:len(w.pending)-1]
		w.admit(wk)
	}

	for _, wk := range w.active {
		if wk.waiting || wk.finished {
			continue
		}
		w.issue(now, wk)
	}

	if w.sampleEvery > 0 && now%w.sampleEvery == 0 {
		w.Stats.Samples++
		w.Stats.ActiveSum += uint64(len(w.active))
		if len(w.active) > w.Stats.ActiveMax {
			w.Stats.ActiveMax = len(w.active)
		}
	}
}

// NextEvent implements engine.EventSource. The walker must be ticked at now
// when it has anything to do at its next tick: a finished walk to compact
// (compaction promptly is load-bearing — ActiveWalks feeds the L2 TLB's
// admission gate and telemetry, so deferring it would change results), a
// pending walk with a free slot to admit, or an unblocked walk to issue.
// Otherwise every active walk is waiting on a memory response delivered by
// another component's tick, so the walker is purely reactive.
func (w *Walker) NextEvent(now int64) int64 {
	for _, wk := range w.active {
		if wk.finished || !wk.waiting {
			return now
		}
	}
	if len(w.pending) > 0 && len(w.active) < w.max {
		return now
	}
	return engine.NoEvent
}

// SkipTo implements engine.Skipper: replay the concurrency sampling Tick
// performs at every multiple of sampleEvery inside [from, to). len(active) is
// frozen across a skipped span (walks only change state via ticks and
// callbacks, none of which run while everything is quiescent), so each missed
// sample point contributes the same reading.
func (w *Walker) SkipTo(from, to int64) {
	if w.sampleEvery <= 0 {
		return
	}
	n := multiplesIn(from, to, w.sampleEvery)
	if n == 0 {
		return
	}
	w.Stats.Samples += uint64(n)
	w.Stats.ActiveSum += uint64(n) * uint64(len(w.active))
	if len(w.active) > w.Stats.ActiveMax {
		w.Stats.ActiveMax = len(w.active)
	}
}

// multiplesIn counts the multiples of step in the half-open span [from, to).
func multiplesIn(from, to, step int64) int64 {
	first := ((from + step - 1) / step) * step
	if first >= to {
		return 0
	}
	return (to-1-first)/step + 1
}

// SetWedgeHook installs a fault-injection hook consulted each time a walk
// issues a memory access; returning true parks the walk permanently. Pass
// nil to clear.
func (w *Walker) SetWedgeHook(fn func(now int64) bool) {
	w.wedge = fn
}

// SetLatencyHistogram wires a histogram that receives every completed walk's
// latency in cycles (nil disables, the default).
func (w *Walker) SetLatencyHistogram(h *metrics.Histogram) {
	w.latHist = h
}

func (w *Walker) issue(now int64, wk *walk) {
	if w.wedge != nil && w.wedge(now) {
		// Mark the walk as waiting on a response that will never arrive.
		wk.waiting = true
		return
	}
	lvl := wk.level
	r := w.pool.Get()
	r.ID, r.AppID, r.ASID = w.idgen.Next(), wk.appID, wk.asid
	r.Kind, r.Class, r.WalkLevel = memreq.Read, memreq.Translation, uint8(lvl)
	r.Addr, r.Issue = wk.addrs[lvl-1], now
	r.Done = wk.reqDone
	r.Site, r.SiteRef = memreq.SiteWalk, wk.serial
	if w.backend.Submit(now, r) {
		wk.waiting = true
		return
	}
	// On refusal the walk retries next tick (with a fresh request; this one
	// goes straight back to the pool).
	r.Done = nil
	r.Complete(now, memreq.ServedNone)
}

func (w *Walker) advance(now int64, wk *walk) {
	wk.waiting = false
	wk.level++
	if wk.level <= len(wk.addrs) {
		return // next dependent access issues on the following tick
	}
	// Walk complete: resolve the frame from the radix table.
	sp := w.spaces[wk.asid]
	frame, ok := sp.TranslateVPN(wk.vpn)
	if !ok {
		panic("ptw: completed walk for unmapped page")
	}
	wk.finished = true
	if wk.appID >= 0 && wk.appID < len(w.perAppActive) {
		w.perAppActive[wk.appID]--
	}
	// The walk object is recycled at the next Tick's compaction, so anything
	// that may run later (the fault callback below) must capture these locals,
	// never wk itself.
	done, tr, start := wk.done, wk.tr, wk.start
	// Demand paging (§5.5): the walk found the PTE, but a non-resident page
	// must be faulted in before the translation is usable. The meta mirrors
	// the closure's captures so a checkpoint can serialize the held
	// continuation (frame is recomputed from the page table on restore).
	if w.faults != nil {
		meta := FaultMeta{Start: start, Origin: wk.origin, AppID: wk.appID, ASID: wk.asid, VPN: wk.vpn, Tr: tr}
		if !w.faults.touch(now, wk.asid, wk.vpn, func(fnow int64) {
			w.finishWalk(fnow, start, frame, done, tr)
		}, meta) {
			return
		}
	}
	w.finishWalk(now, start, frame, done, tr)
}

// finishWalk records completion stats and delivers the frame to whichever
// continuation the walk carries (tr.Complete recycles the TransReq into its
// pool; done is the plain callback form).
func (w *Walker) finishWalk(now, start int64, frame uint64, done func(int64, uint64), tr *memreq.TransReq) {
	w.Stats.Completed++
	w.Stats.LatSum += uint64(now - start)
	if w.latHist != nil {
		w.latHist.Observe(float64(now - start))
	}
	if tr != nil {
		tr.Complete(now, frame)
		return
	}
	done(now, frame)
}

// ActiveWalks returns the number of in-flight walks.
func (w *Walker) ActiveWalks() int { return len(w.active) }

// QueuedWalks returns the number of walks waiting for a slot.
func (w *Walker) QueuedWalks() int { return len(w.pending) }

// ActiveWalksForApp returns app's in-flight walk count; with the PWCache
// design (no shared TLB) this provides the ConPTW pressure metric.
func (w *Walker) ActiveWalksForApp(app int) int {
	if app < 0 || app >= len(w.perAppActive) {
		return 0
	}
	return w.perAppActive[app]
}
