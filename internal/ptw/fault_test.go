package ptw

import (
	"testing"

	"masksim/internal/pagetable"
)

func TestFaultFirstTouchPaysLatency(t *testing.T) {
	f := NewFaultUnit(100, 4)
	fired := int64(-1)
	if f.Touch(0, 1, 42, func(now int64) { fired = now }) {
		t.Fatal("first touch reported resident")
	}
	for now := int64(1); now < 99; now++ {
		f.Tick(now)
		if fired >= 0 {
			t.Fatalf("fault completed early at %d", fired)
		}
	}
	f.Tick(100)
	if fired != 100 {
		t.Fatalf("fault completed at %d, want 100", fired)
	}
	// Page now resident: no further fault.
	if !f.Touch(101, 1, 42, func(int64) {}) {
		t.Fatal("resident page faulted again")
	}
	if f.Stats.Faults != 1 {
		t.Fatalf("fault count %d, want 1", f.Stats.Faults)
	}
}

func TestFaultMergesSamePage(t *testing.T) {
	f := NewFaultUnit(50, 4)
	done := 0
	f.Touch(0, 1, 7, func(int64) { done++ })
	f.Touch(1, 1, 7, func(int64) { done++ })
	if f.Stats.Faults != 1 {
		t.Fatalf("same-page touches raised %d faults", f.Stats.Faults)
	}
	for now := int64(0); now <= 60; now++ {
		f.Tick(now)
	}
	if done != 2 {
		t.Fatalf("%d callbacks fired, want 2", done)
	}
}

func TestFaultConcurrencyLimit(t *testing.T) {
	f := NewFaultUnit(100, 2)
	done := 0
	for vpn := uint64(0); vpn < 5; vpn++ {
		f.Touch(0, 1, vpn, func(int64) { done++ })
	}
	if f.Outstanding() != 5 {
		t.Fatalf("outstanding=%d, want 5", f.Outstanding())
	}
	// After one service window only the two in-flight faults are done.
	for now := int64(0); now <= 100; now++ {
		f.Tick(now)
	}
	if done != 2 {
		t.Fatalf("%d faults done after one window, want 2 (concurrency limit)", done)
	}
	for now := int64(101); now <= 400; now++ {
		f.Tick(now)
	}
	if done != 5 {
		t.Fatalf("%d faults done at drain, want 5", done)
	}
	if f.Stats.AvgLatency() <= 100 {
		t.Fatalf("queued faults should raise average latency above the service time, got %v",
			f.Stats.AvgLatency())
	}
}

func TestPrefaultSkipsFault(t *testing.T) {
	f := NewFaultUnit(100, 1)
	f.Prefault(1, 9)
	if !f.Touch(0, 1, 9, func(int64) {}) {
		t.Fatal("prefaulted page still faulted")
	}
}

func TestWalkerWithFaultUnit(t *testing.T) {
	mem := &fakeMem{}
	w := New(4, mem, 1)
	sp := pagetable.NewSpace(1, pagetable.PageSize4K, pagetable.NewAllocator())
	w.AddSpace(sp)
	fu := NewFaultUnit(200, 4)
	w.SetFaultUnit(fu)
	if w.Faults() != fu {
		t.Fatal("fault unit not attached")
	}

	va := uint64(0x4_0000_0000)
	sp.EnsureMapped(va)
	var doneAt int64 = -1
	w.StartWalk(0, 1, 0, sp.VPN(va), func(now int64, _ uint64) { doneAt = now })
	now := int64(0)
	for lvl := 0; lvl < 4; lvl++ {
		w.Tick(now)
		fu.Tick(now)
		mem.completeAll(now + 1)
		now += 2
	}
	// The walk finished but the fault holds the translation.
	if doneAt >= 0 {
		t.Fatal("translation returned before the fault was serviced")
	}
	for ; now < 300; now++ {
		w.Tick(now)
		fu.Tick(now)
	}
	if doneAt < 200 {
		t.Fatalf("translation at %d, want >= fault latency 200", doneAt)
	}
	if w.Stats.Completed != 1 {
		t.Fatal("walk completion not counted after fault")
	}
}
