package ptw

import (
	"masksim/internal/engine"
	"masksim/internal/memreq"
)

// FaultUnit implements the demand-paging extension the paper defers to
// future work (§5.5, citing Pascal-style demand paging and Zheng et al.).
//
// When enabled, a page's first touch raises a major fault: the walk that
// discovered it completes only after the fault service latency (the cost of
// transferring the page over the host interconnect), and at most
// Concurrency faults are serviced at once — queueing beyond that models the
// host driver's fault-handling serialization. Subsequent touches of a
// resident page proceed normally. The simulator pre-builds page tables for
// address arithmetic; residency is what faults track.
type FaultUnit struct {
	// Latency is the per-fault service time in core cycles (tens of
	// microseconds on real hardware).
	Latency int64
	// Concurrency bounds simultaneous fault services.
	Concurrency int

	resident map[faultKey]bool
	inflight []*pendingFault
	queue    []*pendingFault

	// walker, set by SetFaultUnit, rebuilds held continuations on checkpoint
	// restore.
	walker *Walker

	Stats FaultStats
}

// FaultStats counts demand-paging activity.
type FaultStats struct {
	Faults    uint64
	LatSum    uint64
	Completed uint64
}

// AvgLatency returns mean fault latency including queueing.
func (s FaultStats) AvgLatency() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.LatSum) / float64(s.Completed)
}

type faultKey struct {
	asid uint8
	vpn  uint64
}

type pendingFault struct {
	key    faultKey
	start  int64
	doneAt int64
	notify []faultNotify
}

// faultNotify pairs a held continuation with the serializable description the
// walker needs to rebuild it after a checkpoint restore.
type faultNotify struct {
	fn   func(now int64)
	meta FaultMeta
}

// FaultMeta describes a fault-held walk continuation: the walk's start cycle
// and origin coordinates. The physical frame is recomputed from the page
// table on restore, and Tr is serialized through the request registry.
type FaultMeta struct {
	Start  int64
	Origin WalkOrigin
	AppID  int
	ASID   uint8
	VPN    uint64
	Tr     *memreq.TransReq
}

// NewFaultUnit builds a fault unit.
func NewFaultUnit(latency int64, concurrency int) *FaultUnit {
	if concurrency < 1 {
		concurrency = 1
	}
	return &FaultUnit{
		Latency:     latency,
		Concurrency: concurrency,
		resident:    make(map[faultKey]bool),
	}
}

// Touch reports whether (asid, vpn) is resident. If not, done is queued and
// invoked when the fault completes; Touch returns false in that case.
// Continuations registered through Touch carry no relink metadata and so
// cannot survive a checkpoint (the walker uses touch with a FaultMeta).
func (f *FaultUnit) Touch(now int64, asid uint8, vpn uint64, done func(now int64)) bool {
	return f.touch(now, asid, vpn, done, FaultMeta{})
}

func (f *FaultUnit) touch(now int64, asid uint8, vpn uint64, done func(now int64), meta FaultMeta) bool {
	key := faultKey{asid, vpn}
	if f.resident[key] {
		return true
	}
	// Merge into an in-flight or queued fault for the same page.
	for _, p := range append(f.inflight, f.queue...) {
		if p.key == key {
			p.notify = append(p.notify, faultNotify{fn: done, meta: meta})
			return false
		}
	}
	f.Stats.Faults++
	p := &pendingFault{key: key, start: now, notify: []faultNotify{{fn: done, meta: meta}}}
	if len(f.inflight) < f.Concurrency {
		p.doneAt = now + f.Latency
		f.inflight = append(f.inflight, p)
	} else {
		f.queue = append(f.queue, p)
	}
	return false
}

// Prefault marks a page resident without cost (used to pre-populate pinned
// regions, e.g. the first touch of each hot page at load).
func (f *FaultUnit) Prefault(asid uint8, vpn uint64) {
	f.resident[faultKey{asid, vpn}] = true
}

// Tick completes due faults and starts queued ones.
func (f *FaultUnit) Tick(now int64) {
	nkeep := 0
	for _, p := range f.inflight {
		if p.doneAt <= now {
			f.resident[p.key] = true
			f.Stats.Completed++
			f.Stats.LatSum += uint64(now - p.start)
			for _, cb := range p.notify {
				cb.fn(now)
			}
		} else {
			f.inflight[nkeep] = p
			nkeep++
		}
	}
	f.inflight = f.inflight[:nkeep]
	for len(f.inflight) < f.Concurrency && len(f.queue) > 0 {
		p := f.queue[0]
		copy(f.queue, f.queue[1:])
		f.queue = f.queue[:len(f.queue)-1]
		p.doneAt = now + f.Latency
		f.inflight = append(f.inflight, p)
	}
}

// NextEvent implements engine.EventSource: the earliest completion among
// in-flight faults, now if a queued fault could start immediately, NoEvent
// when idle. Queued faults behind a full in-flight set can only start after
// some in-flight fault completes, so the completion horizon covers them.
func (f *FaultUnit) NextEvent(now int64) int64 {
	if len(f.queue) > 0 && len(f.inflight) < f.Concurrency {
		return now
	}
	h := engine.NoEvent
	for _, p := range f.inflight {
		if p.doneAt < h {
			h = p.doneAt
		}
	}
	return h
}

// Outstanding returns in-flight plus queued fault counts.
func (f *FaultUnit) Outstanding() int { return len(f.inflight) + len(f.queue) }

// SetFaultUnit attaches demand paging to the walker: a completed walk for a
// non-resident page is held until its fault is serviced.
func (w *Walker) SetFaultUnit(f *FaultUnit) { w.faults = f; f.walker = w }

// Faults returns the attached fault unit (nil when demand paging is off).
func (w *Walker) Faults() *FaultUnit { return w.faults }
