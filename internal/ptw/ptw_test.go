package ptw

import (
	"testing"

	"masksim/internal/memreq"
	"masksim/internal/pagetable"
)

// fakeMem completes requests on demand, recording order and levels.
type fakeMem struct {
	reqs   []*memreq.Request
	reject bool
}

func (f *fakeMem) Submit(now int64, r *memreq.Request) bool {
	if f.reject {
		return false
	}
	f.reqs = append(f.reqs, r)
	return true
}

func (f *fakeMem) completeAll(now int64) int {
	reqs := f.reqs
	f.reqs = nil
	for _, r := range reqs {
		r.Complete(now, memreq.ServedL2)
	}
	return len(reqs)
}

func newWalkerWithPage(t *testing.T, maxConcurrent int) (*Walker, *fakeMem, *pagetable.Space, uint64) {
	t.Helper()
	mem := &fakeMem{}
	w := New(maxConcurrent, mem, 2)
	sp := pagetable.NewSpace(1, pagetable.PageSize4K, pagetable.NewAllocator())
	w.AddSpace(sp)
	va := uint64(0x4_0000_0000)
	frame := sp.EnsureMapped(va)
	return w, mem, sp, frame
}

func TestWalkIssuesAllLevelsInOrder(t *testing.T) {
	w, mem, sp, frame := newWalkerWithPage(t, 4)
	va := uint64(0x4_0000_0000)
	var got uint64
	w.StartWalk(0, 1, 0, sp.VPN(va), func(now int64, f uint64) { got = f })

	now := int64(0)
	for lvl := 1; lvl <= 4; lvl++ {
		w.Tick(now)
		if len(mem.reqs) != 1 {
			t.Fatalf("level %d: %d requests in flight, want 1 (dependent chain)", lvl, len(mem.reqs))
		}
		r := mem.reqs[0]
		if r.Class != memreq.Translation || int(r.WalkLevel) != lvl {
			t.Fatalf("level %d request has class=%v level=%d", lvl, r.Class, r.WalkLevel)
		}
		mem.completeAll(now + 1)
		now += 2
	}
	if got != frame {
		t.Fatalf("walk returned frame %d, want %d", got, frame)
	}
	if w.Stats.Completed != 1 {
		t.Fatal("completion not counted")
	}
}

func TestWalkAddressesMatchPageTable(t *testing.T) {
	w, mem, sp, _ := newWalkerWithPage(t, 4)
	va := uint64(0x4_0000_0000)
	vpn := sp.VPN(va)
	want := sp.WalkAddrs(vpn)
	w.StartWalk(0, 1, 0, vpn, func(int64, uint64) {})
	now := int64(0)
	for lvl := 0; lvl < 4; lvl++ {
		w.Tick(now)
		if mem.reqs[0].Addr != want[lvl] {
			t.Fatalf("level %d fetch at %#x, want %#x", lvl+1, mem.reqs[0].Addr, want[lvl])
		}
		mem.completeAll(now + 1)
		now += 2
	}
}

func TestConcurrencyLimit(t *testing.T) {
	w, mem, sp, _ := newWalkerWithPage(t, 2)
	base := uint64(0x4_0000_0000)
	for i := 0; i < 5; i++ {
		va := base + uint64(i)*pagetable.PageSize4K
		sp.EnsureMapped(va)
		w.StartWalk(0, 1, 0, sp.VPN(va), func(int64, uint64) {})
	}
	w.Tick(0)
	if w.ActiveWalks() != 2 {
		t.Fatalf("active=%d, want 2 (limit)", w.ActiveWalks())
	}
	if w.QueuedWalks() != 3 {
		t.Fatalf("queued=%d, want 3", w.QueuedWalks())
	}
	// Finish the active walks; queued ones must be admitted.
	for now := int64(1); now < 30; now++ {
		mem.completeAll(now)
		w.Tick(now)
	}
	if w.Stats.Completed != 5 {
		t.Fatalf("completed=%d, want 5", w.Stats.Completed)
	}
}

func TestPerAppActiveCounts(t *testing.T) {
	w, _, sp, _ := newWalkerWithPage(t, 8)
	base := uint64(0x4_0000_0000)
	for i := 0; i < 3; i++ {
		va := base + uint64(i)*pagetable.PageSize4K
		sp.EnsureMapped(va)
		app := i % 2
		w.StartWalk(0, 1, app, sp.VPN(va), func(int64, uint64) {})
	}
	w.Tick(0)
	if w.ActiveWalksForApp(0) != 2 || w.ActiveWalksForApp(1) != 1 {
		t.Fatalf("per-app active = %d/%d, want 2/1",
			w.ActiveWalksForApp(0), w.ActiveWalksForApp(1))
	}
}

func TestMemRejectionRetries(t *testing.T) {
	w, mem, sp, frame := newWalkerWithPage(t, 4)
	mem.reject = true
	va := uint64(0x4_0000_0000)
	var got uint64
	w.StartWalk(0, 1, 0, sp.VPN(va), func(now int64, f uint64) { got = f })
	w.Tick(0)
	w.Tick(1)
	if len(mem.reqs) != 0 {
		t.Fatal("rejected request recorded")
	}
	mem.reject = false
	now := int64(2)
	for lvl := 0; lvl < 4; lvl++ {
		w.Tick(now)
		mem.completeAll(now + 1)
		now += 2
	}
	if got != frame {
		t.Fatal("walk did not recover from rejections")
	}
}

func TestSubmitTransRoutesToWalk(t *testing.T) {
	w, mem, sp, frame := newWalkerWithPage(t, 4)
	va := uint64(0x4_0000_0000)
	var got uint64
	tr := &memreq.TransReq{ASID: 1, AppID: 0, VPN: sp.VPN(va),
		Done: func(now int64, f uint64) { got = f }}
	if !w.SubmitTrans(0, tr) {
		t.Fatal("SubmitTrans rejected")
	}
	now := int64(0)
	for lvl := 0; lvl < 4; lvl++ {
		w.Tick(now)
		mem.completeAll(now + 1)
		now += 2
	}
	if got != frame {
		t.Fatal("SubmitTrans walk did not complete")
	}
}

func TestWalkUnknownASIDPanics(t *testing.T) {
	mem := &fakeMem{}
	w := New(4, mem, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("walk for unregistered ASID did not panic")
		}
	}()
	w.StartWalk(0, 9, 0, 1, func(int64, uint64) {})
}

func TestConcurrencySampling(t *testing.T) {
	w, mem, sp, _ := newWalkerWithPage(t, 8)
	base := uint64(0x4_0000_0000)
	for i := 0; i < 4; i++ {
		va := base + uint64(i)*pagetable.PageSize4K
		sp.EnsureMapped(va)
		w.StartWalk(0, 1, 0, sp.VPN(va), func(int64, uint64) {})
	}
	// Tick across a sampling boundary without completing anything.
	for now := int64(0); now <= 128; now++ {
		w.Tick(now)
	}
	if w.Stats.Samples == 0 || w.Stats.AvgConcurrent() < 3.5 {
		t.Fatalf("sampling broken: samples=%d avg=%v", w.Stats.Samples, w.Stats.AvgConcurrent())
	}
	mem.completeAll(200)
}
