package ptw

import (
	"fmt"

	"masksim/internal/memreq"
	"masksim/internal/metrics"
)

// WalkState is one in-flight (or queued, or finished-but-uncompacted) walk.
// The per-level physical addresses are not serialized: they are a pure
// function of the page table, which is rebuilt deterministically, so restore
// recomputes them.
type WalkState struct {
	ASID     uint8
	AppID    int
	VPN      uint64
	Origin   uint8
	Serial   uint64
	Tr       int32
	Level    int
	Waiting  bool
	Finished bool
	Start    int64
}

// WalkerState is the walker's checkpoint image.
type WalkerState struct {
	Active       []WalkState
	Pending      []WalkState
	WalkFree     int
	PerAppActive []int
	SerialSeq    uint64
	IDGen        uint64
	Stats        Stats
	LatHist      *metrics.HistogramState
}

// SetDoneResolver installs the hook RestoreState uses to rebuild a walk's
// completion callback from its origin coordinates; the simulator wires it to
// the shared TLB's MSHR and prefetch lookups.
func (w *Walker) SetDoneResolver(fn func(origin WalkOrigin, asid uint8, appID int, vpn uint64) (func(now int64, frame uint64), error)) {
	w.resolveDone = fn
}

// SnapshotState implements engine.Snapshotter; ctx is the *memreq.Table.
func (w *Walker) SnapshotState(ctx any) (any, error) {
	tab, ok := ctx.(*memreq.Table)
	if !ok {
		return nil, fmt.Errorf("ptw: snapshot context is %T, want *memreq.Table", ctx)
	}
	st := WalkerState{
		WalkFree:     len(w.walkFree),
		PerAppActive: append([]int(nil), w.perAppActive...),
		SerialSeq:    w.serialSeq,
		IDGen:        w.idgen.State(),
		Stats:        w.Stats,
	}
	snap := func(wk *walk) WalkState {
		ws := WalkState{
			ASID: wk.asid, AppID: wk.appID, VPN: wk.vpn,
			Origin: uint8(wk.origin), Serial: wk.serial,
			Tr: memreq.NilRef, Level: wk.level,
			Waiting: wk.waiting, Finished: wk.finished, Start: wk.start,
		}
		// A finished walk has already delivered its continuation (tr may
		// point at a recycled object); only live continuations serialize.
		if !wk.finished {
			ws.Tr = tab.Trans(wk.tr)
		}
		return ws
	}
	for _, wk := range w.active {
		st.Active = append(st.Active, snap(wk))
	}
	for _, wk := range w.pending {
		st.Pending = append(st.Pending, snap(wk))
	}
	if w.latHist != nil {
		h := w.latHist.State()
		st.LatHist = &h
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter; ctx is the *memreq.RestoreTable.
func (w *Walker) RestoreState(ctx any, state any) error {
	rt, ok := ctx.(*memreq.RestoreTable)
	if !ok {
		return fmt.Errorf("ptw: restore context is %T, want *memreq.RestoreTable", ctx)
	}
	st, ok := state.(WalkerState)
	if !ok {
		return fmt.Errorf("ptw: restore state is %T, want WalkerState", state)
	}
	w.serialSeq = st.SerialSeq
	w.idgen.SetState(st.IDGen)
	w.Stats = st.Stats
	copy(w.perAppActive, st.PerAppActive)
	w.bySerial = make(map[uint64]*walk, len(st.Active)+len(st.Pending))
	w.active = w.active[:0]
	for _, ws := range st.Active {
		wk, err := w.buildWalk(ws, rt)
		if err != nil {
			return err
		}
		w.active = append(w.active, wk)
	}
	w.pending = w.pending[:0]
	for _, ws := range st.Pending {
		wk, err := w.buildWalk(ws, rt)
		if err != nil {
			return err
		}
		w.pending = append(w.pending, wk)
	}
	for len(w.walkFree) < st.WalkFree {
		w.walkFree = append(w.walkFree, w.newWalk())
	}
	if st.LatHist != nil && w.latHist != nil {
		w.latHist.SetState(*st.LatHist)
	}
	return nil
}

// buildWalk materializes one serialized walk, recomputing its page-table
// addresses and rebinding its completion continuation.
func (w *Walker) buildWalk(ws WalkState, rt *memreq.RestoreTable) (*walk, error) {
	sp, ok := w.spaces[ws.ASID]
	if !ok {
		return nil, fmt.Errorf("ptw: checkpoint walk for unregistered ASID %d", ws.ASID)
	}
	wk := w.getWalk()
	wk.asid, wk.appID, wk.vpn = ws.ASID, ws.AppID, ws.VPN
	wk.origin, wk.serial = WalkOrigin(ws.Origin), ws.Serial
	wk.level, wk.waiting, wk.finished, wk.start = ws.Level, ws.Waiting, ws.Finished, ws.Start
	wk.addrs = sp.WalkAddrsInto(ws.VPN, wk.buf[:0])
	w.bySerial[ws.Serial] = wk
	if ws.Finished {
		return wk, nil
	}
	wk.tr = rt.Trans(ws.Tr)
	if wk.tr == nil {
		if w.resolveDone == nil {
			return nil, fmt.Errorf("ptw: restore needs a done resolver for walk origin %d", ws.Origin)
		}
		done, err := w.resolveDone(wk.origin, ws.ASID, ws.AppID, ws.VPN)
		if err != nil {
			return nil, fmt.Errorf("ptw: relink walk (asid %d vpn %#x): %w", ws.ASID, ws.VPN, err)
		}
		wk.done = done
	}
	return wk, nil
}

// ReqDoneBySerial resolves a restored walk's per-level request completion
// handler; the simulator's link pass rebinds memreq.SiteWalk requests
// through it. Valid only after RestoreState.
func (w *Walker) ReqDoneBySerial(serial uint64) (func(now int64, r *memreq.Request), bool) {
	wk, ok := w.bySerial[serial]
	if !ok {
		return nil, false
	}
	return wk.reqDone, true
}

// --- fault unit -------------------------------------------------------------

// FaultKeyState identifies one (asid, vpn) page.
type FaultKeyState struct {
	ASID uint8
	VPN  uint64
}

// FaultNotifyState is one held walk continuation in serialized form.
type FaultNotifyState struct {
	Start  int64
	Origin uint8
	AppID  int
	ASID   uint8
	VPN    uint64
	Tr     int32
}

// PendingFaultState is one in-flight or queued page fault.
type PendingFaultState struct {
	ASID   uint8
	VPN    uint64
	Start  int64
	DoneAt int64
	Notify []FaultNotifyState
}

// FaultUnitState is the fault unit's checkpoint image.
type FaultUnitState struct {
	Resident []FaultKeyState
	Inflight []PendingFaultState
	Queue    []PendingFaultState
	Stats    FaultStats
}

// SnapshotState implements engine.Snapshotter; ctx is the *memreq.Table.
func (f *FaultUnit) SnapshotState(ctx any) (any, error) {
	tab, ok := ctx.(*memreq.Table)
	if !ok {
		return nil, fmt.Errorf("ptw: snapshot context is %T, want *memreq.Table", ctx)
	}
	st := FaultUnitState{Stats: f.Stats}
	for key := range f.resident {
		st.Resident = append(st.Resident, FaultKeyState{ASID: key.asid, VPN: key.vpn})
	}
	snap := func(p *pendingFault) (PendingFaultState, error) {
		ps := PendingFaultState{ASID: p.key.asid, VPN: p.key.vpn, Start: p.start, DoneAt: p.doneAt}
		for _, n := range p.notify {
			// ASIDs are assigned from 1, so a zero ASID marks a continuation
			// registered through the metadata-less Touch entry point.
			if n.meta.ASID == 0 || (n.meta.Tr == nil && n.meta.Origin == OriginExternal) {
				return ps, fmt.Errorf("ptw: fault for (asid %d, vpn %#x) holds a continuation without relink metadata", p.key.asid, p.key.vpn)
			}
			ps.Notify = append(ps.Notify, FaultNotifyState{
				Start: n.meta.Start, Origin: uint8(n.meta.Origin), AppID: n.meta.AppID,
				ASID: n.meta.ASID, VPN: n.meta.VPN, Tr: tab.Trans(n.meta.Tr),
			})
		}
		return ps, nil
	}
	for _, p := range f.inflight {
		ps, err := snap(p)
		if err != nil {
			return nil, err
		}
		st.Inflight = append(st.Inflight, ps)
	}
	for _, p := range f.queue {
		ps, err := snap(p)
		if err != nil {
			return nil, err
		}
		st.Queue = append(st.Queue, ps)
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter; ctx is the *memreq.RestoreTable.
func (f *FaultUnit) RestoreState(ctx any, state any) error {
	rt, ok := ctx.(*memreq.RestoreTable)
	if !ok {
		return fmt.Errorf("ptw: restore context is %T, want *memreq.RestoreTable", ctx)
	}
	st, ok := state.(FaultUnitState)
	if !ok {
		return fmt.Errorf("ptw: restore state is %T, want FaultUnitState", state)
	}
	if f.walker == nil {
		return fmt.Errorf("ptw: fault unit restore requires an attached walker")
	}
	f.Stats = st.Stats
	f.resident = make(map[faultKey]bool, len(st.Resident))
	for _, k := range st.Resident {
		f.resident[faultKey{asid: k.ASID, vpn: k.VPN}] = true
	}
	build := func(ps PendingFaultState) (*pendingFault, error) {
		p := &pendingFault{
			key:   faultKey{asid: ps.ASID, vpn: ps.VPN},
			start: ps.Start, doneAt: ps.DoneAt,
		}
		for _, ns := range ps.Notify {
			meta := FaultMeta{
				Start: ns.Start, Origin: WalkOrigin(ns.Origin), AppID: ns.AppID,
				ASID: ns.ASID, VPN: ns.VPN, Tr: rt.Trans(ns.Tr),
			}
			fn, err := f.walker.faultContinuation(meta)
			if err != nil {
				return nil, err
			}
			p.notify = append(p.notify, faultNotify{fn: fn, meta: meta})
		}
		return p, nil
	}
	f.inflight = f.inflight[:0]
	for _, ps := range st.Inflight {
		p, err := build(ps)
		if err != nil {
			return err
		}
		f.inflight = append(f.inflight, p)
	}
	f.queue = f.queue[:0]
	for _, ps := range st.Queue {
		p, err := build(ps)
		if err != nil {
			return err
		}
		f.queue = append(f.queue, p)
	}
	return nil
}

// faultContinuation rebuilds the held walk-completion closure a pendingFault
// carries, mirroring the capture in Walker.advance: the frame comes from the
// (deterministically rebuilt) page table, the continuation from the walk's
// origin coordinates.
func (w *Walker) faultContinuation(meta FaultMeta) (func(now int64), error) {
	sp, ok := w.spaces[meta.ASID]
	if !ok {
		return nil, fmt.Errorf("ptw: fault continuation for unregistered ASID %d", meta.ASID)
	}
	frame, ok := sp.TranslateVPN(meta.VPN)
	if !ok {
		return nil, fmt.Errorf("ptw: fault continuation for unmapped page (asid %d, vpn %#x)", meta.ASID, meta.VPN)
	}
	tr := meta.Tr
	var done func(now int64, frame uint64)
	if tr == nil {
		if w.resolveDone == nil {
			return nil, fmt.Errorf("ptw: restore needs a done resolver for fault origin %d", meta.Origin)
		}
		var err error
		done, err = w.resolveDone(meta.Origin, meta.ASID, meta.AppID, meta.VPN)
		if err != nil {
			return nil, fmt.Errorf("ptw: relink fault continuation (asid %d vpn %#x): %w", meta.ASID, meta.VPN, err)
		}
	}
	start := meta.Start
	return func(fnow int64) { w.finishWalk(fnow, start, frame, done, tr) }, nil
}
