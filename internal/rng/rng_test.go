package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed generator appears stuck")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%10000 + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(5)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams matched %d times", same)
	}
}

func TestIntnDistribution(t *testing.T) {
	s := New(13)
	const buckets = 8
	counts := make([]int, buckets)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.15 {
			t.Fatalf("bucket %d has frequency %v (want ~0.125)", b, frac)
		}
	}
}
