// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Simulations must be reproducible byte-for-byte: every source of randomness
// (workload address streams, allocator scrambling, tie-breaking) draws from an
// explicitly seeded Source, never from math/rand's global state or the clock.
// The generator is xorshift64* (Vigna, 2014), which is statistically strong
// enough for workload synthesis and costs a handful of instructions per draw.
package rng

// Source is a deterministic xorshift64* generator. The zero value is invalid;
// use New, which maps any seed (including 0) onto a valid non-zero state.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield decorrelated
// streams; a zero seed is remapped so the generator never sticks at zero.
func New(seed uint64) *Source {
	s := &Source{state: seed}
	if s.state == 0 {
		s.state = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	// Warm up so that near-identical small seeds diverge immediately.
	s.Uint64()
	s.Uint64()
	return s
}

// State returns the generator's internal state for checkpointing.
func (s *Source) State() uint64 { return s.state }

// SetState restores a state previously returned by State. A zero state is
// remapped like a zero seed so the generator can never stick.
func (s *Source) SetState(state uint64) {
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	s.state = state
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits scaled into [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Split derives a new independent Source from this one. It is used to give
// each warp or component its own stream so that draws in one component do not
// perturb another.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xD1B54A32D192ED03)
}
