package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"masksim/internal/streamio"
)

// Format identifies a StreamSink output encoding.
type Format uint8

const (
	FormatCSV Format = iota
	FormatJSONL
	FormatChrome
)

// String names the format for diagnostics and checkpoint mismatch errors.
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatJSONL:
		return "jsonl"
	case FormatChrome:
		return "chrome"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// sinkStream is one attached output: a buffered writer over a byte counter
// over the caller's writer, plus the per-format incremental state.
type sinkStream struct {
	format Format
	raw    io.Writer // as attached; truncated directly on checkpoint resume
	cw     *streamio.CountingWriter
	bw     *bufio.Writer
	enc    *json.Encoder // JSONL

	// Chrome trace_event state. PIDs are assigned in first-appearance order
	// (column components at bind, event components lazily before their first
	// instant event) and the comma flag tracks whether the traceEvents array
	// already holds an element.
	pids       map[string]int
	nextPID    int
	wroteEvent bool
}

// StreamSink writes telemetry incrementally as epochs close, instead of
// retaining samples for an end-of-run export. Output is byte-identical to the
// buffered exporters (which are implemented as replays through the same
// writers).
//
// Buffering is bounded: the sink holds at most one undecided sample plus the
// instant events of the current epoch. The one-sample delay exists because
// the export formats order an event at cycle c relative to the sample at
// cycle c differently from their arrival order (the sample is taken during
// tick c-1, the event fires during tick c), so a sample is only committed
// once something later proves no more events can precede it.
//
// All errors are sticky: the first write failure is recorded, subsequent
// output is suppressed, and Close (and Err) report it.
type StreamSink struct {
	streams []*sinkStream
	cols    []Column
	epoch   int64
	bound   bool
	closed  bool

	pending *Sample
	queued  []Event
	high    int64 // cycle of the newest sample fully written to every stream
	err     error

	autoFlush bool
}

// NewStreamSink returns an empty sink; Attach writers, then hand it to
// Collector.SetSink (which binds the column catalogue and writes preludes).
func NewStreamSink() *StreamSink { return &StreamSink{} }

// Attach adds an output in the given format. All outputs must be attached
// before the sink is bound.
func (k *StreamSink) Attach(format Format, w io.Writer) error {
	if k.bound {
		return fmt.Errorf("telemetry: sink already bound; attach outputs first")
	}
	if w == nil {
		return fmt.Errorf("telemetry: nil sink writer")
	}
	cw := &streamio.CountingWriter{W: w}
	st := &sinkStream{format: format, raw: w, cw: cw, bw: bufio.NewWriter(cw)}
	if format == FormatJSONL {
		st.enc = json.NewEncoder(st.bw)
	}
	k.streams = append(k.streams, st)
	return nil
}

// SetAutoFlush makes the sink flush every output's buffer each time an epoch
// commits, instead of only on checkpoint marks and Close. The bytes written
// are identical either way — only their timing changes — so enable this when
// an output is a live feed (an SSE stream, a pipe) that should see each epoch
// as it closes rather than when 256KB of them have accumulated.
func (k *StreamSink) SetAutoFlush(on bool) { k.autoFlush = on }

// Err returns the first write error, if any.
func (k *StreamSink) Err() error { return k.err }

// HighWater returns the cycle of the newest sample committed to the outputs.
func (k *StreamSink) HighWater() int64 { return k.high }

// BytesWritten sums the logical (pre-compression) bytes accepted by all
// attached outputs, including bytes still in the sink's buffers.
func (k *StreamSink) BytesWritten() int64 {
	var n int64
	for _, st := range k.streams {
		n += st.cw.N + int64(st.bw.Buffered())
	}
	return n
}

func (k *StreamSink) fail(err error) {
	if k.err == nil && err != nil {
		k.err = err
	}
}

// bind fixes the column catalogue and writes each stream's prelude: the CSV
// header, the JSONL meta record, the Chrome envelope opener plus one
// process_name metadata event per column component.
func (k *StreamSink) bind(epoch int64, cols []Column) error {
	if k.bound {
		return fmt.Errorf("telemetry: sink bound twice")
	}
	if len(k.streams) == 0 {
		return fmt.Errorf("telemetry: sink has no outputs attached")
	}
	k.bound = true
	k.epoch = epoch
	k.cols = append([]Column(nil), cols...)
	for _, st := range k.streams {
		if err := k.prelude(st); err != nil {
			k.fail(err)
			return err
		}
	}
	return nil
}

func (k *StreamSink) prelude(st *sinkStream) error {
	switch st.format {
	case FormatCSV:
		if _, err := st.bw.WriteString("cycle"); err != nil {
			return err
		}
		for _, col := range k.cols {
			st.bw.WriteByte(',')
			if _, err := st.bw.WriteString(col.Name); err != nil {
				return err
			}
		}
		return st.bw.WriteByte('\n')
	case FormatJSONL:
		meta := jsonlRecord{Type: "meta", Epoch: k.epoch}
		for _, col := range k.cols {
			meta.Columns = append(meta.Columns, jsonlColumn{Name: col.Name, Kind: col.Kind.String()})
		}
		return st.enc.Encode(meta)
	case FormatChrome:
		st.pids = make(map[string]int)
		st.nextPID = 1 // pid 0 renders poorly in some viewers
		if _, err := st.bw.WriteString(`{"traceEvents":[`); err != nil {
			return err
		}
		for _, col := range k.cols {
			if _, err := st.chromePID(col.Component()); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("telemetry: unknown sink format %v", st.format)
	}
}

// chromePID returns the component's pid, emitting its process_name metadata
// event on first use. The empty component maps to pid 0 with no metadata,
// matching the historical exporter.
func (st *sinkStream) chromePID(comp string) (int, error) {
	if comp == "" {
		return 0, nil
	}
	if pid, ok := st.pids[comp]; ok {
		return pid, nil
	}
	pid := st.nextPID
	st.nextPID++
	st.pids[comp] = pid
	err := st.chromeEvent(ChromeEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": comp},
	})
	return pid, err
}

// chromeEvent appends one element to the traceEvents array.
func (st *sinkStream) chromeEvent(ev ChromeEvent) error {
	raw, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if st.wroteEvent {
		if err := st.bw.WriteByte(','); err != nil {
			return err
		}
	}
	st.wroteEvent = true
	_, err = st.bw.Write(raw)
	return err
}

// sample feeds one epoch snapshot. The sink takes ownership of s.Values.
func (k *StreamSink) sample(s Sample) {
	if k.err != nil || k.closed {
		return
	}
	if !k.bound {
		k.fail(fmt.Errorf("telemetry: sample before sink bind"))
		return
	}
	if len(s.Values) != len(k.cols) {
		k.fail(fmt.Errorf("telemetry: sample has %d values, sink bound to %d columns", len(s.Values), len(k.cols)))
		return
	}
	if k.pending != nil {
		k.flushPending()
	}
	k.pending = &s
}

// event feeds one instant event. Events arrive in cycle order; an event
// beyond the pending sample's cycle proves that sample complete.
func (k *StreamSink) event(ev Event) {
	if k.err != nil || k.closed {
		return
	}
	if k.pending != nil && ev.Cycle > k.pending.Cycle {
		k.flushPending()
	}
	k.queued = append(k.queued, ev)
}

// flushPending commits the held sample and the queued events of its epoch to
// every stream, in each format's required order.
func (k *StreamSink) flushPending() {
	s := *k.pending
	k.pending = nil
	// Split the queue around the sample cycle: arrival order is cycle order,
	// so a prefix precedes the sample's cycle and the rest coincides with it.
	firstAt := len(k.queued)
	for i, ev := range k.queued {
		if ev.Cycle >= s.Cycle {
			firstAt = i
			break
		}
	}
	for _, st := range k.streams {
		if k.err != nil {
			break
		}
		switch st.format {
		case FormatCSV:
			k.fail(k.csvRow(st, s))
		case FormatJSONL:
			// Events at the sample's cycle sort before the sample here.
			for _, ev := range k.queued {
				k.fail(k.jsonlEvent(st, ev))
			}
			k.fail(k.jsonlSample(st, s))
		case FormatChrome:
			// ...and after the counter batch there.
			for _, ev := range k.queued[:firstAt] {
				k.fail(k.chromeInstant(st, ev))
			}
			k.fail(k.chromeCounters(st, s))
			for _, ev := range k.queued[firstAt:] {
				k.fail(k.chromeInstant(st, ev))
			}
		}
	}
	k.queued = k.queued[:0]
	if k.err == nil {
		k.high = s.Cycle
	}
	if k.autoFlush {
		for _, st := range k.streams {
			if k.err != nil {
				break
			}
			k.fail(st.bw.Flush())
		}
	}
}

func (k *StreamSink) csvRow(st *sinkStream, s Sample) error {
	if _, err := fmt.Fprintf(st.bw, "%d", s.Cycle); err != nil {
		return err
	}
	for _, v := range s.Values {
		st.bw.WriteByte(',')
		if _, err := st.bw.WriteString(formatValue(v)); err != nil {
			return err
		}
	}
	return st.bw.WriteByte('\n')
}

func (k *StreamSink) jsonlSample(st *sinkStream, s Sample) error {
	rec := jsonlRecord{Type: "sample", Cycle: s.Cycle, Values: make(map[string]float64, len(s.Values))}
	for i, v := range s.Values {
		rec.Values[k.cols[i].Name] = v
	}
	return st.enc.Encode(rec)
}

func (k *StreamSink) jsonlEvent(st *sinkStream, ev Event) error {
	return st.enc.Encode(jsonlRecord{Type: "event", Cycle: ev.Cycle, Name: ev.Name, Component: ev.Component, Args: ev.Args})
}

func (k *StreamSink) chromeCounters(st *sinkStream, s Sample) error {
	for i, v := range s.Values {
		col := k.cols[i]
		name := col.Name
		if j := strings.IndexByte(name, '/'); j >= 0 {
			name = name[j+1:]
		}
		pid, err := st.chromePID(col.Component())
		if err != nil {
			return err
		}
		err = st.chromeEvent(ChromeEvent{
			Name: name, Phase: "C", PID: pid,
			TS: float64(s.Cycle), Args: map[string]any{"value": v},
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (k *StreamSink) chromeInstant(st *sinkStream, ev Event) error {
	args := make(map[string]any, len(ev.Args))
	for _, kk := range sortedArgKeys(ev.Args) {
		args[kk] = ev.Args[kk]
	}
	pid, err := st.chromePID(ev.Component)
	if err != nil {
		return err
	}
	return st.chromeEvent(ChromeEvent{
		Name: ev.Name, Phase: "i", PID: pid,
		TS: float64(ev.Cycle), Scope: "p", Args: args,
	})
}

// chromeTrailer closes the traceEvents array and the envelope. The byte
// layout matches json.Marshal of the historical chromeTrace struct.
func chromeTrailer(st *sinkStream) error {
	_, err := st.bw.WriteString(`],"displayTimeUnit":"ms","metadata":{"clock":"gpu-core-cycles-as-us","source":"masksim"}}` + "\n")
	return err
}

// Close commits the held sample, writes trailing events and per-format
// trailers, and flushes every stream. It returns the first error seen over
// the sink's whole lifetime.
func (k *StreamSink) Close() error {
	if k.closed {
		return k.err
	}
	k.closed = true
	if !k.bound {
		// Attached but never bound (e.g. the run failed before the collector
		// was built): nothing was promised, nothing is written.
		return k.err
	}
	if k.pending != nil {
		k.flushPending()
	}
	for _, st := range k.streams {
		if k.err != nil {
			break
		}
		// Events after the final sample (or from a run with no samples).
		switch st.format {
		case FormatJSONL:
			for _, ev := range k.queued {
				k.fail(k.jsonlEvent(st, ev))
			}
		case FormatChrome:
			for _, ev := range k.queued {
				k.fail(k.chromeInstant(st, ev))
			}
		}
		if st.format == FormatChrome && k.err == nil {
			k.fail(chromeTrailer(st))
		}
	}
	k.queued = nil
	for _, st := range k.streams {
		k.fail(st.bw.Flush())
	}
	return k.err
}

// SinkStreamState is one output's checkpoint image.
type SinkStreamState struct {
	Format     Format
	Offset     int64 // logical bytes committed (post-flush CountingWriter count)
	PIDs       map[string]int
	NextPID    int
	WroteEvent bool
}

// SinkState is the streaming sink's checkpoint image: the undecided sample
// and queued events plus each output's resume offset and format state.
type SinkState struct {
	HighWater int64
	Pending   *Sample
	Queued    []Event
	Streams   []SinkStreamState
}

// mark flushes every stream and captures the sink's resume state. The flush
// makes the recorded offsets real file offsets, so a crash after the
// checkpoint loses nothing the checkpoint promises.
func (k *StreamSink) mark() (*SinkState, error) {
	if k.err != nil {
		return nil, fmt.Errorf("telemetry: sink is failed: %w", k.err)
	}
	for _, st := range k.streams {
		if err := st.bw.Flush(); err != nil {
			k.fail(err)
			return nil, err
		}
	}
	st := &SinkState{HighWater: k.high}
	if k.pending != nil {
		cp := Sample{Cycle: k.pending.Cycle, Values: append([]float64(nil), k.pending.Values...)}
		st.Pending = &cp
	}
	for _, ev := range k.queued {
		cp := ev
		if ev.Args != nil {
			cp.Args = make(map[string]string, len(ev.Args))
			for kk, v := range ev.Args {
				cp.Args[kk] = v
			}
		}
		st.Queued = append(st.Queued, cp)
	}
	for _, s := range k.streams {
		ss := SinkStreamState{Format: s.format, Offset: s.cw.N, NextPID: s.nextPID, WroteEvent: s.wroteEvent}
		if s.pids != nil {
			ss.PIDs = make(map[string]int, len(s.pids))
			for kk, v := range s.pids {
				ss.PIDs[kk] = v
			}
		}
		st.Streams = append(st.Streams, ss)
	}
	return st, nil
}

// restore rewinds the sink to a checkpointed state. Outputs that support
// truncation (plain files) are cut back to the recorded offset so the
// resumed stream is byte-identical to an uninterrupted run; outputs that do
// not (gzip, pipes, network feeds) keep the prelude bind just wrote and
// carry only post-checkpoint epochs, which is the documented fresh-prelude
// resume mode.
func (k *StreamSink) restore(st *SinkState) error {
	if !k.bound {
		return fmt.Errorf("telemetry: restore before sink bind")
	}
	if len(st.Streams) != len(k.streams) {
		return fmt.Errorf("telemetry: checkpoint has %d sink outputs, sink has %d", len(st.Streams), len(k.streams))
	}
	for i, s := range k.streams {
		saved := st.Streams[i]
		if saved.Format != s.format {
			return fmt.Errorf("telemetry: sink output %d is %v, checkpoint was %v", i, s.format, saved.Format)
		}
		// The prelude bind just wrote must sit inside the recorded offset,
		// or the checkpoint came from a different column catalogue.
		if buffered := s.cw.N + int64(s.bw.Buffered()); saved.Offset < buffered {
			return fmt.Errorf("telemetry: checkpoint offset %d is inside the %d-byte prelude (column catalogue mismatch?)", saved.Offset, buffered)
		}
		if err := s.bw.Flush(); err != nil {
			return err
		}
		ok, err := streamio.TruncateTo(s.raw, saved.Offset)
		if err != nil {
			return fmt.Errorf("telemetry: rewind sink output %d: %w", i, err)
		}
		if !ok {
			continue // fresh-prelude resume: keep the state bind built
		}
		s.cw.N = saved.Offset
		s.bw.Reset(s.cw)
		if s.format == FormatChrome {
			s.pids = make(map[string]int, len(saved.PIDs))
			for kk, v := range saved.PIDs {
				s.pids[kk] = v
			}
			s.nextPID = saved.NextPID
			s.wroteEvent = saved.WroteEvent
		}
	}
	k.high = st.HighWater
	k.pending = nil
	if st.Pending != nil {
		cp := Sample{Cycle: st.Pending.Cycle, Values: append([]float64(nil), st.Pending.Values...)}
		k.pending = &cp
	}
	k.queued = append(k.queued[:0], st.Queued...)
	return nil
}
