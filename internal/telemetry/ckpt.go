package telemetry

import "fmt"

// ProbeState is one probe's delta-tracking state, index-aligned with the
// registry's (deterministic) registration order.
type ProbeState struct {
	Last    float64
	LastDen float64
}

// CollectorState is the collector's checkpoint image. Sink is set when the
// run streamed its telemetry: Samples and Events are then empty and Sink
// carries the stream resume state instead.
type CollectorState struct {
	Probes  []ProbeState
	Samples []Sample
	Events  []Event
	Sampled int64
	Sink    *SinkState
}

// SnapshotState implements engine.Snapshotter; the collector needs no request
// registry, so ctx is ignored. In streaming mode the sink is flushed so the
// recorded output offsets are durable before the checkpoint claims them.
func (c *Collector) SnapshotState(ctx any) (any, error) {
	st := CollectorState{Sampled: c.sampled}
	if c.sink != nil {
		ss, err := c.sink.mark()
		if err != nil {
			return nil, err
		}
		st.Sink = ss
	}
	st.Probes = make([]ProbeState, len(c.probes))
	for i, p := range c.probes {
		st.Probes[i] = ProbeState{Last: p.last, LastDen: p.lastDen}
	}
	for _, s := range c.samples {
		st.Samples = append(st.Samples, Sample{Cycle: s.Cycle, Values: append([]float64(nil), s.Values...)})
	}
	for _, ev := range c.events {
		cp := ev
		if ev.Args != nil {
			cp.Args = make(map[string]string, len(ev.Args))
			for k, v := range ev.Args {
				cp.Args[k] = v
			}
		}
		st.Events = append(st.Events, cp)
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter. Probe states are matched by
// registration order, which is identical between the checkpointing and the
// restoring simulator because both build the probe set from the same config.
func (c *Collector) RestoreState(ctx any, state any) error {
	st, ok := state.(CollectorState)
	if !ok {
		return fmt.Errorf("telemetry: restore state is %T, want CollectorState", state)
	}
	if len(st.Probes) != len(c.probes) {
		return fmt.Errorf("telemetry: checkpoint has %d probes, collector has %d", len(st.Probes), len(c.probes))
	}
	if st.Sink != nil && c.sink == nil {
		return fmt.Errorf("telemetry: checkpoint streamed its telemetry; attach a streaming sink before restoring")
	}
	if st.Sink == nil && c.sink != nil {
		return fmt.Errorf("telemetry: checkpoint buffered its telemetry; restore without a streaming sink")
	}
	for i, p := range c.probes {
		p.last, p.lastDen = st.Probes[i].Last, st.Probes[i].LastDen
	}
	c.samples = append(c.samples[:0], st.Samples...)
	c.events = append(c.events[:0], st.Events...)
	c.sampled = st.Sampled
	if st.Sink != nil {
		if err := c.sink.restore(st.Sink); err != nil {
			return err
		}
	}
	return nil
}
