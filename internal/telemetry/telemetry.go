// Package telemetry is the simulator's cycle-level observability subsystem:
// a registry of named pull-based probes, an epoch sampler that snapshots
// every probe into a typed time series, an instant-event stream (watchdog
// aborts, fault injections), and exporters for CSV, JSONL and Chrome
// trace_event JSON (docs/OBSERVABILITY.md).
//
// The subsystem is pull-based and therefore zero-cost when disabled: the
// simulator only builds a Collector when telemetry is requested, components
// keep their ordinary counters either way, and the Collector reads them
// through closures at epoch boundaries only. The few push-style emission
// points (walk-latency histogram, event sinks) are guarded by nil checks, so
// a disabled run does no per-event allocation and no map lookups.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies how a probe's readings become samples.
type Kind uint8

const (
	// Gauge samples the probe's instantaneous value at each epoch boundary
	// (queue depth, token count, quantile of a running histogram).
	Gauge Kind = iota
	// Counter samples the per-epoch delta of a cumulative counter
	// (instructions retired, walks completed). The exported value for epoch
	// k is fn(end of epoch k) - fn(end of epoch k-1), so the column sums to
	// the final cumulative count.
	Counter
	// Rate samples the ratio of two cumulative counters' per-epoch deltas
	// (hits/accesses over the epoch), 0 when the denominator did not move.
	Rate
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Rate:
		return "rate"
	default:
		return "gauge"
	}
}

type probe struct {
	name string
	kind Kind
	fn   func() float64
	den  func() float64 // Rate only

	last    float64
	lastDen float64
}

// Registry holds named probes. Probe names are slash-separated paths whose
// first segment identifies the owning component ("app0/l1tlb/hit_rate",
// "dram/chan3/queue"); the Chrome-trace exporter renders one track per
// component. Registration of a duplicate name is rejected.
type Registry struct {
	probes []*probe
	byName map[string]struct{}
}

func (r *Registry) register(name string, kind Kind, fn, den func() float64) error {
	if name == "" || fn == nil {
		return fmt.Errorf("telemetry: probe needs a name and a read function")
	}
	if strings.ContainsAny(name, ",\n\"") {
		return fmt.Errorf("telemetry: probe name %q contains CSV-hostile characters", name)
	}
	if r.byName == nil {
		r.byName = make(map[string]struct{})
	}
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("telemetry: probe %q already registered", name)
	}
	r.byName[name] = struct{}{}
	r.probes = append(r.probes, &probe{name: name, kind: kind, fn: fn, den: den})
	return nil
}

// Gauge registers an instantaneous-value probe.
func (r *Registry) Gauge(name string, fn func() float64) error {
	return r.register(name, Gauge, fn, nil)
}

// Counter registers a cumulative-counter probe, sampled as per-epoch deltas.
func (r *Registry) Counter(name string, fn func() float64) error {
	return r.register(name, Counter, fn, nil)
}

// Rate registers a ratio probe: delta(num)/delta(den) over each epoch.
func (r *Registry) Rate(name string, num, den func() float64) error {
	if den == nil {
		return fmt.Errorf("telemetry: rate probe %q needs a denominator", name)
	}
	return r.register(name, Rate, num, den)
}

// Len returns the number of registered probes.
func (r *Registry) Len() int { return len(r.probes) }

// Column describes one time-series column of collected Data.
type Column struct {
	Name string
	Kind Kind
}

// Component returns the column's owning component: the first path segment of
// its name.
func (c Column) Component() string { return componentOf(c.Name) }

func componentOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// Sample is one epoch snapshot: Values[i] corresponds to Data.Columns[i].
type Sample struct {
	Cycle  int64
	Values []float64
}

// Event is an instant event (watchdog abort, injected fault) attributed to a
// component track.
type Event struct {
	Cycle     int64
	Name      string
	Component string
	Args      map[string]string
}

// Data is the collected result of one instrumented run, ready for export.
type Data struct {
	// Epoch is the sampling interval in cycles.
	Epoch   int64
	Columns []Column
	Samples []Sample
	Events  []Event
	// Streamed marks a run whose samples and events went to a StreamSink as
	// they were taken; Samples and Events are empty and the exports already
	// exist wherever the sink's writers pointed.
	Streamed bool
}

// Collector owns a Registry and samples it every Epoch cycles. Register it
// with the engine after every instrumented component so each snapshot
// reflects a fully-ticked cycle. It also implements the event-sink interfaces
// of the engine watchdog and the fault injector.
type Collector struct {
	Registry
	epoch    int64
	onSample []func(now int64)
	samples  []Sample
	events   []Event
	sampled  int64       // cycle count covered by taken samples
	sink     *StreamSink // when set, samples/events stream out instead of accumulating
}

// NewCollector returns a collector sampling every epoch cycles (epoch >= 1).
func NewCollector(epoch int64) *Collector {
	if epoch < 1 {
		panic("telemetry: collector epoch must be >= 1")
	}
	return &Collector{epoch: epoch}
}

// Epoch returns the sampling interval in cycles.
func (c *Collector) Epoch() int64 { return c.epoch }

// SetSink switches the collector to streaming mode: every snapshot and event
// is handed to the sink as it happens and nothing accumulates in memory, so
// an arbitrarily long instrumented run holds O(one epoch) telemetry state.
// Call it after every probe is registered — the sink binds the column
// catalogue and writes each output's prelude here.
func (c *Collector) SetSink(k *StreamSink) error {
	if c.sink != nil {
		return fmt.Errorf("telemetry: collector already has a sink")
	}
	if k == nil {
		return fmt.Errorf("telemetry: nil sink")
	}
	cols := make([]Column, len(c.probes))
	for i, p := range c.probes {
		cols[i] = Column{Name: p.name, Kind: p.kind}
	}
	if err := k.bind(c.epoch, cols); err != nil {
		return err
	}
	c.sink = k
	return nil
}

// Sink returns the attached streaming sink, nil in buffered mode.
func (c *Collector) Sink() *StreamSink { return c.sink }

// OnSample registers a hook invoked just before each snapshot; components use
// it to compute shared scratch state once per epoch (e.g. the DRAM queue
// occupancy matrix) instead of once per probe.
func (c *Collector) OnSample(fn func(now int64)) {
	c.onSample = append(c.onSample, fn)
}

// Tick implements engine.Ticker: after the tick for cycle now, cycles 0..now
// inclusive have been simulated, so the sampler snapshots when (now+1) is an
// epoch boundary and labels the sample with that boundary cycle.
func (c *Collector) Tick(now int64) {
	if (now+1)%c.epoch != 0 {
		return
	}
	c.snapshot(now + 1)
}

// NextEvent implements the engine's EventSource capability: the collector
// must run at every sampling cycle (the last cycle of each epoch), so it
// reports the next one as its horizon and the engine's fast-forward never
// jumps over an epoch boundary. Samples therefore land on exactly the same
// cycles, reading the same counter values, as in a single-stepped run.
func (c *Collector) NextEvent(now int64) int64 {
	// Smallest cycle >= now whose tick triggers a snapshot: k*epoch - 1 for
	// the smallest k with k*epoch - 1 >= now.
	return ((now+c.epoch)/c.epoch)*c.epoch - 1
}

// Finish takes a final partial-epoch sample at cycle now (the end of the
// run) unless now already fell on an epoch boundary. Counter columns then
// telescope to the exact end-of-run totals regardless of run length.
func (c *Collector) Finish(now int64) {
	if now > c.sampled {
		c.snapshot(now)
	}
}

func (c *Collector) snapshot(cycle int64) {
	for _, fn := range c.onSample {
		fn(cycle)
	}
	vals := make([]float64, len(c.probes))
	for i, p := range c.probes {
		cur := p.fn()
		switch p.kind {
		case Gauge:
			vals[i] = cur
		case Counter:
			vals[i] = cur - p.last
			p.last = cur
		case Rate:
			den := p.den()
			if dd := den - p.lastDen; dd != 0 {
				vals[i] = (cur - p.last) / dd
			}
			p.last = cur
			p.lastDen = den
		}
	}
	if c.sink != nil {
		c.sink.sample(Sample{Cycle: cycle, Values: vals})
	} else {
		c.samples = append(c.samples, Sample{Cycle: cycle, Values: vals})
	}
	c.sampled = cycle
}

// Emit records an instant event. It satisfies the event-sink interfaces of
// internal/engine (watchdog aborts) and internal/faultinject (injected
// faults).
func (c *Collector) Emit(now int64, name, component string, args map[string]string) {
	if c.sink != nil {
		c.sink.event(Event{Cycle: now, Name: name, Component: component, Args: args})
		return
	}
	c.events = append(c.events, Event{Cycle: now, Name: name, Component: component, Args: args})
}

// Data returns the collected time series and events. In streaming mode the
// series lives in the sink's outputs; Data carries the catalogue only, with
// Streamed set.
func (c *Collector) Data() *Data {
	d := &Data{Epoch: c.epoch, Samples: c.samples, Events: c.events, Streamed: c.sink != nil}
	d.Columns = make([]Column, len(c.probes))
	for i, p := range c.probes {
		d.Columns[i] = Column{Name: p.name, Kind: p.kind}
	}
	return d
}

// ColumnIndex returns the index of the named column, or -1.
func (d *Data) ColumnIndex(name string) int {
	for i, col := range d.Columns {
		if col.Name == name {
			return i
		}
	}
	return -1
}

// ColumnSum sums the named column across all samples (NaN-free by
// construction; counters telescope to their end-of-run totals).
func (d *Data) ColumnSum(name string) (float64, bool) {
	idx := d.ColumnIndex(name)
	if idx < 0 {
		return 0, false
	}
	var sum float64
	for _, s := range d.Samples {
		sum += s.Values[idx]
	}
	return sum, true
}

// Components returns the distinct component names across columns and events,
// in first-appearance order (columns first).
func (d *Data) Components() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, col := range d.Columns {
		add(col.Component())
	}
	for _, ev := range d.Events {
		add(ev.Component)
	}
	return out
}

// sortedArgKeys returns an event's argument keys in deterministic order.
func sortedArgKeys(args map[string]string) []string {
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatValue renders a sample value compactly for CSV/JSONL.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
