package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryRejectsCollisionsAndBadProbes(t *testing.T) {
	var r Registry
	one := func() float64 { return 1 }
	if err := r.Gauge("x/depth", one); err != nil {
		t.Fatal(err)
	}
	if err := r.Gauge("x/depth", one); err == nil {
		t.Fatal("duplicate gauge name accepted")
	}
	if err := r.Counter("x/depth", one); err == nil {
		t.Fatal("duplicate name accepted across kinds")
	}
	if err := r.Gauge("", one); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Gauge("y", nil); err == nil {
		t.Fatal("nil read function accepted")
	}
	if err := r.Rate("z", one, nil); err == nil {
		t.Fatal("rate without denominator accepted")
	}
	if err := r.Gauge("bad,name", one); err == nil {
		t.Fatal("CSV-hostile name accepted")
	}
	if r.Len() != 1 {
		t.Fatalf("registry has %d probes, want 1", r.Len())
	}
}

// driveCycles ticks the collector exactly as the engine would: once per
// cycle, now = 0..n-1.
func driveCycles(c *Collector, n int64) {
	for now := int64(0); now < n; now++ {
		c.Tick(now)
	}
}

func TestCollectorExactSnapshotCount(t *testing.T) {
	var cycles int64
	c := NewCollector(1000)
	if err := c.Counter("eng/cycles", func() float64 { return float64(cycles) }); err != nil {
		t.Fatal(err)
	}
	c.OnSample(func(now int64) { cycles = now })

	driveCycles(c, 10_000)
	c.Finish(10_000)
	d := c.Data()
	if len(d.Samples) != 10 {
		t.Fatalf("got %d samples for a 10000-cycle run at epoch 1000, want exactly 10", len(d.Samples))
	}
	for i, s := range d.Samples {
		if want := int64(i+1) * 1000; s.Cycle != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, s.Cycle, want)
		}
		// Counter columns are per-epoch deltas.
		if s.Values[0] != 1000 {
			t.Fatalf("sample %d delta %v, want 1000", i, s.Values[0])
		}
	}
	if sum, ok := d.ColumnSum("eng/cycles"); !ok || sum != 10_000 {
		t.Fatalf("counter column sums to %v, want 10000", sum)
	}
}

func TestCollectorFinishTakesPartialTail(t *testing.T) {
	var v float64
	c := NewCollector(1000)
	if err := c.Counter("c", func() float64 { return v }); err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 2500; now++ {
		v++
		c.Tick(now)
	}
	c.Finish(2500)
	d := c.Data()
	if len(d.Samples) != 3 {
		t.Fatalf("got %d samples for 2500 cycles at epoch 1000, want 3 (2 full + 1 partial)", len(d.Samples))
	}
	if last := d.Samples[2]; last.Cycle != 2500 || last.Values[0] != 500 {
		t.Fatalf("partial tail sample = %+v, want cycle 2500 delta 500", last)
	}
	// Finish on an exact boundary must not double-sample.
	c2 := NewCollector(10)
	if err := c2.Gauge("g", func() float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	driveCycles(c2, 100)
	c2.Finish(100)
	if n := len(c2.Data().Samples); n != 10 {
		t.Fatalf("boundary Finish produced %d samples, want 10", n)
	}
}

func TestCollectorKinds(t *testing.T) {
	var hits, accesses, depth float64
	c := NewCollector(10)
	if err := c.Gauge("q/depth", func() float64 { return depth }); err != nil {
		t.Fatal(err)
	}
	if err := c.Rate("q/hit_rate", func() float64 { return hits }, func() float64 { return accesses }); err != nil {
		t.Fatal(err)
	}
	// Epoch 1: 8 hits of 10 accesses. Epoch 2: no traffic at all.
	for now := int64(0); now < 20; now++ {
		if now < 10 {
			accesses++
			if now < 8 {
				hits++
			}
			depth = float64(now)
		}
		c.Tick(now)
	}
	d := c.Data()
	if got := d.Samples[0].Values[d.ColumnIndex("q/hit_rate")]; got != 0.8 {
		t.Fatalf("epoch-1 hit rate %v, want 0.8", got)
	}
	if got := d.Samples[1].Values[d.ColumnIndex("q/hit_rate")]; got != 0 {
		t.Fatalf("idle-epoch hit rate %v, want 0 (no traffic)", got)
	}
	if got := d.Samples[1].Values[d.ColumnIndex("q/depth")]; got != 9 {
		t.Fatalf("gauge %v, want 9 (instantaneous)", got)
	}
}

func buildTestData(t *testing.T) *Data {
	t.Helper()
	var a, b float64
	c := NewCollector(100)
	if err := c.Counter("app0/instructions", func() float64 { return a }); err != nil {
		t.Fatal(err)
	}
	if err := c.Gauge("dram/queue", func() float64 { return b }); err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 300; now++ {
		a += 2
		b = float64(now % 7)
		c.Tick(now)
	}
	c.Emit(150, "fault.drop", "dram", map[string]string{"kind": "response-drop", "count": "1"})
	c.Emit(299, "watchdog.abort", "engine", map[string]string{"cycle": "299"})
	return c.Data()
}

func TestWriteCSV(t *testing.T) {
	d := buildTestData(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,app0/instructions,dram/queue" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+3 {
		t.Fatalf("%d rows, want 3 samples", len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "100,200,") {
		t.Fatalf("row 1 = %q, want cycle 100, delta 200", lines[1])
	}
}

func TestWriteJSONL(t *testing.T) {
	d := buildTestData(t)
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// meta + 3 samples + 2 events.
	if len(lines) != 6 {
		t.Fatalf("%d JSONL lines, want 6", len(lines))
	}
	var meta struct {
		Type    string `json:"type"`
		Epoch   int64  `json:"epoch"`
		Columns []struct{ Name, Kind string }
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Type != "meta" || meta.Epoch != 100 || len(meta.Columns) != 2 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Columns[0].Kind != "counter" || meta.Columns[1].Kind != "gauge" {
		t.Fatalf("column kinds = %+v", meta.Columns)
	}
	// Every line must be valid JSON with a known type.
	for i, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		switch rec["type"] {
		case "meta", "sample", "event":
		default:
			t.Fatalf("line %d has unknown type %v", i, rec["type"])
		}
	}
}

func TestWriteChromeTraceValidates(t *testing.T) {
	d := buildTestData(t)
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 3 process_name metadata (app0, dram, engine) + 3 samples x 2 counters
	// + 2 instants.
	if n != 3+6+2 {
		t.Fatalf("trace has %d events, want 11", n)
	}
	// The instant events must be attributed to their component tracks and
	// carry their structured args.
	s := buf.String()
	for _, want := range []string{`"ph":"C"`, `"ph":"i"`, `"ph":"M"`, `"fault.drop"`, `"watchdog.abort"`, `"kind":"response-drop"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}

func TestValidateChromeTraceRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [`,
		"empty":         `{"traceEvents": []}`,
		"missing name":  `{"traceEvents": [{"ph":"C","pid":1,"ts":1}]}`,
		"missing ph":    `{"traceEvents": [{"name":"x","pid":1,"ts":1}]}`,
		"missing pid":   `{"traceEvents": [{"name":"x","ph":"C","ts":1}]}`,
		"missing ts":    `{"traceEvents": [{"name":"x","ph":"C","pid":1}]}`,
		"non-monotonic": `{"traceEvents": [{"name":"x","ph":"C","pid":1,"ts":5},{"name":"y","ph":"C","pid":1,"ts":4}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// Metadata events need no ts/pid and don't break monotonicity.
	ok := `{"traceEvents": [{"name":"x","ph":"C","pid":1,"ts":5},{"name":"process_name","ph":"M","pid":2},{"name":"y","ph":"C","pid":1,"ts":6}]}`
	if _, err := ValidateChromeTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("metadata-tolerant trace rejected: %v", err)
	}
}
