package telemetry

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"masksim/internal/streamio"
)

// streamRig drives a collector deterministically: every probe is a pure
// function of the cycle counter, so two rigs driven over the same cycle
// ranges produce identical telemetry, and a restored rig can resume mid-run
// by setting the cumulative counter to its cycle position.
type streamRig struct {
	c     *Collector
	cum   float64
	depth float64
}

func newStreamRig(t *testing.T, epoch int64) *streamRig {
	t.Helper()
	r := &streamRig{c: NewCollector(epoch)}
	for _, err := range []error{
		r.c.Counter("app0/instructions", func() float64 { return r.cum }),
		r.c.Gauge("dram/queue", func() float64 { return r.depth }),
		r.c.Rate("app0/l1tlb/hit_rate", func() float64 { return r.cum / 2 }, func() float64 { return r.cum }),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// rigEvents are the instant events of the reference run, covering an event
// mid-epoch, one on the cycle before a boundary (so it lands in the sink's
// queued state), and one from a component that owns no columns (so the
// Chrome pid map grows past the bind-time catalogue).
var rigEvents = []Event{
	{Cycle: 150, Name: "fault.drop", Component: "dram", Args: map[string]string{"kind": "response-drop"}},
	{Cycle: 299, Name: "watchdog.warn", Component: "engine", Args: map[string]string{"cycle": "299"}},
	{Cycle: 520, Name: "watchdog.abort", Component: "engine", Args: map[string]string{"cycle": "520"}},
}

// drive simulates cycles [from, to): state update, event emission, then the
// collector tick, exactly as engine-registered components would.
func (r *streamRig) drive(from, to int64) {
	for now := from; now < to; now++ {
		r.cum = float64((now + 1) * 2)
		r.depth = float64(now % 7)
		for _, ev := range rigEvents {
			if ev.Cycle == now {
				r.c.Emit(now, ev.Name, ev.Component, ev.Args)
			}
		}
		r.c.Tick(now)
	}
}

const rigEnd = 600

// bufferedReference runs the rig in buffered mode and renders all three
// exports.
func bufferedReference(t *testing.T) (csv, jsonl, chrome []byte) {
	t.Helper()
	r := newStreamRig(t, 100)
	r.drive(0, rigEnd)
	r.c.Finish(rigEnd)
	d := r.c.Data()
	var cb, jb, hb bytes.Buffer
	if err := d.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteChromeTrace(&hb); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes(), hb.Bytes()
}

func TestStreamingMatchesBuffered(t *testing.T) {
	csvRef, jsonlRef, chromeRef := bufferedReference(t)

	r := newStreamRig(t, 100)
	sink := NewStreamSink()
	var cb, jb, hb bytes.Buffer
	for _, att := range []struct {
		f Format
		w io.Writer
	}{{FormatCSV, &cb}, {FormatJSONL, &jb}, {FormatChrome, &hb}} {
		if err := sink.Attach(att.f, att.w); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.c.SetSink(sink); err != nil {
		t.Fatal(err)
	}
	r.drive(0, rigEnd)
	r.c.Finish(rigEnd)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.HighWater() != rigEnd {
		t.Fatalf("sink high water %d, want %d", sink.HighWater(), rigEnd)
	}
	for _, cmp := range []struct {
		name      string
		got, want []byte
	}{{"csv", cb.Bytes(), csvRef}, {"jsonl", jb.Bytes(), jsonlRef}, {"chrome", hb.Bytes(), chromeRef}} {
		if !bytes.Equal(cmp.got, cmp.want) {
			t.Errorf("%s: streaming output differs from buffered export\nstream: %.200s\nbuffer: %.200s", cmp.name, cmp.got, cmp.want)
		}
	}
	// Streamed mode retains nothing.
	d := r.c.Data()
	if !d.Streamed || len(d.Samples) != 0 || len(d.Events) != 0 {
		t.Fatalf("streamed Data retained samples/events: %+v", d)
	}
	if _, err := ValidateChromeTrace(bytes.NewReader(hb.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSinkCheckpointResume kills a streaming run mid-epoch and resumes
// it from the checkpoint into the same files: the final bytes must match an
// uninterrupted run exactly, with no duplicated or missing epochs, even
// though the dead run wrote further output after the checkpoint was taken.
func TestStreamSinkCheckpointResume(t *testing.T) {
	csvRef, jsonlRef, chromeRef := bufferedReference(t)
	dir := t.TempDir()
	paths := map[Format]string{
		FormatCSV:    filepath.Join(dir, "tel.csv"),
		FormatJSONL:  filepath.Join(dir, "tel.jsonl"),
		FormatChrome: filepath.Join(dir, "tel.trace.json"),
	}
	formats := []Format{FormatCSV, FormatJSONL, FormatChrome}

	attach := func(t *testing.T, sink *StreamSink, open func(string) (io.WriteCloser, error)) []io.WriteCloser {
		var files []io.WriteCloser
		for _, f := range formats {
			w, err := open(paths[f])
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, w)
			if err := sink.Attach(f, w); err != nil {
				t.Fatal(err)
			}
		}
		return files
	}

	// Run 1: stream to files, checkpoint mid-epoch at cycle 350 (one sample
	// pending, one event queued behind it), then keep running and die without
	// closing — the post-checkpoint writes are the lost work a real crash
	// leaves behind.
	const ckptAt = 350
	r1 := newStreamRig(t, 100)
	sink1 := NewStreamSink()
	attach(t, sink1, streamio.Create)
	if err := r1.c.SetSink(sink1); err != nil {
		t.Fatal(err)
	}
	r1.drive(0, ckptAt)
	stRaw, err := r1.c.SnapshotState(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The state must survive the gob encoding checkpoints use.
	var enc bytes.Buffer
	if err := gob.NewEncoder(&enc).Encode(stRaw.(CollectorState)); err != nil {
		t.Fatal(err)
	}
	var st CollectorState
	if err := gob.NewDecoder(&enc).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sink == nil || st.Sink.Pending == nil || len(st.Sink.Queued) != 1 {
		t.Fatalf("checkpoint at cycle %d should hold a pending sample and one queued event, got %+v", ckptAt, st.Sink)
	}
	r1.drive(ckptAt, ckptAt+73) // lost work past the checkpoint

	// Run 2: reopen the same files resumably, restore, finish the run.
	r2 := newStreamRig(t, 100)
	sink2 := NewStreamSink()
	files := attach(t, sink2, streamio.CreateResumable)
	if err := r2.c.SetSink(sink2); err != nil {
		t.Fatal(err)
	}
	if err := r2.c.RestoreState(nil, st); err != nil {
		t.Fatal(err)
	}
	r2.cum = float64(ckptAt * 2) // component state as of the checkpoint
	r2.drive(ckptAt, rigEnd)
	r2.c.Finish(rigEnd)
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	want := map[Format][]byte{FormatCSV: csvRef, FormatJSONL: jsonlRef, FormatChrome: chromeRef}
	for _, f := range formats {
		got, err := os.ReadFile(paths[f])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[f]) {
			t.Errorf("%v: resumed stream differs from uninterrupted run\ngot:  %.300s\nwant: %.300s", f, got, want[f])
		}
	}
}

// TestStreamSinkFreshPreludeResume restores into a non-truncatable writer:
// the sink keeps the fresh prelude and carries only post-checkpoint epochs.
func TestStreamSinkFreshPreludeResume(t *testing.T) {
	const ckptAt = 350
	r1 := newStreamRig(t, 100)
	sink1 := NewStreamSink()
	if err := sink1.Attach(FormatCSV, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := r1.c.SetSink(sink1); err != nil {
		t.Fatal(err)
	}
	r1.drive(0, ckptAt)
	stRaw, err := r1.c.SnapshotState(nil)
	if err != nil {
		t.Fatal(err)
	}

	r2 := newStreamRig(t, 100)
	sink2 := NewStreamSink()
	var out bytes.Buffer // no Truncate/Seek: fresh-prelude path
	if err := sink2.Attach(FormatCSV, &out); err != nil {
		t.Fatal(err)
	}
	if err := r2.c.SetSink(sink2); err != nil {
		t.Fatal(err)
	}
	if err := r2.c.RestoreState(nil, stRaw.(CollectorState)); err != nil {
		t.Fatal(err)
	}
	r2.cum = float64(ckptAt * 2)
	r2.drive(ckptAt, rigEnd)
	r2.c.Finish(rigEnd)
	if err := sink2.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header plus the epochs the resumed run streamed: the pending sample at
	// 300 restored from the checkpoint, then 400, 500, 600.
	if len(lines) != 5 {
		t.Fatalf("fresh-prelude resume wrote %d lines, want 5:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "cycle,") || !strings.HasPrefix(lines[1], "300,") || !strings.HasPrefix(lines[4], "600,") {
		t.Fatalf("fresh-prelude resume content wrong:\n%s", out.String())
	}
}

func TestRestoreModeMismatch(t *testing.T) {
	// Buffered checkpoint into a streaming collector.
	rb := newStreamRig(t, 100)
	rb.drive(0, 200)
	bufState, err := rb.c.SnapshotState(nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := newStreamRig(t, 100)
	sink := NewStreamSink()
	if err := sink.Attach(FormatCSV, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := rs.c.SetSink(sink); err != nil {
		t.Fatal(err)
	}
	if err := rs.c.RestoreState(nil, bufState.(CollectorState)); err == nil {
		t.Fatal("buffered checkpoint restored into a streaming collector")
	}

	// Streaming checkpoint into a buffered collector.
	r1 := newStreamRig(t, 100)
	sink1 := NewStreamSink()
	if err := sink1.Attach(FormatCSV, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := r1.c.SetSink(sink1); err != nil {
		t.Fatal(err)
	}
	r1.drive(0, 200)
	streamState, err := r1.c.SnapshotState(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2 := newStreamRig(t, 100)
	if err := r2.c.RestoreState(nil, streamState.(CollectorState)); err == nil {
		t.Fatal("streaming checkpoint restored into a buffered collector")
	}
}

// failAfter accepts n bytes, then fails every write.
type failAfter struct{ n int }

var errDiskFull = errors.New("disk full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errDiskFull
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errDiskFull
	}
	f.n -= len(p)
	return len(p), nil
}

// TestExportersPropagateWriteErrors pins the fix for exporters swallowing
// write errors: every exporter must surface the first failure, wherever in
// the document it strikes.
func TestExportersPropagateWriteErrors(t *testing.T) {
	d := buildTestData(t)
	exporters := map[string]func(io.Writer) error{
		"csv":    d.WriteCSV,
		"jsonl":  d.WriteJSONL,
		"chrome": d.WriteChromeTrace,
	}
	for name, export := range exporters {
		var full bytes.Buffer
		if err := export(&full); err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int{0, 7, full.Len() / 2, full.Len() - 1} {
			if err := export(&failAfter{n: budget}); !errors.Is(err, errDiskFull) {
				t.Errorf("%s with %d-byte budget returned %v, want disk-full error", name, budget, err)
			}
		}
		// Sanity: a roomy writer succeeds.
		if err := export(io.Discard); err != nil {
			t.Errorf("%s failed on a working writer: %v", name, err)
		}
	}
}

// TestStreamSinkWriteErrorIsSticky checks the live path too: once an output
// fails, the sink suppresses further writes and reports the first error from
// Err, Close and the checkpoint marker.
func TestStreamSinkWriteErrorIsSticky(t *testing.T) {
	r := newStreamRig(t, 10)
	sink := NewStreamSink()
	if err := sink.Attach(FormatCSV, &failAfter{n: 64}); err != nil {
		t.Fatal(err)
	}
	if err := r.c.SetSink(sink); err != nil {
		t.Fatal(err)
	}
	// Drive enough epochs to overflow the write budget plus any buffering.
	for i := 0; i < 4000 && sink.Err() == nil; i++ {
		r.drive(int64(i*10), int64((i+1)*10))
	}
	if !errors.Is(sink.Err(), errDiskFull) {
		t.Fatalf("sink error = %v, want disk full", sink.Err())
	}
	if _, err := r.c.SnapshotState(nil); err == nil {
		t.Fatal("checkpointing a failed sink succeeded")
	}
	if err := sink.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close = %v, want the first write error", err)
	}
}

// TestStreamingMemoryFlat is the O(1)-memory gate (CI runs it by name): a
// million-sample instrumented run must not retain the time series when a
// streaming sink is attached. It logs the retained-heap numbers recorded in
// BENCH_stream.json.
func TestStreamingMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a million-sample run")
	}
	const samples = 1_000_000
	retained := func(streaming bool) int64 {
		r := newStreamRig(t, 1) // epoch 1: one sample per cycle
		var sink *StreamSink
		if streaming {
			sink = NewStreamSink()
			if err := sink.Attach(FormatCSV, io.Discard); err != nil {
				t.Fatal(err)
			}
			if err := r.c.SetSink(sink); err != nil {
				t.Fatal(err)
			}
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		r.drive(0, samples)
		r.c.Finish(samples)
		if streaming {
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		runtime.KeepAlive(r)
		return int64(after.HeapAlloc) - int64(before.HeapAlloc)
	}
	buffered := retained(false)
	streamed := retained(true)
	t.Logf("retained heap after %d samples: buffered %d bytes, streaming %d bytes", samples, buffered, streamed)
	if streamed > buffered/20 {
		t.Fatalf("streaming run retains %d bytes, buffered retains %d: streaming telemetry is not O(1)", streamed, buffered)
	}
}
