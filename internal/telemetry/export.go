package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// The buffered exporters are replays of the collected Data through the same
// incremental writers StreamSink uses live, so buffered and streaming output
// are byte-identical by construction and every write error — not just the
// final flush — propagates to the caller.

// writeVia replays d through a single-output StreamSink. Events are fed in
// live arrival order: an event at a sample's exact cycle fires during that
// cycle's tick, after the snapshot was taken during the previous tick.
func (d *Data) writeVia(format Format, w io.Writer) error {
	k := NewStreamSink()
	if err := k.Attach(format, w); err != nil {
		return err
	}
	if err := k.bind(d.Epoch, d.Columns); err != nil {
		return err
	}
	ei := 0
	for _, s := range d.Samples {
		for ei < len(d.Events) && d.Events[ei].Cycle < s.Cycle {
			k.event(d.Events[ei])
			ei++
		}
		k.sample(s)
		for ei < len(d.Events) && d.Events[ei].Cycle <= s.Cycle {
			k.event(d.Events[ei])
			ei++
		}
	}
	for ; ei < len(d.Events); ei++ {
		k.event(d.Events[ei])
	}
	return k.Close()
}

// WriteCSV writes the time series as CSV: a "cycle" column followed by one
// column per probe, one row per epoch sample. Instant events are not part of
// the CSV; use WriteJSONL or WriteChromeTrace for those.
func (d *Data) WriteCSV(w io.Writer) error { return d.writeVia(FormatCSV, w) }

// jsonlRecord is one WriteJSONL line.
type jsonlRecord struct {
	Type      string             `json:"type"` // "meta", "sample" or "event"
	Cycle     int64              `json:"cycle,omitempty"`
	Epoch     int64              `json:"epoch,omitempty"`     // meta
	Columns   []jsonlColumn      `json:"columns,omitempty"`   // meta
	Values    map[string]float64 `json:"values,omitempty"`    // sample
	Name      string             `json:"name,omitempty"`      // event
	Component string             `json:"component,omitempty"` // event
	Args      map[string]string  `json:"args,omitempty"`      // event
}

type jsonlColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// WriteJSONL writes one JSON object per line: a leading "meta" record with
// the column catalogue, then "sample" and "event" records in cycle order.
// encoding/json sorts map keys, so output is deterministic.
func (d *Data) WriteJSONL(w io.Writer) error { return d.writeVia(FormatJSONL, w) }

// ChromeEvent is one entry of a Chrome trace_event JSON file
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU);
// chrome://tracing and Perfetto load the containing file directly.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Scope string         `json:"s,omitempty"` // instant events: "g"lobal / "p"rocess
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the collected telemetry as Chrome trace_event JSON:
// one process (track group) per component, counter events ("ph":"C") for
// every probe sample, and instant events ("ph":"i") for watchdog aborts and
// fault injections. Timestamps are simulation cycles interpreted as
// microseconds; counter and instant events are emitted in non-decreasing ts
// order, and each component's process_name metadata event precedes its first
// timestamped event.
func (d *Data) WriteChromeTrace(w io.Writer) error { return d.writeVia(FormatChrome, w) }

// ValidateChromeTrace parses a trace_event JSON document and checks the
// invariants masktrace and CI rely on: every event carries a name and a
// phase, counter/instant events carry a pid and sit at non-decreasing
// timestamps. It returns the number of events.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var trace struct {
		TraceEvents []struct {
			Name  *string  `json:"name"`
			Phase *string  `json:"ph"`
			PID   *int     `json:"pid"`
			TS    *float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&trace); err != nil {
		return 0, fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if len(trace.TraceEvents) == 0 {
		return 0, fmt.Errorf("telemetry: trace has no events")
	}
	lastTS := -1.0
	for i, ev := range trace.TraceEvents {
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("telemetry: event %d has no name", i)
		}
		if ev.Phase == nil || *ev.Phase == "" {
			return 0, fmt.Errorf("telemetry: event %d (%s) has no ph", i, *ev.Name)
		}
		if *ev.Phase == "M" {
			continue // metadata events are unordered and need no ts
		}
		if ev.PID == nil {
			return 0, fmt.Errorf("telemetry: event %d (%s) has no pid", i, *ev.Name)
		}
		if ev.TS == nil {
			return 0, fmt.Errorf("telemetry: event %d (%s) has no ts", i, *ev.Name)
		}
		if *ev.TS < lastTS {
			return 0, fmt.Errorf("telemetry: event %d (%s) ts %v < previous %v (not monotonic)",
				i, *ev.Name, *ev.TS, lastTS)
		}
		lastTS = *ev.TS
	}
	return len(trace.TraceEvents), nil
}
