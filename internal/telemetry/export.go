package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteCSV writes the time series as CSV: a "cycle" column followed by one
// column per probe, one row per epoch sample. Instant events are not part of
// the CSV; use WriteJSONL or WriteChromeTrace for those.
func (d *Data) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle")
	for _, col := range d.Columns {
		bw.WriteByte(',')
		bw.WriteString(col.Name)
	}
	bw.WriteByte('\n')
	for _, s := range d.Samples {
		fmt.Fprintf(bw, "%d", s.Cycle)
		for _, v := range s.Values {
			bw.WriteByte(',')
			bw.WriteString(formatValue(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// jsonlRecord is one WriteJSONL line.
type jsonlRecord struct {
	Type      string             `json:"type"` // "meta", "sample" or "event"
	Cycle     int64              `json:"cycle,omitempty"`
	Epoch     int64              `json:"epoch,omitempty"`     // meta
	Columns   []jsonlColumn      `json:"columns,omitempty"`   // meta
	Values    map[string]float64 `json:"values,omitempty"`    // sample
	Name      string             `json:"name,omitempty"`      // event
	Component string             `json:"component,omitempty"` // event
	Args      map[string]string  `json:"args,omitempty"`      // event
}

type jsonlColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// WriteJSONL writes one JSON object per line: a leading "meta" record with
// the column catalogue, then "sample" and "event" records in cycle order.
// encoding/json sorts map keys, so output is deterministic.
func (d *Data) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	meta := jsonlRecord{Type: "meta", Epoch: d.Epoch}
	for _, col := range d.Columns {
		meta.Columns = append(meta.Columns, jsonlColumn{Name: col.Name, Kind: col.Kind.String()})
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}

	ei := 0
	emitEventsThrough := func(cycle int64) error {
		for ei < len(d.Events) && d.Events[ei].Cycle <= cycle {
			ev := d.Events[ei]
			rec := jsonlRecord{Type: "event", Cycle: ev.Cycle, Name: ev.Name, Component: ev.Component, Args: ev.Args}
			if err := enc.Encode(rec); err != nil {
				return err
			}
			ei++
		}
		return nil
	}
	for _, s := range d.Samples {
		if err := emitEventsThrough(s.Cycle); err != nil {
			return err
		}
		rec := jsonlRecord{Type: "sample", Cycle: s.Cycle, Values: make(map[string]float64, len(s.Values))}
		for i, v := range s.Values {
			rec.Values[d.Columns[i].Name] = v
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if err := emitEventsThrough(1<<63 - 1); err != nil {
		return err
	}
	return bw.Flush()
}

// ChromeEvent is one entry of a Chrome trace_event JSON file
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU);
// chrome://tracing and Perfetto load the containing file directly.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Scope string         `json:"s,omitempty"` // instant events: "g"lobal / "p"rocess
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// WriteChromeTrace writes the collected telemetry as Chrome trace_event JSON:
// one process (track group) per component, counter events ("ph":"C") for
// every probe sample, and instant events ("ph":"i") for watchdog aborts and
// fault injections. Timestamps are simulation cycles interpreted as
// microseconds; events are emitted in non-decreasing ts order.
func (d *Data) WriteChromeTrace(w io.Writer) error {
	comps := d.Components()
	pidOf := make(map[string]int, len(comps))
	events := make([]ChromeEvent, 0, len(comps)+len(d.Samples)*len(d.Columns)+len(d.Events))

	// Metadata: name each component's process so Perfetto shows one labelled
	// track group per component.
	for i, comp := range comps {
		pid := i + 1 // pid 0 renders poorly in some viewers
		pidOf[comp] = pid
		events = append(events, ChromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": comp},
		})
	}

	// Counter events per sample, merged with instant events in cycle order.
	ei := 0
	appendEventsThrough := func(cycle int64) {
		for ei < len(d.Events) && d.Events[ei].Cycle <= cycle {
			ev := d.Events[ei]
			args := make(map[string]any, len(ev.Args))
			for _, k := range sortedArgKeys(ev.Args) {
				args[k] = ev.Args[k]
			}
			events = append(events, ChromeEvent{
				Name: ev.Name, Phase: "i", PID: pidOf[ev.Component],
				TS: float64(ev.Cycle), Scope: "p", Args: args,
			})
			ei++
		}
	}
	for _, s := range d.Samples {
		appendEventsThrough(s.Cycle - 1)
		for i, v := range s.Values {
			col := d.Columns[i]
			name := col.Name
			if j := strings.IndexByte(name, '/'); j >= 0 {
				name = name[j+1:]
			}
			events = append(events, ChromeEvent{
				Name: name, Phase: "C", PID: pidOf[col.Component()],
				TS: float64(s.Cycle), Args: map[string]any{"value": v},
			})
		}
		appendEventsThrough(s.Cycle)
	}
	appendEventsThrough(1<<63 - 1)

	bw := bufio.NewWriter(w)
	out := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"source": "masksim", "clock": "gpu-core-cycles-as-us"},
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return err
	}
	if _, err := bw.Write(raw); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace parses a trace_event JSON document and checks the
// invariants masktrace and CI rely on: every event carries a name and a
// phase, counter/instant events carry a pid and sit at non-decreasing
// timestamps. It returns the number of events.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var trace struct {
		TraceEvents []struct {
			Name  *string  `json:"name"`
			Phase *string  `json:"ph"`
			PID   *int     `json:"pid"`
			TS    *float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&trace); err != nil {
		return 0, fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if len(trace.TraceEvents) == 0 {
		return 0, fmt.Errorf("telemetry: trace has no events")
	}
	lastTS := -1.0
	for i, ev := range trace.TraceEvents {
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("telemetry: event %d has no name", i)
		}
		if ev.Phase == nil || *ev.Phase == "" {
			return 0, fmt.Errorf("telemetry: event %d (%s) has no ph", i, *ev.Name)
		}
		if *ev.Phase == "M" {
			continue // metadata events are unordered and need no ts
		}
		if ev.PID == nil {
			return 0, fmt.Errorf("telemetry: event %d (%s) has no pid", i, *ev.Name)
		}
		if ev.TS == nil {
			return 0, fmt.Errorf("telemetry: event %d (%s) has no ts", i, *ev.Name)
		}
		if *ev.TS < lastTS {
			return 0, fmt.Errorf("telemetry: event %d (%s) ts %v < previous %v (not monotonic)",
				i, *ev.Name, *ev.TS, lastTS)
		}
		lastTS = *ev.TS
	}
	return len(trace.TraceEvents), nil
}
