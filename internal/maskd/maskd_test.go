package maskd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"masksim/internal/experiments"
	"masksim/internal/simcache"
	"masksim/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func client(ts *httptest.Server, key string) *Client {
	return &Client{Base: ts.URL, APIKey: key}
}

// TestConcurrentClientsSingleFlight is the acceptance test: N HTTP clients
// submit overlapping campaigns concurrently; every distinct simulation must
// execute exactly once machine-wide (Attempted == cache Misses), and every
// client must receive byte-identical tables, equal to a local maskexp run.
func TestConcurrentClientsSingleFlight(t *testing.T) {
	const cycles = 600
	ids := []string{"fig8", "fig9", "comp-dram"}

	_, ts := newTestServer(t, Config{Workers: 4, Reserve: 1})

	const clients = 3
	results := make([]*JobStatus, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client(ts, fmt.Sprintf("tenant-%d", i))
			st, err := c.Submit(SubmitRequest{Experiments: ids, Cycles: cycles})
			if err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			results[i], errs[i] = c.Wait(ctx, st.ID)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Every job finished clean with every cell done.
	render := func(st *JobStatus) string {
		var b strings.Builder
		for _, cell := range st.Cells {
			if cell.State != CellDone {
				t.Fatalf("job %s cell %s: state=%s err=%s", st.ID, cell.Name, cell.State, cell.Error)
			}
			for _, tab := range cell.Tables {
				b.WriteString(tab)
			}
		}
		return b.String()
	}
	first := render(results[0])
	for i := 1; i < clients; i++ {
		if render(results[i]) != first {
			t.Fatalf("client %d received different tables than client 0", i)
		}
	}

	// Byte-identical to a local (serverless) run of the same experiments.
	var local strings.Builder
	for _, id := range ids {
		rep, err := experiments.RunReport(id, experiments.Options{Cycles: cycles})
		if err != nil {
			t.Fatalf("local %s: %v", id, err)
		}
		for _, tab := range rep.Tables {
			local.WriteString(tab.String())
		}
	}
	if first != local.String() {
		t.Fatalf("server tables differ from local maskexp run:\n--- server ---\n%s\n--- local ---\n%s", first, local.String())
	}

	// Machine-wide single flight: every execution was a distinct cache miss.
	stats, err := client(ts, "tenant-0").Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Attempted == 0 {
		t.Fatal("no simulations executed")
	}
	if stats.Stats.Attempted != stats.Cache.Misses {
		t.Fatalf("Attempted=%d != cache Misses=%d: some simulation executed twice",
			stats.Stats.Attempted, stats.Cache.Misses)
	}
	if stats.Cache.Hits+stats.Cache.InflightWaits == 0 {
		t.Fatal("no cross-client sharing observed")
	}

	// With three identical jobs, at least two of the three per-client campaigns
	// must have been served mostly from the shared cache.
	cacheHitCells := 0
	for _, st := range results {
		for _, cell := range st.Cells {
			if cell.CacheHit {
				cacheHitCells++
			}
		}
	}
	if cacheHitCells == 0 {
		t.Fatal("no cell reported CacheHit; per-cell attribution is broken")
	}
}

// TestTenantQuota429 checks admission fairness: a tenant that exhausted its
// token bucket gets 429 (with Retry-After) while another tenant's submissions
// still land.
func TestTenantQuota429(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	_, ts := newTestServer(t, Config{
		Workers:     2,
		TenantRate:  1.0 / 3600, // one job per hour
		TenantBurst: 1,
		Now:         clock,
	})

	job := SubmitRequest{Sims: []SimSpec{{Config: "SharedTLB", Apps: []string{"MM", "RED"}, Cycles: 200}}}

	a := client(ts, "tenant-a")
	if _, err := a.Submit(job); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := a.Submit(job)
	if !IsRetryable(err) {
		t.Fatalf("exhausted tenant got %v, want 429", err)
	}

	b := client(ts, "tenant-b")
	st, err := b.Submit(job)
	if err != nil {
		t.Fatalf("other tenant blocked by a's quota: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if fin, err := b.Wait(ctx, st.ID); err != nil || fin.State != JobDone {
		t.Fatalf("tenant-b job: state=%v err=%v", fin, err)
	}

	// An hour later tenant-a's bucket refilled.
	mu.Lock()
	now = now.Add(time.Hour)
	mu.Unlock()
	if _, err := a.Submit(job); err != nil {
		t.Fatalf("refilled tenant still rejected: %v", err)
	}
}

// TestRetryAfterSeconds pins the header arithmetic: waits round UP to whole
// seconds, and an exact multiple must not gain a spurious extra second (the
// old int(ra/time.Second)+1 told clients to sleep 2 s for a 1 s refill,
// halving the admission rate they were entitled to).
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		ra   time.Duration
		want int64
	}{
		{0, 1},                      // no computable wait: still ask for a pause
		{-time.Second, 1},           // defensive: negative waits clamp up
		{time.Millisecond, 1},       // sub-second rounds up
		{500 * time.Millisecond, 1}, // sub-second rounds up
		{time.Second, 1},            // exact second: NOT 2
		{1001 * time.Millisecond, 2},
		{2 * time.Second, 2}, // exact multiple: NOT 3
		{2*time.Second + time.Millisecond, 3},
	} {
		if got := retryAfterSeconds(tc.ra); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.ra, got, tc.want)
		}
	}
}

// TestRetryAfterHeader drives the quota 429 path over HTTP with a frozen
// clock: a 1-token/s bucket that just emptied owes the client exactly one
// second, so the header must read "1". A half-token/s bucket owes exactly two
// seconds and must read "2" — exact multiples were the over-waiting case.
func TestRetryAfterHeader(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want string
	}{
		{1, "1"},   // exact 1 s wait
		{0.5, "2"}, // exact 2 s wait; the old rounding said "3"
		{2, "1"},   // 0.5 s wait rounds up
	} {
		now := time.Unix(5000, 0)
		var mu sync.Mutex
		clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
		_, ts := newTestServer(t, Config{
			Workers:     1,
			TenantRate:  tc.rate,
			TenantBurst: 1,
			Now:         clock,
		})

		body := `{"sims":[{"config":"SharedTLB","apps":["MM","RED"],"cycles":100}]}`
		post := func() *http.Response {
			t.Helper()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("X-API-Key", "tenant-ra")
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}

		if resp := post(); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("rate=%g: first submit = %d, want 202", tc.rate, resp.StatusCode)
		}
		resp := post()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("rate=%g: exhausted submit = %d, want 429", tc.rate, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != tc.want {
			t.Errorf("rate=%g: Retry-After = %q, want %q", tc.rate, got, tc.want)
		}
	}
}

// TestClientGetOversizedEntry pins the truncation guard in Client.Get: a body
// longer than the cap must be a miss with a counted transport error — the old
// code returned the first cap bytes as a "hit", handing the cache a corrupt
// entry. A body at exactly the cap still round-trips whole.
func TestClientGetOversizedEntry(t *testing.T) {
	const capBytes = 1 << 10
	key := strings.Repeat("ab", 32)
	var body []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cache/"+key {
			http.NotFound(w, r)
			return
		}
		w.Write(body)
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, MaxEntryBytes: capBytes}

	body = make([]byte, capBytes+1)
	if data, ok := c.Get(key); ok {
		t.Fatalf("oversized body served as a %d-byte hit, want miss", len(data))
	}
	if n := c.TransportErrors(); n != 1 {
		t.Fatalf("TransportErrors = %d after oversized body, want 1", n)
	}

	body = make([]byte, capBytes)
	data, ok := c.Get(key)
	if !ok {
		t.Fatal("exactly-at-cap body reported as miss")
	}
	if len(data) != capBytes {
		t.Fatalf("got %d bytes, want %d", len(data), capBytes)
	}
	if n := c.TransportErrors(); n != 1 {
		t.Fatalf("TransportErrors = %d after clean fetch, want still 1", n)
	}
}

// TestLimiterFairness checks the Silver-Queue execution rule: a tenant at or
// above its reserve cannot take a freed slot while another waiting tenant is
// below its own reserve.
func TestLimiterFairness(t *testing.T) {
	l := NewLimiter(2, 1)
	ctx := context.Background()
	a, b := l.For("a"), l.For("b")

	// Alone, tenant a gets the whole pool (reserve + surplus).
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// b queues; a queues behind it too.
	got := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); b.Acquire(ctx); got <- "b" }()
	// Give b time to register as waiting so the freed slot is owed to it.
	time.Sleep(50 * time.Millisecond)
	go func() { defer wg.Done(); a.Acquire(ctx); got <- "a" }()
	time.Sleep(50 * time.Millisecond)

	a.Release() // frees one slot: owed to b (below reserve), not to a
	if first := <-got; first != "b" {
		t.Fatalf("freed slot went to %q, want the under-reserve tenant b", first)
	}
	a.Release() // now a's queued acquire may proceed
	if second := <-got; second != "a" {
		t.Fatalf("second slot went to %q, want a", second)
	}
	wg.Wait()
	b.Release()
	a.Release()
}

// TestLimiterAcquireContext checks a canceled waiter exits without a slot.
func TestLimiterAcquireContext(t *testing.T) {
	l := NewLimiter(1, 1)
	a := l.For("a")
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.For("b").Acquire(ctx); err == nil {
		t.Fatal("Acquire succeeded with no free slot")
	}
	a.Release()
	if got := len(l.Inflight()); got != 0 {
		t.Fatalf("inflight = %d after full release", got)
	}
}

// TestCacheStoreRoundTrip exercises the content-addressed store endpoints:
// publish, fetch, and the rejection paths (bad key, mismatched entry).
func TestCacheStoreRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	c := client(ts, "t")

	res := &sim.Results{Config: "SharedTLB", Cycles: 42, TotalIPC: 1.5}
	key := strings.Repeat("ab", 32)
	data, err := simcache.EncodeEntry(key, res)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(key); ok {
		t.Fatal("got an entry that was never put")
	}
	c.Put(key, data)
	if n := c.TransportErrors(); n != 0 {
		t.Fatalf("put failed (%d transport errors)", n)
	}
	back, ok := c.Get(key)
	if !ok {
		t.Fatal("published entry not served")
	}
	got, err := simcache.DecodeEntry(key, back)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != 42 || got.TotalIPC != 1.5 {
		t.Fatalf("round-trip mangled the entry: %+v", got)
	}

	// Malformed key: 400 on both verbs.
	resp, err := http.Get(ts.URL + "/v1/cache/not-a-fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key GET = %d, want 400", resp.StatusCode)
	}

	// An entry published under the wrong key is rejected, not stored.
	otherKey := strings.Repeat("cd", 32)
	c.Put(otherKey, data)
	if _, ok := c.Get(otherKey); ok {
		t.Fatal("store accepted an entry whose body names a different key")
	}
}

// TestRemoteClientMode is maskexp -remote end to end: a campaign with the
// server store behind its cache publishes results; a second campaign with a
// fresh local cache resolves everything remotely, byte-identical, simulating
// nothing.
func TestRemoteClientMode(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	const cycles = 400

	render := func(camp *experiments.CampaignReport) string {
		var b strings.Builder
		for _, rep := range camp.Reports {
			if rep.Err != nil {
				t.Fatalf("%s: %v", rep.ID, rep.Err)
			}
			for _, tab := range rep.Tables {
				b.WriteString(tab.String())
			}
		}
		return b.String()
	}

	first := experiments.RunCampaign([]string{"fig8"}, experiments.Options{
		Cycles: cycles, Workers: 2, Remote: client(ts, "alice"),
	})
	if first.Stats.Attempted == 0 || first.Stats.RemotePuts == 0 {
		t.Fatalf("first campaign stats = %+v, want executions published to the server", first.Stats)
	}

	second := experiments.RunCampaign([]string{"fig8"}, experiments.Options{
		Cycles: cycles, Workers: 2, Remote: client(ts, "bob"),
	})
	if second.Stats.Attempted != 0 {
		t.Fatalf("remote resume simulated %d runs, want 0", second.Stats.Attempted)
	}
	if second.Stats.RemoteHits == 0 {
		t.Fatal("remote resume recorded no remote hits")
	}
	if render(first) != render(second) {
		t.Fatal("remote-resumed tables differ from the originals")
	}

	// The server observed the publishes and the cross-machine hits.
	stats, err := client(ts, "alice").Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store.Puts == 0 || stats.Store.Hits == 0 {
		t.Fatalf("store stats = %+v, want puts and hits", stats.Store)
	}
}

// TestCancelJob checks DELETE /v1/jobs/{id} stops an in-flight job through
// the context plumbing.
func TestCancelJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	c := client(ts, "t")
	st, err := c.Submit(SubmitRequest{Sims: []SimSpec{
		{Config: "SharedTLB", Apps: []string{"MM", "RED"}, Cycles: 500_000_000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobCanceled {
		t.Fatalf("state = %s, want canceled", fin.State)
	}
	for _, cell := range fin.Cells {
		if cell.State == CellDone {
			t.Fatalf("cell %s completed despite cancel", cell.Name)
		}
	}
}

// TestDrain checks graceful shutdown: running jobs finish, then submissions
// and healthz report unavailability while the store stays readable.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	c := client(ts, "t")
	job := SubmitRequest{Sims: []SimSpec{{Config: "SharedTLB", Apps: []string{"MM", "RED"}, Cycles: 200}}}
	st, err := c.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(job); !IsRetryable(err) {
		t.Fatalf("submit while draining = %v, want 503", err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	// The store keeps serving reads for clients finishing their own work.
	resp, err = http.Get(ts.URL + "/v1/cache/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("store GET while draining = %d, want 404 (still served)", resp.StatusCode)
	}
}

// TestSubmitValidation checks malformed submissions are rejected up front.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	c := client(ts, "t")
	for _, req := range []SubmitRequest{
		{}, // empty
		{Experiments: []string{"no-such-experiment"}},
		{Sims: []SimSpec{{Config: "NoSuchConfig", Apps: []string{"MM"}}}},
		{Sims: []SimSpec{{Config: "SharedTLB"}}},
		{Sims: []SimSpec{{Config: "SharedTLB", Apps: []string{"MM", "RED"}, Alone: true}}},
	} {
		if _, err := c.Submit(req); err == nil {
			t.Fatalf("submission %+v accepted, want 400", req)
		}
	}
}

// TestLongPollAndEvents checks version-gated long-polls return promptly on
// change and the SSE stream carries the job to its terminal state.
func TestLongPollAndEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	c := client(ts, "t")
	st, err := c.Submit(SubmitRequest{Sims: []SimSpec{
		{Config: "SharedTLB", Apps: []string{"MM", "RED"}, Cycles: 300},
	}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone || fin.Version == 0 {
		t.Fatalf("job = %+v, want done with advancing version", fin)
	}

	// The SSE stream replays to terminal for a late subscriber.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64<<10)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), `"state":"done"`) {
		t.Fatalf("SSE stream did not deliver the terminal state: %q", buf[:n])
	}
}

// TestGCEndpointAndRetention checks RunGC applies the retention policy over
// the server store: under a hard size cap the oldest entry goes first.
func TestGCEndpointAndRetention(t *testing.T) {
	dir := t.TempDir()
	res := &sim.Results{Config: "x", Cycles: 1}
	var total int64
	var datas [][]byte
	for i := 0; i < 2; i++ {
		key := strings.Repeat(fmt.Sprintf("%d", i), 64)
		data, err := simcache.EncodeEntry(key, res)
		if err != nil {
			t.Fatal(err)
		}
		datas = append(datas, data)
		total += int64(len(data))
	}

	s, _ := newTestServer(t, Config{
		Workers:  1,
		CacheDir: dir,
		GC:       simcache.GCPolicy{MaxBytes: total - 1, KeepPerKey: 1},
	})
	for i, data := range datas {
		key := strings.Repeat(fmt.Sprintf("%d", i), 64)
		if err := s.cache.PutRawEntry(key, data); err != nil {
			t.Fatal(err)
		}
	}
	// Age the first entry so the squeeze picks it.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, strings.Repeat("0", 64)+".json"), old, old); err != nil {
		t.Fatal(err)
	}

	got := s.RunGC()
	if got.Scanned != 2 || got.Removed != 1 {
		t.Fatalf("GC result = %+v, want 1 of 2 removed", got)
	}
	if _, err := os.Stat(filepath.Join(dir, strings.Repeat("1", 64)+".json")); err != nil {
		t.Fatalf("newest entry did not survive the squeeze: %v", err)
	}
}

// TestStreamingTelemetrySSE covers the live-telemetry path end to end: a sim
// cell submitted with TelemetryEpoch must execute even when the shared cache
// already holds the identical simulation (streaming bypasses the cache), and
// the job's SSE feed must carry one `event: telemetry` frame per telemetry
// record — the JSONL meta prelude plus each closing epoch's sample.
func TestStreamingTelemetrySSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	c := client(ts, "t")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	spec := SimSpec{Config: "SharedTLB", Apps: []string{"MM", "RED"}, Cycles: 600}
	st, err := c.Submit(SubmitRequest{Sims: []SimSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != JobDone || warm.Cells[0].Executed == 0 {
		t.Fatalf("cache-warming job = %+v, want an executed done cell", warm)
	}

	spec.TelemetryEpoch = 100
	st, err = c.Submit(SubmitRequest{Sims: []SimSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone {
		t.Fatalf("streaming job = %+v, want done", fin)
	}
	if cell := fin.Cells[0]; cell.CacheHit || cell.Executed == 0 {
		t.Fatalf("streaming cell = %+v: served from cache, its feed saw nothing", cell)
	}

	// A late subscriber replays the retained ring: meta record first, then
	// one sample per closed epoch, each wrapped in an event: telemetry frame.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var meta, samples int
	var lastSeq uint64
	for _, block := range strings.Split(string(body), "\n\n") {
		rest, ok := strings.CutPrefix(block, "event: telemetry\ndata: ")
		if !ok {
			continue
		}
		var frame struct {
			Cell    int    `json:"cell"`
			Seq     uint64 `json:"seq"`
			Skipped uint64 `json:"skipped"`
			Record  struct {
				Type  string `json:"type"`
				Cycle int64  `json:"cycle"`
			} `json:"record"`
		}
		if err := json.Unmarshal([]byte(rest), &frame); err != nil {
			t.Fatalf("bad telemetry frame %q: %v", rest, err)
		}
		if frame.Cell != 0 || frame.Skipped != 0 {
			t.Fatalf("frame = %+v, want cell 0 with nothing skipped", frame)
		}
		if meta+samples > 0 && frame.Seq != lastSeq+1 {
			t.Fatalf("telemetry seq jumped %d -> %d", lastSeq, frame.Seq)
		}
		lastSeq = frame.Seq
		switch frame.Record.Type {
		case "meta":
			meta++
		case "sample":
			samples++
			if frame.Record.Cycle <= 0 || frame.Record.Cycle > 600 {
				t.Fatalf("sample cycle %d outside the run", frame.Record.Cycle)
			}
		}
	}
	if meta != 1 || samples < 3 {
		t.Fatalf("SSE feed carried %d meta and %d sample frames, want 1 meta and >=3 samples", meta, samples)
	}
	if !strings.Contains(string(body), `"state":"done"`) {
		t.Fatal("SSE feed did not end with the terminal status frame")
	}
}
