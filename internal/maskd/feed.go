package maskd

// The live telemetry relay. A streaming sim cell attaches a JSONL StreamSink
// output to a telemetryFeed: an io.Writer that splits the stream into lines
// and retains the newest ones in a bounded ring with absolute sequence
// numbers. The SSE handler drains the ring per subscriber, so any number of
// subscribers (including late ones, up to the ring's depth) replay the same
// records without the simulation ever blocking on a slow client.

import "sync"

// feedDepth is the per-cell ring capacity in records. A record is one closed
// telemetry epoch (or instant event), so the ring holds the trailing few
// hundred epochs; subscribers further behind see a skip notice, not stale
// backpressure.
const feedDepth = 256

type telemetryFeed struct {
	notify func() // called after a Write completes at least one line; no locks held

	mu      sync.Mutex
	partial []byte   // bytes of the current unterminated line
	lines   []string // ring contents; lines[0] carries sequence base
	base    uint64
	dropped uint64 // lines pushed out of the ring, for diagnostics
}

func newTelemetryFeed(notify func()) *telemetryFeed {
	return &telemetryFeed{notify: notify}
}

// Write never fails: the feed is an observer, and a full ring drops its
// oldest record rather than stalling the simulation behind it.
func (f *telemetryFeed) Write(p []byte) (int, error) {
	n := len(p)
	f.mu.Lock()
	grew := false
	for len(p) > 0 {
		i := -1
		for j, b := range p {
			if b == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			f.partial = append(f.partial, p...)
			break
		}
		line := string(append(f.partial, p[:i]...))
		f.partial = f.partial[:0]
		p = p[i+1:]
		if line == "" {
			continue
		}
		f.lines = append(f.lines, line)
		grew = true
		if len(f.lines) > feedDepth {
			over := len(f.lines) - feedDepth
			f.lines = append(f.lines[:0], f.lines[over:]...)
			f.base += uint64(over)
			f.dropped += uint64(over)
		}
	}
	f.mu.Unlock()
	if grew && f.notify != nil {
		f.notify()
	}
	return n, nil
}

// drain returns every retained line with sequence >= since, the sequence to
// pass next time, and how many lines the caller missed because the ring had
// already evicted them.
func (f *telemetryFeed) drain(since uint64) (lines []string, next uint64, skipped uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if since < f.base {
		skipped = f.base - since
		since = f.base
	}
	if off := since - f.base; off < uint64(len(f.lines)) {
		lines = append(lines, f.lines[off:]...)
	}
	return lines, f.base + uint64(len(f.lines)), skipped
}
