// Package maskd is the simulation-as-a-service campaign server: an HTTP
// daemon that routes simulation and experiment requests through the shared
// experiments.Harness + simcache single-flight layer, so identical requests
// from any number of clients dedupe machine-wide. Admission and execution are
// tenant-fair, modeled on the paper's Silver Queue (§5.2): every tenant keeps
// a guaranteed trickle of execution slots, and the surplus is shared.
package maskd

import (
	"context"
	"sync"
	"time"
)

// Quota is a per-tenant token bucket gating job admission. Each tenant's
// bucket refills at Rate tokens per second up to Burst; a submission spends
// one token, and an empty bucket means 429. The clock is passed in, so tests
// drive it deterministically.
type Quota struct {
	// Rate is the sustained admission rate in jobs per second per tenant.
	// Rate <= 0 disables the quota (every submission is admitted).
	Rate float64
	// Burst is the bucket capacity (minimum 1 when Rate > 0).
	Burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Allow reports whether tenant may submit a job at instant now, spending one
// token when it may.
func (q *Quota) Allow(tenant string, now time.Time) bool {
	if q.Rate <= 0 {
		return true
	}
	burst := q.Burst
	if burst < 1 {
		burst = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.buckets == nil {
		q.buckets = make(map[string]*bucket)
	}
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.Rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter estimates how long tenant must wait for its next token —
// surfaced as the Retry-After header on a 429.
func (q *Quota) RetryAfter(tenant string, now time.Time) time.Duration {
	if q.Rate <= 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok || b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / q.Rate * float64(time.Second))
}

// Limiter spreads one machine-wide pool of execution slots across tenants,
// Silver-Queue style: of Total slots, every tenant with queued work is owed
// up to Reserve slots before any tenant may consume the surplus. A lone
// tenant still gets the whole pool; when a second tenant shows up, the first
// one's next acquisitions yield until the newcomer holds its reserve. Slots
// are handed out via the experiments.Acquirer interface, so harnesses plug in
// without knowing about tenancy.
type Limiter struct {
	mu       sync.Mutex
	cond     *sync.Cond
	total    int
	reserve  int
	free     int
	inflight map[string]int
	waiting  map[string]int
}

// NewLimiter builds a pool of total slots with the given per-tenant reserve.
// total < 1 defaults to 1; reserve < 1 defaults to 1.
func NewLimiter(total, reserve int) *Limiter {
	if total < 1 {
		total = 1
	}
	if reserve < 1 {
		reserve = 1
	}
	l := &Limiter{
		total:    total,
		reserve:  reserve,
		free:     total,
		inflight: make(map[string]int),
		waiting:  make(map[string]int),
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// reserveDebt is the number of free slots spoken for by OTHER tenants that
// are waiting but still below their reserve. A tenant already at or above its
// own reserve may only take slots beyond that debt.
func (l *Limiter) reserveDebt(tenant string) int {
	debt := 0
	for t, n := range l.waiting {
		if t == tenant || n == 0 {
			continue
		}
		if owed := l.reserve - l.inflight[t]; owed > 0 {
			debt += owed
		}
	}
	return debt
}

// admit reports whether tenant may take a slot right now (mu held).
func (l *Limiter) admit(tenant string) bool {
	if l.free <= 0 {
		return false
	}
	if l.inflight[tenant] < l.reserve {
		return true // within the guaranteed trickle
	}
	return l.free > l.reserveDebt(tenant) // surplus only
}

// TenantSlots binds a Limiter to one tenant as an experiments.Acquirer.
type TenantSlots struct {
	l      *Limiter
	tenant string
}

// For returns tenant's view of the pool.
func (l *Limiter) For(tenant string) *TenantSlots {
	return &TenantSlots{l: l, tenant: tenant}
}

// Acquire blocks until the fairness rule grants tenant a slot or ctx is done.
func (ts *TenantSlots) Acquire(ctx context.Context) error {
	l := ts.l
	// Wake every waiter when the context dies, so the one belonging to this
	// ctx can observe it and give up.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.waiting[ts.tenant]++
	defer func() {
		if l.waiting[ts.tenant]--; l.waiting[ts.tenant] == 0 {
			delete(l.waiting, ts.tenant)
		}
	}()
	for !l.admit(ts.tenant) {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	l.free--
	l.inflight[ts.tenant]++
	return nil
}

// Release returns the slot to the pool.
func (ts *TenantSlots) Release() {
	l := ts.l
	l.mu.Lock()
	l.free++
	if l.inflight[ts.tenant]--; l.inflight[ts.tenant] <= 0 {
		delete(l.inflight, ts.tenant)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Inflight reports the currently held slots per tenant (for /v1/stats).
func (l *Limiter) Inflight() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.inflight))
	for t, n := range l.inflight {
		out[t] = n
	}
	return out
}
