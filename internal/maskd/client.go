package maskd

// The client side: a simcache.RemoteStore over the /v1/cache endpoints (what
// maskexp -remote plugs behind its local cache) and a small job client for
// submit/poll/cancel (what the CI smoke test and other tooling drive).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// maxStoreEntry is the default cap on a fetched cache entry. Responses past
// the cap are a miss, never a truncated "hit".
const maxStoreEntry = 256 << 20

// Client talks to one maskd server. The zero HTTP client is usable; APIKey
// identifies the tenant (empty = anonymous).
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:7070".
	Base   string
	APIKey string
	// HTTP is the underlying client (nil = a 30s-timeout default).
	HTTP *http.Client
	// MaxEntryBytes caps a fetched store entry (0 = 256 MiB). A response past
	// the cap is reported as a miss, never returned truncated.
	MaxEntryBytes int64

	errs atomic.Uint64
}

func (c *Client) maxEntry() int64 {
	if c.MaxEntryBytes > 0 {
		return c.MaxEntryBytes
	}
	return maxStoreEntry
}

func (c *Client) http_() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	return c.http_().Do(req)
}

// Get implements simcache.RemoteStore: fetch one raw entry by fingerprint.
// Any failure — network, non-200, oversized body — is a miss; the caller
// falls back to simulating, so the store can never make a campaign fail.
func (c *Client) Get(key string) ([]byte, bool) {
	req, err := http.NewRequest(http.MethodGet, c.url("/v1/cache/"+key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := c.do(req)
	if err != nil {
		c.errs.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	// Read one byte past the cap: at exactly cap bytes of body the extra read
	// hits EOF and the entry is served whole, while a longer body trips the
	// check below. Capping the read at the limit itself would hand the cache
	// a silently truncated — corrupt — entry and call it a hit.
	limit := c.maxEntry()
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		c.errs.Add(1)
		return nil, false
	}
	if int64(len(data)) > limit {
		c.errs.Add(1)
		return nil, false
	}
	return data, true
}

// Put implements simcache.RemoteStore: publish one raw entry. Best-effort;
// failures are counted but never surfaced (publishing is a favor to other
// clients, not part of this campaign's correctness).
func (c *Client) Put(key string, data []byte) {
	req, err := http.NewRequest(http.MethodPut, c.url("/v1/cache/"+key), bytes.NewReader(data))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		c.errs.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		c.errs.Add(1)
	}
}

// TransportErrors reports failed store round-trips (diagnostic only).
func (c *Client) TransportErrors() uint64 { return c.errs.Load() }

// statusError is a non-2xx API response.
type statusError struct {
	Code int
	Body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("maskd: HTTP %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// IsRetryable reports whether err is a 429/503 worth backing off and
// retrying.
func IsRetryable(err error) bool {
	var se *statusError
	if !asStatus(err, &se) {
		return false
	}
	return se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable
}

func asStatus(err error, out **statusError) bool {
	se, ok := err.(*statusError)
	if ok {
		*out = se
	}
	return ok
}

func decodeResponse(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxStoreEntry))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &statusError{Code: resp.StatusCode, Body: string(body)}
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(body, v)
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(req SubmitRequest) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequest(http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.do(hr)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := decodeResponse(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one snapshot; with wait > 0 it long-polls past version since.
func (c *Client) Job(ctx context.Context, id string, since uint64, wait time.Duration) (*JobStatus, error) {
	u := c.url("/v1/jobs/" + id)
	if wait > 0 {
		u += "?since=" + strconv.FormatUint(since, 10) + "&wait=" + wait.String()
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	// The long-poll must outlive the default client timeout.
	cl := c.http_()
	if wait > 0 && cl.Timeout > 0 && cl.Timeout < wait+10*time.Second {
		clCopy := *cl
		clCopy.Timeout = wait + 10*time.Second
		cl = &clCopy
	}
	if c.APIKey != "" {
		hr.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := cl.Do(hr)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := decodeResponse(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait long-polls until the job is terminal or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	var since uint64
	for {
		st, err := c.Job(ctx, id, since, 30*time.Second)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		since = st.Version
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// Cancel asks the server to cancel a job.
func (c *Client) Cancel(id string) error {
	hr, err := http.NewRequest(http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(hr)
	if err != nil {
		return err
	}
	return decodeResponse(resp, nil)
}

// Stats fetches the server-wide counters.
func (c *Client) Stats() (*ServerStats, error) {
	hr, err := http.NewRequest(http.MethodGet, c.url("/v1/stats"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hr)
	if err != nil {
		return nil, err
	}
	var st ServerStats
	if err := decodeResponse(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
