package maskd

// The HTTP surface. Stdlib-only: net/http's 1.22 pattern router, SSE via
// http.Flusher, long-poll via job.await. All state is in-process; the shared
// content-addressed store is the server's simcache disk layer, served raw by
// fingerprint so remote maskexp clients and other maskd instances can consult
// and populate it.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"masksim/internal/experiments"
	"masksim/internal/metrics"
	"masksim/internal/simcache"
	"masksim/internal/snapshot"
	"masksim/internal/telemetry"
	"masksim/sim"
)

// Config wires a Server.
type Config struct {
	// CacheDir is the on-disk result store (required for the /v1/cache
	// endpoints; in-memory dedup works without it).
	CacheDir string
	// CheckpointDir enables mid-run checkpoints for server-side executions.
	CheckpointDir   string
	CheckpointEvery int64
	// Workers is the machine-wide execution-slot pool (0 = 1).
	Workers int
	// Reserve is the per-tenant guaranteed slot count (Silver Queue trickle).
	Reserve int
	// TenantRate/TenantBurst shape the per-tenant admission token bucket
	// (jobs per second / bucket size). Rate 0 = unlimited.
	TenantRate  float64
	TenantBurst float64
	// MaxActiveJobs bounds queued+running jobs server-wide; beyond it
	// submissions get 429. 0 = unlimited.
	MaxActiveJobs int
	// RunTimeout bounds each simulation's wall-clock time (0 = none).
	RunTimeout time.Duration
	// DefaultCycles is the per-run budget when a submission leaves Cycles
	// zero (default 50000, matching maskexp).
	DefaultCycles int64
	// GC is the retention policy for the cache and checkpoint directories;
	// GCEvery its cadence (0 = no background sweeps).
	GC      simcache.GCPolicy
	GCEvery time.Duration
	// MaxEntryBytes caps a PUT /v1/cache body (default 64 MiB).
	MaxEntryBytes int64
	// Now is the clock (nil = time.Now); tests inject a fake.
	Now func() time.Time
}

// Server is the maskd daemon state.
type Server struct {
	cfg     Config
	cache   *simcache.Cache
	limiter *Limiter
	quota   *Quota
	mux     *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for /v1/jobs listing
	nextID   int
	active   int // queued or running jobs
	draining bool
	finished metrics.RunStats // run accounting of finished jobs
	gcLast   simcache.GCResult

	store StoreStats

	wg     sync.WaitGroup
	gcStop chan struct{}
}

// StoreStats counts shared-store traffic (the /v1/cache endpoints remote
// clients drive).
type StoreStats struct {
	// Gets counts entry fetches; Hits the ones served (cross-machine dedup
	// evidence).
	Gets uint64 `json:"gets"`
	Hits uint64 `json:"hits"`
	// Puts counts accepted publishes; Rejects bodies refused as corrupt,
	// mismatched, malformed or oversized.
	Puts    uint64 `json:"puts"`
	Rejects uint64 `json:"rejects"`
}

// NewServer builds a server from cfg. The cache directory is created durably
// up front so a misconfigured store fails at startup, not mid-campaign.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Reserve < 1 {
		cfg.Reserve = 1
	}
	if cfg.DefaultCycles <= 0 {
		cfg.DefaultCycles = 50_000
	}
	if cfg.MaxEntryBytes <= 0 {
		cfg.MaxEntryBytes = 64 << 20
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	cache := simcache.New(cfg.CacheDir)
	if cfg.CacheDir != "" {
		if err := snapshot.EnsureDir(cfg.CacheDir); err != nil {
			return nil, fmt.Errorf("maskd: cache dir: %w", err)
		}
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		limiter: NewLimiter(cfg.Workers, cfg.Reserve),
		quota:   &Quota{Rate: cfg.TenantRate, Burst: cfg.TenantBurst},
		jobs:    make(map[string]*job),
		gcStop:  make(chan struct{}),
	}
	s.routes()
	if cfg.GCEvery > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
}

// tenant identifies the caller: the X-API-Key header, or "anonymous".
func tenant(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders a wait as a Retry-After header value: the exact
// wait rounded up to whole seconds, never below 1. Plain int(ra/time.Second)+1
// over-waits by a full second whenever the wait is an exact multiple (a 1 s
// token refill told clients to sleep 2 s, halving their admission rate).
func retryAfterSeconds(ra time.Duration) int64 {
	secs := (int64(ra) + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleSubmit admits, validates and launches a job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	ten := tenant(r)
	var req SubmitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	now := s.cfg.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.MaxActiveJobs > 0 && s.active >= s.cfg.MaxActiveJobs {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d active)", s.cfg.MaxActiveJobs)
		return
	}
	if !s.quota.Allow(ten, now) {
		s.mu.Unlock()
		ra := s.quota.RetryAfter(ten, now)
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(ra), 10))
		writeError(w, http.StatusTooManyRequests, "tenant %q over admission quota", ten)
		return
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{cancel: cancel, done: make(chan struct{})}
	j.status = JobStatus{ID: id, Tenant: ten, State: JobQueued}
	for _, eid := range req.Experiments {
		j.status.Cells = append(j.status.Cells, CellStatus{Name: eid, Kind: "experiment", State: CellQueued})
	}
	for _, spec := range req.Sims {
		j.status.Cells = append(j.status.Cells, CellStatus{Name: cellName(spec), Kind: "sim", State: CellQueued})
	}
	j.feeds = make([]*telemetryFeed, len(j.status.Cells))
	for i, spec := range req.Sims {
		if spec.TelemetryEpoch > 0 {
			// Each closing epoch bumps the job version (through an otherwise
			// empty update), so SSE subscribers and long-pollers wake per
			// epoch, not per cell transition.
			j.feeds[len(req.Experiments)+i] = newTelemetryFeed(func() { j.update(func(*JobStatus) {}) })
		}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.active++
	s.mu.Unlock()

	s.wg.Add(1)
	go s.runJob(ctx, j, ten, req)

	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// runJob executes every cell concurrently and settles the job state.
func (s *Server) runJob(ctx context.Context, j *job, ten string, req SubmitRequest) {
	defer s.wg.Done()
	defer j.cancel()
	cycles := req.Cycles
	if cycles <= 0 {
		cycles = s.cfg.DefaultCycles
	}
	j.update(func(st *JobStatus) { st.State = JobRunning })

	var wg sync.WaitGroup
	var jobStats struct {
		sync.Mutex
		stats metrics.RunStats
	}
	runCell := func(i int, run func() (CellStatus, metrics.RunStats)) {
		defer wg.Done()
		j.update(func(st *JobStatus) { st.Cells[i].State = CellRunning })
		cell, stats := run()
		jobStats.Lock()
		jobStats.stats.Merge(runOnly(stats))
		jobStats.Unlock()
		j.update(func(st *JobStatus) {
			name, kind := st.Cells[i].Name, st.Cells[i].Kind
			st.Cells[i] = cell
			st.Cells[i].Name, st.Cells[i].Kind = name, kind
		})
	}

	idx := 0
	for _, eid := range req.Experiments {
		wg.Add(1)
		go func(i int, eid string) {
			runCell(i, func() (CellStatus, metrics.RunStats) {
				return s.runExperimentCell(ctx, ten, eid, cycles, req.Full)
			})
		}(idx, eid)
		idx++
	}
	for _, spec := range req.Sims {
		wg.Add(1)
		go func(i int, spec SimSpec) {
			runCell(i, func() (CellStatus, metrics.RunStats) {
				return s.runSimCell(ctx, ten, spec, cycles, j.feeds[i])
			})
		}(idx, spec)
		idx++
	}
	wg.Wait()

	canceled := ctx.Err() != nil
	j.update(func(st *JobStatus) {
		st.Stats = jobStats.stats
		st.State = JobDone
		for i := range st.Cells {
			switch {
			case canceled && st.Cells[i].State != CellDone:
				st.Cells[i].State = CellCanceled
				st.State = JobCanceled
			case st.Cells[i].State == CellFailed:
				if st.State == JobDone {
					st.State = JobFailed
				}
			}
		}
		if canceled {
			st.State = JobCanceled
		}
	})
	close(j.done)

	s.mu.Lock()
	s.active--
	s.finished.Merge(jobStats.stats)
	s.mu.Unlock()
}

// cellHarnessOpts are the per-cell experiment options: own harness, shared
// cache and fair slots.
func (s *Server) cellHarnessOpts(ctx context.Context, ten string, cycles int64, full bool) experiments.Options {
	return experiments.Options{
		Cycles:          cycles,
		Full:            full,
		Ctx:             ctx,
		RunTimeout:      s.cfg.RunTimeout,
		CheckpointDir:   s.cfg.CheckpointDir,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Cache:           s.cache,
		Slots:           s.limiter.For(ten),
	}
}

func (s *Server) runExperimentCell(ctx context.Context, ten, id string, cycles int64, full bool) (CellStatus, metrics.RunStats) {
	rep, err := experiments.RunReport(id, s.cellHarnessOpts(ctx, ten, cycles, full))
	cell := CellStatus{State: CellDone}
	var stats metrics.RunStats
	if rep != nil {
		stats = rep.Stats
		cell.Requests = rep.Stats.CacheRequests
		cell.Executed = rep.Stats.Attempted
		cell.CacheHit = err == nil && cell.Requests > 0 && cell.Executed == 0
		for _, t := range rep.Tables {
			cell.Tables = append(cell.Tables, t.String())
		}
	}
	if err != nil {
		cell.State = CellFailed
		cell.Error = err.Error()
	}
	return cell, stats
}

func (s *Server) runSimCell(ctx context.Context, ten string, spec SimSpec, defCycles int64, feed *telemetryFeed) (CellStatus, metrics.RunStats) {
	cycles := spec.Cycles
	if cycles <= 0 {
		cycles = defCycles
	}
	cfg, err := sim.ConfigByName(spec.Config)
	if err != nil {
		return CellStatus{State: CellFailed, Error: err.Error()}, metrics.RunStats{}
	}
	var sink *telemetry.StreamSink
	if spec.TelemetryEpoch > 0 && feed != nil {
		// Stream each closing epoch into the job's feed as JSONL. Auto-flush
		// pushes records out per epoch instead of per 256KB buffer, and the
		// sink in the config makes the run uncacheable, so the simulation the
		// subscribers are watching actually executes.
		cfg.TelemetryEpoch = spec.TelemetryEpoch
		sink = telemetry.NewStreamSink()
		sink.SetAutoFlush(true)
		if err := sink.Attach(telemetry.FormatJSONL, feed); err != nil {
			return CellStatus{State: CellFailed, Error: err.Error()}, metrics.RunStats{}
		}
		cfg.TelemetrySink = sink
	}
	h := experiments.NewHarness(cycles)
	h.Ctx = ctx
	h.RunTimeout = s.cfg.RunTimeout
	h.Cache = s.cache
	h.Slots = s.limiter.For(ten)
	h.CheckpointDir = s.cfg.CheckpointDir
	h.CheckpointEvery = s.cfg.CheckpointEvery

	var (
		res  *sim.Results
		info experiments.RunInfo
	)
	if spec.Alone {
		cores := spec.Cores
		if cores <= 0 {
			cores = cfg.Cores
		}
		res, info, err = h.RunAloneEx(cfg, spec.Apps[0], cores)
	} else {
		res, info, err = h.RunEx(cfg, spec.Apps)
	}
	if sink != nil {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("telemetry stream: %w", cerr)
		}
	}
	stats := h.Stats()
	cell := CellStatus{
		State:    CellDone,
		Requests: stats.CacheRequests,
		Executed: stats.Attempted,
		CacheHit: err == nil && !info.Executed,
		Results:  res,
	}
	if err != nil {
		cell.State = CellFailed
		cell.Error = err.Error()
		cell.Results = nil
	}
	return cell, stats
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleJob returns a job snapshot, long-polling when ?since=V is at the
// current version and ?wait=D is positive.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	q := r.URL.Query()
	if waitStr := q.Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, "bad wait %q", waitStr)
			return
		}
		if wait > time.Minute {
			wait = time.Minute
		}
		since, _ := strconv.ParseUint(q.Get("since"), 10, 64)
		writeJSON(w, http.StatusOK, j.await(r.Context(), since, wait))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// telemetryFrame is one `event: telemetry` SSE payload: a raw record from a
// streaming cell's JSONL telemetry feed, tagged with its cell index and feed
// sequence number. Skipped, when present, counts records the ring evicted
// before this subscriber drained them (it only retains the newest feedDepth).
type telemetryFrame struct {
	Cell    int             `json:"cell"`
	Seq     uint64          `json:"seq"`
	Skipped uint64          `json:"skipped,omitempty"`
	Record  json.RawMessage `json:"record"`
}

// handleEvents streams job snapshots as server-sent events until the job is
// terminal or the client goes away. Streaming cells interleave `event:
// telemetry` frames: each closing telemetry epoch is relayed as soon as the
// sink commits it, ahead of the status frame of the same wake.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var since uint64
	pos := make([]uint64, len(j.feeds))
	for {
		st := j.await(r.Context(), since, 30*time.Second)
		for i, f := range j.feeds {
			if f == nil {
				continue
			}
			lines, next, skipped := f.drain(pos[i])
			for li, line := range lines {
				frame := telemetryFrame{Cell: i, Seq: next - uint64(len(lines)-li), Record: json.RawMessage(line)}
				if li == 0 {
					frame.Skipped = skipped
				}
				data, err := json.Marshal(frame)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: telemetry\ndata: %s\n\n", data)
			}
			pos[i] = next
		}
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "data: %s\n\n", data)
		fl.Flush()
		if st.Terminal() {
			return
		}
		since = st.Version
		if r.Context().Err() != nil {
			return
		}
	}
}

// handleCancel cancels a job's context; in-flight cells wind down through the
// harness supervision path.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleList returns every job snapshot in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j := s.lookup(id); j != nil {
			out = append(out, j.snapshot())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCacheGet serves one raw content-addressed entry.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !simcache.ValidKey(key) {
		writeError(w, http.StatusBadRequest, "malformed key")
		return
	}
	s.mu.Lock()
	s.store.Gets++
	s.mu.Unlock()
	data, err := s.cache.RawEntry(key)
	if err != nil {
		writeError(w, http.StatusNotFound, "no entry")
		return
	}
	s.mu.Lock()
	s.store.Hits++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleCachePut accepts one entry, validating it against its key before it
// touches the store (a corrupt or mismatched body is rejected, not stored).
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !simcache.ValidKey(key) {
		writeError(w, http.StatusBadRequest, "malformed key")
		return
	}
	if s.cache.Dir() == "" {
		writeError(w, http.StatusNotImplemented, "server has no persistent store")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxEntryBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxEntryBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "entry exceeds %d bytes", s.cfg.MaxEntryBytes)
		return
	}
	if err := s.cache.PutRawEntry(key, body); err != nil {
		s.mu.Lock()
		s.store.Rejects++
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, "rejected: %v", err)
		return
	}
	s.mu.Lock()
	s.store.Puts++
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// ServerStats is the /v1/stats payload.
type ServerStats struct {
	// Jobs counts by state.
	Jobs map[string]int `json:"jobs"`
	// Stats is the merged run accounting of all finished jobs.
	Stats metrics.RunStats `json:"stats"`
	// Cache is the shared result cache's counters (the machine-wide dedup
	// evidence for server-side executions: Requests vs Misses).
	Cache simcache.Stats `json:"cache"`
	// Store is the raw /v1/cache endpoint traffic (the cross-machine dedup
	// evidence for maskexp -remote clients).
	Store StoreStats `json:"store"`
	// Inflight is the execution slots currently held, per tenant.
	Inflight map[string]int `json:"inflight"`
	// LastGC is the most recent retention sweep.
	LastGC simcache.GCResult `json:"lastGC"`
	// Draining is true once graceful shutdown began.
	Draining bool `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	stats := s.finished
	jobs := map[string]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		jobs[string(j.status.State)]++
		j.mu.Unlock()
	}
	gcLast := s.gcLast
	draining := s.draining
	store := s.store
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ServerStats{
		Jobs:     jobs,
		Stats:    stats,
		Cache:    s.cache.Stats(),
		Store:    store,
		Inflight: s.limiter.Inflight(),
		LastGC:   gcLast,
		Draining: draining,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// gcDirs are the directories the retention policy covers.
func (s *Server) gcDirs() []string {
	var dirs []string
	if s.cfg.CacheDir != "" {
		dirs = append(dirs, s.cfg.CacheDir)
	}
	if s.cfg.CheckpointDir != "" && s.cfg.CheckpointDir != s.cfg.CacheDir {
		dirs = append(dirs, s.cfg.CheckpointDir)
	}
	return dirs
}

// RunGC sweeps the store and checkpoint directories once under the configured
// policy and records the result for /v1/stats.
func (s *Server) RunGC() simcache.GCResult {
	res := simcache.GC(s.gcDirs(), s.cfg.GC, s.cfg.Now())
	s.mu.Lock()
	s.gcLast = res
	s.mu.Unlock()
	return res
}

func (s *Server) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.RunGC()
		case <-s.gcStop:
			return
		}
	}
}

// Drain stops admitting jobs (submissions get 503, healthz flips) and waits
// for every running job and the GC loop to finish, or for ctx to expire.
// Cache GET/PUT stay available throughout, so clients finishing their own
// work can still publish results.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.gcStop)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CancelAll cancels every non-terminal job (used by hard shutdown paths).
func (s *Server) CancelAll() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}
