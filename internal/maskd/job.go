package maskd

// The request/job layer. A job is one submission: a set of named experiments
// and/or raw simulation specs. Each unit of the submission is a cell; cells
// run concurrently, each under its own harness, but every harness shares the
// server-wide result cache (machine-wide single-flight) and the fair limiter
// (machine-wide execution budget), so two jobs requesting the same simulation
// execute it exactly once regardless of tenant.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"masksim/internal/experiments"
	"masksim/internal/metrics"
	"masksim/sim"
)

// SimSpec names one raw simulation: a standard configuration, a set of
// applications, and a cycle budget.
type SimSpec struct {
	// Config is a standard configuration name (sim.ConfigNames).
	Config string `json:"config"`
	// Apps are workload names; one per app sharing the GPU.
	Apps []string `json:"apps"`
	// Cycles is the simulated length (0 = the job default).
	Cycles int64 `json:"cycles,omitempty"`
	// Alone runs Apps[0] uncontended on Cores cores instead of sharing.
	Alone bool `json:"alone,omitempty"`
	// Cores is the alone-run core count (Alone only; 0 = all cores).
	Cores int `json:"cores,omitempty"`
	// TelemetryEpoch, when positive, streams the cell's telemetry live: the
	// simulation samples its probes every TelemetryEpoch cycles and each
	// closing epoch is relayed on the job's SSE feed as an `event: telemetry`
	// frame. A streaming cell always executes — the shared result cache is
	// bypassed, since a cache hit would skip the run the stream observes.
	TelemetryEpoch int64 `json:"telemetryEpoch,omitempty"`
}

// SubmitRequest is the body of POST /v1/jobs.
type SubmitRequest struct {
	// Experiments lists experiment IDs (maskexp -list) to run as cells.
	Experiments []string `json:"experiments,omitempty"`
	// Sims lists raw simulations to run as cells.
	Sims []SimSpec `json:"sims,omitempty"`
	// Cycles is the per-run cycle budget (default 50000, as maskexp).
	Cycles int64 `json:"cycles,omitempty"`
	// Full selects the all-pairs variant of figure-11-class experiments.
	Full bool `json:"full,omitempty"`
}

// CellState is the lifecycle of one cell.
type CellState string

const (
	CellQueued   CellState = "queued"
	CellRunning  CellState = "running"
	CellDone     CellState = "done"
	CellFailed   CellState = "failed"
	CellCanceled CellState = "canceled"
)

// CellStatus reports one cell of a job.
type CellStatus struct {
	// Name identifies the cell: the experiment ID, or "sim:<config>/<apps>".
	Name string `json:"name"`
	// Kind is "experiment" or "sim".
	Kind  string    `json:"kind"`
	State CellState `json:"state"`
	// CacheHit is true when the cell completed without executing a single
	// simulation — every constituent run came from the shared cache (memory,
	// disk, or another job's in-flight execution).
	CacheHit bool `json:"cacheHit"`
	// Executed counts the simulations this cell actually executed (its cache
	// misses); Requests the simulations it asked for.
	Executed uint64 `json:"executed"`
	Requests uint64 `json:"requests"`
	// Tables holds the rendered result tables of an experiment cell,
	// byte-identical to local maskexp output.
	Tables []string `json:"tables,omitempty"`
	// Results is the raw outcome of a sim cell.
	Results *sim.Results `json:"results,omitempty"`
	// Error is the cell failure, if any.
	Error string `json:"error,omitempty"`
}

// JobState is the lifecycle of a job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// JobStatus is the wire representation of a job, returned by submit and by
// every poll. Version increments on every state change; long-polls pass it
// back as ?since=V to block until something changed.
type JobStatus struct {
	ID      string       `json:"id"`
	Tenant  string       `json:"tenant"`
	State   JobState     `json:"state"`
	Version uint64       `json:"version"`
	Cells   []CellStatus `json:"cells"`
	// Stats aggregates the job's run accounting (cache counters are
	// server-wide and reported on /v1/stats instead).
	Stats metrics.RunStats `json:"stats"`
}

// Terminal reports whether the job has finished (no further updates).
func (s *JobStatus) Terminal() bool {
	switch s.State {
	case JobDone, JobFailed, JobCanceled:
		return true
	}
	return false
}

// job is the server-side runtime state of one submission.
type job struct {
	mu      sync.Mutex
	status  JobStatus
	waiters []chan struct{}
	cancel  context.CancelFunc
	done    chan struct{} // closed when the last cell finished

	// feeds holds one telemetry ring per cell (nil for cells that do not
	// stream). The slice is built at submit time and never resized, so SSE
	// handlers read it without the job lock.
	feeds []*telemetryFeed
}

// update applies f under the lock, bumps the version and wakes every waiter.
func (j *job) update(f func(*JobStatus)) {
	j.mu.Lock()
	f(&j.status)
	j.status.Version++
	waiters := j.waiters
	j.waiters = nil
	j.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// snapshot returns a deep-enough copy for serialization: the cell slice is
// cloned so concurrent updates never race the JSON encoder.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.status
	s.Cells = append([]CellStatus(nil), j.status.Cells...)
	return s
}

// await blocks until the job's version exceeds since, the timeout elapses, or
// ctx is done, and returns the current snapshot.
func (j *job) await(ctx context.Context, since uint64, timeout time.Duration) JobStatus {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		j.mu.Lock()
		if j.status.Version > since || j.status.Terminal() && j.status.Version >= since {
			s := j.status
			s.Cells = append([]CellStatus(nil), j.status.Cells...)
			j.mu.Unlock()
			return s
		}
		w := make(chan struct{})
		j.waiters = append(j.waiters, w)
		j.mu.Unlock()
		select {
		case <-w:
		case <-deadline.C:
			return j.snapshot()
		case <-ctx.Done():
			return j.snapshot()
		}
	}
}

// cellName labels a sim cell.
func cellName(spec SimSpec) string {
	name := fmt.Sprintf("sim:%s/%v", spec.Config, spec.Apps)
	if spec.Alone {
		name = fmt.Sprintf("alone:%s/%s/%d", spec.Config, spec.Apps[0], spec.Cores)
	}
	return name
}

// validate rejects malformed submissions before a job is created.
func (r *SubmitRequest) validate() error {
	if len(r.Experiments) == 0 && len(r.Sims) == 0 {
		return fmt.Errorf("empty job: no experiments and no sims")
	}
	for _, id := range r.Experiments {
		if experiments.Describe(id) == "" {
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	for i, spec := range r.Sims {
		if _, err := sim.ConfigByName(spec.Config); err != nil {
			return fmt.Errorf("sim %d: %v", i, err)
		}
		if len(spec.Apps) == 0 {
			return fmt.Errorf("sim %d: no apps", i)
		}
		if spec.Alone && len(spec.Apps) != 1 {
			return fmt.Errorf("sim %d: alone runs take exactly one app", i)
		}
		if spec.TelemetryEpoch < 0 {
			return fmt.Errorf("sim %d: negative telemetryEpoch %d", i, spec.TelemetryEpoch)
		}
	}
	return nil
}

// runOnly strips the shared-cache counters from s: per-job stats report what
// the job requested (CacheRequests is harness-local) and ran; the shared
// cache's hit/miss breakdown is machine-wide and reported on /v1/stats.
func runOnly(s metrics.RunStats) metrics.RunStats {
	s.CacheHits = 0
	s.CacheInflightWaits = 0
	s.CacheMisses = 0
	s.DiskHits = 0
	s.RemoteHits = 0
	s.RemotePuts = 0
	s.RemoteErrors = 0
	return s
}
