package engine

import (
	"testing"
	"testing/quick"
)

type recorder struct {
	id    int
	log   *[]int
	ticks int64
}

func (r *recorder) Tick(now int64) {
	r.ticks++
	*r.log = append(*r.log, r.id)
}

func TestTickOrderIsRegistrationOrder(t *testing.T) {
	e := New()
	var log []int
	for i := 0; i < 5; i++ {
		e.Register(&recorder{id: i, log: &log})
	}
	e.Step()
	want := []int{0, 1, 2, 3, 4}
	for i, v := range want {
		if log[i] != v {
			t.Fatalf("tick order %v, want %v", log, want)
		}
	}
}

func TestRunAdvancesClock(t *testing.T) {
	e := New()
	var log []int
	r := &recorder{log: &log}
	e.Register(r)
	e.Run(17)
	if e.Now() != 17 {
		t.Fatalf("Now=%d, want 17", e.Now())
	}
	if r.ticks != 17 {
		t.Fatalf("ticks=%d, want 17", r.ticks)
	}
}

func TestTickFuncSeesMonotonicClock(t *testing.T) {
	e := New()
	last := int64(-1)
	e.Register(TickFunc(func(now int64) {
		if now != last+1 {
			t.Fatalf("non-monotonic clock: %d after %d", now, last)
		}
		last = now
	}))
	e.Run(10)
}

func TestPipeLatency(t *testing.T) {
	p := NewPipe[int](3, 0)
	if !p.Push(10, 42) {
		t.Fatal("push failed on unbounded pipe")
	}
	for now := int64(10); now < 13; now++ {
		if _, ok := p.Pop(now); ok {
			t.Fatalf("item visible at %d before latency elapsed", now)
		}
	}
	v, ok := p.Pop(13)
	if !ok || v != 42 {
		t.Fatalf("Pop(13) = %v,%v; want 42,true", v, ok)
	}
}

func TestPipeZeroLatency(t *testing.T) {
	p := NewPipe[string](0, 0)
	p.Push(5, "x")
	if v, ok := p.Pop(5); !ok || v != "x" {
		t.Fatal("zero-latency pipe should deliver same cycle")
	}
}

func TestPipeFIFO(t *testing.T) {
	p := NewPipe[int](1, 0)
	for i := 0; i < 10; i++ {
		p.Push(0, i)
	}
	for i := 0; i < 10; i++ {
		v, ok := p.Pop(100)
		if !ok || v != i {
			t.Fatalf("pop %d = %v,%v", i, v, ok)
		}
	}
}

func TestPipeCapacity(t *testing.T) {
	p := NewPipe[int](1, 2)
	if !p.Push(0, 1) || !p.Push(0, 2) {
		t.Fatal("pushes under capacity failed")
	}
	if p.Push(0, 3) {
		t.Fatal("push over capacity succeeded")
	}
	if !p.Full() {
		t.Fatal("Full() false on full pipe")
	}
	p.Pop(10)
	if !p.Push(10, 3) {
		t.Fatal("push after pop failed")
	}
}

func TestPipePeekDoesNotConsume(t *testing.T) {
	p := NewPipe[int](0, 0)
	p.Push(0, 7)
	if v, ok := p.Peek(0); !ok || v != 7 {
		t.Fatal("peek failed")
	}
	if p.Len() != 1 {
		t.Fatal("peek consumed the item")
	}
	if v, ok := p.Pop(0); !ok || v != 7 {
		t.Fatal("pop after peek failed")
	}
}

func TestPipeNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative latency did not panic")
		}
	}()
	NewPipe[int](-1, 0)
}

// Property: every pushed item is popped exactly once, in order, and never
// before its ready time.
func TestPipeDeliveryProperty(t *testing.T) {
	f := func(latencies []uint8) bool {
		const lat = 4
		p := NewPipe[int](lat, 0)
		now := int64(0)
		pushTimes := map[int]int64{}
		next := 0
		popped := 0
		for _, step := range latencies {
			now += int64(step % 3)
			p.Push(now, next)
			pushTimes[next] = now
			next++
			if v, ok := p.Pop(now); ok {
				if v != popped {
					return false // out of order
				}
				if now-pushTimes[v] < lat {
					return false // too early
				}
				popped++
			}
		}
		// Drain.
		now += 1000
		for {
			v, ok := p.Pop(now)
			if !ok {
				break
			}
			if v != popped {
				return false
			}
			popped++
		}
		return popped == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// snapRecorder is a ticker with the Snapshotter capability; its state is its
// tick count.
type snapRecorder struct {
	recorder
	restored int64
}

func (r *snapRecorder) SnapshotState(ctx any) (any, error) { return r.ticks, nil }
func (r *snapRecorder) RestoreState(ctx any, state any) error {
	r.restored = state.(int64)
	return nil
}

// TestRestoreStatesRejectsForeignKeys pins the tick-list-mismatch guard: a
// state map keyed past the registered tickers (captured by an engine that had
// registered more of them) must be rejected loudly — silently dropping it
// would desynchronize the resumed run from the checkpointed one.
func TestRestoreStatesRejectsForeignKeys(t *testing.T) {
	var log []int
	src := New()
	src.Register(&recorder{id: 0, log: &log}) // stateless: absent from the map
	snap := &snapRecorder{recorder: recorder{id: 1, log: &log}}
	src.Register(snap)
	src.Run(3)
	states, err := src.SnapshotStates(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := states[1]; !ok {
		t.Fatalf("snapshotter state missing from %v", states)
	}

	// A one-ticker engine has no ticker 1: restoring must fail, not skip.
	dst := New()
	dst.Register(&snapRecorder{recorder: recorder{id: 0, log: &log}})
	if err := dst.RestoreStates(nil, states); err == nil {
		t.Fatal("restore with a foreign state key succeeded; the state was silently dropped")
	}

	// The matching engine restores fine.
	ok := New()
	ok.Register(&recorder{id: 0, log: &log})
	dup := &snapRecorder{recorder: recorder{id: 1, log: &log}}
	ok.Register(dup)
	if err := ok.RestoreStates(nil, states); err != nil {
		t.Fatal(err)
	}
	if dup.restored != 3 {
		t.Fatalf("restored tick count %d, want 3", dup.restored)
	}
}
