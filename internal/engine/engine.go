// Package engine provides the cycle-level simulation kernel: a clock, a
// registry of ticked components, and latency-modelled queues ("pipes") that
// connect components.
//
// The simulator is synchronous: on every cycle the engine calls Tick(now) on
// each registered component in registration order. Components exchange work
// through Pipes, which make an item visible to the consumer only after a fixed
// latency, and through bounded queues whose back-pressure models bandwidth
// limits. Because the tick order is fixed and all state changes happen inside
// ticks, simulations are fully deterministic.
package engine

import "math"

// Ticker is a component driven by the simulation clock once per cycle.
type Ticker interface {
	Tick(now int64)
}

// NoEvent is the horizon a purely reactive component returns from NextEvent:
// it will never change state on its own, only in response to inputs delivered
// by other components' ticks.
const NoEvent = int64(math.MaxInt64)

// EventSource is the optional quiescence capability of a Ticker. NextEvent
// returns the earliest future cycle at which the component can possibly
// change state on its own (pipe head arrival, DRAM response completion, a
// warp becoming issuable, a scheduled epoch boundary), NoEvent if it is
// purely reactive, or any value <= now if it must be ticked at now.
//
// The contract is asymmetric: a horizon may be conservatively EARLY (ticking
// a quiescent component is a no-op, so an early wakeup costs only speed) but
// must never be LATE — skipping a cycle on which the component would have
// acted changes results, and fast-forward promises bit-identity. See
// docs/MODEL.md for the full quiescence contract.
type EventSource interface {
	NextEvent(now int64) int64
}

// Skipper is the optional span-accounting capability of a Ticker. When the
// engine fast-forwards from cycle `from` to cycle `to`, it calls
// SkipTo(from, to) on every registered Skipper so counters that accrue per
// cycle (idle attribution, occupancy integrals, periodic samples) cover the
// skipped half-open span [from, to) exactly as if each cycle had been ticked.
// SkipTo must reproduce per-cycle bookkeeping only; it must not change any
// state that feeds other components (the engine only skips when every
// component is quiescent, so such changes would be contract violations).
type Skipper interface {
	SkipTo(from, to int64)
}

// Engine owns the simulation clock and the ordered set of components.
type Engine struct {
	now     int64
	tickers []Ticker

	// sources/skippers mirror tickers: sources[i] is tickers[i] if it
	// implements EventSource (nil otherwise), likewise skippers. allSources
	// tracks whether every registered ticker is an EventSource — fast-forward
	// is only sound when the whole system can report quiescence, so a single
	// opaque ticker disables it.
	sources      []EventSource
	skippers     []Skipper
	snapshotters []Snapshotter
	allSources   bool

	fastForward bool

	// shardBatch enables reduced cycles under a shard plan (SetShardBatching):
	// cycles whose parallel phases are provably quiescent run coordinator-only.
	shardBatch bool

	// ckptEvery/ckptFn is the periodic checkpoint hook (SetCheckpointHook):
	// fn runs whenever the clock lands on a multiple of every at a
	// supervision boundary. Zero/nil when checkpointing is off.
	ckptEvery int64
	ckptFn    func(now int64)

	// ticked counts cycles advanced by Step (every component ticked);
	// skipped counts cycles covered by fast-forward jumps. Their sum is the
	// number of cycles simulated.
	ticked  int64
	skipped int64
	reduced int64

	// plan, when non-nil, is the sharded execution plan (SetShardPlan):
	// Run/RunContext then tick cycles phase by phase with worker goroutines,
	// bit-identically to the sequential path.
	plan *shardPlan
}

// New returns an Engine at cycle 0 with no components.
func New() *Engine {
	return &Engine{allSources: true}
}

// Register appends t to the tick order. Registration order defines intra-cycle
// evaluation order and must therefore be identical across runs for
// reproducibility; the simulator wires components in a fixed order.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
	src, _ := t.(EventSource)
	skp, _ := t.(Skipper)
	snp, _ := t.(Snapshotter)
	e.sources = append(e.sources, src)
	e.skippers = append(e.skippers, skp)
	e.snapshotters = append(e.snapshotters, snp)
	if src == nil {
		e.allSources = false
	}
}

// SetFastForward enables or disables next-event fast-forwarding. Even when
// enabled, the engine only skips if every registered ticker implements
// EventSource; results are bit-identical either way.
func (e *Engine) SetFastForward(on bool) {
	e.fastForward = on
}

// Now returns the current cycle.
func (e *Engine) Now() int64 {
	return e.now
}

// Ticked returns the number of cycles advanced by ticking every component.
func (e *Engine) Ticked() int64 {
	return e.ticked
}

// Skipped returns the number of cycles covered by fast-forward jumps.
func (e *Engine) Skipped() int64 {
	return e.skipped
}

// Step advances the simulation by one cycle, ticking every component.
func (e *Engine) Step() {
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
	e.ticked++
}

// nextHorizon returns the cycle fast-forward may jump to, capped at limit:
// the minimum of every source's NextEvent, or e.now if any source needs the
// current cycle ticked. Callers only skip when the result is > e.now.
func (e *Engine) nextHorizon(limit int64) int64 {
	h := limit
	for _, s := range e.sources {
		ev := s.NextEvent(e.now)
		if ev <= e.now {
			return e.now
		}
		if ev < h {
			h = ev
		}
	}
	return h
}

// skipTo jumps the clock from e.now to cycle to (> e.now) without ticking,
// giving every Skipper the chance to account for the span [e.now, to).
func (e *Engine) skipTo(to int64) {
	for _, s := range e.skippers {
		if s != nil {
			s.SkipTo(e.now, to)
		}
	}
	e.skipped += to - e.now
	e.now = to
}

// Run advances the simulation by n cycles. With fast-forward enabled and all
// components quiescence-capable, spans in which no component can act are
// jumped over instead of single-stepped; results are bit-identical because a
// tick during such a span would have been a no-op.
func (e *Engine) Run(n int64) {
	if stop := e.startShardWorkers(); stop != nil {
		defer stop()
	}
	end := e.now + n
	ff := e.fastForward && e.allSources
	for e.now < end {
		if ff {
			if h := e.nextHorizon(end); h > e.now {
				e.skipTo(h)
				continue
			}
		}
		e.step()
	}
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now int64)

// Tick implements Ticker.
func (f TickFunc) Tick(now int64) { f(now) }
