// Package engine provides the cycle-level simulation kernel: a clock, a
// registry of ticked components, and latency-modelled queues ("pipes") that
// connect components.
//
// The simulator is synchronous: on every cycle the engine calls Tick(now) on
// each registered component in registration order. Components exchange work
// through Pipes, which make an item visible to the consumer only after a fixed
// latency, and through bounded queues whose back-pressure models bandwidth
// limits. Because the tick order is fixed and all state changes happen inside
// ticks, simulations are fully deterministic.
package engine

// Ticker is a component driven by the simulation clock once per cycle.
type Ticker interface {
	Tick(now int64)
}

// Engine owns the simulation clock and the ordered set of components.
type Engine struct {
	now     int64
	tickers []Ticker
}

// New returns an Engine at cycle 0 with no components.
func New() *Engine {
	return &Engine{}
}

// Register appends t to the tick order. Registration order defines intra-cycle
// evaluation order and must therefore be identical across runs for
// reproducibility; the simulator wires components in a fixed order.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
}

// Now returns the current cycle.
func (e *Engine) Now() int64 {
	return e.now
}

// Step advances the simulation by one cycle, ticking every component.
func (e *Engine) Step() {
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
}

// Run advances the simulation by n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now int64)

// Tick implements Ticker.
func (f TickFunc) Tick(now int64) { f(now) }
