package engine

import "fmt"

// Snapshotter is the optional checkpoint capability of a Ticker, the third
// sibling of EventSource and Skipper: a component that can serialize its
// complete mutable state into a self-contained, encodable value and later
// restore it onto a freshly built instance.
//
// ctx is an orchestration context supplied by the simulator (it carries the
// request registry used to serialize cross-component request pointers);
// components that hold no requests may ignore it. SnapshotState must return
// a value encodable by encoding/gob whose concrete type the simulator
// registers; RestoreState receives a value of the same concrete type.
//
// Contract: restoring a state captured between two cycles onto a component
// built from the identical configuration must make every subsequent tick
// bit-identical to the uninterrupted run. Closures are not serializable, so
// in-flight work that carries callbacks is captured as continuation
// descriptors and rebound by the simulator's link pass (docs/MODEL.md §9).
type Snapshotter interface {
	SnapshotState(ctx any) (any, error)
	RestoreState(ctx any, state any) error
}

// SnapshotStates captures the state of every snapshot-capable ticker, keyed
// by registration index. Tickers without the capability (stateless adapters)
// are simply absent from the map.
func (e *Engine) SnapshotStates(ctx any) (map[int]any, error) {
	out := make(map[int]any, len(e.snapshotters))
	for i, s := range e.snapshotters {
		if s == nil {
			continue
		}
		st, err := s.SnapshotState(ctx)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot ticker %d: %w", i, err)
		}
		out[i] = st
	}
	return out, nil
}

// RestoreStates applies previously captured states onto the registered
// tickers, in registration order. Every keyed index must name a
// snapshot-capable ticker; the tick list must be built identically to the
// run that captured the states. A state keyed past the registered tickers is
// rejected loudly — it means the capturing run registered tickers this
// simulator did not (e.g. a fault plan), which would otherwise silently
// shift or drop component states.
func (e *Engine) RestoreStates(ctx any, states map[int]any) error {
	for i := range states {
		if i < 0 || i >= len(e.tickers) {
			return fmt.Errorf("engine: restore: checkpoint carries state for ticker %d, but only %d tickers are registered (the restoring simulator must register the same tick list as the checkpointing one)", i, len(e.tickers))
		}
	}
	for i := range e.tickers {
		st, ok := states[i]
		if !ok {
			continue
		}
		if i >= len(e.snapshotters) || e.snapshotters[i] == nil {
			return fmt.Errorf("engine: restore: ticker %d has state but no Snapshotter capability", i)
		}
		if err := e.snapshotters[i].RestoreState(ctx, st); err != nil {
			return fmt.Errorf("engine: restore ticker %d: %w", i, err)
		}
	}
	return nil
}

// ClockState is the engine's own checkpoint image: the clock and the
// tick/skip split behind Results.CyclesTicked/CyclesSkipped.
type ClockState struct {
	Now     int64
	Ticked  int64
	Skipped int64
}

// Clock captures the engine's clock state.
func (e *Engine) Clock() ClockState {
	return ClockState{Now: e.now, Ticked: e.ticked, Skipped: e.skipped}
}

// SetClock restores the engine's clock state.
func (e *Engine) SetClock(st ClockState) {
	e.now, e.ticked, e.skipped = st.Now, st.Ticked, st.Skipped
}

// SetCheckpointHook installs fn to be invoked at every cycle boundary that
// is a multiple of every, at the same supervision points as watchdog checks
// (after a step or a fast-forward landing). Fast-forward jumps are capped at
// the next such boundary, so checkpoints land on exact cycles even inside an
// otherwise quiescent span. every <= 0 (the default) removes the hook; the
// hot loop then carries no extra work beyond one nil check.
func (e *Engine) SetCheckpointHook(every int64, fn func(now int64)) {
	if every <= 0 || fn == nil {
		e.ckptEvery, e.ckptFn = 0, nil
		return
	}
	e.ckptEvery, e.ckptFn = every, fn
}

// WatchdogState is the watchdog's checkpoint image. Restoring it onto a
// fresh watchdog with the same probes makes supervision resume exactly where
// it left off — including a watchdog that had already tripped, which
// re-raises its DeadlockError at the restored cycle (crash checkpoints).
type WatchdogState struct {
	Last    uint64
	Primed  bool
	Stalled int
}

// State captures the watchdog's progress-tracking state.
func (w *Watchdog) State() WatchdogState {
	return WatchdogState{Last: w.last, Primed: w.primed, Stalled: w.stalled}
}

// SetState restores the watchdog's progress-tracking state.
func (w *Watchdog) SetState(st WatchdogState) {
	w.last, w.primed, w.stalled = st.Last, st.Primed, st.Stalled
}

// Tripped reports whether the watchdog has already declared the run wedged
// (only possible on a watchdog restored from a crash checkpoint).
func (w *Watchdog) Tripped() bool {
	return w.stalled >= w.StallChecks
}

// TripError rebuilds the DeadlockError for a tripped watchdog at cycle now.
// The diagnostic dump is regenerated from current component state, which for
// a restored crash checkpoint is exactly the state at the original abort.
func (w *Watchdog) TripError(now int64) *DeadlockError {
	return &DeadlockError{
		Cycle:       now,
		StallCycles: int64(w.stalled) * w.CheckEvery,
		Dump:        w.Dump(),
	}
}

// PipeItemRef is one in-flight pipe item in serialized form: its delivery
// cycle plus a caller-defined reference to the value (typically a request
// registry index).
type PipeItemRef struct {
	ReadyAt int64
	Ref     int32
}

// SnapshotRefs serializes the pipe's in-flight items oldest-first, mapping
// each value through ref.
func SnapshotRefs[T any](p *Pipe[T], ref func(T) int32) []PipeItemRef {
	out := make([]PipeItemRef, 0, len(p.items))
	for _, it := range p.items {
		out = append(out, PipeItemRef{ReadyAt: it.readyAt, Ref: ref(it.value)})
	}
	return out
}

// RestoreRefs rebuilds the pipe's in-flight items from a SnapshotRefs image,
// resolving each reference through deref. Existing items are discarded.
func RestoreRefs[T any](p *Pipe[T], items []PipeItemRef, deref func(int32) T) {
	p.items = p.items[:0]
	for _, it := range items {
		p.items = append(p.items, pipeItem[T]{readyAt: it.ReadyAt, value: deref(it.Ref)})
	}
}
