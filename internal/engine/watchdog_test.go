package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// stallingTicker makes progress until a cutoff cycle, then wedges.
type stallingTicker struct {
	stopAt int64
	work   uint64
}

func (t *stallingTicker) Tick(now int64) {
	if t.stopAt < 0 || now < t.stopAt {
		t.work++
	}
}

// sinkEvent records one Emit call for assertion.
type sinkEvent struct {
	now             int64
	name, component string
	args            map[string]string
}

// fakeSink is a test EventSink.
type fakeSink struct{ events []sinkEvent }

func (s *fakeSink) Emit(now int64, name, component string, args map[string]string) {
	s.events = append(s.events, sinkEvent{now: now, name: name, component: component, args: args})
}

func TestWatchdogDetectsStall(t *testing.T) {
	e := New()
	tk := &stallingTicker{stopAt: 500}
	e.Register(tk)
	wd := NewWatchdog(100, 3)
	wd.Observe(func() uint64 { return tk.work })
	wd.Diagnose("ticker", func() string { return "queue=7 inflight=0" })
	sink := &fakeSink{}
	wd.SetEventSink(sink)

	err := e.RunContext(context.Background(), 100_000, wd)
	if err == nil {
		t.Fatal("wedged run completed without abort")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %T, want *DeadlockError: %v", err, err)
	}
	// Progress stops at cycle 500; the stall is confirmed after three more
	// empty check windows.
	if de.Cycle < 500 || de.Cycle > 1200 {
		t.Fatalf("abort at cycle %d, want shortly after the stall at 500", de.Cycle)
	}
	if de.StallCycles != 300 {
		t.Fatalf("stall window %d, want 300", de.StallCycles)
	}
	if !strings.Contains(err.Error(), "ticker: queue=7 inflight=0") {
		t.Fatalf("diagnostic dump missing component state: %v", err)
	}
	if e.Now() != de.Cycle {
		t.Fatalf("engine stopped at %d but error reports %d", e.Now(), de.Cycle)
	}

	// The abort must also surface as one structured instant event whose
	// fields mirror the dump, so exported traces show the abort in place.
	if len(sink.events) != 1 {
		t.Fatalf("sink saw %d events, want exactly 1 abort event", len(sink.events))
	}
	ev := sink.events[0]
	if ev.name != "watchdog.abort" || ev.component != "engine" {
		t.Fatalf("event = %s/%s, want watchdog.abort/engine", ev.name, ev.component)
	}
	if ev.now != de.Cycle {
		t.Fatalf("event at cycle %d, error at %d", ev.now, de.Cycle)
	}
	if got := ev.args["cycle"]; got != fmt.Sprintf("%d", de.Cycle) {
		t.Fatalf("args[cycle] = %q, want %d", got, de.Cycle)
	}
	if got := ev.args["stall_cycles"]; got != "300" {
		t.Fatalf("args[stall_cycles] = %q, want 300", got)
	}
	if got := ev.args["ticker"]; got != "queue=7 inflight=0" {
		t.Fatalf("args[ticker] = %q, want the component snapshot", got)
	}
}

func TestWatchdogToleratesSlowProgress(t *testing.T) {
	e := New()
	var work uint64
	// One unit of progress every 250 cycles: slower than the check interval,
	// but never silent for StallChecks consecutive checks.
	e.Register(TickFunc(func(now int64) {
		if now%250 == 0 {
			work++
		}
	}))
	wd := NewWatchdog(100, 3)
	wd.Observe(func() uint64 { return work })
	if err := e.RunContext(context.Background(), 10_000, wd); err != nil {
		t.Fatalf("slow but live run aborted: %v", err)
	}
	if e.Now() != 10_000 {
		t.Fatalf("ran %d cycles, want 10000", e.Now())
	}
}

func TestRunContextCancellation(t *testing.T) {
	e := New()
	e.Register(TickFunc(func(int64) {}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunContext(ctx, 1_000_000, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if e.Now() != 0 {
		t.Fatalf("pre-canceled run advanced to cycle %d", e.Now())
	}
}

func TestRunContextDeadline(t *testing.T) {
	e := New()
	e.Register(TickFunc(func(int64) { time.Sleep(10 * time.Microsecond) }))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := e.RunContext(ctx, 1<<40, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
	if e.Now() == 0 {
		t.Fatal("deadline fired before any cycle ran")
	}
}

func TestRunContextCompletesWithoutSupervision(t *testing.T) {
	e := New()
	e.Register(TickFunc(func(int64) {}))
	if err := e.RunContext(nil, 5000, nil); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5000 {
		t.Fatalf("ran %d cycles, want 5000", e.Now())
	}
}

func TestPipeStallHook(t *testing.T) {
	p := NewPipe[int](1, 0)
	stalled := true
	p.SetStallHook(func(int64) bool { return stalled })
	if !p.Push(0, 42) {
		t.Fatal("push refused")
	}
	if _, ok := p.Pop(10); ok {
		t.Fatal("stalled pipe delivered an item")
	}
	if _, ok := p.Peek(10); ok {
		t.Fatal("stalled pipe peeked an item")
	}
	stalled = false
	if v, ok := p.Pop(10); !ok || v != 42 {
		t.Fatalf("unstalled pipe delivered (%v, %v), want (42, true)", v, ok)
	}
}
