package engine

import (
	"context"
	"fmt"
	"strings"
)

// ProgressFn reports a monotonically non-decreasing count of useful work
// (instructions retired, walks completed, DRAM requests serviced, ...). The
// watchdog sums every registered probe; a run is making progress as long as
// the sum keeps moving.
type ProgressFn func() uint64

// DiagFn renders a one-line snapshot of one component's state (queue
// occupancies, in-flight work) for the abort dump.
type DiagFn func() string

// EventSink receives instant events from the engine's supervision machinery;
// telemetry.Collector implements it. The watchdog emits a structured
// "watchdog.abort" event (one arg per diagnosed component, plus cycle and
// stall window) alongside its DeadlockError, so aborts are visible in
// exported traces, not just in the error string.
type EventSink interface {
	Emit(now int64, name, component string, args map[string]string)
}

// Watchdog detects livelock and deadlock in a running simulation: if no
// registered progress probe advances for StallChecks consecutive checks
// (CheckEvery cycles apart), the run is aborted with a DeadlockError carrying
// a structured per-component diagnostic dump.
//
// A Watchdog supervises a single run; build a fresh one per Engine run.
type Watchdog struct {
	// CheckEvery is the progress-check interval in cycles (must be > 0).
	CheckEvery int64
	// StallChecks is the number of consecutive no-progress checks tolerated
	// before the run is declared wedged.
	StallChecks int

	progress []ProgressFn
	diags    []watchdogDiag
	sink     EventSink

	last    uint64
	primed  bool
	stalled int
}

type watchdogDiag struct {
	name string
	fn   DiagFn
}

// NewWatchdog returns a watchdog that aborts after stallChecks consecutive
// checks (checkEvery cycles apart) without progress.
func NewWatchdog(checkEvery int64, stallChecks int) *Watchdog {
	if checkEvery <= 0 {
		panic("engine: watchdog check interval must be positive")
	}
	if stallChecks < 1 {
		stallChecks = 1
	}
	return &Watchdog{CheckEvery: checkEvery, StallChecks: stallChecks}
}

// Observe registers a progress probe.
func (w *Watchdog) Observe(fn ProgressFn) {
	w.progress = append(w.progress, fn)
}

// Diagnose registers a named component snapshot for the abort dump.
func (w *Watchdog) Diagnose(name string, fn DiagFn) {
	w.diags = append(w.diags, watchdogDiag{name: name, fn: fn})
}

// SetEventSink wires an instant-event sink (nil disables, the default); on
// abort the watchdog emits its diagnostic dump through it as structured
// fields.
func (w *Watchdog) SetEventSink(s EventSink) {
	w.sink = s
}

// check is called by the engine every CheckEvery cycles. It returns a
// *DeadlockError once StallChecks consecutive checks saw no progress.
func (w *Watchdog) check(now int64) error {
	var cur uint64
	for _, fn := range w.progress {
		cur += fn()
	}
	if !w.primed || cur != w.last {
		w.primed = true
		w.last = cur
		w.stalled = 0
		return nil
	}
	w.stalled++
	if w.stalled < w.StallChecks {
		return nil
	}
	stallCycles := int64(w.stalled) * w.CheckEvery
	if w.sink != nil {
		w.sink.Emit(now, "watchdog.abort", "engine", w.DumpArgs(now, stallCycles))
	}
	return &DeadlockError{
		Cycle:       now,
		StallCycles: stallCycles,
		Dump:        w.Dump(),
	}
}

// Dump renders the registered component snapshots, one line per component.
func (w *Watchdog) Dump() []string {
	out := make([]string, 0, len(w.diags))
	for _, d := range w.diags {
		out = append(out, fmt.Sprintf("%s: %s", d.name, d.fn()))
	}
	return out
}

// DumpArgs renders the abort diagnostics as structured fields: "cycle" and
// "stall_cycles" plus one entry per diagnosed component. This is the
// machine-readable twin of Dump, emitted as a telemetry instant event.
func (w *Watchdog) DumpArgs(now, stallCycles int64) map[string]string {
	args := make(map[string]string, len(w.diags)+2)
	args["cycle"] = fmt.Sprintf("%d", now)
	args["stall_cycles"] = fmt.Sprintf("%d", stallCycles)
	for _, d := range w.diags {
		args[d.name] = d.fn()
	}
	return args
}

// DeadlockError reports a run aborted by the watchdog: no component made
// progress for StallCycles cycles. Dump holds the per-component state
// snapshot taken at the abort point.
type DeadlockError struct {
	Cycle       int64
	StallCycles int64
	Dump        []string
}

// Error renders the diagnostic, one dump line per component.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: no progress for %d cycles (deadlock/livelock suspected), aborted at cycle %d",
		e.StallCycles, e.Cycle)
	for _, line := range e.Dump {
		b.WriteString("\n  ")
		b.WriteString(line)
	}
	return b.String()
}

// ctxPollEvery is how often (in cycles) RunContext polls the context. Coarse
// polling keeps the per-cycle overhead negligible while still bounding the
// cancellation latency to microseconds of wall-clock time.
const ctxPollEvery = 1024

// RunContext advances the simulation by up to n cycles under supervision:
// the context is polled periodically for cancellation or deadline expiry,
// and wd (when non-nil) aborts the run if it stops making progress. On early
// abort the engine keeps the cycles already simulated (Now reports how far
// the run got) so callers can still collect partial results.
func (e *Engine) RunContext(ctx context.Context, n int64, wd *Watchdog) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("engine: run canceled at cycle %d: %w", e.now, err)
	}
	// A watchdog restored from a crash checkpoint is already tripped: the
	// original run aborted at exactly this cycle, so re-raise the same
	// DeadlockError (the dump regenerates from the restored component state)
	// before simulating anything.
	if wd != nil && wd.Tripped() {
		return wd.TripError(e.now)
	}
	if stop := e.startShardWorkers(); stop != nil {
		defer stop()
	}
	end := e.now + n
	ff := e.fastForward && e.allSources
	for e.now < end {
		if ff {
			// Cap each jump at the next watchdog checkpoint so supervision
			// observes the same cycle numbers as a single-stepped run: a
			// wedged simulation whose components all report NoEvent still
			// hits every checkpoint with frozen progress counters and aborts
			// at the identical cycle, while a healthy jump lands exactly on
			// the checkpoints it crosses (a skipped span has no progress by
			// construction, so checks there see what single-stepping would).
			// Checkpoint boundaries cap the jump the same way, so periodic
			// checkpoints land on their exact cycles even inside a quiescent
			// span.
			limit := end
			if wd != nil {
				if next := (e.now/wd.CheckEvery + 1) * wd.CheckEvery; next < limit {
					limit = next
				}
			}
			if e.ckptEvery > 0 {
				if next := (e.now/e.ckptEvery + 1) * e.ckptEvery; next < limit {
					limit = next
				}
			}
			if h := e.nextHorizon(limit); h > e.now {
				e.skipTo(h)
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("engine: run canceled at cycle %d: %w", e.now, err)
				}
				if wd != nil && e.now%wd.CheckEvery == 0 {
					if err := wd.check(e.now); err != nil {
						return err
					}
				}
				// Checkpoint after the boundary's watchdog check so the
				// captured supervision state includes it; a restored run
				// resumes with the next boundary, exactly like the original.
				if e.ckptFn != nil && e.now%e.ckptEvery == 0 {
					e.ckptFn(e.now)
				}
				continue
			}
		}
		e.step()
		if e.now%ctxPollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: run canceled at cycle %d: %w", e.now, err)
			}
		}
		if wd != nil && e.now%wd.CheckEvery == 0 {
			if err := wd.check(e.now); err != nil {
				return err
			}
		}
		if e.ckptFn != nil && e.now%e.ckptEvery == 0 {
			e.ckptFn(e.now)
		}
	}
	return nil
}
