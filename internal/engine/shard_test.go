package engine

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// shardedPair builds two engines over the same synthetic topology — n
// independent counting tickers — and installs a plan on the second: tickers
// split into per-ticker groups across two parallel phases with the remainder
// serial in between.
func shardedPair(t *testing.T, n, workers int) (seq, shr *Engine, seqTicks, shrTicks []*int64) {
	t.Helper()
	build := func() (*Engine, []*int64) {
		e := New()
		ticks := make([]*int64, n)
		for i := 0; i < n; i++ {
			c := new(int64)
			ticks[i] = c
			e.Register(TickFunc(func(now int64) { *c++ }))
		}
		return e, ticks
	}
	seq, seqTicks = build()
	shr, shrTicks = build()
	third := n / 3
	plan := []Phase{
		{Groups: groupsOf(0, third)},
		{Serial: indices(third, 2*third)},
		{Groups: groupsOf(2*third, n)},
	}
	if err := shr.SetShardPlan(workers, plan); err != nil {
		t.Fatal(err)
	}
	return seq, shr, seqTicks, shrTicks
}

func groupsOf(lo, hi int) [][]int {
	var g [][]int
	for i := lo; i < hi; i++ {
		g = append(g, []int{i})
	}
	return g
}

func indices(lo, hi int) []int {
	var out []int
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// TestShardPlanValidation pins every rejection path of SetShardPlan.
func TestShardPlanValidation(t *testing.T) {
	build := func() *Engine {
		e := New()
		for i := 0; i < 4; i++ {
			e.Register(TickFunc(func(int64) {}))
		}
		return e
	}
	for _, tc := range []struct {
		name    string
		workers int
		phases  []Phase
		wantErr string
	}{
		{"zero workers", 0,
			[]Phase{{Serial: []int{0, 1, 2, 3}}}, ">= 1 worker"},
		{"both groups and serial", 2,
			[]Phase{{Groups: [][]int{{0, 1}}, Serial: []int{2, 3}}}, "both Groups and Serial"},
		{"out of range", 2,
			[]Phase{{Serial: []int{0, 1, 2, 4}}}, "names ticker 4"},
		{"double tick", 2,
			[]Phase{{Serial: []int{0, 1}}, {Serial: []int{1, 2, 3}}}, "ticks ticker 1 twice"},
		{"incomplete coverage", 2,
			[]Phase{{Serial: []int{0, 1, 2}}}, "covers 3 of 4"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := build()
			err := e.SetShardPlan(tc.workers, tc.phases)
			if err == nil {
				t.Fatal("invalid plan accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if e.Sharded() {
				t.Fatal("rejected plan left the engine sharded")
			}
		})
	}

	// A valid plan installs; an empty one removes it again.
	e := build()
	if err := e.SetShardPlan(2, []Phase{{Serial: []int{0, 1, 2, 3}}}); err != nil {
		t.Fatal(err)
	}
	if !e.Sharded() {
		t.Fatal("valid plan did not install")
	}
	if err := e.SetShardPlan(2, nil); err != nil {
		t.Fatal(err)
	}
	if e.Sharded() {
		t.Fatal("empty plan did not remove the previous one")
	}
}

// TestShardedRunMatchesSequential runs the same synthetic topology sharded
// and sequentially: identical clocks, tick counters and per-ticker counts.
func TestShardedRunMatchesSequential(t *testing.T) {
	seq, shr, seqTicks, shrTicks := shardedPair(t, 9, 3)
	seq.Run(137)
	shr.Run(137)
	if seq.Now() != shr.Now() || seq.Ticked() != shr.Ticked() {
		t.Fatalf("clock diverged: seq now=%d ticked=%d, sharded now=%d ticked=%d",
			seq.Now(), seq.Ticked(), shr.Now(), shr.Ticked())
	}
	for i := range seqTicks {
		if *seqTicks[i] != *shrTicks[i] {
			t.Fatalf("ticker %d ticked %d times sharded, %d sequentially",
				i, *shrTicks[i], *seqTicks[i])
		}
	}
}

// TestShardedWorkerLifecycle checks workers exist only inside Run: a second
// Run reuses the plan (channels are recreated after the first stop), and a
// bare Step between runs stays on the sequential path.
func TestShardedWorkerLifecycle(t *testing.T) {
	_, shr, _, ticks := shardedPair(t, 6, 2)
	shr.Run(10)
	shr.Step() // no workers live: must not deadlock or panic
	shr.Run(10)
	if shr.Now() != 21 {
		t.Fatalf("Now=%d after 10+1+10 cycles, want 21", shr.Now())
	}
	for i, c := range ticks {
		if *c != 21 {
			t.Fatalf("ticker %d ticked %d times, want 21", i, *c)
		}
	}
}

// TestShardedPhaseProtocol pins the coordinator-side ordering contract:
// within a cycle, phase k's Enter precedes every tick of phase k, which
// precedes its Drain, which precedes phase k+1's Enter. The parallel ticks
// themselves bump an atomic counter the hooks snapshot.
func TestShardedPhaseProtocol(t *testing.T) {
	e := New()
	var ticks atomic.Int64
	for i := 0; i < 4; i++ {
		e.Register(TickFunc(func(int64) { ticks.Add(1) }))
	}
	var trace []string
	snap := func(tag string) func(int64) {
		return func(int64) { trace = append(trace, tag, "ticks", string(rune('0'+ticks.Load()))) }
	}
	plan := []Phase{
		{Groups: [][]int{{0}, {1}}, Enter: snap("enter0"), Drain: snap("drain0")},
		{Serial: []int{2, 3}, Enter: snap("enter1"), Drain: snap("drain1")},
	}
	if err := e.SetShardPlan(2, plan); err != nil {
		t.Fatal(err)
	}
	e.Run(1)
	got := strings.Join(trace, " ")
	want := "enter0 ticks 0 drain0 ticks 2 enter1 ticks 2 drain1 ticks 4"
	if got != want {
		t.Fatalf("phase protocol trace:\n got  %s\n want %s", got, want)
	}
}

// TestShardedSetPlanDuringRunRejected checks the guard against swapping the
// plan mid-run (workers hold references into the old one).
func TestShardedSetPlanDuringRunRejected(t *testing.T) {
	e := New()
	var inRun error
	var set bool
	e.Register(TickFunc(func(int64) {
		if !set {
			set = true
			inRun = e.SetShardPlan(1, []Phase{{Serial: []int{0}}})
		}
	}))
	if err := e.SetShardPlan(1, []Phase{{Serial: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if inRun == nil {
		t.Fatal("SetShardPlan during a run accepted")
	}
	if e.Now() != 3 {
		t.Fatalf("run did not complete: Now=%d", e.Now())
	}
}

// withGOMAXPROCS runs the rest of the test at a forced GOMAXPROCS so both
// execution modes are exercised regardless of the host: >= 2 forces the
// barrier/worker path, 1 forces inline mode.
func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestShardedBarrierPathMatchesSequential forces the worker/barrier path
// (even on a single-CPU host) and checks bit-identity plus plan reuse across
// runs — the fused barrier must survive a stop/restart cycle.
func TestShardedBarrierPathMatchesSequential(t *testing.T) {
	withGOMAXPROCS(t, 4)
	seq, shr, seqTicks, shrTicks := shardedPair(t, 9, 3)
	seq.Run(137)
	shr.Run(137)
	if shr.plan.inline {
		t.Fatal("expected the barrier path at GOMAXPROCS=4, got inline mode")
	}
	shr.Step()
	seq.Step()
	shr.Run(63)
	seq.Run(63)
	if seq.Now() != shr.Now() || seq.Ticked() != shr.Ticked() {
		t.Fatalf("clock diverged: seq now=%d ticked=%d, sharded now=%d ticked=%d",
			seq.Now(), seq.Ticked(), shr.Now(), shr.Ticked())
	}
	for i := range seqTicks {
		if *seqTicks[i] != *shrTicks[i] {
			t.Fatalf("ticker %d ticked %d times sharded, %d sequentially",
				i, *shrTicks[i], *seqTicks[i])
		}
	}
}

// TestShardedInlineSingleCPU pins the single-CPU escape: at GOMAXPROCS=1 a
// run under a plan starts no workers at all and executes inline,
// bit-identically.
func TestShardedInlineSingleCPU(t *testing.T) {
	withGOMAXPROCS(t, 1)
	seq, shr, seqTicks, shrTicks := shardedPair(t, 9, 3)
	before := runtime.NumGoroutine()
	seq.Run(137)
	shr.Run(137)
	if !shr.plan.inline {
		t.Fatal("expected inline mode at GOMAXPROCS=1")
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("inline run grew goroutine count from %d to %d", before, after)
	}
	for i := range seqTicks {
		if *seqTicks[i] != *shrTicks[i] {
			t.Fatalf("ticker %d ticked %d times inline-sharded, %d sequentially",
				i, *shrTicks[i], *seqTicks[i])
		}
	}
}

// pulseTicker fires every period cycles and accounts every cycle either by
// Tick or by SkipTo — quiescent between pulses, so reduced cycles and
// fast-forward may both skip it, and any accounting discrepancy is a
// bit-identity violation.
type pulseTicker struct {
	period    int64
	fires     int64
	accounted int64
}

func (p *pulseTicker) Tick(now int64) {
	p.accounted++
	if now%p.period == 0 {
		p.fires++
	}
}

func (p *pulseTicker) NextEvent(now int64) int64 {
	if now%p.period == 0 {
		return now
	}
	return now + (p.period - now%p.period)
}

func (p *pulseTicker) SkipTo(from, to int64) { p.accounted += to - from }

// TestShardedReducedCycles pins quiescent-span cycle batching: pulse tickers
// with coprime periods in a parallel phase, a plain (non-EventSource, so
// fast-forward stays off) counter in a serial phase. Cycles where no pulse
// fires must run coordinator-only — parallel Enter/Drain skipped, Skippers
// fed the single-cycle span — with results identical to batching off and to
// the sequential engine.
func TestShardedReducedCycles(t *testing.T) {
	for _, procs := range []int{1, 2} {
		for _, batch := range []bool{false, true} {
			t.Run(fmt.Sprintf("procs=%d batch=%v", procs, batch), func(t *testing.T) {
				withGOMAXPROCS(t, procs)
				const cycles = 300
				build := func() (*Engine, []*pulseTicker, *int64) {
					e := New()
					pulses := []*pulseTicker{{period: 3}, {period: 5}, {period: 7}}
					for _, p := range pulses {
						e.Register(p)
					}
					serial := new(int64)
					e.Register(TickFunc(func(int64) { *serial++ }))
					return e, pulses, serial
				}
				seq, seqPulses, seqSerial := build()
				seq.Run(cycles)

				shr, shrPulses, shrSerial := build()
				var enters, drains int64
				plan := []Phase{
					{Groups: [][]int{{0}, {1}, {2}},
						Enter: func(int64) { enters++ },
						Drain: func(int64) { drains++ }},
					{Serial: []int{3}},
				}
				if err := shr.SetShardPlan(2, plan); err != nil {
					t.Fatal(err)
				}
				shr.SetShardBatching(batch)
				shr.Run(cycles)

				if *seqSerial != *shrSerial {
					t.Fatalf("serial ticker: %d sharded, %d sequential", *shrSerial, *seqSerial)
				}
				for i := range seqPulses {
					if seqPulses[i].fires != shrPulses[i].fires ||
						seqPulses[i].accounted != shrPulses[i].accounted {
						t.Fatalf("pulse %d: fires=%d accounted=%d sharded, fires=%d accounted=%d sequential",
							i, shrPulses[i].fires, shrPulses[i].accounted,
							seqPulses[i].fires, seqPulses[i].accounted)
					}
				}
				reduced := shr.ReducedCycles()
				if !batch && reduced != 0 {
					t.Fatalf("batching off but ReducedCycles=%d", reduced)
				}
				if batch {
					// Cycles not divisible by 3, 5 or 7: 300 * (2/3)(4/5)(6/7) noisy
					// by boundary effects — just require a substantial count.
					if reduced < 100 {
						t.Fatalf("batching on but only %d reduced cycles", reduced)
					}
					if enters != shr.Ticked()-reduced || drains != enters {
						t.Fatalf("parallel hooks ran on reduced cycles: enters=%d drains=%d ticked=%d reduced=%d",
							enters, drains, shr.Ticked(), reduced)
					}
				}
			})
		}
	}
}
