package engine

import (
	"fmt"
	"sync"
)

// Sharded execution: the engine can split one cycle into an ordered list of
// phases, ticking the groups of a parallel phase on worker goroutines and
// everything else on the coordinating goroutine, with a barrier between
// phases. Determinism is preserved because the phase order is fixed, each
// group's tickers run in registration order on a single worker, and all
// cross-shard communication is deferred into per-shard exchange buffers that
// the phase's Drain hook replays in fixed order on the coordinator
// (docs/MODEL.md §10). Fast-forward, the watchdog, and checkpoints all
// operate between cycles on the coordinator, so they compose unchanged.

// Phase is one segment of a sharded cycle. A phase ticks either its Groups
// (concurrently, one group per worker slot, each group's tickers in list
// order) or its Serial tickers (on the coordinator, in list order) — set one
// of the two. Enter runs on the coordinator before any tick of the phase;
// Drain runs on the coordinator after every tick of the phase has completed
// (i.e. after the barrier, for parallel phases). The simulator uses
// Enter/Drain to arm and replay the exchange buffers.
type Phase struct {
	Groups [][]int
	Serial []int
	Enter  func(now int64)
	Drain  func(now int64)
}

// shardStart is the message arming one worker for one phase of one cycle.
type shardStart struct {
	phase int
	now   int64
}

type shardWorker struct {
	start chan shardStart
	// lists[phase] is the flat, ordered ticker list this worker runs in that
	// phase (nil when the worker has no work there).
	lists [][]Ticker
}

// shardPlan is the validated, precomputed execution plan.
type shardPlan struct {
	phases []Phase
	// workers hold the per-phase ticker lists; populated by SetShardPlan,
	// goroutines exist only while a Run is in progress.
	workers []*shardWorker
	// active[phase] counts the workers with work in that phase (the number of
	// done signals the barrier waits for).
	active []int

	done    chan struct{}
	running bool
	wg      sync.WaitGroup
}

// SetShardPlan installs a sharded execution plan: phases are executed in
// order every cycle, with at most workers groups ticking concurrently.
// Every registered ticker must appear exactly once across all phases.
// Worker goroutines are started by Run/RunContext and stopped when the run
// returns; the bare Step remains sequential. Passing no phases removes the
// plan. Must not be called while a run is in progress.
func (e *Engine) SetShardPlan(workers int, phases []Phase) error {
	if e.plan != nil && e.plan.running {
		return fmt.Errorf("engine: SetShardPlan during a run")
	}
	if len(phases) == 0 {
		e.plan = nil
		return nil
	}
	if workers < 1 {
		return fmt.Errorf("engine: shard plan needs >= 1 worker, got %d", workers)
	}
	seen := make([]bool, len(e.tickers))
	covered := 0
	mark := func(idx int) error {
		if idx < 0 || idx >= len(e.tickers) {
			return fmt.Errorf("engine: shard plan names ticker %d of %d", idx, len(e.tickers))
		}
		if seen[idx] {
			return fmt.Errorf("engine: shard plan ticks ticker %d twice", idx)
		}
		seen[idx] = true
		covered++
		return nil
	}
	for pi, ph := range phases {
		if len(ph.Groups) > 0 && len(ph.Serial) > 0 {
			return fmt.Errorf("engine: phase %d has both Groups and Serial", pi)
		}
		for _, g := range ph.Groups {
			for _, idx := range g {
				if err := mark(idx); err != nil {
					return err
				}
			}
		}
		for _, idx := range ph.Serial {
			if err := mark(idx); err != nil {
				return err
			}
		}
	}
	if covered != len(e.tickers) {
		return fmt.Errorf("engine: shard plan covers %d of %d tickers", covered, len(e.tickers))
	}

	plan := &shardPlan{
		phases: phases,
		active: make([]int, len(phases)),
		done:   make(chan struct{}, workers),
	}
	for w := 0; w < workers; w++ {
		plan.workers = append(plan.workers, &shardWorker{
			start: make(chan shardStart),
			lists: make([][]Ticker, len(phases)),
		})
	}
	// Round-robin groups over workers, resolving indices to tickers once.
	for pi, ph := range phases {
		for gi, g := range ph.Groups {
			w := plan.workers[gi%workers]
			for _, idx := range g {
				w.lists[pi] = append(w.lists[pi], e.tickers[idx])
			}
		}
		for _, w := range plan.workers {
			if len(w.lists[pi]) > 0 {
				plan.active[pi]++
			}
		}
	}
	e.plan = plan
	return nil
}

// Sharded reports whether a shard plan is installed.
func (e *Engine) Sharded() bool { return e.plan != nil }

// Len returns the number of registered tickers (shard plans are built over
// ticker registration indices).
func (e *Engine) Len() int { return len(e.tickers) }

// startShardWorkers launches the plan's worker goroutines and returns the
// function that stops them, or nil when no plan is installed. Run/RunContext
// bracket the run with it so no goroutines outlive a run.
func (e *Engine) startShardWorkers() func() {
	p := e.plan
	if p == nil {
		return nil
	}
	p.running = true
	for _, w := range p.workers {
		w := w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for st := range w.start {
				for _, t := range w.lists[st.phase] {
					t.Tick(st.now)
				}
				p.done <- struct{}{}
			}
		}()
	}
	return func() {
		for _, w := range p.workers {
			close(w.start)
		}
		p.wg.Wait()
		p.running = false
		// Fresh channels for the next run (closed ones cannot be reused).
		for _, w := range p.workers {
			w.start = make(chan shardStart)
		}
	}
}

// shardStep advances one cycle under the installed plan. The channel
// send/receive pairs around each parallel phase establish the
// happens-before edges that make the coordinator's Enter/Drain writes (the
// exchange-buffer arming) visible to workers and vice versa.
func (e *Engine) shardStep() {
	p := e.plan
	now := e.now
	for pi := range p.phases {
		ph := &p.phases[pi]
		if ph.Enter != nil {
			ph.Enter(now)
		}
		if n := p.active[pi]; n > 0 {
			for _, w := range p.workers {
				if len(w.lists[pi]) > 0 {
					w.start <- shardStart{phase: pi, now: now}
				}
			}
			for i := 0; i < n; i++ {
				<-p.done
			}
		}
		for _, idx := range ph.Serial {
			e.tickers[idx].Tick(now)
		}
		if ph.Drain != nil {
			ph.Drain(now)
		}
	}
	e.now++
	e.ticked++
}

// step advances one cycle, sharded when workers are live, sequentially
// otherwise. Both paths are bit-identical by the shard contract.
func (e *Engine) step() {
	if e.plan != nil && e.plan.running {
		e.shardStep()
	} else {
		e.Step()
	}
}
