package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sharded execution: the engine can split one cycle into an ordered list of
// phases, ticking the groups of a parallel phase on worker goroutines and
// everything else on the coordinating goroutine, with a barrier between
// phases. Determinism is preserved because the phase order is fixed, each
// group's tickers run in registration order on a single worker, and all
// cross-shard communication is deferred into per-shard exchange buffers that
// the phase's Drain hook replays in fixed order on the coordinator
// (docs/MODEL.md §10). Fast-forward, the watchdog, and checkpoints all
// operate between cycles on the coordinator, so they compose unchanged.
//
// The per-cycle synchronization is a fused sense-reversing barrier
// (shardBarrier): one wakeup drives a worker through all of its parallel
// phases for the cycle, with every interior phase transition a pair of
// atomic barrier rounds. Waiters spin briefly and then park on a buffered
// per-slot channel, so a phase transition costs tens of nanoseconds when the
// workers are hot and no CPU when they are idle. Channels are only touched
// to wake a parked worker — never on the spin fast path.
//
// Two throughput escapes keep sharding from taxing runs it cannot help:
//
//   - Inline mode: when the process has a single CPU (GOMAXPROCS == 1), or
//     the plan has no parallel phases, Run executes the plan's groups on the
//     coordinator itself, in group order, with no goroutines at all. By the
//     shard contract this is bit-identical, and it reduces the coordination
//     cost to the exchange-buffer arm/drain.
//
//   - Reduced cycles (SetShardBatching): on a cycle where every group ticker
//     reports a quiescence horizon beyond now, the parallel phases are
//     provably no-ops, so the coordinator runs the cycle alone — Skippers
//     among the group tickers get SkipTo(now, now+1) for their per-cycle
//     bookkeeping, serial phases tick normally, and the parallel phases'
//     Enter/Drain hooks are skipped (their exchange buffers stay empty).
//     Workers stay parked. This composes with fast-forward: fast-forward
//     skips spans where the WHOLE system is quiescent, reduced cycles cover
//     the spans where only the parallel fraction is.

// Phase is one segment of a sharded cycle. A phase ticks either its Groups
// (concurrently, one group per worker slot, each group's tickers in list
// order) or its Serial tickers (on the coordinator, in list order) — set one
// of the two. Enter runs on the coordinator before any tick of the phase;
// Drain runs on the coordinator after every tick of the phase has completed
// (i.e. after the barrier, for parallel phases). The simulator uses
// Enter/Drain to arm and replay the exchange buffers.
//
// On a reduced cycle (see SetShardBatching) a parallel phase is skipped
// wholesale — no Enter, no ticks, no Drain — so the hooks of a parallel
// phase must be no-ops when none of its group tickers tick; serial phases
// always run in full.
type Phase struct {
	Groups [][]int
	Serial []int
	Enter  func(now int64)
	Drain  func(now int64)
}

type shardWorker struct {
	// lists[phase] is the flat, ordered ticker list this worker runs in that
	// phase (empty when the worker has no work there).
	lists [][]Ticker
}

// Barrier slot states: a waiter publishes slotParked before blocking on its
// wake channel so releasers know who needs a wakeup.
const (
	slotAwake  uint32 = 0
	slotParked uint32 = 1
)

// barrierSpin is how many sense polls a waiter performs before parking on
// its wake channel. Large enough to ride out another worker's tick list and
// the coordinator's serial segments when everyone is hot; small enough that
// an oversubscribed or idle run parks quickly instead of burning a CPU.
const barrierSpin = 1 << 12

const cacheLine = 64

// barrierSlot is one participant's parking spot, padded so the hot status
// word of adjacent slots never shares a cache line.
type barrierSlot struct {
	status atomic.Uint32
	wake   chan struct{} // buffered(1): wake tokens are lossy-idempotent
	_      [cacheLine - 12]byte
}

// shardBarrier is a sense-reversing centralized barrier over parties
// participants (slot 0 is the coordinator). One round: every participant
// arrives; the last arrival resets the arrival count, flips the global
// sense, and wakes every parked waiter. Waiters spin on the sense word and
// park on their slot channel when the round takes long (a coordinator serial
// segment, an idle span). arrived and sense live on their own cache lines so
// arrivals and sense polls do not false-share.
type shardBarrier struct {
	arrived atomic.Int32
	_       [cacheLine - 4]byte
	sense   atomic.Uint32
	_       [cacheLine - 4]byte
	parties int32
	// spin is the per-round spin budget before parking. Spinning only pays
	// when the releasing participant can run simultaneously, so when the
	// process has fewer usable CPUs than barrier parties the budget drops to
	// near zero and waiters park (and yield the CPU) almost immediately.
	spin  int
	slots []barrierSlot
}

func newShardBarrier(parties int) *shardBarrier {
	b := &shardBarrier{parties: int32(parties), slots: make([]barrierSlot, parties)}
	procs := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < procs {
		procs = n
	}
	b.spin = barrierSpin
	if procs < parties {
		b.spin = 16
	}
	for i := range b.slots {
		b.slots[i].wake = make(chan struct{}, 1)
	}
	return b
}

// sync is one barrier round for the participant occupying slot. localSense
// is the participant's round parity, flipped on entry; the call returns once
// every participant has arrived. stopping, when non-nil, lets a waiter
// abandon the round during shutdown — sync then returns false and the
// participant must not touch the barrier again. The atomic arrive/flip pair
// is also the happens-before edge that publishes the coordinator's writes
// (exchange-buffer arming, the cycle clock) to workers and vice versa.
func (b *shardBarrier) sync(slot int, localSense *uint32, stopping *atomic.Bool) bool {
	want := *localSense ^ 1
	*localSense = want
	if b.arrived.Add(1) == b.parties {
		// Last arrival releases the round. Reset the arrival count before
		// flipping the sense: no participant can start the next round until
		// the flip is visible.
		b.arrived.Store(0)
		b.sense.Store(want)
		for i := range b.slots {
			if i == slot {
				continue
			}
			s := &b.slots[i]
			if s.status.Load() == slotParked {
				select {
				case s.wake <- struct{}{}:
				default: // a token is already pending; one is enough
				}
			}
		}
		return true
	}
	return b.wait(slot, want, stopping)
}

// wait blocks slot until the global sense reaches want: spin first, then
// park. The parked path is Dekker-safe against sync's release scan — the
// waiter stores slotParked and then re-reads the sense, the releaser stores
// the sense and then reads the status, and both are sequentially consistent,
// so at least one side observes the other. Stale wake tokens (the waiter
// raced past a releaser's send) surface as a spurious wakeup on the next
// park and are re-checked harmlessly.
func (b *shardBarrier) wait(slot int, want uint32, stopping *atomic.Bool) bool {
	for spin := 0; spin < b.spin; spin++ {
		if b.sense.Load() == want {
			return true
		}
		if stopping != nil && stopping.Load() {
			return false
		}
		if spin&0xff == 0xff {
			// Be polite when participants outnumber CPUs.
			runtime.Gosched()
		}
	}
	s := &b.slots[slot]
	for {
		s.status.Store(slotParked)
		if b.sense.Load() == want {
			s.status.Store(slotAwake)
			return true
		}
		if stopping != nil && stopping.Load() {
			s.status.Store(slotAwake)
			return false
		}
		<-s.wake
		s.status.Store(slotAwake)
		if b.sense.Load() == want {
			return true
		}
		if stopping != nil && stopping.Load() {
			return false
		}
	}
}

// shardPlan is the validated, precomputed execution plan.
type shardPlan struct {
	phases []Phase
	// workers hold the per-phase ticker lists; goroutines exist only while a
	// Run is in progress.
	workers []*shardWorker
	// parallel lists the indices of phases that have Groups, in plan order —
	// the fused worker loop walks exactly these.
	parallel []int
	// flat[phase] is the phase's group tickers in group-major order, for
	// inline mode.
	flat [][]Ticker

	// Reduced-cycle support: parSrcs holds every group ticker's EventSource
	// in ascending registration order (batchable reports none were missing),
	// and phaseSkip[phase] the Skippers among a parallel phase's group
	// tickers, ascending, for the per-cycle SkipTo replay.
	parSrcs   []EventSource
	phaseSkip [][]Skipper
	batchable bool

	// Run-scoped state. barrier synchronizes coordinator (slot 0) and
	// workers (slots 1..n); cycleNow carries the cycle clock to workers
	// (published by the barrier round that releases them); stopping makes
	// waiters abandon their round at shutdown; inline marks a run executing
	// its groups on the coordinator without goroutines.
	barrier    *shardBarrier
	coordSense uint32
	cycleNow   int64
	stopping   atomic.Bool
	inline     bool
	running    bool
	wg         sync.WaitGroup
}

// SetShardPlan installs a sharded execution plan: phases are executed in
// order every cycle, with at most workers groups ticking concurrently.
// Every registered ticker must appear exactly once across all phases.
// Worker goroutines are started by Run/RunContext and stopped when the run
// returns; the bare Step remains sequential. Passing no phases removes the
// plan. Must not be called while a run is in progress.
func (e *Engine) SetShardPlan(workers int, phases []Phase) error {
	if e.plan != nil && e.plan.running {
		return fmt.Errorf("engine: SetShardPlan during a run")
	}
	if len(phases) == 0 {
		e.plan = nil
		return nil
	}
	if workers < 1 {
		return fmt.Errorf("engine: shard plan needs >= 1 worker, got %d", workers)
	}
	seen := make([]bool, len(e.tickers))
	covered := 0
	mark := func(idx int) error {
		if idx < 0 || idx >= len(e.tickers) {
			return fmt.Errorf("engine: shard plan names ticker %d of %d", idx, len(e.tickers))
		}
		if seen[idx] {
			return fmt.Errorf("engine: shard plan ticks ticker %d twice", idx)
		}
		seen[idx] = true
		covered++
		return nil
	}
	for pi, ph := range phases {
		if len(ph.Groups) > 0 && len(ph.Serial) > 0 {
			return fmt.Errorf("engine: phase %d has both Groups and Serial", pi)
		}
		for _, g := range ph.Groups {
			for _, idx := range g {
				if err := mark(idx); err != nil {
					return err
				}
			}
		}
		for _, idx := range ph.Serial {
			if err := mark(idx); err != nil {
				return err
			}
		}
	}
	if covered != len(e.tickers) {
		return fmt.Errorf("engine: shard plan covers %d of %d tickers", covered, len(e.tickers))
	}

	plan := &shardPlan{
		phases:    phases,
		flat:      make([][]Ticker, len(phases)),
		phaseSkip: make([][]Skipper, len(phases)),
		batchable: true,
	}
	for w := 0; w < workers; w++ {
		plan.workers = append(plan.workers, &shardWorker{
			lists: make([][]Ticker, len(phases)),
		})
	}
	// Round-robin groups over workers, resolving indices to tickers once, and
	// precompute the reduced-cycle metadata (quiescence probes and per-cycle
	// Skippers, both in ascending registration order).
	for pi, ph := range phases {
		if len(ph.Groups) == 0 {
			continue
		}
		plan.parallel = append(plan.parallel, pi)
		var idxs []int
		for gi, g := range ph.Groups {
			w := plan.workers[gi%workers]
			for _, idx := range g {
				w.lists[pi] = append(w.lists[pi], e.tickers[idx])
				plan.flat[pi] = append(plan.flat[pi], e.tickers[idx])
				idxs = append(idxs, idx)
			}
		}
		sortInts(idxs)
		for _, idx := range idxs {
			if src := e.sources[idx]; src != nil {
				plan.parSrcs = append(plan.parSrcs, src)
			} else {
				plan.batchable = false
			}
			if skp := e.skippers[idx]; skp != nil {
				plan.phaseSkip[pi] = append(plan.phaseSkip[pi], skp)
			}
		}
	}
	e.plan = plan
	return nil
}

// sortInts is a small insertion sort: plan construction runs once and the
// lists are near-sorted already (groups are built in registration order).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Sharded reports whether a shard plan is installed.
func (e *Engine) Sharded() bool { return e.plan != nil }

// Len returns the number of registered tickers (shard plans are built over
// ticker registration indices).
func (e *Engine) Len() int { return len(e.tickers) }

// SetShardBatching enables reduced cycles under a shard plan: when every
// group ticker's NextEvent horizon is beyond the current cycle, the
// coordinator runs the cycle alone (serial phases tick, parallel Skippers
// get SkipTo for the single cycle) without waking the workers. Results are
// bit-identical either way — a group ticker whose horizon is in the future
// would have ticked as a no-op — so, like fast-forward, this is purely a
// speed knob. It only takes effect when every group ticker implements
// EventSource.
func (e *Engine) SetShardBatching(on bool) { e.shardBatch = on }

// ReducedCycles returns the number of cycles executed coordinator-only under
// shard batching (a subset of Ticked).
func (e *Engine) ReducedCycles() int64 { return e.reduced }

// startShardWorkers launches the plan's worker goroutines and returns the
// function that stops them, or nil when no plan is installed. Run/RunContext
// bracket the run with it so no goroutines outlive a run. On a single-CPU
// process (or a plan with no parallel phases) no goroutines are started at
// all: the run executes inline on the coordinator, bit-identically, avoiding
// pure time-shared coordination overhead.
func (e *Engine) startShardWorkers() func() {
	p := e.plan
	if p == nil {
		return nil
	}
	p.running = true
	p.inline = len(p.parallel) == 0 || runtime.GOMAXPROCS(0) < 2
	if p.inline {
		return func() { p.running = false }
	}
	p.barrier = newShardBarrier(len(p.workers) + 1)
	p.coordSense = 0
	p.stopping.Store(false)
	for i, w := range p.workers {
		p.wg.Add(1)
		go p.runWorker(w, i+1)
	}
	return p.stop
}

// runWorker is the fused worker loop: one barrier release per cycle carries
// the worker through all of its parallel phases, each bracketed by a
// release/join round pair shared with the coordinator. The loop exits when a
// round is abandoned at shutdown.
func (p *shardPlan) runWorker(w *shardWorker, slot int) {
	defer p.wg.Done()
	sense := uint32(0)
	for {
		for _, pi := range p.parallel {
			if !p.barrier.sync(slot, &sense, &p.stopping) {
				return
			}
			now := p.cycleNow
			for _, t := range w.lists[pi] {
				t.Tick(now)
			}
			if !p.barrier.sync(slot, &sense, &p.stopping) {
				return
			}
		}
	}
}

// stop shuts the workers down: raise the stop flag, then keep waking parked
// slots until every worker has observed it and exited. The wake loop also
// unsticks workers left mid-protocol if the coordinator abandoned a cycle
// (a panic unwinding through Run's deferred stop).
func (p *shardPlan) stop() {
	p.stopping.Store(true)
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			p.barrier = nil
			p.running = false
			return
		default:
		}
		for i := range p.barrier.slots {
			s := &p.barrier.slots[i]
			if s.status.Load() == slotParked {
				select {
				case s.wake <- struct{}{}:
				default:
				}
			}
		}
		runtime.Gosched()
	}
}

// quiescentParallel reports whether every group ticker's horizon is beyond
// now — the parallel phases of this cycle are provably no-ops. The scan
// early-exits on the first active component, so on busy cycles it costs one
// NextEvent call.
func (p *shardPlan) quiescentParallel(now int64) bool {
	for _, s := range p.parSrcs {
		if s.NextEvent(now) <= now {
			return false
		}
	}
	return true
}

// shardStep advances one cycle under the installed plan.
func (e *Engine) shardStep() {
	p := e.plan
	now := e.now
	if e.shardBatch && p.batchable && len(p.parallel) > 0 && p.quiescentParallel(now) {
		e.reducedStep(p, now)
		return
	}
	if p.inline {
		for pi := range p.phases {
			ph := &p.phases[pi]
			if ph.Enter != nil {
				ph.Enter(now)
			}
			for _, t := range p.flat[pi] {
				t.Tick(now)
			}
			for _, idx := range ph.Serial {
				e.tickers[idx].Tick(now)
			}
			if ph.Drain != nil {
				ph.Drain(now)
			}
		}
	} else {
		p.cycleNow = now
		for pi := range p.phases {
			ph := &p.phases[pi]
			if ph.Enter != nil {
				ph.Enter(now)
			}
			if len(ph.Groups) > 0 {
				p.barrier.sync(0, &p.coordSense, nil) // release workers into the phase
				p.barrier.sync(0, &p.coordSense, nil) // join: every group tick done
			}
			for _, idx := range ph.Serial {
				e.tickers[idx].Tick(now)
			}
			if ph.Drain != nil {
				ph.Drain(now)
			}
		}
	}
	e.now++
	e.ticked++
}

// reducedStep runs one cycle entirely on the coordinator: every parallel
// phase is quiescent, so its ticks would be no-ops — Skippers get the
// single-cycle SkipTo that reproduces their per-cycle bookkeeping (idle
// attribution, write-combine window parity) and the phase's Enter/Drain are
// skipped (nothing ticked, so the exchange buffers stay empty). Serial
// phases run exactly as in a full cycle. Workers stay parked.
func (e *Engine) reducedStep(p *shardPlan, now int64) {
	for pi := range p.phases {
		ph := &p.phases[pi]
		if len(ph.Groups) > 0 {
			for _, sk := range p.phaseSkip[pi] {
				sk.SkipTo(now, now+1)
			}
			continue
		}
		if ph.Enter != nil {
			ph.Enter(now)
		}
		for _, idx := range ph.Serial {
			e.tickers[idx].Tick(now)
		}
		if ph.Drain != nil {
			ph.Drain(now)
		}
	}
	e.now++
	e.ticked++
	e.reduced++
}

// step advances one cycle, sharded when a plan is live, sequentially
// otherwise. Both paths are bit-identical by the shard contract.
func (e *Engine) step() {
	if e.plan != nil && e.plan.running {
		e.shardStep()
	} else {
		e.Step()
	}
}
