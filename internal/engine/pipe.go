package engine

// Pipe is a bounded FIFO in which each item becomes visible to the consumer
// only after a fixed latency. It models a pipelined, fixed-latency link such
// as a cache port or an interconnect hop: the producer Pushes at cycle t, the
// consumer can Pop the item at cycle t+latency or later. Capacity bounds the
// number of in-flight items; a full Pipe exerts back-pressure (Push returns
// false), which is how queueing delay emerges in the simulator.
type Pipe[T any] struct {
	latency int64
	cap     int
	items   []pipeItem[T]
	// stall, when non-nil and true at now, freezes the consumer side: Pop
	// and Peek deliver nothing while the hook holds. Fault injection uses it
	// to wedge a link and prove the watchdog fires; the producer side still
	// accepts items until capacity exerts back-pressure.
	stall func(now int64) bool
}

type pipeItem[T any] struct {
	readyAt int64
	value   T
}

// NewPipe returns a Pipe with the given latency (cycles) and capacity.
// A capacity of 0 means unbounded.
func NewPipe[T any](latency int64, capacity int) *Pipe[T] {
	if latency < 0 {
		panic("engine: negative pipe latency")
	}
	return &Pipe[T]{latency: latency, cap: capacity}
}

// Push inserts v at cycle now. It returns false if the pipe is full.
func (p *Pipe[T]) Push(now int64, v T) bool {
	if p.cap > 0 && len(p.items) >= p.cap {
		return false
	}
	p.items = append(p.items, pipeItem[T]{readyAt: now + p.latency, value: v})
	return true
}

// SetStallHook installs a fault-injection hook that freezes the consumer
// side of the pipe whenever it returns true. Pass nil to clear.
func (p *Pipe[T]) SetStallHook(fn func(now int64) bool) {
	p.stall = fn
}

// Pop removes and returns the oldest item if it is ready at cycle now.
func (p *Pipe[T]) Pop(now int64) (T, bool) {
	var zero T
	if p.stall != nil && p.stall(now) {
		return zero, false
	}
	if len(p.items) == 0 || p.items[0].readyAt > now {
		return zero, false
	}
	v := p.items[0].value
	// Shift rather than reslice so the backing array does not grow without
	// bound over a long simulation.
	copy(p.items, p.items[1:])
	p.items = p.items[:len(p.items)-1]
	return v, true
}

// Peek returns the oldest item without removing it, if ready at cycle now.
func (p *Pipe[T]) Peek(now int64) (T, bool) {
	var zero T
	if p.stall != nil && p.stall(now) {
		return zero, false
	}
	if len(p.items) == 0 || p.items[0].readyAt > now {
		return zero, false
	}
	return p.items[0].value, true
}

// NextReady returns the earliest cycle >= now at which a Pop could deliver an
// item: now if the head is already ready, the head's arrival cycle otherwise,
// NoEvent if the pipe is empty. With a stall hook installed it returns now —
// the hook's future answers are unknowable, so the consumer must be ticked
// every cycle (fault-injection runs trade fast-forward for the hook).
func (p *Pipe[T]) NextReady(now int64) int64 {
	if p.stall != nil {
		return now
	}
	if len(p.items) == 0 {
		return NoEvent
	}
	if r := p.items[0].readyAt; r > now {
		return r
	}
	return now
}

// Len returns the number of in-flight items (ready or not).
func (p *Pipe[T]) Len() int {
	return len(p.items)
}

// Full reports whether a Push at this moment would fail.
func (p *Pipe[T]) Full() bool {
	return p.cap > 0 && len(p.items) >= p.cap
}
