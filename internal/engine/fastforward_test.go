package engine

import (
	"context"
	"errors"
	"testing"
)

// scripted is a test component with a fixed list of cycles at which it acts.
// It implements EventSource (next scheduled cycle) and Skipper (records the
// spans it was asked to account for).
type scripted struct {
	events   []int64 // sorted cycles at which the component acts
	ticks    []int64 // cycles Tick was actually called
	spans    [][2]int64
	progress uint64
}

func (s *scripted) Tick(now int64) {
	s.ticks = append(s.ticks, now)
	for _, ev := range s.events {
		if ev == now {
			s.progress++
		}
	}
}

func (s *scripted) NextEvent(now int64) int64 {
	for _, ev := range s.events {
		if ev >= now {
			return ev
		}
	}
	return NoEvent
}

func (s *scripted) SkipTo(from, to int64) {
	s.spans = append(s.spans, [2]int64{from, to})
}

func TestFastForwardSkipsQuiescentSpans(t *testing.T) {
	e := New()
	e.SetFastForward(true)
	c := &scripted{events: []int64{3, 10}}
	e.Register(c)
	e.Run(20)

	if e.Now() != 20 {
		t.Fatalf("Now=%d, want 20", e.Now())
	}
	if got, want := e.Ticked(), int64(2); got != want {
		t.Errorf("Ticked=%d, want %d", got, want)
	}
	if got, want := e.Skipped(), int64(18); got != want {
		t.Errorf("Skipped=%d, want %d", got, want)
	}
	wantTicks := []int64{3, 10}
	if len(c.ticks) != len(wantTicks) {
		t.Fatalf("ticked at %v, want %v", c.ticks, wantTicks)
	}
	for i, w := range wantTicks {
		if c.ticks[i] != w {
			t.Fatalf("ticked at %v, want %v", c.ticks, wantTicks)
		}
	}
	// Spans plus ticks must tile [0, 20) exactly, in order.
	wantSpans := [][2]int64{{0, 3}, {4, 10}, {11, 20}}
	if len(c.spans) != len(wantSpans) {
		t.Fatalf("spans %v, want %v", c.spans, wantSpans)
	}
	for i, w := range wantSpans {
		if c.spans[i] != w {
			t.Fatalf("spans %v, want %v", c.spans, wantSpans)
		}
	}
}

func TestFastForwardOffByDefault(t *testing.T) {
	e := New()
	c := &scripted{events: []int64{3}}
	e.Register(c)
	e.Run(10)
	if e.Ticked() != 10 || e.Skipped() != 0 {
		t.Fatalf("Ticked=%d Skipped=%d, want 10/0 without SetFastForward", e.Ticked(), e.Skipped())
	}
}

func TestFastForwardDisabledByOpaqueTicker(t *testing.T) {
	e := New()
	e.SetFastForward(true)
	e.Register(&scripted{events: []int64{3}})
	// A plain TickFunc cannot report quiescence, so the engine must never skip.
	e.Register(TickFunc(func(now int64) {}))
	e.Run(10)
	if e.Ticked() != 10 || e.Skipped() != 0 {
		t.Fatalf("Ticked=%d Skipped=%d, want 10/0 with an opaque ticker registered", e.Ticked(), e.Skipped())
	}
}

// TestFastForwardWatchdogSameAbortCycle pins the satellite-2 contract: a
// fully quiescent (wedged) system must not let fast-forward leap past
// watchdog checkpoints — the abort fires at exactly the cycle a
// single-stepped run aborts at.
func TestFastForwardWatchdogSameAbortCycle(t *testing.T) {
	abortCycle := func(ff bool) int64 {
		e := New()
		e.SetFastForward(ff)
		c := &scripted{} // no events: permanently quiescent, no progress
		e.Register(c)
		wd := NewWatchdog(100, 2)
		wd.Observe(func() uint64 { return c.progress })
		err := e.RunContext(context.Background(), 1_000, wd)
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("ff=%v: err = %v, want *DeadlockError", ff, err)
		}
		return de.Cycle
	}
	slow, fast := abortCycle(false), abortCycle(true)
	if slow != fast {
		t.Fatalf("abort cycle: single-stepped=%d fast-forwarded=%d", slow, fast)
	}
}

// TestFastForwardWatchdogHealthy checks the dual hazard: checkpoint-capped
// skips must not read as stalls when the system is genuinely progressing at
// every event.
func TestFastForwardWatchdogHealthy(t *testing.T) {
	e := New()
	e.SetFastForward(true)
	events := make([]int64, 0, 20)
	for cy := int64(30); cy < 1_000; cy += 50 {
		events = append(events, cy)
	}
	c := &scripted{events: events}
	e.Register(c)
	wd := NewWatchdog(100, 2)
	wd.Observe(func() uint64 { return c.progress })
	if err := e.RunContext(context.Background(), 1_000, wd); err != nil {
		t.Fatalf("healthy fast-forwarded run aborted: %v", err)
	}
	if e.Skipped() == 0 {
		t.Fatal("run never skipped; watchdog interaction untested")
	}
	if e.Now() != 1_000 {
		t.Fatalf("Now=%d, want 1000", e.Now())
	}
}
