package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkShardBarrier isolates the pure cost of one cycle's worth of
// coordination — release all workers, join all workers, no actual tick work —
// for the fused sense-reversing barrier against the channel handshake it
// replaced (one start-channel send per worker plus one done-channel receive
// per worker, per phase, as shipped in the first sharded-ticking PR). Run
// with GOMAXPROCS >= workers+1 for contended-but-parallel numbers; on fewer
// CPUs both paths measure scheduler time-sharing instead.
func BenchmarkShardBarrier(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("atomic/workers=%d", workers), func(b *testing.B) {
			benchAtomicBarrier(b, workers)
		})
		b.Run(fmt.Sprintf("channel/workers=%d", workers), func(b *testing.B) {
			benchChannelBarrier(b, workers)
		})
	}
}

func benchAtomicBarrier(b *testing.B, workers int) {
	bar := newShardBarrier(workers + 1)
	var stopping atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			sense := uint32(0)
			for {
				if !bar.sync(slot, &sense, &stopping) {
					return
				}
				if !bar.sync(slot, &sense, &stopping) {
					return
				}
			}
		}(w + 1)
	}
	coordSense := uint32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bar.sync(0, &coordSense, nil) // release
		bar.sync(0, &coordSense, nil) // join
	}
	b.StopTimer()
	stopping.Store(true)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
		}
		for i := range bar.slots {
			s := &bar.slots[i]
			if s.status.Load() == slotParked {
				select {
				case s.wake <- struct{}{}:
				default:
				}
			}
		}
	}
}

// benchChannelBarrier reproduces the pre-fusion protocol: a buffered start
// channel per worker carrying the cycle stamp, one shared buffered done
// channel, two channel operations per worker on each side of the phase.
func benchChannelBarrier(b *testing.B, workers int) {
	starts := make([]chan int64, workers)
	done := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		starts[w] = make(chan int64, 1)
		wg.Add(1)
		go func(start chan int64) {
			defer wg.Done()
			for range start {
				done <- struct{}{}
			}
		}(starts[w])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range starts {
			s <- int64(i)
		}
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	b.StopTimer()
	for _, s := range starts {
		close(s)
	}
	wg.Wait()
}
