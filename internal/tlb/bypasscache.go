package tlb

// bypassCache is MASK's TLB bypass cache (§5.2): a small (32-entry in the
// paper) fully-associative, LRU-replaced store for translations requested by
// warps that hold no TLB-Fill Token. It is probed in parallel with the
// shared L2 TLB, so a hit in either counts as an L2-level TLB hit.
type bypassCache struct {
	size    int
	entries map[bypassKey]*bypassEntry
	stamp   int64

	Accesses uint64
	Hits     uint64
}

type bypassKey struct {
	asid uint8
	vpn  uint64
}

type bypassEntry struct {
	frame uint64
	stamp int64
}

func newBypassCache(size int) *bypassCache {
	return &bypassCache{size: size, entries: make(map[bypassKey]*bypassEntry, size)}
}

func (b *bypassCache) probe(asid uint8, vpn uint64) (uint64, bool) {
	b.Accesses++
	e, ok := b.entries[bypassKey{asid, vpn}]
	if !ok {
		return 0, false
	}
	b.Hits++
	b.stamp++
	e.stamp = b.stamp
	return e.frame, true
}

func (b *bypassCache) fill(asid uint8, vpn, frame uint64) {
	b.stamp++
	k := bypassKey{asid, vpn}
	if e, ok := b.entries[k]; ok {
		e.frame = frame
		e.stamp = b.stamp
		return
	}
	if len(b.entries) >= b.size {
		var victim bypassKey
		var victimStamp int64 = 1<<63 - 1
		for k, e := range b.entries {
			if e.stamp < victimStamp {
				victimStamp = e.stamp
				victim = k
			}
		}
		delete(b.entries, victim)
	}
	b.entries[k] = &bypassEntry{frame: frame, stamp: b.stamp}
}

// flushASID drops all entries belonging to one address space.
func (b *bypassCache) flushASID(asid uint8) {
	for k := range b.entries {
		if k.asid == asid {
			delete(b.entries, k)
		}
	}
}

// hitRate returns the bypass cache hit rate (the paper reports 66.5% §7.2).
func (b *bypassCache) hitRate() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Accesses)
}
