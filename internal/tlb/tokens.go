package tlb

// TokenPolicy implements MASK's TLB-Fill Tokens (§5.2).
//
// Every warp may probe the shared L2 TLB, but only warps holding a token may
// fill it; fills from token-less warps are redirected to the small bypass
// cache. Tokens are assigned per application in units of warps per core, in
// warp-ID order ("if there are n tokens, the n warps with the lowest warp ID
// values receive tokens"). At each epoch boundary the per-application token
// count adapts to the application's shared-TLB miss rate: a miss rate that
// rose by more than 2% signals contention (shed tokens); one that fell by
// more than 2% signals headroom (grant tokens).
type TokenPolicy struct {
	enabled      bool
	warpsPerCore int
	// tokensPerCore[app] is the number of token-holding warps on each of the
	// app's cores.
	tokensPerCore []int
	prevMissRate  []float64
	havePrev      []bool
	// firstEpoch disables bypassing during the first epoch, per the paper
	// (footnote 6).
	firstEpoch bool
	step       int
	// dir is each app's current search direction (+1 grant, -1 shed), used
	// when the miss rate is flat: the paper's ±2%-delta rule alone has no
	// gradient to follow once the miss rate plateaus, so the policy keeps
	// probing in its current direction and reverses when an adjustment made
	// the miss rate worse. This converges to the same steady state the
	// paper describes (§7.2) without manual tuning of InitialTokens.
	dir []int
}

// NewTokenPolicy creates the policy for numApps applications with the given
// warps per core. initialFraction is the paper's InitialTokens parameter
// (evaluated at 80%). If enabled is false, HasToken always returns true and
// Epoch is a no-op, which turns MASK-TLB off.
func NewTokenPolicy(numApps, warpsPerCore int, initialFraction float64, enabled bool) *TokenPolicy {
	p := &TokenPolicy{
		enabled:       enabled,
		warpsPerCore:  warpsPerCore,
		tokensPerCore: make([]int, numApps),
		prevMissRate:  make([]float64, numApps),
		havePrev:      make([]bool, numApps),
		firstEpoch:    true,
		step:          warpsPerCore / 16,
		dir:           make([]int, numApps),
	}
	for i := range p.dir {
		p.dir[i] = -1 // start by probing downward: fewer fill sources
	}
	if p.step < 1 {
		p.step = 1
	}
	init := int(initialFraction * float64(warpsPerCore))
	if init < 1 {
		init = 1
	}
	if init > warpsPerCore {
		init = warpsPerCore
	}
	for i := range p.tokensPerCore {
		p.tokensPerCore[i] = init
	}
	return p
}

// Enabled reports whether the token mechanism is active.
func (p *TokenPolicy) Enabled() bool { return p.enabled }

// HasToken reports whether the given warp of app currently holds a token.
func (p *TokenPolicy) HasToken(app, warpID int) bool {
	if !p.enabled || p.firstEpoch {
		return true
	}
	if app < 0 || app >= len(p.tokensPerCore) {
		return true
	}
	return warpID < p.tokensPerCore[app]
}

// Tokens returns app's per-core token count (test/introspection helper).
func (p *TokenPolicy) Tokens(app int) int {
	if app < 0 || app >= len(p.tokensPerCore) {
		return p.warpsPerCore
	}
	return p.tokensPerCore[app]
}

// Epoch adapts token counts from the per-app shared-TLB miss rates measured
// over the epoch that just ended.
func (p *TokenPolicy) Epoch(missRate []float64) {
	if !p.enabled {
		return
	}
	p.firstEpoch = false
	for app := 0; app < len(p.tokensPerCore) && app < len(missRate); app++ {
		mr := missRate[app]
		if p.havePrev[app] {
			delta := mr - p.prevMissRate[app]
			switch {
			case delta > 0.02:
				// The last adjustment made the miss rate worse: reverse
				// course. (The paper reads a rising miss rate as "shed
				// tokens"; as pure feedback control that diverges when the
				// rise was caused by the policy's own previous decrease, so
				// the policy hill-climbs instead — DESIGN.md §5.)
				p.dir[app] = -p.dir[app]
				p.tokensPerCore[app] += p.step * p.dir[app]
			case delta < -0.02:
				// Miss rate fell: keep whatever direction produced this.
				p.tokensPerCore[app] += p.step * p.dir[app]
			default:
				// Flat miss rate: keep probing in the current direction,
				// but only while the TLB is clearly struggling — in the
				// comfortable region (low miss rate) leave tokens alone.
				if mr > 0.5 {
					p.tokensPerCore[app] += p.step * p.dir[app]
				}
			}
			if p.tokensPerCore[app] <= 1 {
				p.tokensPerCore[app] = 1
				p.dir[app] = 1 // bounce off the floor
			}
			if p.tokensPerCore[app] >= p.warpsPerCore {
				p.tokensPerCore[app] = p.warpsPerCore
				p.dir[app] = -1 // and off the ceiling
			}
		}
		p.prevMissRate[app] = mr
		p.havePrev[app] = true
	}
}
