package tlb

import (
	"testing"

	"masksim/internal/memreq"
)

func BenchmarkL1Hit(b *testing.B) {
	be := &fakeTransBackend{}
	l1 := NewL1(0, 0, 1, 64, be)
	l1.Lookup(0, 42, 0, true, func(int64, uint64) {})
	be.answerAll(1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Lookup(int64(i), 42, 0, true, func(int64, uint64) {})
	}
}

func BenchmarkL2ProbeHit(b *testing.B) {
	l2, w := newL2(1, 0, nil)
	tr := &memreq.TransReq{ASID: 1, VPN: 9, Done: func(int64, uint64) {}}
	l2.SubmitTrans(0, tr)
	for now := int64(0); now < 4; now++ {
		l2.Tick(now)
	}
	w.completeAll(5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(10 + i*2)
		tr := &memreq.TransReq{ASID: 1, VPN: 9, Done: func(int64, uint64) {}}
		l2.SubmitTrans(now, tr)
		l2.Tick(now + 1)
	}
}
