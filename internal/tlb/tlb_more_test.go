package tlb

import (
	"testing"

	"masksim/internal/memreq"
)

func TestL2WayPartitioning(t *testing.T) {
	l2, w := newL2(2, 0, nil)
	l2.SetWayPartition([]uint64{0b0011, 0b1100})
	// Fill the same set repeatedly from app 0; app 1's entry must survive.
	// With the hashed index we can't choose set collisions directly, so we
	// simply verify app 1's translation survives a burst of app-0 fills.
	tr := &memreq.TransReq{ASID: 2, AppID: 1, VPN: 0x42, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, tr, 0, 3)
	w.completeAll(4, 7)

	for i := 0; i < 200; i++ {
		tr := &memreq.TransReq{ASID: 1, AppID: 0, VPN: uint64(0x1000 + i),
			Done: func(int64, uint64) {}}
		at := int64(10 + i*4)
		submitAndTick(t, l2, tr, at, at+2)
		w.completeAll(at+3, uint64(i))
	}
	hit := false
	tr2 := &memreq.TransReq{ASID: 2, AppID: 1, VPN: 0x42, Done: func(int64, uint64) { hit = true }}
	submitAndTick(t, l2, tr2, 5000, 5003)
	if !hit {
		t.Fatal("app 1's translation evicted despite way partitioning")
	}
}

func TestL2FlushFraction(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	for i := 0; i < 16; i++ {
		tr := &memreq.TransReq{ASID: 1, VPN: uint64(i), Done: func(int64, uint64) {}}
		at := int64(i * 5)
		submitAndTick(t, l2, tr, at, at+2)
		w.completeAll(at+3, uint64(i+1))
	}
	l2.FlushFraction(1.0)
	// Everything must now miss.
	tr := &memreq.TransReq{ASID: 1, VPN: 3, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, tr, 200, 203)
	if len(w.walks) != 1 {
		t.Fatal("entry survived full flush")
	}
}

func TestL1FlushFractionPartial(t *testing.T) {
	be := &fakeTransBackend{}
	l1 := NewL1(0, 0, 1, 16, be)
	for i := 0; i < 16; i++ {
		l1.Lookup(int64(i), uint64(i), 0, true, func(int64, uint64) {})
		be.answerAll(int64(i), uint64(i+1))
	}
	before := l1.Entries()
	l1.FlushFraction(0.5)
	after := l1.Entries()
	if after >= before || after == 0 {
		t.Fatalf("partial flush: %d -> %d entries", before, after)
	}
}

func TestL2EpochRollResets(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	tr := &memreq.TransReq{ASID: 1, VPN: 0x900, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, tr, 0, 3)
	w.completeAll(4, 1)
	rates := l2.EpochRoll()
	if rates[0] != 1.0 {
		t.Fatalf("first epoch miss rate %v, want 1.0", rates[0])
	}
	// New epoch starts clean: a hit-only epoch reports 0.
	hit := &memreq.TransReq{ASID: 1, VPN: 0x900, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, hit, 10, 13)
	rates = l2.EpochRoll()
	if rates[0] != 0.0 {
		t.Fatalf("hit-only epoch miss rate %v, want 0", rates[0])
	}
}

func TestTokenHillClimbReversesOnWorsening(t *testing.T) {
	p := NewTokenPolicy(1, 64, 0.8, true)
	p.Epoch([]float64{0.6}) // ends first epoch, records prev=0.6
	start := p.Tokens(0)
	p.Epoch([]float64{0.6}) // flat & >0.5: probe downward
	if p.Tokens(0) >= start {
		t.Fatalf("flat high miss rate did not probe downward (%d -> %d)", start, p.Tokens(0))
	}
	down := p.Tokens(0)
	p.Epoch([]float64{0.9}) // probe made it worse: reverse upward
	if p.Tokens(0) <= down {
		t.Fatalf("worsening did not reverse the probe (%d -> %d)", down, p.Tokens(0))
	}
}

func TestTokenComfortZoneStable(t *testing.T) {
	p := NewTokenPolicy(1, 64, 0.8, true)
	p.Epoch([]float64{0.1})
	tok := p.Tokens(0)
	for i := 0; i < 5; i++ {
		p.Epoch([]float64{0.1}) // flat and low: leave tokens alone
	}
	if p.Tokens(0) != tok {
		t.Fatalf("comfortable region adapted tokens %d -> %d", tok, p.Tokens(0))
	}
}

func TestBypassCacheFlushASID(t *testing.T) {
	b := newBypassCache(8)
	b.fill(1, 10, 100)
	b.fill(2, 10, 200)
	b.flushASID(1)
	if _, ok := b.probe(1, 10); ok {
		t.Fatal("flushed ASID entry survived")
	}
	if _, ok := b.probe(2, 10); !ok {
		t.Fatal("other ASID's entry was flushed")
	}
}

func TestL2StatsHitsPlusMissesBounded(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	for i := 0; i < 50; i++ {
		vpn := uint64(i % 10)
		tr := &memreq.TransReq{ASID: 1, VPN: vpn, Done: func(int64, uint64) {}}
		at := int64(i * 6)
		submitAndTick(t, l2, tr, at, at+3)
		w.completeAll(at+4, vpn+1)
	}
	st := l2.AppStats(0)
	if st.Accesses != 50 {
		t.Fatalf("accesses=%d, want 50", st.Accesses)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits(%d)+misses(%d) != accesses(%d)", st.Hits, st.Misses, st.Accesses)
	}
	if st.Hits == 0 {
		t.Fatal("repeated VPNs never hit")
	}
	total := l2.TotalStats()
	if total.Accesses != st.Accesses {
		t.Fatal("TotalStats disagrees with single-app stats")
	}
}

func TestPrefetcherCorrelation(t *testing.T) {
	p := NewPrefetcher()
	// Teach the sequence A -> B -> C once; the second traversal predicts.
	seq := []uint64{100, 200, 300}
	for _, vpn := range seq {
		p.Observe(1, vpn)
	}
	got, ok := p.Observe(1, 100)
	if !ok || got != 200 {
		t.Fatalf("prediction after revisit = %d,%v; want 200", got, ok)
	}
	got, ok = p.Observe(1, 200)
	if !ok || got != 300 {
		t.Fatalf("chained prediction = %d,%v; want 300", got, ok)
	}
}

func TestPrefetcherPerASIDIsolation(t *testing.T) {
	p := NewPrefetcher()
	for _, vpn := range []uint64{10, 20, 10, 20} {
		p.Observe(1, vpn)
	}
	// The same VPNs in a different address space predict nothing.
	if _, ok := p.Observe(2, 10); ok {
		t.Fatal("correlation leaked across address spaces")
	}
}

func TestPrefetcherTableBounded(t *testing.T) {
	p := NewPrefetcher()
	for vpn := uint64(0); vpn < uint64(prefetchTableCap)*3; vpn++ {
		p.Observe(1, vpn)
	}
	if len(p.next) > prefetchTableCap {
		t.Fatalf("table grew to %d entries (cap %d)", len(p.next), prefetchTableCap)
	}
}

func TestL2PrefetchInstallsAndCountsUseful(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	mapped := func(asid uint8, vpn uint64) bool { return true }
	l2.SetPrefetcher(NewPrefetcher(), mapped)

	// Traverse a capacity-exceeding page sequence repeatedly: on later
	// passes each miss predicts the (evicted) successor, which is
	// prefetched ahead of demand.
	var seq []uint64
	for i := 0; i < 48; i++ { // 48 pages > the 32-entry test TLB
		seq = append(seq, uint64(100+i*4))
	}
	at := int64(0)
	for pass := 0; pass < 3; pass++ {
		for _, vpn := range seq {
			tr := &memreq.TransReq{ASID: 1, VPN: vpn, Done: func(int64, uint64) {}}
			submitAndTick(t, l2, tr, at, at+3)
			w.completeAll(at+4, vpn)
			at += 10
		}
		// Break the chain between passes so the wrap transition is also
		// learned.
	}
	st := l2.PrefetchStats()
	if st.Issued == 0 {
		t.Fatal("no prefetch walks issued for a repeated sequence")
	}
	if st.Useful == 0 {
		t.Fatal("useful prefetch not counted")
	}
}

func TestL2PrefetchNeverDelaysDemand(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	l2.SetPrefetcher(NewPrefetcher(), func(uint8, uint64) bool { return true })
	w.queued = 1 // walker busy: prefetches must not be issued
	seq := []uint64{100, 104, 100, 104, 100}
	at := int64(0)
	for _, vpn := range seq {
		tr := &memreq.TransReq{ASID: 1, VPN: vpn, Done: func(int64, uint64) {}}
		if !l2.SubmitTrans(at, tr) {
			t.Fatal("submit failed")
		}
		for now := at; now <= at+3; now++ {
			l2.Tick(now)
		}
		at += 10
	}
	if l2.PrefetchStats().Issued != 0 {
		t.Fatal("prefetch issued while the walker had a backlog")
	}
	_ = w
}
