package tlb

import (
	"fmt"

	"masksim/internal/engine"
	"masksim/internal/memreq"
)

// --- L1 TLB -----------------------------------------------------------------

// L1EntryState is one cached translation.
type L1EntryState struct {
	VPN   uint64
	Frame uint64
	Stamp int64
}

// L1MissState is one outstanding L1 miss. The waiting callbacks are not
// serialized here: the cores re-register them through AddWaiter after every
// component has restored (gpu.Core.ReattachWaiters), in their original order.
type L1MissState struct {
	VPN uint64
	Tr  int32
}

// L1State is the L1 TLB's checkpoint image.
type L1State struct {
	Entries   []L1EntryState
	Stamp     int64
	Mshrs     []L1MissState
	Pending   []int32
	EntryUsed int
	MissFree  int
	Stats     L1Stats
}

// SnapshotState implements engine.Snapshotter; ctx is the *memreq.Table.
func (t *L1TLB) SnapshotState(ctx any) (any, error) {
	tab, ok := ctx.(*memreq.Table)
	if !ok {
		return nil, fmt.Errorf("tlb: snapshot context is %T, want *memreq.Table", ctx)
	}
	st := L1State{
		Stamp:     t.stamp,
		EntryUsed: t.entryUsed,
		MissFree:  len(t.missFree),
		Stats:     t.Stats,
	}
	for vpn, e := range t.entries {
		st.Entries = append(st.Entries, L1EntryState{VPN: vpn, Frame: e.frame, Stamp: e.stamp})
	}
	for vpn, m := range t.mshrs {
		st.Mshrs = append(st.Mshrs, L1MissState{VPN: vpn, Tr: tab.Trans(m.tr)})
	}
	for _, tr := range t.pending {
		st.Pending = append(st.Pending, tab.Trans(tr))
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter; ctx is the *memreq.RestoreTable.
func (t *L1TLB) RestoreState(ctx any, state any) error {
	rt, ok := ctx.(*memreq.RestoreTable)
	if !ok {
		return fmt.Errorf("tlb: restore context is %T, want *memreq.RestoreTable", ctx)
	}
	st, ok := state.(L1State)
	if !ok {
		return fmt.Errorf("tlb: restore state is %T, want L1State", state)
	}
	t.stamp = st.Stamp
	t.Stats = st.Stats
	t.entries = make(map[uint64]*l1entry, t.size)
	t.entryUsed = 0
	for _, es := range st.Entries {
		var e *l1entry
		if t.entryUsed < len(t.entryBuf) {
			e = &t.entryBuf[t.entryUsed]
			t.entryUsed++
		} else {
			e = &l1entry{}
		}
		e.vpn, e.frame, e.stamp = es.VPN, es.Frame, es.Stamp
		t.entries[es.VPN] = e
	}
	// entryUsed records the carve position, which can exceed the live entry
	// count after a flush dropped buffered objects.
	if st.EntryUsed > t.entryUsed {
		t.entryUsed = st.EntryUsed
	}
	t.mshrs = make(map[uint64]*l1miss, len(st.Mshrs))
	for _, ms := range st.Mshrs {
		m := t.getMiss()
		m.vpn, m.tr = ms.VPN, rt.Trans(ms.Tr)
		t.mshrs[ms.VPN] = m
	}
	for len(t.missFree) < st.MissFree {
		t.missFree = append(t.missFree, t.newMiss())
	}
	t.pending = t.pending[:0]
	for _, ref := range st.Pending {
		t.pending = append(t.pending, rt.Trans(ref))
	}
	return nil
}

// MissDone returns the fill callback of the outstanding miss covering vpn.
// The simulator's link pass uses it to rebind a restored TransReq's Done.
func (t *L1TLB) MissDone(vpn uint64) (func(now int64, frame uint64), bool) {
	m, ok := t.mshrs[vpn]
	if !ok {
		return nil, false
	}
	return m.done, true
}

// AddWaiter re-registers a warp completion callback against the outstanding
// miss for vpn (checkpoint restore only; the live path appends in Lookup).
func (t *L1TLB) AddWaiter(vpn uint64, done func(now int64, frame uint64)) error {
	m, ok := t.mshrs[vpn]
	if !ok {
		return fmt.Errorf("tlb: core %d checkpoint has a waiter for vpn %#x but no outstanding miss", t.coreID, vpn)
	}
	m.waiting = append(m.waiting, done)
	return nil
}

// --- token policy -----------------------------------------------------------

// TokenState is the TLB-Fill Token policy's checkpoint image.
type TokenState struct {
	TokensPerCore []int
	PrevMissRate  []float64
	HavePrev      []bool
	FirstEpoch    bool
	Dir           []int
}

// State captures the policy's adaptive state.
func (p *TokenPolicy) State() TokenState {
	return TokenState{
		TokensPerCore: append([]int(nil), p.tokensPerCore...),
		PrevMissRate:  append([]float64(nil), p.prevMissRate...),
		HavePrev:      append([]bool(nil), p.havePrev...),
		FirstEpoch:    p.firstEpoch,
		Dir:           append([]int(nil), p.dir...),
	}
}

// SetState restores state captured from a policy built with the same app
// count and warps per core.
func (p *TokenPolicy) SetState(st TokenState) {
	copy(p.tokensPerCore, st.TokensPerCore)
	copy(p.prevMissRate, st.PrevMissRate)
	copy(p.havePrev, st.HavePrev)
	p.firstEpoch = st.FirstEpoch
	copy(p.dir, st.Dir)
}

// --- shared L2 TLB ----------------------------------------------------------

// AppTLBStatsState mirrors AppTLBStats including the unexported epoch
// counters.
type AppTLBStatsState struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	EpochAccesses uint64
	EpochMisses   uint64
}

// L2EntryState is one line of the set-associative array, index-aligned with
// the lines slice.
type L2EntryState struct {
	ASID       uint8
	VPN        uint64
	Frame      uint64
	Valid      bool
	Stamp      int64
	Prefetched bool
}

// L2MissState is one outstanding shared-TLB miss with its merged requesters.
type L2MissState struct {
	ASID  uint8
	VPN   uint64
	AppID int
	Reqs  []int32
}

// PfKeyState identifies one (asid, vpn) pair in prefetcher/bypass images.
type PfKeyState struct {
	ASID uint8
	VPN  uint64
}

// BypassEntryState is one bypass-cache translation.
type BypassEntryState struct {
	ASID  uint8
	VPN   uint64
	Frame uint64
	Stamp int64
}

// BypassState is the TLB bypass cache's checkpoint image.
type BypassState struct {
	Entries  []BypassEntryState
	Stamp    int64
	Accesses uint64
	Hits     uint64
}

// PfEntryState is one correlation-table transition, stored in FIFO insertion
// order so bounded eviction resumes identically.
type PfEntryState struct {
	ASID uint8
	VPN  uint64
	Next uint64
}

// PfLastState is one address space's most recent demand VPN.
type PfLastState struct {
	ASID uint8
	VPN  uint64
}

// PrefetcherState is the correlation prefetcher's checkpoint image.
type PrefetcherState struct {
	Entries []PfEntryState
	Last    []PfLastState
	Stats   PrefetchStats
}

// L2State is the shared TLB's checkpoint image.
type L2State struct {
	Lines      []L2EntryState
	Stamp      int64
	In         []engine.PipeItemRef
	Mshrs      []L2MissState
	MissFree   int
	Stalled    []int32
	PfInFlight []PfKeyState
	Apps       []AppTLBStatsState
	Bypass     *BypassState
	Prefetch   *PrefetcherState
	Tokens     *TokenState
}

// SnapshotState implements engine.Snapshotter; ctx is the *memreq.Table.
func (t *L2TLB) SnapshotState(ctx any) (any, error) {
	tab, ok := ctx.(*memreq.Table)
	if !ok {
		return nil, fmt.Errorf("tlb: snapshot context is %T, want *memreq.Table", ctx)
	}
	st := L2State{
		Stamp:    t.stamp,
		In:       engine.SnapshotRefs(t.in, tab.Trans),
		MissFree: len(t.missFree),
	}
	st.Lines = make([]L2EntryState, len(t.lines))
	for i := range t.lines {
		e := &t.lines[i]
		st.Lines[i] = L2EntryState{
			ASID: e.key.asid, VPN: e.key.vpn, Frame: e.frame,
			Valid: e.valid, Stamp: e.stamp, Prefetched: e.prefetched,
		}
	}
	for key, m := range t.mshrs {
		ms := L2MissState{ASID: key.asid, VPN: key.vpn, AppID: m.appID}
		for _, tr := range m.reqs {
			ms.Reqs = append(ms.Reqs, tab.Trans(tr))
		}
		st.Mshrs = append(st.Mshrs, ms)
	}
	for _, tr := range t.stalled {
		st.Stalled = append(st.Stalled, tab.Trans(tr))
	}
	for key := range t.pfInFlight {
		st.PfInFlight = append(st.PfInFlight, PfKeyState{ASID: key.asid, VPN: key.vpn})
	}
	st.Apps = make([]AppTLBStatsState, len(t.apps))
	for i, a := range t.apps {
		st.Apps[i] = AppTLBStatsState{
			Accesses: a.Accesses, Hits: a.Hits, Misses: a.Misses,
			EpochAccesses: a.epochAccesses, EpochMisses: a.epochMisses,
		}
	}
	if t.bypass != nil {
		b := &BypassState{
			Stamp:    t.bypass.stamp,
			Accesses: t.bypass.Accesses,
			Hits:     t.bypass.Hits,
		}
		for k, e := range t.bypass.entries {
			b.Entries = append(b.Entries, BypassEntryState{
				ASID: k.asid, VPN: k.vpn, Frame: e.frame, Stamp: e.stamp,
			})
		}
		st.Bypass = b
	}
	if t.pf != nil {
		p := &PrefetcherState{Stats: t.pf.Stats}
		for _, k := range t.pf.order {
			p.Entries = append(p.Entries, PfEntryState{ASID: k.asid, VPN: k.vpn, Next: t.pf.next[k]})
		}
		for asid, vpn := range t.pf.last {
			p.Last = append(p.Last, PfLastState{ASID: asid, VPN: vpn})
		}
		st.Prefetch = p
	}
	if t.tokens != nil {
		ts := t.tokens.State()
		st.Tokens = &ts
	}
	return st, nil
}

// RestoreState implements engine.Snapshotter; ctx is the *memreq.RestoreTable.
func (t *L2TLB) RestoreState(ctx any, state any) error {
	rt, ok := ctx.(*memreq.RestoreTable)
	if !ok {
		return fmt.Errorf("tlb: restore context is %T, want *memreq.RestoreTable", ctx)
	}
	st, ok := state.(L2State)
	if !ok {
		return fmt.Errorf("tlb: restore state is %T, want L2State", state)
	}
	if len(st.Lines) != len(t.lines) {
		return fmt.Errorf("tlb: checkpoint has %d L2 TLB lines, configuration has %d", len(st.Lines), len(t.lines))
	}
	t.stamp = st.Stamp
	for i, es := range st.Lines {
		t.lines[i] = l2entry{
			key: l2key{asid: es.ASID, vpn: es.VPN}, frame: es.Frame,
			valid: es.Valid, stamp: es.Stamp, prefetched: es.Prefetched,
		}
	}
	engine.RestoreRefs(t.in, st.In, rt.Trans)
	t.mshrs = make(map[l2key]*l2miss, len(st.Mshrs))
	for _, ms := range st.Mshrs {
		m := t.getMiss()
		m.key, m.appID = l2key{asid: ms.ASID, vpn: ms.VPN}, ms.AppID
		for _, ref := range ms.Reqs {
			m.reqs = append(m.reqs, rt.Trans(ref))
		}
		t.mshrs[m.key] = m
	}
	for len(t.missFree) < st.MissFree {
		t.missFree = append(t.missFree, t.newMiss())
	}
	t.stalled = t.stalled[:0]
	for _, ref := range st.Stalled {
		t.stalled = append(t.stalled, rt.Trans(ref))
	}
	if len(st.PfInFlight) > 0 && t.pfInFlight == nil {
		return fmt.Errorf("tlb: checkpoint has in-flight prefetches but prefetching is disabled")
	}
	for _, k := range st.PfInFlight {
		t.pfInFlight[l2key{asid: k.ASID, vpn: k.VPN}] = true
	}
	for i := range t.apps {
		a := st.Apps[i]
		t.apps[i] = AppTLBStats{
			Accesses: a.Accesses, Hits: a.Hits, Misses: a.Misses,
			epochAccesses: a.EpochAccesses, epochMisses: a.EpochMisses,
		}
	}
	if st.Bypass != nil {
		if t.bypass == nil {
			return fmt.Errorf("tlb: checkpoint has bypass-cache state but the bypass cache is disabled")
		}
		t.bypass.stamp = st.Bypass.Stamp
		t.bypass.Accesses = st.Bypass.Accesses
		t.bypass.Hits = st.Bypass.Hits
		t.bypass.entries = make(map[bypassKey]*bypassEntry, t.bypass.size)
		for _, es := range st.Bypass.Entries {
			t.bypass.entries[bypassKey{asid: es.ASID, vpn: es.VPN}] = &bypassEntry{frame: es.Frame, stamp: es.Stamp}
		}
	}
	if st.Prefetch != nil {
		if t.pf == nil {
			return fmt.Errorf("tlb: checkpoint has prefetcher state but prefetching is disabled")
		}
		t.pf.Stats = st.Prefetch.Stats
		t.pf.next = make(map[pfKey]uint64, t.pf.cap)
		t.pf.order = t.pf.order[:0]
		for _, es := range st.Prefetch.Entries {
			k := pfKey{asid: es.ASID, vpn: es.VPN}
			t.pf.next[k] = es.Next
			t.pf.order = append(t.pf.order, k)
		}
		t.pf.last = make(map[uint8]uint64, len(st.Prefetch.Last))
		for _, ls := range st.Prefetch.Last {
			t.pf.last[ls.ASID] = ls.VPN
		}
	}
	if st.Tokens != nil && t.tokens != nil {
		t.tokens.SetState(*st.Tokens)
	}
	return nil
}

// MissDone returns the walk-completion callback of the outstanding miss for
// (asid, vpn); the simulator's link pass rebinds in-flight demand walks to it.
func (t *L2TLB) MissDone(asid uint8, vpn uint64) (func(now int64, frame uint64), bool) {
	m, ok := t.mshrs[l2key{asid: asid, vpn: vpn}]
	if !ok {
		return nil, false
	}
	return m.done, true
}

// PrefetchDone rebuilds the completion callback of an in-flight prefetch walk
// for (asid, vpn); the simulator's link pass rebinds restored prefetch walks
// to it.
func (t *L2TLB) PrefetchDone(asid uint8, appID int, vpn uint64) func(now int64, frame uint64) {
	return t.prefetchDone(l2key{asid: asid, vpn: vpn}, appID)
}
