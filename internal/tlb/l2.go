package tlb

import (
	"masksim/internal/engine"
	"masksim/internal/memreq"
)

// WalkStarter begins a page table walk; the walker queues internally, so
// StartWalk always succeeds. QueuedWalks exposes the backlog so the TLB can
// apply back-pressure instead of queueing walks without bound.
// StartPrefetchWalk is StartWalk for prediction-driven walks; the walker tags
// the walk's origin so checkpoint restore can rebind its completion callback
// (an L2 MSHR fill vs a prefetch install).
type WalkStarter interface {
	StartWalk(now int64, asid uint8, appID int, vpn uint64, done func(now int64, frame uint64))
	StartPrefetchWalk(now int64, asid uint8, appID int, vpn uint64, done func(now int64, frame uint64))
	QueuedWalks() int
}

// walkBacklogLimit is the walker backlog beyond which the shared TLB stalls
// its lookup ports. It models finite TLB MSHRs backing the walker: without
// it, thousands of walks could queue while the paper's hardware would have
// stalled the requesting warps much earlier.
const walkBacklogLimit = 64

// L2Config describes the shared L2 TLB (Table 1: 512 entries, 16-way, 2
// ports, 10-cycle latency).
type L2Config struct {
	Entries    int
	Ways       int
	Ports      int
	Latency    int64
	QueueCap   int
	BypassSize int // MASK TLB bypass cache entries (0 disables)
	NumApps    int
}

// AppTLBStats holds per-application shared-TLB counters; epoch counters are
// rolled by EpochRoll.
type AppTLBStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64

	epochAccesses uint64
	epochMisses   uint64
}

// MissRate returns the cumulative miss rate.
func (s AppTLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type l2key struct {
	asid uint8
	vpn  uint64
}

type l2entry struct {
	key   l2key
	frame uint64
	valid bool
	stamp int64
	// prefetched marks entries installed by the prefetcher and not yet hit;
	// a demand hit on one counts as a useful prefetch.
	prefetched bool
}

// l2miss tracks one outstanding shared-TLB miss. Miss objects recycle through
// the TLB's free list; done is bound once so a steady-state miss allocates
// neither the tracker nor the walk-completion closure.
type l2miss struct {
	key   l2key
	appID int
	reqs  []*memreq.TransReq

	done func(now int64, frame uint64)
}

// L2TLB is the shared, ASID-tagged second-level TLB. Under MASK it also owns
// the TLB bypass cache and consults the TokenPolicy on fills.
type L2TLB struct {
	cfg    L2Config
	sets   int
	lines  []l2entry
	stamp  int64
	in     *engine.Pipe[*memreq.TransReq]
	walker WalkStarter

	mshrs    map[l2key]*l2miss
	missFree []*l2miss
	// stalled holds lookups that missed while the walker backlog was full;
	// they retry (and may meanwhile hit a newly filled entry or merge into a
	// new MSHR) before fresh lookups are served.
	stalled []*memreq.TransReq

	tokens *TokenPolicy
	bypass *bypassCache

	// pf, when non-nil, predicts and prefetches translations (ext-prefetch).
	pf         *Prefetcher
	pfMapped   func(asid uint8, vpn uint64) bool
	pfInFlight map[l2key]bool

	apps []AppTLBStats
	// wayMask restricts fills per app (Static partitioning); empty disables.
	wayMask []uint64
}

// NewL2 builds the shared TLB. tokens may be nil (no token mechanism).
func NewL2(cfg L2Config, walker WalkStarter, tokens *TokenPolicy) *L2TLB {
	if cfg.Ways <= 0 || cfg.Entries < cfg.Ways {
		panic("tlb: invalid L2 TLB geometry")
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	t := &L2TLB{
		cfg:    cfg,
		sets:   cfg.Entries / cfg.Ways,
		lines:  make([]l2entry, cfg.Entries),
		in:     engine.NewPipe[*memreq.TransReq](cfg.Latency, cfg.QueueCap),
		walker: walker,
		mshrs:  make(map[l2key]*l2miss),
		tokens: tokens,
		apps:   make([]AppTLBStats, cfg.NumApps),
	}
	if cfg.BypassSize > 0 {
		t.bypass = newBypassCache(cfg.BypassSize)
	}
	return t
}

// SetWayPartition restricts each app's fills to a subset of ways (Static).
func (t *L2TLB) SetWayPartition(masks []uint64) { t.wayMask = masks }

// SetPrefetcher enables stride prefetching. mapped reports whether a VPN is
// mapped in the given address space (prefetching an unmapped page would
// fault).
func (t *L2TLB) SetPrefetcher(p *Prefetcher, mapped func(asid uint8, vpn uint64) bool) {
	t.pf = p
	t.pfMapped = mapped
	t.pfInFlight = make(map[l2key]bool)
}

// Prefetcher returns the attached prefetcher (nil when disabled).
func (t *L2TLB) Prefetcher() *Prefetcher { return t.pf }

// maybePrefetch issues a prediction-driven walk when the walker is idle.
func (t *L2TLB) maybePrefetch(now int64, asid uint8, appID int, vpn uint64) {
	if t.pf == nil {
		return
	}
	next, ok := t.pf.Observe(asid, vpn)
	if !ok || !t.pfMapped(asid, next) {
		return
	}
	key := l2key{asid, next}
	if t.pfInFlight[key] {
		return
	}
	if _, present := t.probe(key); present {
		return
	}
	if _, miss := t.mshrs[key]; miss {
		return
	}
	if t.walker.QueuedWalks() > 0 {
		return // never delay demand walks
	}
	t.pf.Stats.Issued++
	t.pfInFlight[key] = true
	t.walker.StartPrefetchWalk(now, asid, appID, next, t.prefetchDone(key, appID))
}

// prefetchDone builds the completion callback for a prefetch walk of key.
// Checkpoint restore rebuilds the identical callback for in-flight prefetch
// walks (the walker records only the walk's origin and coordinates).
func (t *L2TLB) prefetchDone(key l2key, appID int) func(now int64, frame uint64) {
	return func(dnow int64, frame uint64) {
		delete(t.pfInFlight, key)
		t.install(key, frame, appID)
		t.markPrefetched(key)
	}
}

func (t *L2TLB) markPrefetched(key l2key) {
	base := t.setOf(key) * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		e := &t.lines[base+w]
		if e.valid && e.key == key {
			e.prefetched = true
			return
		}
	}
}

// SubmitTrans implements TransBackend for the L1 TLBs.
func (t *L2TLB) SubmitTrans(now int64, tr *memreq.TransReq) bool {
	return t.in.Push(now, tr)
}

// Tick services up to Ports lookups whose access latency has elapsed.
// Lookups that missed while the walker backlog was full retry first; the
// backlog bound models finite TLB MSHR/walker queue capacity, so warps
// behind a full walker wait at the TLB rather than growing an unbounded
// hardware queue.
func (t *L2TLB) Tick(now int64) {
	for len(t.stalled) > 0 && t.walker.QueuedWalks() < walkBacklogLimit {
		tr := t.stalled[0]
		copy(t.stalled, t.stalled[1:])
		t.stalled = t.stalled[:len(t.stalled)-1]
		t.lookup(now, tr, false)
	}
	for i := 0; i < t.cfg.Ports; i++ {
		tr, ok := t.in.Pop(now)
		if !ok {
			return
		}
		t.lookup(now, tr, true)
	}
}

// NextEvent implements engine.EventSource. Stalled lookups force a tick at
// now only while the walker backlog has room: with the backlog full, Tick's
// drain loop is a no-op, and the backlog can only drain through a walker tick
// — the walker's (or its memory backend's) own horizon pins that cycle, after
// which this horizon recomputes. Otherwise the horizon is the input pipe's
// head arrival; fills are walk-completion callbacks and need no wakeup.
func (t *L2TLB) NextEvent(now int64) int64 {
	if len(t.stalled) > 0 && t.walker.QueuedWalks() < walkBacklogLimit {
		return now
	}
	return t.in.NextReady(now)
}

// lookup resolves one translation request. Stats are recorded at resolution:
// Accesses on first probe, Hits/Misses when the request hits, merges, or
// starts a walk.
func (t *L2TLB) lookup(now int64, tr *memreq.TransReq, first bool) {
	app := tr.AppID
	if first && app >= 0 && app < len(t.apps) {
		t.apps[app].Accesses++
		t.apps[app].epochAccesses++
	}
	key := l2key{tr.ASID, tr.VPN}
	if first {
		// The prefetcher observes the demand reference stream (hits and
		// misses alike); observing only misses would break its own stride
		// chain every time a prefetch becomes useful.
		t.maybePrefetch(now, key.asid, app, key.vpn)
	}

	// Probe the main TLB and the bypass cache in parallel (§5.2: "a hit in
	// either the TLB or the TLB bypass cache yields a TLB hit").
	if frame, ok := t.probe(key); ok {
		t.recordHit(app)
		tr.Complete(now, frame)
		return
	}
	if t.bypass != nil {
		if frame, ok := t.bypass.probe(key.asid, key.vpn); ok {
			t.recordHit(app)
			tr.Complete(now, frame)
			return
		}
	}

	if m, ok := t.mshrs[key]; ok {
		t.recordMiss(app)
		m.reqs = append(m.reqs, tr)
		return
	}
	if t.walker.QueuedWalks() >= walkBacklogLimit {
		// No walk slot: park the request; it retries next tick.
		t.stalled = append(t.stalled, tr)
		return
	}
	t.recordMiss(app)
	m := t.getMiss()
	m.key, m.appID = key, app
	m.reqs = append(m.reqs, tr)
	t.mshrs[key] = m
	t.walker.StartWalk(now, key.asid, app, key.vpn, m.done)
}

// getMiss takes a recycled miss tracker or builds one with its walk
// completion handler bound.
func (t *L2TLB) getMiss() *l2miss {
	if n := len(t.missFree); n > 0 {
		m := t.missFree[n-1]
		t.missFree[n-1] = nil
		t.missFree = t.missFree[:n-1]
		return m
	}
	return t.newMiss()
}

// newMiss allocates a miss tracker with its walk-completion handler bound.
func (t *L2TLB) newMiss() *l2miss {
	m := &l2miss{}
	m.done = func(dnow int64, frame uint64) { t.fill(dnow, m, frame) }
	return m
}

func (t *L2TLB) putMiss(m *l2miss) {
	for i := range m.reqs {
		m.reqs[i] = nil
	}
	m.reqs = m.reqs[:0]
	t.missFree = append(t.missFree, m)
}

func (t *L2TLB) recordMiss(app int) {
	if app >= 0 && app < len(t.apps) {
		t.apps[app].Misses++
		t.apps[app].epochMisses++
	}
}

func (t *L2TLB) recordHit(app int) {
	if app >= 0 && app < len(t.apps) {
		t.apps[app].Hits++
	}
}

func (t *L2TLB) probe(key l2key) (uint64, bool) {
	base := t.setOf(key) * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		e := &t.lines[base+w]
		if e.valid && e.key == key {
			t.stamp++
			e.stamp = t.stamp
			if e.prefetched {
				e.prefetched = false
				if t.pf != nil {
					t.pf.Stats.Useful++
				}
			}
			return e.frame, true
		}
	}
	return 0, false
}

func (t *L2TLB) setOf(key l2key) int {
	// Hash the VPN (and mix in the ASID) rather than indexing with its low
	// bits: GPGPU heaps allocate large-stride regions whose VPNs share low
	// bits, and a modulo index would collapse them onto a handful of sets.
	h := (key.vpn ^ uint64(key.asid)<<56) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(t.sets))
}

// fill completes a miss: install the translation (subject to TLB-Fill
// Tokens), then wake every merged requester.
func (t *L2TLB) fill(now int64, m *l2miss, frame uint64) {
	delete(t.mshrs, m.key)

	// The fill may enter the main TLB if any merged requester held a token;
	// otherwise it is buffered only in the bypass cache (§5.2).
	hasToken := t.tokens == nil || !t.tokens.Enabled()
	if !hasToken {
		for _, tr := range m.reqs {
			if tr.HasToken {
				hasToken = true
				break
			}
		}
	}
	if hasToken {
		t.install(m.key, frame, m.appID)
	} else if t.bypass != nil {
		t.bypass.fill(m.key.asid, m.key.vpn, frame)
	}

	for _, tr := range m.reqs {
		tr.Complete(now, frame)
	}
	t.putMiss(m)
}

func (t *L2TLB) install(key l2key, frame uint64, appID int) {
	base := t.setOf(key) * t.cfg.Ways
	victim := -1
	var victimStamp int64 = 1<<63 - 1
	var mask uint64 = ^uint64(0)
	if len(t.wayMask) > 0 && appID >= 0 && appID < len(t.wayMask) {
		mask = t.wayMask[appID]
	}
	for w := 0; w < t.cfg.Ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		e := &t.lines[base+w]
		if !e.valid {
			victim = w
			break
		}
		if e.stamp < victimStamp {
			victimStamp = e.stamp
			victim = w
		}
	}
	if victim < 0 {
		victim = 0
	}
	t.stamp++
	t.lines[base+victim] = l2entry{key: key, frame: frame, valid: true, stamp: t.stamp}
}

// PrefetchStats returns the prefetcher counters (zero when disabled).
func (t *L2TLB) PrefetchStats() PrefetchStats {
	if t.pf == nil {
		return PrefetchStats{}
	}
	return t.pf.Stats
}

// EpochRoll returns each app's shared-TLB miss rate over the epoch that just
// ended and starts a new epoch. The simulator feeds the result to
// TokenPolicy.Epoch.
func (t *L2TLB) EpochRoll() []float64 {
	rates := make([]float64, len(t.apps))
	for i := range t.apps {
		if t.apps[i].epochAccesses > 0 {
			rates[i] = float64(t.apps[i].epochMisses) / float64(t.apps[i].epochAccesses)
		}
		t.apps[i].epochAccesses = 0
		t.apps[i].epochMisses = 0
	}
	return rates
}

// Pressure implements the per-app metrics for the MASK DRAM scheduler
// (§5.4): the number of concurrent page walks and the average number of
// warps stalled per active miss. Both counters saturate at 63, matching the
// paper's 6-bit hardware counters; saturation also keeps the Silver-Queue
// quota split stable when both apps are far beyond the measurable range.
func (t *L2TLB) Pressure(app int) (conPTW, warpsStalled float64) {
	n := 0
	stalled := 0
	for _, m := range t.mshrs {
		if m.appID != app {
			continue
		}
		n++
		for _, tr := range m.reqs {
			stalled += tr.StalledWarps
		}
	}
	if n == 0 {
		return 0, 0
	}
	avg := float64(stalled) / float64(n)
	if n > 63 {
		n = 63
	}
	if avg > 63 {
		avg = 63
	}
	return float64(n), avg
}

// AppStats returns app's cumulative counters.
func (t *L2TLB) AppStats(app int) AppTLBStats {
	if app < 0 || app >= len(t.apps) {
		return AppTLBStats{}
	}
	return t.apps[app]
}

// TotalStats sums counters across apps.
func (t *L2TLB) TotalStats() AppTLBStats {
	var total AppTLBStats
	for _, s := range t.apps {
		total.Accesses += s.Accesses
		total.Hits += s.Hits
		total.Misses += s.Misses
	}
	return total
}

// BypassHitRate returns the TLB bypass cache hit rate (0 when disabled).
func (t *L2TLB) BypassHitRate() float64 {
	if t.bypass == nil {
		return 0
	}
	return t.bypass.hitRate()
}

// OutstandingMisses returns the number of active L2 TLB MSHRs.
func (t *L2TLB) OutstandingMisses() int { return len(t.mshrs) }

// QueueLen returns the number of lookups waiting to be served (input pipe
// plus stalled retries); the watchdog's diagnostic dump reports it.
func (t *L2TLB) QueueLen() int { return t.in.Len() + len(t.stalled) }

// FlushASID removes all entries belonging to asid from the main TLB and the
// bypass cache (TLB shootdown support, §5.5).
func (t *L2TLB) FlushASID(asid uint8) {
	for i := range t.lines {
		if t.lines[i].valid && t.lines[i].key.asid == asid {
			t.lines[i].valid = false
		}
	}
	if t.bypass != nil {
		t.bypass.flushASID(asid)
	}
}

// FlushFraction invalidates roughly the given fraction of entries
// (deterministically), modelling partial eviction across a context switch.
func (t *L2TLB) FlushFraction(fraction float64) {
	if fraction <= 0 {
		return
	}
	stride := 1
	if fraction < 1 {
		stride = int(1 / fraction)
		if stride < 1 {
			stride = 1
		}
	}
	for i := range t.lines {
		if i%stride == 0 {
			t.lines[i].valid = false
		}
	}
}
