package tlb

import (
	"testing"
	"testing/quick"

	"masksim/internal/memreq"
)

// fakeTransBackend records translation requests and answers on demand.
type fakeTransBackend struct {
	reqs   []*memreq.TransReq
	reject bool
}

func (f *fakeTransBackend) SubmitTrans(now int64, tr *memreq.TransReq) bool {
	if f.reject {
		return false
	}
	f.reqs = append(f.reqs, tr)
	return true
}

func (f *fakeTransBackend) answerAll(now int64, frame uint64) {
	reqs := f.reqs
	f.reqs = nil
	for _, tr := range reqs {
		tr.Done(now, frame)
	}
}

func TestL1MissThenHit(t *testing.T) {
	be := &fakeTransBackend{}
	l1 := NewL1(0, 0, 1, 4, be)
	var got uint64
	l1.Lookup(0, 0x10, 0, true, func(now int64, frame uint64) { got = frame })
	if len(be.reqs) != 1 {
		t.Fatalf("backend saw %d requests, want 1", len(be.reqs))
	}
	be.answerAll(5, 99)
	if got != 99 {
		t.Fatalf("translation returned %d, want 99", got)
	}
	// Second lookup hits without touching the backend.
	hit := false
	l1.Lookup(6, 0x10, 1, true, func(int64, uint64) { hit = true })
	if !hit || len(be.reqs) != 0 {
		t.Fatal("expected L1 hit")
	}
	if l1.Stats.Hits != 1 || l1.Stats.Misses != 1 {
		t.Fatalf("stats %+v", l1.Stats)
	}
}

func TestL1MSHRMergesWarps(t *testing.T) {
	be := &fakeTransBackend{}
	l1 := NewL1(0, 0, 1, 4, be)
	done := 0
	for w := 0; w < 5; w++ {
		l1.Lookup(0, 0x20, w, true, func(int64, uint64) { done++ })
	}
	if len(be.reqs) != 1 {
		t.Fatalf("merged miss sent %d backend requests", len(be.reqs))
	}
	if be.reqs[0].StalledWarps != 5 {
		t.Fatalf("StalledWarps=%d, want 5", be.reqs[0].StalledWarps)
	}
	be.answerAll(3, 7)
	if done != 5 {
		t.Fatalf("%d callbacks fired, want 5", done)
	}
	if l1.Stats.AvgStalledWarps() != 5 {
		t.Fatalf("AvgStalledWarps=%v, want 5", l1.Stats.AvgStalledWarps())
	}
}

func TestL1LRUEviction(t *testing.T) {
	be := &fakeTransBackend{}
	l1 := NewL1(0, 0, 1, 2, be)
	fill := func(vpn uint64) {
		l1.Lookup(0, vpn, 0, true, func(int64, uint64) {})
		be.answerAll(1, vpn+100)
	}
	fill(1)
	fill(2)
	// Touch 1 so 2 is LRU.
	l1.Lookup(2, 1, 0, true, func(int64, uint64) {})
	fill(3)
	if !l1.Contains(1) || !l1.Contains(3) || l1.Contains(2) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestL1BackendRejectionRetries(t *testing.T) {
	be := &fakeTransBackend{reject: true}
	l1 := NewL1(0, 0, 1, 4, be)
	got := false
	l1.Lookup(0, 0x30, 0, true, func(int64, uint64) { got = true })
	be.reject = false
	l1.Tick(1)
	if len(be.reqs) != 1 {
		t.Fatal("pending request not retried")
	}
	be.answerAll(2, 5)
	if !got {
		t.Fatal("request lost after retry")
	}
}

func TestL1FlushDropsEntries(t *testing.T) {
	be := &fakeTransBackend{}
	l1 := NewL1(0, 0, 1, 8, be)
	l1.Lookup(0, 0x40, 0, true, func(int64, uint64) {})
	be.answerAll(1, 9)
	l1.Flush()
	if l1.Entries() != 0 {
		t.Fatal("flush left entries")
	}
}

// fakeWalker implements WalkStarter.
type fakeWalker struct {
	walks  []func(int64, uint64)
	vpns   []uint64
	queued int
}

func (f *fakeWalker) StartWalk(now int64, asid uint8, appID int, vpn uint64, done func(int64, uint64)) {
	f.walks = append(f.walks, done)
	f.vpns = append(f.vpns, vpn)
}
func (f *fakeWalker) StartPrefetchWalk(now int64, asid uint8, appID int, vpn uint64, done func(int64, uint64)) {
	f.StartWalk(now, asid, appID, vpn, done)
}
func (f *fakeWalker) QueuedWalks() int { return f.queued }

func (f *fakeWalker) completeAll(now int64, frame uint64) {
	walks := f.walks
	f.walks = nil
	for _, done := range walks {
		done(now, frame)
	}
}

func newL2(numApps int, bypassSize int, tokens *TokenPolicy) (*L2TLB, *fakeWalker) {
	w := &fakeWalker{}
	l2 := NewL2(L2Config{
		Entries: 32, Ways: 4, Ports: 2, Latency: 1, QueueCap: 16,
		BypassSize: bypassSize, NumApps: numApps,
	}, w, tokens)
	return l2, w
}

func submitAndTick(t *testing.T, l2 *L2TLB, tr *memreq.TransReq, from, to int64) {
	t.Helper()
	if !l2.SubmitTrans(from, tr) {
		t.Fatal("SubmitTrans rejected")
	}
	for now := from; now <= to; now++ {
		l2.Tick(now)
	}
}

func TestL2MissWalkFill(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	var got uint64
	tr := &memreq.TransReq{ASID: 1, VPN: 0x100, Done: func(now int64, f uint64) { got = f }}
	submitAndTick(t, l2, tr, 0, 3)
	if len(w.walks) != 1 {
		t.Fatalf("walker saw %d walks, want 1", len(w.walks))
	}
	w.completeAll(10, 77)
	if got != 77 {
		t.Fatalf("translation=%d, want 77", got)
	}
	// Now it hits.
	hit := false
	tr2 := &memreq.TransReq{ASID: 1, VPN: 0x100, Done: func(int64, uint64) { hit = true }}
	submitAndTick(t, l2, tr2, 11, 14)
	if !hit || len(w.walks) != 0 {
		t.Fatal("expected shared TLB hit")
	}
	st := l2.AppStats(0)
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestL2ASIDIsolation(t *testing.T) {
	l2, w := newL2(2, 0, nil)
	tr := &memreq.TransReq{ASID: 1, VPN: 0x200, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, tr, 0, 3)
	w.completeAll(5, 42)
	// Same VPN, different ASID must MISS.
	tr2 := &memreq.TransReq{ASID: 2, AppID: 1, VPN: 0x200, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, tr2, 6, 9)
	if len(w.walks) != 1 {
		t.Fatal("cross-ASID access hit another space's translation")
	}
}

func TestL2MSHRMergesAcrossCores(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	done := 0
	for i := 0; i < 3; i++ {
		tr := &memreq.TransReq{ASID: 1, VPN: 0x300, CoreID: i, Done: func(int64, uint64) { done++ }}
		if !l2.SubmitTrans(0, tr) {
			t.Fatal("submit failed")
		}
	}
	for now := int64(0); now <= 3; now++ {
		l2.Tick(now)
	}
	if len(w.walks) != 1 {
		t.Fatalf("%d walks for one page, want 1 (merged)", len(w.walks))
	}
	w.completeAll(5, 9)
	if done != 3 {
		t.Fatalf("%d callbacks, want 3", done)
	}
}

func TestL2WalkBacklogStallsMisses(t *testing.T) {
	l2, w := newL2(1, 0, nil)
	w.queued = walkBacklogLimit // backlog full
	tr := &memreq.TransReq{ASID: 1, VPN: 0x400, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, tr, 0, 3)
	if len(w.walks) != 0 {
		t.Fatal("walk started despite full backlog")
	}
	w.queued = 0
	for now := int64(4); now <= 6; now++ {
		l2.Tick(now)
	}
	if len(w.walks) != 1 {
		t.Fatal("stalled miss never started its walk")
	}
}

func TestL2FlushASID(t *testing.T) {
	l2, w := newL2(2, 0, nil)
	for i, asid := range []uint8{1, 2} {
		tr := &memreq.TransReq{ASID: asid, AppID: i, VPN: 0x500, Done: func(int64, uint64) {}}
		submitAndTick(t, l2, tr, int64(i*10), int64(i*10+3))
		w.completeAll(int64(i*10+5), uint64(i+1))
	}
	l2.FlushASID(1)
	// ASID 1 must miss; ASID 2 must still hit.
	tr := &memreq.TransReq{ASID: 1, VPN: 0x500, Done: func(int64, uint64) {}}
	submitAndTick(t, l2, tr, 30, 33)
	if len(w.walks) != 1 {
		t.Fatal("flushed ASID still hits")
	}
	w.completeAll(35, 1)
	hit2 := false
	tr2 := &memreq.TransReq{ASID: 2, AppID: 1, VPN: 0x500, Done: func(int64, uint64) { hit2 = true }}
	submitAndTick(t, l2, tr2, 40, 43)
	if !hit2 {
		t.Fatal("unflushed ASID lost its entry")
	}
}

func TestTokenGatingFillsBypassCache(t *testing.T) {
	tokens := NewTokenPolicy(1, 64, 0.8, true)
	tokens.Epoch([]float64{0.5}) // end the first epoch so gating is active
	// Force a token count below 64 so warp 63 has no token.
	for tokens.Tokens(0) > 32 {
		tokens.Epoch([]float64{0.9})
	}
	l2, w := newL2(1, 4, tokens)

	// Token-less warp's fill must land in the bypass cache, not main TLB.
	tr := &memreq.TransReq{ASID: 1, VPN: 0x600, WarpID: 63, HasToken: tokens.HasToken(0, 63),
		Done: func(int64, uint64) {}}
	if tr.HasToken {
		t.Fatal("test setup: warp 63 unexpectedly has a token")
	}
	submitAndTick(t, l2, tr, 0, 3)
	w.completeAll(5, 11)
	if _, ok := l2.probe(l2key{1, 0x600}); ok {
		t.Fatal("token-less fill entered the main TLB")
	}
	// But a subsequent probe still hits via the bypass cache.
	hit := false
	tr2 := &memreq.TransReq{ASID: 1, VPN: 0x600, WarpID: 63, Done: func(int64, uint64) { hit = true }}
	submitAndTick(t, l2, tr2, 6, 9)
	if !hit {
		t.Fatal("bypass cache did not serve the translation")
	}
	if l2.BypassHitRate() <= 0 {
		t.Fatal("bypass cache hit not recorded")
	}
}

func TestTokenPolicyDisabled(t *testing.T) {
	p := NewTokenPolicy(2, 64, 0.8, false)
	if !p.HasToken(0, 63) || !p.HasToken(1, 0) {
		t.Fatal("disabled policy must grant all tokens")
	}
	p.Epoch([]float64{0.9, 0.9})
	if p.Tokens(0) != 51 { // untouched initial 80% of 64
		t.Fatalf("disabled policy adapted: %d", p.Tokens(0))
	}
}

func TestTokenPolicyFirstEpochGrantsAll(t *testing.T) {
	p := NewTokenPolicy(1, 64, 0.5, true)
	if !p.HasToken(0, 63) {
		t.Fatal("first epoch must not bypass (paper footnote 6)")
	}
	p.Epoch([]float64{0.9})
	if p.HasToken(0, 63) {
		t.Fatal("after first epoch, warp above token count kept its token")
	}
}

// Property: token counts stay within [1, warpsPerCore] under arbitrary
// miss-rate sequences.
func TestTokenBoundsProperty(t *testing.T) {
	f := func(rates []float64) bool {
		p := NewTokenPolicy(1, 64, 0.8, true)
		for _, r := range rates {
			if r < 0 {
				r = -r
			}
			for r > 1 {
				r /= 2
			}
			p.Epoch([]float64{r})
			if p.Tokens(0) < 1 || p.Tokens(0) > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBypassCacheLRU(t *testing.T) {
	b := newBypassCache(2)
	b.fill(1, 10, 100)
	b.fill(1, 20, 200)
	b.probe(1, 10) // 20 becomes LRU
	b.fill(1, 30, 300)
	if _, ok := b.probe(1, 20); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := b.probe(1, 10); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestPressureSaturatesAt6Bits(t *testing.T) {
	l2, _ := newL2(1, 0, nil)
	// Create 100 outstanding misses.
	for i := 0; i < 100; i++ {
		tr := &memreq.TransReq{ASID: 1, VPN: uint64(0x1000 + i), StalledWarps: 100,
			Done: func(int64, uint64) {}}
		l2.SubmitTrans(int64(i), tr)
	}
	for now := int64(0); now < 120; now++ {
		l2.Tick(now)
	}
	con, stalled := l2.Pressure(0)
	if con > 63 || stalled > 63 {
		t.Fatalf("pressure (%v,%v) exceeds 6-bit saturation", con, stalled)
	}
	if con == 0 {
		t.Fatal("no pressure measured despite outstanding misses")
	}
}
