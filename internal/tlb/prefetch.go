package tlb

// Prefetcher is a correlation (Markov) shared-TLB prefetcher in the spirit
// of the inter-core cooperative TLB prefetchers the paper discusses as
// related work (§8.2, Bhattacharjee & Martonosi). The paper argues such
// prefetchers are "likely to be less effective for multiple concurrent
// GPGPU applications, for which translations are not shared between virtual
// address spaces" — this implementation exists so that claim can be tested
// against MASK on the same substrate (experiment ext-prefetch).
//
// Per address space it records miss-to-miss VPN transitions in a bounded
// correlation table; when the current miss has a recorded successor, that
// successor is predicted. A simple stride predictor would never lock on
// here: the shared TLB's demand stream interleaves many warps, but repeated
// page *sequences* (streams re-walked by lagging warps, popular hot-page
// chains) recur and are exactly what a correlation table captures.
type Prefetcher struct {
	// next maps (asid, vpn) -> most recently observed successor VPN.
	next map[pfKey]uint64
	// order is a FIFO of inserted keys used for bounded eviction.
	order []pfKey
	cap   int
	last  map[uint8]uint64

	Stats PrefetchStats
}

type pfKey struct {
	asid uint8
	vpn  uint64
}

// PrefetchStats counts prefetcher activity and usefulness.
type PrefetchStats struct {
	Predictions uint64 // predictions produced
	Issued      uint64 // prefetch walks actually started
	Useful      uint64 // prefetched entries later hit by a demand probe
}

// Accuracy returns Useful/Issued.
func (s PrefetchStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// prefetchTableCap bounds the correlation table (hardware-plausible size).
const prefetchTableCap = 1024

// NewPrefetcher returns an empty correlation predictor.
func NewPrefetcher() *Prefetcher {
	return &Prefetcher{
		next: make(map[pfKey]uint64, prefetchTableCap),
		cap:  prefetchTableCap,
		last: make(map[uint8]uint64),
	}
}

// Observe records a demand reference for (asid, vpn) and returns the
// predicted next VPN when the correlation table has one.
func (p *Prefetcher) Observe(asid uint8, vpn uint64) (uint64, bool) {
	if lastVPN, seen := p.last[asid]; seen && lastVPN != vpn {
		key := pfKey{asid, lastVPN}
		if _, exists := p.next[key]; !exists {
			if len(p.next) >= p.cap {
				victim := p.order[0]
				copy(p.order, p.order[1:])
				p.order = p.order[:len(p.order)-1]
				delete(p.next, victim)
			}
			p.order = append(p.order, key)
		}
		p.next[key] = vpn
	}
	p.last[asid] = vpn

	if pred, ok := p.next[pfKey{asid, vpn}]; ok && pred != vpn {
		p.Stats.Predictions++
		return pred, true
	}
	return 0, false
}
