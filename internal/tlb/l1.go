// Package tlb implements the GPU's translation lookaside buffer hierarchy:
// per-core L1 TLBs, the shared, ASID-tagged L2 TLB, MASK's TLB-Fill Tokens
// with their bypass cache (§5.2), and the miss-status tracking that feeds
// the Address-Space-Aware DRAM scheduler's pressure metrics (§5.4).
package tlb

import (
	"masksim/internal/engine"
	"masksim/internal/memreq"
)

// TransBackend receives translation requests that miss in an L1 TLB — the
// shared L2 TLB under the SharedTLB/MASK designs, or the page table walker
// directly under the PWCache design.
type TransBackend interface {
	SubmitTrans(now int64, tr *memreq.TransReq) bool
}

// L1Stats aggregates per-core L1 TLB counters.
type L1Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	// StalledWarpSamples records, for each completed miss, how many warps
	// were blocked waiting on it (the Figure 6 metric).
	StalledWarpSum   uint64
	StalledWarpCount uint64
}

// MissRate returns Misses/Accesses, or 0 with no traffic.
func (s L1Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AvgStalledWarps returns the mean number of warps blocked per TLB miss.
func (s L1Stats) AvgStalledWarps() float64 {
	if s.StalledWarpCount == 0 {
		return 0
	}
	return float64(s.StalledWarpSum) / float64(s.StalledWarpCount)
}

type l1entry struct {
	vpn   uint64
	frame uint64
	stamp int64
}

// l1miss tracks one outstanding translation. Miss objects are recycled
// through the TLB's free list; done is bound once at first allocation so a
// steady-state miss allocates neither the tracker nor its fill closure.
type l1miss struct {
	vpn uint64
	tr  *memreq.TransReq
	// waiting holds the completion callbacks of every warp blocked on this
	// translation.
	waiting []func(now int64, frame uint64)

	done func(now int64, frame uint64)
}

// L1TLB is a private, per-core, fully-associative TLB (Table 1: 64 entries,
// LRU, 1-cycle). The one-cycle latency is charged by the core model.
type L1TLB struct {
	coreID  int
	appID   int
	asid    uint8
	size    int
	entries map[uint64]*l1entry
	stamp   int64
	backend TransBackend

	mshrs   map[uint64]*l1miss
	pending []*memreq.TransReq

	// retryHold, when set and reporting true, makes Tick a no-op. The
	// simulator's sharded plan ticks L1 TLBs inside the parallel core phase,
	// where the backend is a deferring exchange buffer; retrying there would
	// reorder pending submissions around the cycle's fresh lookups, so the
	// hold keeps retries out of the buffer and the barrier drain replays them
	// via RetryPending in the sequential engine's order instead.
	retryHold func() bool

	// entryBuf batch-allocates the TLB's steady-state entry objects: insert
	// carves new entries out of it until the TLB is full, after which the
	// eviction path recycles existing objects. One construction allocation
	// replaces size per-insert ones.
	entryBuf  []l1entry
	entryUsed int

	missFree []*l1miss
	// pool recycles translation requests; NewL1 creates a private pool, the
	// simulator injects its shared one.
	pool *memreq.TransPool

	Stats L1Stats
}

// NewL1 builds an L1 TLB of the given size for one core.
func NewL1(coreID, appID int, asid uint8, size int, backend TransBackend) *L1TLB {
	return &L1TLB{
		coreID:   coreID,
		appID:    appID,
		asid:     asid,
		size:     size,
		entries:  make(map[uint64]*l1entry, size),
		mshrs:    make(map[uint64]*l1miss),
		backend:  backend,
		pool:     &memreq.TransPool{},
		entryBuf: make([]l1entry, size),
	}
}

// SetTransPool replaces the TLB's private translation-request pool with a
// shared per-simulator one. Must be called before simulation starts.
func (t *L1TLB) SetTransPool(p *memreq.TransPool) { t.pool = p }

// getMiss takes a recycled miss tracker or builds one with its fill handler
// bound.
func (t *L1TLB) getMiss() *l1miss {
	if n := len(t.missFree); n > 0 {
		m := t.missFree[n-1]
		t.missFree[n-1] = nil
		t.missFree = t.missFree[:n-1]
		return m
	}
	return t.newMiss()
}

// newMiss allocates a miss tracker with its fill handler bound.
func (t *L1TLB) newMiss() *l1miss {
	m := &l1miss{}
	m.done = func(dnow int64, frame uint64) { t.fill(dnow, m, frame) }
	return m
}

func (t *L1TLB) putMiss(m *l1miss) {
	m.tr = nil
	for i := range m.waiting {
		m.waiting[i] = nil
	}
	m.waiting = m.waiting[:0]
	t.missFree = append(t.missFree, m)
}

// Lookup translates vpn for warpID. On a hit, done is invoked immediately
// (the core charges the 1-cycle access latency). On a miss the warp is
// recorded against the miss and done fires when the translation returns.
// hasToken is the warp's TLB-Fill Token state, propagated so the shared L2
// TLB can apply MASK's fill policy.
func (t *L1TLB) Lookup(now int64, vpn uint64, warpID int, hasToken bool, done func(now int64, frame uint64)) {
	t.Stats.Accesses++
	if e, ok := t.entries[vpn]; ok {
		t.Stats.Hits++
		t.stamp++
		e.stamp = t.stamp
		done(now, e.frame)
		return
	}
	t.Stats.Misses++
	if m, ok := t.mshrs[vpn]; ok {
		m.waiting = append(m.waiting, done)
		m.tr.StalledWarps++
		return
	}
	tr := t.pool.Get()
	tr.AppID, tr.ASID, tr.CoreID, tr.WarpID = t.appID, t.asid, t.coreID, warpID
	tr.VPN, tr.HasToken, tr.Issue, tr.StalledWarps = vpn, hasToken, now, 1
	m := t.getMiss()
	m.vpn, m.tr = vpn, tr
	m.waiting = append(m.waiting, done)
	t.mshrs[vpn] = m
	tr.Done = m.done
	if !t.backend.SubmitTrans(now, tr) {
		t.pending = append(t.pending, tr)
	}
}

// fill installs the translation, wakes every blocked warp, recycles the miss
// tracker, and records the stalled-warp sample for the Figure 6 metric.
func (t *L1TLB) fill(now int64, m *l1miss, frame uint64) {
	if cur, ok := t.mshrs[m.vpn]; !ok || cur != m {
		return // flushed while in flight; the stale tracker is abandoned
	}
	vpn := m.vpn
	delete(t.mshrs, vpn)
	t.insert(vpn, frame)
	t.Stats.StalledWarpSum += uint64(len(m.waiting))
	t.Stats.StalledWarpCount++
	for _, cb := range m.waiting {
		cb(now, frame)
	}
	t.putMiss(m)
}

func (t *L1TLB) insert(vpn, frame uint64) {
	t.stamp++
	if e, ok := t.entries[vpn]; ok {
		e.frame = frame
		e.stamp = t.stamp
		return
	}
	if len(t.entries) >= t.size {
		// Evict the LRU entry and reuse its object for the new translation.
		var victim uint64
		var victimStamp int64 = 1<<63 - 1
		for vpn, e := range t.entries {
			if e.stamp < victimStamp {
				victimStamp = e.stamp
				victim = vpn
			}
		}
		e := t.entries[victim]
		delete(t.entries, victim)
		e.vpn, e.frame, e.stamp = vpn, frame, t.stamp
		t.entries[vpn] = e
		return
	}
	var e *l1entry
	if t.entryUsed < len(t.entryBuf) {
		e = &t.entryBuf[t.entryUsed]
		t.entryUsed++
	} else {
		// Flush dropped the original objects; allocate replacements.
		e = &l1entry{}
	}
	e.vpn, e.frame, e.stamp = vpn, frame, t.stamp
	t.entries[vpn] = e
}

// PushPending appends a refused translation request to the retry list, in
// submission order. The simulator's sharded drain uses it: during the
// parallel core phase the TLB's backend defers every SubmitTrans into an
// exchange buffer, and the barrier replays them — failures land here exactly
// as the sequential path's inline append would have.
func (t *L1TLB) PushPending(tr *memreq.TransReq) {
	t.pending = append(t.pending, tr)
}

// SetRetryHold installs the predicate that suppresses Tick's retry loop (see
// the retryHold field). Must be set before simulation starts.
func (t *L1TLB) SetRetryHold(held func() bool) { t.retryHold = held }

// Tick retries backend submissions that were refused, unless a retry hold is
// in effect (sharded parallel phase; the drain calls RetryPending instead).
func (t *L1TLB) Tick(now int64) {
	if t.retryHold != nil && t.retryHold() {
		return
	}
	t.RetryPending(now)
}

// RetryPending resubmits the pending list in order, keeping what the backend
// still refuses.
func (t *L1TLB) RetryPending(now int64) {
	if len(t.pending) == 0 {
		return
	}
	nkeep := 0
	for _, tr := range t.pending {
		if !t.backend.SubmitTrans(now, tr) {
			t.pending[nkeep] = tr
			nkeep++
		}
	}
	t.pending = t.pending[:nkeep]
}

// NextEvent implements engine.EventSource: the TLB acts on its own only to
// retry refused backend submissions; everything else (lookups, fills) happens
// inside callers' calls and completion callbacks.
func (t *L1TLB) NextEvent(now int64) int64 {
	if len(t.pending) > 0 {
		return now
	}
	return engine.NoEvent
}

// Flush empties the TLB (e.g. on an address-space switch). In-flight misses
// are dropped; their warps are woken with the returned frame when the walk
// completes via the stale MSHR map, so Flush also abandons the MSHRs after
// waking waiters with the eventual translation. To keep the model simple and
// live, Flush only clears cached entries; outstanding walks still complete
// and wake their warps.
func (t *L1TLB) Flush() {
	t.entries = make(map[uint64]*l1entry, t.size)
}

// Entries returns the number of valid entries (test helper).
func (t *L1TLB) Entries() int { return len(t.entries) }

// OutstandingMisses returns the number of active miss entries.
func (t *L1TLB) OutstandingMisses() int { return len(t.mshrs) }

// Contains reports whether vpn is cached (test helper).
func (t *L1TLB) Contains(vpn uint64) bool {
	_, ok := t.entries[vpn]
	return ok
}

// FlushFraction drops roughly the given fraction of cached entries
// (deterministically), modelling partial eviction across a context switch.
func (t *L1TLB) FlushFraction(fraction float64) {
	if fraction <= 0 {
		return
	}
	if fraction >= 1 {
		t.Flush()
		return
	}
	stride := int(1 / fraction)
	if stride < 1 {
		stride = 1
	}
	i := 0
	for vpn := range t.entries {
		if i%stride == 0 {
			delete(t.entries, vpn)
		}
		i++
	}
}
