// Benchmarks regenerating each of the paper's tables and figures on a
// reduced scale (fewer cycles and the representative pair subset) so that
// `go test -bench=.` completes in reasonable time on one machine. Use
// `cmd/maskexp -full` for the full-scale regeneration.
package masksim

import (
	"context"
	"testing"

	"masksim/internal/experiments"
)

// benchCycles keeps each experiment benchmark short; the shapes (who wins,
// roughly by what factor) are stable at this scale, per EXPERIMENTS.md.
const benchCycles = 6_000

func runExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, benchCycles, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkFig1TimeMultiplexing(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFig3Baselines(b *testing.B)        { runExperiment(b, "fig3") }
func BenchmarkFig5ConcurrentWalks(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig6StalledWarps(b *testing.B)     { runExperiment(b, "fig6") }
func BenchmarkFig7TLBInterference(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8DRAMBandwidth(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkFig9DRAMLatency(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig11Throughput(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12ZeroHMR(b *testing.B)         { runExperiment(b, "fig12") }
func BenchmarkFig13OneHMR(b *testing.B)          { runExperiment(b, "fig13") }
func BenchmarkFig14TwoHMR(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15Unfairness(b *testing.B)      { runExperiment(b, "fig15") }
func BenchmarkTab3Scalability(b *testing.B)      { runExperiment(b, "tab3") }
func BenchmarkTab4Generality(b *testing.B)       { runExperiment(b, "tab4") }
func BenchmarkCompTLBTokens(b *testing.B)        { runExperiment(b, "comp-tlb") }
func BenchmarkCompL2Bypass(b *testing.B)         { runExperiment(b, "comp-cache") }
func BenchmarkCompDRAMSched(b *testing.B)        { runExperiment(b, "comp-dram") }
func BenchmarkSensTLBSize(b *testing.B)          { runExperiment(b, "sens-tlbsize") }
func BenchmarkSensPageSize(b *testing.B)         { runExperiment(b, "sens-pagesize") }
func BenchmarkSensMemPolicy(b *testing.B)        { runExperiment(b, "sens-memsched") }
func BenchmarkStorageAccounting(b *testing.B)    { runExperiment(b, "storage") }
func BenchmarkCalibrationMatrix(b *testing.B)    { runExperiment(b, "calib") }
func BenchmarkAnatomy(b *testing.B)              { runExperiment(b, "anatomy") }
func BenchmarkAblation(b *testing.B)             { runExperiment(b, "ablate") }
func BenchmarkExtPaging(b *testing.B)            { runExperiment(b, "ext-paging") }
func BenchmarkExtPrefetch(b *testing.B)          { runExperiment(b, "ext-prefetch") }
func BenchmarkSensTokens(b *testing.B)           { runExperiment(b, "sens-tokens") }
func BenchmarkSensWarpSched(b *testing.B)        { runExperiment(b, "sens-warpsched") }

// BenchmarkSimulatorKernel measures raw simulation speed (cycles/op) of the
// contended reference pair on the full MASK configuration — the simulator's
// hot loop.
func BenchmarkSimulatorKernel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := MASKConfig()
		if _, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, benchCycles); err != nil {
			b.Fatal(err)
		}
	}
}

// allocBudget is the checked-in allocation ceiling for one
// BenchmarkSimulatorKernel iteration (simulator construction plus a
// benchCycles run of the contended MASK pair). Request/walk pooling brought
// the iteration from ~554k allocations down to ~59k — almost all of it
// one-time construction and pool warm-up — so the budget mostly guards the
// steady state: reintroducing a per-request or per-walk allocation on the hot
// path blows well past it. Raise it only with a profile in hand showing the
// new allocations are construction-time.
const allocBudget = 90_000

// TestAllocBudget is the allocation-regression gate CI runs on every change.
func TestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate skipped in -short mode")
	}
	allocs := testing.AllocsPerRun(1, func() {
		cfg := MASKConfig()
		if _, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, benchCycles); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > allocBudget {
		t.Fatalf("simulator kernel allocated %.0f objects per run, budget is %d; "+
			"profile with -memprofile before raising the budget", allocs, allocBudget)
	}
}

// TestAllocBudgetSharded re-runs the allocation gate with sharded execution:
// the fused barrier must be allocation-free per cycle — exchange buffers are
// reused across cycles ([:0] reset), barrier rounds are pure atomics with
// pre-built per-slot wake channels, reduced cycles allocate nothing — so the
// only sharding overhead against the budget is one-time plan construction
// and (with more than one CPU) goroutine start-up.
func TestAllocBudgetSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate skipped in -short mode")
	}
	allocs := testing.AllocsPerRun(1, func() {
		cfg := MASKConfig()
		cfg.Shards = 2
		if _, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, benchCycles); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > allocBudget {
		t.Fatalf("simulator kernel (sharded) allocated %.0f objects per run, budget is %d; "+
			"a per-cycle allocation crept into the barrier or the exchange buffers", allocs, allocBudget)
	}
}

// BenchmarkSimulatorKernelSharded is BenchmarkSimulatorKernel at -shards 2:
// comparing the two measures the barrier overhead (and, with more than one
// CPU, the intra-simulation speedup).
func BenchmarkSimulatorKernelSharded(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := MASKConfig()
		cfg.Shards = 2
		if _, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, benchCycles); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTelemetry runs the kernel benchmark with the given telemetry epoch;
// comparing the two benchmarks below bounds the subsystem's overhead. The
// acceptance target is <= ~2% when disabled (the pull-based design adds no
// per-event work) and modest when enabled at a realistic epoch.
func benchTelemetry(b *testing.B, epoch int64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := MASKConfig()
		cfg.TelemetryEpoch = epoch
		res, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		if epoch > 0 && res.Telemetry == nil {
			b.Fatal("telemetry enabled but no data collected")
		}
	}
}

func BenchmarkTelemetryDisabled(b *testing.B) { benchTelemetry(b, 0) }
func BenchmarkTelemetryEnabled(b *testing.B)  { benchTelemetry(b, 1000) }

// benchFastForward measures event-horizon fast-forward on the TLB-miss-heavy
// MUM+GUP pair with demand paging: major faults drain the whole machine for
// tens of thousands of cycles at a time, so almost the entire run is globally
// quiescent and skippable. Results are bit-identical either way
// (TestFastForwardEquivalence); only the cycles-ticked count and the
// wall-clock change.
func benchFastForward(b *testing.B, ff bool) {
	b.ReportAllocs()
	var ticked, skipped int64
	for i := 0; i < b.N; i++ {
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		cfg.DemandPaging = true
		res, err := Run(context.Background(), cfg, []string{"MUM", "GUP"}, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		ticked, skipped = res.CyclesTicked, res.CyclesSkipped
	}
	b.ReportMetric(float64(ticked), "cycles-ticked")
	b.ReportMetric(float64(ticked+skipped), "cycles-simulated")
}

func BenchmarkFastForwardOn(b *testing.B)  { benchFastForward(b, true) }
func BenchmarkFastForwardOff(b *testing.B) { benchFastForward(b, false) }

// benchFastForwardSaturated bounds the horizon-scan overhead in the regime
// fast-forward cannot help: the contended MASK pair ticks nearly every cycle
// (64 concurrent walks keep the L2 cache and DRAM busy), so the on/off delta
// here is the pure cost of probing every component's NextEvent per cycle.
func benchFastForwardSaturated(b *testing.B, ff bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := MASKConfig()
		cfg.FastForward = ff
		if _, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, benchCycles); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastForwardSaturatedOn(b *testing.B)  { benchFastForwardSaturated(b, true) }
func BenchmarkFastForwardSaturatedOff(b *testing.B) { benchFastForwardSaturated(b, false) }

// TestAllocBudgetFastForwardOff re-runs the allocation gate with fast-forward
// disabled: the -no-fastforward escape hatch must not regress allocation
// behaviour either (TestAllocBudget covers the default fast-forward path).
func TestAllocBudgetFastForwardOff(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate skipped in -short mode")
	}
	allocs := testing.AllocsPerRun(1, func() {
		cfg := MASKConfig()
		cfg.FastForward = false
		if _, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, benchCycles); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > allocBudget {
		t.Fatalf("simulator kernel (fast-forward off) allocated %.0f objects per run, budget is %d",
			allocs, allocBudget)
	}
}
