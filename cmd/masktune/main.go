// Command masktune is a calibration aid: it sweeps global scale factors over
// the workload profiles and reports, for each candidate, the shape
// indicators that the reproduction must satisfy (baseline-vs-Ideal gap, sign
// and size of each MASK mechanism's effect). It exists so that workload
// recalibration is reproducible rather than hand-tuned.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"

	"masksim/internal/workload"
	"masksim/sim"
)

type scale struct {
	shf float64 // ScatterHotFrac override
	dps float64 // DivergeProb multiplier
	hot float64 // HotBytes multiplier
}

func mutate(p workload.Profile, s scale) workload.Profile {
	if p.Divergence > 1 {
		p.ScatterHotFrac = s.shf
		p.DivergeProb *= s.dps
		if p.DivergeProb > 1 {
			p.DivergeProb = 1
		}
	}
	p.HotBytes = int(float64(p.HotBytes) * s.hot)
	return p
}

func run(cfg sim.Config, pair [2]string, s scale, cycles int64) (*sim.Results, error) {
	apps := []workload.App{workload.NewApp(0, pair[0]), workload.NewApp(1, pair[1])}
	for i := range apps {
		apps[i].Profile = mutate(apps[i].Profile, s)
	}
	simu, err := sim.New(cfg, apps, sim.EvenSplit(cfg.Cores, 2))
	if err != nil {
		return nil, err
	}
	return simu.Run(context.Background(), cycles)
}

func main() {
	cycles := flag.Int64("cycles", 15_000, "cycles per run")
	flag.Parse()

	pairs := [][2]string{{"3DS", "CONS"}, {"HISTO", "GUP"}}
	configs := []string{"Ideal", "SharedTLB", "MASK-TLB", "MASK-Cache", "MASK-DRAM", "MASK"}

	grid := []scale{
		{shf: 0.7, dps: 1, hot: 1},
		{shf: 0.7, dps: 2, hot: 1},
		{shf: 0.7, dps: 3, hot: 1},
		{shf: 0.7, dps: 4, hot: 1},
	}

	type key struct {
		g    int
		pair int
		cfg  int
	}
	results := make(map[key]*sim.Results)
	var firstErr error
	var mu sync.Mutex
	sem := make(chan struct{}, 16)
	var wg sync.WaitGroup
	for gi, g := range grid {
		for pi, p := range pairs {
			for ci, cn := range configs {
				wg.Add(1)
				go func(gi, pi, ci int, g scale, p [2]string, cn string) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					cfg, _ := sim.ConfigByName(cn)
					r, err := run(cfg, p, g, *cycles)
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					results[key{gi, pi, ci}] = r
					mu.Unlock()
				}(gi, pi, ci, g, p, cn)
			}
		}
	}
	wg.Wait()
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, "masktune:", firstErr)
		os.Exit(1)
	}

	for gi, g := range grid {
		fmt.Printf("== shf=%.1f dps=%.1f ==\n", g.shf, g.dps)
		for pi, p := range pairs {
			ideal := results[key{gi, pi, 0}].TotalIPC
			base := results[key{gi, pi, 1}].TotalIPC
			fmt.Printf("  %s_%s: base/ideal=%.2f", p[0], p[1], base/ideal)
			for ci := 2; ci < len(configs); ci++ {
				r := results[key{gi, pi, ci}]
				fmt.Printf("  %s=%+.1f%%", configs[ci], 100*(r.TotalIPC/base-1))
			}
			b := results[key{gi, pi, 1}]
			fmt.Printf("  [L2m=%.0f/%.0f%% wlk=%.0f@%.0fcy]\n",
				100*b.Apps[0].L2TLB.MissRate(), 100*b.Apps[1].L2TLB.MissRate(),
				b.Walker.AvgConcurrent(), b.Walker.AvgLatency())
		}
	}
}
