// Command masksim runs one multiprogrammed workload on one simulated GPU
// configuration and prints the collected statistics.
//
// Usage:
//
//	masksim -config MASK -apps 3DS,HISTO -cycles 100000
//	masksim -config SharedTLB -apps RED_RAY -cycles 50000 -speedup
//	masksim -config MASK -apps 3DS,HISTO -cycles 100000 \
//	        -checkpoint-dir ckpt -checkpoint-every 10000 -restore
//	masksim -tracefiles mum.trace.gz,gup.mtb -cycles 100000
//	masksim -config MASK -apps 3DS,HISTO -epoch 1000 \
//	        -telemetry-csv tel.csv -stream
//	masksim -list
//
// With -speedup, each app is additionally run alone on the same core count
// to report weighted speedup, IPC throughput, and unfairness.
//
// -tracefiles accepts both trace formats described in docs/FORMATS.md — the
// textual format and the indexed binary .mtb format — transparently
// gzip-decompressed when compressed, with identical simulation results
// regardless of encoding.
//
// With -stream, telemetry exports are written incrementally as each epoch
// closes instead of being buffered until the end of the run, holding
// telemetry memory constant in the run length; the bytes produced are
// identical to the buffered exports. Combined with -restore, a resumed run
// truncates each output to the checkpoint's recorded offset and continues
// it byte-identically.
//
// With -checkpoint-dir, the run writes an atomic, checksummed checkpoint of
// the full simulator state every -checkpoint-every cycles, plus a final one
// on SIGINT/SIGTERM (the run stops, prints partial results, and the
// checkpoint captures the stopping cycle) and a crash dump if the watchdog
// aborts. Restarting with the same flags and -restore resumes from the
// newest valid checkpoint and prints results bit-identical to an
// uninterrupted run; corrupt or mismatched checkpoint files are skipped in
// favor of older ones (or a clean start) and reported on stderr.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"masksim/internal/faultinject"
	"masksim/internal/streamio"
	"masksim/internal/telemetry"
	"masksim/internal/workload"
	"masksim/sim"
)

func main() {
	var (
		configName = flag.String("config", "MASK", "configuration: "+strings.Join(sim.ConfigNames(), ", "))
		appsFlag   = flag.String("apps", "3DS,HISTO", "comma- or underscore-separated benchmark names")
		cycles     = flag.Int64("cycles", 100_000, "simulation length in core cycles")
		speedup    = flag.Bool("speedup", false, "also run each app alone and report multiprogramming metrics")
		list       = flag.Bool("list", false, "list benchmarks and configurations, then exit")
		trace      = flag.String("trace", "", "write a CSV time series (IPC, TLB miss rate, walks, tokens) to this file")
		traceEvery = flag.Int64("trace-interval", 1000, "trace sampling interval in cycles")
		epoch      = flag.Int64("epoch", 0, "telemetry sampling epoch in cycles (0 = telemetry off; see docs/OBSERVABILITY.md)")
		chromeOut  = flag.String("chrome-trace", "", "write a Chrome trace_event JSON (Perfetto-loadable) to this file; implies -epoch 1000 if unset")
		telCSV     = flag.String("telemetry-csv", "", "write the telemetry epoch time series as CSV to this file; implies -epoch 1000 if unset")
		telJSONL   = flag.String("telemetry-jsonl", "", "write telemetry samples and events as JSONL to this file; implies -epoch 1000 if unset")
		stream     = flag.Bool("stream", false, "stream the telemetry exports incrementally as each epoch closes (O(1) memory) instead of buffering the full series; requires at least one telemetry output flag")
		paging     = flag.Bool("paging", false, "enable the demand-paging extension (paper §5.5)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none); partial results are printed on expiry")
		noFF       = flag.Bool("no-fastforward", false, "disable event-horizon fast-forward (tick every cycle); results are bit-identical either way")
		shards     = flag.Int("shards", 1, "worker goroutines ticking the simulation (1 = sequential, 0 = derive from GOMAXPROCS); results are bit-identical at any count")
		noBatch    = flag.Bool("no-shard-batch", false, "disable quiescent-cycle batching under -shards (wake workers every cycle); results are bit-identical either way")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile (taken at exit, after a GC) to this file")
		traceFiles = flag.String("tracefiles", "", "comma-separated trace files to run instead of -apps (see workload.ParseTrace for the format)")
		ckptDir    = flag.String("checkpoint-dir", "", "write mid-run checkpoints (and watchdog crash dumps) to this directory")
		ckptEvery  = flag.Int64("checkpoint-every", 10_000, "cycles between checkpoints (with -checkpoint-dir)")
		restore    = flag.Bool("restore", false, "resume from the newest valid checkpoint in -checkpoint-dir before simulating")
		killAt     = flag.Int64("kill-at-cycle", 0, "TESTING: hard-exit (code 137, like SIGKILL) at this simulated cycle; with -checkpoint-dir this deterministically exercises kill-and-restore")
		inspect    = flag.String("inspect-checkpoint", "", "describe a checkpoint file (header, checksum, per-component state sizes) and exit")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectCheckpoint(os.Stdout, *inspect); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		fmt.Println("configurations:", strings.Join(sim.ConfigNames(), " "))
		fmt.Println("benchmarks:", strings.Join(workload.Names(), " "))
		return
	}

	cfg, err := sim.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	names := splitApps(*appsFlag)
	if len(names) == 0 {
		fatal(fmt.Errorf("no applications given"))
	}

	if *trace != "" {
		cfg.TraceInterval = *traceEvery
	}
	if (*chromeOut != "" || *telCSV != "" || *telJSONL != "") && *epoch <= 0 {
		*epoch = 1000
	}
	if *epoch > 0 {
		cfg.TelemetryEpoch = *epoch
	}
	if *paging {
		cfg.DemandPaging = true
	}
	if *noFF {
		cfg.FastForward = false
	}
	if *shards < 0 {
		fatal(fmt.Errorf("-shards must be >= 0, got %d", *shards))
	}
	var shardWarn string
	cfg.Shards, shardWarn = sim.ResolveShards(*shards)
	if shardWarn != "" {
		fmt.Fprintln(os.Stderr, "masksim:", shardWarn)
	}
	if *noBatch {
		cfg.ShardBatch = false
	}
	if *ckptDir != "" {
		cfg.CheckpointDir = *ckptDir
		cfg.CheckpointEvery = *ckptEvery
		cfg.Resume = *restore
	} else if *restore {
		fatal(fmt.Errorf("-restore requires -checkpoint-dir"))
	}
	if *killAt > 0 {
		cfg.FaultPlan = &faultinject.Plan{KillAtCycle: *killAt, AllowKill: true}
	}
	// Profiles bracket everything from here on (the run, telemetry export,
	// -speedup alone-runs). Explicit stop calls rather than a defer: the error
	// paths leave via os.Exit, which runs no defers.
	if stop, err := startProfiles(*cpuProf, *memProf); err != nil {
		fatal(err)
	} else {
		stopProfiles = stop
	}

	// -stream attaches a streaming sink: each telemetry output receives its
	// epochs as they close instead of a full-series export after the run, so
	// telemetry memory stays O(1) in the run length. With -restore the files
	// are opened without truncation; a restored sink cuts each one back to its
	// checkpointed offset and continues byte-identically.
	var sink *telemetry.StreamSink
	var sinkOuts []io.WriteCloser
	if *stream {
		open := streamio.Create
		if *restore {
			open = streamio.CreateResumable
		}
		sink = telemetry.NewStreamSink()
		for _, o := range []struct {
			format telemetry.Format
			path   string
		}{
			{telemetry.FormatCSV, *telCSV},
			{telemetry.FormatJSONL, *telJSONL},
			{telemetry.FormatChrome, *chromeOut},
		} {
			if o.path == "" {
				continue
			}
			w, err := open(o.path)
			if err != nil {
				fatal(err)
			}
			sinkOuts = append(sinkOuts, w)
			if err := sink.Attach(o.format, w); err != nil {
				fatal(err)
			}
		}
		if len(sinkOuts) == 0 {
			fatal(fmt.Errorf("-stream requires a telemetry output flag (-chrome-trace, -telemetry-csv, or -telemetry-jsonl)"))
		}
		cfg.TelemetrySink = sink
	}
	// SIGINT and SIGTERM stop the run gracefully: partial results are printed
	// and, with -checkpoint-dir, a final checkpoint records the stopping cycle
	// so -restore can pick the run back up.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *sim.Results
	var err2 error
	if *traceFiles != "" {
		res, err2 = runTraceFiles(ctx, cfg, strings.Split(*traceFiles, ","), *cycles)
	} else {
		s, err := sim.Prepare(cfg, names)
		if err != nil {
			fatal(err)
		}
		res, err2 = s.Run(ctx, *cycles)
		if *ckptDir != "" {
			// Stats go to stderr so checkpointed and clean runs stay
			// byte-identical on stdout.
			cs := s.CheckpointStats()
			fmt.Fprintf(os.Stderr, "masksim: checkpoints: taken=%d restored=%d rejected=%d\n",
				cs.Taken, cs.Restored, cs.Rejected)
		}
	}
	if err2 != nil && res == nil {
		// Config/build errors: report cleanly, no stack trace.
		fatal(err2)
	}
	fmt.Print(res)
	// Telemetry exports are written even for aborted runs: the partial time
	// series and the watchdog.abort instant event are exactly what one wants
	// when debugging a wedged run. In streaming mode the epochs already went
	// straight to the files; closing the sink writes the tails and surfaces
	// any deferred write error.
	if sink != nil {
		if err := closeSink(sink, sinkOuts, *restore); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "masksim: telemetry streamed: %d bytes across %d outputs\n",
			sink.BytesWritten(), len(sinkOuts))
	} else if res.Telemetry != nil {
		if *chromeOut != "" {
			if err := writeTelemetry(*chromeOut, res.Telemetry.WriteChromeTrace); err != nil {
				fatal(err)
			}
			fmt.Printf("chrome trace: %d samples written to %s (open in ui.perfetto.dev)\n",
				len(res.Telemetry.Samples), *chromeOut)
		}
		if *telCSV != "" {
			if err := writeTelemetry(*telCSV, res.Telemetry.WriteCSV); err != nil {
				fatal(err)
			}
			fmt.Printf("telemetry CSV: %d samples x %d columns written to %s\n",
				len(res.Telemetry.Samples), len(res.Telemetry.Columns), *telCSV)
		}
		if *telJSONL != "" {
			if err := writeTelemetry(*telJSONL, res.Telemetry.WriteJSONL); err != nil {
				fatal(err)
			}
			fmt.Printf("telemetry JSONL: %d samples x %d columns written to %s\n",
				len(res.Telemetry.Samples), len(res.Telemetry.Columns), *telJSONL)
		}
	}
	if err2 != nil {
		// Aborted run (watchdog, timeout, interrupt): the partial results
		// above are still useful; report why and exit non-zero.
		stopProfiles()
		fmt.Fprintln(os.Stderr, "masksim:", err2)
		os.Exit(1)
	}
	if *trace != "" {
		if err := writeTraceCSV(*trace, res); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d samples written to %s\n", len(res.Trace), *trace)
	}

	if *speedup {
		// IPC_alone runs on the same platform under the SharedTLB design
		// with full, unpartitioned resources (the paper's normalization).
		aloneCfg := cfg
		aloneCfg.Ideal = false
		aloneCfg.Static = false
		aloneCfg.Mask = sim.Mechanisms{}
		aloneCfg.Design = sim.DesignSharedTLB
		aloneCfg.TimeMuxQuantum = 0
		split := sim.EvenSplit(cfg.Cores, len(names))
		alone := make([]float64, len(names))
		for i, n := range names {
			ar, err := sim.RunAlone(ctx, aloneCfg, n, split[i], *cycles)
			if err != nil {
				fatal(err)
			}
			alone[i] = ar.Apps[0].IPC
		}
		m := res.Metrics(alone)
		fmt.Printf("weighted speedup = %.3f   IPC throughput = %.3f   unfairness (max slowdown) = %.3f\n",
			m.WeightedSpeedup, m.IPCThroughput, m.Unfairness)
	}
	stopProfiles()
}

// stopProfiles finishes the -cpuprofile/-memprofile outputs; a no-op until
// startProfiles installs the real closer. fatal() and the abort path call it
// so profiles survive error exits.
var stopProfiles = func() {}

// startProfiles starts a CPU profile and/or arranges a heap profile, returning
// the function that stops the former and writes the latter.
func startProfiles(cpu, mem string) (func(), error) {
	stop := func() {}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if mem != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "masksim: memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "masksim: memprofile:", err)
			}
			f.Close()
		}
	}
	return stop, nil
}

// splitApps accepts both "A,B" and the paper's "A_B" pair syntax.
func splitApps(s string) []string {
	f := func(r rune) bool { return r == ',' || r == '_' }
	return strings.FieldsFunc(s, f)
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "masksim:", err)
	os.Exit(1)
}

// writeTelemetry creates path (gzip-compressing ".gz" names) and streams one
// telemetry export into it.
func writeTelemetry(path string, write func(w io.Writer) error) error {
	f, err := streamio.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// closeSink finishes a streaming telemetry run: the sink writes its trailing
// epochs and flushes, then each output file is closed. Outputs opened
// resumably may still hold stale bytes from the interrupted run beyond the
// resumed stream's end (the restore truncates to the checkpoint offset, not
// the final length), so those are cut at the current write position.
func closeSink(sink *telemetry.StreamSink, outs []io.WriteCloser, resumable bool) error {
	err := sink.Close()
	for _, w := range outs {
		if t, ok := w.(streamio.Truncater); ok && resumable && err == nil {
			if pos, serr := t.Seek(0, io.SeekCurrent); serr == nil {
				t.Truncate(pos)
			}
		}
		if cerr := w.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// runTraceFiles loads external traces — text or binary .mtb, either gzipped —
// and runs them as the workload.
func runTraceFiles(ctx context.Context, cfg sim.Config, paths []string, cycles int64) (*sim.Results, error) {
	var apps []workload.App
	for i, path := range paths {
		ts, err := workload.LoadTraceFile(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		apps = append(apps, workload.App{ID: i, Trace: ts})
	}
	s, err := sim.New(cfg, apps, sim.EvenSplit(cfg.Cores, len(apps)))
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, cycles)
}

// writeTraceCSV dumps the sampled time series for plotting.
func writeTraceCSV(path string, res *sim.Results) error {
	f, err := streamio.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "cycle,ipc,l2tlb_miss_rate,concurrent_walks,outstanding_faults")
	if len(res.Trace) > 0 {
		for i := range res.Trace[0].TokensPerApp {
			fmt.Fprintf(w, ",tokens_app%d", i)
		}
	}
	fmt.Fprintln(w)
	for _, s := range res.Trace {
		fmt.Fprintf(w, "%d,%.4f,%.4f,%d,%d", s.Cycle, s.IPC, s.L2TLBMissRate, s.ConcurrentWalks, s.OutstandingFaults)
		for _, tok := range s.TokensPerApp {
			fmt.Fprintf(w, ",%d", tok)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
