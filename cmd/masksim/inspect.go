package main

// masksim -inspect-checkpoint: a human-readable dump of one checkpoint file.
// Lenient by design — a corrupt file still prints whatever the envelope
// preserved, and the exit status is non-zero only when the file cannot be
// read at all.

import (
	"fmt"
	"io"

	"masksim/sim"
)

func inspectCheckpoint(w io.Writer, path string) error {
	info, err := sim.InspectCheckpoint(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "checkpoint: %s (%d bytes)\n", info.Path, info.Size)
	fmt.Fprintf(w, "  version:     %d\n", info.Version)
	status := "ok"
	if !info.ChecksumOK {
		status = "MISMATCH"
	}
	fmt.Fprintf(w, "  checksum:    %s\n", status)
	if info.Err != nil {
		fmt.Fprintf(w, "  defect:      %v\n", info.Err)
	}
	fmt.Fprintf(w, "  fingerprint: %s\n", info.Header.Fingerprint)
	fmt.Fprintf(w, "  cycle:       %d / %d\n", info.Header.Cycle, info.Header.TotalCycles)
	fmt.Fprintf(w, "  payload:     %d bytes\n", info.PayloadLen)
	if !info.PayloadOK {
		if info.PayloadErr != nil {
			fmt.Fprintf(w, "  payload defect: %v\n", info.PayloadErr)
		}
		return nil
	}
	fmt.Fprintf(w, "  clock:       now=%d ticked=%d skipped=%d\n",
		info.Clock.Now, info.Clock.Ticked, info.Clock.Skipped)
	fmt.Fprintf(w, "  in-flight:   %d requests, %d translations, %d group syncs\n",
		info.Requests, info.TransReqs, info.Syncs)
	var extras []string
	if info.HasWatchdog {
		extras = append(extras, "watchdog")
	}
	if info.HasATA {
		extras = append(extras, "l2-bypass")
	}
	if info.HasFaultPlan {
		extras = append(extras, "fault-plan")
	}
	if info.TraceSamples > 0 {
		extras = append(extras, fmt.Sprintf("%d trace samples", info.TraceSamples))
	}
	if len(extras) > 0 {
		fmt.Fprintf(w, "  carries:     %v\n", extras)
	}
	fmt.Fprintf(w, "  components (%d, by serialized size):\n", len(info.Components))
	for _, c := range info.Components {
		fmt.Fprintf(w, "    %-28s %8d bytes  (ticker %d)\n", c.Type, c.Bytes, c.Index)
	}
	return nil
}
