// Command maskexp regenerates the paper's tables and figures.
//
// Usage:
//
//	maskexp [-cycles N] [-full] <experiment-id>...
//	maskexp -list
//	maskexp all
//
// Experiment IDs follow DESIGN.md's per-experiment index (fig1, fig3, ...,
// tab3, tab4, comp-*, sens-*). Without -full, figure-11-class experiments
// use the representative pair subset to stay fast; -full runs all 35 pairs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"masksim/internal/experiments"
)

func main() {
	var (
		cycles = flag.Int64("cycles", 50_000, "simulated cycles per run")
		full   = flag.Bool("full", false, "use all 35 workload pairs (slower)")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-14s %s\n", id, experiments.Describe(id))
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "maskexp: no experiment given; try -list")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.IDs()
	}
	for _, id := range args {
		tables, err := experiments.Run(id, *cycles, *full)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maskexp:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "maskexp:", err)
					os.Exit(1)
				}
			}
		}
	}
}
