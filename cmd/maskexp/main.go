// Command maskexp regenerates the paper's tables and figures.
//
// Usage:
//
//	maskexp [-cycles N] [-full] [-workers N] [-timeout D] [-cache-dir DIR]
//	        [-checkpoint-dir DIR] [-checkpoint-every N]
//	        [-remote URL] [-api-key KEY]
//	        [-max-fail-frac F] <experiment-id>...
//	maskexp -list
//	maskexp all
//
// Experiment IDs follow DESIGN.md's per-experiment index (fig1, fig3, ...,
// tab3, tab4, comp-*, sens-*). Without -full, figure-11-class experiments
// use the representative pair subset to stay fast; -full runs all 35 pairs.
//
// All requested experiments run as one campaign over a single shared harness
// and result cache: experiments execute concurrently under the global
// -workers budget, and any two requests for the same (config, apps, cycles)
// simulation share one execution. Tables still print in the requested order,
// byte-identical to a sequential run. With -cache-dir, completed results are
// also persisted to disk so an interrupted campaign resumes without redoing
// finished cells. The campaign-wide run accounting (including cache
// hit/miss/inflight counters, and checkpoint taken/restored/rejected counts
// when -checkpoint-dir is set) is always printed to stderr at the end.
//
// With -remote, the campaign consults a maskd server's shared
// content-addressed store before simulating any cell and publishes completed
// results back, so a fleet of maskexp invocations across machines executes
// each distinct simulation once fleet-wide (see docs/SERVICE.md). The store
// is best-effort: an unreachable server degrades to local execution.
//
// With -checkpoint-dir, every in-flight simulation also writes periodic
// mid-run checkpoints (-checkpoint-every cycles apart) and resumes from them,
// so a campaign killed outright — not just interrupted between cells — loses
// at most one checkpoint interval of each in-flight run when restarted with
// the same flags.
//
// Individual simulation failures (panics, watchdog aborts, per-run timeouts)
// do not kill the campaign: the failed cell is recorded, means are computed
// over the surviving cells, and a failure summary is printed at the end.
// The exit status is non-zero only when the failed fraction of runs exceeds
// -max-fail-frac (default 0: any failure fails the command), an experiment
// produces no tables, or a CSV write fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"masksim/internal/experiments"
	"masksim/internal/maskd"
	"masksim/internal/streamio"
	"masksim/sim"
)

func main() {
	var (
		cycles      = flag.Int64("cycles", 50_000, "simulated cycles per run")
		full        = flag.Bool("full", false, "use all 35 workload pairs (slower)")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir      = flag.String("csv", "", "also write each table as CSV into this directory")
		workers     = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 1, "worker goroutines per simulation (1 = sequential, 0 = derive from GOMAXPROCS); results are bit-identical at any count")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget per simulation run (0 = none)")
		cacheDir    = flag.String("cache-dir", "", "persist completed simulation results here and reuse them on later runs")
		ckptDir     = flag.String("checkpoint-dir", "", "write mid-run checkpoints here and resume interrupted runs from them")
		ckptEvery   = flag.Int64("checkpoint-every", 10_000, "cycles between mid-run checkpoints (with -checkpoint-dir)")
		maxFailFrac = flag.Float64("max-fail-frac", 0, "tolerated fraction of failed runs before exiting non-zero")
		remote      = flag.String("remote", "", "maskd server URL: consult its shared result store before simulating and publish completed results back")
		apiKey      = flag.String("api-key", "", "tenant API key for -remote")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-14s %s\n", id, experiments.Describe(id))
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "maskexp: no experiment given; try -list")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.IDs()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "maskexp:", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "maskexp: -shards must be >= 0, got %d\n", *shards)
		os.Exit(2)
	}
	var shardWarn string
	*shards, shardWarn = sim.ResolveShards(*shards)
	if shardWarn != "" {
		fmt.Fprintln(os.Stderr, "maskexp:", shardWarn)
	}
	opt := experiments.Options{
		Cycles:          *cycles,
		Full:            *full,
		Workers:         *workers,
		Shards:          *shards,
		Ctx:             ctx,
		RunTimeout:      *timeout,
		CacheDir:        *cacheDir,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
	}
	var store *maskd.Client
	if *remote != "" {
		store = &maskd.Client{Base: *remote, APIKey: *apiKey}
		opt.Remote = store
	}
	camp := experiments.RunCampaign(args, opt)

	var broken []string
	var csvErrs []error
	for _, rep := range camp.Reports {
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "maskexp: %s: %v\n", rep.ID, rep.Err)
			broken = append(broken, rep.ID)
			continue
		}
		for _, t := range rep.Tables {
			fmt.Println(t)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, t.ID+".csv")
				if err := writeTableCSV(path, t); err != nil {
					csvErrs = append(csvErrs, err)
				}
			}
		}
	}

	total := camp.Stats
	fmt.Fprintf(os.Stderr, "maskexp: %s\n", total.String())
	if store != nil {
		if n := store.TransportErrors(); n > 0 {
			fmt.Fprintf(os.Stderr, "maskexp: remote: %d store round-trips failed (fell back to local execution)\n", n)
		}
	}
	for _, f := range camp.Failures {
		fmt.Fprintf(os.Stderr, "maskexp:   %v\n", f)
	}
	for _, id := range broken {
		fmt.Fprintf(os.Stderr, "maskexp: experiment %s did not produce tables\n", id)
	}
	for _, err := range csvErrs {
		fmt.Fprintf(os.Stderr, "maskexp: csv: %v\n", err)
	}
	if frac := total.FailureFrac(); len(broken) > 0 || len(csvErrs) > 0 || frac > *maxFailFrac {
		if frac > *maxFailFrac {
			fmt.Fprintf(os.Stderr, "maskexp: failure fraction %.3f exceeds -max-fail-frac %.3f\n", frac, *maxFailFrac)
		}
		os.Exit(1)
	}
}

// writeTableCSV streams one result table into path (gzip-compressed for ".gz"
// names), propagating the first write error.
func writeTableCSV(path string, t *experiments.Table) error {
	f, err := streamio.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
