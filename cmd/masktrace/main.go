// Command masktrace runs one multiprogrammed workload with the telemetry
// subsystem enabled and exports the collected time series as a Chrome
// trace_event JSON (loadable in ui.perfetto.dev or chrome://tracing) plus
// optional CSV/JSONL companions.
//
// Usage:
//
//	masktrace -config MASK -apps 3DS,CONS -cycles 50000 -out trace.json
//	masktrace -apps RED_RAY -epoch 500 -out trace.json -csv series.csv
//	masktrace -apps 3DS,CONS -out trace.json -check
//
// With -check the written trace is re-read and validated (monotonic
// timestamps, required fields); CI uses this as an end-to-end smoke test.
// See docs/OBSERVABILITY.md for the probe catalogue.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"masksim/internal/telemetry"
	"masksim/sim"
)

func main() {
	var (
		configName = flag.String("config", "MASK", "configuration: "+strings.Join(sim.ConfigNames(), ", "))
		appsFlag   = flag.String("apps", "3DS,CONS", "comma- or underscore-separated benchmark names")
		cycles     = flag.Int64("cycles", 50_000, "simulation length in core cycles")
		epoch      = flag.Int64("epoch", 1000, "telemetry sampling epoch in cycles")
		out        = flag.String("out", "trace.json", "Chrome trace_event JSON output path")
		csvOut     = flag.String("csv", "", "also write the epoch time series as CSV to this file")
		jsonlOut   = flag.String("jsonl", "", "also write samples and events as JSONL to this file")
		check      = flag.Bool("check", false, "re-read and validate the written trace, exiting non-zero on failure")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	)
	flag.Parse()

	cfg, err := sim.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	cfg.TelemetryEpoch = *epoch
	names := strings.FieldsFunc(*appsFlag, func(r rune) bool { return r == ',' || r == '_' })
	if len(names) == 0 {
		fatal(fmt.Errorf("no applications given"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, runErr := sim.Run(ctx, cfg, names, *cycles)
	if runErr != nil && res == nil {
		fatal(runErr)
	}
	if res.Telemetry == nil {
		fatal(fmt.Errorf("run produced no telemetry (epoch %d)", *epoch))
	}
	d := res.Telemetry

	if err := writeTo(*out, d.WriteChromeTrace); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d samples, %d columns, %d events (epoch %d cycles)\n",
		*out, len(d.Samples), len(d.Columns), len(d.Events), d.Epoch)
	if *csvOut != "" {
		if err := writeTo(*csvOut, d.WriteCSV); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: epoch time series\n", *csvOut)
	}
	if *jsonlOut != "" {
		if err := writeTo(*jsonlOut, d.WriteJSONL); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: samples and events\n", *jsonlOut)
	}

	if *check {
		f, err := os.Open(*out)
		if err != nil {
			fatal(err)
		}
		n, err := telemetry.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("trace validation failed: %w", err))
		}
		fmt.Printf("check: %d trace events validated\n", n)
	}

	if runErr != nil {
		// Aborted run: the exports above carry the partial series and the
		// watchdog.abort event; report why and exit non-zero.
		fmt.Fprintln(os.Stderr, "masktrace:", runErr)
		os.Exit(1)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "masktrace:", err)
	os.Exit(1)
}
