// Command masktrace runs one multiprogrammed workload with the telemetry
// subsystem enabled and exports the collected time series as a Chrome
// trace_event JSON (loadable in ui.perfetto.dev or chrome://tracing) plus
// optional CSV/JSONL companions.
//
// Usage:
//
//	masktrace -config MASK -apps 3DS,CONS -cycles 50000 -out trace.json
//	masktrace -apps RED_RAY -epoch 500 -out trace.json -csv series.csv
//	masktrace -apps 3DS,CONS -out trace.json -check
//	masktrace convert mum.trace mum.mtb
//	masktrace convert mum.mtb mum.trace.gz
//	masktrace info mum.mtb
//
// With -check the written trace is re-read and validated (monotonic
// timestamps, required fields); CI uses this as an end-to-end smoke test.
// See docs/OBSERVABILITY.md for the probe catalogue.
//
// The convert subcommand rewrites a memory trace between the two supported
// encodings (docs/FORMATS.md): the input format is sniffed from its leading
// bytes (text or binary .mtb, either gzip-compressed), the output format is
// chosen by extension — ".mtb" writes the indexed binary format, anything
// else the canonical text format, gzip-compressed when the name ends in
// ".gz". The info subcommand prints an .mtb file's footer index without
// decoding the warp sections.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"masksim/internal/streamio"
	"masksim/internal/telemetry"
	"masksim/internal/workload"
	"masksim/sim"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "convert":
			if err := convertCmd(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		case "info":
			if err := infoCmd(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
	}
	var (
		configName = flag.String("config", "MASK", "configuration: "+strings.Join(sim.ConfigNames(), ", "))
		appsFlag   = flag.String("apps", "3DS,CONS", "comma- or underscore-separated benchmark names")
		cycles     = flag.Int64("cycles", 50_000, "simulation length in core cycles")
		epoch      = flag.Int64("epoch", 1000, "telemetry sampling epoch in cycles")
		out        = flag.String("out", "trace.json", "Chrome trace_event JSON output path")
		csvOut     = flag.String("csv", "", "also write the epoch time series as CSV to this file")
		jsonlOut   = flag.String("jsonl", "", "also write samples and events as JSONL to this file")
		check      = flag.Bool("check", false, "re-read and validate the written trace, exiting non-zero on failure")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	)
	flag.Parse()

	cfg, err := sim.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	cfg.TelemetryEpoch = *epoch
	names := strings.FieldsFunc(*appsFlag, func(r rune) bool { return r == ',' || r == '_' })
	if len(names) == 0 {
		fatal(fmt.Errorf("no applications given"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, runErr := sim.Run(ctx, cfg, names, *cycles)
	if runErr != nil && res == nil {
		fatal(runErr)
	}
	if res.Telemetry == nil {
		fatal(fmt.Errorf("run produced no telemetry (epoch %d)", *epoch))
	}
	d := res.Telemetry

	if err := writeTo(*out, d.WriteChromeTrace); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d samples, %d columns, %d events (epoch %d cycles)\n",
		*out, len(d.Samples), len(d.Columns), len(d.Events), d.Epoch)
	if *csvOut != "" {
		if err := writeTo(*csvOut, d.WriteCSV); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: epoch time series\n", *csvOut)
	}
	if *jsonlOut != "" {
		if err := writeTo(*jsonlOut, d.WriteJSONL); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: samples and events\n", *jsonlOut)
	}

	if *check {
		f, err := streamio.Open(*out)
		if err != nil {
			fatal(err)
		}
		n, err := telemetry.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("trace validation failed: %w", err))
		}
		fmt.Printf("check: %d trace events validated\n", n)
	}

	if runErr != nil {
		// Aborted run: the exports above carry the partial series and the
		// watchdog.abort event; report why and exit non-zero.
		fmt.Fprintln(os.Stderr, "masktrace:", runErr)
		os.Exit(1)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := streamio.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "masktrace:", err)
	os.Exit(1)
}

// convertCmd implements "masktrace convert <in> <out>": load a trace in
// either format (sniffed) and rewrite it in the format the output extension
// names. Conversion round-trips exactly — text -> .mtb -> text reproduces
// the canonical rendering of the input.
func convertCmd(args []string) error {
	fs := flag.NewFlagSet("masktrace convert", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: masktrace convert <in[.trace|.mtb][.gz]> <out[.trace|.mtb][.gz]>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	in, out := fs.Arg(0), fs.Arg(1)

	ts, err := workload.LoadTraceFile(in)
	if err != nil {
		return err
	}
	f, err := streamio.Create(out)
	if err != nil {
		return err
	}
	if strings.HasSuffix(strings.TrimSuffix(out, ".gz"), ".mtb") {
		err = ts.EncodeMTB(f)
	} else {
		err = ts.WriteText(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	entries := 0
	for _, w := range ts.Warps {
		entries += len(w)
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "masktrace: %s: %d warps, %d entries -> %s (%d bytes)\n",
		in, len(ts.Warps), entries, out, st.Size())
	return nil
}

// infoCmd implements "masktrace info <file.mtb>": print the footer index —
// warp count and per-section byte extents — without decoding any section.
func infoCmd(args []string) error {
	fs := flag.NewFlagSet("masktrace info", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: masktrace info <file.mtb>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	ix, err := workload.ReadMTBIndex(f, st.Size())
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes, %d warp sections\n", path, st.Size(), ix.Warps())
	for i := range ix.Offsets {
		fmt.Printf("  warp %3d: offset %8d  length %8d\n", i, ix.Offsets[i], ix.Lengths[i])
	}
	return nil
}
