// Command maskd serves simulation campaigns over HTTP: a
// simulation-as-a-service daemon with per-tenant fairness and a shared
// content-addressed result store (docs/SERVICE.md).
//
// Usage:
//
//	maskd -addr :7070 -cache-dir /var/cache/masksim -workers 8
//	maskd -addr :7070 -cache-dir store -reserve 2 \
//	      -tenant-rate 0.5 -tenant-burst 5 \
//	      -gc-max-bytes 10737418240 -gc-max-age 168h -gc-every 1h
//
// Jobs (experiment sets or raw simulation specs) are submitted as JSON to
// POST /v1/jobs, identified by the X-API-Key tenant header, and polled via
// GET /v1/jobs/{id} (long-poll with ?since=V&wait=D) or streamed via
// GET /v1/jobs/{id}/events (server-sent events). All jobs share one
// content-addressed single-flight result cache, so identical requests from
// any number of clients execute each distinct simulation exactly once.
// Execution slots are spread across tenants Silver-Queue style: every tenant
// with queued work is guaranteed -reserve slots before anyone gets surplus.
//
// The on-disk cache doubles as a shared store: remote maskexp -remote
// campaigns GET and PUT entries by fingerprint via /v1/cache/{key}. A
// size/age retention policy garbage-collects the store and checkpoint
// directories in the background.
//
// SIGTERM/SIGINT drain gracefully: new submissions get 503, running jobs
// finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"masksim/internal/maskd"
	"masksim/internal/simcache"
)

func main() {
	var (
		addr         = flag.String("addr", ":7070", "listen address")
		cacheDir     = flag.String("cache-dir", "", "on-disk result store (shared content-addressed cache); empty = in-memory dedup only")
		ckptDir      = flag.String("checkpoint-dir", "", "mid-run checkpoint directory for server-side executions")
		ckptEvery    = flag.Int64("checkpoint-every", 10_000, "cycles between mid-run checkpoints (with -checkpoint-dir)")
		workers      = flag.Int("workers", 4, "machine-wide execution slots")
		reserve      = flag.Int("reserve", 1, "guaranteed execution slots per tenant with queued work")
		tenantRate   = flag.Float64("tenant-rate", 0, "admission quota: jobs per second per tenant (0 = unlimited)")
		tenantBurst  = flag.Float64("tenant-burst", 5, "admission quota bucket size")
		maxJobs      = flag.Int("max-active-jobs", 64, "queued+running job bound before submissions get 429 (0 = unlimited)")
		runTimeout   = flag.Duration("run-timeout", 0, "wall-clock budget per simulation (0 = none)")
		gcMaxBytes   = flag.Int64("gc-max-bytes", 0, "retention: total store+checkpoint size cap in bytes (0 = unbounded)")
		gcMaxAge     = flag.Duration("gc-max-age", 0, "retention: age limit for superseded artifacts (0 = none)")
		gcKeep       = flag.Int("gc-keep-per-key", 1, "retention: newest files kept per fingerprint")
		gcEvery      = flag.Duration("gc-every", time.Hour, "retention sweep cadence (0 = no background GC)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "graceful shutdown budget before in-flight jobs are canceled")
	)
	flag.Parse()

	srv, err := maskd.NewServer(maskd.Config{
		CacheDir:        *cacheDir,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Workers:         *workers,
		Reserve:         *reserve,
		TenantRate:      *tenantRate,
		TenantBurst:     *tenantBurst,
		MaxActiveJobs:   *maxJobs,
		RunTimeout:      *runTimeout,
		GC: simcache.GCPolicy{
			MaxBytes:   *gcMaxBytes,
			MaxAge:     *gcMaxAge,
			KeepPerKey: *gcKeep,
		},
		GCEvery: *gcEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "maskd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "maskd: listening on %s (workers=%d reserve=%d store=%q)\n",
		*addr, *workers, *reserve, *cacheDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "maskd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "maskd: %v: draining (budget %s)\n", sig, *drainTimeout)
	}

	// Drain: stop admitting, let running jobs finish, then stop serving. A
	// second signal — or the budget expiring — cancels in-flight jobs.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "maskd: second signal: canceling in-flight jobs")
		srv.CancelAll()
	}()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "maskd: drain expired: canceling in-flight jobs")
		srv.CancelAll()
		srv.Drain(context.Background())
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	hs.Shutdown(shutdownCtx)
	fmt.Fprintln(os.Stderr, "maskd: drained, bye")
}
