// Package masksim is a from-scratch reproduction of MASK (Ausavarungnirun
// et al., ASPLOS 2018): a cycle-level simulator of a multi-application GPU
// and its virtual-memory hierarchy, together with the paper's three
// address-translation-aware mechanisms — TLB-Fill Tokens, the
// Address-Translation-Aware L2 Bypass, and the Address-Space-Aware DRAM
// scheduler.
//
// The public API lives in masksim/sim; this package re-exports the common
// entry points so a downstream user can write:
//
//	cfg := masksim.MASKConfig()
//	res, err := masksim.Run(context.Background(), cfg, []string{"3DS", "HISTO"}, 100_000)
//
// See README.md for a tour and DESIGN.md for the system inventory.
package masksim

import "masksim/sim"

// Re-exported core types.
type (
	// Config describes the simulated GPU (see sim.Config).
	Config = sim.Config
	// Results holds a run's measurements (see sim.Results).
	Results = sim.Results
	// Simulator is a wired simulated GPU (see sim.Simulator).
	Simulator = sim.Simulator
	// Mechanisms toggles MASK's three components.
	Mechanisms = sim.Mechanisms
	// PairMetrics bundles weighted speedup, IPC throughput and unfairness.
	PairMetrics = sim.PairMetrics
)

// Re-exported constructors and helpers.
var (
	// New wires a simulator for explicit applications and core assignments.
	New = sim.New
	// Run simulates the named benchmarks with an even core split, supervised
	// by the given context (cancellation, wall-clock budgets).
	Run = sim.Run
	// RunAlone measures one app with uncontended resources (IPC_alone).
	RunAlone = sim.RunAlone
	// EvenSplit divides cores across n applications.
	EvenSplit = sim.EvenSplit
	// ConfigByName resolves a standard configuration name.
	ConfigByName = sim.ConfigByName
	// ConfigNames lists the standard configurations in evaluation order.
	ConfigNames = sim.ConfigNames

	// Standard configurations (paper §7).
	SharedTLBConfig = sim.SharedTLBConfig
	PWCacheConfig   = sim.PWCacheConfig
	StaticConfig    = sim.StaticConfig
	IdealConfig     = sim.IdealConfig
	MASKConfig      = sim.MASKConfig
	MASKTLBConfig   = sim.MASKTLBConfig
	MASKCacheConfig = sim.MASKCacheConfig
	MASKDRAMConfig  = sim.MASKDRAMConfig
	FermiConfig     = sim.FermiConfig
)
