// Scheduler: watch the memory hierarchy's translation/data interplay on an
// interference-heavy pair under four DRAM/cache policies — baseline
// FR-FCFS, plain FCFS, MASK's Address-Space-Aware scheduler, and full MASK.
//
//	go run ./examples/scheduler
package main

import (
	"context"
	"fmt"
	"log"

	"masksim/internal/memreq"
	"masksim/sim"
)

func main() {
	const cycles = 25_000
	pair := []string{"SCAN", "CONS"} // the paper's Silver-Queue case study pair

	type variant struct {
		name string
		cfg  sim.Config
	}
	frfcfs := sim.SharedTLBConfig()
	fcfs := sim.SharedTLBConfig()
	fcfs.FCFSSched = true
	maskDRAM := sim.MASKDRAMConfig()
	mask := sim.MASKConfig()

	fmt.Println("policy          totalIPC  transDRAMLat  dataDRAMLat  transBW%  walkLat")
	for _, v := range []variant{
		{"FR-FCFS", frfcfs},
		{"FCFS", fcfs},
		{"MASK-DRAM", maskDRAM},
		{"MASK (full)", mask},
	} {
		res, err := sim.Run(context.Background(), v.cfg, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s  %-8.2f  %-12.0f  %-11.0f  %-8.2f  %.0f\n",
			v.name, res.TotalIPC,
			res.DRAMClass[memreq.Translation].AvgLatency(),
			res.DRAMClass[memreq.Data].AvgLatency(),
			100*res.DRAMBandwidthUtil[memreq.Translation],
			res.Walker.AvgLatency())
	}

	fmt.Println("\nper-app IPC (fairness view):")
	for _, v := range []variant{{"FR-FCFS", frfcfs}, {"MASK (full)", mask}} {
		res, err := sim.Run(context.Background(), v.cfg, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %s=%.2f  %s=%.2f\n", v.name,
			res.Apps[0].Name, res.Apps[0].IPC, res.Apps[1].Name, res.Apps[1].IPC)
	}
}
