// Paging: the §5.5 future-work extension in action — demand paging with
// first-touch major faults. Shows the cold-start penalty, how residency
// builds over time (via the trace), and that MASK's ordering survives
// paging.
//
//	go run ./examples/paging
package main

import (
	"context"
	"fmt"
	"log"

	"masksim/sim"
)

func main() {
	const cycles = 40_000
	pair := []string{"3DS", "CONS"}

	fmt.Println("== cold start under demand paging (3DS_CONS) ==")
	fmt.Println("config     faultLat  totalIPC  faults  avgFaultLat")
	for _, cfgName := range []string{"SharedTLB", "MASK"} {
		base, err := sim.ConfigByName(cfgName)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background(), base, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %-8s  %-8.2f  %-6d  %s\n", cfgName, "none", res.TotalIPC, 0, "-")

		cfg := base
		cfg.DemandPaging = true
		cfg.FaultLatency = 10_000 // ~10µs host transfer
		res, err = sim.Run(context.Background(), cfg, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %-8d  %-8.2f  %-6d  %.0f\n", cfgName, cfg.FaultLatency,
			res.TotalIPC, res.Faults.Faults, res.Faults.AvgLatency())
	}

	// Residency build-up: IPC recovers as the working set pages in.
	fmt.Println("\n== warm-up trace (MASK, faultLat=10000) ==")
	cfg := sim.MASKConfig()
	cfg.DemandPaging = true
	cfg.FaultLatency = 10_000
	cfg.TraceInterval = 5_000
	res, err := sim.Run(context.Background(), cfg, pair, cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycle    windowIPC  outstandingFaults")
	for _, s := range res.Trace {
		fmt.Printf("%-7d  %-9.2f  %d\n", s.Cycle, s.IPC, s.OutstandingFaults)
	}
}
