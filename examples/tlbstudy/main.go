// TLBstudy: explore how shared-L2-TLB capacity and page size change the
// translation bottleneck — the paper's §7.3 sensitivity studies as an
// interactive exploration.
//
//	go run ./examples/tlbstudy
package main

import (
	"context"
	"fmt"
	"log"

	"masksim/sim"
)

func main() {
	const cycles = 20_000
	pair := []string{"MM", "CONS"}

	fmt.Println("== shared L2 TLB size sweep (pair MM_CONS) ==")
	fmt.Println("entries  SharedTLB-IPC  MASK-IPC  L2TLBmiss(MM)  L2TLBmiss(CONS)")
	for _, entries := range []int{64, 128, 256, 512, 1024, 4096} {
		base := sim.SharedTLBConfig()
		base.L2TLBEntries = entries
		if entries < base.L2TLBWays {
			base.L2TLBWays = entries
		}
		baseRes, err := sim.Run(context.Background(), base, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		mask := sim.MASKConfig()
		mask.L2TLBEntries = entries
		if entries < mask.L2TLBWays {
			mask.L2TLBWays = entries
		}
		maskRes, err := sim.Run(context.Background(), mask, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d  %-13.2f  %-8.2f  %-13s  %.1f%%\n",
			entries, baseRes.TotalIPC, maskRes.TotalIPC,
			fmt.Sprintf("%.1f%%", 100*baseRes.Apps[0].L2TLB.MissRate()),
			100*baseRes.Apps[1].L2TLB.MissRate())
	}

	fmt.Println("\n== page size (4KB vs 2MB) ==")
	for _, ps := range []int{4 << 10, 2 << 20} {
		cfg := sim.SharedTLBConfig()
		cfg.PageSize = ps
		res, err := sim.Run(context.Background(), cfg, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("page=%7dB  IPC=%.2f  walks: avg concurrent=%.1f avg latency=%.0f cycles\n",
			ps, res.TotalIPC, res.Walker.AvgConcurrent(), res.Walker.AvgLatency())
	}
}
