// Quickstart: run two applications concurrently on the SharedTLB baseline
// and on MASK, and compare the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"masksim/sim"
)

func main() {
	const cycles = 30_000
	pair := []string{"3DS", "CONS"} // two TLB-hungry (2-HMR) applications

	// IPC_alone: each app alone on its half of the GPU cores, with the
	// whole memory system to itself (the paper's weighted-speedup baseline).
	split := sim.EvenSplit(sim.Baseline().Cores, len(pair))
	alone := make([]float64, len(pair))
	for i, name := range pair {
		res, err := sim.RunAlone(context.Background(), sim.SharedTLBConfig(), name, split[i], cycles)
		if err != nil {
			log.Fatal(err)
		}
		alone[i] = res.Apps[0].IPC
		fmt.Printf("%-5s alone: IPC=%.2f  L1 TLB miss=%.1f%%  L2 TLB miss=%.1f%%\n",
			name, alone[i], 100*res.Apps[0].L1TLB.MissRate(), 100*res.Apps[0].L2TLB.MissRate())
	}
	fmt.Println()

	for _, cfgName := range []string{"SharedTLB", "MASK", "Ideal"} {
		cfg, err := sim.ConfigByName(cfgName)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background(), cfg, pair, cycles)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics(alone)
		fmt.Printf("%-10s weighted speedup=%.3f  IPC throughput=%.2f  unfairness=%.2f\n",
			cfgName, m.WeightedSpeedup, m.IPCThroughput, m.Unfairness)
	}
}
