// Cloudshare: a cloud-consolidation scenario — pack three to five tenants
// onto one GPU and watch translation contention grow, then recover with
// MASK. Reproduces the flavour of the paper's Table 3 scalability study.
//
//	go run ./examples/cloudshare
package main

import (
	"context"
	"fmt"
	"log"

	"masksim/sim"
)

func main() {
	const cycles = 25_000
	tenants := []string{"HISTO", "GUP", "CONS", "RED", "3DS"}

	fmt.Println("tenants  SharedTLB-IPC  MASK-IPC  Ideal-IPC  SharedTLB/Ideal  MASK/Ideal")
	for n := 2; n <= len(tenants); n++ {
		names := tenants[:n]
		ipc := map[string]float64{}
		for _, cfgName := range []string{"SharedTLB", "MASK", "Ideal"} {
			cfg, err := sim.ConfigByName(cfgName)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(context.Background(), cfg, names, cycles)
			if err != nil {
				log.Fatal(err)
			}
			ipc[cfgName] = res.TotalIPC
		}
		fmt.Printf("%-7d  %-13.2f  %-8.2f  %-9.2f  %-15s  %.1f%%\n",
			n, ipc["SharedTLB"], ipc["MASK"], ipc["Ideal"],
			fmt.Sprintf("%.1f%%", 100*ipc["SharedTLB"]/ipc["Ideal"]),
			100*ipc["MASK"]/ipc["Ideal"])
	}

	// Per-tenant fairness view at full consolidation (5 tenants).
	fmt.Println("\nper-tenant IPC at 5 tenants:")
	for _, cfgName := range []string{"SharedTLB", "MASK"} {
		cfg, _ := sim.ConfigByName(cfgName)
		res, err := sim.Run(context.Background(), cfg, tenants, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s", cfgName)
		for _, a := range res.Apps {
			fmt.Printf("  %s=%.2f", a.Name, a.IPC)
		}
		fmt.Println()
	}
}
