package sim

// Sharded intra-simulation execution (docs/MODEL.md §10). One simulated
// cycle is split into four phases over the engine's shard plan:
//
//	P1  cores + their private L1 TLBs — parallel, clustered by core index
//	S1  L2 TLB, walker, fault unit, page walk cache          — serial
//	P2  L1 data caches                — parallel, same clusters
//	S2  L2, DRAM, scheduled ticks, fault plan, telemetry     — serial
//
// During a parallel phase every cross-shard submission — an L1 TLB miss
// headed for the shared L2 TLB/walker in P1, an L1D fill or forwarded write
// headed for the shared L2 in P2 — is deferred into a per-shard exchange
// buffer (the outbox types below) instead of touching the shared component.
// The phase's Drain replays the buffers on the coordinator in registration
// order, so the shared component observes the exact submission sequence of
// the sequential engine, including which submissions bounce off full queues.
// Refused submissions are routed to the same retry lists the inline path
// would have used. Everything else a parallel phase touches is owned by its
// cluster: core/warp state, the core's L1 TLB and L1D, and the per-core
// request pools and ID generators that exist at every shard count.
//
// The L1 TLBs tick inside P1 (they are per-core state the cluster already
// owns), but their pending-retry loop must observe the shared L2 TLB queue
// in submission order — so while the outbox defers, Tick is held to a no-op
// (tlb.SetRetryHold) and the drain replays the cycle's fresh lookups first
// (core order) and then each TLB's pending retries (TLB order), which is
// exactly the sequential engine's sequence.

import (
	"fmt"
	"runtime"

	"masksim/internal/cache"
	"masksim/internal/engine"
	"masksim/internal/memreq"
	"masksim/internal/tlb"
)

// ResolveShards resolves a CLI-level -shards value: 0 selects
// runtime.GOMAXPROCS(0) (never oversubscribed), and an explicit request
// beyond GOMAXPROCS is honored — results are bit-identical at any count —
// with a warning that the extra workers only time-share CPUs.
func ResolveShards(requested int) (count int, warning string) {
	procs := runtime.GOMAXPROCS(0)
	if requested == 0 {
		return procs, ""
	}
	if requested > procs {
		return requested, fmt.Sprintf(
			"-shards %d exceeds GOMAXPROCS=%d: workers time-share CPUs with no throughput upside (results are bit-identical; -shards 0 auto-sizes)",
			requested, procs)
	}
	return requested, ""
}

// transOutbox wraps an L1 TLB's translation backend. While deferring (the
// parallel core phase), SubmitTrans appends to the buffer and reports
// optimistic success; the barrier drain performs the real submissions. The
// optimistic true is sound because a refused SubmitTrans has exactly one
// effect — the request joins the TLB's pending retry list — which the drain
// reproduces via PushPending.
type transOutbox struct {
	real      tlb.TransBackend
	deferring bool
	buf       []*memreq.TransReq
}

func (o *transOutbox) SubmitTrans(now int64, tr *memreq.TransReq) bool {
	if !o.deferring {
		return o.real.SubmitTrans(now, tr)
	}
	o.buf = append(o.buf, tr)
	return true
}

// submitOutbox wraps an L1 data cache's backend (the shared L2). Same
// contract as transOutbox: a refused Submit's only effect is joining the
// L1D's retry list, reproduced at drain time via PushRetry.
type submitOutbox struct {
	real      cache.Backend
	deferring bool
	buf       []*memreq.Request
}

func (o *submitOutbox) Submit(now int64, r *memreq.Request) bool {
	if !o.deferring {
		return o.real.Submit(now, r)
	}
	o.buf = append(o.buf, r)
	return true
}

// effectiveShards resolves Config.Shards: 0 and 1 (the zero value and the
// CLI default) select the sequential engine; larger values are capped at the
// number of core clusters, because cores that share a group-sync barrier
// must stay on one shard — clusters, not cores, are the unit of parallelism.
// The CLIs resolve their "-shards 0 = GOMAXPROCS" convention to a concrete
// count before building the config.
func (s *Simulator) effectiveShards() int {
	n := s.cfg.Shards
	if n <= 1 {
		return 1
	}
	if m := len(s.coreClusters); n > m {
		n = m
	}
	return n
}

// installShardPlan builds and installs the four-phase plan when more than
// one shard is effective. With one shard the engine keeps its sequential
// path — same results either way, pinned by the drift scenarios.
func (s *Simulator) installShardPlan() {
	n := s.effectiveShards()
	if n <= 1 {
		return
	}
	groupsCore := make([][]int, 0, len(s.coreClusters))
	groupsL1D := make([][]int, 0, len(s.coreClusters))
	for _, cl := range s.coreClusters {
		gc := make([]int, 0, 2*len(cl))
		gd := make([]int, 0, len(cl))
		for _, c := range cl {
			gc = append(gc, s.coreTickIdx[c])
			gd = append(gd, s.l1dTickIdx[c])
		}
		// The cluster's L1 TLBs ride in the core phase; their Tick is held
		// while the outboxes defer, so group-internal order is immaterial.
		for _, c := range cl {
			if c < len(s.l1tlbTickIdx) {
				gc = append(gc, s.l1tlbTickIdx[c])
			}
		}
		groupsCore = append(groupsCore, gc)
		groupsL1D = append(groupsL1D, gd)
	}
	tail := make([]int, 0, s.eng.Len()-s.tailStart)
	for i := s.tailStart; i < s.eng.Len(); i++ {
		tail = append(tail, i)
	}
	phases := []engine.Phase{
		{Groups: groupsCore, Enter: s.armTransOutboxes, Drain: s.drainTransOutboxes},
		{Serial: s.midTickIdx},
		{Groups: groupsL1D, Enter: s.armSubmitOutboxes, Drain: s.drainSubmitOutboxes},
		{Serial: tail},
	}
	if err := s.eng.SetShardPlan(n, phases); err != nil {
		// The plan is built from the registration indices recorded one
		// function above; a mismatch is a wiring bug, not a runtime condition.
		panic(fmt.Sprintf("sim: shard plan: %v", err))
	}
}

func (s *Simulator) armTransOutboxes(now int64) {
	for _, o := range s.transOut {
		o.deferring = true
	}
}

// drainTransOutboxes replays the deferred L1-miss submissions in core order
// — exactly the order the sequential engine's core phase produced them —
// then runs each TLB's pending-retry loop (suppressed during the parallel
// phase by the retry hold) in TLB order, reproducing the sequential
// sequence: all lookups, then all retries, refusals of the former queued
// behind the older pending entries before the latter runs.
func (s *Simulator) drainTransOutboxes(now int64) {
	for i, o := range s.transOut {
		o.deferring = false
		for j, tr := range o.buf {
			if !o.real.SubmitTrans(now, tr) {
				s.l1tlbs[i].PushPending(tr)
			}
			o.buf[j] = nil
		}
		o.buf = o.buf[:0]
	}
	for _, t := range s.l1tlbs {
		t.RetryPending(now)
	}
}

func (s *Simulator) armSubmitOutboxes(now int64) {
	for _, o := range s.subOut {
		o.deferring = true
	}
}

// drainSubmitOutboxes replays the deferred L2 submissions in L1D order —
// retries first, then the cycle's new fills, per cache, exactly as the
// sequential L1D phase interleaved them.
func (s *Simulator) drainSubmitOutboxes(now int64) {
	for i, o := range s.subOut {
		o.deferring = false
		for j, r := range o.buf {
			if !o.real.Submit(now, r) {
				s.l1ds[i].PushRetry(r)
			}
			o.buf[j] = nil
		}
		o.buf = o.buf[:0]
	}
}
