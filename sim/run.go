package sim

import (
	"context"
	"fmt"

	"masksim/internal/metrics"
	"masksim/internal/workload"
)

// EvenSplit divides cores evenly across n apps (remainder to the first
// apps). The paper's oracle searches all static splits; the even split is
// the default and SearchPartition refines it when asked.
func EvenSplit(cores, n int) []int {
	out := make([]int, n)
	base := cores / n
	rem := cores % n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Run builds a simulator for the named benchmarks (evenly splitting cores)
// and runs it for the given cycles under ctx (see Simulator.Run for the
// supervision semantics; on abort both partial Results and the error are
// returned).
func Run(ctx context.Context, cfg Config, names []string, cycles int64) (*Results, error) {
	apps := make([]workload.App, len(names))
	for i, n := range names {
		if _, err := workload.ByName(n); err != nil {
			return nil, err
		}
		apps[i] = workload.NewApp(i, n)
	}
	s, err := New(cfg, apps, EvenSplit(cfg.Cores, len(apps)))
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, cycles)
}

// Prepare builds the simulator Run would use without running it, for callers
// that need a handle on the instance — checkpoint control, resume after a
// killed worker, fingerprint inspection.
func Prepare(cfg Config, names []string) (*Simulator, error) {
	apps := make([]workload.App, len(names))
	for i, n := range names {
		if _, err := workload.ByName(n); err != nil {
			return nil, err
		}
		apps[i] = workload.NewApp(i, n)
	}
	return New(cfg, apps, EvenSplit(cfg.Cores, len(apps)))
}

// PrepareAlone builds the simulator RunAlone would use without running it.
func PrepareAlone(cfg Config, name string, cores int) (*Simulator, error) {
	if cores < 1 || cores > cfg.Cores {
		return nil, fmt.Errorf("sim: invalid alone core count %d", cores)
	}
	cfg.Static = false
	return New(cfg, []workload.App{workload.NewApp(0, name)}, []int{cores})
}

// RunAlone measures one app running by itself on cores cores with the whole
// uncontended memory system — the paper's IPC_alone condition ("runs on the
// same number of GPU cores, but does not share GPU resources", §6).
func RunAlone(ctx context.Context, cfg Config, name string, cores int, cycles int64) (*Results, error) {
	if cores < 1 || cores > cfg.Cores {
		return nil, fmt.Errorf("sim: invalid alone core count %d", cores)
	}
	// Alone runs never partition resources.
	cfg.Static = false
	app := workload.NewApp(0, name)
	s, err := New(cfg, []workload.App{app}, []int{cores})
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, cycles)
}

// PairMetrics bundles the paper's three headline metrics for one shared run.
type PairMetrics struct {
	WeightedSpeedup float64
	IPCThroughput   float64
	Unfairness      float64 // maximum slowdown
}

// Metrics computes the paper's metrics for a shared run given the matching
// alone IPCs (in app order).
func (r *Results) Metrics(aloneIPC []float64) PairMetrics {
	shared := r.IPCs()
	return PairMetrics{
		WeightedSpeedup: metrics.WeightedSpeedup(shared, aloneIPC),
		IPCThroughput:   metrics.IPCThroughput(shared),
		Unfairness:      metrics.MaxSlowdown(shared, aloneIPC),
	}
}

// SearchPartition approximates the paper's oracle core scheduler (§6): it
// tries each static split of cores between the two apps of pair (at the
// given granularity), returning the split with the best weighted speedup
// under cfg. It is exhaustive-but-coarse to stay affordable; experiments use
// the even split by default.
func SearchPartition(ctx context.Context, cfg Config, pair workload.Pair, cycles int64, step int, aloneIPC map[string]float64) ([]int, float64, error) {
	if step < 1 {
		step = 1
	}
	best := []int{cfg.Cores / 2, cfg.Cores - cfg.Cores/2}
	bestWS := -1.0
	for a := step; a < cfg.Cores; a += step {
		split := []int{a, cfg.Cores - a}
		apps := []workload.App{workload.NewApp(0, pair.A), workload.NewApp(1, pair.B)}
		s, err := New(cfg, apps, split)
		if err != nil {
			return nil, 0, err
		}
		res, err := s.Run(ctx, cycles)
		if err != nil {
			return nil, 0, err
		}
		ws := res.Metrics([]float64{aloneIPC[pair.A], aloneIPC[pair.B]}).WeightedSpeedup
		if ws > bestWS {
			bestWS = ws
			best = split
		}
	}
	return best, bestWS, nil
}
