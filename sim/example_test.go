package sim_test

import (
	"context"
	"fmt"

	"masksim/sim"
)

// Example demonstrates the basic run-and-compare workflow. (No expected
// output is declared because simulation results depend on configuration
// constants that evolve with the model.)
func Example() {
	cfg := sim.MASKConfig()
	res, err := sim.Run(context.Background(), cfg, []string{"3DS", "HISTO"}, 50_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("total IPC %.2f across %d apps\n", res.TotalIPC, len(res.Apps))
}

// ExampleResults_Metrics shows how to compute the paper's multiprogramming
// metrics from a shared run and per-app alone runs.
func ExampleResults_Metrics() {
	cfg := sim.SharedTLBConfig()
	shared, err := sim.Run(context.Background(), cfg, []string{"RED", "BP"}, 50_000)
	if err != nil {
		panic(err)
	}
	split := sim.EvenSplit(cfg.Cores, 2)
	var alone []float64
	for i, name := range []string{"RED", "BP"} {
		r, err := sim.RunAlone(context.Background(), cfg, name, split[i], 50_000)
		if err != nil {
			panic(err)
		}
		alone = append(alone, r.Apps[0].IPC)
	}
	m := shared.Metrics(alone)
	fmt.Printf("weighted speedup %.2f, unfairness %.2f\n", m.WeightedSpeedup, m.Unfairness)
}
