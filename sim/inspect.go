package sim

// Checkpoint inspection for the masksim -inspect-checkpoint tool: a lenient,
// read-only decode that answers "what is this file?" even when the envelope
// is damaged. Unlike RestoreFromDir, nothing here refuses a corrupt file —
// it reports as much structure as survives so an operator can decide whether
// the checkpoint is salvageable, stale, or foreign.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"masksim/internal/engine"
	"masksim/internal/snapshot"
)

// ComponentStateSize is the serialized footprint of one ticker's state inside
// a checkpoint payload.
type ComponentStateSize struct {
	// Index is the ticker's engine registration index (build order).
	Index int
	// Type is the concrete state type, e.g. "gpu.CoreState".
	Type string
	// Bytes is the state's standalone gob encoding size — a relative weight
	// for spotting which component dominates the file, not an exact share of
	// the payload (the combined encoding dedupes type descriptors).
	Bytes int
}

// CheckpointInfo is everything InspectCheckpoint can recover from a file.
type CheckpointInfo struct {
	Path string
	// Size is the file size in bytes.
	Size int64
	// Header is the envelope header (fingerprint, cycle, total budget). Valid
	// whenever Err is nil or ErrChecksum — see snapshot.Inspect.
	Header snapshot.Header
	// Version is the envelope format version found in the file.
	Version uint32
	// ChecksumOK reports whether the trailing SHA-256 matched.
	ChecksumOK bool
	// PayloadLen is the gob payload length in bytes.
	PayloadLen int
	// Err is the envelope defect, if any (snapshot.ErrBadMagic, ErrTruncated,
	// ErrChecksum, *snapshot.VersionError).
	Err error

	// The fields below describe the decoded payload; PayloadOK reports
	// whether they are populated (an intact envelope can still carry a gob
	// stream this build cannot decode).
	PayloadOK  bool
	PayloadErr error
	// Clock is the engine clock state at capture.
	Clock engine.ClockState
	// Components lists per-ticker state sizes, largest first.
	Components []ComponentStateSize
	// Requests and TransReqs count live in-flight entries in the registry.
	Requests  int
	TransReqs int
	// Syncs counts serialized group barriers.
	Syncs int
	// TraceSamples counts accumulated -trace rows.
	TraceSamples int
	// HasWatchdog marks a supervised (or crash) checkpoint; HasATA an
	// L2-bypass run; HasFaultPlan a fault-injection run.
	HasWatchdog  bool
	HasATA       bool
	HasFaultPlan bool
}

// InspectCheckpoint reads and describes one checkpoint file without building
// a simulator. The returned error covers only I/O (unreadable file); format
// defects land in CheckpointInfo.Err / PayloadErr so the tool can still print
// whatever was recovered.
func InspectCheckpoint(path string) (*CheckpointInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ins := snapshot.Inspect(raw)
	info := &CheckpointInfo{
		Path:       path,
		Size:       int64(len(raw)),
		Header:     ins.Header,
		Version:    ins.Version,
		ChecksumOK: ins.ChecksumOK,
		PayloadLen: ins.PayloadLen,
		Err:        ins.Err,
	}
	if len(ins.Payload) == 0 {
		return info, nil
	}
	var p checkpointPayload
	if err := gob.NewDecoder(bytes.NewReader(ins.Payload)).Decode(&p); err != nil {
		info.PayloadErr = fmt.Errorf("sim: decode checkpoint payload: %w", err)
		return info, nil
	}
	info.PayloadOK = true
	info.Clock = p.Clock
	info.Requests = len(p.Reqs)
	info.TransReqs = len(p.Trans)
	info.Syncs = len(p.Syncs)
	info.TraceSamples = len(p.TraceSamples)
	info.HasWatchdog = p.Watchdog != nil
	info.HasATA = p.ATA != nil
	info.HasFaultPlan = p.FaultPlan != nil
	for idx, st := range p.States {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			// Unencodable states cannot appear in a decodable payload, but
			// degrade to a zero size rather than failing the inspection.
			buf.Reset()
		}
		info.Components = append(info.Components, ComponentStateSize{
			Index: idx,
			Type:  fmt.Sprintf("%T", st),
			Bytes: buf.Len(),
		})
	}
	sort.Slice(info.Components, func(i, j int) bool {
		a, b := info.Components[i], info.Components[j]
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		return a.Index < b.Index
	})
	return info, nil
}
