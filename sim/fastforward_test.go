package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"masksim/internal/engine"
	"masksim/internal/faultinject"
)

// ffScenarios mirror the drift scenarios: every design the hot path flows
// through must produce bit-identical Results whether the engine single-steps
// each cycle or fast-forwards over quiescent spans.
var ffScenarios = []struct {
	name string
	run  func(ff bool) (*Results, error)
}{
	{"mask-3DS+CONS", func(ff bool) (*Results, error) {
		cfg := MASKConfig()
		cfg.FastForward = ff
		return Run(context.Background(), cfg, []string{"3DS", "CONS"}, 4000)
	}},
	{"sharedtlb-MUM+GUP", func(ff bool) (*Results, error) {
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		return Run(context.Background(), cfg, []string{"MUM", "GUP"}, 4000)
	}},
	{"pwcache-3DS+CONS", func(ff bool) (*Results, error) {
		cfg := PWCacheConfig()
		cfg.FastForward = ff
		return Run(context.Background(), cfg, []string{"3DS", "CONS"}, 4000)
	}},
	{"static-RED+BP", func(ff bool) (*Results, error) {
		cfg := StaticConfig()
		cfg.FastForward = ff
		return Run(context.Background(), cfg, []string{"RED", "BP"}, 4000)
	}},
	{"alone-3DS", func(ff bool) (*Results, error) {
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		return RunAlone(context.Background(), cfg, "3DS", 30, 4000)
	}},
	{"alone-GUP", func(ff bool) (*Results, error) {
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		return RunAlone(context.Background(), cfg, "GUP", 30, 4000)
	}},
	{"alone-NN", func(ff bool) (*Results, error) {
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		return RunAlone(context.Background(), cfg, "NN", 30, 4000)
	}},
	{"alone-MUM", func(ff bool) (*Results, error) {
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		return RunAlone(context.Background(), cfg, "MUM", 30, 4000)
	}},
	// Not a drift scenario, but the deepest fast-forward exerciser: demand
	// paging drains the whole machine for tens of thousands of cycles per
	// major fault, so most of the run is skipped (and the FaultUnit's own
	// horizon is on the critical path).
	{"paging-MUM+GUP", func(ff bool) (*Results, error) {
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		cfg.DemandPaging = true
		return Run(context.Background(), cfg, []string{"MUM", "GUP"}, 20_000)
	}},
}

// TestFastForwardEquivalence is the tentpole acceptance test: for every drift
// scenario, a fast-forwarded run must be bit-identical to the single-stepped
// run — same fingerprint, same full Results modulo the tick/skip split — and
// fast-forward must actually skip cycles somewhere (otherwise this test would
// vacuously compare the slow path against itself).
func TestFastForwardEquivalence(t *testing.T) {
	var totalSkipped int64
	for _, sc := range ffScenarios {
		t.Run(sc.name, func(t *testing.T) {
			slow, err := sc.run(false)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := sc.run(true)
			if err != nil {
				t.Fatal(err)
			}

			if slow.CyclesSkipped != 0 {
				t.Errorf("FF-off run skipped %d cycles", slow.CyclesSkipped)
			}
			if got := fast.CyclesTicked + fast.CyclesSkipped; got != fast.Cycles {
				t.Errorf("ticked+skipped = %d, want Cycles = %d", got, fast.Cycles)
			}
			totalSkipped += fast.CyclesSkipped

			if sf, ff := driftFingerprint(slow), driftFingerprint(fast); sf != ff {
				t.Errorf("fingerprints diverge:\n%s", diffLines(sf, ff))
			}
			// Full structural equality beyond the fingerprint's counter list.
			// The tick/skip split is the one field pair allowed to differ.
			a, b := *slow, *fast
			a.CyclesTicked, a.CyclesSkipped = 0, 0
			b.CyclesTicked, b.CyclesSkipped = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("Results structs differ beyond the tick/skip split:\nslow: %+v\nfast: %+v", a, b)
			}
		})
	}
	if totalSkipped == 0 {
		t.Error("fast-forward never skipped a cycle in any scenario; equivalence check is vacuous")
	}
}

// TestFastForwardWatchdogWedge checks the watchdog under clock jumps: a
// wedged PTW leaves every component quiescent, so without checkpoint capping
// the engine would leap straight to the end of the run and mask the wedge.
// The abort must fire at exactly the same cycle as in a single-stepped run.
func TestFastForwardWatchdogWedge(t *testing.T) {
	run := func(ff bool) (*Results, *engine.DeadlockError) {
		cfg := tinyConfig()
		cfg.FastForward = ff
		cfg.WatchdogCheckEvery = 2_000
		cfg.WatchdogStallChecks = 2
		cfg.FaultPlan = &faultinject.Plan{WedgePTWAfter: 200}
		res, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, 2_000_000)
		if err == nil {
			t.Fatalf("wedged run (ff=%v) completed without error", ff)
		}
		var de *engine.DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("error is %T (%v), want *engine.DeadlockError", err, err)
		}
		return res, de
	}

	slowRes, slowDe := run(false)
	fastRes, fastDe := run(true)

	if fastDe.Cycle != slowDe.Cycle {
		t.Errorf("watchdog abort cycle: ff=%d, no-ff=%d", fastDe.Cycle, slowDe.Cycle)
	}
	if fastRes.Cycles != slowRes.Cycles {
		t.Errorf("partial results length: ff=%d, no-ff=%d", fastRes.Cycles, slowRes.Cycles)
	}
	if sf, ff := driftFingerprint(slowRes), driftFingerprint(fastRes); sf != ff {
		t.Errorf("partial-result fingerprints diverge:\n%s", diffLines(sf, ff))
	}
	if !fastRes.Aborted {
		t.Error("fast-forwarded wedge not marked aborted")
	}
}

// TestFastForwardHealthyWatchdog makes sure fast-forward jumps over a
// watchdog checkpoint do not read as stalls: a healthy run whose quiescent
// spans exceed WatchdogCheckEvery must still complete. The aggressive
// checkpoint interval guarantees skips actually cross checkpoints.
func TestFastForwardHealthyWatchdog(t *testing.T) {
	cfg := tinyConfig()
	cfg.WatchdogCheckEvery = 100
	cfg.WatchdogStallChecks = 2
	res, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, 20_000)
	if err != nil {
		t.Fatalf("healthy fast-forwarded run tripped the watchdog: %v", err)
	}
	if res.Aborted {
		t.Fatal("healthy fast-forwarded run marked aborted")
	}
}

// TestFastForwardTelemetryEquivalence covers the epoch sampler under
// non-unit time advancement: every epoch-boundary sample that falls inside a
// skipped span must still appear, at the same cycle with the same values, and
// the Finish totals must telescope identically.
func TestFastForwardTelemetryEquivalence(t *testing.T) {
	run := func(ff bool) *Results {
		// Demand paging produces multi-thousand-cycle quiescent spans, so
		// epoch boundaries land inside skipped stretches — exactly the case
		// the Collector's NextEvent horizon must force ticks for.
		cfg := SharedTLBConfig()
		cfg.FastForward = ff
		cfg.DemandPaging = true
		cfg.TelemetryEpoch = 500
		res, err := Run(context.Background(), cfg, []string{"MUM", "GUP"}, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow, fast := run(false), run(true)
	if slow.Telemetry == nil || fast.Telemetry == nil {
		t.Fatal("telemetry missing from one of the runs")
	}
	if len(fast.Telemetry.Samples) != len(slow.Telemetry.Samples) {
		t.Fatalf("sample counts differ: ff=%d, no-ff=%d",
			len(fast.Telemetry.Samples), len(slow.Telemetry.Samples))
	}
	for i, want := range slow.Telemetry.Samples {
		got := fast.Telemetry.Samples[i]
		if got.Cycle != want.Cycle {
			t.Fatalf("sample %d at cycle %d, want %d", i, got.Cycle, want.Cycle)
		}
		if !reflect.DeepEqual(got.Values, want.Values) {
			t.Errorf("sample %d (cycle %d) values differ:\nff:    %v\nno-ff: %v",
				i, got.Cycle, got.Values, want.Values)
		}
	}
	if !reflect.DeepEqual(fast.Telemetry.Columns, slow.Telemetry.Columns) {
		t.Error("telemetry columns differ between ff and no-ff runs")
	}
	if fast.CyclesSkipped == 0 {
		t.Error("telemetry scenario never skipped; equivalence check is vacuous")
	}
}
