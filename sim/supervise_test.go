package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"masksim/internal/engine"
	"masksim/internal/faultinject"
)

// TestWatchdogAbortsWedgedWalk is the acceptance test for the deadlock
// watchdog: a fault-injected wedged PTW walk eventually starves every core
// (all warps pile up behind the held walker slot), the watchdog detects the
// lack of forward progress within its cycle budget, and the run aborts with
// a structured diagnostic dump while still returning partial results.
func TestWatchdogAbortsWedgedWalk(t *testing.T) {
	cfg := tinyConfig()
	cfg.WatchdogCheckEvery = 2_000
	cfg.WatchdogStallChecks = 2
	cfg.FaultPlan = &faultinject.Plan{WedgePTWAfter: 200}

	const budget = 2_000_000
	res, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, budget)
	if err == nil {
		t.Fatal("wedged run completed without error")
	}
	var de *engine.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T (%v), want *engine.DeadlockError", err, err)
	}
	if de.Cycle >= budget {
		t.Fatalf("watchdog fired at cycle %d, not within budget %d", de.Cycle, budget)
	}
	if len(de.Dump) == 0 {
		t.Fatal("deadlock diagnostic dump is empty")
	}
	if !strings.Contains(err.Error(), "walker") {
		t.Fatalf("dump does not mention the walker:\n%v", err)
	}
	if res == nil {
		t.Fatal("aborted run returned no partial results")
	}
	if !res.Aborted || res.AbortReason == "" {
		t.Fatalf("partial results not marked aborted: %+v", res)
	}
	if res.Cycles >= budget {
		t.Fatalf("partial results claim %d cycles, want < %d", res.Cycles, budget)
	}
	var instrs uint64
	for _, a := range res.Apps {
		instrs += a.Instructions
	}
	if instrs == 0 {
		t.Fatal("no progress before the wedge; partial results carry nothing")
	}
	if cfg.FaultPlan.WedgedWalks == 0 {
		t.Fatal("fault plan never wedged a walk")
	}
}

// TestWatchdogAbortsDroppedDRAM wedges the machine a different way: every
// DRAM response past a threshold is dropped, so requests never complete and
// the cores eventually stall on memory.
func TestWatchdogAbortsDroppedDRAM(t *testing.T) {
	cfg := tinyConfig()
	cfg.WatchdogCheckEvery = 2_000
	cfg.WatchdogStallChecks = 2
	cfg.FaultPlan = &faultinject.Plan{DropDRAMOneIn: 1, DropDRAMAfter: 100}

	res, err := Run(context.Background(), cfg, []string{"MM", "CONS"}, 2_000_000)
	var de *engine.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T (%v), want *engine.DeadlockError", err, err)
	}
	if res == nil || !res.Aborted {
		t.Fatal("no aborted partial results")
	}
	if cfg.FaultPlan.DroppedResponses == 0 {
		t.Fatal("fault plan never dropped a response")
	}
}

// TestRunContextDeadline bounds a healthy run by wall-clock time and checks
// that partial results come back with the context's error.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, tinyConfig(), []string{"3DS", "CONS"}, 1_000_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Aborted {
		t.Fatal("deadline abort did not return partial results")
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated before the deadline")
	}
}

// TestRunPreCanceledContext verifies that an already-canceled context stops
// the run before it starts ticking.
func TestRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, tinyConfig(), []string{"3DS", "CONS"}, 10_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil && res.Cycles > 0 {
		t.Fatalf("pre-canceled run still simulated %d cycles", res.Cycles)
	}
}

// TestHealthyRunPassesWatchdog makes sure the default watchdog thresholds do
// not false-positive on an ordinary contended run.
func TestHealthyRunPassesWatchdog(t *testing.T) {
	cfg := tinyConfig()
	cfg.WatchdogCheckEvery = 1_000
	cfg.WatchdogStallChecks = 2
	res, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, 20_000)
	if err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
	if res.Aborted {
		t.Fatal("healthy run marked aborted")
	}
}

// TestAbortedResultsRenderReason checks the Results printout surfaces the
// abort so partial numbers cannot be mistaken for a completed run.
func TestAbortedResultsRenderReason(t *testing.T) {
	cfg := tinyConfig()
	cfg.WatchdogCheckEvery = 2_000
	cfg.WatchdogStallChecks = 2
	cfg.FaultPlan = &faultinject.Plan{WedgePTWAfter: 200}
	res, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, 2_000_000)
	if err == nil {
		t.Fatal("expected abort")
	}
	out := res.String()
	if !strings.Contains(out, "ABORTED") {
		t.Fatalf("results printout hides the abort:\n%s", out)
	}
}
