package sim

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"masksim/internal/faultinject"
	"masksim/internal/streamio"
	"masksim/internal/telemetry"
)

func streamTestConfig() Config {
	cfg := MASKConfig()
	cfg.Cores = 4
	cfg.WarpsPerCore = 16
	cfg.TelemetryEpoch = 900 // does not divide the run length: partial tail
	return cfg
}

// TestSimStreamingMatchesBufferedExports runs the same simulation twice —
// once buffering telemetry into Results, once streaming it through a sink —
// and requires byte-identical CSV/JSONL/Chrome output, plus identical
// simulation results (the sink must be an observer, never a perturbation).
func TestSimStreamingMatchesBufferedExports(t *testing.T) {
	const cycles = 4000
	names := []string{"3DS", "CONS"}

	cfg := streamTestConfig()
	refSim := prepareScenario(t, cfg, names, 0)
	ref := refSim.mustRun(t, cycles)
	var refCSV, refJSONL, refChrome bytes.Buffer
	if err := ref.Telemetry.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	if err := ref.Telemetry.WriteJSONL(&refJSONL); err != nil {
		t.Fatal(err)
	}
	if err := ref.Telemetry.WriteChromeTrace(&refChrome); err != nil {
		t.Fatal(err)
	}

	sink := telemetry.NewStreamSink()
	var csv, jsonl, chrome bytes.Buffer
	for _, att := range []struct {
		f telemetry.Format
		w io.Writer
	}{{telemetry.FormatCSV, &csv}, {telemetry.FormatJSONL, &jsonl}, {telemetry.FormatChrome, &chrome}} {
		if err := sink.Attach(att.f, att.w); err != nil {
			t.Fatal(err)
		}
	}
	stCfg := streamTestConfig()
	stCfg.TelemetrySink = sink
	stSim := prepareScenario(t, stCfg, names, 0)
	res := stSim.mustRun(t, cycles)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	if !res.Telemetry.Streamed || len(res.Telemetry.Samples) != 0 {
		t.Fatalf("streaming run retained %d samples in Results", len(res.Telemetry.Samples))
	}
	if res.Cycles != ref.Cycles {
		t.Fatalf("streaming run simulated %d cycles, buffered %d", res.Cycles, ref.Cycles)
	}
	for i := range ref.Apps {
		if res.Apps[i].Instructions != ref.Apps[i].Instructions {
			t.Fatalf("app %d retired %d instructions streaming, %d buffered: the sink perturbed the run",
				i, res.Apps[i].Instructions, ref.Apps[i].Instructions)
		}
	}
	for _, cmp := range []struct {
		name      string
		got, want []byte
	}{
		{"csv", csv.Bytes(), refCSV.Bytes()},
		{"jsonl", jsonl.Bytes(), refJSONL.Bytes()},
		{"chrome", chrome.Bytes(), refChrome.Bytes()},
	} {
		if !bytes.Equal(cmp.got, cmp.want) {
			t.Errorf("%s: streamed output differs from buffered export (%d vs %d bytes)",
				cmp.name, len(cmp.got), len(cmp.want))
		}
	}
}

// TestSimStreamingCheckpointResume resumes a streaming instrumented run from
// a mid-run checkpoint into the same telemetry files the original run wrote:
// the restore must truncate each file back to the exact offset the 2600
// checkpoint recorded (cutting every byte the original run emitted after it),
// replay the sink's pending sample, and regenerate a byte-identical tail.
// The checkpointing run is left with the simulator's default tick list — a
// restore whose checkpoint carries state for an unregistered ticker is
// rejected by the engine, which TestRestoreStatesRejectsForeignKeys pins.
func TestSimStreamingCheckpointResume(t *testing.T) {
	const cycles = 4000
	const every = 1300 // checkpoints at 1300, 2600; the kill lands after 2600
	names := []string{"3DS", "CONS"}
	dir := t.TempDir()
	paths := map[telemetry.Format]string{
		telemetry.FormatCSV:    filepath.Join(dir, "tel.csv"),
		telemetry.FormatJSONL:  filepath.Join(dir, "tel.jsonl"),
		telemetry.FormatChrome: filepath.Join(dir, "tel.trace.json"),
	}
	formats := []telemetry.Format{telemetry.FormatCSV, telemetry.FormatJSONL, telemetry.FormatChrome}

	attach := func(t *testing.T, open func(string) (io.WriteCloser, error)) (*telemetry.StreamSink, []io.WriteCloser) {
		t.Helper()
		sink := telemetry.NewStreamSink()
		var files []io.WriteCloser
		for _, f := range formats {
			w, err := open(paths[f])
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, w)
			if err := sink.Attach(f, w); err != nil {
				t.Fatal(err)
			}
		}
		return sink, files
	}
	closeAll := func(t *testing.T, sink *telemetry.StreamSink, files []io.WriteCloser) {
		t.Helper()
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference: one uninterrupted streaming run.
	refSink, refFiles := attach(t, streamio.Create)
	refCfg := streamTestConfig()
	refCfg.TelemetrySink = refSink
	prepareScenario(t, refCfg, names, 0).mustRun(t, cycles)
	closeAll(t, refSink, refFiles)
	want := map[telemetry.Format][]byte{}
	for _, f := range formats {
		b, err := os.ReadFile(paths[f])
		if err != nil {
			t.Fatal(err)
		}
		want[f] = b
	}

	// Checkpointing run: stream into the same paths while writing periodic
	// checkpoints, and let it complete. The files now hold ~1400 cycles of
	// telemetry past the 2600 checkpoint's recorded offsets — exactly the
	// stale tail a restore must cut before re-emitting it.
	ckSink, ckFiles := attach(t, streamio.Create)
	ckCfg := streamTestConfig()
	ckCfg.TelemetrySink = ckSink
	ckCfg.CheckpointEvery = every
	ckCfg.CheckpointDir = dir
	ckSim := prepareScenario(t, ckCfg, names, 0)
	ckSim.mustRun(t, cycles)
	closeAll(t, ckSink, ckFiles)
	ckpt, err := os.ReadFile(ckSim.checkpointPath(2600))
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	// Resume: fresh simulator, same files reopened resumably (no truncation
	// on open), restore the checkpoint, run the rest.
	rsSink, rsFiles := attach(t, streamio.CreateResumable)
	rsCfg := streamTestConfig()
	rsCfg.TelemetrySink = rsSink
	rsSim := prepareScenario(t, rsCfg, names, 0)
	if err := rsSim.RestoreCheckpoint(bytes.NewReader(ckpt)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if rsSim.Engine().Now() != 2600 {
		t.Fatalf("restored to cycle %d, want 2600", rsSim.Engine().Now())
	}
	rsSim.mustRun(t, cycles)
	closeAll(t, rsSink, rsFiles)

	for _, f := range formats {
		got, err := os.ReadFile(paths[f])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[f]) {
			t.Errorf("%v: resumed stream differs from uninterrupted run (%d vs %d bytes)", f, len(got), len(want[f]))
		}
	}
}

// TestSimStreamingKillResume is the crash-flavored sibling of the resume test
// above: a streaming run armed with a fault plan dies from an injected engine
// panic at cycle 3000 without closing its sink, leaving each file at whatever
// its last checkpoint flush produced (committed rows are durable, the
// mid-epoch tail is not). The resume is built WITHOUT the fault plan — the
// fault injector registers its engine ticker after every snapshot-capable
// one precisely so a plan-free simulator still aligns with a plan-bearing
// checkpoint — and must reproduce the uninterrupted run's bytes exactly.
func TestSimStreamingKillResume(t *testing.T) {
	const cycles = 4000
	const every = 1300
	names := []string{"3DS", "CONS"}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "tel.csv")

	ref := func() []byte {
		sink := telemetry.NewStreamSink()
		f, err := streamio.Create(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Attach(telemetry.FormatCSV, f); err != nil {
			t.Fatal(err)
		}
		cfg := streamTestConfig()
		cfg.TelemetrySink = sink
		prepareScenario(t, cfg, names, 0).mustRun(t, cycles)
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()

	killSink := telemetry.NewStreamSink()
	killFile, err := streamio.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := killSink.Attach(telemetry.FormatCSV, killFile); err != nil {
		t.Fatal(err)
	}
	ckCfg := streamTestConfig()
	ckCfg.TelemetrySink = killSink
	ckCfg.CheckpointEvery = every
	ckCfg.CheckpointDir = dir
	ckCfg.FaultPlan = &faultinject.Plan{PanicAtCycle: 3000}
	killSim := prepareScenario(t, ckCfg, names, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not fire")
			}
		}()
		killSim.Run(context.Background(), cycles)
	}()
	// The dead process never closed anything; drop the handle like a crash
	// would and read the checkpoint it left behind.
	killFile.Close()
	ckpt, err := os.ReadFile(killSim.checkpointPath(2600))
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	rsSink := telemetry.NewStreamSink()
	rsFile, err := streamio.CreateResumable(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rsSink.Attach(telemetry.FormatCSV, rsFile); err != nil {
		t.Fatal(err)
	}
	rsCfg := streamTestConfig() // no FaultPlan: the resume must not re-die
	rsCfg.TelemetrySink = rsSink
	rsSim := prepareScenario(t, rsCfg, names, 0)
	if err := rsSim.RestoreCheckpoint(bytes.NewReader(ckpt)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if rsSim.Engine().Now() != 2600 {
		t.Fatalf("restored to cycle %d, want 2600", rsSim.Engine().Now())
	}
	rsSim.mustRun(t, cycles)
	if err := rsSink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rsFile.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("killed-and-resumed stream differs from uninterrupted run (%d vs %d bytes)", len(got), len(ref))
	}
}

// TestTelemetrySinkConfigValidation pins the config contract: a sink without
// an epoch is rejected, and the sink never enters fingerprints or cache keys.
func TestTelemetrySinkConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.TelemetrySink = telemetry.NewStreamSink()
	cfg.TelemetryEpoch = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("TelemetrySink without TelemetryEpoch validated")
	}

	plain := streamTestConfig()
	sunk := streamTestConfig()
	sunk.TelemetrySink = telemetry.NewStreamSink()
	if CanonicalConfig(plain) != CanonicalConfig(sunk) {
		t.Fatal("TelemetrySink leaked into the canonical config (fingerprints would diverge)")
	}
}
