package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"masksim/internal/faultinject"
	"masksim/internal/telemetry"
)

// telemetryRun executes a small MASK pair with the collector enabled and
// returns the collected data. 6000 cycles at epoch 1000 → exactly 6 samples.
func telemetryRun(t *testing.T, cycles, epoch int64) (*Results, Config) {
	t.Helper()
	cfg := MASKConfig()
	cfg.Cores = 4
	cfg.WarpsPerCore = 16
	cfg.TelemetryEpoch = epoch
	res := tinyRun(t, cfg, []string{"3DS", "CONS"}, cycles)
	if res.Telemetry == nil {
		t.Fatal("TelemetryEpoch set but Results.Telemetry is nil")
	}
	return res, cfg
}

func TestTelemetryEpochSampling(t *testing.T) {
	res, _ := telemetryRun(t, 6000, 1000)
	d := res.Telemetry
	if len(d.Samples) != 6 {
		t.Fatalf("6000 cycles at epoch 1000 produced %d samples, want 6", len(d.Samples))
	}
	for i, s := range d.Samples {
		if want := int64(i+1) * 1000; s.Cycle != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, s.Cycle, want)
		}
	}
}

func TestTelemetryStallColumnsSumToCycleBudget(t *testing.T) {
	// 2500 cycles at epoch 1000 exercises the partial tail sample: the
	// counter columns must still telescope to exact end-of-run totals.
	res, cfg := telemetryRun(t, 2500, 1000)
	d := res.Telemetry
	if len(d.Samples) != 3 {
		t.Fatalf("2500 cycles at epoch 1000 produced %d samples, want 3 (2 full + 1 tail)", len(d.Samples))
	}
	for core := 0; core < cfg.Cores; core++ {
		var total float64
		for _, suffix := range []string{"issue", "tlb", "mem", "other"} {
			name := "core" + string(rune('0'+core)) + "/stall/" + suffix
			sum, ok := d.ColumnSum(name)
			if !ok {
				t.Fatalf("missing stall column %s", name)
			}
			total += sum
		}
		if total != float64(res.Cycles) {
			t.Fatalf("core %d stall columns sum to %v, want the cycle budget %d",
				core, total, res.Cycles)
		}
	}
}

func TestTelemetryCSVHasRequiredColumns(t *testing.T) {
	res, _ := telemetryRun(t, 4000, 1000)
	var buf bytes.Buffer
	if err := res.Telemetry.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, col := range []string{
		"cycle",
		"app0/l1tlb/hit_rate", "app1/l1tlb/hit_rate",
		"app0/l2tlb/hit_rate",
		"app0/tokens",
		"dram/queued", "dram/golden", "dram/silver", "dram/normal",
		"dram/chan0/bank0/queued",
		"ptw/walk_lat_p50", "ptw/walk_lat_p99", "ptw/queue_depth",
		"core0/stall/issue", "core0/stall/tlb",
	} {
		if !strings.Contains(header, col) {
			t.Errorf("CSV header missing column %s", col)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); n != 1+4 {
		t.Fatalf("CSV has %d lines, want header + 4 samples", n)
	}
	// Telemetry must actually observe traffic: the instruction counters sum
	// to the run's retired instructions.
	var want uint64
	for _, a := range res.Apps {
		want += a.Instructions
	}
	var got float64
	for app := 0; app < 2; app++ {
		sum, ok := res.Telemetry.ColumnSum("app" + string(rune('0'+app)) + "/instructions")
		if !ok {
			t.Fatalf("missing instruction column for app %d", app)
		}
		got += sum
	}
	if got != float64(want) {
		t.Fatalf("instruction columns sum to %v, want %d", got, want)
	}
}

func TestTelemetryChromeTraceValidates(t *testing.T) {
	res, _ := telemetryRun(t, 3000, 1000)
	var buf bytes.Buffer
	if err := res.Telemetry.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("simulator-produced trace fails validation: %v", err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	s := buf.String()
	for _, want := range []string{`"ph":"M"`, `"ph":"C"`, `"process_name"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	cfg := tinyConfig()
	res := tinyRun(t, cfg, []string{"3DS"}, 2000)
	if res.Telemetry != nil {
		t.Fatal("telemetry collected without TelemetryEpoch")
	}
}

func TestTelemetryRecordsFaultEvents(t *testing.T) {
	// A wedged page-table walk must surface both as a fault instant event
	// and (via the watchdog abort) as a watchdog.abort event.
	cfg := MASKConfig()
	cfg.Cores = 2
	cfg.WarpsPerCore = 8
	cfg.TelemetryEpoch = 500
	cfg.WatchdogCheckEvery = 500
	cfg.WatchdogStallChecks = 2
	cfg.FaultPlan = &faultinject.Plan{WedgePTWAfter: 200}
	res, err := Run(context.Background(), cfg, []string{"3DS", "CONS"}, 200_000)
	if err == nil {
		t.Fatal("wedged run completed without abort")
	}
	if res == nil || res.Telemetry == nil {
		t.Fatal("aborted run returned no telemetry")
	}
	var sawWedge, sawAbort bool
	for _, ev := range res.Telemetry.Events {
		switch ev.Name {
		case "fault.wedge_walk":
			sawWedge = true
		case "watchdog.abort":
			sawAbort = true
			if ev.Args["stall_cycles"] == "" {
				t.Error("watchdog.abort event missing stall_cycles arg")
			}
		}
	}
	if !sawWedge || !sawAbort {
		t.Fatalf("events missing: wedge=%v abort=%v (%d events)", sawWedge, sawAbort, len(res.Telemetry.Events))
	}
}
