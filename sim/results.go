package sim

import (
	"fmt"
	"strings"

	"masksim/internal/cache"
	"masksim/internal/dram"
	"masksim/internal/memreq"
	"masksim/internal/ptw"
	"masksim/internal/telemetry"
	"masksim/internal/tlb"
)

// AppResult holds one application's per-run measurements.
type AppResult struct {
	Name  string
	Cores int

	Instructions uint64
	MemInsts     uint64
	IPC          float64

	// L1TLB aggregates the app's per-core L1 TLB stats.
	L1TLB tlb.L1Stats
	// L2TLB is the app's slice of the shared L2 TLB counters (zero when the
	// design has no shared TLB).
	L2TLB tlb.AppTLBStats

	// DRAMBusCycles is the app's share of data-bus occupancy.
	DRAMBusCycles uint64
}

// Results is the complete measurement set from one simulation run.
type Results struct {
	Config string
	Cycles int64
	Apps   []AppResult

	// CyclesTicked / CyclesSkipped split the simulated cycles into those the
	// engine single-stepped and those covered by fast-forward jumps
	// (CyclesTicked + CyclesSkipped == Cycles). Purely a performance
	// diagnostic: all other fields are bit-identical whichever way a cycle
	// was covered, so these are excluded from the drift fingerprint and from
	// String.
	CyclesTicked  int64
	CyclesSkipped int64

	// TotalIPC is the sum of per-app IPCs ("IPC throughput", §7.1).
	TotalIPC float64
	// IdleFraction is the fraction of core-cycles with no schedulable warp —
	// the direct cost of translation stalls (Figure 4).
	IdleFraction float64

	// TransStallCycles and DataStallCycles decompose warp memory-stall time
	// into its translation and data phases (the Figure 4 anatomy): warps
	// wait TransStallCycles for address translation before their data
	// requests can even issue.
	TransStallCycles uint64
	DataStallCycles  uint64

	Walker ptw.Stats

	// DRAMClass indexes dram.ClassCounters by memreq.Class.
	DRAMClass [2]dram.ClassCounters
	// DRAMBandwidthUtil is the fraction of total bus-cycles used, per class
	// (Figure 8).
	DRAMBandwidthUtil [2]float64

	// L2CacheLevel holds the shared L2 data cache stats per page-walk level
	// (index 0 = data demand requests) — the §5.3/§7.2 analysis.
	L2CacheLevel [memreq.MaxWalkLevel + 1]cache.Stats

	// L2TLBTotal sums the shared TLB counters across apps.
	L2TLBTotal tlb.AppTLBStats
	// BypassCacheHitRate is the MASK TLB bypass cache hit rate (§7.2).
	BypassCacheHitRate float64

	// Faults reports demand-paging activity (zero unless Config.DemandPaging).
	Faults ptw.FaultStats

	// Prefetch reports TLB-prefetcher activity (zero unless
	// Config.TLBPrefetch).
	Prefetch tlb.PrefetchStats

	// Trace is the sampled time series (empty unless Config.TraceInterval).
	Trace []TraceSample

	// Telemetry is the epoch-sampled probe time series and instant-event
	// stream (nil unless Config.TelemetryEpoch > 0); export it with
	// WriteCSV, WriteJSONL or WriteChromeTrace.
	Telemetry *telemetry.Data

	// Aborted is set when the run was cut short (watchdog abort, context
	// cancellation or deadline); the rest of the Results then covers only the
	// cycles actually simulated (Cycles reports how far the run got).
	Aborted bool
	// AbortReason is the supervising error's message when Aborted.
	AbortReason string
}

// collect gathers statistics from every component after a run.
func (s *Simulator) collect(cycles int64) *Results {
	r := &Results{
		Config:        s.cfg.Name,
		Cycles:        cycles,
		CyclesTicked:  s.eng.Ticked(),
		CyclesSkipped: s.eng.Skipped(),
	}
	if r.Config == "" {
		r.Config = s.cfg.Design.String()
	}

	var idle, coreCycles uint64
	l1Idx := 0
	for appIdx, app := range s.apps {
		name := app.Profile.Name
		if app.Trace != nil {
			name = app.Trace.Name
		}
		ar := AppResult{Name: name, Cores: s.coresPerApp[appIdx]}
		for _, core := range s.cores {
			if core.AppID() != appIdx {
				continue
			}
			st := core.Stats
			ar.Instructions += st.Instructions
			ar.MemInsts += st.MemInsts
			idle += st.IdleCycles
			coreCycles += st.Cycles
			r.TransStallCycles += st.TransStallCycles
			r.DataStallCycles += st.DataStallCycles
		}
		if !s.cfg.Ideal {
			// L1 TLBs are created in core order, so the app's TLBs are the
			// next coresPerApp[appIdx] entries.
			for i := 0; i < s.coresPerApp[appIdx]; i++ {
				st := s.l1tlbs[l1Idx].Stats
				ar.L1TLB.Accesses += st.Accesses
				ar.L1TLB.Hits += st.Hits
				ar.L1TLB.Misses += st.Misses
				ar.L1TLB.StalledWarpSum += st.StalledWarpSum
				ar.L1TLB.StalledWarpCount += st.StalledWarpCount
				l1Idx++
			}
		}
		if s.l2tlb != nil {
			ar.L2TLB = s.l2tlb.AppStats(appIdx)
		}
		ar.DRAMBusCycles = s.mem.AppBusCycles(appIdx)
		if cycles > 0 {
			ar.IPC = float64(ar.Instructions) / float64(cycles)
		}
		r.TotalIPC += ar.IPC
		r.Apps = append(r.Apps, ar)
	}
	if coreCycles > 0 {
		r.IdleFraction = float64(idle) / float64(coreCycles)
	}

	if !s.cfg.Ideal {
		r.Walker = s.walker.Stats
	}
	r.DRAMClass[memreq.Data] = s.mem.Class[memreq.Data]
	r.DRAMClass[memreq.Translation] = s.mem.Class[memreq.Translation]
	r.DRAMBandwidthUtil[memreq.Data] = s.mem.BandwidthUtil(memreq.Data)
	r.DRAMBandwidthUtil[memreq.Translation] = s.mem.BandwidthUtil(memreq.Translation)

	for lvl := 0; lvl <= memreq.MaxWalkLevel; lvl++ {
		r.L2CacheLevel[lvl] = s.l2c.LevelStats(lvl)
	}
	if s.l2tlb != nil {
		r.L2TLBTotal = s.l2tlb.TotalStats()
		r.BypassCacheHitRate = s.l2tlb.BypassHitRate()
		r.Prefetch = s.l2tlb.PrefetchStats()
	}
	if s.faults != nil {
		r.Faults = s.faults.Stats
	}
	r.Trace = s.trace.samples
	if s.tel != nil {
		// A final partial-epoch sample makes counter columns telescope to the
		// exact end-of-run totals for any run length.
		s.tel.Finish(cycles)
		r.Telemetry = s.tel.Data()
	}
	return r
}

// IPCs returns the per-app shared IPC vector, in app order, for the metrics
// package.
func (r *Results) IPCs() []float64 {
	out := make([]float64, len(r.Apps))
	for i, a := range r.Apps {
		out[i] = a.IPC
	}
	return out
}

// AppByName returns the result for the named app (first match) and whether
// it was found.
func (r *Results) AppByName(name string) (AppResult, bool) {
	for _, a := range r.Apps {
		if a.Name == name {
			return a, true
		}
	}
	return AppResult{}, false
}

// String renders a compact human-readable summary.
func (r *Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "config=%s cycles=%d totalIPC=%.3f idle=%.1f%%\n",
		r.Config, r.Cycles, r.TotalIPC, 100*r.IdleFraction)
	if r.Aborted {
		reason := r.AbortReason
		if i := strings.IndexByte(reason, '\n'); i >= 0 {
			reason = reason[:i]
		}
		fmt.Fprintf(&b, "  ABORTED (partial results): %s\n", reason)
	}
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "  %-6s cores=%-2d IPC=%.3f L1TLBmiss=%.1f%% L2TLBmiss=%.1f%% stalledWarps/miss=%.1f\n",
			a.Name, a.Cores, a.IPC,
			100*a.L1TLB.MissRate(), 100*a.L2TLB.MissRate(), a.L1TLB.AvgStalledWarps())
	}
	fmt.Fprintf(&b, "  walker: avgConcurrent=%.1f avgLatency=%.0fcy  DRAM: transBW=%.2f%% dataBW=%.2f%% transLat=%.0f dataLat=%.0f\n",
		r.Walker.AvgConcurrent(), r.Walker.AvgLatency(),
		100*r.DRAMBandwidthUtil[memreq.Translation], 100*r.DRAMBandwidthUtil[memreq.Data],
		r.DRAMClass[memreq.Translation].AvgLatency(), r.DRAMClass[memreq.Data].AvgLatency())
	fmt.Fprintf(&b, "  L2$ hit rates: data=%.1f%%", 100*r.L2CacheLevel[0].HitRate())
	for lvl := 1; lvl <= memreq.MaxWalkLevel; lvl++ {
		s := r.L2CacheLevel[lvl]
		fmt.Fprintf(&b, " lvl%d=%.1f%%(byp %d)", lvl, 100*s.HitRate(), s.Bypasses)
	}
	if r.BypassCacheHitRate > 0 {
		fmt.Fprintf(&b, "  tlbBypass$=%.1f%%", 100*r.BypassCacheHitRate)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}
