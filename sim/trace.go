package sim

// TraceSample is one point of the optional time series (Config.TraceInterval):
// windowed IPC, shared-TLB behaviour, and adaptive-mechanism state. The
// cmd/masksim -trace flag writes these as CSV for plotting; tests use them to
// observe convergence of the token policy.
type TraceSample struct {
	Cycle int64
	// IPC is the system IPC over the window ending at Cycle.
	IPC float64
	// L2TLBMissRate is the shared TLB miss rate over the window (0 when the
	// design has no shared TLB or the window saw no accesses).
	L2TLBMissRate float64
	// ConcurrentWalks is the walker's in-flight count at the sample.
	ConcurrentWalks int
	// TokensPerApp is each app's per-core TLB-Fill Token count.
	TokensPerApp []int
	// OutstandingFaults counts demand-paging faults in service or queued.
	OutstandingFaults int
}

// traceState accumulates window deltas between samples.
type traceState struct {
	samples []TraceSample

	lastCycle    int64
	lastInstr    uint64
	lastL2Access uint64
	lastL2Miss   uint64
}

// traceTick is registered when Config.TraceInterval > 0.
func (s *Simulator) traceTick(now int64) {
	iv := s.cfg.TraceInterval
	if iv <= 0 || now == 0 || now%iv != 0 {
		return
	}
	st := &s.trace

	var instr uint64
	for _, c := range s.cores {
		instr += c.Stats.Instructions
	}
	sample := TraceSample{Cycle: now}
	if dc := now - st.lastCycle; dc > 0 {
		sample.IPC = float64(instr-st.lastInstr) / float64(dc)
	}
	if s.l2tlb != nil {
		tot := s.l2tlb.TotalStats()
		acc := tot.Accesses - st.lastL2Access
		miss := tot.Misses - st.lastL2Miss
		if acc > 0 {
			sample.L2TLBMissRate = float64(miss) / float64(acc)
		}
		st.lastL2Access = tot.Accesses
		st.lastL2Miss = tot.Misses
	}
	if !s.cfg.Ideal {
		sample.ConcurrentWalks = s.walker.ActiveWalks()
	}
	if s.tokens != nil && s.tokens.Enabled() {
		for app := range s.apps {
			sample.TokensPerApp = append(sample.TokensPerApp, s.tokens.Tokens(app))
		}
	}
	if s.faults != nil {
		sample.OutstandingFaults = s.faults.Outstanding()
	}
	st.lastCycle = now
	st.lastInstr = instr
	st.samples = append(st.samples, sample)
}
