package sim

import (
	"fmt"
	"math"

	"masksim/internal/dram"
	"masksim/internal/metrics"
	"masksim/internal/telemetry"
)

// buildTelemetry constructs the epoch sampler when Config.TelemetryEpoch > 0
// and registers every probe against the wired components. Probes are
// pull-based closures over counters the components maintain anyway, so the
// only run-time additions are the collector's once-per-epoch snapshot, the
// walker's latency histogram, and the nil-checked event sinks — a disabled
// run (TelemetryEpoch == 0) skips this entirely.
//
// Probe catalogue and naming scheme: docs/OBSERVABILITY.md. The first
// slash-separated segment of each name is the component; the Chrome-trace
// exporter renders one track group per component.
func (s *Simulator) buildTelemetry() {
	if s.cfg.TelemetryEpoch <= 0 {
		return
	}
	tel := telemetry.NewCollector(s.cfg.TelemetryEpoch)
	s.tel = tel
	reg := func(err error) {
		// Probe names are generated from static schemes; a collision or bad
		// name is a wiring bug, not a runtime condition.
		if err != nil {
			panic(err)
		}
	}

	// --- per-application probes ------------------------------------------
	l1Idx := 0
	for appIdx := range s.apps {
		app := appIdx
		reg(tel.Counter(fmt.Sprintf("app%d/instructions", app), func() float64 {
			var n uint64
			for _, c := range s.cores {
				if c.AppID() == app {
					n += c.Stats.Instructions
				}
			}
			return float64(n)
		}))
		if !s.cfg.Ideal {
			// L1 TLBs are created in core order, so the app's TLBs are the
			// next coresPerApp[appIdx] entries (same walk as Results.collect).
			appTLBs := s.l1tlbs[l1Idx : l1Idx+s.coresPerApp[appIdx]]
			l1Idx += s.coresPerApp[appIdx]
			reg(tel.Rate(fmt.Sprintf("app%d/l1tlb/hit_rate", app),
				func() float64 {
					var n uint64
					for _, t := range appTLBs {
						n += t.Stats.Hits
					}
					return float64(n)
				},
				func() float64 {
					var n uint64
					for _, t := range appTLBs {
						n += t.Stats.Accesses
					}
					return float64(n)
				}))
		}
		if s.l2tlb != nil {
			reg(tel.Rate(fmt.Sprintf("app%d/l2tlb/hit_rate", app),
				func() float64 { return float64(s.l2tlb.AppStats(app).Hits) },
				func() float64 { return float64(s.l2tlb.AppStats(app).Accesses) }))
		}
		if s.tokens.Enabled() {
			reg(tel.Gauge(fmt.Sprintf("app%d/tokens", app), func() float64 {
				return float64(s.tokens.Tokens(app))
			}))
		}
	}

	// --- per-core stall attribution --------------------------------------
	// The four counters partition each core's cycle budget: a cycle either
	// issues an instruction or idles on translation (tlb), on data after
	// translation (mem), or outside the memory system (other). Their column
	// sums therefore add up to exactly the simulated cycle count per core.
	for _, core := range s.cores {
		c := core
		prefix := fmt.Sprintf("core%d/stall/", c.ID())
		reg(tel.Counter(prefix+"issue", func() float64 { return float64(c.Stats.Instructions) }))
		reg(tel.Counter(prefix+"tlb", func() float64 { return float64(c.Stats.IdleTransCycles) }))
		reg(tel.Counter(prefix+"mem", func() float64 { return float64(c.Stats.IdleDataCycles) }))
		reg(tel.Counter(prefix+"other", func() float64 { return float64(c.Stats.IdleOtherCycles) }))
	}

	// --- page table walker ------------------------------------------------
	if !s.cfg.Ideal {
		hist := metrics.NewHistogram()
		s.walker.SetLatencyHistogram(hist)
		reg(tel.Gauge("ptw/queue_depth", func() float64 { return float64(s.walker.QueuedWalks()) }))
		reg(tel.Gauge("ptw/active_walks", func() float64 { return float64(s.walker.ActiveWalks()) }))
		reg(tel.Counter("ptw/walks_completed", func() float64 { return float64(s.walker.Stats.Completed) }))
		for _, q := range []struct {
			suffix string
			p      float64
		}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
			p := q.p
			reg(tel.Gauge("ptw/walk_lat_"+q.suffix, func() float64 {
				v := hist.Quantile(p)
				if math.IsNaN(v) {
					return 0 // no completed walks yet
				}
				return v
			}))
		}
	}

	// --- shared L2 TLB ----------------------------------------------------
	if s.l2tlb != nil {
		reg(tel.Gauge("l2tlb/queue", func() float64 { return float64(s.l2tlb.QueueLen()) }))
		reg(tel.Gauge("l2tlb/outstanding_misses", func() float64 { return float64(s.l2tlb.OutstandingMisses()) }))
		if s.cfg.Mask.Tokens {
			reg(tel.Gauge("l2tlb/bypass_hit_rate", func() float64 { return s.l2tlb.BypassHitRate() }))
		}
	}

	// --- DRAM queues ------------------------------------------------------
	// The occupancy matrix is computed once per epoch by an OnSample hook;
	// the per-channel and per-bank gauges read the cached snapshot.
	var snap []dram.ChannelSnapshot
	tel.OnSample(func(int64) { snap = s.mem.QueueSnapshot(snap) })
	sumClass := func(pick func(dram.ChannelSnapshot) int) func() float64 {
		return func() float64 {
			n := 0
			for _, cs := range snap {
				n += pick(cs)
			}
			return float64(n)
		}
	}
	reg(tel.Gauge("dram/queued", sumClass(dram.ChannelSnapshot.Total)))
	reg(tel.Gauge("dram/golden", sumClass(func(cs dram.ChannelSnapshot) int { return cs.Golden })))
	reg(tel.Gauge("dram/silver", sumClass(func(cs dram.ChannelSnapshot) int { return cs.Silver })))
	reg(tel.Gauge("dram/normal", sumClass(func(cs dram.ChannelSnapshot) int { return cs.Normal })))
	reg(tel.Gauge("dram/inflight", func() float64 { return float64(s.mem.Inflight()) }))
	for ch := 0; ch < s.cfg.DRAM.Channels; ch++ {
		chIdx := ch
		reg(tel.Gauge(fmt.Sprintf("dram/chan%d/queued", chIdx), func() float64 {
			return float64(snap[chIdx].Total())
		}))
		for b := 0; b < s.cfg.DRAM.BanksPerChannel; b++ {
			bIdx := b
			reg(tel.Gauge(fmt.Sprintf("dram/chan%d/bank%d/queued", chIdx, bIdx), func() float64 {
				if bIdx >= len(snap[chIdx].PerBank) {
					return 0 // scheduler without queue inspection
				}
				return float64(snap[chIdx].PerBank[bIdx])
			}))
		}
	}

	// --- streaming sink ---------------------------------------------------
	// Bound after every probe is registered: binding fixes the column
	// catalogue and writes each attached output's prelude.
	if s.cfg.TelemetrySink != nil {
		if err := tel.SetSink(s.cfg.TelemetrySink); err != nil {
			panic(err) // double-bind or no outputs: wiring bug at the call site
		}
	}

	// --- event sinks and tick registration --------------------------------
	if plan := s.cfg.FaultPlan; plan != nil {
		plan.SetEventSink(tel)
	}
	// Register last so every snapshot reflects a fully-ticked cycle.
	s.eng.Register(tel)
}
