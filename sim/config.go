// Package sim is the public API of masksim: it wires the simulated GPU
// (cores, TLBs, page table walker, caches, DRAM) according to a Config,
// runs multiprogrammed workloads, and reports the paper's metrics.
//
// The standard configurations mirror the designs evaluated in the paper:
//
//	Static     — statically partitioned L2 cache ways, L2 TLB ways and DRAM
//	             channels (models NVIDIA GRID / AMD FirePro, §2.2)
//	PWCache    — private L1 TLBs + shared page walk cache (Power et al.)
//	SharedTLB  — private L1 TLBs + shared L2 TLB
//	MASK       — SharedTLB + TLB-Fill Tokens + Address-Translation-Aware L2
//	             Bypass + Address-Space-Aware DRAM scheduler (§5)
//	MASK-TLB / MASK-Cache / MASK-DRAM — each mechanism alone (§7.2)
//	Ideal      — every L1 TLB access hits; zero translation overhead
package sim

import (
	"fmt"

	"masksim/internal/dram"
	"masksim/internal/faultinject"
	"masksim/internal/pagetable"
	"masksim/internal/telemetry"
)

// Design selects the baseline translation hierarchy of Figure 2.
type Design uint8

// Translation hierarchy designs.
const (
	// DesignSharedTLB places a shared L2 TLB between the L1 TLBs and the
	// page table walker (Figure 2b). MASK builds on this design.
	DesignSharedTLB Design = iota
	// DesignPWCache routes L1 TLB misses directly to the walker, which
	// probes a shared page walk cache (Figure 2a).
	DesignPWCache
)

// String names the design.
func (d Design) String() string {
	if d == DesignPWCache {
		return "PWCache"
	}
	return "SharedTLB"
}

// Mechanisms toggles MASK's three components independently (§7.2 evaluates
// each in isolation as MASK-TLB, MASK-Cache and MASK-DRAM).
type Mechanisms struct {
	Tokens    bool // TLB-Fill Tokens + TLB bypass cache (§5.2)
	L2Bypass  bool // Address-Translation-Aware L2 Bypass (§5.3)
	DRAMSched bool // Address-Space-Aware DRAM scheduler (§5.4)
}

// Any reports whether at least one mechanism is enabled.
func (m Mechanisms) Any() bool { return m.Tokens || m.L2Bypass || m.DRAMSched }

// CacheParams configures one cache instance.
type CacheParams struct {
	SizeBytes    int
	Ways         int
	LineSize     int
	Banks        int
	PortsPerBank int
	Latency      int64
	QueueCap     int
	MSHRs        int
	// WriteCombineWindow enables store combining in write-through caches
	// (see cache.Config.WriteCombineWindow).
	WriteCombineWindow int64
}

// Config is the full simulated-system description (paper Table 1 defaults).
type Config struct {
	Name string

	Cores        int
	WarpsPerCore int

	L1TLBEntries int

	L2TLBEntries  int
	L2TLBWays     int
	L2TLBPorts    int
	L2TLBLatency  int64
	L2TLBQueueCap int
	// BypassCacheEntries sizes the MASK TLB bypass cache (§5.2).
	BypassCacheEntries int

	L1Cache CacheParams
	L2Cache CacheParams
	// PWCache is the page walk cache used by DesignPWCache.
	PWCache CacheParams

	WalkerConcurrency int
	PageSize          int

	DRAM dram.Config

	Design Design
	// Ideal makes every translation free (hypothetical perfect TLB).
	Ideal bool
	// Static partitions L2 cache ways, L2 TLB ways and DRAM channels evenly
	// across applications.
	Static bool
	Mask   Mechanisms

	// EpochCycles is the adaptation epoch for tokens and the L2 bypass
	// policy; the paper uses 100K cycles. Run scales it down for short runs.
	EpochCycles int64
	// TokenInitFraction is InitialTokens (§6: 80%).
	TokenInitFraction float64
	// ThreshMax is the Silver Queue quota ceiling (§6: 500).
	ThreshMax int

	// FCFSSched replaces the baseline FR-FCFS with plain FCFS (the §7.3
	// memory-scheduler sensitivity study). Ignored when Mask.DRAMSched is
	// enabled.
	FCFSSched bool

	// TimeMuxQuantum, when positive, models coarse time multiplexing: every
	// quantum the GPU's TLBs and caches lose TimeMuxEvict of their contents,
	// as if other processes ran in between (Figure 1's experiment).
	TimeMuxQuantum int64
	TimeMuxEvict   float64

	// DemandPaging enables the §5.5 extension: a page's first touch raises
	// a major fault serviced at FaultLatency cycles with FaultConcurrency
	// parallel handlers. Ignored under Ideal.
	DemandPaging     bool
	FaultLatency     int64
	FaultConcurrency int

	// RoundRobinSched replaces the GTO warp scheduler with round-robin
	// (warp-scheduler sensitivity; the paper's baseline is GTO).
	RoundRobinSched bool

	// TLBPrefetch enables the stride TLB prefetcher at the shared L2 TLB
	// (related-work comparison, §8.2). Requires the SharedTLB design.
	TLBPrefetch bool

	// TraceInterval, when positive, samples a time series of system state
	// every TraceInterval cycles into Results.Trace.
	TraceInterval int64

	// TelemetryEpoch, when positive, enables the cycle-level telemetry
	// subsystem: every TelemetryEpoch cycles the collector snapshots every
	// registered probe (per-app TLB hit rates, walker latency quantiles,
	// DRAM queue occupancy, per-core stall attribution) into
	// Results.Telemetry, exportable as CSV/JSONL/Chrome trace
	// (docs/OBSERVABILITY.md). Zero (the default) builds no collector and
	// adds no per-event work to the run.
	TelemetryEpoch int64

	// TelemetrySink, when non-nil (requires TelemetryEpoch > 0), streams
	// telemetry out as each epoch closes instead of accumulating it in
	// Results.Telemetry: attach CSV/JSONL/Chrome-trace writers to the sink
	// before the run, and the collector writes each epoch's rows the moment
	// the epoch completes, holding O(one epoch) telemetry state regardless of
	// run length. Output is byte-identical to the buffered exporters, and
	// checkpoints record the sink's resume offsets so a restored run
	// continues its output files without duplicate or missing epochs
	// (docs/FORMATS.md). The caller owns the sink and must Close it after the
	// run. Like FaultPlan, the pointer is stripped from fingerprints: it does
	// not affect simulated behavior.
	TelemetrySink *telemetry.StreamSink

	// WatchdogCheckEvery is the progress-watchdog check interval in cycles.
	// If no component makes progress for WatchdogStallChecks consecutive
	// checks, the run aborts with a diagnostic dump instead of spinning
	// forever. Zero disables the watchdog; negative is invalid.
	WatchdogCheckEvery int64
	// WatchdogStallChecks is the number of consecutive no-progress checks
	// tolerated before abort (default 4 when zero).
	WatchdogStallChecks int

	// FaultPlan, when non-nil, injects the described faults into the run
	// (wedged page-table walks, dropped DRAM responses, an engine-tick
	// panic). Test-only: it exists to exercise the supervision layer.
	FaultPlan *faultinject.Plan

	// Shards, when > 1, runs each simulated cycle's core and L1-cache phases
	// on that many worker goroutines with a cycle barrier (docs/MODEL.md
	// §10). Results are bit-identical at every shard count — cross-shard
	// traffic is deferred into exchange buffers replayed in registration
	// order — so, like FastForward, this is purely a speed knob. 0 and 1 both
	// select the plain sequential engine; the count is capped at the number
	// of independent core clusters. The CLIs expose -shards, mapping their
	// "0 = derive from GOMAXPROCS" convention to a concrete count.
	Shards int

	// ShardBatch enables quiescent-cycle batching under a shard plan: on a
	// cycle where every parallel-phase component (cores, L1 TLBs, L1Ds)
	// reports a horizon beyond now, the coordinator runs the cycle alone
	// without waking shard workers. Bit-identical either way — such a cycle's
	// parallel ticks are provably no-ops — so, like FastForward (which skips
	// cycles where the WHOLE system is quiescent), this is purely a speed
	// knob. No effect when Shards selects the sequential engine. The standard
	// configurations enable it; masksim's -no-shard-batch turns it off for
	// A/B verification.
	ShardBatch bool

	// FastForward enables the engine's next-event fast-forward: spans in
	// which every component is provably quiescent are jumped over instead of
	// ticked cycle by cycle. Results are bit-identical either way (see
	// docs/MODEL.md on the quiescence contract), so this is purely a speed
	// knob; the standard configurations enable it, and masksim's
	// -no-fastforward flag turns it off for A/B verification.
	FastForward bool

	// CheckpointEvery, when positive (and CheckpointDir is set), writes a
	// full simulator checkpoint every CheckpointEvery cycles, at the same
	// supervision boundaries as watchdog checks; fast-forward jumps are
	// capped so checkpoints land on exact cycles (docs/MODEL.md §9). Zero
	// (the default) takes no checkpoints and adds no per-cycle work.
	CheckpointEvery int64
	// CheckpointDir is the directory checkpoint files are written to as
	// <fingerprint>-<cycle>.ckpt (crash checkpoints as
	// <fingerprint>-crash.ckpt), via atomic tmp+rename writes.
	CheckpointDir string
	// Resume makes Run look for the newest valid checkpoint of this exact
	// simulation in CheckpointDir before simulating, restoring it and
	// running only the remaining cycles. Rejected (corrupt, truncated,
	// stale-format, wrong-simulation) files are skipped; with no usable
	// checkpoint the run starts clean.
	Resume bool
}

// Baseline returns the paper's Table 1 system with the SharedTLB design and
// no MASK mechanisms.
func Baseline() Config {
	return Config{
		Name:         "SharedTLB",
		Cores:        30,
		WarpsPerCore: 64,

		L1TLBEntries: 64,

		L2TLBEntries:       512,
		L2TLBWays:          16,
		L2TLBPorts:         2,
		L2TLBLatency:       10,
		L2TLBQueueCap:      64,
		BypassCacheEntries: 32,

		L1Cache: CacheParams{
			SizeBytes: 16 << 10, Ways: 4, LineSize: 64,
			Banks: 1, PortsPerBank: 2, Latency: 1, QueueCap: 32, MSHRs: 32,
			WriteCombineWindow: 128,
		},
		L2Cache: CacheParams{
			SizeBytes: 2 << 20, Ways: 16, LineSize: 64,
			Banks: 16, PortsPerBank: 2, Latency: 10, QueueCap: 32, MSHRs: 128,
		},
		PWCache: CacheParams{
			SizeBytes: 8 << 10, Ways: 16, LineSize: 64,
			Banks: 1, PortsPerBank: 2, Latency: 10, QueueCap: 32, MSHRs: 32,
		},

		WalkerConcurrency: 64,
		PageSize:          pagetable.PageSize4K,

		DRAM: dram.DefaultConfig(),

		Design: DesignSharedTLB,

		EpochCycles:       100_000,
		TokenInitFraction: 0.80,
		ThreshMax:         500,

		FaultLatency:     20_000,
		FaultConcurrency: 16,

		WatchdogCheckEvery:  25_000,
		WatchdogStallChecks: 4,

		FastForward: true,
		ShardBatch:  true,
	}
}

// SharedTLBConfig is the best-performing state-of-the-art baseline.
func SharedTLBConfig() Config { return Baseline() }

// PWCacheConfig is the page-walk-cache baseline (Power et al.).
func PWCacheConfig() Config {
	c := Baseline()
	c.Name = "PWCache"
	c.Design = DesignPWCache
	return c
}

// StaticConfig models static hardware partitioning (NVIDIA GRID-style).
func StaticConfig() Config {
	c := Baseline()
	c.Name = "Static"
	c.Static = true
	return c
}

// IdealConfig is the perfect-TLB upper bound.
func IdealConfig() Config {
	c := Baseline()
	c.Name = "Ideal"
	c.Ideal = true
	return c
}

// MASKConfig enables all three MASK mechanisms.
func MASKConfig() Config {
	c := Baseline()
	c.Name = "MASK"
	c.Mask = Mechanisms{Tokens: true, L2Bypass: true, DRAMSched: true}
	return c
}

// MASKTLBConfig enables only TLB-Fill Tokens (§7.2's MASK-TLB).
func MASKTLBConfig() Config {
	c := Baseline()
	c.Name = "MASK-TLB"
	c.Mask = Mechanisms{Tokens: true}
	return c
}

// MASKCacheConfig enables only the L2 bypass (§7.2's MASK-Cache).
func MASKCacheConfig() Config {
	c := Baseline()
	c.Name = "MASK-Cache"
	c.Mask = Mechanisms{L2Bypass: true}
	return c
}

// MASKDRAMConfig enables only the DRAM scheduler (§7.2's MASK-DRAM).
func MASKDRAMConfig() Config {
	c := Baseline()
	c.Name = "MASK-DRAM"
	c.Mask = Mechanisms{DRAMSched: true}
	return c
}

// FermiConfig approximates the GTX480 (Fermi) platform of the generality
// study (§7.3, Table 4): 15 cores, smaller shared L2, narrower memory
// system.
func FermiConfig() Config {
	c := Baseline()
	c.Name = "Fermi"
	c.Cores = 16
	c.L2Cache.SizeBytes = 768 << 10
	c.L2Cache.Banks = 8
	c.DRAM.Channels = 6
	return c
}

// IntegratedConfig approximates the integrated-GPU platform of the
// generality study (§7.3, Table 4): fewer cores sharing a low-bandwidth
// memory system with slower DRAM.
func IntegratedConfig() Config {
	c := Baseline()
	c.Name = "Integrated"
	c.Cores = 8
	c.L2Cache.SizeBytes = 1 << 20
	c.L2Cache.Banks = 8
	c.DRAM.Channels = 2
	c.DRAM.RowHitLatency = 60
	c.DRAM.RowClosedLatency = 120
	c.DRAM.RowConflictLat = 180
	return c
}

// standardConfigs maps CLI names to constructors; ConfigByName resolves
// the set evaluated in Figures 11–15.
var standardConfigs = map[string]func() Config{
	"Static":     StaticConfig,
	"PWCache":    PWCacheConfig,
	"SharedTLB":  SharedTLBConfig,
	"MASK-TLB":   MASKTLBConfig,
	"MASK-Cache": MASKCacheConfig,
	"MASK-DRAM":  MASKDRAMConfig,
	"MASK":       MASKConfig,
	"Ideal":      IdealConfig,
	"Fermi":      FermiConfig,
	"Integrated": IntegratedConfig,
}

// ConfigByName returns the named standard configuration.
func ConfigByName(name string) (Config, error) {
	f, ok := standardConfigs[name]
	if !ok {
		return Config{}, fmt.Errorf("sim: unknown configuration %q", name)
	}
	return f(), nil
}

// ConfigNames lists the standard configuration names in evaluation order.
func ConfigNames() []string {
	return []string{"Static", "PWCache", "SharedTLB", "MASK-TLB", "MASK-Cache", "MASK-DRAM", "MASK", "Ideal"}
}

// Validate reports configuration errors early and clearly.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("sim: Cores must be >= 1, got %d", c.Cores)
	case c.WarpsPerCore < 1:
		return fmt.Errorf("sim: WarpsPerCore must be >= 1, got %d", c.WarpsPerCore)
	case c.L1TLBEntries < 1:
		return fmt.Errorf("sim: L1TLBEntries must be >= 1, got %d", c.L1TLBEntries)
	case c.L2TLBEntries < c.L2TLBWays || c.L2TLBWays < 1:
		return fmt.Errorf("sim: invalid L2 TLB geometry %d entries / %d ways", c.L2TLBEntries, c.L2TLBWays)
	case c.PageSize != pagetable.PageSize4K && c.PageSize != pagetable.PageSize2M:
		return fmt.Errorf("sim: unsupported page size %d", c.PageSize)
	case c.DRAM.Channels < 1 || c.DRAM.BanksPerChannel < 1:
		return fmt.Errorf("sim: invalid DRAM geometry %+v", c.DRAM)
	case c.TraceInterval < 0:
		return fmt.Errorf("sim: TraceInterval must be >= 0, got %d", c.TraceInterval)
	case c.TelemetryEpoch < 0:
		return fmt.Errorf("sim: TelemetryEpoch must be >= 0, got %d", c.TelemetryEpoch)
	case c.TelemetrySink != nil && c.TelemetryEpoch <= 0:
		return fmt.Errorf("sim: TelemetrySink requires TelemetryEpoch > 0")
	case c.EpochCycles < 0:
		return fmt.Errorf("sim: EpochCycles must be >= 0, got %d", c.EpochCycles)
	case c.TimeMuxQuantum < 0:
		return fmt.Errorf("sim: TimeMuxQuantum must be >= 0, got %d", c.TimeMuxQuantum)
	case c.TimeMuxEvict < 0 || c.TimeMuxEvict > 1:
		return fmt.Errorf("sim: TimeMuxEvict must be in [0,1], got %g", c.TimeMuxEvict)
	case c.TokenInitFraction < 0 || c.TokenInitFraction > 1:
		return fmt.Errorf("sim: TokenInitFraction must be in [0,1], got %g", c.TokenInitFraction)
	case c.WatchdogCheckEvery < 0:
		return fmt.Errorf("sim: WatchdogCheckEvery must be >= 0, got %d", c.WatchdogCheckEvery)
	case c.WatchdogStallChecks < 0:
		return fmt.Errorf("sim: WatchdogStallChecks must be >= 0, got %d", c.WatchdogStallChecks)
	case c.Shards < 0:
		return fmt.Errorf("sim: Shards must be >= 0, got %d", c.Shards)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("sim: CheckpointEvery must be >= 0, got %d", c.CheckpointEvery)
	case c.CheckpointEvery > 0 && c.CheckpointDir == "":
		return fmt.Errorf("sim: CheckpointEvery requires CheckpointDir")
	case c.Resume && c.CheckpointDir == "":
		return fmt.Errorf("sim: Resume requires CheckpointDir")
	case c.DemandPaging && c.FaultLatency < 1:
		return fmt.Errorf("sim: DemandPaging needs FaultLatency >= 1, got %d", c.FaultLatency)
	case c.DemandPaging && c.FaultConcurrency < 1:
		return fmt.Errorf("sim: DemandPaging needs FaultConcurrency >= 1, got %d", c.FaultConcurrency)
	}
	return nil
}
