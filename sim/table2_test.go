package sim

import (
	"context"
	"testing"

	"masksim/internal/workload"
)

// TestTable2Behaviour validates the workload calibration end-to-end: every
// benchmark, run alone on the full Table 1 machine, must land in its
// declared Table 2 quadrant. Thresholds are deliberately loose (the paper
// splits classes at 20%); this is a tripwire for calibration regressions,
// not a precision check.
func TestTable2Behaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 30 benchmarks on the full machine")
	}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := workload.MustByName(name)
			// Low-miss benchmarks have slow L1-TLB turnover, so their
			// steady-state rates need a longer warmup than the rest.
			cycles := int64(20_000)
			if p.L1Class == workload.Low && p.L2Class == workload.Low {
				cycles = 50_000
			}
			res, err := RunAlone(context.Background(), SharedTLBConfig(), name, 30, cycles)
			if err != nil {
				t.Fatal(err)
			}
			l1 := res.Apps[0].L1TLB.MissRate()
			l2 := res.Apps[0].L2TLB.MissRate()
			if p.L1Class == workload.Low && l1 > 0.30 {
				t.Errorf("L1 miss %.1f%% too high for a low-L1 benchmark", 100*l1)
			}
			if p.L1Class == workload.High && l1 < 0.15 {
				t.Errorf("L1 miss %.1f%% too low for a high-L1 benchmark", 100*l1)
			}
			if p.L2Class == workload.Low && l2 > 0.55 {
				t.Errorf("L2 miss %.1f%% too high for a low-L2 benchmark", 100*l2)
			}
			if p.L2Class == workload.High && l2 < 0.45 {
				t.Errorf("L2 miss %.1f%% too low for a high-L2 benchmark", 100*l2)
			}
		})
	}
}
