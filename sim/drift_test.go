package sim

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"masksim/internal/memreq"
)

// driftScenarios cover every design the hot path flows through: the MASK
// mechanisms (tokens + bypass + Golden/Silver DRAM queues), the SharedTLB and
// PWCache baselines, Static partitioning, and single-app calibration runs on
// the Table 2 reference quadrants (one representative per quadrant).
//
// Each run takes a config mutator so equivalence suites (fast-forward,
// sharded execution) can rerun the exact scenario with one knob flipped;
// pass a no-op for the canonical configuration.
var driftScenarios = []struct {
	name   string
	run    func(mod func(*Config)) (*Results, error)
	cycles int64
}{
	{"mask-3DS+CONS", func(mod func(*Config)) (*Results, error) {
		cfg := MASKConfig()
		mod(&cfg)
		return Run(context.Background(), cfg, []string{"3DS", "CONS"}, 4000)
	}, 4000},
	{"sharedtlb-MUM+GUP", func(mod func(*Config)) (*Results, error) {
		cfg := SharedTLBConfig()
		mod(&cfg)
		return Run(context.Background(), cfg, []string{"MUM", "GUP"}, 4000)
	}, 4000},
	{"pwcache-3DS+CONS", func(mod func(*Config)) (*Results, error) {
		cfg := PWCacheConfig()
		mod(&cfg)
		return Run(context.Background(), cfg, []string{"3DS", "CONS"}, 4000)
	}, 4000},
	{"static-RED+BP", func(mod func(*Config)) (*Results, error) {
		cfg := StaticConfig()
		mod(&cfg)
		return Run(context.Background(), cfg, []string{"RED", "BP"}, 4000)
	}, 4000},
	{"alone-3DS", func(mod func(*Config)) (*Results, error) {
		cfg := SharedTLBConfig()
		mod(&cfg)
		return RunAlone(context.Background(), cfg, "3DS", 30, 4000)
	}, 4000},
	{"alone-GUP", func(mod func(*Config)) (*Results, error) {
		cfg := SharedTLBConfig()
		mod(&cfg)
		return RunAlone(context.Background(), cfg, "GUP", 30, 4000)
	}, 4000},
	{"alone-NN", func(mod func(*Config)) (*Results, error) {
		cfg := SharedTLBConfig()
		mod(&cfg)
		return RunAlone(context.Background(), cfg, "NN", 30, 4000)
	}, 4000},
	{"alone-MUM", func(mod func(*Config)) (*Results, error) {
		cfg := SharedTLBConfig()
		mod(&cfg)
		return RunAlone(context.Background(), cfg, "MUM", 30, 4000)
	}, 4000},
}

// unmodified is the no-op config mutator: the scenario's canonical run.
func unmodified(*Config) {}

// driftFingerprint renders every integer counter (and the derived floats) of
// a Results into a canonical text form. Any behavioural change — one extra
// cache probe, one reordered DRAM pick — changes the fingerprint.
func driftFingerprint(r *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d totalIPC=%.12g idle=%.12g trans=%d data=%d\n",
		r.Cycles, r.TotalIPC, r.IdleFraction, r.TransStallCycles, r.DataStallCycles)
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "app=%s cores=%d inst=%d mem=%d l1tlb=%d/%d/%d/%d/%d l2tlb=%d/%d/%d bus=%d\n",
			a.Name, a.Cores, a.Instructions, a.MemInsts,
			a.L1TLB.Accesses, a.L1TLB.Hits, a.L1TLB.Misses,
			a.L1TLB.StalledWarpSum, a.L1TLB.StalledWarpCount,
			a.L2TLB.Accesses, a.L2TLB.Hits, a.L2TLB.Misses,
			a.DRAMBusCycles)
	}
	w := r.Walker
	fmt.Fprintf(&b, "walker=%d/%d/%d/%d/%d/%d/%d\n",
		w.Started, w.Completed, w.LatSum, w.Samples, w.ActiveSum, w.ActiveMax, w.ActivePeak)
	for cls := memreq.Data; cls <= memreq.Translation; cls++ {
		c := r.DRAMClass[cls]
		fmt.Fprintf(&b, "dram[%s]=%d/%d/%d/%d/%d/%d util=%.12g\n",
			cls, c.Requests, c.BusCycles, c.LatSum, c.RowHits, c.RowClosed, c.RowConflicts,
			r.DRAMBandwidthUtil[cls])
	}
	for lvl := 0; lvl <= memreq.MaxWalkLevel; lvl++ {
		s := r.L2CacheLevel[lvl]
		fmt.Fprintf(&b, "l2c[%d]=%d/%d/%d/%d\n", lvl, s.Accesses, s.Hits, s.Misses, s.Bypasses)
	}
	fmt.Fprintf(&b, "l2tlbTotal=%d/%d/%d bypassHit=%.12g\n",
		r.L2TLBTotal.Accesses, r.L2TLBTotal.Hits, r.L2TLBTotal.Misses, r.BypassCacheHitRate)
	return b.String()
}

const driftGoldenPath = "testdata/drift.golden"

// TestNoBehavioralDrift pins the exact simulation outcomes of the drift
// scenarios against golden fingerprints recorded before the request/walk
// pooling work. Object pooling must recycle memory without perturbing a
// single counter; regenerate with MASKSIM_UPDATE_DRIFT=1 only for a change
// that intentionally alters simulated behaviour.
func TestNoBehavioralDrift(t *testing.T) {
	var b strings.Builder
	for _, sc := range driftScenarios {
		res, err := sc.run(unmodified)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Fprintf(&b, "== %s\n%s", sc.name, driftFingerprint(res))
	}
	got := b.String()

	if os.Getenv("MASKSIM_UPDATE_DRIFT") != "" {
		if err := os.WriteFile(driftGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", driftGoldenPath)
		return
	}
	want, err := os.ReadFile(driftGoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with MASKSIM_UPDATE_DRIFT=1 to record): %v", err)
	}
	if got != string(want) {
		t.Errorf("simulation outcomes drifted from %s:\n%s", driftGoldenPath, diffLines(string(want), got))
	}
}

// diffLines reports the first divergent lines of two texts.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "(texts equal?)"
}
