package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"masksim/internal/engine"
	"masksim/internal/faultinject"
	"masksim/internal/snapshot"
)

// ckptScenarios mirror the drift scenarios (every design the hot path flows
// through) plus a demand-paging pair and a fully instrumented MASK run, so
// checkpoint/restore equivalence is proven over every serialized subsystem.
var ckptScenarios = []struct {
	name  string
	cfg   func() Config
	names []string
	alone int // >0: single-app alone run on this many cores
}{
	{name: "mask-3DS+CONS", cfg: MASKConfig, names: []string{"3DS", "CONS"}},
	{name: "sharedtlb-MUM+GUP", cfg: SharedTLBConfig, names: []string{"MUM", "GUP"}},
	{name: "pwcache-3DS+CONS", cfg: PWCacheConfig, names: []string{"3DS", "CONS"}},
	{name: "static-RED+BP", cfg: StaticConfig, names: []string{"RED", "BP"}},
	{name: "alone-3DS", cfg: SharedTLBConfig, names: []string{"3DS"}, alone: 30},
	{name: "alone-GUP", cfg: SharedTLBConfig, names: []string{"GUP"}, alone: 30},
	{name: "alone-NN", cfg: SharedTLBConfig, names: []string{"NN"}, alone: 30},
	{name: "alone-MUM", cfg: SharedTLBConfig, names: []string{"MUM"}, alone: 30},
	{name: "paging-MUM+GUP", cfg: func() Config {
		c := SharedTLBConfig()
		c.DemandPaging = true
		c.FaultLatency = 500
		c.FaultConcurrency = 4
		return c
	}, names: []string{"MUM", "GUP"}},
	{name: "mask-instrumented", cfg: func() Config {
		c := MASKConfig()
		c.TraceInterval = 700
		c.TelemetryEpoch = 900
		c.TLBPrefetch = true
		c.WatchdogCheckEvery = 1000
		return c
	}, names: []string{"3DS", "CONS"}},
}

func (s *Simulator) mustRun(t *testing.T, cycles int64) *Results {
	t.Helper()
	res, err := s.Run(context.Background(), cycles)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func prepareScenario(t *testing.T, cfg Config, names []string, alone int) *Simulator {
	t.Helper()
	var (
		s   *Simulator
		err error
	)
	if alone > 0 {
		s, err = PrepareAlone(cfg, names[0], alone)
	} else {
		s, err = Prepare(cfg, names)
	}
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return s
}

// TestCheckpointRestoreEquivalence is the acceptance test of docs/MODEL.md §9:
// checkpoint at cycle k, restore in a fresh simulator, run to completion —
// the Results must be deeply equal to an uninterrupted run's, across every
// scenario and with fast-forward both on and off. The checkpoint interval is
// chosen to not divide the run length, so the resumed run restarts mid-span.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	const cycles = 4000
	const every = 1700 // checkpoints at 1700 and 3400; resume runs the last 600

	for _, sc := range ckptScenarios {
		for _, ff := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/ff=%t", sc.name, ff), func(t *testing.T) {
				cfg := sc.cfg()
				cfg.FastForward = ff
				ref := prepareScenario(t, cfg, sc.names, sc.alone).mustRun(t, cycles)

				dir := t.TempDir()
				ckCfg := cfg
				ckCfg.CheckpointEvery = every
				ckCfg.CheckpointDir = dir
				ckSim := prepareScenario(t, ckCfg, sc.names, sc.alone)
				full := ckSim.mustRun(t, cycles)
				if !reflect.DeepEqual(ref, full) {
					t.Fatalf("taking checkpoints perturbed the run:\nref:  %+v\nfull: %+v", ref, full)
				}
				if got := ckSim.CheckpointStats().Taken; got != 2 {
					t.Fatalf("expected 2 checkpoints taken, got %d", got)
				}

				rsCfg := ckCfg
				rsCfg.Resume = true
				rsSim := prepareScenario(t, rsCfg, sc.names, sc.alone)
				resumed := rsSim.mustRun(t, cycles)
				if rsSim.CheckpointStats().Restored != 1 {
					t.Fatalf("resume did not adopt a checkpoint: %+v", rsSim.CheckpointStats())
				}
				if rsSim.Engine().Now() != cycles {
					t.Fatalf("resumed run ended at cycle %d, want %d", rsSim.Engine().Now(), cycles)
				}
				if !reflect.DeepEqual(ref, resumed) {
					t.Fatalf("restored run diverged from uninterrupted run:\nref:     %+v\nresumed: %+v", ref, resumed)
				}
			})
		}
	}
}

// TestCheckpointStreamRoundTrip checkpoints directly to a buffer (no files)
// and restores it, proving the Checkpoint/RestoreCheckpoint API works
// standalone at an arbitrary cycle.
func TestCheckpointStreamRoundTrip(t *testing.T) {
	const cycles = 3000
	cfg := MASKConfig()
	ref := prepareScenario(t, cfg, []string{"3DS", "CONS"}, 0).mustRun(t, cycles)

	dir := t.TempDir()
	ckCfg := cfg
	ckCfg.CheckpointEvery = 1300
	ckCfg.CheckpointDir = dir
	src := prepareScenario(t, ckCfg, []string{"3DS", "CONS"}, 0)
	src.mustRun(t, cycles)

	data, err := os.ReadFile(src.checkpointPath(2600))
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	dst := prepareScenario(t, cfg, []string{"3DS", "CONS"}, 0)
	if err := dst.RestoreCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if dst.Engine().Now() != 2600 {
		t.Fatalf("restored to cycle %d, want 2600", dst.Engine().Now())
	}
	resumed := dst.mustRun(t, cycles)
	if !reflect.DeepEqual(ref, resumed) {
		t.Fatalf("stream-restored run diverged:\nref:     %+v\nresumed: %+v", ref, resumed)
	}
}

// TestCheckpointRejection proves every way a checkpoint file can be unusable
// is rejected with a structured error and a clean start — never a panic, and
// never silently adopting garbage.
func TestCheckpointRejection(t *testing.T) {
	const cycles = 3000
	cfg := SharedTLBConfig()
	names := []string{"MUM", "GUP"}
	ref := prepareScenario(t, cfg, names, 0).mustRun(t, cycles)

	// Produce a valid checkpoint set to mutilate.
	makeDir := func(t *testing.T) string {
		dir := t.TempDir()
		c := cfg
		c.CheckpointEvery = 1300
		c.CheckpointDir = dir
		prepareScenario(t, c, names, 0).mustRun(t, cycles)
		return dir
	}
	resumeClean := func(t *testing.T, dir string, wantRejected int) {
		t.Helper()
		c := cfg
		c.CheckpointEvery = 1300
		c.CheckpointDir = dir
		c.Resume = true
		s := prepareScenario(t, c, names, 0)
		res := s.mustRun(t, cycles)
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("fallback run diverged from reference")
		}
		if got := s.CheckpointStats().Rejected; got < wantRejected {
			t.Fatalf("expected >= %d rejected checkpoints, got %d", wantRejected, got)
		}
	}

	t.Run("corrupt-byte", func(t *testing.T) {
		dir := makeDir(t)
		// Flip a byte in the newest checkpoint: resume must reject it with
		// ErrChecksum and fall back to the older one, still matching the
		// reference bit-for-bit.
		path, err := faultinject.CorruptCheckpointByte(dir, 1234)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := os.ReadFile(path)
		if _, _, err := snapshot.Decode(data); !errors.Is(err, snapshot.ErrChecksum) {
			t.Fatalf("corrupted file decoded with err=%v, want ErrChecksum", err)
		}
		c := cfg
		c.CheckpointEvery = 1300
		c.CheckpointDir = dir
		c.Resume = true
		s := prepareScenario(t, c, names, 0)
		res := s.mustRun(t, cycles)
		if s.CheckpointStats().Rejected != 1 || s.CheckpointStats().Restored != 1 {
			t.Fatalf("want 1 rejected + fallback restore, got %+v", s.CheckpointStats())
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("fallback-restored run diverged from reference")
		}
	})

	t.Run("all-corrupt-falls-back-clean", func(t *testing.T) {
		dir := makeDir(t)
		// Corrupt one byte in every checkpoint file (CorruptCheckpointByte
		// targets the newest; after it runs, touch the other by hand).
		ents, _ := os.ReadDir(dir)
		if len(ents) != 2 {
			t.Fatalf("expected 2 checkpoints, found %d", len(ents))
		}
		for _, e := range ents {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Both periodic checkpoints now corrupt: clean start, same results.
		resumeClean(t, dir, 2)
	})

	t.Run("truncated", func(t *testing.T) {
		dir := makeDir(t)
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			if err := os.WriteFile(p, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		resumeClean(t, dir, 2)
	})

	t.Run("not-a-checkpoint", func(t *testing.T) {
		dir := makeDir(t)
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("definitely not a checkpoint"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		resumeClean(t, dir, 2)
	})

	t.Run("version-mismatch", func(t *testing.T) {
		dir := makeDir(t)
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			// Stamp a future version and re-seal the checksum so the only
			// defect is the version field.
			data[4] = 0xFE
			resealChecksum(data)
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			var ve *snapshot.VersionError
			if _, _, err := snapshot.Decode(data); !errors.As(err, &ve) {
				t.Fatalf("restamped file decoded with err=%v, want *VersionError", err)
			}
		}
		resumeClean(t, dir, 2)
	})

	t.Run("wrong-simulation", func(t *testing.T) {
		// A checkpoint from a different config must not restore even if the
		// file is pristine.
		dir := makeDir(t)
		pathCfg := cfg
		pathCfg.CheckpointDir = dir
		data, err := os.ReadFile(prepareScenario(t, pathCfg, names, 0).checkpointPath(2600))
		if err != nil {
			t.Fatal(err)
		}
		s := prepareScenario(t, MASKConfig(), names, 0)
		if err := s.RestoreCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrWrongSimulation) {
			t.Fatalf("cross-config restore err=%v, want ErrWrongSimulation", err)
		}
	})

	t.Run("wrong-budget", func(t *testing.T) {
		dir := makeDir(t)
		c := cfg
		c.CheckpointEvery = 1300
		c.CheckpointDir = dir
		c.Resume = true
		s := prepareScenario(t, c, names, 0)
		// Different total budget: both checkpoints rejected, clean start.
		if _, err := s.Run(context.Background(), cycles+1000); err != nil {
			t.Fatalf("run: %v", err)
		}
		if got := s.CheckpointStats(); got.Restored != 0 || got.Rejected != 2 {
			t.Fatalf("want 0 restored / 2 rejected under budget mismatch, got %+v", got)
		}
	})
}

// resealChecksum recomputes the trailing SHA-256 over a mutated envelope so
// tests can craft files whose only defect is the field under test.
func resealChecksum(data []byte) {
	sum := snapshot.Seal(data[:len(data)-32])
	copy(data[len(data)-32:], sum)
}

// TestWatchdogCrashCheckpoint wedges the page-table walker so the watchdog
// aborts, then proves (a) a crash checkpoint was written at the abort cycle,
// and (b) restoring it re-raises the same DeadlockError at the same cycle.
func TestWatchdogCrashCheckpoint(t *testing.T) {
	const cycles = 60_000
	cfg := SharedTLBConfig()
	cfg.WatchdogCheckEvery = 2000
	cfg.WatchdogStallChecks = 3
	cfg.CheckpointDir = t.TempDir()
	names := []string{"MUM", "GUP"}

	run := func(plan *faultinject.Plan) (*Simulator, *Results, error) {
		c := cfg
		c.FaultPlan = plan
		s := prepareScenario(t, c, names, 0)
		res, err := s.Run(context.Background(), cycles)
		return s, res, err
	}

	_, res, err := run(&faultinject.Plan{WedgePTWAfter: 3000})
	var dead *engine.DeadlockError
	if !errors.As(err, &dead) {
		t.Fatalf("wedged run returned %v, want DeadlockError", err)
	}
	if !res.Aborted {
		t.Fatal("aborted run did not set Results.Aborted")
	}

	// The crash dump restores to the exact abort cycle and re-raises.
	c := cfg
	c.FaultPlan = &faultinject.Plan{WedgePTWAfter: 3000}
	s2 := prepareScenario(t, c, names, 0)
	ok, rerr := s2.RestoreCrashCheckpoint(cfg.CheckpointDir)
	if rerr != nil || !ok {
		t.Fatalf("crash restore: ok=%t err=%v", ok, rerr)
	}
	if s2.Engine().Now() != dead.Cycle {
		t.Fatalf("crash checkpoint at cycle %d, abort was at %d", s2.Engine().Now(), dead.Cycle)
	}
	_, err2 := s2.Run(context.Background(), cycles)
	var dead2 *engine.DeadlockError
	if !errors.As(err2, &dead2) {
		t.Fatalf("restored crash run returned %v, want DeadlockError", err2)
	}
	if dead2.Cycle != dead.Cycle {
		t.Fatalf("re-raised abort at cycle %d, original at %d", dead2.Cycle, dead.Cycle)
	}
	if dead2.Error() != dead.Error() {
		t.Fatalf("re-raised error differs:\noriginal: %s\nrestored: %s", dead.Error(), dead2.Error())
	}

	// Resume must NOT adopt the crash dump: with no periodic checkpoints in
	// the directory the run starts clean (and wedges again on its own).
	c2 := cfg
	c2.Resume = true
	c2.FaultPlan = &faultinject.Plan{WedgePTWAfter: 3000}
	s3 := prepareScenario(t, c2, names, 0)
	if _, err := s3.Run(context.Background(), cycles); err == nil {
		t.Fatal("wedged rerun unexpectedly succeeded")
	}
	if s3.CheckpointStats().Restored != 0 {
		t.Fatalf("resume adopted the crash dump: %+v", s3.CheckpointStats())
	}
}

// TestConcurrentRestoreIsolation restores the same checkpoint bytes into
// several simulators running concurrently (run under -race in CI): restored
// requests must come from per-instance pools with zero sharing.
func TestConcurrentRestoreIsolation(t *testing.T) {
	const cycles = 3000
	cfg := MASKConfig()
	names := []string{"3DS", "CONS"}

	dir := t.TempDir()
	c := cfg
	c.CheckpointEvery = 1300
	c.CheckpointDir = dir
	src := prepareScenario(t, c, names, 0)
	ref := src.mustRun(t, cycles)
	data, err := os.ReadFile(src.checkpointPath(1300))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	results := make([]*Results, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := prepareScenario(t, cfg, names, 0)
			if err := s.RestoreCheckpoint(bytes.NewReader(data)); err != nil {
				t.Errorf("worker %d restore: %v", i, err)
				return
			}
			res, err := s.Run(context.Background(), cycles)
			if err != nil {
				t.Errorf("worker %d run: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("worker %d diverged from reference", i)
		}
	}
}

// TestCheckpointBudgetMismatch ensures a restored simulator refuses to run
// with a different cycle budget than the interrupted run.
func TestCheckpointBudgetMismatch(t *testing.T) {
	const cycles = 3000
	cfg := SharedTLBConfig()
	names := []string{"MUM", "GUP"}
	dir := t.TempDir()
	c := cfg
	c.CheckpointEvery = 1300
	c.CheckpointDir = dir
	src := prepareScenario(t, c, names, 0)
	src.mustRun(t, cycles)
	data, err := os.ReadFile(src.checkpointPath(1300))
	if err != nil {
		t.Fatal(err)
	}
	s := prepareScenario(t, cfg, names, 0)
	if err := s.RestoreCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), cycles*2); err == nil {
		t.Fatal("budget-mismatched resume unexpectedly succeeded")
	}
}
