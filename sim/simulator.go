package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"masksim/internal/cache"
	"masksim/internal/dram"
	"masksim/internal/engine"
	"masksim/internal/faultinject"
	"masksim/internal/gpu"
	"masksim/internal/memreq"
	"masksim/internal/pagetable"
	"masksim/internal/ptw"
	"masksim/internal/telemetry"
	"masksim/internal/tlb"
	"masksim/internal/workload"
)

// heapBase is the virtual address where each application's footprint starts.
// Address spaces are independent (per-ASID page tables), so all apps share
// the same base.
const heapBase = uint64(2) << 32

// Simulator is a fully wired simulated GPU running one or more applications.
// Build with New, run once with Run.
type Simulator struct {
	cfg         Config
	eng         *engine.Engine
	apps        []workload.App
	coresPerApp []int

	alloc  *pagetable.Allocator
	spaces []*pagetable.Space

	cores  []*gpu.Core
	l1tlbs []*tlb.L1TLB
	l1ds   []*cache.Cache

	l2tlb  *tlb.L2TLB
	walker *ptw.Walker
	faults *ptw.FaultUnit
	pwc    *cache.Cache
	l2c    *cache.Cache
	mem    *dram.DRAM

	ata    *cache.ATABypass
	tokens *tlb.TokenPolicy

	// Request free lists and ID generators. Each core and its private L1D and
	// L1 TLB share per-core pools (reqPools[i] / transPools[i] / idgens[i]) so
	// the parallel phases of a sharded run recycle requests without locks; the
	// shared L2, page walk cache and walker draw from sharedReqPool, which
	// only the coordinator touches. The split is unconditional — identical
	// behavior and checkpoint shape at every shard count, including the
	// sequential engine. Per-instance ownership keeps concurrent simulators
	// race-free.
	sharedReqPool memreq.Pool
	reqPools      []memreq.Pool
	transPools    []memreq.TransPool
	idgens        []memreq.IDGen

	// Sharded-execution wiring (sim/shard.go): per-core exchange buffers and
	// the registration indices the phase plan is built over.
	transOut     []*transOutbox
	subOut       []*submitOutbox
	coreClusters [][]int
	coreTickIdx  []int
	l1tlbTickIdx []int
	midTickIdx   []int
	l1dTickIdx   []int
	tailStart    int

	maskScheds []*dram.MASKSched

	// tel is the telemetry collector, nil unless Config.TelemetryEpoch > 0.
	tel *telemetry.Collector

	trace traceState

	epoch int64
	ran   bool

	// Checkpoint machinery (docs/MODEL.md §9). snapCaches maps the build-order
	// snapshot IDs stamped on fill requests back to their caches for the
	// restore link pass.
	snapCaches  map[uint64]*cache.Cache
	ckptStats   CheckpointStats
	totalCycles int64  // current run's cycle budget, for checkpoint headers
	fp          string // cached Fingerprint

	// curWD is the watchdog supervising the in-progress run; the checkpoint
	// hook captures its state mid-run.
	curWD *engine.Watchdog
	// restored* carry state from RestoreCheckpoint into the next Run.
	restored      bool
	resuming      bool // Run's own auto-resume is exempt from the ran guard
	restoredWD    *engine.WatchdogState
	restoredTotal int64
	// attachErr captures an AddWaiter failure raised inside the waiter-attach
	// closure during the restore link pass (the hook signature has no error).
	attachErr error
}

// registerSnapCache assigns the next build-order snapshot ID to c and indexes
// it for the restore link pass. Build order is deterministic for a given
// config, so IDs match between the checkpointing and the restoring simulator.
func (s *Simulator) registerSnapCache(c *cache.Cache) {
	if s.snapCaches == nil {
		s.snapCaches = make(map[uint64]*cache.Cache)
	}
	id := uint64(len(s.snapCaches) + 1)
	c.SetSnapKey(id)
	s.snapCaches[id] = c
}

// New wires a simulator for the given applications. coresPerApp[i] cores are
// dedicated to apps[i]; the total must not exceed cfg.Cores. (The paper
// spatially partitions cores between address spaces; §6 describes an oracle
// partitioning, which the experiments package approximates.)
func New(cfg Config, apps []workload.App, coresPerApp []int) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("sim: at least one application required")
	}
	if len(apps) != len(coresPerApp) {
		return nil, fmt.Errorf("sim: %d apps but %d core assignments", len(apps), len(coresPerApp))
	}
	total := 0
	for i, n := range coresPerApp {
		if n < 1 {
			return nil, fmt.Errorf("sim: app %d assigned %d cores", i, n)
		}
		total += n
	}
	if total > cfg.Cores {
		return nil, fmt.Errorf("sim: %d cores assigned but only %d exist", total, cfg.Cores)
	}
	if cfg.Mask.Any() && cfg.Design != DesignSharedTLB {
		return nil, fmt.Errorf("sim: MASK mechanisms require the SharedTLB design")
	}
	if cfg.CheckpointDir != "" {
		if err := probeCheckpointDir(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}

	s := &Simulator{
		cfg:         cfg,
		eng:         engine.New(),
		apps:        apps,
		coresPerApp: coresPerApp,
		alloc:       pagetable.NewAllocator(),
	}
	s.build()
	return s, nil
}

// scheduledTick adapts a periodic action (epoch roll, time-mux eviction,
// trace snapshot) to the engine's EventSource capability: Tick runs fn every
// cycle exactly as the bare TickFunc did, and NextEvent reports the next
// positive multiple of interval() so fast-forward never jumps over an
// activation cycle. interval is a closure because the epoch length is
// finalized in Run, after registration.
type scheduledTick struct {
	fn       func(now int64)
	interval func() int64
}

func (t scheduledTick) Tick(now int64) { t.fn(now) }

func (t scheduledTick) NextEvent(now int64) int64 {
	iv := t.interval()
	if iv <= 0 {
		return engine.NoEvent
	}
	if now > 0 && now%iv == 0 {
		return now
	}
	return (now/iv + 1) * iv
}

// panicTick wraps a fault plan's scheduled panic/kill as an EventSource so a
// fast-forwarded run still detonates at exactly the configured cycle.
type panicTick struct{ plan *faultinject.Plan }

func (t panicTick) Tick(now int64) {
	t.plan.TickPanic(now)
	t.plan.TickKill(now)
}

func (t panicTick) NextEvent(now int64) int64 {
	next := int64(engine.NoEvent)
	if at := t.plan.PanicAtCycle; at > 0 && now <= at {
		next = at
	}
	if at := t.plan.KillAtCycle; at > 0 && now <= at && (next == engine.NoEvent || at < next) {
		next = at
	}
	return next
}

func (s *Simulator) build() {
	cfg := s.cfg
	numApps := len(s.apps)
	s.eng.SetFastForward(cfg.FastForward)
	s.eng.SetShardBatching(cfg.ShardBatch)

	// One shared arena backs every cache's line array (L2, page walk cache,
	// per-core L1Ds): a single construction-time allocation instead of one
	// per cache.
	arenaLines := cache.ArenaLines(cfg.L2Cache.SizeBytes, cfg.L2Cache.LineSize, cfg.L2Cache.Ways)
	if cfg.Design == DesignPWCache && !cfg.Ideal {
		arenaLines += cache.ArenaLines(cfg.PWCache.SizeBytes, cfg.PWCache.LineSize, cfg.PWCache.Ways)
	}
	assignedCores := 0
	for _, n := range s.coresPerApp {
		assignedCores += n
	}
	arenaLines += assignedCores * cache.ArenaLines(cfg.L1Cache.SizeBytes, cfg.L1Cache.LineSize, cfg.L1Cache.Ways)
	arena := cache.NewLineArena(arenaLines)

	// Per-core pools and ID generators (see the field comment). Pool IDs name
	// the owning pool in checkpoint request DTOs: 0 is the shared pool,
	// 1+coreID the core's data pool; translation pools use coreID directly.
	s.reqPools = make([]memreq.Pool, assignedCores)
	s.transPools = make([]memreq.TransPool, assignedCores)
	s.idgens = make([]memreq.IDGen, assignedCores)
	s.sharedReqPool.ID = 0
	for i := range s.reqPools {
		s.reqPools[i].ID = i + 1
	}
	for i := range s.transPools {
		s.transPools[i].ID = i
	}

	// --- DRAM -----------------------------------------------------------
	mkSched := func(chanIdx int) dram.Scheduler {
		if cfg.Mask.DRAMSched {
			ms := dram.NewMASKSched(numApps, cfg.ThreshMax, func(app int) (float64, float64) {
				// Pressure metrics come from the shared TLB's MSHRs (§5.4);
				// the closure resolves lazily because the L2 TLB is built
				// after DRAM.
				if s.l2tlb == nil {
					return 0, 0
				}
				return s.l2tlb.Pressure(app)
			})
			s.maskScheds = append(s.maskScheds, ms)
			return ms
		}
		if cfg.FCFSSched {
			return dram.NewFCFS(cfg.DRAM.QueueCap)
		}
		return dram.NewFRFCFS(cfg.DRAM.QueueCap)
	}
	s.mem = dram.New(cfg.DRAM, mkSched)

	// --- shared L2 data cache --------------------------------------------
	s.l2c = cache.New(cache.Config{
		Name:         "L2",
		SizeBytes:    cfg.L2Cache.SizeBytes,
		Ways:         cfg.L2Cache.Ways,
		LineSize:     cfg.L2Cache.LineSize,
		Banks:        cfg.L2Cache.Banks,
		PortsPerBank: cfg.L2Cache.PortsPerBank,
		Latency:      cfg.L2Cache.Latency,
		QueueCap:     cfg.L2Cache.QueueCap,
		MSHRs:        cfg.L2Cache.MSHRs,
		WriteBack:    true,
		Arena:        arena,
	}, s.mem)
	s.l2c.SetRequestPool(&s.sharedReqPool)
	s.registerSnapCache(s.l2c)
	if cfg.Static {
		s.l2c.SetWayPartition(wayMasks(cfg.L2Cache.Ways, numApps))
	}
	if cfg.Mask.L2Bypass {
		s.ata = cache.NewATABypass(s.l2c)
	}

	// --- page walk cache (PWCache design only) ---------------------------
	walkBackend := cache.Backend(s.l2c)
	if cfg.Design == DesignPWCache && !cfg.Ideal {
		s.pwc = cache.New(cache.Config{
			Name:         "PWCache",
			SizeBytes:    cfg.PWCache.SizeBytes,
			Ways:         cfg.PWCache.Ways,
			LineSize:     cfg.PWCache.LineSize,
			Banks:        cfg.PWCache.Banks,
			PortsPerBank: cfg.PWCache.PortsPerBank,
			Latency:      cfg.PWCache.Latency,
			QueueCap:     cfg.PWCache.QueueCap,
			MSHRs:        cfg.PWCache.MSHRs,
			Arena:        arena,
		}, s.l2c)
		s.pwc.SetRequestPool(&s.sharedReqPool)
		s.registerSnapCache(s.pwc)
		walkBackend = s.pwc
	}

	// --- walker and shared L2 TLB ----------------------------------------
	s.walker = ptw.New(cfg.WalkerConcurrency, walkBackend, numApps)
	s.walker.SetRequestPool(&s.sharedReqPool)
	s.walker.SetDoneResolver(s.resolveWalkDone)
	if cfg.DemandPaging && !cfg.Ideal {
		s.faults = ptw.NewFaultUnit(cfg.FaultLatency, cfg.FaultConcurrency)
		s.walker.SetFaultUnit(s.faults)
	}
	s.tokens = tlb.NewTokenPolicy(numApps, cfg.WarpsPerCore, cfg.TokenInitFraction, cfg.Mask.Tokens)
	if cfg.Design == DesignSharedTLB && !cfg.Ideal {
		bypassSize := 0
		if cfg.Mask.Tokens {
			bypassSize = cfg.BypassCacheEntries
		}
		s.l2tlb = tlb.NewL2(tlb.L2Config{
			Entries:    cfg.L2TLBEntries,
			Ways:       cfg.L2TLBWays,
			Ports:      cfg.L2TLBPorts,
			Latency:    cfg.L2TLBLatency,
			QueueCap:   cfg.L2TLBQueueCap,
			BypassSize: bypassSize,
			NumApps:    numApps,
		}, s.walker, s.tokens)
		if cfg.Static {
			s.l2tlb.SetWayPartition(wayMasks(cfg.L2TLBWays, numApps))
		}
		if cfg.TLBPrefetch {
			s.l2tlb.SetPrefetcher(tlb.NewPrefetcher(), func(asid uint8, vpn uint64) bool {
				idx := int(asid) - 1
				if idx < 0 || idx >= len(s.spaces) {
					return false
				}
				_, ok := s.spaces[idx].TranslateVPN(vpn)
				return ok
			})
		}
	}

	// --- address spaces ---------------------------------------------------
	s.spaces = make([]*pagetable.Space, numApps)
	for i, app := range s.apps {
		if cfg.Static {
			// Confine the app's frames (data and page-table nodes) to its
			// DRAM channel partition.
			chans := channelPartition(cfg.DRAM.Channels, numApps, i)
			s.alloc.SetConstraint(func(frame uint64) bool {
				return chans[s.mem.ChannelOfFrame(frame)]
			})
		}
		sp := pagetable.NewSpace(uint8(i+1), cfg.PageSize, s.alloc)
		s.spaces[i] = sp
		appWarps := s.coresPerApp[i] * cfg.WarpsPerCore
		if app.Trace != nil {
			for _, va := range app.Trace.Pages(cfg.PageSize) {
				sp.EnsureMapped(va)
			}
		} else {
			for _, va := range app.Profile.PagesToMap(heapBase, cfg.PageSize, appWarps) {
				sp.EnsureMapped(va)
			}
		}
		s.walker.AddSpace(sp)
	}
	s.alloc.SetConstraint(nil)

	// --- cores ------------------------------------------------------------
	pageShift := s.spaces[0].PageShift()
	coreID := 0
	for appIdx, app := range s.apps {
		appWarps := s.coresPerApp[appIdx] * cfg.WarpsPerCore
		space := s.spaces[appIdx]
		factory := workload.NewStreamFactory(app.Profile, heapBase, cfg.PageSize,
			cfg.L1Cache.LineSize, appWarps, app.Seed)
		// Cores whose warps share a group-sync barrier must tick on one shard
		// (a barrier release in core i wakes warps in core j the same cycle).
		// A synthetic profile's groups span cores only when WarpsPerGroup does
		// not divide the per-core warp count; trace streams have no group sync.
		wpg := 0
		if app.Trace == nil {
			wpg = app.Profile.WarpsPerGroup
		}
		for local := 0; local < s.coresPerApp[appIdx]; local++ {
			if local == 0 || wpg <= 1 || (local*cfg.WarpsPerCore)%wpg == 0 {
				s.coreClusters = append(s.coreClusters, nil)
			}
			cl := len(s.coreClusters) - 1
			s.coreClusters[cl] = append(s.coreClusters[cl], coreID)

			l1d := cache.New(cache.Config{
				Name:               fmt.Sprintf("L1D.%d", coreID),
				SizeBytes:          cfg.L1Cache.SizeBytes,
				Ways:               cfg.L1Cache.Ways,
				LineSize:           cfg.L1Cache.LineSize,
				Banks:              cfg.L1Cache.Banks,
				PortsPerBank:       cfg.L1Cache.PortsPerBank,
				Latency:            cfg.L1Cache.Latency,
				QueueCap:           cfg.L1Cache.QueueCap,
				MSHRs:              cfg.L1Cache.MSHRs,
				WriteCombineWindow: cfg.L1Cache.WriteCombineWindow,
				Arena:              arena,
			}, func() cache.Backend {
				// The L1D reaches the shared L2 through its exchange buffer so
				// a sharded run can defer cross-shard submissions; outside the
				// parallel phase the outbox is a transparent pass-through.
				sub := &submitOutbox{real: s.l2c}
				s.subOut = append(s.subOut, sub)
				return sub
			}())
			l1d.SetRequestPool(&s.reqPools[coreID])
			s.registerSnapCache(l1d)
			s.l1ds = append(s.l1ds, l1d)

			var coreL1 *tlb.L1TLB
			var translate gpu.TranslateFn
			if cfg.Ideal {
				translate = func(now int64, vpn uint64, warpID int, done func(int64, uint64)) {
					frame, ok := space.TranslateVPN(vpn)
					if !ok {
						panic("sim: ideal translation of unmapped page")
					}
					done(now, frame)
				}
			} else {
				var transBackend tlb.TransBackend = s.walker
				if s.l2tlb != nil {
					transBackend = s.l2tlb
				}
				tout := &transOutbox{real: transBackend}
				s.transOut = append(s.transOut, tout)
				l1 := tlb.NewL1(coreID, appIdx, space.ASID(), cfg.L1TLBEntries, tout)
				l1.SetTransPool(&s.transPools[coreID])
				l1.SetRetryHold(func() bool { return tout.deferring })
				s.l1tlbs = append(s.l1tlbs, l1)
				coreL1 = l1
				app := appIdx
				translate = func(now int64, vpn uint64, warpID int, done func(int64, uint64)) {
					l1.Lookup(now, vpn, warpID, s.tokens.HasToken(app, warpID), done)
				}
			}

			streams := make([]*workload.Stream, cfg.WarpsPerCore)
			for w := 0; w < cfg.WarpsPerCore; w++ {
				if app.Trace != nil {
					streams[w] = app.Trace.NewStream(local*cfg.WarpsPerCore+w,
						cfg.PageSize, cfg.L1Cache.LineSize)
				} else {
					streams[w] = factory.New(local*cfg.WarpsPerCore + w)
				}
			}
			core := gpu.New(coreID, appIdx, gpu.Config{
				WarpsPerCore: cfg.WarpsPerCore,
				PageShift:    pageShift,
				FrameSize:    pagetable.FrameSize,
				LineSize:     uint64(cfg.L1Cache.LineSize),
				RoundRobin:   cfg.RoundRobinSched,
			}, streams, translate, l1d, &s.idgens[coreID])
			core.SetRequestPool(&s.reqPools[coreID])
			if coreL1 != nil {
				l1 := coreL1
				core.SetWaiterAttach(func(vpn uint64, done func(now int64, frame uint64)) {
					if err := l1.AddWaiter(vpn, done); err != nil && s.attachErr == nil {
						s.attachErr = err
					}
				})
			}
			s.cores = append(s.cores, core)
			coreID++
		}
	}

	// --- tick order --------------------------------------------------------
	// Registration indices are recorded as the shard plan's phase boundaries:
	// cores (parallel P1), the translation machinery (serial), L1Ds (parallel
	// P2), and everything from tailStart on (serial). The sequential engine
	// ignores them; the sharded engine reproduces exactly this order.
	reg := func(t engine.Ticker) int {
		idx := s.eng.Len()
		s.eng.Register(t)
		return idx
	}
	for _, c := range s.cores {
		s.coreTickIdx = append(s.coreTickIdx, reg(c))
	}
	for _, t := range s.l1tlbs {
		s.l1tlbTickIdx = append(s.l1tlbTickIdx, reg(t))
	}
	if s.l2tlb != nil {
		s.midTickIdx = append(s.midTickIdx, reg(s.l2tlb))
	}
	if !cfg.Ideal {
		s.midTickIdx = append(s.midTickIdx, reg(s.walker))
	}
	if s.faults != nil {
		s.midTickIdx = append(s.midTickIdx, reg(s.faults))
	}
	if s.pwc != nil {
		s.midTickIdx = append(s.midTickIdx, reg(s.pwc))
	}
	for _, d := range s.l1ds {
		s.l1dTickIdx = append(s.l1dTickIdx, reg(d))
	}
	s.tailStart = s.eng.Len()
	s.eng.Register(s.l2c)
	s.eng.Register(s.mem)
	s.eng.Register(scheduledTick{fn: s.epochTick, interval: func() int64 { return s.epoch }})
	if cfg.TimeMuxQuantum > 0 {
		s.eng.Register(scheduledTick{fn: s.timeMuxTick, interval: func() int64 { return s.cfg.TimeMuxQuantum }})
	}
	if cfg.TraceInterval > 0 {
		s.eng.Register(scheduledTick{fn: s.traceTick, interval: func() int64 { return s.cfg.TraceInterval }})
	}

	// --- telemetry ---------------------------------------------------------
	s.buildTelemetry()

	// --- fault injection ---------------------------------------------------
	// Registered after every snapshot-capable ticker (the collector included):
	// panicTick carries no checkpoint state, so a run killed by a fault plan
	// restores onto a plan-free simulator with every state key still aligned —
	// fingerprints deliberately ignore FaultPlan, and resume drops the flag.
	if plan := cfg.FaultPlan; plan != nil && plan.Active() {
		if !cfg.Ideal {
			s.walker.SetWedgeHook(plan.WedgeWalk)
		}
		s.mem.SetDropHook(plan.DropResponse)
		s.eng.Register(panicTick{plan: plan})
	}

	// --- sharded execution -------------------------------------------------
	s.installShardPlan()
}

// watchdog builds the progress watchdog for one run, wiring progress probes
// (instructions retired, walks completed, DRAM requests serviced) and the
// per-component diagnostic dump. Returns nil when disabled.
func (s *Simulator) watchdog() *engine.Watchdog {
	if s.cfg.WatchdogCheckEvery <= 0 {
		return nil
	}
	checks := s.cfg.WatchdogStallChecks
	if checks <= 0 {
		checks = 4
	}
	wd := engine.NewWatchdog(s.cfg.WatchdogCheckEvery, checks)
	if s.tel != nil {
		wd.SetEventSink(s.tel)
	}

	wd.Observe(func() uint64 {
		var n uint64
		for _, c := range s.cores {
			n += c.Stats.Instructions
		}
		return n
	})
	wd.Observe(func() uint64 { return s.walker.Stats.Completed })
	wd.Observe(func() uint64 {
		return s.mem.Class[memreq.Data].Requests + s.mem.Class[memreq.Translation].Requests
	})

	wd.Diagnose("walker", func() string {
		return fmt.Sprintf("active=%d queued=%d completed=%d",
			s.walker.ActiveWalks(), s.walker.QueuedWalks(), s.walker.Stats.Completed)
	})
	if s.l2tlb != nil {
		wd.Diagnose("l2tlb", func() string {
			return fmt.Sprintf("queued=%d outstandingMisses=%d",
				s.l2tlb.QueueLen(), s.l2tlb.OutstandingMisses())
		})
	}
	wd.Diagnose("l2cache", func() string {
		return fmt.Sprintf("queued=%d outstandingMisses=%d",
			s.l2c.QueueOccupancy(), s.l2c.OutstandingMisses())
	})
	if s.pwc != nil {
		wd.Diagnose("pwcache", func() string {
			return fmt.Sprintf("queued=%d outstandingMisses=%d",
				s.pwc.QueueOccupancy(), s.pwc.OutstandingMisses())
		})
	}
	wd.Diagnose("dram", func() string {
		return fmt.Sprintf("queued=%d inflight=%d", s.mem.QueueLen(), s.mem.Inflight())
	})
	if s.tokens.Enabled() {
		wd.Diagnose("tokens", func() string {
			parts := make([]string, len(s.apps))
			for i := range s.apps {
				parts[i] = fmt.Sprintf("app%d=%d", i, s.tokens.Tokens(i))
			}
			return strings.Join(parts, " ")
		})
	}
	if s.faults != nil {
		wd.Diagnose("faults", func() string {
			return fmt.Sprintf("outstanding=%d", s.faults.Outstanding())
		})
	}
	return wd
}

// timeMuxTick models the state loss of coarse time multiplexing: every
// quantum, a fraction of TLB and cache state is evicted as if other
// processes had run in between (Figure 1).
func (s *Simulator) timeMuxTick(now int64) {
	if now == 0 || now%s.cfg.TimeMuxQuantum != 0 {
		return
	}
	f := s.cfg.TimeMuxEvict
	for _, t := range s.l1tlbs {
		t.FlushFraction(f)
	}
	if s.l2tlb != nil {
		s.l2tlb.FlushFraction(f)
	}
	for _, d := range s.l1ds {
		d.FlushFraction(now, f)
	}
	s.l2c.FlushFraction(now, f)
	if s.pwc != nil {
		s.pwc.FlushFraction(now, f)
	}
}

// epochTick rolls the adaptive policies on epoch boundaries.
func (s *Simulator) epochTick(now int64) {
	if s.epoch <= 0 || now == 0 || now%s.epoch != 0 {
		return
	}
	if s.l2tlb != nil {
		rates := s.l2tlb.EpochRoll()
		s.tokens.Epoch(rates)
	}
	if s.ata != nil {
		s.ata.Roll()
	}
	for _, ms := range s.maskScheds {
		ms.Epoch()
	}
}

// wayMasks splits ways evenly across apps, assigning the remainder to the
// first apps.
func wayMasks(ways, numApps int) []uint64 {
	masks := make([]uint64, numApps)
	per := ways / numApps
	if per < 1 {
		per = 1
	}
	w := 0
	for i := range masks {
		for j := 0; j < per && w < ways; j++ {
			masks[i] |= 1 << uint(w)
			w++
		}
		if masks[i] == 0 {
			// More apps than ways: share the last way.
			masks[i] = 1 << uint(ways-1)
		}
	}
	// Distribute leftover ways to the first apps.
	for i := 0; w < ways; i, w = (i+1)%numApps, w+1 {
		masks[i] |= 1 << uint(w)
	}
	return masks
}

// channelPartition returns the channel-membership set for app i of numApps.
func channelPartition(channels, numApps, i int) []bool {
	set := make([]bool, channels)
	per := channels / numApps
	if per < 1 {
		per = 1
	}
	start := (i * per) % channels
	for j := 0; j < per; j++ {
		set[(start+j)%channels] = true
	}
	// When channels don't divide evenly, give the spare channels to the
	// first apps.
	if channels >= numApps && i < channels%numApps {
		set[numApps*per+i] = true
	}
	return set
}

// Run advances the simulation by cycles under supervision and returns the
// collected results. The context bounds the run's wall-clock time
// (context.WithTimeout) and supports cancellation; the configured watchdog
// aborts wedged runs. On abort the returned Results still carry the
// statistics accumulated up to the abort cycle (Results.Aborted is set) along
// with a non-nil error. A Simulator is single-use.
//
// cycles is the total cycle budget of the simulation. On a simulator restored
// from a checkpoint (RestoreCheckpoint, or Config.Resume) only the remaining
// cycles are simulated, and the budget must match the interrupted run's.
func (s *Simulator) Run(ctx context.Context, cycles int64) (*Results, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: Simulator is single-use; build a new one per run")
	}
	if cycles <= 0 {
		return nil, fmt.Errorf("sim: run length must be >= 1 cycle, got %d", cycles)
	}
	s.ran = true
	s.totalCycles = cycles

	// Auto-resume: adopt the newest valid checkpoint of this exact
	// simulation, if one exists. Unusable files are skipped (counted in
	// CheckpointStats.Rejected); with none the run starts clean.
	if !s.restored && s.cfg.Resume && s.cfg.CheckpointDir != "" {
		s.resuming = true
		_, err := s.RestoreFromDir(s.cfg.CheckpointDir, cycles)
		s.resuming = false
		if err != nil {
			return nil, err
		}
	}
	if s.restored {
		if s.restoredTotal != cycles {
			return nil, fmt.Errorf("sim: checkpoint was taken in a %d-cycle run, resumed with %d",
				s.restoredTotal, cycles)
		}
		if s.eng.Now() > cycles {
			return nil, fmt.Errorf("sim: checkpoint cycle %d past the %d-cycle budget", s.eng.Now(), cycles)
		}
	}

	// Scale the adaptation epoch for short runs so tokens and the bypass
	// policy still adapt several times (DESIGN.md §5). Pure function of the
	// budget, so a restored run reproduces it.
	s.epoch = s.cfg.EpochCycles
	if e := cycles / 8; e < s.epoch {
		s.epoch = e
	}
	if s.epoch < 1 {
		s.epoch = 1
	}

	wd := s.watchdog()
	if s.restoredWD != nil && wd != nil {
		wd.SetState(*s.restoredWD)
	}
	s.curWD = wd
	if s.cfg.CheckpointEvery > 0 && s.cfg.CheckpointDir != "" {
		s.eng.SetCheckpointHook(s.cfg.CheckpointEvery, func(now int64) {
			// Periodic checkpoints are best-effort: a full disk must not
			// abort an otherwise healthy run.
			s.writeCheckpointFile(s.checkpointPath(now))
		})
	}

	err := s.eng.RunContext(ctx, cycles-s.eng.Now(), wd)
	s.curWD = nil
	if err != nil && s.cfg.CheckpointDir != "" {
		var dead *engine.DeadlockError
		if errors.As(err, &dead) {
			// Crash checkpoint: the full wedged state at the abort cycle,
			// restorable for post-mortem debugging (restoring it re-raises
			// the same DeadlockError).
			s.curWD = wd
			s.writeCheckpointFile(s.crashCheckpointPath())
			s.curWD = nil
		} else if ctx != nil && ctx.Err() != nil && s.cfg.CheckpointEvery > 0 {
			// Graceful interruption (SIGINT/SIGTERM via context cancel):
			// save exactly where we stopped so a restart loses nothing.
			s.writeCheckpointFile(s.checkpointPath(s.eng.Now()))
		}
	}
	res := s.collect(s.eng.Now())
	if err != nil {
		res.Aborted = true
		res.AbortReason = err.Error()
	}
	return res, err
}

// Engine exposes the clock for tests that need finer stepping.
func (s *Simulator) Engine() *engine.Engine { return s.eng }
