package sim_test

import (
	"context"
	"testing"

	"masksim/sim"
)

// TestAblateDRAM is a diagnostic over the Address-Space-Aware DRAM
// scheduler's two halves: the full scheduler and the golden-only variant
// (ThreshMax=0) must both stay live and keep both applications progressing.
func TestAblateDRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine diagnostic")
	}
	for _, tc := range []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"SharedTLB", func(c *sim.Config) {}},
		{"gold+silver", func(c *sim.Config) { c.Mask.DRAMSched = true }},
		{"gold-only", func(c *sim.Config) { c.Mask.DRAMSched = true; c.ThreshMax = 0 }},
	} {
		cfg := sim.SharedTLBConfig()
		tc.mut(&cfg)
		res, err := sim.Run(context.Background(), cfg, []string{"3DS", "CONS"}, 30000)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-12s total=%.2f appIPC=%.2f/%.2f walkLat=%.0f", tc.name,
			res.TotalIPC, res.Apps[0].IPC, res.Apps[1].IPC, res.Walker.AvgLatency())
		for _, a := range res.Apps {
			if a.IPC <= 0.1 {
				t.Fatalf("%s: app %s starved (IPC=%.3f)", tc.name, a.Name, a.IPC)
			}
		}
	}
}
